#include "src/support/logging.h"

#include <atomic>

namespace alpa {
namespace {

std::atomic<LogSeverity> g_min_severity{LogSeverity::kWarning};

const char* SeverityName(LogSeverity severity) {
  switch (severity) {
    case LogSeverity::kInfo:
      return "INFO";
    case LogSeverity::kWarning:
      return "WARNING";
    case LogSeverity::kError:
      return "ERROR";
    case LogSeverity::kFatal:
      return "FATAL";
  }
  return "UNKNOWN";
}

}  // namespace

LogSeverity MinLogSeverity() { return g_min_severity.load(std::memory_order_relaxed); }

void SetMinLogSeverity(LogSeverity severity) {
  g_min_severity.store(severity, std::memory_order_relaxed);
}

namespace log_internal {

LogMessage::LogMessage(const char* file, int line, LogSeverity severity) : severity_(severity) {
  const char* basename = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') {
      basename = p + 1;
    }
  }
  stream_ << "[" << SeverityName(severity) << " " << basename << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (severity_ >= MinLogSeverity() || severity_ == LogSeverity::kFatal) {
    std::cerr << stream_.str() << std::endl;
  }
  if (severity_ == LogSeverity::kFatal) {
    std::abort();
  }
}

}  // namespace log_internal
}  // namespace alpa
