// Integer math helpers.
#ifndef SRC_SUPPORT_MATH_UTIL_H_
#define SRC_SUPPORT_MATH_UTIL_H_

#include <cstdint>

#include "src/support/logging.h"

namespace alpa {

inline int64_t CeilDiv(int64_t a, int64_t b) {
  ALPA_CHECK_GT(b, 0);
  return (a + b - 1) / b;
}

inline bool IsPowerOfTwo(int64_t x) { return x > 0 && (x & (x - 1)) == 0; }

// Floor of log2(x); requires x > 0.
inline int Log2Floor(int64_t x) {
  ALPA_CHECK_GT(x, 0);
  int result = -1;
  while (x > 0) {
    x >>= 1;
    ++result;
  }
  return result;
}

inline bool Divides(int64_t divisor, int64_t value) {
  return divisor != 0 && value % divisor == 0;
}

}  // namespace alpa

#endif  // SRC_SUPPORT_MATH_UTIL_H_
