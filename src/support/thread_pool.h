// Work-stealing thread pool for the parallel compilation pipeline.
//
// The stage-mesh profiling grid, the stage-DP profile precomputation, and
// the baseline plan enumerations all consist of many independent,
// millisecond-scale units of work (one intra-op ILP solve each). This pool
// runs them across a fixed set of worker threads: each worker owns a deque
// it pushes nested work onto (LIFO, cache-friendly) and steals from the
// other workers (FIFO, oldest first) when its own deque drains. Callers of
// ParallelFor participate in the loop themselves and help execute pool
// tasks while waiting, so nested submission from inside a task can never
// deadlock: a waiting thread either makes progress on someone's task or
// blocks only on work already running on another thread.
#ifndef SRC_SUPPORT_THREAD_POOL_H_
#define SRC_SUPPORT_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace alpa {

class ThreadPool {
 public:
  // Spawns `num_threads` workers (>= 1). Compilation passes keep the pool
  // nullable and fall back to serial loops; see ParallelFor below.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  // Enqueues `fn` for execution. Safe to call from worker threads (the task
  // goes onto the submitting worker's own deque). Fire-and-forget: use
  // ParallelFor when completion must be awaited.
  void Submit(std::function<void()> fn);

  // Runs fn(i) for every i in [0, n). Iterations are claimed from a shared
  // atomic counter, so the i -> thread assignment is nondeterministic, but
  // every iteration runs exactly once; callers must make iterations
  // independent (write to disjoint slots) and merge results by index
  // afterwards for deterministic output. The calling thread participates.
  // The first exception thrown by an iteration cancels the remaining
  // unclaimed iterations and is rethrown here after in-flight ones finish.
  void ParallelFor(int64_t n, const std::function<void(int64_t)>& fn);

  // std::thread::hardware_concurrency with a floor of 1.
  static int DefaultThreads();

 private:
  struct LoopState;

  void WorkerMain(int index);
  // Executes one queued task if any is available; returns false when every
  // deque is empty. `self` is the calling worker's index or -1.
  bool RunOneTask(int self);
  void Push(int self, std::function<void()> fn);

  std::vector<std::thread> workers_;
  // One deque per worker plus one overflow deque (index = num_threads) for
  // submissions from non-pool threads. Workers pop their own back and steal
  // others' fronts.
  std::vector<std::deque<std::function<void()>>> queues_;
  std::mutex mu_;                 // Guards queues_ and stop_.
  std::condition_variable wake_;  // Signaled on push and on stop.
  bool stop_ = false;
};

// Serial-fallback helper used throughout the compilation passes: runs the
// loop on `pool` when one is available, inline otherwise. Keeps call sites
// free of threading conditionals.
void ParallelFor(ThreadPool* pool, int64_t n, const std::function<void(int64_t)>& fn);

}  // namespace alpa

#endif  // SRC_SUPPORT_THREAD_POOL_H_
