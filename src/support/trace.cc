#include "src/support/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <utility>

#include "src/support/strings.h"

namespace alpa {

std::atomic<bool> Trace::enabled_{false};

namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// A wall-clock span as recorded on its thread's lane. `name`/`category`
// point at string literals supplied by TraceSpan.
struct RawSpan {
  const char* name;
  const char* category;
  std::string args;
  double start;
  double end;
};

struct VirtualEvent {
  std::string name;
  const char* category;
  std::string args;
  double start;
  double end;
};

// One per recording thread. The lane mutex only contends with the
// exporter, never with other recorders.
struct Lane {
  std::mutex mu;
  std::string name = "thread";
  int sequence = 0;  // Registration order; tie-break for equal names.
  std::vector<RawSpan> spans;
};

struct TraceState {
  std::mutex mu;  // Guards lanes (the vector), virtual_lanes, and cursor.
  std::vector<std::unique_ptr<Lane>> lanes;
  std::map<std::string, std::vector<VirtualEvent>> virtual_lanes;
  double virtual_cursor = 0.0;
};

// Leaked intentionally: lanes are referenced from thread_locals of threads
// that may outlive any static destruction order.
TraceState& State() {
  static TraceState* state = new TraceState();
  return *state;
}

Lane* ThisLane() {
  thread_local Lane* lane = nullptr;
  if (lane == nullptr) {
    TraceState& state = State();
    std::lock_guard<std::mutex> lock(state.mu);
    state.lanes.push_back(std::make_unique<Lane>());
    lane = state.lanes.back().get();
    lane->sequence = static_cast<int>(state.lanes.size()) - 1;
  }
  return lane;
}

struct MetricsState {
  std::mutex mu;
  std::map<std::string, std::unique_ptr<Metric>> metrics;
};

MetricsState& MetricsStateSingleton() {
  static MetricsState* state = new MetricsState();
  return *state;
}

}  // namespace

void Trace::Enable() { enabled_.store(true, std::memory_order_relaxed); }

void Trace::Disable() { enabled_.store(false, std::memory_order_relaxed); }

void Trace::Clear() {
  TraceState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  // Lane objects stay alive (thread_locals point at them); only their
  // recorded spans are dropped.
  for (auto& lane : state.lanes) {
    std::lock_guard<std::mutex> lane_lock(lane->mu);
    lane->spans.clear();
  }
  state.virtual_lanes.clear();
  state.virtual_cursor = 0.0;
}

void Trace::SetThreadName(const std::string& name) {
#ifndef ALPA_TRACE_DISABLED
  Lane* lane = ThisLane();
  std::lock_guard<std::mutex> lock(lane->mu);
  lane->name = name;
#else
  (void)name;
#endif
}

void Trace::EmitVirtual(const std::string& lane, std::string name,
                        const char* category, double start, double end,
                        std::string args) {
#ifndef ALPA_TRACE_DISABLED
  if (!enabled()) {
    return;
  }
  TraceState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  state.virtual_lanes[lane].push_back(
      {std::move(name), category, std::move(args), start, end});
#else
  (void)lane;
  (void)name;
  (void)category;
  (void)start;
  (void)end;
  (void)args;
#endif
}

double Trace::ReserveVirtualWindow(double duration) {
  TraceState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  const double base = state.virtual_cursor;
  state.virtual_cursor += duration;
  return base;
}

void TraceSpan::Begin(const char* name, const char* category) {
  name_ = name;
  category_ = category;
  start_ = NowSeconds();
  active_ = true;
}

void TraceSpan::End() {
  const double end = NowSeconds();
  Lane* lane = ThisLane();
  std::lock_guard<std::mutex> lock(lane->mu);
  lane->spans.push_back({name_, category_, std::move(args_), start_, end});
}

int64_t Trace::event_count() {
  TraceState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  int64_t count = 0;
  for (auto& lane : state.lanes) {
    std::lock_guard<std::mutex> lane_lock(lane->mu);
    count += static_cast<int64_t>(lane->spans.size());
  }
  for (const auto& [name, events] : state.virtual_lanes) {
    count += static_cast<int64_t>(events.size());
  }
  return count;
}

std::vector<TraceEvent> Trace::Snapshot() {
  struct LaneCopy {
    std::string name;
    int sequence;
    std::vector<RawSpan> spans;
  };
  std::vector<LaneCopy> wall;
  std::map<std::string, std::vector<VirtualEvent>> virt;
  {
    TraceState& state = State();
    std::lock_guard<std::mutex> lock(state.mu);
    wall.reserve(state.lanes.size());
    for (auto& lane : state.lanes) {
      std::lock_guard<std::mutex> lane_lock(lane->mu);
      if (!lane->spans.empty()) {
        wall.push_back({lane->name, lane->sequence, lane->spans});
      }
    }
    virt = state.virtual_lanes;
  }

  // Normalized ordering: lanes by (name, registration order), events within
  // a lane by (start, end, name). Wall-clock times are rebased so the
  // earliest span starts at 0, making the structure comparable across runs.
  std::sort(wall.begin(), wall.end(), [](const LaneCopy& a, const LaneCopy& b) {
    return std::tie(a.name, a.sequence) < std::tie(b.name, b.sequence);
  });
  double wall_base = 0.0;
  bool have_base = false;
  for (const LaneCopy& lane : wall) {
    for (const RawSpan& s : lane.spans) {
      if (!have_base || s.start < wall_base) {
        wall_base = s.start;
        have_base = true;
      }
    }
  }

  std::vector<TraceEvent> out;
  int lane_id = 0;
  for (LaneCopy& lane : wall) {
    std::vector<TraceEvent> events;
    events.reserve(lane.spans.size());
    for (RawSpan& s : lane.spans) {
      events.push_back({s.name, s.category, std::move(s.args), lane.name,
                        lane_id, s.start - wall_base, s.end - wall_base, false});
    }
    std::sort(events.begin(), events.end(), [](const TraceEvent& a, const TraceEvent& b) {
      return std::tie(a.start, a.end, a.name) < std::tie(b.start, b.end, b.name);
    });
    for (TraceEvent& e : events) {
      out.push_back(std::move(e));
    }
    ++lane_id;
  }
  for (auto& [name, events] : virt) {
    std::vector<TraceEvent> lane_events;
    lane_events.reserve(events.size());
    for (VirtualEvent& e : events) {
      lane_events.push_back({std::move(e.name), e.category, std::move(e.args),
                             name, lane_id, e.start, e.end, true});
    }
    std::sort(lane_events.begin(), lane_events.end(),
              [](const TraceEvent& a, const TraceEvent& b) {
                return std::tie(a.start, a.end, a.name) < std::tie(b.start, b.end, b.name);
              });
    for (TraceEvent& e : lane_events) {
      out.push_back(std::move(e));
    }
    ++lane_id;
  }
  return out;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string Trace::ChromeTraceJson() {
  const std::vector<TraceEvent> events = Snapshot();
  std::ostringstream json;
  json << "{\n\"displayTimeUnit\": \"ms\",\n";
  // Metrics ride along as trace-level metadata.
  json << "\"otherData\": {\"metrics\": {";
  json << Metrics::SummaryJsonBody();
  json << "}},\n";
  json << "\"traceEvents\": [\n";

  // Two Chrome "processes": wall-clock compile lanes and virtual-time
  // simulator lanes. Chrome timestamps are microseconds; the simulator's
  // virtual seconds map onto the same axis one-to-one (1 sim s = 1 s).
  constexpr int kWallPid = 1;
  constexpr int kSimPid = 2;
  bool first = true;
  auto emit = [&](const std::string& line) {
    if (!first) {
      json << ",\n";
    }
    first = false;
    json << line;
  };
  emit(StrFormat("{\"ph\":\"M\",\"pid\":%d,\"name\":\"process_name\","
                 "\"args\":{\"name\":\"compile (wall clock)\"}}",
                 kWallPid));
  emit(StrFormat("{\"ph\":\"M\",\"pid\":%d,\"name\":\"process_name\","
                 "\"args\":{\"name\":\"pipeline simulation (virtual time)\"}}",
                 kSimPid));
  int last_lane = -1;
  for (const TraceEvent& e : events) {
    const int pid = e.virtual_time ? kSimPid : kWallPid;
    if (e.lane_id != last_lane) {
      last_lane = e.lane_id;
      emit(StrFormat("{\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"name\":\"thread_name\","
                     "\"args\":{\"name\":\"%s\"}}",
                     pid, e.lane_id, JsonEscape(e.lane).c_str()));
      emit(StrFormat("{\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"name\":\"thread_sort_index\","
                     "\"args\":{\"sort_index\":%d}}",
                     pid, e.lane_id, e.lane_id));
    }
    const double ts_us = e.start * 1e6;
    const double dur_us = (e.end - e.start) * 1e6;
    emit(StrFormat("{\"ph\":\"X\",\"pid\":%d,\"tid\":%d,\"name\":\"%s\",\"cat\":\"%s\","
                   "\"ts\":%.3f,\"dur\":%.3f,\"args\":{%s}}",
                   pid, e.lane_id, JsonEscape(e.name).c_str(),
                   JsonEscape(e.category).c_str(), ts_us, dur_us, e.args.c_str()));
  }
  json << "\n]\n}\n";
  return json.str();
}

std::string Trace::SummaryText() {
  struct Agg {
    int64_t count = 0;
    double total = 0.0;
  };
  std::map<std::pair<std::string, std::string>, Agg> by_name;
  for (const TraceEvent& e : Snapshot()) {
    Agg& agg = by_name[{e.category, e.name}];
    ++agg.count;
    agg.total += e.end - e.start;
  }
  std::ostringstream out;
  out << "trace summary (" << event_count() << " events)\n";
  for (const auto& [key, agg] : by_name) {
    out << StrFormat("  %-10s %-28s n=%-6lld total=%-12s avg=%s\n",
                     key.first.c_str(), key.second.c_str(),
                     static_cast<long long>(agg.count),
                     HumanSeconds(agg.total).c_str(),
                     HumanSeconds(agg.total / static_cast<double>(agg.count)).c_str());
  }
  const std::string metrics = Metrics::SummaryText();
  if (!metrics.empty()) {
    out << "metrics\n" << metrics;
  }
  return out.str();
}

Status Trace::WriteJson(const std::string& path) {
  const std::string json = ChromeTraceJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Internal("cannot open trace file for writing: " + path);
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool close_ok = std::fclose(f) == 0;
  if (written != json.size() || !close_ok) {
    return Status::Internal("short write to trace file: " + path);
  }
  return Status::Ok();
}

Metric* Metrics::Get(const std::string& name) {
  MetricsState& state = MetricsStateSingleton();
  std::lock_guard<std::mutex> lock(state.mu);
  std::unique_ptr<Metric>& slot = state.metrics[name];
  if (slot == nullptr) {
    slot = std::make_unique<Metric>();
  }
  return slot.get();
}

int64_t Metrics::Value(const std::string& name) {
  MetricsState& state = MetricsStateSingleton();
  std::lock_guard<std::mutex> lock(state.mu);
  const auto it = state.metrics.find(name);
  return it == state.metrics.end() ? 0 : it->second->value();
}

int64_t Metrics::MaxValue(const std::string& name) {
  MetricsState& state = MetricsStateSingleton();
  std::lock_guard<std::mutex> lock(state.mu);
  const auto it = state.metrics.find(name);
  return it == state.metrics.end() ? 0 : it->second->max_value();
}

std::string Metrics::SummaryText() {
  MetricsState& state = MetricsStateSingleton();
  std::lock_guard<std::mutex> lock(state.mu);
  std::ostringstream out;
  for (const auto& [name, metric] : state.metrics) {
    out << StrFormat("  %-32s = %-12lld (max %lld)\n", name.c_str(),
                     static_cast<long long>(metric->value()),
                     static_cast<long long>(metric->max_value()));
  }
  return out.str();
}

std::string Metrics::SummaryJsonBody() {
  MetricsState& state = MetricsStateSingleton();
  std::lock_guard<std::mutex> lock(state.mu);
  std::ostringstream out;
  bool first = true;
  for (const auto& [name, metric] : state.metrics) {
    if (!first) {
      out << ",";
    }
    first = false;
    out << StrFormat("\"%s\":%lld", JsonEscape(name).c_str(),
                     static_cast<long long>(metric->value()));
  }
  return out.str();
}

void Metrics::Reset() {
  MetricsState& state = MetricsStateSingleton();
  std::lock_guard<std::mutex> lock(state.mu);
  for (auto& [name, metric] : state.metrics) {
    metric->Reset();
  }
}

}  // namespace alpa
