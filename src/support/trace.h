// Process-wide tracing + metrics for the compiler and the simulator.
//
// Two coordinate systems share one trace file:
//   - Wall-clock spans (RAII TraceSpan) record where *compile* time goes:
//     the inter-op passes, every ILP solve (with cache-hit annotations),
//     and the thread pool's task execution, one lane per thread.
//   - Virtual-time events (Trace::EmitVirtual) record where *simulated*
//     iteration time goes: the discrete-event pipeline simulator exports
//     its per-mesh timeline (forward/backward/send/bubble) onto lanes in
//     simulated seconds, exactly the Fig. 13 view from the paper.
// The exporter writes Chrome-trace JSON (load in chrome://tracing or
// https://ui.perfetto.dev) with the two systems as separate "processes",
// plus a flat text summary. MetricsRegistry-style counters/gauges (ILP
// solves, cache hits/misses, resharding bytes, DP cells, pool queue depth)
// ride along in both outputs.
//
// Overhead discipline: everything is gated on one relaxed atomic flag.
// A disabled TraceSpan is two relaxed loads and no allocation; call sites
// stay unconditional. Spans buffer into per-thread lanes (one mutex each,
// never contended during recording) and ordering is normalized at export,
// so the span *structure* is deterministic across thread counts even
// though interleavings are not. Building with -DALPA_TRACE=OFF compiles
// the recording paths out entirely (Trace::kCompiledIn == false).
#ifndef SRC_SUPPORT_TRACE_H_
#define SRC_SUPPORT_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "src/support/status.h"

namespace alpa {

// One finished event, in the normalized form produced by Trace::Snapshot().
struct TraceEvent {
  std::string name;
  std::string category;  // "compile", "pool", "sim", "bubble", "transfer", "fault", ...
  std::string args;      // Body of a JSON object ("" = none), e.g. "\"layer\":3".
  std::string lane;      // Thread lane or virtual mesh lane name.
  int lane_id = 0;       // Dense per-snapshot id; wall lanes first, then virtual.
  double start = 0.0;    // Seconds. Wall spans: relative to the earliest span.
  double end = 0.0;
  bool virtual_time = false;  // Simulated seconds rather than wall clock.
};

class Trace {
 public:
  // False when the build compiled recording out (-DALPA_TRACE=OFF); tests
  // gate on this rather than failing in that configuration.
  static constexpr bool kCompiledIn =
#ifdef ALPA_TRACE_DISABLED
      false;
#else
      true;
#endif

  static bool enabled() { return enabled_.load(std::memory_order_relaxed); }
  static void Enable();
  static void Disable();
  // Drops all recorded events and resets the virtual-time cursor (metrics
  // are owned by Metrics and reset separately).
  static void Clear();

  // Names the calling thread's lane in the export ("main", "worker 0", ...).
  // Registers the lane, so it is cheap but not free; call once per thread.
  static void SetThreadName(const std::string& name);

  // Records a virtual-time event on the named lane, in simulated seconds.
  static void EmitVirtual(const std::string& lane, std::string name,
                          const char* category, double start, double end,
                          std::string args = "");

  // Reserves [base, base + duration) of virtual time and returns base, so
  // successive simulations lay out sequentially instead of overlapping.
  static double ReserveVirtualWindow(double duration);

  // All recorded events with normalized ordering: lanes sorted by name
  // (wall lanes before virtual lanes, ids dense from 0), events within a
  // lane sorted by (start, end, name). Thread-safe against recorders.
  static std::vector<TraceEvent> Snapshot();

  static int64_t event_count();

  // Chrome-trace / Perfetto JSON for the current snapshot (plus metrics in
  // "otherData"), and a flat per-span-name text summary.
  static std::string ChromeTraceJson();
  static std::string SummaryText();

  // Writes ChromeTraceJson() to `path`. kInternal on I/O failure.
  static Status WriteJson(const std::string& path);

 private:
  friend class TraceSpan;
  static std::atomic<bool> enabled_;
};

// RAII wall-clock span on the calling thread's lane. `name` and `category`
// must be string literals (stored by pointer; nothing is copied until the
// span ends). Nesting works naturally: inner spans simply record shorter
// intervals on the same lane, which trace viewers render stacked.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, const char* category = "compile") {
#ifndef ALPA_TRACE_DISABLED
    if (Trace::enabled()) {
      Begin(name, category);
    }
#endif
  }
  ~TraceSpan() {
#ifndef ALPA_TRACE_DISABLED
    if (active_) {
      End();
    }
#endif
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  // True when the span is recording; guard set_args() computations on it so
  // the disabled path does no string work.
  bool active() const { return active_; }

  // Attaches a JSON object body, e.g. "\"layer\":3,\"cache_hit\":true".
  void set_args(std::string json_body) { args_ = std::move(json_body); }

 private:
  void Begin(const char* name, const char* category);
  void End();

  const char* name_ = nullptr;
  const char* category_ = nullptr;
  double start_ = 0.0;
  std::string args_;
  bool active_ = false;
};

// Escapes a string for embedding inside a JSON string literal.
std::string JsonEscape(const std::string& s);

// A monotonically updated counter/gauge. Add() accumulates (counters);
// Set() overwrites (gauges). Both track the high-water mark. Lock-free.
class Metric {
 public:
  void Add(int64_t delta) {
    UpdateMax(value_.fetch_add(delta, std::memory_order_relaxed) + delta);
  }
  void Set(int64_t v) {
    value_.store(v, std::memory_order_relaxed);
    UpdateMax(v);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  int64_t max_value() const { return max_.load(std::memory_order_relaxed); }
  void Reset() {
    value_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

 private:
  void UpdateMax(int64_t v) {
    int64_t cur = max_.load(std::memory_order_relaxed);
    while (v > cur && !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  std::atomic<int64_t> value_{0};
  std::atomic<int64_t> max_{0};
};

// Process-wide registry of named metrics. Get() interns by name and the
// returned pointer is stable for the process lifetime, so hot paths cache
// it in a function-local static and pay only the atomic update.
class Metrics {
 public:
  static Metric* Get(const std::string& name);
  // Current value, 0 for never-touched metrics.
  static int64_t Value(const std::string& name);
  // High-water mark since the last Reset(), 0 for never-touched metrics.
  static int64_t MaxValue(const std::string& name);
  // "name = value (max N)" lines, sorted by name; "" when empty.
  static std::string SummaryText();
  // `"name":value` pairs for embedding in a JSON object body.
  static std::string SummaryJsonBody();
  // Zeroes every registered metric (tests; the registry itself persists).
  static void Reset();
};

}  // namespace alpa

#endif  // SRC_SUPPORT_TRACE_H_
