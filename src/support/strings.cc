#include "src/support/strings.h"

#include <cstdarg>
#include <cstdio>

namespace alpa {

std::string StrFormat(const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list args_copy;
  va_copy(args_copy, args);
  int size = vsnprintf(nullptr, 0, format, args);
  va_end(args);
  std::string result;
  if (size > 0) {
    result.resize(static_cast<size_t>(size));
    vsnprintf(result.data(), static_cast<size_t>(size) + 1, format, args_copy);
  }
  va_end(args_copy);
  return result;
}

namespace {

std::string WithSuffix(double value, double scale, const char* const* suffixes, int num_suffixes) {
  int idx = 0;
  while (idx + 1 < num_suffixes && value >= scale) {
    value /= scale;
    ++idx;
  }
  return StrFormat("%.2f %s", value, suffixes[idx]);
}

}  // namespace

std::string HumanBytes(double bytes) {
  static const char* const kSuffixes[] = {"B", "KB", "MB", "GB", "TB", "PB"};
  return WithSuffix(bytes, 1024.0, kSuffixes, 6);
}

std::string HumanSeconds(double seconds) {
  if (seconds >= 1.0) {
    return StrFormat("%.3f s", seconds);
  }
  if (seconds >= 1e-3) {
    return StrFormat("%.3f ms", seconds * 1e3);
  }
  return StrFormat("%.3f us", seconds * 1e6);
}

std::string HumanFlops(double flops) {
  static const char* const kSuffixes[] = {"FLOP", "KFLOP", "MFLOP", "GFLOP", "TFLOP", "PFLOP"};
  return WithSuffix(flops, 1000.0, kSuffixes, 6);
}

}  // namespace alpa
