// Deterministic pseudo-random number generator (SplitMix64) so that tests
// and benchmarks are reproducible across platforms and standard libraries.
#ifndef SRC_SUPPORT_RNG_H_
#define SRC_SUPPORT_RNG_H_

#include <cstdint>

namespace alpa {

class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  uint64_t NextUint64() {
    state_ += 0x9e3779b97f4a7c15ULL;
    uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  // Uniform integer in [0, bound).
  uint64_t NextBounded(uint64_t bound) { return bound == 0 ? 0 : NextUint64() % bound; }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextUint64() >> 11) * (1.0 / 9007199254740992.0);
  }

  // Uniform double in [lo, hi).
  double NextDouble(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

 private:
  uint64_t state_;
};

}  // namespace alpa

#endif  // SRC_SUPPORT_RNG_H_
