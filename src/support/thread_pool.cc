#include "src/support/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>

#include "src/support/logging.h"
#include "src/support/strings.h"
#include "src/support/trace.h"

namespace alpa {

namespace {

// Identity of the current thread inside its pool, for the Submit fast path
// (nested work goes onto the submitting worker's own deque).
thread_local const ThreadPool* tls_pool = nullptr;
thread_local int tls_worker_index = -1;

}  // namespace

struct ThreadPool::LoopState {
  std::atomic<int64_t> next{0};
  std::atomic<int64_t> done{0};
  int64_t n = 0;
  const std::function<void(int64_t)>* fn = nullptr;
  std::mutex mu;
  std::condition_variable finished;
  std::exception_ptr error;  // First failure; guarded by mu.

  // Claims and runs iterations until the counter is exhausted.
  void Drain() {
    while (true) {
      const int64_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) {
        return;
      }
      try {
        (*fn)(i);
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(mu);
          if (!error) {
            error = std::current_exception();
          }
        }
        // Cancel the unclaimed remainder; in-flight iterations still count
        // down through `done` so the caller's wait stays exact.
        int64_t expected = next.load(std::memory_order_relaxed);
        while (expected < n && !next.compare_exchange_weak(expected, n)) {
        }
        const int64_t cancelled = n - std::min<int64_t>(n, std::max<int64_t>(i + 1, expected));
        if (cancelled > 0 && done.fetch_add(cancelled) + cancelled == n) {
          finished.notify_all();
        }
      }
      if (done.fetch_add(1) + 1 == n) {
        std::lock_guard<std::mutex> lock(mu);
        finished.notify_all();
      }
    }
  }
};

ThreadPool::ThreadPool(int num_threads) {
  ALPA_CHECK_GE(num_threads, 1);
  queues_.resize(static_cast<size_t>(num_threads) + 1);
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerMain(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
  // Run anything still queued (fire-and-forget Submit stragglers) so no
  // submitted task is silently dropped.
  for (auto& queue : queues_) {
    while (!queue.empty()) {
      auto fn = std::move(queue.front());
      queue.pop_front();
      fn();
    }
  }
}

int ThreadPool::DefaultThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void ThreadPool::Push(int self, std::function<void()> fn) {
  const size_t queue = self >= 0 ? static_cast<size_t>(self) : queues_.size() - 1;
  {
    std::lock_guard<std::mutex> lock(mu_);
    queues_[queue].push_back(std::move(fn));
    if (Trace::enabled()) {
      size_t depth = 0;
      for (const auto& q : queues_) {
        depth += q.size();
      }
      static Metric* depth_metric = Metrics::Get("thread_pool/queue_depth");
      depth_metric->Set(static_cast<int64_t>(depth));
    }
  }
  wake_.notify_one();
}

void ThreadPool::Submit(std::function<void()> fn) {
  Push(tls_pool == this ? tls_worker_index : -1, std::move(fn));
}

bool ThreadPool::RunOneTask(int self) {
  std::function<void()> task;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const size_t own = self >= 0 ? static_cast<size_t>(self) : queues_.size() - 1;
    if (!queues_[own].empty()) {
      // Own deque: newest first, the classic work-stealing locality choice.
      task = std::move(queues_[own].back());
      queues_[own].pop_back();
    } else {
      // Steal: scan the other deques (overflow queue included) oldest
      // first, starting after our own slot so victims rotate.
      for (size_t k = 1; k < queues_.size() && !task; ++k) {
        auto& victim = queues_[(own + k) % queues_.size()];
        if (!victim.empty()) {
          task = std::move(victim.front());
          victim.pop_front();
        }
      }
    }
  }
  if (!task) {
    return false;
  }
  {
    // Category "pool": pool-task spans exist only when workers run, so the
    // "compile"-category span set stays thread-count invariant.
    TraceSpan span("pool_task", "pool");
    task();
  }
  return true;
}

void ThreadPool::WorkerMain(int index) {
  tls_pool = this;
  tls_worker_index = index;
  Trace::SetThreadName(StrFormat("pool worker %d", index));
  while (true) {
    if (RunOneTask(index)) {
      continue;
    }
    std::unique_lock<std::mutex> lock(mu_);
    wake_.wait(lock, [this] {
      if (stop_) {
        return true;
      }
      for (const auto& queue : queues_) {
        if (!queue.empty()) {
          return true;
        }
      }
      return false;
    });
    if (stop_) {
      return;
    }
  }
}

void ThreadPool::ParallelFor(int64_t n, const std::function<void(int64_t)>& fn) {
  if (n <= 0) {
    return;
  }
  if (n == 1) {
    fn(0);
    return;
  }
  auto state = std::make_shared<LoopState>();
  state->n = n;
  state->fn = &fn;
  // One claim-loop task per worker; each drains the shared counter, so load
  // balances automatically however long individual iterations run.
  const int64_t helpers = std::min<int64_t>(num_threads(), n);
  for (int64_t t = 0; t < helpers; ++t) {
    Submit([state] { state->Drain(); });
  }
  // The caller participates too...
  state->Drain();
  // ...then helps with other queued work (possibly nested loops spawned by
  // our own iterations) until every iteration has finished.
  const int self = tls_pool == this ? tls_worker_index : -1;
  while (state->done.load() < n) {
    if (RunOneTask(self)) {
      continue;
    }
    std::unique_lock<std::mutex> lock(state->mu);
    state->finished.wait_for(lock, std::chrono::milliseconds(1),
                             [&] { return state->done.load() >= n; });
  }
  // After done == n no task will ever dereference `fn` again (stale tasks
  // see an exhausted counter), so returning is safe.
  std::lock_guard<std::mutex> lock(state->mu);
  if (state->error) {
    std::rethrow_exception(state->error);
  }
}

void ParallelFor(ThreadPool* pool, int64_t n, const std::function<void(int64_t)>& fn) {
  if (pool == nullptr || pool->num_threads() <= 1 || n <= 1) {
    for (int64_t i = 0; i < n; ++i) {
      fn(i);
    }
    return;
  }
  pool->ParallelFor(n, fn);
}

}  // namespace alpa
