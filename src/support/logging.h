// Minimal logging and assertion support for alpa-cpp.
//
// Provides LOG(severity) streams and CHECK macros in the spirit of
// glog/absl, without external dependencies. CHECK failures print the
// failing expression with file/line context and abort.
#ifndef SRC_SUPPORT_LOGGING_H_
#define SRC_SUPPORT_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace alpa {

enum class LogSeverity {
  kInfo = 0,
  kWarning = 1,
  kError = 2,
  kFatal = 3,
};

// Returns the current minimum severity that is actually emitted.
// Controlled by SetMinLogSeverity; defaults to kWarning so that library
// internals stay quiet in tests and benchmarks.
LogSeverity MinLogSeverity();
void SetMinLogSeverity(LogSeverity severity);

namespace log_internal {

// Accumulates one log message and flushes it on destruction.
class LogMessage {
 public:
  LogMessage(const char* file, int line, LogSeverity severity);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
  LogSeverity severity_;
};

// Sink for disabled log statements; swallows the streamed values.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace log_internal

#define ALPA_LOG_INFO \
  ::alpa::log_internal::LogMessage(__FILE__, __LINE__, ::alpa::LogSeverity::kInfo).stream()
#define ALPA_LOG_WARNING \
  ::alpa::log_internal::LogMessage(__FILE__, __LINE__, ::alpa::LogSeverity::kWarning).stream()
#define ALPA_LOG_ERROR \
  ::alpa::log_internal::LogMessage(__FILE__, __LINE__, ::alpa::LogSeverity::kError).stream()
#define ALPA_LOG_FATAL \
  ::alpa::log_internal::LogMessage(__FILE__, __LINE__, ::alpa::LogSeverity::kFatal).stream()

#define ALPA_LOG(severity) ALPA_LOG_##severity

// CHECK macros: always on (also in release builds), since plan generation
// bugs silently produce wrong cost numbers otherwise.
#define ALPA_CHECK(condition)                                         \
  if (!(condition))                                                   \
  ::alpa::log_internal::LogMessage(__FILE__, __LINE__,                \
                                   ::alpa::LogSeverity::kFatal)       \
      .stream()                                                       \
      << "Check failed: " #condition " "

#define ALPA_CHECK_BINARY(lhs, rhs, op)                               \
  if (!((lhs)op(rhs)))                                                \
  ::alpa::log_internal::LogMessage(__FILE__, __LINE__,                \
                                   ::alpa::LogSeverity::kFatal)       \
      .stream()                                                       \
      << "Check failed: " #lhs " " #op " " #rhs " (" << (lhs) << " vs " << (rhs) << ") "

#define ALPA_CHECK_EQ(lhs, rhs) ALPA_CHECK_BINARY(lhs, rhs, ==)
#define ALPA_CHECK_NE(lhs, rhs) ALPA_CHECK_BINARY(lhs, rhs, !=)
#define ALPA_CHECK_LT(lhs, rhs) ALPA_CHECK_BINARY(lhs, rhs, <)
#define ALPA_CHECK_LE(lhs, rhs) ALPA_CHECK_BINARY(lhs, rhs, <=)
#define ALPA_CHECK_GT(lhs, rhs) ALPA_CHECK_BINARY(lhs, rhs, >)
#define ALPA_CHECK_GE(lhs, rhs) ALPA_CHECK_BINARY(lhs, rhs, >=)

}  // namespace alpa

#endif  // SRC_SUPPORT_LOGGING_H_
