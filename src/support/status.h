// Structured error handling for the public API (absl::Status-style,
// dependency-free).
//
// The compiler has several distinct failure modes that the old
// `ExecutionStats::feasible` / `oom` bool pair could not distinguish:
// invalid options (a mirror-field conflict, a nonsensical microbatch
// count), an infeasible search (the stage DP or operator clustering found
// no plan under the memory budget), and a plan that compiles but exceeds
// device memory when executed. Status carries the failure class plus a
// human-readable message; StatusOr<T> is "a T or the Status explaining why
// there is none".
#ifndef SRC_SUPPORT_STATUS_H_
#define SRC_SUPPORT_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "src/support/logging.h"

namespace alpa {

enum class StatusCode {
  kOk = 0,
  // Caller error: malformed or contradictory options.
  kInvalidArgument,
  // The search space contains no feasible plan (DP/clustering/ILP failure).
  kInfeasible,
  // A plan exists but exhausts a physical resource (simulated OOM).
  kResourceExhausted,
  // Environment failure (e.g. the trace sink cannot write its file).
  kInternal,
  // The request's deadline expired before (or while) it was served.
  kDeadlineExceeded,
  // The service cannot take the request right now (queue full, admission
  // rejected, server shutting down). Retryable by construction.
  kUnavailable,
};

inline const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kInfeasible:
      return "INFEASIBLE";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
  }
  return "UNKNOWN";
}

class Status {
 public:
  Status() = default;  // OK.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status Infeasible(std::string m) {
    return Status(StatusCode::kInfeasible, std::move(m));
  }
  static Status ResourceExhausted(std::string m) {
    return Status(StatusCode::kResourceExhausted, std::move(m));
  }
  static Status Internal(std::string m) {
    return Status(StatusCode::kInternal, std::move(m));
  }
  static Status DeadlineExceeded(std::string m) {
    return Status(StatusCode::kDeadlineExceeded, std::move(m));
  }
  static Status Unavailable(std::string m) {
    return Status(StatusCode::kUnavailable, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) {
      return "OK";
    }
    return std::string(StatusCodeName(code_)) + ": " + message_;
  }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

// A value of type T, or the Status explaining its absence. Accessors CHECK
// on misuse (value() of an error, status() is always safe).
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    ALPA_CHECK(!status_.ok()) << "StatusOr constructed from an OK status without a value";
  }
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    ALPA_CHECK(ok()) << "StatusOr::value() on error: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    ALPA_CHECK(ok()) << "StatusOr::value() on error: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    ALPA_CHECK(ok()) << "StatusOr::value() on error: " << status_.ToString();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  // The contained value, or `fallback` on error.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;
  std::optional<T> value_;
};

// Propagates a non-OK Status out of the enclosing function.
#define ALPA_RETURN_IF_ERROR(expr)              \
  do {                                          \
    ::alpa::Status _alpa_status_tmp = (expr);   \
    if (!_alpa_status_tmp.ok()) {               \
      return _alpa_status_tmp;                  \
    }                                           \
  } while (false)

}  // namespace alpa

#endif  // SRC_SUPPORT_STATUS_H_
