// Incremental FNV-1a 64-bit hashing.
//
// Used for the structural layer signatures of the stage profiler and the
// keys of the process-wide ILP memo cache: a 64-bit hash replaces the large
// heap-allocated signature strings the profiler originally compared, and
// doubles as a dictionary key that survives across profiler instances.
// Collisions are vanishingly unlikely at our scale (hundreds of layers);
// debug builds additionally verify hash-equal layers are string-equal.
#ifndef SRC_SUPPORT_HASHING_H_
#define SRC_SUPPORT_HASHING_H_

#include <cstdint>
#include <cstring>
#include <string_view>

namespace alpa {

class Fnv1a64 {
 public:
  Fnv1a64& Bytes(const void* data, size_t size) {
    const unsigned char* p = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < size; ++i) {
      hash_ ^= p[i];
      hash_ *= kPrime;
    }
    return *this;
  }

  Fnv1a64& U64(uint64_t value) { return Bytes(&value, sizeof(value)); }
  Fnv1a64& I64(int64_t value) { return Bytes(&value, sizeof(value)); }
  Fnv1a64& I32(int32_t value) { return Bytes(&value, sizeof(value)); }
  Fnv1a64& Double(double value) {
    // Bit pattern, not value: -0.0 vs 0.0 never occurs in our keys, and the
    // bit pattern is what determinism of the memoized results depends on.
    uint64_t bits;
    std::memcpy(&bits, &value, sizeof(bits));
    return U64(bits);
  }
  Fnv1a64& Bool(bool value) { return I32(value ? 1 : 0); }
  Fnv1a64& Str(std::string_view s) {
    Bytes(s.data(), s.size());
    // Length-delimit so "ab"+"c" and "a"+"bc" hash differently.
    return U64(s.size());
  }

  uint64_t hash() const { return hash_; }

 private:
  static constexpr uint64_t kOffset = 1469598103934665603ull;
  static constexpr uint64_t kPrime = 1099511628211ull;
  uint64_t hash_ = kOffset;
};

}  // namespace alpa

#endif  // SRC_SUPPORT_HASHING_H_
