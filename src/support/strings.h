// Small string helpers (printf-style formatting, joining) used across the
// code base. GCC 12 lacks std::format, so we wrap vsnprintf.
#ifndef SRC_SUPPORT_STRINGS_H_
#define SRC_SUPPORT_STRINGS_H_

#include <sstream>
#include <string>
#include <vector>

namespace alpa {

// printf-style formatting into a std::string.
std::string StrFormat(const char* format, ...) __attribute__((format(printf, 1, 2)));

// Joins the elements of `parts` with `sep`, streaming each element.
template <typename Container>
std::string StrJoin(const Container& parts, const std::string& sep) {
  std::ostringstream out;
  bool first = true;
  for (const auto& part : parts) {
    if (!first) {
      out << sep;
    }
    out << part;
    first = false;
  }
  return out.str();
}

// Formats a byte count with a human-readable suffix, e.g. "1.50 GB".
std::string HumanBytes(double bytes);

// Formats a duration given in seconds, e.g. "12.3 ms".
std::string HumanSeconds(double seconds);

// Formats a FLOP count, e.g. "2.40 TFLOP".
std::string HumanFlops(double flops);

}  // namespace alpa

#endif  // SRC_SUPPORT_STRINGS_H_
