#include "src/core/api.h"

#include <algorithm>

#include "src/support/logging.h"
#include "src/support/strings.h"

namespace alpa {

ParallelPlan Parallelize(Graph& graph, const ClusterSpec& cluster,
                         const ParallelizeOptions& options) {
  ParallelPlan plan;
  InterOpOptions inter = options.inter;
  inter.num_microbatches = options.num_microbatches;
  inter.compile_threads = options.compile_threads;

  // Infer the training precision from the parameters (fp16 models use
  // tensor cores; fp32 models like Wide-ResNet do not).
  bool any_f32_param = false;
  for (int id : graph.ParameterIds()) {
    any_f32_param |= graph.op(id).dtype == DType::kF32;
  }
  inter.profiler.intra.precision =
      any_f32_param ? Precision::kFloat32 : Precision::kFloat16;

  if (!options.enable_interop) {
    // The whole cluster is a single mesh; the DP degenerates to one stage.
    inter.submesh_shapes = {SubmeshShape{cluster.num_hosts, cluster.devices_per_host}};
    if (inter.target_layers == 0 && graph.NumLayers() == 0) {
      inter.target_layers = 1;
    }
  }
  if (!options.enable_intraop) {
    // Stages execute unpartitioned: single-device submeshes only, and the
    // intra-op pass restricted to fully replicated layouts.
    inter.submesh_shapes = {SubmeshShape{1, 1}};
    inter.profiler.intra.filter = [](const Graph&, const DeviceMesh&, const Operator&,
                                     const ParallelAlgorithm& a) {
      return a.output_spec.IsFullyReplicated() &&
             std::all_of(a.input_specs.begin(), a.input_specs.end(),
                         [](const ShardingSpec& s) { return s.IsFullyReplicated(); });
    };
  }

  plan.pipeline = RunInterOpPass(graph, cluster, inter);
  plan.compile_stats = plan.pipeline.stats;
  if (!plan.pipeline.feasible) {
    return plan;
  }

  // Orchestration: assemble per-stage execution profiles and cross-mesh
  // transfer costs for the simulator.
  const auto& stages = plan.pipeline.stages;
  plan.sim_input.num_microbatches = options.num_microbatches;
  plan.sim_input.schedule = options.schedule;
  plan.sim_input.device_memory_bytes = cluster.device.memory_bytes;
  for (size_t s = 0; s < stages.size(); ++s) {
    const CompiledStage& stage = stages[s];
    StageExecProfile profile;
    profile.t_forward = stage.t_forward;
    profile.t_backward = stage.t_backward;
    profile.t_update = stage.t_per_iteration;
    profile.weight_bytes = stage.weight_bytes;
    profile.act_bytes_per_microbatch = stage.act_bytes_per_microbatch;
    profile.work_bytes = stage.work_bytes;
    if (s + 1 < stages.size()) {
      const DeviceMesh src = DeviceMesh::Create(cluster, stage.placement, stage.logical_shape);
      const DeviceMesh dst = DeviceMesh::Create(cluster, stages[s + 1].placement,
                                                stages[s + 1].logical_shape);
      double transfer = 0.0;
      for (const CrossStageTensor& tensor : stage.sends_to_next) {
        transfer += CrossMeshReshardTime(src, tensor.src_spec, dst, tensor.dst_spec,
                                         tensor.shape, tensor.dtype_bytes, options.reshard);
      }
      profile.t_send_next = transfer;
    }
    plan.sim_input.stages.push_back(profile);
  }
  return plan;
}

ExecutionStats Simulate(const ParallelPlan& plan, const Graph& graph,
                        const ClusterSpec& cluster) {
  ExecutionStats stats;
  if (!plan.pipeline.feasible) {
    return stats;
  }
  const PipelineSimResult sim = SimulatePipeline(plan.sim_input);
  stats.feasible = true;
  stats.oom = sim.oom;
  stats.latency = sim.latency;
  stats.bubble_fraction = sim.bubble_fraction;
  for (double peak : sim.stage_peak_bytes) {
    stats.peak_memory_bytes = std::max(stats.peak_memory_bytes, peak);
  }
  const double per_microbatch =
      graph.FlopsForRole(OpRole::kForward) + graph.FlopsForRole(OpRole::kBackward);
  stats.total_flops = per_microbatch * plan.sim_input.num_microbatches +
                      graph.FlopsForRole(OpRole::kUpdate);
  stats.pflops = stats.latency > 0.0 ? stats.total_flops / stats.latency / 1e15 : 0.0;
  return stats;
}

ExecutionStats CompileAndSimulate(Graph& graph, const ClusterSpec& cluster,
                                  const ParallelizeOptions& options, ParallelPlan* plan_out) {
  ParallelPlan plan = Parallelize(graph, cluster, options);
  ExecutionStats stats = Simulate(plan, graph, cluster);
  if (plan_out != nullptr) {
    *plan_out = std::move(plan);
  }
  return stats;
}

std::string ExecutionStats::ToString() const {
  if (!feasible) {
    return "infeasible";
  }
  return StrFormat("latency=%s pflops=%.3f bubble=%.1f%% peak_mem=%s%s",
                   HumanSeconds(latency).c_str(), pflops, bubble_fraction * 100.0,
                   HumanBytes(peak_memory_bytes).c_str(), oom ? " OOM" : "");
}

}  // namespace alpa
