#include "src/core/api.h"

#include <algorithm>

#include "src/support/logging.h"
#include "src/support/strings.h"
#include "src/support/trace.h"

namespace alpa {

namespace {

// Flushes the accumulated trace to options.trace_path, if requested. Each
// entry point flushes on exit, so the last call in a
// Parallelize-then-Simulate sequence overwrites with the full timeline.
void MaybeWriteTrace(const ParallelizeOptions& options) {
  if (options.trace_path.empty()) {
    return;
  }
  const Status status = Trace::WriteJson(options.trace_path);
  if (!status.ok()) {
    ALPA_LOG(WARNING) << "trace export failed: " << status.ToString();
  }
}

}  // namespace

Status ParallelizeOptions::Finalize() {
  static const InterOpOptions kInterDefaults;
  if (num_microbatches < 0) {
    return Status::InvalidArgument(
        StrFormat("num_microbatches must be positive (or 0 = inherit), got %d",
                  num_microbatches));
  }
  if (num_microbatches > 0) {
    if (inter.num_microbatches != kInterDefaults.num_microbatches &&
        inter.num_microbatches != num_microbatches) {
      return Status::InvalidArgument(StrFormat(
          "num_microbatches set on both ParallelizeOptions (%d) and "
          "InterOpOptions (%d); set it once — InterOpOptions is authoritative",
          num_microbatches, inter.num_microbatches));
    }
    inter.num_microbatches = num_microbatches;
  }
  if (inter.num_microbatches <= 0) {
    return Status::InvalidArgument(StrFormat("inter.num_microbatches must be positive, got %d",
                                             inter.num_microbatches));
  }

  if (compile_threads < kInheritThreads) {
    return Status::InvalidArgument(
        StrFormat("compile_threads must be >= 0 (or kInheritThreads), got %d", compile_threads));
  }
  if (compile_threads != kInheritThreads) {
    if (inter.compile_threads != kInterDefaults.compile_threads &&
        inter.compile_threads != compile_threads) {
      return Status::InvalidArgument(StrFormat(
          "compile_threads set on both ParallelizeOptions (%d) and "
          "InterOpOptions (%d); set it once — InterOpOptions is authoritative",
          compile_threads, inter.compile_threads));
    }
    inter.compile_threads = compile_threads;
  }
  if (inter.compile_threads < 0) {
    return Status::InvalidArgument(
        StrFormat("inter.compile_threads must be >= 0, got %d", inter.compile_threads));
  }
  // The mirrors keep their sentinel/user values: a finalized options object
  // can be used as a template whose inter.* fields are tweaked and
  // re-finalized (the benchmarks' BaselineOptionTemplate pattern).
  return Status::Ok();
}

ParallelizeOptions ParallelizeOptions::Builder::Build() const {
  ParallelizeOptions options = options_;
  const Status status = options.Finalize();
  ALPA_CHECK(status.ok()) << "invalid builder configuration: " << status.ToString();
  return options;
}

StatusOr<ParallelPlan> Parallelize(Graph& graph, const ClusterSpec& cluster,
                                   const ParallelizeOptions& options) {
  ParallelizeOptions opts = options;
  ALPA_RETURN_IF_ERROR(opts.Finalize());
  if (!opts.trace_path.empty()) {
    Trace::Enable();
    Trace::SetThreadName("main");  // The lane driving compilation.
  }
  TraceSpan span("parallelize");

  ParallelPlan plan;
  InterOpOptions inter = opts.inter;

  // Infer the training precision from the parameters (fp16 models use
  // tensor cores; fp32 models like Wide-ResNet do not).
  bool any_f32_param = false;
  for (int id : graph.ParameterIds()) {
    any_f32_param |= graph.op(id).dtype == DType::kF32;
  }
  inter.profiler.intra.precision =
      any_f32_param ? Precision::kFloat32 : Precision::kFloat16;

  if (!opts.enable_interop) {
    // The whole cluster is a single mesh; the DP degenerates to one stage.
    inter.submesh_shapes = {SubmeshShape{cluster.num_hosts, cluster.devices_per_host}};
    if (inter.target_layers == 0 && graph.NumLayers() == 0) {
      inter.target_layers = 1;
    }
  }
  if (!opts.enable_intraop) {
    // Stages execute unpartitioned: single-device submeshes only, and the
    // intra-op pass restricted to fully replicated layouts.
    inter.submesh_shapes = {SubmeshShape{1, 1}};
    inter.profiler.intra.filter = [](const Graph&, const DeviceMesh&, const Operator&,
                                     const ParallelAlgorithm& a) {
      return a.output_spec.IsFullyReplicated() &&
             std::all_of(a.input_specs.begin(), a.input_specs.end(),
                         [](const ShardingSpec& s) { return s.IsFullyReplicated(); });
    };
  }

  plan.pipeline = RunInterOpPass(graph, cluster, inter);
  plan.compile_stats = plan.pipeline.stats;
  if (!plan.pipeline.feasible) {
    MaybeWriteTrace(opts);
    return Status::Infeasible(plan.pipeline.infeasible_reason.empty()
                                  ? "inter-op pass found no feasible plan"
                                  : plan.pipeline.infeasible_reason);
  }

  // Orchestration: assemble per-stage execution profiles and cross-mesh
  // transfer costs for the simulator and the executor.
  TraceSpan orchestration_span("orchestrate");
  plan.sim_input = BuildPipelineSimInput(plan.pipeline, cluster, opts.schedule, opts.reshard);
  MaybeWriteTrace(opts);
  return plan;
}

PipelineSimInput BuildPipelineSimInput(const CompiledPipeline& pipeline,
                                       const ClusterSpec& cluster,
                                       PipelineScheduleType schedule, ReshardStrategy reshard) {
  PipelineSimInput input;
  const auto& stages = pipeline.stages;
  input.num_microbatches = pipeline.num_microbatches;
  input.schedule = schedule;
  input.device_memory_bytes = cluster.device.memory_bytes;
  // The compiler assumes a healthy cluster; the fault scenario only affects
  // the simulated execution of the finished plan.
  input.faults = cluster.faults;
  input.devices_per_host = cluster.devices_per_host;
  const bool hetero = cluster.heterogeneous();
  for (size_t s = 0; s < stages.size(); ++s) {
    const CompiledStage& stage = stages[s];
    input.stage_devices.push_back(stage.device_ids);
    if (hetero) {
      // Mixed generations: each stage is bounded by the tightest device its
      // placement spans, not the reference capacity.
      input.stage_memory_bytes.push_back(PlacementMemoryBytes(cluster, stage.placement));
    }
    StageExecProfile profile;
    profile.t_forward = stage.t_forward;
    profile.t_backward = stage.t_backward;
    profile.t_update = stage.t_per_iteration;
    profile.weight_bytes = stage.weight_bytes;
    profile.act_bytes_per_microbatch = stage.act_bytes_per_microbatch;
    profile.work_bytes = stage.work_bytes;
    if (s + 1 < stages.size()) {
      const DeviceMesh src = DeviceMesh::Create(cluster, stage.placement, stage.logical_shape);
      const DeviceMesh dst = DeviceMesh::Create(cluster, stages[s + 1].placement,
                                                stages[s + 1].logical_shape);
      double transfer = 0.0;
      for (const CrossStageTensor& tensor : stage.sends_to_next) {
        transfer += CrossMeshReshardTime(src, tensor.src_spec, dst, tensor.dst_spec,
                                         tensor.shape, tensor.dtype_bytes, reshard);
      }
      profile.t_send_next = transfer;
    }
    input.stages.push_back(profile);
  }
  return input;
}

StatusOr<exec::ExecResult> ExecutePlan(const ParallelPlan& plan, const Graph& graph,
                                       const ClusterSpec& cluster,
                                       const exec::ExecOptions& options) {
  if (!plan.pipeline.feasible) {
    return Status::InvalidArgument(
        "ExecutePlan() needs a plan from a successful Parallelize() call");
  }
  TraceSpan span("execute_plan", "exec");
  return exec::ExecutePipeline(graph, plan.pipeline, cluster, plan.sim_input, options);
}

MeasuredProfileSource BuildMeasuredProfileSource(const ParallelPlan& plan,
                                                 const exec::ExecResult& result) {
  MeasuredProfileSource source;
  const int microbatches = std::max(1, plan.pipeline.num_microbatches);
  for (const exec::StageTiming& timing : result.stage_timings) {
    if (timing.stage < 0 ||
        timing.stage >= static_cast<int>(plan.pipeline.stages.size())) {
      continue;
    }
    const CompiledStage& stage = plan.pipeline.stages[static_cast<size_t>(timing.stage)];
    source.AddMeasurement(stage.layer_begin, stage.layer_end, stage.placement.shape,
                          timing.compute_seconds() / microbatches, stage.t_intra);
  }
  source.Finalize();
  return source;
}

StatusOr<ExecutionStats> Simulate(const ParallelPlan& plan, const Graph& graph,
                                  const ClusterSpec& cluster) {
  if (!plan.pipeline.feasible) {
    return Status::InvalidArgument(
        "Simulate() needs a plan from a successful Parallelize() call");
  }
  TraceSpan span("simulate");
  PipelineSimInput sim_input = plan.sim_input;
  if (Trace::enabled()) {
    sim_input.record_timeline = true;
  }
  const PipelineSimResult sim = SimulatePipeline(sim_input);
  ExportTimelineToTrace(sim_input, sim, "train_iteration");

  ExecutionStats stats;
  stats.latency = sim.latency;
  stats.bubble_fraction = sim.bubble_fraction;
  for (double peak : sim.stage_peak_bytes) {
    stats.peak_memory_bytes = std::max(stats.peak_memory_bytes, peak);
  }
  const double per_microbatch =
      graph.FlopsForRole(OpRole::kForward) + graph.FlopsForRole(OpRole::kBackward);
  stats.total_flops = per_microbatch * plan.sim_input.num_microbatches +
                      graph.FlopsForRole(OpRole::kUpdate);
  stats.pflops = stats.latency > 0.0 ? stats.total_flops / stats.latency / 1e15 : 0.0;
  if (sim.oom) {
    const double peak = sim.first_oom_stage >= 0
                            ? sim.stage_peak_bytes[static_cast<size_t>(sim.first_oom_stage)]
                            : stats.peak_memory_bytes;
    const size_t oom_stage = static_cast<size_t>(std::max(sim.first_oom_stage, 0));
    const double capacity = oom_stage < plan.sim_input.stage_memory_bytes.size()
                                ? plan.sim_input.stage_memory_bytes[oom_stage]
                                : plan.sim_input.device_memory_bytes;
    return Status::ResourceExhausted(
        StrFormat("stage %d exceeds device memory: peak %s > capacity %s",
                  sim.first_oom_stage, HumanBytes(peak).c_str(),
                  HumanBytes(capacity).c_str()));
  }
  return stats;
}

StatusOr<ExecutionStats> CompileAndSimulate(Graph& graph, const ClusterSpec& cluster,
                                            const ParallelizeOptions& options,
                                            ParallelPlan* plan_out) {
  StatusOr<ParallelPlan> plan = Parallelize(graph, cluster, options);
  if (!plan.ok()) {
    return plan.status();
  }
  StatusOr<ExecutionStats> stats = Simulate(*plan, graph, cluster);
  if (plan_out != nullptr) {
    *plan_out = std::move(*plan);
  }
  MaybeWriteTrace(options);
  return stats;
}

StatusOr<RepairResult> RepairPlan(Graph& graph, const ClusterSpec& cluster,
                                  const ParallelizeOptions& parallelize_options,
                                  const RepairOptions& options) {
  if (options.failed_host < 0 || options.failed_host >= cluster.num_hosts) {
    return Status::InvalidArgument(StrFormat("failed_host %d out of range [0, %d)",
                                             options.failed_host, cluster.num_hosts));
  }
  if (cluster.num_hosts <= 1) {
    return Status::Infeasible(
        "cannot repair a single-host cluster: no hosts remain after dropping "
        "the failed one");
  }
  TraceSpan span("repair_plan");

  // Every host carrying a permanent device failure is as gone as the failed
  // host — a submesh containing one can never finish an iteration, and
  // submeshes span whole hosts (5.2), so dead hosts drop at host
  // granularity. A scenario that kills every host leaves zero feasible
  // submeshes and must be rejected, not compiled for a phantom cluster.
  std::vector<bool> host_dead(static_cast<size_t>(cluster.num_hosts), false);
  host_dead[static_cast<size_t>(options.failed_host)] = true;
  for (const DeviceFailure& failure : cluster.faults.device_failures) {
    const int host = failure.device / std::max(cluster.devices_per_host, 1);
    if (host < 0 || host >= cluster.num_hosts) {
      return Status::InvalidArgument(
          StrFormat("fault scenario names device %d outside the cluster's %d devices",
                    failure.device, cluster.num_devices()));
    }
    host_dead[static_cast<size_t>(host)] = true;
  }
  const int remaining_hosts =
      cluster.num_hosts -
      static_cast<int>(std::count(host_dead.begin(), host_dead.end(), true));
  if (remaining_hosts == 0) {
    return Status::InvalidArgument(
        "fault scenario leaves zero feasible submeshes: every host is lost "
        "(failed_host plus permanent device failures cover the whole cluster)");
  }

  RepairResult result;
  // The repaired job runs on the survivors with the fault scenario consumed
  // (the failures already happened; transient-fault fields would
  // double-charge the repaired run). On a homogeneous cluster only the
  // count matters; mixed-generation clusters also keep the surviving
  // hosts' generations in order.
  result.shrunk_cluster = cluster;
  result.shrunk_cluster.num_hosts = remaining_hosts;
  result.shrunk_cluster.faults = FaultSpec{};
  if (!cluster.host_devices.empty()) {
    result.shrunk_cluster.host_devices.clear();
    for (int h = 0; h < cluster.num_hosts; ++h) {
      if (!host_dead[static_cast<size_t>(h)]) {
        result.shrunk_cluster.host_devices.push_back(cluster.host_device(h));
      }
    }
  }

  ParallelizeOptions opts = parallelize_options;
  opts.trace_path.clear();  // The caller's trace flushes once, at the end.
  StatusOr<ParallelPlan> plan = Parallelize(graph, result.shrunk_cluster, opts);
  if (!plan.ok()) {
    return plan.status();
  }
  result.recompile_seconds = plan->compile_stats.total_seconds;
  result.ilp_cache_hits = plan->compile_stats.ilp_cache_hits;
  result.ilp_cache_misses = plan->compile_stats.ilp_cache_misses;
  StatusOr<ExecutionStats> stats = Simulate(*plan, graph, result.shrunk_cluster);
  if (!stats.ok()) {
    return stats.status();
  }
  result.plan = std::move(*plan);
  result.stats = *stats;

  const MtbfModel& mtbf = options.mtbf;
  result.expected_downtime_seconds = cluster.faults.detection_timeout +
                                     result.recompile_seconds +
                                     mtbf.checkpoint_restore_seconds +
                                     0.5 * mtbf.checkpoint_interval_seconds;
  if (mtbf.mtbf_seconds > 0.0) {
    result.goodput_fraction =
        mtbf.mtbf_seconds / (mtbf.mtbf_seconds + result.expected_downtime_seconds);
  }
  result.goodput_pflops = result.stats.pflops * result.goodput_fraction;
  return result;
}

std::string RepairResult::ToString() const {
  return StrFormat(
      "RepairResult: %d hosts remain, %s, recompile=%s (ilp cache %lld hit / "
      "%lld miss), downtime=%s, goodput=%.1f%% (%.3f pflops)",
      shrunk_cluster.num_hosts, stats.ToString().c_str(),
      HumanSeconds(recompile_seconds).c_str(), static_cast<long long>(ilp_cache_hits),
      static_cast<long long>(ilp_cache_misses),
      HumanSeconds(expected_downtime_seconds).c_str(), goodput_fraction * 100.0,
      goodput_pflops);
}

std::string ExecutionStats::ToString() const {
  return StrFormat("latency=%s pflops=%.3f bubble=%.1f%% peak_mem=%s",
                   HumanSeconds(latency).c_str(), pflops, bubble_fraction * 100.0,
                   HumanBytes(peak_memory_bytes).c_str());
}

}  // namespace alpa
