// Plan and timeline visualization (the Fig. 6 pipeline diagram and the
// Fig. 13/14 strategy renderings, as ASCII).
#ifndef SRC_CORE_VISUALIZE_H_
#define SRC_CORE_VISUALIZE_H_

#include <string>

#include "src/core/api.h"

namespace alpa {

// ASCII Gantt chart of one training iteration: a row per stage, forward
// cells as the microbatch digit, backward cells as letters, '.' for idle
// (the pipeline bubbles of Fig. 6), 'U' for the weight update.
std::string RenderPipelineTimeline(const PipelineSimInput& input, int width = 100);

// Stage-by-stage plan summary: layers, submesh, logical mesh, latency and
// memory, followed by the sharding specs of the heavy forward operators
// (Fig. 13: which tensors are batch- vs channel-partitioned).
std::string RenderPlanSummary(const CompiledPipeline& pipeline, int max_ops_per_stage = 16);

}  // namespace alpa

#endif  // SRC_CORE_VISUALIZE_H_
