#include "src/core/visualize.h"

#include <algorithm>
#include <cmath>

#include "src/support/logging.h"
#include "src/support/strings.h"

namespace alpa {

std::string RenderPipelineTimeline(const PipelineSimInput& input, int width) {
  PipelineSimInput recording = input;
  recording.record_timeline = true;
  const PipelineSimResult result = SimulatePipeline(recording);
  if (result.latency <= 0.0 || result.timeline.empty()) {
    return "(empty timeline)\n";
  }
  const int num_stages = static_cast<int>(input.stages.size());
  std::vector<std::string> rows(static_cast<size_t>(num_stages),
                                std::string(static_cast<size_t>(width), '.'));
  const double scale = width / result.latency;
  for (const StageEvent& event : result.timeline) {
    const int begin = std::min(width - 1, static_cast<int>(event.start * scale));
    const int end = std::max(begin + 1, std::min(width, static_cast<int>(event.end * scale)));
    char glyph = 'U';
    if (event.kind == PipelineInstruction::Kind::kForward) {
      glyph = static_cast<char>('0' + event.microbatch % 10);
    } else if (event.kind == PipelineInstruction::Kind::kBackward) {
      glyph = static_cast<char>('a' + event.microbatch % 26);
    }
    for (int x = begin; x < end; ++x) {
      rows[static_cast<size_t>(event.stage)][static_cast<size_t>(x)] = glyph;
    }
  }
  std::string out = StrFormat(
      "pipeline timeline (%s total; digits = forward mb, letters = backward mb, U = update)\n",
      HumanSeconds(result.latency).c_str());
  for (int s = 0; s < num_stages; ++s) {
    out += StrFormat("stage %2d |%s|\n", s, rows[static_cast<size_t>(s)].c_str());
  }
  return out;
}

std::string RenderPlanSummary(const CompiledPipeline& pipeline, int max_ops_per_stage) {
  if (!pipeline.feasible) {
    return "(infeasible plan)\n";
  }
  std::string out = StrFormat("%zu stages, %d microbatches, T* = %s\n", pipeline.stages.size(),
                              pipeline.num_microbatches,
                              HumanSeconds(pipeline.dp_latency).c_str());
  for (size_t s = 0; s < pipeline.stages.size(); ++s) {
    const CompiledStage& stage = pipeline.stages[s];
    out += StrFormat(
        "stage %zu: layers [%d,%d]  submesh %s -> logical (%d,%d)  t=%s  mem=%s (+%s/mb)\n", s,
        stage.layer_begin, stage.layer_end, stage.placement.shape.ToString().c_str(),
        stage.logical_shape[0], stage.logical_shape[1], HumanSeconds(stage.t_intra).c_str(),
        HumanBytes(stage.weight_bytes).c_str(),
        HumanBytes(stage.act_bytes_per_microbatch).c_str());
    int shown = 0;
    for (const auto& [name, spec] : stage.op_spec_summary) {
      if (spec.find('S') == std::string::npos) {
        continue;  // Skip fully replicated entries; partitioning is the story.
      }
      out += StrFormat("    %-32s %s\n", name.c_str(), spec.c_str());
      if (++shown >= max_ops_per_stage) {
        out += "    ...\n";
        break;
      }
    }
  }
  return out;
}

}  // namespace alpa
