// Public entry points of alpa-cpp.
//
// Parallelize() is the analogue of the paper's @parallelize decorator
// (Fig. 4): given a training graph and a cluster, it runs the three
// compilation passes (inter-op DP, intra-op ILP, runtime orchestration) and
// returns an executable parallel plan. Simulate() executes the plan on the
// analytical cluster model and reports iteration latency, aggregate PFLOPS
// (the paper's weak-scaling metric, 7.1), memory, and pipeline bubbles.
#ifndef SRC_CORE_API_H_
#define SRC_CORE_API_H_

#include <string>

#include "src/graph/graph.h"
#include "src/inter/inter_pass.h"
#include "src/mesh/cluster_spec.h"
#include "src/runtime/cross_mesh.h"
#include "src/runtime/simulator.h"

namespace alpa {

struct ParallelizeOptions {
  int num_microbatches = 16;
  PipelineScheduleType schedule = PipelineScheduleType::k1F1B;
  // false: the whole cluster is one mesh (the "intra-op only" baseline).
  bool enable_interop = true;
  // false: stages run on single devices without partitioning (the
  // "inter-op only" baseline).
  bool enable_intraop = true;
  ReshardStrategy reshard = ReshardStrategy::kLocalAllGather;
  // Compilation worker threads (1 = serial, 0 = hardware concurrency).
  // Any value yields bit-identical plans; see InterOpOptions::compile_threads.
  int compile_threads = 1;
  InterOpOptions inter;  // num_microbatches and compile_threads are mirrored from above.
};

struct ExecutionStats {
  bool feasible = false;
  bool oom = false;
  double latency = 0.0;          // One training iteration.
  double total_flops = 0.0;      // Across the cluster, per iteration.
  double pflops = 0.0;           // Aggregate throughput (the Fig. 8 metric).
  double bubble_fraction = 0.0;  // Pipeline idle share.
  double peak_memory_bytes = 0.0;
  std::string ToString() const;
};

struct ParallelPlan {
  CompiledPipeline pipeline;
  PipelineSimInput sim_input;
  CompileStats compile_stats;
};

// Runs the full compiler stack. `graph` is re-tagged in place by operator
// clustering.
ParallelPlan Parallelize(Graph& graph, const ClusterSpec& cluster,
                         const ParallelizeOptions& options);

// Executes the plan on the simulated cluster.
ExecutionStats Simulate(const ParallelPlan& plan, const Graph& graph,
                        const ClusterSpec& cluster);

// One-call convenience used by the benchmarks.
ExecutionStats CompileAndSimulate(Graph& graph, const ClusterSpec& cluster,
                                  const ParallelizeOptions& options,
                                  ParallelPlan* plan_out = nullptr);

}  // namespace alpa

#endif  // SRC_CORE_API_H_
