// Public entry points of alpa-cpp.
//
// Parallelize() is the analogue of the paper's @parallelize decorator
// (Fig. 4): given a training graph and a cluster, it runs the three
// compilation passes (inter-op DP, intra-op ILP, runtime orchestration) and
// returns an executable parallel plan. Simulate() executes the plan on the
// analytical cluster model and reports iteration latency, aggregate PFLOPS
// (the paper's weak-scaling metric, 7.1), memory, and pipeline bubbles.
//
// The PRIMARY client API is alpa::serve::PlanService (src/serve/service.h):
// the same three operations as a request/response surface that runs
// in-process (InProcessPlanService, layered over the persistent plan cache)
// or against an alpa_serve daemon (RemotePlanService) without the caller
// changing. The free functions below remain as documented thin shims for
// one-shot compiles that want neither request plumbing nor caching.
//
// Failures are structured (src/support/status.h) rather than flag pairs:
//   kInvalidArgument   — contradictory or out-of-range options
//   kInfeasible        — clustering/stage-DP found no plan under the budget
//   kResourceExhausted — the plan executes but a stage exceeds device memory
#ifndef SRC_CORE_API_H_
#define SRC_CORE_API_H_

#include <string>

#include "src/exec/executor.h"
#include "src/graph/graph.h"
#include "src/inter/inter_pass.h"
#include "src/mesh/cluster_spec.h"
#include "src/runtime/cross_mesh.h"
#include "src/runtime/simulator.h"
#include "src/support/status.h"

namespace alpa {

struct ParallelizeOptions {
  // Convenience mirror of inter.num_microbatches (the single source of
  // truth). 0 = inherit from `inter`; Finalize() rejects a conflict when
  // both are set explicitly.
  int num_microbatches = 0;
  PipelineScheduleType schedule = PipelineScheduleType::k1F1B;
  // false: the whole cluster is one mesh (the "intra-op only" baseline).
  bool enable_interop = true;
  // false: stages run on single devices without partitioning (the
  // "inter-op only" baseline).
  bool enable_intraop = true;
  ReshardStrategy reshard = ReshardStrategy::kLocalAllGather;
  // Convenience mirror of inter.compile_threads (1 = serial, 0 = hardware
  // concurrency). kInheritThreads = inherit from `inter`. Any value yields
  // bit-identical plans; see InterOpOptions::compile_threads.
  static constexpr int kInheritThreads = -1;
  int compile_threads = kInheritThreads;
  // Non-empty: enable the process-wide trace for this compilation and write
  // the accumulated Chrome-trace JSON here after each entry point returns
  // (Parallelize after compiling, CompileAndSimulate again after
  // simulating, so the final file holds the unified timeline).
  std::string trace_path;
  InterOpOptions inter;

  // Resolves the mirror fields into `inter` and validates everything.
  // kInvalidArgument when a mirror and an explicitly-set inter field
  // disagree, or a value is out of range. Idempotent; the entry points call
  // it on their private copy, so callers only need it to pre-validate.
  Status Finalize();

  class Builder;
};

// Fluent construction for the common call sites:
//   ParallelizeOptions::Builder().microbatches(16).threads(0).trace(path).Build()
// Setters write the authoritative InterOpOptions fields directly, so built
// options can never hit a mirror conflict. Build() CHECKs validity —
// builder misuse is a programming error, not an input error.
class ParallelizeOptions::Builder {
 public:
  Builder& microbatches(int n) {
    options_.inter.num_microbatches = n;
    return *this;
  }
  Builder& schedule(PipelineScheduleType s) {
    options_.schedule = s;
    return *this;
  }
  // Compilation worker threads (1 = serial, 0 = hardware concurrency).
  Builder& threads(int n) {
    options_.inter.compile_threads = n;
    return *this;
  }
  // Chrome-trace JSON output path; "" = tracing stays off.
  Builder& trace(std::string path) {
    options_.trace_path = std::move(path);
    return *this;
  }
  Builder& target_layers(int n) {
    options_.inter.target_layers = n;
    return *this;
  }
  Builder& interop(bool on) {
    options_.enable_interop = on;
    return *this;
  }
  Builder& intraop(bool on) {
    options_.enable_intraop = on;
    return *this;
  }
  Builder& reshard(ReshardStrategy s) {
    options_.reshard = s;
    return *this;
  }
  Builder& equal_layers(bool on) {
    options_.inter.equal_layer_stages = on;
    return *this;
  }
  // Node budget for each intra-op ILP solve (benchmark knob).
  Builder& search_budget(int64_t max_search_nodes) {
    options_.inter.profiler.intra.solver.max_search_nodes = max_search_nodes;
    return *this;
  }
  ParallelizeOptions Build() const;

 private:
  ParallelizeOptions options_;
};

struct ExecutionStats {
  double latency = 0.0;          // One training iteration.
  double total_flops = 0.0;      // Across the cluster, per iteration.
  double pflops = 0.0;           // Aggregate throughput (the Fig. 8 metric).
  double bubble_fraction = 0.0;  // Pipeline idle share.
  double peak_memory_bytes = 0.0;
  std::string ToString() const;
};

struct ParallelPlan {
  CompiledPipeline pipeline;
  PipelineSimInput sim_input;
  CompileStats compile_stats;
};

// Assembles the simulator/executor input from a compiled pipeline: stage
// execution profiles, cross-mesh transfer costs under `reshard`, the
// schedule, device placements, and the cluster's fault scenario. This is
// the ONLY construction path — Parallelize() calls it, and ExecutePlan()
// consumes its output — so stage_devices and fault specs cannot drift
// between the simulated and the executed pipeline.
PipelineSimInput BuildPipelineSimInput(const CompiledPipeline& pipeline,
                                       const ClusterSpec& cluster,
                                       PipelineScheduleType schedule, ReshardStrategy reshard);

// Runs the full compiler stack. `graph` is re-tagged in place by operator
// clustering. Errors: kInvalidArgument (bad options), kInfeasible (no plan).
StatusOr<ParallelPlan> Parallelize(Graph& graph, const ClusterSpec& cluster,
                                   const ParallelizeOptions& options);

// Builds a measured-profile override from an executed plan: each stage's
// measured per-microbatch compute time (forward+backward, max across the
// stage's devices) keyed by its layer interval and submesh shape, with the
// median measured/analytical ratio calibrating every unmeasured candidate.
// Point InterOpOptions::profile_source at the returned object (it must
// outlive the pass) and re-run Parallelize to fold real execution times
// back into the stage-slicing DP.
MeasuredProfileSource BuildMeasuredProfileSource(const ParallelPlan& plan,
                                                 const exec::ExecResult& result);

// Executes the plan on the simulated cluster. Errors: kInvalidArgument
// (plan did not come from a successful Parallelize), kResourceExhausted
// (a stage's working set exceeds device memory; the message names the
// stage and the sizes).
StatusOr<ExecutionStats> Simulate(const ParallelPlan& plan, const Graph& graph,
                                  const ClusterSpec& cluster);

// One-call convenience used by the benchmarks. On kResourceExhausted the
// compiled plan is still stored to `plan_out`.
StatusOr<ExecutionStats> CompileAndSimulate(Graph& graph, const ClusterSpec& cluster,
                                            const ParallelizeOptions& options,
                                            ParallelPlan* plan_out = nullptr);

// Really executes the plan: one worker thread per logical device runs the
// static instruction lists over real float tensors (src/exec), consuming
// the plan's own sim_input so schedule and placements match the simulator
// by construction. Deterministic reduction mode reproduces the reference
// interpreter bit for bit. Errors: kInvalidArgument (plan did not come from
// a successful Parallelize, or kSignalOnly resharding).
StatusOr<exec::ExecResult> ExecutePlan(const ParallelPlan& plan, const Graph& graph,
                                       const ClusterSpec& cluster,
                                       const exec::ExecOptions& options = {});

// --- Plan repair after a permanent host failure -------------------------
//
// The paper compiles for a static healthy cluster. When the simulated
// runtime reports an unrecoverable device loss, RepairPlan() answers "what
// happens next": drop the failed host, recompile for the shrunk cluster
// (the process-wide ILP memo cache makes this a warm recompile — submesh
// profiles are keyed by shape, not placement, so most solves hit), and
// price the recovery against an MTBF model to get the goodput the job
// retains under recurring failures.

// Exponential-failure recovery model: how often a host dies and what one
// recovery costs beyond the recompile itself.
struct MtbfModel {
  // Mean time between failures for the whole cluster, in seconds.
  // <= 0 means "no recurring failures": goodput_fraction is 1.
  double mtbf_seconds = 0.0;
  // Checkpoint cadence; on average half an interval of work is lost.
  double checkpoint_interval_seconds = 600.0;
  // Time to load the last checkpoint onto the repaired cluster.
  double checkpoint_restore_seconds = 30.0;
};

struct RepairOptions {
  int failed_host = 0;  // Host to remove, in [0, cluster.num_hosts).
  MtbfModel mtbf;
};

struct RepairResult {
  ClusterSpec shrunk_cluster;  // Original minus one host, faults cleared.
  ParallelPlan plan;           // Compiled for the shrunk cluster.
  ExecutionStats stats;        // Simulated on the shrunk cluster.
  // Wall-clock cost of the recompile, and how warm the ILP cache was.
  double recompile_seconds = 0.0;
  int64_t ilp_cache_hits = 0;
  int64_t ilp_cache_misses = 0;
  // Downtime of one recovery: detection + recompile + checkpoint restore +
  // recomputing the work lost since the last checkpoint.
  double expected_downtime_seconds = 0.0;
  // Fraction of wall-clock time spent on useful training under the MTBF
  // model: mtbf / (mtbf + expected_downtime). 1 when mtbf_seconds <= 0.
  double goodput_fraction = 1.0;
  // stats.pflops scaled by goodput_fraction (the Fig. 8 metric under
  // failures).
  double goodput_pflops = 0.0;
  std::string ToString() const;
};

// Drops `options.failed_host` — plus every host named (via its devices)
// by `cluster.faults.device_failures` — from `cluster`, recompiles `graph`
// for the remaining hosts, and prices the recovery. Surviving hosts keep
// their per-host device overrides. Errors: kInvalidArgument (failed_host
// or a fault device out of range, or the fault scenario leaves ZERO
// feasible submeshes — every host lost), kInfeasible (single-host cluster,
// or no plan fits the shrunk cluster), kResourceExhausted (the shrunk
// plan OOMs).
StatusOr<RepairResult> RepairPlan(Graph& graph, const ClusterSpec& cluster,
                                  const ParallelizeOptions& parallelize_options,
                                  const RepairOptions& options);

}  // namespace alpa

#endif  // SRC_CORE_API_H_
