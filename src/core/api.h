// Public entry points of alpa-cpp.
//
// Parallelize() is the analogue of the paper's @parallelize decorator
// (Fig. 4): given a training graph and a cluster, it runs the three
// compilation passes (inter-op DP, intra-op ILP, runtime orchestration) and
// returns an executable parallel plan. Simulate() executes the plan on the
// analytical cluster model and reports iteration latency, aggregate PFLOPS
// (the paper's weak-scaling metric, 7.1), memory, and pipeline bubbles.
//
// Failures are structured (src/support/status.h) rather than flag pairs:
//   kInvalidArgument   — contradictory or out-of-range options
//   kInfeasible        — clustering/stage-DP found no plan under the budget
//   kResourceExhausted — the plan executes but a stage exceeds device memory
#ifndef SRC_CORE_API_H_
#define SRC_CORE_API_H_

#include <string>

#include "src/graph/graph.h"
#include "src/inter/inter_pass.h"
#include "src/mesh/cluster_spec.h"
#include "src/runtime/cross_mesh.h"
#include "src/runtime/simulator.h"
#include "src/support/status.h"

namespace alpa {

struct ParallelizeOptions {
  // Convenience mirror of inter.num_microbatches (the single source of
  // truth). 0 = inherit from `inter`; Finalize() rejects a conflict when
  // both are set explicitly.
  int num_microbatches = 0;
  PipelineScheduleType schedule = PipelineScheduleType::k1F1B;
  // false: the whole cluster is one mesh (the "intra-op only" baseline).
  bool enable_interop = true;
  // false: stages run on single devices without partitioning (the
  // "inter-op only" baseline).
  bool enable_intraop = true;
  ReshardStrategy reshard = ReshardStrategy::kLocalAllGather;
  // Convenience mirror of inter.compile_threads (1 = serial, 0 = hardware
  // concurrency). kInheritThreads = inherit from `inter`. Any value yields
  // bit-identical plans; see InterOpOptions::compile_threads.
  static constexpr int kInheritThreads = -1;
  int compile_threads = kInheritThreads;
  // Non-empty: enable the process-wide trace for this compilation and write
  // the accumulated Chrome-trace JSON here after each entry point returns
  // (Parallelize after compiling, CompileAndSimulate again after
  // simulating, so the final file holds the unified timeline).
  std::string trace_path;
  InterOpOptions inter;

  // Resolves the mirror fields into `inter` and validates everything.
  // kInvalidArgument when a mirror and an explicitly-set inter field
  // disagree, or a value is out of range. Idempotent; the entry points call
  // it on their private copy, so callers only need it to pre-validate.
  Status Finalize();

  class Builder;
};

// Fluent construction for the common call sites:
//   ParallelizeOptions::Builder().microbatches(16).threads(0).trace(path).Build()
// Setters write the authoritative InterOpOptions fields directly, so built
// options can never hit a mirror conflict. Build() CHECKs validity —
// builder misuse is a programming error, not an input error.
class ParallelizeOptions::Builder {
 public:
  Builder& microbatches(int n) {
    options_.inter.num_microbatches = n;
    return *this;
  }
  Builder& schedule(PipelineScheduleType s) {
    options_.schedule = s;
    return *this;
  }
  // Compilation worker threads (1 = serial, 0 = hardware concurrency).
  Builder& threads(int n) {
    options_.inter.compile_threads = n;
    return *this;
  }
  // Chrome-trace JSON output path; "" = tracing stays off.
  Builder& trace(std::string path) {
    options_.trace_path = std::move(path);
    return *this;
  }
  Builder& target_layers(int n) {
    options_.inter.target_layers = n;
    return *this;
  }
  Builder& interop(bool on) {
    options_.enable_interop = on;
    return *this;
  }
  Builder& intraop(bool on) {
    options_.enable_intraop = on;
    return *this;
  }
  Builder& reshard(ReshardStrategy s) {
    options_.reshard = s;
    return *this;
  }
  Builder& equal_layers(bool on) {
    options_.inter.equal_layer_stages = on;
    return *this;
  }
  // Node budget for each intra-op ILP solve (benchmark knob).
  Builder& search_budget(int64_t max_search_nodes) {
    options_.inter.profiler.intra.solver.max_search_nodes = max_search_nodes;
    return *this;
  }
  ParallelizeOptions Build() const;

 private:
  ParallelizeOptions options_;
};

struct ExecutionStats {
  double latency = 0.0;          // One training iteration.
  double total_flops = 0.0;      // Across the cluster, per iteration.
  double pflops = 0.0;           // Aggregate throughput (the Fig. 8 metric).
  double bubble_fraction = 0.0;  // Pipeline idle share.
  double peak_memory_bytes = 0.0;
  std::string ToString() const;
};

struct ParallelPlan {
  CompiledPipeline pipeline;
  PipelineSimInput sim_input;
  CompileStats compile_stats;
};

// Runs the full compiler stack. `graph` is re-tagged in place by operator
// clustering. Errors: kInvalidArgument (bad options), kInfeasible (no plan).
StatusOr<ParallelPlan> Parallelize(Graph& graph, const ClusterSpec& cluster,
                                   const ParallelizeOptions& options);

// Executes the plan on the simulated cluster. Errors: kInvalidArgument
// (plan did not come from a successful Parallelize), kResourceExhausted
// (a stage's working set exceeds device memory; the message names the
// stage and the sizes).
StatusOr<ExecutionStats> Simulate(const ParallelPlan& plan, const Graph& graph,
                                  const ClusterSpec& cluster);

// One-call convenience used by the benchmarks. On kResourceExhausted the
// compiled plan is still stored to `plan_out`.
StatusOr<ExecutionStats> CompileAndSimulate(Graph& graph, const ClusterSpec& cluster,
                                            const ParallelizeOptions& options,
                                            ParallelPlan* plan_out = nullptr);

// --- Deprecated pre-Status shims ---------------------------------------
// For out-of-tree callers written against the old bool-pair API. Failures
// surface the old way: an infeasible/invalid compile returns a plan with
// pipeline.feasible == false; the stats shims return a default
// ExecutionStats (latency == 0) on any error.

[[deprecated("use Parallelize(); it returns StatusOr<ParallelPlan>")]]
ParallelPlan ParallelizeOrInfeasible(Graph& graph, const ClusterSpec& cluster,
                                     const ParallelizeOptions& options);

[[deprecated("use Simulate(); it returns StatusOr<ExecutionStats>")]]
ExecutionStats SimulateOrZero(const ParallelPlan& plan, const Graph& graph,
                              const ClusterSpec& cluster);

[[deprecated("use CompileAndSimulate(); it returns StatusOr<ExecutionStats>")]]
ExecutionStats CompileAndSimulateOrZero(Graph& graph, const ClusterSpec& cluster,
                                        const ParallelizeOptions& options,
                                        ParallelPlan* plan_out = nullptr);

}  // namespace alpa

#endif  // SRC_CORE_API_H_
