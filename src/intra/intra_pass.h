// The intra-operator compilation pass (4).
//
// Given a (stage) graph and a logical device mesh, builds the ILP of Eq. 1
// over the merged decision nodes, solves it, and reports the optimal
// intra-op execution plan together with its latency and per-device memory
// profile. Baseline plan spaces (data-parallel-only, replicated-only) are
// expressed as algorithm filters over the same machinery.
#ifndef SRC_INTRA_INTRA_PASS_H_
#define SRC_INTRA_INTRA_PASS_H_

#include <functional>
#include <vector>

#include "src/graph/backward.h"
#include "src/graph/graph.h"
#include "src/intra/algorithms.h"
#include "src/intra/op_merging.h"
#include "src/mesh/device_mesh.h"
#include "src/solver/ilp_solver.h"
#include "src/spec/sharding_spec.h"

namespace alpa {

// Returns false to drop an algorithm from an operator's choice list.
using AlgorithmFilter = std::function<bool(const Graph&, const DeviceMesh&, const Operator&,
                                           const ParallelAlgorithm&)>;

struct IntraOpOptions {
  Precision precision = Precision::kFloat16;
  IlpSolverOptions solver;
  // Optional restriction of the plan space (used by baselines).
  AlgorithmFilter filter;
  // The paper trains with rematerialization (8): per in-flight microbatch
  // only the stage-boundary activations persist; internal activations are
  // recomputed during backward (costing one extra forward pass). This flag
  // adds the recompute time and shrinks resident activations accordingly.
  bool rematerialize = true;
  // Fraction of *internal* forward activations that stay resident despite
  // remat (dropout masks, small residuals).
  double activation_fraction = 0.02;
  // Gradient-accumulation steps the gradient-synchronization and
  // weight-update costs amortize over (7.1: "GA amortizes the communication
  // of data parallelism ... while the communication of TMP grows linearly
  // with GA steps"). The ILP objective divides per-iteration costs by this.
  int num_microbatches = 1;
  // Force a specific choice per decision node instead of solving (used to
  // evaluate hand-constructed plans); empty = solve.
  std::vector<int> forced_choice;
  // Seed the solver with the optima of canonical restricted plan families
  // (data parallel, ZeRO-2/3, tensor parallel) so the unrestricted search
  // never returns anything worse than them (7.2's dominance claim holds by
  // construction even under search budgets).
  bool seed_with_plan_families = true;
};

// The fully annotated problem: decision nodes, their algorithm menus, and
// the assembled ILP.
struct IntraOpProblem {
  MergePlan merge;
  std::vector<std::vector<ParallelAlgorithm>> algorithms;  // Per decision node.
  // True for nodes/edges whose cost is paid once per iteration (gradient
  // synchronization, optimizer step, weight-layout restore) rather than per
  // microbatch. The ilp costs below are already amortized by
  // options.num_microbatches.
  std::vector<bool> node_per_iteration;
  std::vector<bool> edge_per_iteration;
  IlpProblem ilp;
};

struct IntraOpResult {
  bool feasible = false;
  // Per-microbatch latency: forward+backward compute and communication.
  // t_intra = ideal_compute + objective.
  double t_intra = kInfCost;
  // Once-per-iteration latency: gradient sync + optimizer + restore.
  double t_per_iteration = 0.0;
  double ideal_compute = 0.0;
  double objective = kInfCost;
  bool optimal = false;
  // Relative optimality gap of the ILP solve that produced `choice`
  // ((objective - proven lower bound) / objective in the solver's own
  // objective space); 0 when `optimal`. The serve layer surfaces the
  // worst gap across a plan's stages as the anytime-contract report.
  double optimality_gap = 0.0;
  // Per-device memory profile.
  double weight_bytes = 0.0;              // Params + grads + optimizer state.
  double act_bytes_per_microbatch = 0.0;  // Resident activations (with remat).
  double work_bytes = 0.0;                // Transient working set.
  // Chosen algorithm index per decision node.
  std::vector<int> choice;
  // Resolved sharding spec per graph op (merged ops follow their rep).
  std::vector<ShardingSpec> op_specs;
};

// Builds the ILP for `graph` on `mesh`. `preenumerated`, when non-null,
// supplies the unfiltered per-node algorithm menus from a previous build of
// the same (graph, mesh, precision) — the seed-family builds reuse the main
// build's enumeration this way, since options.filter applies after
// enumeration and everything else the menus depend on is identical.
IntraOpProblem BuildIntraOpProblem(
    const Graph& graph, const DeviceMesh& mesh, const IntraOpOptions& options,
    const std::vector<std::vector<ParallelAlgorithm>>* preenumerated = nullptr);

// Builds and solves; the one-stop entry point.
IntraOpResult SolveIntraOp(const Graph& graph, const DeviceMesh& mesh,
                           const IntraOpOptions& options);

// Evaluates a specific choice vector on a prebuilt problem (used both by
// SolveIntraOp and by baselines with hand-constructed plans).
IntraOpResult EvaluateChoice(const Graph& graph, const DeviceMesh& mesh,
                             const IntraOpProblem& problem, const IntraOpOptions& options,
                             std::vector<int> choice, bool optimal);

// Per-device time of executing `op`'s computation when its work is split
// `shards` ways (roofline: flops-bound for contractions, bytes-bound for
// pointwise ops).
double OpComputeTime(const Operator& op, int64_t shards, const DeviceSpec& device,
                     Precision precision);

}  // namespace alpa

#endif  // SRC_INTRA_INTRA_PASS_H_
