#include "src/intra/ilp_cache.h"

#include "src/solver/ilp_solver.h"
#include "src/support/hashing.h"
#include "src/support/trace.h"

namespace alpa {

IlpMemoCache& IlpMemoCache::Global() {
  static IlpMemoCache* cache = new IlpMemoCache();
  return *cache;
}

bool IlpMemoCache::Lookup(const IlpCacheKey& key, IntraOpResult* result) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  static Metric* hits_metric = Metrics::Get("ilp_cache/hits");
  static Metric* misses_metric = Metrics::Get("ilp_cache/misses");
  if (it == entries_.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    misses_metric->Add(1);
    return false;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  hits_metric->Add(1);
  *result = it->second;
  return true;
}

void IlpMemoCache::Insert(const IlpCacheKey& key, const IntraOpResult& result) {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.emplace(key, result);
  static Metric* size_metric = Metrics::Get("ilp_cache/entries");
  size_metric->Set(static_cast<int64_t>(entries_.size()));
}

IlpCacheStats IlpMemoCache::stats() const {
  return IlpCacheStats{hits_.load(std::memory_order_relaxed),
                       misses_.load(std::memory_order_relaxed)};
}

size_t IlpMemoCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

void IlpMemoCache::Clear() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    entries_.clear();
    hits_.store(0);
    misses_.store(0);
  }
  // The solver's process-wide memo of presolved-core solutions backs the
  // same caching contract; benchmarks that clear this cache to measure a
  // cold compile expect both layers gone.
  ClearIlpCoreMemo();
}

bool ComputeIlpCacheKey(const ClusterSpec& cluster, const SubmeshShape& physical,
                        std::array<int, 2> logical, int memory_mode,
                        const IntraOpOptions& options, uint64_t structural_hash,
                        IlpCacheKey* key) {
  // Unhashable solver inputs: opaque closures and explicit overrides.
  if (options.filter != nullptr || !options.forced_choice.empty() ||
      !options.solver.seeds.empty()) {
    return false;
  }
  Fnv1a64 hasher;
  // Alpha-beta constants and device roofline: the whole cost model. The
  // cluster's own extent (num_hosts, devices_per_host) is deliberately NOT
  // hashed: a solve depends only on the submesh variant below and these
  // constants, so plan repair's shrunk-cluster recompile reuses the warm
  // entries from the original compile.
  hasher.Double(cluster.device.peak_flops_fp16)
      .Double(cluster.device.peak_flops_fp32)
      .Double(cluster.device.memory_bytes)
      .Double(cluster.device.memory_bandwidth)
      .Double(cluster.device.compute_efficiency);
  hasher.Double(cluster.intra_host_bandwidth)
      .Double(cluster.intra_host_alpha)
      .Double(cluster.inter_host_bandwidth)
      .Double(cluster.inter_host_alpha);
  // The mesh variant being profiled. The placement offset is irrelevant:
  // collective costs depend only on the shape and whether hosts are
  // crossed, both functions of (physical, logical).
  hasher.I32(physical.num_hosts).I32(physical.devices_per_host);
  hasher.I32(logical[0]).I32(logical[1]);
  hasher.I32(memory_mode);
  // Every option that steers the solve.
  hasher.I32(static_cast<int32_t>(options.precision));
  hasher.I32(options.num_microbatches);
  hasher.Bool(options.rematerialize);
  hasher.Double(options.activation_fraction);
  hasher.Bool(options.seed_with_plan_families);
  hasher.I64(options.solver.max_search_nodes);
  hasher.I64(options.solver.max_elimination_table);
  hasher.I32(options.solver.beam_width);
  // Engines are exact but can differ on tie-broken choices, so their
  // results must not share cache entries. The pool pointer is deliberately
  // not hashed: results are identical with or without one.
  hasher.I32(static_cast<int32_t>(options.solver.engine));
  key->structural_hash = structural_hash;
  key->config_hash = hasher.hash();
  return true;
}

}  // namespace alpa
