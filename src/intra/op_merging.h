// Operator merging for ILP size reduction (4.2).
//
// Unimportant shape-preserving operators (elementwise, softmax, layernorm)
// are merged into their deepest operand (depth via BFS over the dataflow
// graph) and simply follow that operand's sharding spec. Remaining ops are
// ILP decision nodes.
#ifndef SRC_INTRA_OP_MERGING_H_
#define SRC_INTRA_OP_MERGING_H_

#include <vector>

#include "src/graph/graph.h"

namespace alpa {

struct MergePlan {
  // rep[v]: the decision node op id that op v follows (rep[v] == v for
  // decision nodes).
  std::vector<int> rep;
  // Decision node op ids in topological order.
  std::vector<int> decision_ops;
  // op id -> index into decision_ops, or -1 for merged ops.
  std::vector<int> node_index;
};

MergePlan ComputeMergePlan(const Graph& graph);

}  // namespace alpa

#endif  // SRC_INTRA_OP_MERGING_H_
