// Per-operator SPMD parallel algorithm enumeration (4.1, Table 2).
//
// A parallel algorithm for an operator is an assignment of the two logical
// mesh axes to loop indices of the operator. For einsum-shaped operators
// (matmul, conv-as-im2col, attention contractions) the enumeration is fully
// generic: mapping a mesh axis to an output label shards the output, mapping
// it to a contraction label requires an all-reduce (or reduce-scatter, which
// realizes weight-update sharding / ZeRO as an algorithm variant). Operators
// with data-dependent routing (embedding lookups, MoE dispatch/combine) get
// hand-enumerated algorithm lists, mirroring how the paper manually
// enumerates algorithms for the <80 primitive operator kinds.
#ifndef SRC_INTRA_ALGORITHMS_H_
#define SRC_INTRA_ALGORITHMS_H_

#include <string>
#include <vector>

#include "src/graph/graph.h"
#include "src/mesh/device_mesh.h"
#include "src/spec/sharding_spec.h"

namespace alpa {

struct ParallelAlgorithm {
  std::string name;
  ShardingSpec output_spec;
  // Required sharding spec per operand (same order as Operator::operands).
  std::vector<ShardingSpec> input_specs;
  // Collective communication time of the algorithm itself (Table 2 column).
  double comm_cost = 0.0;
  // Extra compute time relative to the ideal fully-parallel execution
  // (nonzero only when replication leaves mesh axes unused, which the paper
  // excludes for heavy ops; we admit it with this penalty so that every
  // operator always has at least one feasible algorithm).
  double compute_cost = 0.0;
};

// Enumerates the parallel algorithms of `op` on `mesh`. Always returns at
// least one algorithm (fully replicated execution).
std::vector<ParallelAlgorithm> EnumerateAlgorithms(const Operator& op, const Graph& graph,
                                                   const DeviceMesh& mesh,
                                                   const DeviceSpec& device, Precision precision);

// Projects a sharding spec of a tensor onto a lower-rank operand aligned to
// the trailing dimensions (the broadcast convention used by elementwise
// ops); dims dropped from the front lose their sharding.
ShardingSpec ProjectToTrailing(const ShardingSpec& spec, int target_rank);

}  // namespace alpa

#endif  // SRC_INTRA_ALGORITHMS_H_
