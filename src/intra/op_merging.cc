#include "src/intra/op_merging.h"

#include <algorithm>

#include "src/support/logging.h"
#include "src/support/trace.h"

namespace alpa {

namespace {

bool Mergeable(const Operator& op) {
  switch (op.type) {
    case OpType::kElementwise:
    case OpType::kSoftmax:
    case OpType::kLayerNorm:
      return true;
    default:
      return false;
  }
}

}  // namespace

MergePlan ComputeMergePlan(const Graph& graph) {
  const int n = graph.size();
  MergePlan plan;
  plan.rep.resize(static_cast<size_t>(n));
  plan.node_index.assign(static_cast<size_t>(n), -1);

  // Depth: longest operand chain, computed in topological (id) order.
  std::vector<int> depth(static_cast<size_t>(n), 0);
  for (int v = 0; v < n; ++v) {
    for (int operand : graph.op(v).operands) {
      depth[static_cast<size_t>(v)] =
          std::max(depth[static_cast<size_t>(v)], depth[static_cast<size_t>(operand)] + 1);
    }
  }

  for (int v = 0; v < n; ++v) {
    const Operator& op = graph.op(v);
    int merged_into = -1;
    if (Mergeable(op)) {
      // Deepest operand with an identical shape (so the spec propagates
      // unchanged).
      int best_depth = -1;
      for (int operand : op.operands) {
        if (graph.op(operand).shape == op.shape &&
            depth[static_cast<size_t>(operand)] > best_depth) {
          best_depth = depth[static_cast<size_t>(operand)];
          merged_into = operand;
        }
      }
    }
    if (merged_into >= 0) {
      plan.rep[static_cast<size_t>(v)] = plan.rep[static_cast<size_t>(merged_into)];
    } else {
      plan.rep[static_cast<size_t>(v)] = v;
      plan.node_index[static_cast<size_t>(v)] = static_cast<int>(plan.decision_ops.size());
      plan.decision_ops.push_back(v);
    }
  }
  static Metric* merged_ops = Metrics::Get("intra/merged_ops");
  merged_ops->Add(n - static_cast<int>(plan.decision_ops.size()));
  return plan;
}

}  // namespace alpa
