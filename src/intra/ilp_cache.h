// Process-wide memoization of intra-op ILP solves.
//
// The stage profiler already dedups structurally identical layers *within*
// one profiler instance (all transformer blocks of one model share a
// solve). This cache extends the same idea across instances: structurally
// identical layers appearing in different model configs, benchmark sweep
// points, or repeated compilations reuse each other's solves. It is the
// compile-time analogue of the paper's observation (7.4) that
// profiling-based plan generation must amortize repeated substructure.
//
// A cache key captures everything a solve's outcome depends on: the layer
// graph's structural hash, the alpha-beta constants of the cluster, the
// physical/logical mesh shapes, the memory mode, and every IntraOpOptions
// field that steers the solver. Solves carrying caller-provided closures
// (plan-space filters, forced choices, external seeds) cannot be hashed and
// are simply not cached.
//
// Thread safety: all methods are safe to call concurrently; the parallel
// profiling sweep hits this cache from every worker.
#ifndef SRC_INTRA_ILP_CACHE_H_
#define SRC_INTRA_ILP_CACHE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_map>

#include "src/intra/intra_pass.h"
#include "src/mesh/cluster_spec.h"
#include "src/mesh/device_mesh.h"

namespace alpa {

struct IlpCacheKey {
  uint64_t structural_hash = 0;  // StructuralHash of the (layer) graph.
  uint64_t config_hash = 0;      // Cluster + mesh + options fingerprint.
  bool operator==(const IlpCacheKey&) const = default;
};

struct IlpCacheStats {
  int64_t hits = 0;
  int64_t misses = 0;
};

class IlpMemoCache {
 public:
  // The process-wide instance used by every profiler.
  static IlpMemoCache& Global();

  // Returns true and fills `result` on a hit. Counts a miss otherwise.
  bool Lookup(const IlpCacheKey& key, IntraOpResult* result);
  // Inserts a solve; first write wins (all writers hold identical results
  // for a key, so which one lands is immaterial).
  void Insert(const IlpCacheKey& key, const IntraOpResult& result);

  IlpCacheStats stats() const;
  size_t size() const;
  // Drops all entries and zeroes the counters (tests, fair benchmarks).
  void Clear();

 private:
  struct KeyHash {
    size_t operator()(const IlpCacheKey& key) const {
      return static_cast<size_t>(key.structural_hash ^ (key.config_hash * 0x9e3779b97f4a7c15ull));
    }
  };

  mutable std::mutex mu_;
  std::unordered_map<IlpCacheKey, IntraOpResult, KeyHash> entries_;
  std::atomic<int64_t> hits_{0};
  std::atomic<int64_t> misses_{0};
};

// Builds the cache key for solving `structural_hash`'s graph on the given
// submesh/logical shape under `memory_mode` (the stage profiler's enum,
// passed as int to keep this header independent of it). Returns false when
// the solve is ineligible for caching: a custom AlgorithmFilter, forced
// choices, or pre-seeded solver state cannot be folded into a hash.
bool ComputeIlpCacheKey(const ClusterSpec& cluster, const SubmeshShape& physical,
                        std::array<int, 2> logical, int memory_mode,
                        const IntraOpOptions& options, uint64_t structural_hash,
                        IlpCacheKey* key);

}  // namespace alpa

#endif  // SRC_INTRA_ILP_CACHE_H_
