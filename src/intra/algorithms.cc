#include "src/intra/algorithms.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "src/support/logging.h"
#include "src/support/strings.h"

namespace alpa {

namespace {

// Assignment of the two mesh axes to einsum loop labels; 0 means the axis
// is unused (replication along it).
struct AxisMapping {
  char axis0 = 0;
  char axis1 = 0;

  bool Combined() const { return axis0 != 0 && axis0 == axis1; }
  int64_t ShardsForLabel(char label, const DeviceMesh& mesh) const {
    int64_t shards = 1;
    if (axis0 == label) {
      shards *= mesh.dim(0);
    }
    if (axis1 == label) {
      shards *= mesh.dim(1);
    }
    return shards;
  }
  DimSharding ShardingForLabel(char label) const {
    const bool a0 = (axis0 == label);
    const bool a1 = (axis1 == label);
    if (a0 && a1) {
      return DimSharding::kS01;
    }
    if (a0) {
      return DimSharding::kS0;
    }
    if (a1) {
      return DimSharding::kS1;
    }
    return DimSharding::kR;
  }
  int64_t TotalShards(const DeviceMesh& mesh) const {
    int64_t shards = 1;
    if (axis0 != 0) {
      shards *= mesh.dim(0);
    }
    if (axis1 != 0) {
      shards *= mesh.dim(1);
    }
    return shards;
  }
  std::string ToString() const {
    std::string s;
    if (Combined()) {
      return StrFormat("%c->{0,1}", axis0);
    }
    if (axis0 != 0) {
      s += StrFormat("%c->0", axis0);
    }
    if (axis1 != 0) {
      if (!s.empty()) {
        s += ",";
      }
      s += StrFormat("%c->1", axis1);
    }
    return s.empty() ? "replicated" : s;
  }
};

ShardingSpec SpecForLabels(const std::string& labels, const AxisMapping& mapping) {
  std::vector<DimSharding> dims;
  dims.reserve(labels.size());
  for (char c : labels) {
    dims.push_back(mapping.ShardingForLabel(c));
  }
  return ShardingSpec::Make(std::move(dims));
}

// Extra per-device compute time when only `shards` of the mesh's devices
// carry distinct work.
double ReplicationPenalty(double flops, int64_t shards, const DeviceMesh& mesh,
                          const DeviceSpec& device, Precision precision) {
  const double eff = device.EffectiveFlops(precision);
  const int64_t n = mesh.num_devices();
  if (shards >= n) {
    return 0.0;
  }
  return flops * (1.0 / static_cast<double>(shards) - 1.0 / static_cast<double>(n)) / eff;
}

void AddAlgorithm(std::vector<ParallelAlgorithm>& out, ParallelAlgorithm algorithm) {
  // Deduplicate on the spec signature, keeping the cheapest variant.
  for (ParallelAlgorithm& existing : out) {
    if (existing.output_spec == algorithm.output_spec &&
        existing.input_specs == algorithm.input_specs) {
      if (algorithm.comm_cost + algorithm.compute_cost <
          existing.comm_cost + existing.compute_cost) {
        existing = std::move(algorithm);
      }
      return;
    }
  }
  out.push_back(std::move(algorithm));
}


// True if the spec shards along a mesh axis of size 1 (degenerate: the
// layout is identical to the unsharded one but pollutes the search space).
bool UsesDegenerateAxis(const ShardingSpec& spec, const DeviceMesh& mesh) {
  for (int axis = 0; axis < 2; ++axis) {
    if (mesh.dim(axis) == 1 && spec.DimForAxis(axis) >= 0) {
      return true;
    }
  }
  return false;
}

// Generic einsum enumeration. `operand_labels` gives the full label string
// per operand; `real_positions[i]` lists the label positions of operand i
// that exist on the actual tensor (used for virtual one-hot operands of
// embedding ops; pass all positions for ordinary einsums).
struct EinsumEnumArgs {
  std::string output_labels;
  std::vector<std::string> operand_labels;
  std::vector<std::vector<int>> real_positions;
  std::map<char, int64_t> extents;
  // Spatial-window labels (convolutions): label -> kernel side length.
  std::map<char, int64_t> halo;
  double flops = 0.0;
  int64_t output_bytes = 0;
  int64_t input_bytes = 0;  // Largest operand, for halo sizing.
};

void EnumerateEinsumAlgorithms(const EinsumEnumArgs& args, const DeviceMesh& mesh,
                               const DeviceSpec& device, Precision precision,
                               std::vector<ParallelAlgorithm>& out) {
  std::string labels = args.output_labels;
  std::string contraction;
  for (const std::string& op_labels : args.operand_labels) {
    for (char c : op_labels) {
      if (labels.find(c) == std::string::npos) {
        labels.push_back(c);
        contraction.push_back(c);
      }
    }
  }
  auto is_contraction = [&](char c) { return contraction.find(c) != std::string::npos; };

  std::string choices = labels;
  choices.insert(choices.begin(), '\0');  // "unused" option for an axis.

  for (char c0 : choices) {
    if (c0 != 0 && mesh.dim(0) == 1) {
      continue;  // Degenerate axis: mapping it adds nothing but search space.
    }
    for (char c1 : choices) {
      if (c1 != 0 && mesh.dim(1) == 1) {
        continue;
      }
      AxisMapping mapping{c0, c1};
      if (c0 != 0 && c0 == c1) {
        // Combined S01 mapping; allowed.
      }
      // Divisibility of every mapped label.
      bool ok = true;
      for (char label : labels) {
        const int64_t shards = mapping.ShardsForLabel(label, mesh);
        if (shards > 1 && args.extents.at(label) % shards != 0) {
          ok = false;
          break;
        }
      }
      if (!ok) {
        continue;
      }

      ParallelAlgorithm algorithm;
      algorithm.name = mapping.ToString();
      algorithm.output_spec = SpecForLabels(args.output_labels, mapping);
      for (size_t i = 0; i < args.operand_labels.size(); ++i) {
        ShardingSpec full = SpecForLabels(args.operand_labels[i], mapping);
        std::vector<DimSharding> dims;
        for (int pos : args.real_positions[i]) {
          dims.push_back(full.dim(pos));
        }
        algorithm.input_specs.push_back(ShardingSpec::Make(std::move(dims)));
      }

      // Communication: mesh axes mapped to contraction labels produce
      // partial sums that must be all-reduced (Table 2).
      const bool contract0 = (c0 != 0 && is_contraction(c0));
      const bool contract1 = (c1 != 0 && is_contraction(c1));
      const double out_bytes = static_cast<double>(args.output_bytes);
      double comm = 0.0;
      if (contract0 && contract1) {
        comm = mesh.AllReduceBothTime(out_bytes);
      } else if (contract0) {
        const int64_t other_shards = (c1 != 0 && !contract1) ? mesh.dim(1) : 1;
        comm = mesh.AllReduceTime(out_bytes / static_cast<double>(other_shards), 0);
      } else if (contract1) {
        const int64_t other_shards = (c0 != 0 && !contract0) ? mesh.dim(0) : 1;
        comm = mesh.AllReduceTime(out_bytes / static_cast<double>(other_shards), 1);
      }
      // Halo exchange: partitioning a spatial label leaves each shard
      // needing (k-1) boundary rows from both neighbours per microbatch.
      for (const auto& [label, kernel_side] : args.halo) {
        for (int axis = 0; axis < 2; ++axis) {
          const char mapped = (axis == 0) ? c0 : c1;
          if (mapped != label) {
            continue;
          }
          const double extent = static_cast<double>(args.extents.at(label));
          const double tile_rows = std::sqrt(extent) / mesh.dim(axis);
          if (tile_rows <= 0.0) {
            continue;
          }
          const double fraction =
              std::min(1.0, 2.0 * static_cast<double>(kernel_side - 1) / tile_rows);
          const double tile_bytes = static_cast<double>(args.input_bytes) /
                                    static_cast<double>(mapping.TotalShards(mesh));
          comm += fraction * tile_bytes / mesh.bandwidth(axis) + 2.0 * mesh.alpha(axis);
        }
      }
      algorithm.comm_cost = comm;
      algorithm.compute_cost =
          ReplicationPenalty(args.flops, mapping.TotalShards(mesh), mesh, device, precision);
      const ShardingSpec base_output = algorithm.output_spec;
      const std::vector<ShardingSpec> base_inputs = algorithm.input_specs;
      const std::string base_name = algorithm.name;
      AddAlgorithm(out, std::move(algorithm));

      // Reduce-scatter variants: instead of all-reducing partial sums, leave
      // the output sharded along the contraction-mapped axis. This realizes
      // weight-update sharding / ZeRO (4.2 post-ILP optimization) inside the
      // algorithm space.
      if (contract0 != contract1) {
        const int axis = contract0 ? 0 : 1;
        for (size_t d = 0; d < args.output_labels.size(); ++d) {
          if (base_output.dim(static_cast<int>(d)) != DimSharding::kR) {
            continue;
          }
          if (args.extents.at(args.output_labels[d]) % mesh.dim(axis) != 0) {
            continue;
          }
          std::vector<DimSharding> dims = base_output.dims();
          dims[d] = (axis == 0) ? DimSharding::kS0 : DimSharding::kS1;
          ParallelAlgorithm variant;
          variant.name = base_name + StrFormat(" rs(d%zu)", d);
          variant.output_spec = ShardingSpec::Make(std::move(dims));
          variant.input_specs = base_inputs;
          const int64_t other_shards =
              (axis == 0) ? ((c1 != 0 && !contract1) ? mesh.dim(1) : 1)
                          : ((c0 != 0 && !contract0) ? mesh.dim(0) : 1);
          variant.comm_cost =
              mesh.ReduceScatterTime(out_bytes / static_cast<double>(other_shards), axis);
          variant.compute_cost = ReplicationPenalty(args.flops, mapping.TotalShards(mesh), mesh,
                                                    device, precision);
          AddAlgorithm(out, std::move(variant));
        }
      } else if (contract0 && contract1) {
        for (size_t d = 0; d < args.output_labels.size(); ++d) {
          if (base_output.dim(static_cast<int>(d)) != DimSharding::kR) {
            continue;
          }
          const int64_t both = static_cast<int64_t>(mesh.dim(0)) * mesh.dim(1);
          if (args.extents.at(args.output_labels[d]) % both != 0) {
            continue;
          }
          std::vector<DimSharding> dims = base_output.dims();
          dims[d] = DimSharding::kS01;
          ParallelAlgorithm variant;
          variant.name = base_name + StrFormat(" rs01(d%zu)", d);
          variant.output_spec = ShardingSpec::Make(std::move(dims));
          variant.input_specs = base_inputs;
          variant.comm_cost = mesh.ReduceScatterBothTime(out_bytes);
          variant.compute_cost = ReplicationPenalty(args.flops, mapping.TotalShards(mesh), mesh,
                                                    device, precision);
          AddAlgorithm(out, std::move(variant));
        }
      }
    }
  }
}

std::vector<int> AllPositions(const std::string& labels) {
  std::vector<int> positions(labels.size());
  for (size_t i = 0; i < labels.size(); ++i) {
    positions[i] = static_cast<int>(i);
  }
  return positions;
}

// Distinct label characters for synthesized einsums (embedding, MoE).
// Uses uppercase to avoid clashing with model-defined labels.
std::string MakeLabels(int rank) {
  std::string labels;
  for (int i = 0; i < rank; ++i) {
    labels.push_back(static_cast<char>('A' + i));
  }
  return labels;
}

void EnumerateEmbedding(const Operator& op, const Graph& graph, const DeviceMesh& mesh,
                        const DeviceSpec& device, Precision precision,
                        std::vector<ParallelAlgorithm>& out) {
  const Operator& ids = graph.op(op.operands[0]);
  const Operator& table = graph.op(op.operands[1]);
  const int ids_rank = ids.shape.rank();
  EinsumEnumArgs args;
  const std::string batch = MakeLabels(ids_rank);
  args.output_labels = batch + "h";
  args.operand_labels = {batch + "v", "vh"};  // one-hot(ids), table.
  args.real_positions = {AllPositions(batch), AllPositions("vh")};
  for (int d = 0; d < ids_rank; ++d) {
    args.extents[batch[static_cast<size_t>(d)]] = ids.shape.dim(d);
  }
  args.extents['v'] = table.shape.dim(0);
  args.extents['h'] = table.shape.dim(1);
  args.flops = op.flops;
  args.output_bytes = op.OutputBytes();
  EnumerateEinsumAlgorithms(args, mesh, device, precision, out);
}

void EnumerateEmbeddingGrad(const Operator& op, const Graph& graph, const DeviceMesh& mesh,
                            const DeviceSpec& device, Precision precision,
                            std::vector<ParallelAlgorithm>& out) {
  const Operator& ids = graph.op(op.operands[0]);
  const Operator& grad_out = graph.op(op.operands[1]);
  const int ids_rank = ids.shape.rank();
  ALPA_CHECK_EQ(grad_out.shape.rank(), ids_rank + 1);
  EinsumEnumArgs args;
  const std::string batch = MakeLabels(ids_rank);
  args.output_labels = "vh";
  args.operand_labels = {batch + "v", batch + "h"};
  args.real_positions = {AllPositions(batch), AllPositions(batch + "h")};
  for (int d = 0; d < ids_rank; ++d) {
    args.extents[batch[static_cast<size_t>(d)]] = ids.shape.dim(d);
  }
  args.extents['v'] = op.shape.dim(0);
  args.extents['h'] = op.shape.dim(1);
  args.flops = op.flops;
  args.output_bytes = op.OutputBytes();
  EnumerateEinsumAlgorithms(args, mesh, device, precision, out);
}

// MoE dispatch: x [t, m] -> out [e, c, m]. Mapping a mesh axis to `e`
// redistributes tokens to experts (all-to-all); mapping to `c` keeps tokens
// local; mapping to `m` shards the hidden dimension.
void EnumerateMoeDispatch(const Operator& op, const Graph& graph, const DeviceMesh& mesh,
                          const DeviceSpec& device, Precision precision, bool is_combine,
                          std::vector<ParallelAlgorithm>& out) {
  const TensorShape& token_shape = is_combine ? op.shape : graph.op(op.operands[0]).shape;
  const TensorShape& expert_shape = is_combine ? graph.op(op.operands[0]).shape : op.shape;
  const int token_rank = token_shape.rank();
  const int64_t tokens = token_shape.dim(0);  // Leading (batch/group) dim.
  const int64_t experts = expert_shape.dim(0);
  const int64_t capacity = expert_shape.dim(1);
  const int64_t model = expert_shape.dim(2);
  const double out_bytes = static_cast<double>(op.OutputBytes());

  // Targets for one mesh axis: 'e' (expert), 'c' (capacity/local), 'm'
  // (hidden), or 0 (unused).
  const std::string targets = std::string("\0ecm", 4);
  for (char t0 : targets) {
    for (char t1 : targets) {
      if (t0 != 0 && t0 == t1) {
        continue;  // Combined mappings omitted for routing ops.
      }
      int64_t shards = 1;
      bool ok = true;
      bool alltoall[2] = {false, false};
      // Expert-side spec dims: [e, c, m]; token-side dims: [t, .., m].
      std::vector<DimSharding> expert_dims(3, DimSharding::kR);
      std::vector<DimSharding> token_dims(static_cast<size_t>(token_rank), DimSharding::kR);
      for (int axis = 0; axis < 2; ++axis) {
        const char t = (axis == 0) ? t0 : t1;
        if (t == 0) {
          continue;
        }
        if (mesh.dim(axis) == 1) {
          ok = false;
          break;
        }
        const DimSharding s = (axis == 0) ? DimSharding::kS0 : DimSharding::kS1;
        const int64_t k = mesh.dim(axis);
        shards *= k;
        switch (t) {
          case 'e':
            if (experts % k != 0 || tokens % k != 0) {
              ok = false;
            }
            expert_dims[0] = s;
            token_dims[0] = s;
            alltoall[axis] = true;
            break;
          case 'c':
            if (capacity % k != 0 || tokens % k != 0) {
              ok = false;
            }
            expert_dims[1] = s;
            token_dims[0] = s;
            break;
          case 'm':
            if (model % k != 0) {
              ok = false;
            }
            expert_dims[2] = s;
            token_dims[static_cast<size_t>(token_rank) - 1] = s;
            break;
          default:
            ok = false;
        }
      }
      if (!ok) {
        continue;
      }
      double comm = 0.0;
      for (int axis = 0; axis < 2; ++axis) {
        if (alltoall[axis]) {
          // Each group moves its 1/other_shards share of the tensor.
          const double group = out_bytes * mesh.dim(axis) / static_cast<double>(shards);
          comm += mesh.AllToAllTime(group, axis);
        }
      }
      ParallelAlgorithm algorithm;
      algorithm.name = StrFormat("moe(%c,%c)", t0 ? t0 : '-', t1 ? t1 : '-');
      if (is_combine) {
        algorithm.output_spec = ShardingSpec::Make(std::move(token_dims));
        algorithm.input_specs = {ShardingSpec::Make(std::move(expert_dims))};
      } else {
        algorithm.output_spec = ShardingSpec::Make(std::move(expert_dims));
        algorithm.input_specs = {ShardingSpec::Make(std::move(token_dims))};
      }
      algorithm.comm_cost = comm;
      algorithm.compute_cost = ReplicationPenalty(op.flops, shards, mesh, device, precision);
      AddAlgorithm(out, std::move(algorithm));
    }
  }
}

// Light shape-preserving ops that were not merged: any valid spec, applied
// consistently to the same-shape operands and projected onto broadcast
// operands.
void EnumeratePointwise(const Operator& op, const Graph& graph, const DeviceMesh& mesh,
                        const DeviceSpec& device, Precision precision,
                        std::vector<ParallelAlgorithm>& out) {
  for (const ShardingSpec& spec : ShardingSpec::Enumerate(op.shape.rank())) {
    if (!spec.IsValidFor(op.shape, mesh) || UsesDegenerateAxis(spec, mesh)) {
      continue;
    }
    ParallelAlgorithm algorithm;
    algorithm.name = "pointwise " + spec.ToString();
    algorithm.output_spec = spec;
    bool ok = true;
    for (int operand : op.operands) {
      const TensorShape& in_shape = graph.op(operand).shape;
      ShardingSpec in_spec = ProjectToTrailing(spec, in_shape.rank());
      if (!in_spec.IsValidFor(in_shape, mesh)) {
        ok = false;
        break;
      }
      algorithm.input_specs.push_back(std::move(in_spec));
    }
    if (!ok) {
      continue;
    }
    algorithm.compute_cost =
        ReplicationPenalty(op.flops, spec.TotalShards(mesh), mesh, device, precision);
    AddAlgorithm(out, std::move(algorithm));
  }
}

// Reduction keeping a suffix of the input dims (the convention of our
// backward builder). Sharded reduced dims require an all-reduce; the
// reduce-scatter variant shards a kept dim instead (ZeRO for bias grads).
void EnumerateReduce(const Operator& op, const Graph& graph, const DeviceMesh& mesh,
                     const DeviceSpec& device, Precision precision,
                     std::vector<ParallelAlgorithm>& out) {
  const Operator& input = graph.op(op.operands[0]);
  const int in_rank = input.shape.rank();
  const int out_rank = op.shape.rank();
  const int dropped = in_rank - out_rank;
  ALPA_CHECK_GE(dropped, 0);
  for (const ShardingSpec& in_spec : ShardingSpec::Enumerate(in_rank)) {
    if (!in_spec.IsValidFor(input.shape, mesh) || UsesDegenerateAxis(in_spec, mesh)) {
      continue;
    }
    ShardingSpec out_spec = ProjectToTrailing(in_spec, out_rank);
    if (!out_spec.IsValidFor(op.shape, mesh)) {
      continue;
    }
    double comm = 0.0;
    bool reduced0 = false;
    bool reduced1 = false;
    for (int axis = 0; axis < 2; ++axis) {
      const int d = in_spec.DimForAxis(axis);
      if (d >= 0 && d < dropped) {
        (axis == 0 ? reduced0 : reduced1) = true;
      }
    }
    const double out_bytes = static_cast<double>(op.OutputBytes());
    if (reduced0 && reduced1) {
      comm = mesh.AllReduceBothTime(out_bytes);
    } else if (reduced0) {
      const double group = out_spec.DimForAxis(1) >= 0 ? out_bytes / mesh.dim(1) : out_bytes;
      comm = mesh.AllReduceTime(group, 0);
    } else if (reduced1) {
      const double group = out_spec.DimForAxis(0) >= 0 ? out_bytes / mesh.dim(0) : out_bytes;
      comm = mesh.AllReduceTime(group, 1);
    }
    ParallelAlgorithm algorithm;
    algorithm.name = "reduce " + in_spec.ToString();
    algorithm.output_spec = out_spec;
    algorithm.input_specs = {in_spec};
    algorithm.comm_cost = comm;
    algorithm.compute_cost =
        ReplicationPenalty(op.flops, in_spec.TotalShards(mesh), mesh, device, precision);
    AddAlgorithm(out, std::move(algorithm));

    // Reduce-scatter variants on an unsharded kept dim.
    for (int axis = 0; axis < 2; ++axis) {
      const bool reduced = (axis == 0) ? reduced0 : reduced1;
      if (!reduced || (reduced0 && reduced1)) {
        continue;
      }
      for (int d = 0; d < out_rank; ++d) {
        if (out_spec.dim(d) != DimSharding::kR || op.shape.dim(d) % mesh.dim(axis) != 0) {
          continue;
        }
        std::vector<DimSharding> dims = out_spec.dims();
        dims[static_cast<size_t>(d)] = (axis == 0) ? DimSharding::kS0 : DimSharding::kS1;
        ShardingSpec rs_spec = ShardingSpec::Make(std::move(dims));
        ParallelAlgorithm variant;
        variant.name = algorithm.name + StrFormat(" rs(d%d)", d);
        variant.output_spec = std::move(rs_spec);
        variant.input_specs = {in_spec};
        variant.comm_cost = mesh.ReduceScatterTime(out_bytes, axis);
        variant.compute_cost = algorithm.compute_cost;
        AddAlgorithm(out, std::move(variant));
      }
    }
  }
}

void EnumerateLoss(const Operator& op, const Graph& graph, const DeviceMesh& mesh,
                   std::vector<ParallelAlgorithm>& out) {
  const Operator& logits = graph.op(op.operands[0]);
  for (const ShardingSpec& spec : ShardingSpec::Enumerate(logits.shape.rank())) {
    if (!spec.IsValidFor(logits.shape, mesh) || UsesDegenerateAxis(spec, mesh)) {
      continue;
    }
    ParallelAlgorithm algorithm;
    algorithm.name = "loss " + spec.ToString();
    algorithm.output_spec = ShardingSpec::Replicated(0);
    for (int operand : op.operands) {
      algorithm.input_specs.push_back(
          ProjectToTrailing(spec, graph.op(operand).shape.rank()));
    }
    bool ok = true;
    for (size_t i = 0; i < algorithm.input_specs.size(); ++i) {
      if (!algorithm.input_specs[i].IsValidFor(graph.op(op.operands[i]).shape, mesh)) {
        ok = false;
      }
    }
    if (!ok) {
      continue;
    }
    // Scalar loss all-reduce: latency only.
    algorithm.comm_cost = mesh.AllReduceBothTime(4.0);
    AddAlgorithm(out, std::move(algorithm));
  }
}

void EnumerateSpecChoice(const Operator& op, const DeviceMesh& mesh,
                         std::vector<ParallelAlgorithm>& out, bool mirror_inputs) {
  for (const ShardingSpec& spec : ShardingSpec::Enumerate(op.shape.rank())) {
    if (!spec.IsValidFor(op.shape, mesh) || UsesDegenerateAxis(spec, mesh)) {
      continue;
    }
    ParallelAlgorithm algorithm;
    algorithm.name = spec.ToString();
    algorithm.output_spec = spec;
    if (mirror_inputs) {
      algorithm.input_specs.assign(op.operands.size(), spec);
    }
    AddAlgorithm(out, std::move(algorithm));
  }
}

}  // namespace

ShardingSpec ProjectToTrailing(const ShardingSpec& spec, int target_rank) {
  ALPA_CHECK_LE(target_rank, spec.rank());
  std::vector<DimSharding> dims;
  dims.reserve(static_cast<size_t>(target_rank));
  for (int d = spec.rank() - target_rank; d < spec.rank(); ++d) {
    dims.push_back(spec.dim(d));
  }
  return ShardingSpec::Make(std::move(dims));
}

std::vector<ParallelAlgorithm> EnumerateAlgorithms(const Operator& op, const Graph& graph,
                                                   const DeviceMesh& mesh,
                                                   const DeviceSpec& device,
                                                   Precision precision) {
  std::vector<ParallelAlgorithm> algorithms;
  switch (op.type) {
    case OpType::kEinsum: {
      EinsumEnumArgs args;
      args.output_labels = op.einsum.output;
      args.operand_labels = op.einsum.operands;
      for (const std::string& labels : op.einsum.operands) {
        args.real_positions.push_back(AllPositions(labels));
      }
      args.extents = op.einsum.extents;
      args.halo = op.einsum.halo;
      args.flops = op.flops;
      args.output_bytes = op.OutputBytes();
      for (int operand : op.operands) {
        args.input_bytes = std::max(args.input_bytes, graph.op(operand).OutputBytes());
      }
      EnumerateEinsumAlgorithms(args, mesh, device, precision, algorithms);
      break;
    }
    case OpType::kEmbedding:
      EnumerateEmbedding(op, graph, mesh, device, precision, algorithms);
      break;
    case OpType::kEmbeddingGrad:
      EnumerateEmbeddingGrad(op, graph, mesh, device, precision, algorithms);
      break;
    case OpType::kMoeDispatch:
      EnumerateMoeDispatch(op, graph, mesh, device, precision, /*is_combine=*/false, algorithms);
      break;
    case OpType::kMoeCombine:
      EnumerateMoeDispatch(op, graph, mesh, device, precision, /*is_combine=*/true, algorithms);
      break;
    case OpType::kElementwise:
    case OpType::kSoftmax:
    case OpType::kLayerNorm:
      EnumeratePointwise(op, graph, mesh, device, precision, algorithms);
      break;
    case OpType::kReduce:
      EnumerateReduce(op, graph, mesh, device, precision, algorithms);
      break;
    case OpType::kLoss:
      EnumerateLoss(op, graph, mesh, algorithms);
      break;
    case OpType::kParameter:
    case OpType::kInput:
      EnumerateSpecChoice(op, mesh, algorithms, /*mirror_inputs=*/false);
      break;
    case OpType::kUpdate:
      EnumerateSpecChoice(op, mesh, algorithms, /*mirror_inputs=*/true);
      break;
  }
  if (algorithms.empty()) {
    // Guaranteed fallback: fully replicated execution.
    ParallelAlgorithm fallback;
    fallback.name = "replicated";
    fallback.output_spec = ShardingSpec::Replicated(op.shape.rank());
    for (int operand : op.operands) {
      fallback.input_specs.push_back(ShardingSpec::Replicated(graph.op(operand).shape.rank()));
    }
    fallback.compute_cost = ReplicationPenalty(op.flops, 1, mesh, device, precision);
    algorithms.push_back(std::move(fallback));
  }
  return algorithms;
}

}  // namespace alpa
