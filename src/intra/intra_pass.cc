#include "src/intra/intra_pass.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <unordered_map>

#include "src/graph/backward.h"
#include "src/support/logging.h"
#include "src/support/trace.h"

namespace alpa {

double OpComputeTime(const Operator& op, int64_t shards, const DeviceSpec& device,
                     Precision precision) {
  ALPA_CHECK_GT(shards, 0);
  switch (op.type) {
    case OpType::kEinsum:
    case OpType::kMoeDispatch:
    case OpType::kMoeCombine:
      return op.flops / static_cast<double>(shards) / device.EffectiveFlops(precision);
    case OpType::kUpdate:
      // Optimizer math runs in fp32 and is bandwidth-bound.
      return 3.0 * static_cast<double>(op.OutputBytes()) / static_cast<double>(shards) /
             device.memory_bandwidth;
    case OpType::kEmbedding:
    case OpType::kEmbeddingGrad:
    case OpType::kElementwise:
    case OpType::kReduce:
    case OpType::kSoftmax:
    case OpType::kLayerNorm:
    case OpType::kLoss:
      // Pointwise / gather traffic: ~3 bytes moved per output byte.
      return 3.0 * static_cast<double>(op.OutputBytes()) / static_cast<double>(shards) /
             device.memory_bandwidth;
    case OpType::kParameter:
    case OpType::kInput:
      return 0.0;
  }
  return 0.0;
}

IntraOpProblem BuildIntraOpProblem(
    const Graph& graph, const DeviceMesh& mesh, const IntraOpOptions& options,
    const std::vector<std::vector<ParallelAlgorithm>>* preenumerated) {
  const DeviceSpec& device = mesh.cluster().device;
  IntraOpProblem problem;
  problem.merge = ComputeMergePlan(graph);
  const double amortize = std::max(1, options.num_microbatches);

  // Ops whose outputs flow only into weight updates carry per-iteration
  // costs: with gradient accumulation, their communication happens once per
  // iteration instead of once per microbatch.
  std::vector<char> per_iteration(static_cast<size_t>(graph.size()), 0);
  {
    const auto consumers = graph.Consumers();
    for (int v = graph.size() - 1; v >= 0; --v) {
      const Operator& op = graph.op(v);
      if (op.type == OpType::kUpdate) {
        per_iteration[static_cast<size_t>(v)] = 1;
        continue;
      }
      if (op.type == OpType::kParameter || op.type == OpType::kInput ||
          op.type == OpType::kLoss) {
        continue;
      }
      const auto& cs = consumers[static_cast<size_t>(v)];
      per_iteration[static_cast<size_t>(v)] =
          !cs.empty() && std::all_of(cs.begin(), cs.end(), [&](int c) {
            return per_iteration[static_cast<size_t>(c)] != 0;
          });
    }
  }

  const int num_nodes = static_cast<int>(problem.merge.decision_ops.size());
  problem.algorithms.resize(static_cast<size_t>(num_nodes));
  problem.ilp.node_costs.resize(static_cast<size_t>(num_nodes));
  problem.node_per_iteration.resize(static_cast<size_t>(num_nodes));

  static Metric* enum_micros = Metrics::Get("ilp/build/enum_micros");
  static Metric* edge_micros = Metrics::Get("ilp/build/edge_micros");
  const auto enum_t0 = std::chrono::steady_clock::now();

  for (int n = 0; n < num_nodes; ++n) {
    const Operator& op = graph.op(problem.merge.decision_ops[static_cast<size_t>(n)]);
    std::vector<ParallelAlgorithm> algorithms =
        preenumerated ? (*preenumerated)[static_cast<size_t>(n)]
                      : EnumerateAlgorithms(op, graph, mesh, device, options.precision);
    if (options.filter) {
      std::vector<ParallelAlgorithm> kept;
      for (ParallelAlgorithm& a : algorithms) {
        if (options.filter(graph, mesh, op, a)) {
          kept.push_back(std::move(a));
        }
      }
      if (!kept.empty()) {
        algorithms = std::move(kept);
      } else {
        // Keep only the replicated fallback for feasibility.
        ParallelAlgorithm fallback;
        fallback.name = "replicated";
        fallback.output_spec = ShardingSpec::Replicated(op.shape.rank());
        for (int operand : op.operands) {
          fallback.input_specs.push_back(
              ShardingSpec::Replicated(graph.op(operand).shape.rank()));
        }
        fallback.compute_cost = OpComputeTime(op, 1, device, options.precision) -
                                OpComputeTime(op, mesh.num_devices(), device, options.precision);
        algorithms = {std::move(fallback)};
      }
    }
    const bool node_flag =
        per_iteration[static_cast<size_t>(problem.merge.decision_ops[static_cast<size_t>(n)])] !=
        0;
    problem.node_per_iteration[static_cast<size_t>(n)] = node_flag;
    auto& costs = problem.ilp.node_costs[static_cast<size_t>(n)];
    costs.reserve(algorithms.size());
    for (const ParallelAlgorithm& a : algorithms) {
      // Vanishing memory tiebreak (~1e-10 s for a 100 MB tensor): among
      // equal-time layouts prefer the sharded one, so free slicing choices
      // (inputs, boundary activations) do not squat replicated memory.
      const double tiebreak =
          1e-18 *
          static_cast<double>(a.output_spec.ShardedBytes(op.shape, DTypeBytes(op.dtype), mesh));
      if (!node_flag) {
        costs.push_back(a.comm_cost + a.compute_cost + tiebreak);
      } else if (op.type == OpType::kUpdate) {
        // Optimizer math and communication both run once per iteration.
        costs.push_back((a.comm_cost + a.compute_cost) / amortize + tiebreak);
      } else {
        // Gradient producers: the computation happens per microbatch; only
        // the gradient synchronization amortizes.
        costs.push_back(a.comm_cost / amortize + a.compute_cost + tiebreak);
      }
    }
    problem.algorithms[static_cast<size_t>(n)] = std::move(algorithms);
  }

  // Edges: one per (producer tensor, consumer) pair crossing decision-node
  // groups. Resharding cost from the producer group's output spec to the
  // consumer's required operand spec. Pairs connected by several tensors
  // are summed into one matrix right here (keyed on endpoints AND the
  // per-iteration flag, which scales entries differently), so the solver
  // and EvaluateChoice both see an already-simple graph per flag.
  const auto edge_t0 = std::chrono::steady_clock::now();
  enum_micros->Add(
      std::chrono::duration_cast<std::chrono::microseconds>(edge_t0 - enum_t0).count());
  std::unordered_map<uint64_t, size_t> edge_index;
  for (int c = 0; c < graph.size(); ++c) {
    const Operator& consumer = graph.op(c);
    const int rc = problem.merge.rep[static_cast<size_t>(c)];
    const int nj = problem.merge.node_index[static_cast<size_t>(rc)];
    for (size_t oi = 0; oi < consumer.operands.size(); ++oi) {
      const int p = consumer.operands[oi];
      const int rp = problem.merge.rep[static_cast<size_t>(p)];
      if (rp == rc) {
        continue;  // Internal to one group.
      }
      const int ni = problem.merge.node_index[static_cast<size_t>(rp)];
      const Operator& producer = graph.op(p);
      const int64_t dtype_bytes = DTypeBytes(producer.dtype);

      IlpProblem::Edge edge;
      edge.u = ni;
      edge.v = nj;
      const auto& src_algos = problem.algorithms[static_cast<size_t>(ni)];
      const auto& dst_algos = problem.algorithms[static_cast<size_t>(nj)];
      edge.cost.assign(src_algos.size(), std::vector<double>(dst_algos.size(), 0.0));
      const bool consumer_is_node = (rc == c);
      const bool is_update_param_edge = (consumer.type == OpType::kUpdate && oi == 0);
      // The destination spec depends only on the consumer choice j, so it
      // (and its validity check) is hoisted out of the i loop: the cell
      // count is |src| x |dst| but only |src| + |dst| distinct specs.
      std::vector<ShardingSpec> dst_specs(dst_algos.size());
      std::vector<char> dst_valid(dst_algos.size());
      for (size_t j = 0; j < dst_algos.size(); ++j) {
        dst_specs[j] = consumer_is_node
                           ? dst_algos[j].input_specs[oi]
                           : ProjectToTrailing(dst_algos[j].output_spec, producer.shape.rank());
        dst_valid[j] = dst_specs[j].IsValidFor(producer.shape, mesh) ? 1 : 0;
      }
      // Algorithms frequently share a boundary spec (replicated outputs,
      // repeated input layouts), so resharding costs are computed once per
      // unique valid (src, dst) spec pair and broadcast to the full matrix.
      // A uid of -1 marks an invalid spec; those cells are infeasible.
      std::vector<int> dst_uid(dst_algos.size(), -1);
      std::vector<const ShardingSpec*> uniq_dst;
      for (size_t j = 0; j < dst_algos.size(); ++j) {
        if (!dst_valid[j]) {
          continue;
        }
        for (size_t u = 0; u < uniq_dst.size() && dst_uid[j] < 0; ++u) {
          if (*uniq_dst[u] == dst_specs[j]) {
            dst_uid[j] = static_cast<int>(u);
          }
        }
        if (dst_uid[j] < 0) {
          dst_uid[j] = static_cast<int>(uniq_dst.size());
          uniq_dst.push_back(&dst_specs[j]);
        }
      }
      std::vector<int> src_uid(src_algos.size(), -1);
      std::vector<const ShardingSpec*> uniq_src;
      for (size_t i = 0; i < src_algos.size(); ++i) {
        const ShardingSpec& src = src_algos[i].output_spec;
        if (!src.IsValidFor(producer.shape, mesh)) {
          continue;
        }
        for (size_t u = 0; u < uniq_src.size() && src_uid[i] < 0; ++u) {
          if (*uniq_src[u] == src) {
            src_uid[i] = static_cast<int>(u);
          }
        }
        if (src_uid[i] < 0) {
          src_uid[i] = static_cast<int>(uniq_src.size());
          uniq_src.push_back(&src);
        }
      }
      std::vector<std::vector<double>> uniq_cost(
          uniq_src.size(), std::vector<double>(uniq_dst.size(), 0.0));
      for (size_t us = 0; us < uniq_src.size(); ++us) {
        for (size_t ud = 0; ud < uniq_dst.size(); ++ud) {
          const ShardingSpec& src = *uniq_src[us];
          const ShardingSpec& dst = *uniq_dst[ud];
          double cost = ReshardCost(src, dst, producer.shape, dtype_bytes, mesh);
          if (is_update_param_edge) {
            // The updated weights must be restored to the parameter's
            // storage layout before the next iteration (all-gather when the
            // optimizer step is sharded, i.e. ZeRO).
            cost += ReshardCost(dst, src, producer.shape, dtype_bytes, mesh);
          }
          uniq_cost[us][ud] = cost;
        }
      }
      for (size_t i = 0; i < src_algos.size(); ++i) {
        for (size_t j = 0; j < dst_algos.size(); ++j) {
          edge.cost[i][j] = (src_uid[i] < 0 || dst_uid[j] < 0)
                                ? kInfCost
                                : uniq_cost[static_cast<size_t>(src_uid[i])]
                                           [static_cast<size_t>(dst_uid[j])];
        }
      }
      // Resharding on the way into a per-iteration consumer (gradients
      // flowing to the optimizer) amortizes over gradient accumulation.
      const bool edge_flag = per_iteration[static_cast<size_t>(c)] != 0;
      if (edge_flag) {
        for (auto& row : edge.cost) {
          for (double& value : row) {
            value /= amortize;
          }
        }
      }
      // Canonical orientation (u < v) so both tensor directions between a
      // pair land on one accumulator matrix.
      if (edge.u > edge.v) {
        IlpProblem::Edge flipped;
        flipped.u = edge.v;
        flipped.v = edge.u;
        flipped.cost.assign(edge.cost[0].size(), std::vector<double>(edge.cost.size(), 0.0));
        for (size_t i = 0; i < edge.cost.size(); ++i) {
          for (size_t j = 0; j < edge.cost[i].size(); ++j) {
            flipped.cost[j][i] = edge.cost[i][j];
          }
        }
        edge = std::move(flipped);
      }
      const uint64_t key = (static_cast<uint64_t>(edge.u) << 33) |
                           (static_cast<uint64_t>(edge.v) << 1) |
                           static_cast<uint64_t>(edge_flag ? 1 : 0);
      const auto [it, inserted] = edge_index.emplace(key, problem.ilp.edges.size());
      if (inserted) {
        problem.edge_per_iteration.push_back(edge_flag);
        problem.ilp.edges.push_back(std::move(edge));
      } else {
        auto& acc = problem.ilp.edges[it->second].cost;
        for (size_t i = 0; i < acc.size(); ++i) {
          for (size_t j = 0; j < acc[i].size(); ++j) {
            acc[i][j] += edge.cost[i][j];
          }
        }
      }
    }
  }
  edge_micros->Add(std::chrono::duration_cast<std::chrono::microseconds>(
                       std::chrono::steady_clock::now() - edge_t0)
                       .count());
  return problem;
}

IntraOpResult EvaluateChoice(const Graph& graph, const DeviceMesh& mesh,
                             const IntraOpProblem& problem, const IntraOpOptions& options,
                             std::vector<int> choice, bool optimal) {
  const DeviceSpec& device = mesh.cluster().device;
  const double amortize = std::max(1, options.num_microbatches);
  IntraOpResult result;
  result.optimal = optimal;
  if (!std::isfinite(problem.ilp.Evaluate(choice))) {
    result.objective = kInfCost;
    return result;
  }
  result.choice = std::move(choice);

  // Split the objective into per-microbatch and per-iteration buckets
  // (stored ILP costs are amortized; multiply flagged entries back).
  double per_mb = 0.0;
  double per_iter = 0.0;
  for (size_t n = 0; n < problem.algorithms.size(); ++n) {
    const ParallelAlgorithm& a =
        problem.algorithms[n][static_cast<size_t>(result.choice[n])];
    const Operator& op = graph.op(problem.merge.decision_ops[n]);
    if (!problem.node_per_iteration[n]) {
      per_mb += a.comm_cost + a.compute_cost;
    } else if (op.type == OpType::kUpdate) {
      per_iter += a.comm_cost + a.compute_cost;
    } else {
      per_iter += a.comm_cost;
      per_mb += a.compute_cost;
    }
  }
  for (size_t e = 0; e < problem.ilp.edges.size(); ++e) {
    const IlpProblem::Edge& edge = problem.ilp.edges[e];
    const double value =
        edge.cost[static_cast<size_t>(result.choice[static_cast<size_t>(edge.u)])]
                 [static_cast<size_t>(result.choice[static_cast<size_t>(edge.v)])];
    if (problem.edge_per_iteration[e]) {
      per_iter += value * amortize;
    } else {
      per_mb += value;
    }
  }
  result.objective = per_mb;
  result.t_per_iteration = per_iter;

  // Resolved spec per op.
  result.op_specs.resize(static_cast<size_t>(graph.size()));
  for (int v = 0; v < graph.size(); ++v) {
    const int rep = problem.merge.rep[static_cast<size_t>(v)];
    const int node = problem.merge.node_index[static_cast<size_t>(rep)];
    const int algo = result.choice[static_cast<size_t>(node)];
    result.op_specs[static_cast<size_t>(v)] =
        problem.algorithms[static_cast<size_t>(node)][static_cast<size_t>(algo)].output_spec;
  }

  // Ideal compute (everything perfectly sharded over the mesh). Optimizer
  // math runs once per iteration; everything else per microbatch.
  const int ndev = mesh.num_devices();
  double fwd_ideal = 0.0;
  for (const Operator& op : graph.ops()) {
    const double t = OpComputeTime(op, ndev, device, options.precision);
    if (op.role == OpRole::kUpdate) {
      result.t_per_iteration += t;
    } else {
      result.ideal_compute += t;
      if (op.role == OpRole::kForward) {
        fwd_ideal += t;
      }
    }
  }
  result.t_intra = result.ideal_compute + result.objective;
  if (options.rematerialize) {
    // Backward re-runs the forward computation of discarded activations.
    result.t_intra += fwd_ideal;
  }

  // --- Per-device memory profile. ---
  double weight = 0.0;
  double act = 0.0;
  double work_max = 0.0;
  // Optimizer-state sharding follows the update op's spec.
  std::vector<int> update_of_param(static_cast<size_t>(graph.size()), -1);
  for (const Operator& op : graph.ops()) {
    if (op.type == OpType::kUpdate) {
      update_of_param[static_cast<size_t>(op.param_id)] = op.id;
    }
  }
  double boundary_act = 0.0;
  for (const Operator& op : graph.ops()) {
    const ShardingSpec& spec = result.op_specs[static_cast<size_t>(op.id)];
    const double sharded_bytes = static_cast<double>(
        spec.ShardedBytes(op.shape, DTypeBytes(op.dtype), mesh));
    work_max = std::max(work_max, sharded_bytes);
    switch (op.type) {
      case OpType::kParameter: {
        weight += sharded_bytes;
        const int update = update_of_param[static_cast<size_t>(op.id)];
        if (update >= 0) {
          const ShardingSpec& update_spec = result.op_specs[static_cast<size_t>(update)];
          weight += static_cast<double>(op.shape.elements()) *
                    static_cast<double>(OptimizerStateBytesPerElement(op.dtype)) /
                    static_cast<double>(update_spec.TotalShards(mesh));
          // Gradient buffer, laid out as produced.
          const Operator& update_op = graph.op(update);
          const ShardingSpec& grad_spec =
              result.op_specs[static_cast<size_t>(update_op.operands[1])];
          weight += static_cast<double>(
              grad_spec.ShardedBytes(op.shape, DTypeBytes(op.dtype), mesh));
        }
        break;
      }
      case OpType::kInput:
        // Stage-boundary activations (kInput placeholders in stage
        // subgraphs) persist per in-flight microbatch even with remat.
        if (op.role == OpRole::kForward && op.dtype != DType::kI32) {
          boundary_act += sharded_bytes;
        }
        break;
      case OpType::kUpdate:
      case OpType::kLoss:
        break;
      default:
        if (op.role == OpRole::kForward) {
          act += sharded_bytes;
        }
        break;
    }
  }
  result.weight_bytes = weight;
  const double internal_fraction = options.rematerialize ? options.activation_fraction : 1.0;
  result.act_bytes_per_microbatch = boundary_act + act * internal_fraction;
  result.work_bytes = 2.0 * work_max;
  result.feasible = true;
  return result;
}

namespace {

// Canonical restricted plan families used as solver seeds.
std::vector<AlgorithmFilter> SeedPlanFamilies() {
  // Batch-parallel (dim 0 only, replicated weights and optimizer).
  AlgorithmFilter data = [](const Graph&, const DeviceMesh&, const Operator& op,
                            const ParallelAlgorithm& a) {
    if (op.weight_grad || op.type == OpType::kParameter || op.type == OpType::kUpdate) {
      return a.output_spec.IsFullyReplicated();
    }
    for (int d = 1; d < a.output_spec.rank(); ++d) {
      if (a.output_spec.dim(d) != DimSharding::kR) {
        return false;
      }
    }
    return a.output_spec.rank() == 0 || a.output_spec.dim(0) != DimSharding::kS01;
  };
  // Weight-update sharding on top of batch parallelism (ZeRO).
  AlgorithmFilter zero = [](const Graph&, const DeviceMesh& mesh, const Operator& op,
                            const ParallelAlgorithm& a) {
    if (op.type == OpType::kUpdate && op.shape.elements() > 1024) {
      return !a.output_spec.IsFullyReplicated();
    }
    if (op.type == OpType::kParameter) {
      return true;
    }
    if (!op.weight_grad) {
      for (int d = 1; d < a.output_spec.rank(); ++d) {
        if (a.output_spec.dim(d) != DimSharding::kR) {
          return false;
        }
      }
    }
    return true;
  };
  // Tensor parallelism along the second mesh axis.
  AlgorithmFilter tensor = [](const Graph&, const DeviceMesh&, const Operator& op,
                              const ParallelAlgorithm& a) {
    for (int d = 0; d < a.output_spec.rank(); ++d) {
      const DimSharding s = a.output_spec.dim(d);
      if (s == DimSharding::kS01 || (d == 0 && s == DimSharding::kS1 && !op.weight_grad &&
                                     op.type != OpType::kParameter)) {
        return false;
      }
    }
    return true;
  };
  return {std::move(data), std::move(zero), std::move(tensor)};
}

// Finds the index of `target` (by spec signature) in `menu`, or -1.
int MatchAlgorithm(const std::vector<ParallelAlgorithm>& menu, const ParallelAlgorithm& target) {
  for (size_t i = 0; i < menu.size(); ++i) {
    if (menu[i].output_spec == target.output_spec &&
        menu[i].input_specs == target.input_specs) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

}  // namespace

IntraOpResult SolveIntraOp(const Graph& graph, const DeviceMesh& mesh,
                           const IntraOpOptions& options) {
  static Metric* build_micros = Metrics::Get("ilp/build/micros");
  static Metric* seed_micros = Metrics::Get("ilp/seed/micros");
  const auto build_t0 = std::chrono::steady_clock::now();
  const IntraOpProblem problem = BuildIntraOpProblem(graph, mesh, options);
  build_micros->Add(std::chrono::duration_cast<std::chrono::microseconds>(
                        std::chrono::steady_clock::now() - build_t0)
                        .count());
  if (!options.forced_choice.empty()) {
    return EvaluateChoice(graph, mesh, problem, options, options.forced_choice, false);
  }
  IlpSolverOptions solver_options = options.solver;
  const bool want_seeds = options.seed_with_plan_families && !options.filter;
  // Staged/portfolio pipeline: solve optimistically without seeds first.
  // Seed plan families only matter as branch & bound incumbents and as a
  // floor on budget aborts; when the staged core proves optimality outright
  // (the common case with presolve + elimination), the three restricted
  // builds and solves below are pure overhead. The legacy engine keeps the
  // pre-overhaul always-seed pipeline so A/B comparisons stay faithful.
  if (want_seeds && solver_options.engine != IlpEngine::kLegacy) {
    IlpSolution first = IlpSolver(solver_options).Solve(problem.ilp);
    if (!first.feasible) {
      IntraOpResult result;
      return result;
    }
    if (first.optimal) {
      return EvaluateChoice(graph, mesh, problem, options, std::move(first.choice), true);
    }
    // Budget abort: fall through to the seeded solve, carrying the aborted
    // incumbent so the retry can only improve on it.
    solver_options.seeds.push_back(std::move(first.choice));
  }
  if (want_seeds) {
    const auto seed_t0 = std::chrono::steady_clock::now();
    for (const AlgorithmFilter& family : SeedPlanFamilies()) {
      IntraOpOptions restricted = options;
      restricted.filter = family;
      restricted.seed_with_plan_families = false;
      // The main (unfiltered) build already enumerated every node's menu;
      // the restricted build only re-applies the family filter to it.
      const IntraOpProblem sub =
          BuildIntraOpProblem(graph, mesh, restricted, &problem.algorithms);
      const IlpSolution sub_solution = IlpSolver(options.solver).Solve(sub.ilp);
      if (!sub_solution.feasible) {
        continue;
      }
      // Translate restricted choices into the unrestricted menu.
      std::vector<int> seed(problem.algorithms.size(), -1);
      bool ok = true;
      for (size_t n = 0; n < problem.algorithms.size() && ok; ++n) {
        const ParallelAlgorithm& picked =
            sub.algorithms[n][static_cast<size_t>(sub_solution.choice[n])];
        const int index = MatchAlgorithm(problem.algorithms[n], picked);
        if (index < 0) {
          ok = false;
        }
        seed[n] = index;
      }
      if (ok) {
        solver_options.seeds.push_back(std::move(seed));
      }
    }
    seed_micros->Add(std::chrono::duration_cast<std::chrono::microseconds>(
                         std::chrono::steady_clock::now() - seed_t0)
                         .count());
  }
  IlpSolver solver(solver_options);
  IlpSolution solution = solver.Solve(problem.ilp);
  if (!solution.feasible) {
    IntraOpResult result;
    return result;
  }
  const double gap = solution.optimality_gap();
  IntraOpResult result = EvaluateChoice(graph, mesh, problem, options,
                                        std::move(solution.choice), solution.optimal);
  result.optimality_gap = result.optimal ? 0.0 : gap;
  return result;
}

}  // namespace alpa
