#include "src/mesh/submesh.h"

#include <algorithm>
#include <numeric>

#include "src/support/logging.h"
#include "src/support/math_util.h"

namespace alpa {

std::vector<SubmeshShape> EnumerateSubmeshShapes(const ClusterSpec& cluster) {
  std::vector<SubmeshShape> shapes;
  for (int d = 1; d <= cluster.devices_per_host; d *= 2) {
    shapes.push_back(SubmeshShape{1, d});
  }
  for (int h = 2; h <= cluster.num_hosts; ++h) {
    shapes.push_back(SubmeshShape{h, cluster.devices_per_host});
  }
  return shapes;
}

std::optional<std::vector<MeshPlacement>> CoverCluster(const ClusterSpec& cluster,
                                                       const std::vector<SubmeshShape>& shapes) {
  const int m = cluster.devices_per_host;
  int64_t total = 0;
  for (const SubmeshShape& shape : shapes) {
    if (shape.num_hosts > 1 && shape.devices_per_host != m) {
      return std::nullopt;
    }
    if (shape.num_hosts == 1 &&
        (!IsPowerOfTwo(shape.devices_per_host) || shape.devices_per_host > m)) {
      return std::nullopt;
    }
    if (shape.num_hosts < 1 || shape.num_hosts > cluster.num_hosts) {
      return std::nullopt;
    }
    total += shape.num_devices();
  }
  if (total != static_cast<int64_t>(cluster.num_devices())) {
    return std::nullopt;
  }

  std::vector<MeshPlacement> placements(shapes.size());

  // Pass 1: multi-host and full-host submeshes take whole hosts from the
  // front of the cluster.
  int next_host = 0;
  std::vector<size_t> one_dim;
  for (size_t i = 0; i < shapes.size(); ++i) {
    const SubmeshShape& shape = shapes[i];
    if (shape.num_hosts > 1 || shape.devices_per_host == m) {
      placements[i] = MeshPlacement{next_host, 0, shape};
      next_host += shape.num_hosts;
    } else {
      one_dim.push_back(i);
    }
  }

  // Pass 2: bin-pack the strict (1, 2^p < M) slices into the remaining
  // hosts, largest first. Because every size is a power of two and the
  // total fills the remaining hosts exactly, first-fit-decreasing leaves no
  // fragmentation: each host's free space stays a multiple of every
  // yet-unplaced (smaller) item size.
  std::sort(one_dim.begin(), one_dim.end(), [&](size_t a, size_t b) {
    return shapes[a].devices_per_host > shapes[b].devices_per_host;
  });
  std::vector<int> used(static_cast<size_t>(cluster.num_hosts - next_host), 0);
  for (size_t idx : one_dim) {
    const int need = shapes[idx].devices_per_host;
    bool placed = false;
    for (size_t h = 0; h < used.size(); ++h) {
      if (used[h] + need <= m) {
        placements[idx] = MeshPlacement{next_host + static_cast<int>(h), used[h], shapes[idx]};
        used[h] += need;
        placed = true;
        break;
      }
    }
    if (!placed) {
      return std::nullopt;  // Unreachable for valid inputs (Theorem 1).
    }
  }
  return placements;
}

}  // namespace alpa
