#include "src/mesh/fault_spec.h"

#include <algorithm>
#include <limits>

#include "src/support/strings.h"

namespace alpa {

double RetryPolicy::PenaltySeconds(int failures) const {
  double penalty = 0.0;
  double wait = backoff;
  for (int i = 0; i < failures; ++i) {
    penalty += timeout + wait;
    wait *= backoff_multiplier;
  }
  return penalty;
}

bool FaultSpec::empty() const {
  return device_failures.empty() && stragglers.empty() && link_degradations.empty() &&
         transient_send_failure_rate <= 0.0;
}

double FaultSpec::EarliestFailure(const std::vector<int>& devices, int* failed_device) const {
  double earliest = std::numeric_limits<double>::infinity();
  for (const DeviceFailure& failure : device_failures) {
    if (failure.time >= earliest) {
      continue;
    }
    for (int device : devices) {
      if (device == failure.device) {
        earliest = failure.time;
        *failed_device = failure.device;
        break;
      }
    }
  }
  return earliest;
}

double FaultSpec::ComputeSlowdown(const std::vector<int>& devices) const {
  double slowdown = 1.0;
  for (const Straggler& straggler : stragglers) {
    if (straggler.slowdown <= slowdown) {
      continue;
    }
    for (int device : devices) {
      if (device == straggler.device) {
        slowdown = straggler.slowdown;
        break;
      }
    }
  }
  return slowdown;
}

double FaultSpec::LinkBandwidthFactor(int src_host, int dst_host) const {
  double factor = 1.0;
  for (const LinkDegradation& link : link_degradations) {
    const bool src_match = link.src_host < 0 || link.src_host == src_host;
    const bool dst_match = link.dst_host < 0 || link.dst_host == dst_host;
    if (src_match && dst_match) {
      factor = std::min(factor, link.bandwidth_factor);
    }
  }
  return factor;
}

std::string FaultSpec::ToString() const {
  if (empty()) {
    return "FaultSpec(none)";
  }
  return StrFormat(
      "FaultSpec(%zu failures, %zu stragglers, %zu degraded links, loss=%.2g, "
      "retries<=%d)",
      device_failures.size(), stragglers.size(), link_degradations.size(),
      transient_send_failure_rate, retry.max_attempts);
}

}  // namespace alpa
