// Description of the target compute cluster.
//
// The paper evaluates on 8 AWS p3.16xlarge nodes (8 NVIDIA V100 16GB each,
// NVLink within a node, 25 Gbps across nodes). We model a cluster as a grid
// of `num_hosts x devices_per_host` accelerators with a two-tier
// interconnect described by alpha-beta (latency-bandwidth) parameters.
#ifndef SRC_MESH_CLUSTER_SPEC_H_
#define SRC_MESH_CLUSTER_SPEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/mesh/fault_spec.h"

namespace alpa {

// Numeric precision of tensors; determines both element width and the
// achievable device throughput (tensor cores for fp16).
enum class Precision {
  kFloat16,
  kFloat32,
};

// Bytes per element for a precision.
int64_t BytesPerElement(Precision precision);

// Static description of one accelerator device.
struct DeviceSpec {
  // Peak throughput in FLOP/s by precision.
  double peak_flops_fp16 = 125e12;  // V100 tensor core peak.
  double peak_flops_fp32 = 15.7e12;
  // Device memory in bytes.
  double memory_bytes = 16e9;
  // HBM bandwidth in bytes/s (bounds pointwise-op throughput).
  double memory_bandwidth = 900e9;
  // Fraction of peak a well-tuned kernel achieves on average. The paper's
  // own piece-wise linear cost model plays the same role (7.4).
  double compute_efficiency = 0.45;

  double PeakFlops(Precision precision) const {
    return precision == Precision::kFloat16 ? peak_flops_fp16 : peak_flops_fp32;
  }
  double EffectiveFlops(Precision precision) const {
    return PeakFlops(precision) * compute_efficiency;
  }

  bool operator==(const DeviceSpec&) const = default;

  // --- Generation presets (paper-era V100 is the library default). ---
  static DeviceSpec V100();  // == DeviceSpec{} — the reference generation.
  static DeviceSpec A100();  // 312 TFLOPS fp16, 40 GB, 1555 GB/s HBM.
  static DeviceSpec H100();  // 989 TFLOPS fp16, 80 GB, 3350 GB/s HBM.
};

// Static description of the whole cluster.
struct ClusterSpec {
  int num_hosts = 1;
  int devices_per_host = 1;
  // The REFERENCE device generation: the intra-op cost model and the stage
  // profiler price every submesh against this spec, so profiles stay keyed
  // by shape (not placement) and the process-wide ILP memo keeps working
  // across cluster mutations. Heterogeneous clusters overlay per-host
  // generations via `host_devices`.
  DeviceSpec device;
  // Per-host device overrides for mixed-generation clusters. Empty =
  // homogeneous (every host runs `device`); otherwise exactly one entry per
  // host. The inter-op pass resolves the difference at stage
  // MATERIALIZATION: stage latencies are scaled by each placement's
  // HostTimeScale and memory feasibility checks use the placement's actual
  // capacity, so the compiler deliberately matches slow stages to fast
  // meshes (see InterOpOptions::hetero_aware).
  std::vector<DeviceSpec> host_devices;

  // Intra-host interconnect (NVLink): bus bandwidth in bytes/s and latency.
  double intra_host_bandwidth = 150e9;
  double intra_host_alpha = 2e-6;
  // Cross-host interconnect (datacenter network): bandwidth in bytes/s of
  // one host NIC and per-message latency.
  double inter_host_bandwidth = 3.125e9;  // 25 Gbps.
  double inter_host_alpha = 10e-6;

  // Fault scenario the simulated runtime replays against plans compiled for
  // this cluster (empty = the paper's static healthy-cluster assumption).
  // The compiler ignores it; Parallelize() threads it into the simulator
  // input so a single plan can be stress-tested under many scenarios.
  FaultSpec faults;

  int num_devices() const { return num_hosts * devices_per_host; }

  // True when per-host overrides are present and at least one host differs
  // from the reference generation.
  bool heterogeneous() const;

  // The generation running host `h` (the reference `device` when no
  // override exists).
  const DeviceSpec& host_device(int host) const;

  // How much LONGER a stage profiled on the reference generation runs on
  // host `host`: the max of the compute-throughput and HBM-bandwidth
  // ratios (a stage mixes compute- and bandwidth-bound ops; the binding
  // resource sets the wall time). < 1 on a faster-than-reference host.
  double HostTimeScale(int host, Precision precision) const;

  // FNV-1a digest of the topology and device generations (faults excluded:
  // a fault scenario replays against a cluster, it does not define one).
  // The elastic runtime keys speculative presolves on this.
  uint64_t Fingerprint() const;

  // The testbed used in the paper: AWS p3.16xlarge nodes.
  static ClusterSpec AwsP3(int num_hosts, int devices_per_host = 8);

  // Mixed-generation preset: `num_base_hosts` reference-generation (V100)
  // hosts followed by `num_fast_hosts` of `fast`. Interconnect parameters
  // stay at the AwsP3 defaults so the only heterogeneity is the device
  // generation — exactly the scenario the hetero-aware stage assignment
  // targets.
  static ClusterSpec MixedGeneration(int num_base_hosts, int num_fast_hosts,
                                     int devices_per_host = 8,
                                     DeviceSpec fast = DeviceSpec::A100());

  std::string ToString() const;
};

}  // namespace alpa

#endif  // SRC_MESH_CLUSTER_SPEC_H_
