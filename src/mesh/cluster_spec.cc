#include "src/mesh/cluster_spec.h"

#include <algorithm>
#include <cstring>

#include "src/support/logging.h"
#include "src/support/strings.h"

namespace alpa {

int64_t BytesPerElement(Precision precision) {
  switch (precision) {
    case Precision::kFloat16:
      return 2;
    case Precision::kFloat32:
      return 4;
  }
  ALPA_LOG(FATAL) << "Unknown precision";
  return 0;
}

DeviceSpec DeviceSpec::V100() { return DeviceSpec{}; }

DeviceSpec DeviceSpec::A100() {
  DeviceSpec spec;
  spec.peak_flops_fp16 = 312e12;
  spec.peak_flops_fp32 = 19.5e12;
  spec.memory_bytes = 40e9;
  spec.memory_bandwidth = 1555e9;
  return spec;
}

DeviceSpec DeviceSpec::H100() {
  DeviceSpec spec;
  spec.peak_flops_fp16 = 989e12;
  spec.peak_flops_fp32 = 67e12;
  spec.memory_bytes = 80e9;
  spec.memory_bandwidth = 3350e9;
  return spec;
}

ClusterSpec ClusterSpec::AwsP3(int num_hosts, int devices_per_host) {
  ALPA_CHECK_GE(num_hosts, 1);
  ALPA_CHECK_GE(devices_per_host, 1);
  ClusterSpec spec;
  spec.num_hosts = num_hosts;
  spec.devices_per_host = devices_per_host;
  return spec;
}

ClusterSpec ClusterSpec::MixedGeneration(int num_base_hosts, int num_fast_hosts,
                                         int devices_per_host, DeviceSpec fast) {
  ALPA_CHECK_GE(num_base_hosts, 0);
  ALPA_CHECK_GE(num_fast_hosts, 0);
  ClusterSpec spec = AwsP3(num_base_hosts + num_fast_hosts, devices_per_host);
  spec.host_devices.assign(static_cast<size_t>(num_base_hosts), spec.device);
  spec.host_devices.insert(spec.host_devices.end(), static_cast<size_t>(num_fast_hosts), fast);
  return spec;
}

bool ClusterSpec::heterogeneous() const {
  if (host_devices.empty()) {
    return false;
  }
  return std::any_of(host_devices.begin(), host_devices.end(),
                     [this](const DeviceSpec& d) { return !(d == device); });
}

const DeviceSpec& ClusterSpec::host_device(int host) const {
  if (host_devices.empty()) {
    return device;
  }
  ALPA_CHECK_GE(host, 0);
  ALPA_CHECK_LT(host, static_cast<int>(host_devices.size()));
  return host_devices[static_cast<size_t>(host)];
}

double ClusterSpec::HostTimeScale(int host, Precision precision) const {
  const DeviceSpec& actual = host_device(host);
  const double flops_ratio =
      device.EffectiveFlops(precision) / actual.EffectiveFlops(precision);
  const double bandwidth_ratio = device.memory_bandwidth / actual.memory_bandwidth;
  return std::max(flops_ratio, bandwidth_ratio);
}

uint64_t ClusterSpec::Fingerprint() const {
  uint64_t h = 1469598103934665603ULL;  // FNV-1a offset basis.
  const auto mix = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xffULL;
      h *= 1099511628211ULL;
    }
  };
  const auto mix_f64 = [&mix](double v) {
    uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    mix(bits);
  };
  const auto mix_device = [&](const DeviceSpec& d) {
    mix_f64(d.peak_flops_fp16);
    mix_f64(d.peak_flops_fp32);
    mix_f64(d.memory_bytes);
    mix_f64(d.memory_bandwidth);
    mix_f64(d.compute_efficiency);
  };
  mix(static_cast<uint64_t>(num_hosts));
  mix(static_cast<uint64_t>(devices_per_host));
  mix_device(device);
  mix_f64(intra_host_bandwidth);
  mix_f64(intra_host_alpha);
  mix_f64(inter_host_bandwidth);
  mix_f64(inter_host_alpha);
  mix(static_cast<uint64_t>(host_devices.size()));
  for (const DeviceSpec& d : host_devices) {
    mix_device(d);
  }
  return h;
}

std::string ClusterSpec::ToString() const {
  std::string base =
      StrFormat("Cluster(%d hosts x %d devices, nvlink=%s/s, net=%s/s", num_hosts,
                devices_per_host, HumanBytes(intra_host_bandwidth).c_str(),
                HumanBytes(inter_host_bandwidth).c_str());
  if (heterogeneous()) {
    int fast_hosts = 0;
    for (int host = 0; host < num_hosts; ++host) {
      if (!(host_device(host) == device)) {
        ++fast_hosts;
      }
    }
    base += StrFormat(", %d non-reference hosts", fast_hosts);
  }
  return base + ")";
}

}  // namespace alpa
