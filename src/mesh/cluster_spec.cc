#include "src/mesh/cluster_spec.h"

#include "src/support/logging.h"
#include "src/support/strings.h"

namespace alpa {

int64_t BytesPerElement(Precision precision) {
  switch (precision) {
    case Precision::kFloat16:
      return 2;
    case Precision::kFloat32:
      return 4;
  }
  ALPA_LOG(FATAL) << "Unknown precision";
  return 0;
}

ClusterSpec ClusterSpec::AwsP3(int num_hosts, int devices_per_host) {
  ALPA_CHECK_GE(num_hosts, 1);
  ALPA_CHECK_GE(devices_per_host, 1);
  ClusterSpec spec;
  spec.num_hosts = num_hosts;
  spec.devices_per_host = devices_per_host;
  return spec;
}

std::string ClusterSpec::ToString() const {
  return StrFormat("Cluster(%d hosts x %d devices, nvlink=%s/s, net=%s/s)", num_hosts,
                   devices_per_host, HumanBytes(intra_host_bandwidth).c_str(),
                   HumanBytes(inter_host_bandwidth).c_str());
}

}  // namespace alpa
