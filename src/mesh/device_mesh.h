// Device meshes and the alpha-beta communication cost model.
//
// A *physical submesh* is a rectangular slice of the cluster
// (num_hosts x devices_per_host). Following 5.2 of the paper, submeshes are
// restricted to (1, 2^p) slices inside one host, or (n, M) slices spanning
// whole hosts. A physical submesh is viewed as a *logical* 2D mesh
// (shape l0 x l1) over which sharding specs place tensor partitions; each
// logical axis carries alpha-beta parameters derived from the interconnect
// the axis maps onto (NVLink within a host, datacenter network across
// hosts).
#ifndef SRC_MESH_DEVICE_MESH_H_
#define SRC_MESH_DEVICE_MESH_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "src/mesh/cluster_spec.h"

namespace alpa {

// Shape of a physical slice of the cluster.
struct SubmeshShape {
  int num_hosts = 1;
  int devices_per_host = 1;

  int num_devices() const { return num_hosts * devices_per_host; }
  bool operator==(const SubmeshShape&) const = default;
  std::string ToString() const;
};

// Where a physical submesh sits inside the cluster.
struct MeshPlacement {
  int host_begin = 0;
  // For single-host (1, 2^p) submeshes: offset of the first device within
  // the host. Multi-host submeshes always use whole hosts (device_begin=0).
  int device_begin = 0;
  SubmeshShape shape;

  bool operator==(const MeshPlacement&) const = default;
  std::string ToString() const;
};

// A logical 2D device mesh with communication cost model.
class DeviceMesh {
 public:
  // Builds a logical mesh of `logical_shape` over the physical placement.
  // logical_shape[0] * logical_shape[1] must equal the submesh device count.
  static DeviceMesh Create(const ClusterSpec& cluster, const MeshPlacement& placement,
                           std::array<int, 2> logical_shape);

  // Convenience: logical shape equals the physical shape, placed at host 0.
  static DeviceMesh CreateSimple(const ClusterSpec& cluster, int num_hosts, int devices_per_host);

  // Enumerates the logical shapes worth trying for a physical submesh:
  // the natural (hosts, devices) view plus power-of-two factorizations for
  // single-host submeshes, and the flattened 1D views.
  static std::vector<std::array<int, 2>> LogicalShapeOptions(const SubmeshShape& physical);

  const ClusterSpec& cluster() const { return *cluster_; }
  const MeshPlacement& placement() const { return placement_; }
  int dim(int axis) const { return shape_[static_cast<size_t>(axis)]; }
  std::array<int, 2> shape() const { return shape_; }
  int num_devices() const { return shape_[0] * shape_[1]; }
  double alpha(int axis) const { return alpha_[static_cast<size_t>(axis)]; }
  double bandwidth(int axis) const { return bandwidth_[static_cast<size_t>(axis)]; }
  double device_memory_bytes() const { return cluster_->device.memory_bytes; }
  bool spans_hosts() const { return placement_.shape.num_hosts > 1; }

  // Global device id at logical coordinate (i, j); devices are numbered
  // host * devices_per_host + local across the cluster.
  int DeviceAt(int i, int j) const;
  // All device ids in logical row-major order.
  std::vector<int> DeviceIds() const;

  // --- Collective cost model (ring algorithms). `bytes` is the size of the
  // *full* (unsharded along this axis) tensor being communicated. ---
  double AllReduceTime(double bytes, int axis) const;
  double AllGatherTime(double bytes, int axis) const;
  double ReduceScatterTime(double bytes, int axis) const;
  double AllToAllTime(double bytes, int axis) const;
  // Collectives spanning both mesh axes (group size l0*l1), realized
  // hierarchically (axis 1 first, then axis 0).
  double AllReduceBothTime(double bytes) const;
  double AllGatherBothTime(double bytes) const;
  double ReduceScatterBothTime(double bytes) const;
  double AllToAllBothTime(double bytes) const;

  std::string ToString() const;

 private:
  DeviceMesh() = default;

  const ClusterSpec* cluster_ = nullptr;
  MeshPlacement placement_;
  std::array<int, 2> shape_ = {1, 1};
  std::array<double, 2> alpha_ = {0.0, 0.0};
  std::array<double, 2> bandwidth_ = {1.0, 1.0};
};

// Point-to-point transfer time between devices of two meshes. Transfers
// between different hosts use the datacenter network; transfers within one
// host use NVLink.
double P2PTime(const ClusterSpec& cluster, double bytes, bool cross_host);

// --- Heterogeneity helpers (mixed-generation clusters). Profiles are
// priced against the cluster's REFERENCE device; these resolve what a
// concrete placement actually delivers. Both are exact no-ops (1.0 /
// reference capacity) on homogeneous clusters. ---

// Worst-case time scale over the hosts `placement` spans: a stage is gated
// on its slowest device, so reference-profiled latencies stretch (or
// shrink, on faster-than-reference hosts) by this factor.
double PlacementTimeScale(const ClusterSpec& cluster, const MeshPlacement& placement,
                          Precision precision);

// Per-device memory capacity of the placement: the minimum over the hosts
// it spans (the tightest device bounds the whole stage).
double PlacementMemoryBytes(const ClusterSpec& cluster, const MeshPlacement& placement);

}  // namespace alpa

#endif  // SRC_MESH_DEVICE_MESH_H_
