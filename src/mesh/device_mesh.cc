#include "src/mesh/device_mesh.h"

#include <algorithm>

#include "src/support/logging.h"
#include "src/support/math_util.h"
#include "src/support/strings.h"

namespace alpa {

std::string SubmeshShape::ToString() const {
  return StrFormat("(%d,%d)", num_hosts, devices_per_host);
}

std::string MeshPlacement::ToString() const {
  return StrFormat("host%d+%d dev%d+%d", host_begin, shape.num_hosts, device_begin,
                   shape.devices_per_host);
}

DeviceMesh DeviceMesh::Create(const ClusterSpec& cluster, const MeshPlacement& placement,
                              std::array<int, 2> logical_shape) {
  ALPA_CHECK_EQ(logical_shape[0] * logical_shape[1], placement.shape.num_devices());
  ALPA_CHECK_LE(placement.host_begin + placement.shape.num_hosts, cluster.num_hosts);
  ALPA_CHECK_LE(placement.device_begin + placement.shape.devices_per_host,
                cluster.devices_per_host);
  if (placement.shape.num_hosts > 1) {
    ALPA_CHECK_EQ(placement.device_begin, 0);
  }

  DeviceMesh mesh;
  mesh.cluster_ = &cluster;
  mesh.placement_ = placement;
  mesh.shape_ = logical_shape;

  const bool multi_host = placement.shape.num_hosts > 1;
  if (!multi_host) {
    // Everything is inside one host: both axes ride on NVLink.
    for (int axis = 0; axis < 2; ++axis) {
      mesh.alpha_[static_cast<size_t>(axis)] = cluster.intra_host_alpha;
      mesh.bandwidth_[static_cast<size_t>(axis)] = cluster.intra_host_bandwidth;
    }
    return mesh;
  }

  // Multi-host submesh. The logical mesh must align with the physical one:
  // either the natural (hosts, devices) view, or a flattened 1D view.
  const int h = placement.shape.num_hosts;
  const int d = placement.shape.devices_per_host;
  if (logical_shape[0] == h && logical_shape[1] == d) {
    // Axis 0 crosses hosts. All `d` columns communicate concurrently, so
    // each ring gets a 1/d share of the host NIC.
    mesh.alpha_[0] = cluster.inter_host_alpha;
    mesh.bandwidth_[0] = cluster.inter_host_bandwidth / d;
    mesh.alpha_[1] = cluster.intra_host_alpha;
    mesh.bandwidth_[1] = cluster.intra_host_bandwidth;
  } else if (logical_shape[0] == h * d && logical_shape[1] == 1) {
    // One ring across all devices; it crosses each NIC a constant number of
    // times, so it sees the full NIC bandwidth.
    mesh.alpha_[0] = cluster.inter_host_alpha;
    mesh.bandwidth_[0] = cluster.inter_host_bandwidth;
    mesh.alpha_[1] = cluster.intra_host_alpha;
    mesh.bandwidth_[1] = cluster.intra_host_bandwidth;
  } else if (logical_shape[0] == 1 && logical_shape[1] == h * d) {
    mesh.alpha_[0] = cluster.intra_host_alpha;
    mesh.bandwidth_[0] = cluster.intra_host_bandwidth;
    mesh.alpha_[1] = cluster.inter_host_alpha;
    mesh.bandwidth_[1] = cluster.inter_host_bandwidth;
  } else {
    ALPA_LOG(FATAL) << "Unsupported logical shape (" << logical_shape[0] << ","
                    << logical_shape[1] << ") for physical submesh "
                    << placement.shape.ToString();
  }
  return mesh;
}

DeviceMesh DeviceMesh::CreateSimple(const ClusterSpec& cluster, int num_hosts,
                                    int devices_per_host) {
  MeshPlacement placement;
  placement.shape = SubmeshShape{num_hosts, devices_per_host};
  return Create(cluster, placement, {num_hosts, devices_per_host});
}

std::vector<std::array<int, 2>> DeviceMesh::LogicalShapeOptions(const SubmeshShape& physical) {
  std::vector<std::array<int, 2>> options;
  const int n = physical.num_devices();
  if (physical.num_hosts == 1) {
    // All power-of-two factorizations (device counts per host are powers of
    // two on the clusters we model, 5.2).
    for (int l0 = 1; l0 <= n; ++l0) {
      if (n % l0 == 0) {
        options.push_back({l0, n / l0});
      }
    }
  } else {
    options.push_back({physical.num_hosts, physical.devices_per_host});
    options.push_back({n, 1});
    options.push_back({1, n});
  }
  return options;
}

int DeviceMesh::DeviceAt(int i, int j) const {
  ALPA_CHECK_GE(i, 0);
  ALPA_CHECK_LT(i, shape_[0]);
  ALPA_CHECK_GE(j, 0);
  ALPA_CHECK_LT(j, shape_[1]);
  const int flat = i * shape_[1] + j;
  const int dph = placement_.shape.devices_per_host;
  const int host = placement_.host_begin + flat / dph;
  const int local = placement_.device_begin + flat % dph;
  return host * cluster_->devices_per_host + local;
}

std::vector<int> DeviceMesh::DeviceIds() const {
  std::vector<int> ids;
  ids.reserve(static_cast<size_t>(num_devices()));
  for (int i = 0; i < shape_[0]; ++i) {
    for (int j = 0; j < shape_[1]; ++j) {
      ids.push_back(DeviceAt(i, j));
    }
  }
  return ids;
}

namespace {

double RingAllReduce(double bytes, int k, double alpha, double bw) {
  if (k <= 1) {
    return 0.0;
  }
  return 2.0 * (k - 1) / k * bytes / bw + 2.0 * (k - 1) * alpha;
}

double RingAllGather(double bytes, int k, double alpha, double bw) {
  if (k <= 1) {
    return 0.0;
  }
  return static_cast<double>(k - 1) / k * bytes / bw + (k - 1) * alpha;
}

double RingAllToAll(double bytes, int k, double alpha, double bw) {
  if (k <= 1) {
    return 0.0;
  }
  // Each device exchanges a 1/k tile with every peer.
  return static_cast<double>(k - 1) / k * bytes / bw + (k - 1) * alpha;
}

}  // namespace

double DeviceMesh::AllReduceTime(double bytes, int axis) const {
  return RingAllReduce(bytes, dim(axis), alpha(axis), bandwidth(axis));
}

double DeviceMesh::AllGatherTime(double bytes, int axis) const {
  return RingAllGather(bytes, dim(axis), alpha(axis), bandwidth(axis));
}

double DeviceMesh::ReduceScatterTime(double bytes, int axis) const {
  return RingAllGather(bytes, dim(axis), alpha(axis), bandwidth(axis));
}

double DeviceMesh::AllToAllTime(double bytes, int axis) const {
  return RingAllToAll(bytes, dim(axis), alpha(axis), bandwidth(axis));
}

double DeviceMesh::AllReduceBothTime(double bytes) const {
  // Hierarchical: reduce-scatter along axis 1, all-reduce the 1/l1 shard
  // along axis 0, all-gather along axis 1.
  if (dim(0) == 1) {
    return AllReduceTime(bytes, 1);
  }
  if (dim(1) == 1) {
    return AllReduceTime(bytes, 0);
  }
  return ReduceScatterTime(bytes, 1) + AllReduceTime(bytes / dim(1), 0) +
         AllGatherTime(bytes, 1);
}

double DeviceMesh::AllGatherBothTime(double bytes) const {
  if (dim(0) == 1) {
    return AllGatherTime(bytes, 1);
  }
  if (dim(1) == 1) {
    return AllGatherTime(bytes, 0);
  }
  return AllGatherTime(bytes / dim(0), 1) + AllGatherTime(bytes, 0);
}

double DeviceMesh::ReduceScatterBothTime(double bytes) const {
  if (dim(0) == 1) {
    return ReduceScatterTime(bytes, 1);
  }
  if (dim(1) == 1) {
    return ReduceScatterTime(bytes, 0);
  }
  return ReduceScatterTime(bytes, 1) + ReduceScatterTime(bytes / dim(1), 0);
}

double DeviceMesh::AllToAllBothTime(double bytes) const {
  if (dim(0) == 1) {
    return AllToAllTime(bytes, 1);
  }
  if (dim(1) == 1) {
    return AllToAllTime(bytes, 0);
  }
  return AllToAllTime(bytes, 1) + AllToAllTime(bytes / dim(1), 0);
}

std::string DeviceMesh::ToString() const {
  return StrFormat("Mesh[%dx%d phys=%s bw=(%s,%s)/s]", shape_[0], shape_[1],
                   placement_.shape.ToString().c_str(), HumanBytes(bandwidth_[0]).c_str(),
                   HumanBytes(bandwidth_[1]).c_str());
}

double P2PTime(const ClusterSpec& cluster, double bytes, bool cross_host) {
  if (cross_host) {
    return cluster.inter_host_alpha + bytes / cluster.inter_host_bandwidth;
  }
  return cluster.intra_host_alpha + bytes / cluster.intra_host_bandwidth;
}

double PlacementTimeScale(const ClusterSpec& cluster, const MeshPlacement& placement,
                          Precision precision) {
  double scale = 0.0;
  for (int h = 0; h < placement.shape.num_hosts; ++h) {
    scale = std::max(scale, cluster.HostTimeScale(placement.host_begin + h, precision));
  }
  return scale;
}

double PlacementMemoryBytes(const ClusterSpec& cluster, const MeshPlacement& placement) {
  double memory = cluster.host_device(placement.host_begin).memory_bytes;
  for (int h = 1; h < placement.shape.num_hosts; ++h) {
    memory =
        std::min(memory, cluster.host_device(placement.host_begin + h).memory_bytes);
  }
  return memory;
}

}  // namespace alpa
