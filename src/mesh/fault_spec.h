// Fault model for the simulated cluster.
//
// The paper's runtime (6) assumes a static, healthy cluster for the whole
// run and lists dynamic cluster changes as out of scope. Production MPMD
// pipeline runtimes do not get that luxury: devices fail permanently,
// individual workers straggle, links degrade, and cross-mesh sends are lost
// and retried. FaultSpec describes all four as deterministic, simulation-
// time facts threaded from ClusterSpec through PipelineSimInput, so a
// single compiled plan can be replayed against any fault scenario. An
// empty (default) FaultSpec is a hard no-op: the simulator's arithmetic is
// bit-identical to the fault-free path.
#ifndef SRC_MESH_FAULT_SPEC_H_
#define SRC_MESH_FAULT_SPEC_H_

#include <cstdint>
#include <string>
#include <vector>

namespace alpa {

// A device that stops executing permanently at `time` (simulated seconds
// from iteration start). The stage holding it can finish nothing at or
// beyond that instant.
struct DeviceFailure {
  int device = 0;  // Global device id (host * devices_per_host + local).
  double time = 0.0;
};

// A device whose compute runs `slowdown` times slower than profiled
// (thermal throttling, a noisy neighbour, a failing HBM bank). The whole
// stage is gated on its slowest device, so the stage inherits the max.
struct Straggler {
  int device = 0;
  double slowdown = 1.0;  // >= 1; 1.0 is a no-op.
};

// A host-to-host link running at a fraction of its nominal bandwidth.
// -1 on either side is a wildcard matching any host.
struct LinkDegradation {
  int src_host = -1;
  int dst_host = -1;
  double bandwidth_factor = 1.0;  // In (0, 1]; 1.0 is a no-op.
};

// Retry policy for transient cross-mesh send failures: each failed attempt
// costs `timeout` (time to declare the attempt lost) plus an exponentially
// growing backoff wait before the next attempt.
struct RetryPolicy {
  int max_attempts = 4;             // Initial try + up to 3 retries.
  double timeout = 5e-3;            // Seconds until a lost send is declared.
  double backoff = 1e-3;            // Wait before the first retry.
  double backoff_multiplier = 2.0;  // Growth per subsequent retry.

  // Total delay charged when the first `failures` attempts are lost:
  // failures * timeout + backoff * (m^0 + m^1 + ... + m^(failures-1)).
  double PenaltySeconds(int failures) const;
};

struct FaultSpec {
  std::vector<DeviceFailure> device_failures;
  std::vector<Straggler> stragglers;
  std::vector<LinkDegradation> link_degradations;
  // Probability that one cross-mesh send attempt is lost. Sampled
  // deterministically per (boundary, microbatch, direction, attempt) from
  // `seed`, so a given spec always replays the same scenario.
  double transient_send_failure_rate = 0.0;
  RetryPolicy retry;
  // Heartbeat interval: a permanent device loss is detected cluster-wide
  // this long after it happens (the time-to-detection the simulator
  // reports).
  double detection_timeout = 1.0;
  uint64_t seed = 0x5eedULL;

  // True when every field is a no-op: no failures, no stragglers, no
  // degradations, zero loss rate. The simulator's fast-path guarantee
  // (bit-identical results) is stated in terms of this predicate.
  bool empty() const;

  // Earliest permanent-failure time over `devices`; +infinity when none of
  // them fail. Returns the failing device via `failed_device` (unchanged
  // when the result is infinite).
  double EarliestFailure(const std::vector<int>& devices, int* failed_device) const;

  // Max compute slowdown over `devices` (>= 1.0).
  double ComputeSlowdown(const std::vector<int>& devices) const;

  // Min bandwidth factor matching the (src_host, dst_host) link, wildcards
  // included; 1.0 when no entry matches.
  double LinkBandwidthFactor(int src_host, int dst_host) const;

  std::string ToString() const;
};

}  // namespace alpa

#endif  // SRC_MESH_FAULT_SPEC_H_
