// Submesh shape enumeration (5.2) and the constructive cluster covering from
// Theorem 1 (Appendix A): any multiset of submesh shapes, each either
// (1, 2^p) or (n, M), whose sizes sum to N*M, can be placed to exactly tile
// an (N, M = 2^m) cluster.
#ifndef SRC_MESH_SUBMESH_H_
#define SRC_MESH_SUBMESH_H_

#include <optional>
#include <vector>

#include "src/mesh/cluster_spec.h"
#include "src/mesh/device_mesh.h"

namespace alpa {

// Candidate submesh shapes for the stage-slicing DP: one-dimensional
// (1, 2^p) slices of a host, and full-width (n, M) slices of n hosts.
std::vector<SubmeshShape> EnumerateSubmeshShapes(const ClusterSpec& cluster);

// Places `shapes` (in order) so that they exactly tile the cluster.
// Returns std::nullopt if the shapes are not a valid tiling input (sizes do
// not sum to the cluster size, a 1D shape is not a power of two, or a
// multi-host shape does not span full hosts). The i-th placement in the
// result corresponds to shapes[i].
std::optional<std::vector<MeshPlacement>> CoverCluster(const ClusterSpec& cluster,
                                                       const std::vector<SubmeshShape>& shapes);

}  // namespace alpa

#endif  // SRC_MESH_SUBMESH_H_
