#include "src/runtime/simulator.h"

#include <algorithm>

#include "src/support/logging.h"
#include "src/support/strings.h"

namespace alpa {

PipelineSimResult SimulatePipeline(const PipelineSimInput& input) {
  const int num_stages = static_cast<int>(input.stages.size());
  const int num_microbatches = input.num_microbatches;
  ALPA_CHECK_GT(num_stages, 0);
  const auto schedule =
      BuildPipelineSchedule(input.schedule, num_stages, num_microbatches);

  PipelineSimResult result;
  result.stage_busy_seconds.assign(static_cast<size_t>(num_stages), 0.0);
  result.stage_peak_bytes.assign(static_cast<size_t>(num_stages), 0.0);

  // Completion times, indexed [stage][microbatch].
  const auto idx = [&](int s, int i) {
    return static_cast<size_t>(s) * static_cast<size_t>(num_microbatches) +
           static_cast<size_t>(i);
  };
  std::vector<double> fwd_done(static_cast<size_t>(num_stages * num_microbatches), -1.0);
  std::vector<double> bwd_done(static_cast<size_t>(num_stages * num_microbatches), -1.0);
  std::vector<size_t> pc(static_cast<size_t>(num_stages), 0);  // Program counters.
  std::vector<double> free_at(static_cast<size_t>(num_stages), 0.0);
  std::vector<double> memory(static_cast<size_t>(num_stages));
  std::vector<double> update_done(static_cast<size_t>(num_stages), -1.0);
  for (int s = 0; s < num_stages; ++s) {
    memory[static_cast<size_t>(s)] =
        input.stages[static_cast<size_t>(s)].weight_bytes +
        input.stages[static_cast<size_t>(s)].work_bytes;
    result.stage_peak_bytes[static_cast<size_t>(s)] = memory[static_cast<size_t>(s)];
  }

  using Kind = PipelineInstruction::Kind;
  bool progress = true;
  while (progress) {
    progress = false;
    for (int s = 0; s < num_stages; ++s) {
      auto& program = schedule[static_cast<size_t>(s)];
      while (pc[static_cast<size_t>(s)] < program.size()) {
        const PipelineInstruction& inst = program[pc[static_cast<size_t>(s)]];
        const StageExecProfile& profile = input.stages[static_cast<size_t>(s)];
        double ready = free_at[static_cast<size_t>(s)];
        double duration = 0.0;
        bool blocked = false;
        switch (inst.kind) {
          case Kind::kForward: {
            if (s > 0) {
              const double upstream = fwd_done[idx(s - 1, inst.microbatch)];
              if (upstream < 0.0) {
                blocked = true;
                break;
              }
              ready = std::max(
                  ready, upstream + input.stages[static_cast<size_t>(s - 1)].t_send_next);
            }
            duration = profile.t_forward;
            break;
          }
          case Kind::kBackward: {
            if (s + 1 < num_stages) {
              const double downstream = bwd_done[idx(s + 1, inst.microbatch)];
              if (downstream < 0.0) {
                blocked = true;
                break;
              }
              ready = std::max(ready, downstream + profile.t_send_next);
            } else {
              // The last stage starts backward right after its forward.
              const double own = fwd_done[idx(s, inst.microbatch)];
              if (own < 0.0) {
                blocked = true;
                break;
              }
              ready = std::max(ready, own);
            }
            duration = profile.t_backward;
            break;
          }
          case Kind::kUpdate: {
            duration = profile.t_update;
            break;
          }
        }
        if (blocked) {
          break;
        }
        const double finish = ready + duration;
        free_at[static_cast<size_t>(s)] = finish;
        result.stage_busy_seconds[static_cast<size_t>(s)] += duration;
        if (input.record_timeline) {
          result.timeline.push_back(StageEvent{s, inst.kind, inst.microbatch, ready, finish});
        }
        switch (inst.kind) {
          case Kind::kForward:
            fwd_done[idx(s, inst.microbatch)] = finish;
            memory[static_cast<size_t>(s)] += profile.act_bytes_per_microbatch;
            result.stage_peak_bytes[static_cast<size_t>(s)] = std::max(
                result.stage_peak_bytes[static_cast<size_t>(s)], memory[static_cast<size_t>(s)]);
            break;
          case Kind::kBackward:
            bwd_done[idx(s, inst.microbatch)] = finish;
            memory[static_cast<size_t>(s)] -= profile.act_bytes_per_microbatch;
            break;
          case Kind::kUpdate:
            update_done[static_cast<size_t>(s)] = finish;
            break;
        }
        pc[static_cast<size_t>(s)]++;
        progress = true;
      }
    }
  }
  for (int s = 0; s < num_stages; ++s) {
    ALPA_CHECK_EQ(pc[static_cast<size_t>(s)], schedule[static_cast<size_t>(s)].size())
        << "Pipeline deadlocked at stage " << s;
    result.latency = std::max(result.latency, update_done[static_cast<size_t>(s)]);
    if (result.stage_peak_bytes[static_cast<size_t>(s)] > input.device_memory_bytes &&
        result.first_oom_stage < 0) {
      result.oom = true;
      result.first_oom_stage = s;
    }
  }
  double max_busy = 0.0;
  for (double busy : result.stage_busy_seconds) {
    max_busy = std::max(max_busy, busy);
  }
  result.bubble_fraction = result.latency > 0.0 ? 1.0 - max_busy / result.latency : 0.0;
  return result;
}

std::string PipelineSimResult::ToString() const {
  std::string out = StrFormat("latency=%s bubble=%.1f%%%s", HumanSeconds(latency).c_str(),
                              bubble_fraction * 100.0, oom ? " OOM" : "");
  return out;
}

}  // namespace alpa
