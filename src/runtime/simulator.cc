#include "src/runtime/simulator.h"

#include <algorithm>
#include <vector>

#include "src/support/logging.h"
#include "src/support/strings.h"
#include "src/support/trace.h"

namespace alpa {

PipelineSimResult SimulatePipeline(const PipelineSimInput& input) {
  const int num_stages = static_cast<int>(input.stages.size());
  const int num_microbatches = input.num_microbatches;
  ALPA_CHECK_GT(num_stages, 0);
  const auto schedule =
      BuildPipelineSchedule(input.schedule, num_stages, num_microbatches);

  PipelineSimResult result;
  result.stage_busy_seconds.assign(static_cast<size_t>(num_stages), 0.0);
  result.stage_peak_bytes.assign(static_cast<size_t>(num_stages), 0.0);

  // Completion times, indexed [stage][microbatch].
  const auto idx = [&](int s, int i) {
    return static_cast<size_t>(s) * static_cast<size_t>(num_microbatches) +
           static_cast<size_t>(i);
  };
  std::vector<double> fwd_done(static_cast<size_t>(num_stages * num_microbatches), -1.0);
  std::vector<double> bwd_done(static_cast<size_t>(num_stages * num_microbatches), -1.0);
  std::vector<size_t> pc(static_cast<size_t>(num_stages), 0);  // Program counters.
  std::vector<double> free_at(static_cast<size_t>(num_stages), 0.0);
  std::vector<double> memory(static_cast<size_t>(num_stages));
  std::vector<double> update_done(static_cast<size_t>(num_stages), -1.0);
  for (int s = 0; s < num_stages; ++s) {
    memory[static_cast<size_t>(s)] =
        input.stages[static_cast<size_t>(s)].weight_bytes +
        input.stages[static_cast<size_t>(s)].work_bytes;
    result.stage_peak_bytes[static_cast<size_t>(s)] = memory[static_cast<size_t>(s)];
  }

  using Kind = PipelineInstruction::Kind;
  bool progress = true;
  while (progress) {
    progress = false;
    for (int s = 0; s < num_stages; ++s) {
      auto& program = schedule[static_cast<size_t>(s)];
      while (pc[static_cast<size_t>(s)] < program.size()) {
        const PipelineInstruction& inst = program[pc[static_cast<size_t>(s)]];
        const StageExecProfile& profile = input.stages[static_cast<size_t>(s)];
        double ready = free_at[static_cast<size_t>(s)];
        double duration = 0.0;
        bool blocked = false;
        switch (inst.kind) {
          case Kind::kForward: {
            if (s > 0) {
              const double upstream = fwd_done[idx(s - 1, inst.microbatch)];
              if (upstream < 0.0) {
                blocked = true;
                break;
              }
              ready = std::max(
                  ready, upstream + input.stages[static_cast<size_t>(s - 1)].t_send_next);
            }
            duration = profile.t_forward;
            break;
          }
          case Kind::kBackward: {
            if (s + 1 < num_stages) {
              const double downstream = bwd_done[idx(s + 1, inst.microbatch)];
              if (downstream < 0.0) {
                blocked = true;
                break;
              }
              ready = std::max(ready, downstream + profile.t_send_next);
            } else {
              // The last stage starts backward right after its forward.
              const double own = fwd_done[idx(s, inst.microbatch)];
              if (own < 0.0) {
                blocked = true;
                break;
              }
              ready = std::max(ready, own);
            }
            duration = profile.t_backward;
            break;
          }
          case Kind::kUpdate: {
            duration = profile.t_update;
            break;
          }
        }
        if (blocked) {
          break;
        }
        const double finish = ready + duration;
        free_at[static_cast<size_t>(s)] = finish;
        result.stage_busy_seconds[static_cast<size_t>(s)] += duration;
        if (input.record_timeline) {
          result.timeline.push_back(StageEvent{s, inst.kind, inst.microbatch, ready, finish});
        }
        switch (inst.kind) {
          case Kind::kForward:
            fwd_done[idx(s, inst.microbatch)] = finish;
            memory[static_cast<size_t>(s)] += profile.act_bytes_per_microbatch;
            result.stage_peak_bytes[static_cast<size_t>(s)] = std::max(
                result.stage_peak_bytes[static_cast<size_t>(s)], memory[static_cast<size_t>(s)]);
            break;
          case Kind::kBackward:
            bwd_done[idx(s, inst.microbatch)] = finish;
            memory[static_cast<size_t>(s)] -= profile.act_bytes_per_microbatch;
            break;
          case Kind::kUpdate:
            update_done[static_cast<size_t>(s)] = finish;
            break;
        }
        pc[static_cast<size_t>(s)]++;
        progress = true;
      }
    }
  }
  for (int s = 0; s < num_stages; ++s) {
    ALPA_CHECK_EQ(pc[static_cast<size_t>(s)], schedule[static_cast<size_t>(s)].size())
        << "Pipeline deadlocked at stage " << s;
    result.latency = std::max(result.latency, update_done[static_cast<size_t>(s)]);
    if (result.stage_peak_bytes[static_cast<size_t>(s)] > input.device_memory_bytes &&
        result.first_oom_stage < 0) {
      result.oom = true;
      result.first_oom_stage = s;
    }
  }
  double max_busy = 0.0;
  for (double busy : result.stage_busy_seconds) {
    max_busy = std::max(max_busy, busy);
  }
  result.bubble_fraction = result.latency > 0.0 ? 1.0 - max_busy / result.latency : 0.0;
  return result;
}

void ExportTimelineToTrace(const PipelineSimInput& input, const PipelineSimResult& result,
                           const char* label) {
  if (!Trace::enabled() || result.timeline.empty()) {
    return;
  }
  const int num_stages = static_cast<int>(input.stages.size());
  const double base = Trace::ReserveVirtualWindow(result.latency);
  Trace::EmitVirtual("iteration", label, "sim", base, base + result.latency,
                     StrFormat("\"num_microbatches\":%d,\"bubble_fraction\":%.4f,\"oom\":%s",
                               input.num_microbatches, result.bubble_fraction,
                               result.oom ? "true" : "false"));

  std::vector<std::vector<StageEvent>> by_stage(static_cast<size_t>(num_stages));
  for (const StageEvent& e : result.timeline) {
    by_stage[static_cast<size_t>(e.stage)].push_back(e);
  }
  using Kind = PipelineInstruction::Kind;
  constexpr double kGapEps = 1e-9;
  for (int s = 0; s < num_stages; ++s) {
    std::vector<StageEvent>& events = by_stage[static_cast<size_t>(s)];
    std::sort(events.begin(), events.end(),
              [](const StageEvent& a, const StageEvent& b) { return a.start < b.start; });
    const std::string lane = StrFormat("mesh %02d", s);
    double cursor = 0.0;
    for (const StageEvent& e : events) {
      if (e.start - cursor > kGapEps) {
        Trace::EmitVirtual(lane, "bubble", "bubble", base + cursor, base + e.start);
      }
      cursor = std::max(cursor, e.end);
      switch (e.kind) {
        case Kind::kForward:
          Trace::EmitVirtual(lane, StrFormat("forward mb%d", e.microbatch), "sim",
                             base + e.start, base + e.end,
                             StrFormat("\"microbatch\":%d", e.microbatch));
          // The activation transfer to the next stage occupies the boundary
          // link right after the producing forward finishes.
          if (s + 1 < num_stages &&
              input.stages[static_cast<size_t>(s)].t_send_next > 0.0) {
            Trace::EmitVirtual(StrFormat("mesh %02d->%02d transfer", s, s + 1),
                               StrFormat("send_act mb%d", e.microbatch), "transfer",
                               base + e.end,
                               base + e.end + input.stages[static_cast<size_t>(s)].t_send_next,
                               StrFormat("\"microbatch\":%d", e.microbatch));
          }
          break;
        case Kind::kBackward:
          Trace::EmitVirtual(lane, StrFormat("backward mb%d", e.microbatch), "sim",
                             base + e.start, base + e.end,
                             StrFormat("\"microbatch\":%d", e.microbatch));
          // Gradients flow back over the boundary below at the same cost
          // the simulator charges (the downstream stage's t_send_next).
          if (s > 0 && input.stages[static_cast<size_t>(s - 1)].t_send_next > 0.0) {
            Trace::EmitVirtual(
                StrFormat("mesh %02d->%02d transfer", s - 1, s),
                StrFormat("send_grad mb%d", e.microbatch), "transfer", base + e.end,
                base + e.end + input.stages[static_cast<size_t>(s - 1)].t_send_next,
                StrFormat("\"microbatch\":%d", e.microbatch));
          }
          break;
        case Kind::kUpdate:
          Trace::EmitVirtual(lane, "apply_grad", "sim", base + e.start, base + e.end);
          break;
      }
    }
    if (result.latency - cursor > kGapEps) {
      Trace::EmitVirtual(lane, "bubble", "bubble", base + cursor, base + result.latency);
    }
  }
}

std::string PipelineSimResult::ToString() const {
  std::string out = StrFormat("latency=%s bubble=%.1f%%%s", HumanSeconds(latency).c_str(),
                              bubble_fraction * 100.0, oom ? " OOM" : "");
  return out;
}

}  // namespace alpa
