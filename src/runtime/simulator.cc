#include "src/runtime/simulator.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "src/support/hashing.h"
#include "src/support/logging.h"
#include "src/support/rng.h"
#include "src/support/strings.h"
#include "src/support/trace.h"

namespace alpa {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Outcome of one cross-mesh transfer under the transient-loss model: the
// retry/backoff delay charged on top of the base transfer time, or an
// exhausted retry budget. Deterministic in (spec.seed, boundary,
// microbatch, direction) so a blocked instruction re-evaluates to the same
// penalty on every scheduling pass.
struct TransferOutcome {
  int failures = 0;      // Lost attempts before the success (or the abort).
  double penalty = 0.0;  // Seconds of timeout + backoff charged.
  bool exhausted = false;
};

TransferOutcome SampleTransfer(const FaultSpec& spec, int boundary, int microbatch,
                               bool forward) {
  TransferOutcome outcome;
  if (spec.transient_send_failure_rate <= 0.0) {
    return outcome;
  }
  Rng rng(spec.seed ^ Fnv1a64()
                          .I32(boundary)
                          .I32(microbatch)
                          .Bool(forward)
                          .hash());
  const int max_attempts = std::max(spec.retry.max_attempts, 1);
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    if (rng.NextDouble() >= spec.transient_send_failure_rate) {
      outcome.penalty = spec.retry.PenaltySeconds(outcome.failures);
      return outcome;
    }
    ++outcome.failures;
  }
  outcome.penalty = spec.retry.PenaltySeconds(outcome.failures);
  outcome.exhausted = true;
  return outcome;
}

}  // namespace

PipelineSimResult SimulatePipeline(const PipelineSimInput& input) {
  const int num_stages = static_cast<int>(input.stages.size());
  const int num_microbatches = input.num_microbatches;
  ALPA_CHECK_GT(num_stages, 0);
  const auto schedule =
      BuildPipelineSchedule(input.schedule, num_stages, num_microbatches);
  const FaultSpec& faults = input.faults;
  const bool faulty = !faults.empty();

  PipelineSimResult result;
  result.stage_busy_seconds.assign(static_cast<size_t>(num_stages), 0.0);
  result.stage_peak_bytes.assign(static_cast<size_t>(num_stages), 0.0);

  // Resolve the per-device fault model to per-stage facts once. With an
  // empty spec every multiplier is exactly 1.0 and every failure time is
  // +inf, so the arithmetic below is bit-identical to a fault-free run.
  std::vector<double> slowdown(static_cast<size_t>(num_stages), 1.0);
  std::vector<double> fail_time(static_cast<size_t>(num_stages), kInf);
  std::vector<int> fail_device(static_cast<size_t>(num_stages), -1);
  // send_stretch[s]: multiplier on the s -> s+1 boundary transfer.
  std::vector<double> send_stretch(static_cast<size_t>(num_stages), 1.0);
  if (faulty) {
    std::vector<int> host_of(static_cast<size_t>(num_stages), 0);
    for (int s = 0; s < num_stages; ++s) {
      std::vector<int> devices;
      if (static_cast<size_t>(s) < input.stage_devices.size() &&
          !input.stage_devices[static_cast<size_t>(s)].empty()) {
        devices = input.stage_devices[static_cast<size_t>(s)];
      } else {
        devices = {s};
      }
      slowdown[static_cast<size_t>(s)] = faults.ComputeSlowdown(devices);
      fail_time[static_cast<size_t>(s)] =
          faults.EarliestFailure(devices, &fail_device[static_cast<size_t>(s)]);
      host_of[static_cast<size_t>(s)] = devices.front() / std::max(input.devices_per_host, 1);
    }
    for (int s = 0; s + 1 < num_stages; ++s) {
      const double factor = faults.LinkBandwidthFactor(host_of[static_cast<size_t>(s)],
                                                       host_of[static_cast<size_t>(s + 1)]);
      send_stretch[static_cast<size_t>(s)] = 1.0 / factor;
    }
  }

  // Completion times, indexed [stage][microbatch].
  const auto idx = [&](int s, int i) {
    return static_cast<size_t>(s) * static_cast<size_t>(num_microbatches) +
           static_cast<size_t>(i);
  };
  std::vector<double> fwd_done(static_cast<size_t>(num_stages * num_microbatches), -1.0);
  std::vector<double> bwd_done(static_cast<size_t>(num_stages * num_microbatches), -1.0);
  std::vector<size_t> pc(static_cast<size_t>(num_stages), 0);  // Program counters.
  std::vector<double> free_at(static_cast<size_t>(num_stages), 0.0);
  std::vector<double> memory(static_cast<size_t>(num_stages));
  std::vector<double> update_done(static_cast<size_t>(num_stages), -1.0);
  std::vector<bool> dead(static_cast<size_t>(num_stages), false);
  for (int s = 0; s < num_stages; ++s) {
    memory[static_cast<size_t>(s)] =
        input.stages[static_cast<size_t>(s)].weight_bytes +
        input.stages[static_cast<size_t>(s)].work_bytes;
    result.stage_peak_bytes[static_cast<size_t>(s)] = memory[static_cast<size_t>(s)];
  }

  // First unrecoverable incident (earliest in simulated time wins).
  const auto record_failure = [&](int stage, int device, double when) {
    if (!result.failed || when < result.failure_time) {
      result.failed = true;
      result.failed_stage = stage;
      result.failed_device = device;
      result.failure_time = when;
    }
  };
  // Retry/backoff intervals for one transfer arriving over `boundary`,
  // starting when the upstream payload was ready.
  const auto record_retries = [&](int boundary, int dst_stage, int microbatch,
                                  const TransferOutcome& outcome, double start) {
    result.send_retries += outcome.failures;
    result.retry_seconds += outcome.penalty;
    if (!input.record_timeline || outcome.failures == 0) {
      return;
    }
    double cursor = start;
    double wait = faults.retry.backoff;
    for (int i = 0; i < outcome.failures; ++i) {
      result.fault_timeline.push_back(FaultEvent{FaultEvent::Kind::kRetry, dst_stage, boundary,
                                                 microbatch, -1, cursor,
                                                 cursor + faults.retry.timeout});
      cursor += faults.retry.timeout;
      result.fault_timeline.push_back(
          FaultEvent{FaultEvent::Kind::kBackoff, dst_stage, boundary, microbatch, -1, cursor,
                     cursor + wait});
      cursor += wait;
      wait *= faults.retry.backoff_multiplier;
    }
  };

  using Kind = PipelineInstruction::Kind;
  bool progress = true;
  while (progress) {
    progress = false;
    for (int s = 0; s < num_stages; ++s) {
      if (dead[static_cast<size_t>(s)]) {
        continue;
      }
      auto& program = schedule[static_cast<size_t>(s)];
      while (pc[static_cast<size_t>(s)] < program.size()) {
        const PipelineInstruction& inst = program[pc[static_cast<size_t>(s)]];
        const StageExecProfile& profile = input.stages[static_cast<size_t>(s)];
        double ready = free_at[static_cast<size_t>(s)];
        double duration = 0.0;
        bool blocked = false;
        TransferOutcome transfer;
        int transfer_boundary = -1;
        double transfer_start = 0.0;
        switch (inst.kind) {
          case Kind::kForward: {
            if (s > 0) {
              const double upstream = fwd_done[idx(s - 1, inst.microbatch)];
              if (upstream < 0.0) {
                blocked = true;
                break;
              }
              double transfer_time =
                  input.stages[static_cast<size_t>(s - 1)].t_send_next *
                  send_stretch[static_cast<size_t>(s - 1)];
              if (faulty) {
                transfer = SampleTransfer(faults, s - 1, inst.microbatch, /*forward=*/true);
                transfer_boundary = s - 1;
                transfer_start = upstream;
                transfer_time += transfer.penalty;
              }
              ready = std::max(ready, upstream + transfer_time);
            }
            duration = profile.t_forward * slowdown[static_cast<size_t>(s)];
            break;
          }
          case Kind::kBackward: {
            if (s + 1 < num_stages) {
              const double downstream = bwd_done[idx(s + 1, inst.microbatch)];
              if (downstream < 0.0) {
                blocked = true;
                break;
              }
              double transfer_time =
                  profile.t_send_next * send_stretch[static_cast<size_t>(s)];
              if (faulty) {
                transfer = SampleTransfer(faults, s, inst.microbatch, /*forward=*/false);
                transfer_boundary = s;
                transfer_start = downstream;
                transfer_time += transfer.penalty;
              }
              ready = std::max(ready, downstream + transfer_time);
            } else {
              // The last stage starts backward right after its forward.
              const double own = fwd_done[idx(s, inst.microbatch)];
              if (own < 0.0) {
                blocked = true;
                break;
              }
              ready = std::max(ready, own);
            }
            duration = profile.t_backward * slowdown[static_cast<size_t>(s)];
            break;
          }
          case Kind::kUpdate: {
            duration = profile.t_update * slowdown[static_cast<size_t>(s)];
            break;
          }
        }
        if (blocked) {
          break;
        }
        if (transfer_boundary >= 0) {
          record_retries(transfer_boundary, s, inst.microbatch, transfer, transfer_start);
          if (transfer.exhausted) {
            // The payload never arrives: the receiving stage is stuck.
            const double when = transfer_start + transfer.penalty;
            dead[static_cast<size_t>(s)] = true;
            record_failure(s, -1, when);
            free_at[static_cast<size_t>(s)] = std::max(free_at[static_cast<size_t>(s)], when);
            if (input.record_timeline) {
              result.fault_timeline.push_back(
                  FaultEvent{FaultEvent::Kind::kTransferAbort, s, transfer_boundary,
                             inst.microbatch, -1, transfer_start, when});
            }
            break;
          }
        }
        const double fail = fail_time[static_cast<size_t>(s)];
        if (ready + duration > fail) {
          // A device of this stage dies before the instruction completes
          // (possibly while the stage sits idle). Work after max(ready,
          // fail) never happens; partial work up to the failure is charged
          // as busy (and wasted) time.
          const double died = std::min(std::max(ready, fail), ready + duration);
          dead[static_cast<size_t>(s)] = true;
          record_failure(s, fail_device[static_cast<size_t>(s)], fail);
          if (died > ready) {
            result.stage_busy_seconds[static_cast<size_t>(s)] += died - ready;
            if (input.record_timeline) {
              result.timeline.push_back(StageEvent{s, inst.kind, inst.microbatch, ready, died});
            }
          }
          free_at[static_cast<size_t>(s)] = died;
          if (input.record_timeline) {
            result.fault_timeline.push_back(
                FaultEvent{FaultEvent::Kind::kDeviceFailure, s, -1, inst.microbatch,
                           fail_device[static_cast<size_t>(s)], fail, fail});
          }
          break;
        }
        const double finish = ready + duration;
        free_at[static_cast<size_t>(s)] = finish;
        result.stage_busy_seconds[static_cast<size_t>(s)] += duration;
        if (input.record_timeline) {
          result.timeline.push_back(StageEvent{s, inst.kind, inst.microbatch, ready, finish});
        }
        switch (inst.kind) {
          case Kind::kForward:
            fwd_done[idx(s, inst.microbatch)] = finish;
            memory[static_cast<size_t>(s)] += profile.act_bytes_per_microbatch;
            result.stage_peak_bytes[static_cast<size_t>(s)] = std::max(
                result.stage_peak_bytes[static_cast<size_t>(s)], memory[static_cast<size_t>(s)]);
            break;
          case Kind::kBackward:
            bwd_done[idx(s, inst.microbatch)] = finish;
            memory[static_cast<size_t>(s)] -= profile.act_bytes_per_microbatch;
            break;
          case Kind::kUpdate:
            update_done[static_cast<size_t>(s)] = finish;
            break;
        }
        pc[static_cast<size_t>(s)]++;
        progress = true;
      }
    }
  }
  for (int s = 0; s < num_stages; ++s) {
    if (!result.failed) {
      ALPA_CHECK_EQ(pc[static_cast<size_t>(s)], schedule[static_cast<size_t>(s)].size())
          << "Pipeline deadlocked at stage " << s;
    }
    result.latency = std::max(result.latency, update_done[static_cast<size_t>(s)]);
    result.latency = std::max(result.latency, result.failed ? free_at[static_cast<size_t>(s)] : 0.0);
    const double stage_capacity =
        static_cast<size_t>(s) < input.stage_memory_bytes.size()
            ? input.stage_memory_bytes[static_cast<size_t>(s)]
            : input.device_memory_bytes;
    if (result.stage_peak_bytes[static_cast<size_t>(s)] > stage_capacity &&
        result.first_oom_stage < 0) {
      result.oom = true;
      result.first_oom_stage = s;
    }
  }
  if (result.failed) {
    result.detection_time = result.failure_time + faults.detection_timeout;
    for (double busy : result.stage_busy_seconds) {
      result.wasted_work_seconds += busy;
    }
    if (input.record_timeline) {
      result.fault_timeline.push_back(
          FaultEvent{FaultEvent::Kind::kDetection, result.failed_stage, -1, -1,
                     result.failed_device, result.failure_time, result.detection_time});
    }
  }
  double max_busy = 0.0;
  for (double busy : result.stage_busy_seconds) {
    max_busy = std::max(max_busy, busy);
  }
  result.bubble_fraction = result.latency > 0.0 ? 1.0 - max_busy / result.latency : 0.0;
  return result;
}

void ExportTimelineToTrace(const PipelineSimInput& input, const PipelineSimResult& result,
                           const char* label) {
  if (!Trace::enabled() || (result.timeline.empty() && result.fault_timeline.empty())) {
    return;
  }
  const int num_stages = static_cast<int>(input.stages.size());
  double window = result.latency;
  for (const FaultEvent& e : result.fault_timeline) {
    window = std::max(window, e.end);
  }
  const double base = Trace::ReserveVirtualWindow(window);
  Trace::EmitVirtual("iteration", label, "sim", base, base + result.latency,
                     StrFormat("\"num_microbatches\":%d,\"bubble_fraction\":%.4f,\"oom\":%s"
                               ",\"failed\":%s,\"send_retries\":%lld",
                               input.num_microbatches, result.bubble_fraction,
                               result.oom ? "true" : "false", result.failed ? "true" : "false",
                               static_cast<long long>(result.send_retries)));

  std::vector<std::vector<StageEvent>> by_stage(static_cast<size_t>(num_stages));
  for (const StageEvent& e : result.timeline) {
    by_stage[static_cast<size_t>(e.stage)].push_back(e);
  }
  using Kind = PipelineInstruction::Kind;
  constexpr double kGapEps = 1e-9;
  for (int s = 0; s < num_stages; ++s) {
    std::vector<StageEvent>& events = by_stage[static_cast<size_t>(s)];
    std::sort(events.begin(), events.end(),
              [](const StageEvent& a, const StageEvent& b) { return a.start < b.start; });
    const std::string lane = StrFormat("mesh %02d", s);
    double cursor = 0.0;
    for (const StageEvent& e : events) {
      if (e.start - cursor > kGapEps) {
        Trace::EmitVirtual(lane, "bubble", "bubble", base + cursor, base + e.start);
      }
      cursor = std::max(cursor, e.end);
      switch (e.kind) {
        case Kind::kForward:
          Trace::EmitVirtual(lane, StrFormat("forward mb%d", e.microbatch), "sim",
                             base + e.start, base + e.end,
                             StrFormat("\"microbatch\":%d", e.microbatch));
          // The activation transfer to the next stage occupies the boundary
          // link right after the producing forward finishes.
          if (s + 1 < num_stages &&
              input.stages[static_cast<size_t>(s)].t_send_next > 0.0) {
            Trace::EmitVirtual(StrFormat("mesh %02d->%02d transfer", s, s + 1),
                               StrFormat("send_act mb%d", e.microbatch), "transfer",
                               base + e.end,
                               base + e.end + input.stages[static_cast<size_t>(s)].t_send_next,
                               StrFormat("\"microbatch\":%d", e.microbatch));
          }
          break;
        case Kind::kBackward:
          Trace::EmitVirtual(lane, StrFormat("backward mb%d", e.microbatch), "sim",
                             base + e.start, base + e.end,
                             StrFormat("\"microbatch\":%d", e.microbatch));
          // Gradients flow back over the boundary below at the same cost
          // the simulator charges (the downstream stage's t_send_next).
          if (s > 0 && input.stages[static_cast<size_t>(s - 1)].t_send_next > 0.0) {
            Trace::EmitVirtual(
                StrFormat("mesh %02d->%02d transfer", s - 1, s),
                StrFormat("send_grad mb%d", e.microbatch), "transfer", base + e.end,
                base + e.end + input.stages[static_cast<size_t>(s - 1)].t_send_next,
                StrFormat("\"microbatch\":%d", e.microbatch));
          }
          break;
        case Kind::kUpdate:
          Trace::EmitVirtual(lane, "apply_grad", "sim", base + e.start, base + e.end);
          break;
      }
    }
    if (result.latency - cursor > kGapEps) {
      Trace::EmitVirtual(lane, "bubble", "bubble", base + cursor, base + result.latency);
    }
  }
  for (const FaultEvent& e : result.fault_timeline) {
    switch (e.kind) {
      case FaultEvent::Kind::kRetry:
        Trace::EmitVirtual(StrFormat("mesh %02d->%02d transfer", e.boundary, e.boundary + 1),
                           StrFormat("retry mb%d", e.microbatch), "fault", base + e.start,
                           base + e.end, StrFormat("\"microbatch\":%d", e.microbatch));
        break;
      case FaultEvent::Kind::kBackoff:
        Trace::EmitVirtual(StrFormat("mesh %02d->%02d transfer", e.boundary, e.boundary + 1),
                           StrFormat("backoff mb%d", e.microbatch), "fault", base + e.start,
                           base + e.end, StrFormat("\"microbatch\":%d", e.microbatch));
        break;
      case FaultEvent::Kind::kTransferAbort:
        Trace::EmitVirtual("faults", StrFormat("transfer abort mb%d -> stage %d", e.microbatch,
                                               e.stage),
                           "fault", base + e.start, base + e.end);
        break;
      case FaultEvent::Kind::kDeviceFailure:
        // Zero-duration incident: render a sliver so viewers show it.
        Trace::EmitVirtual("faults", StrFormat("device %d failure (stage %d)", e.device,
                                               e.stage),
                           "fault", base + e.start, base + e.start + 1e-6,
                           StrFormat("\"device\":%d,\"stage\":%d", e.device, e.stage));
        break;
      case FaultEvent::Kind::kDetection:
        Trace::EmitVirtual("faults", StrFormat("failure detection (stage %d)", e.stage),
                           "fault", base + e.start, base + e.end);
        break;
    }
  }
}

std::string PipelineSimResult::ToString() const {
  std::string out = StrFormat("latency=%s bubble=%.1f%%%s", HumanSeconds(latency).c_str(),
                              bubble_fraction * 100.0, oom ? " OOM" : "");
  if (failed) {
    out += StrFormat(" FAILED(stage %d at %s, detected %s, wasted %s)", failed_stage,
                     HumanSeconds(failure_time).c_str(), HumanSeconds(detection_time).c_str(),
                     HumanSeconds(wasted_work_seconds).c_str());
  }
  if (send_retries > 0) {
    out += StrFormat(" retries=%lld (+%s)", static_cast<long long>(send_retries),
                     HumanSeconds(retry_seconds).c_str());
  }
  return out;
}

}  // namespace alpa
