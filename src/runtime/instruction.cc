#include "src/runtime/instruction.h"

#include <map>
#include <set>

#include "src/support/logging.h"
#include "src/support/strings.h"

namespace alpa {

std::string ToString(InstructionKind kind) {
  switch (kind) {
    case InstructionKind::kAllocActivation:
      return "ALLOC";
    case InstructionKind::kRecvActivation:
      return "RECV_ACT";
    case InstructionKind::kForward:
      return "FORWARD";
    case InstructionKind::kSendActivation:
      return "SEND_ACT";
    case InstructionKind::kRecvGradient:
      return "RECV_GRAD";
    case InstructionKind::kBackward:
      return "BACKWARD";
    case InstructionKind::kSendGradient:
      return "SEND_GRAD";
    case InstructionKind::kFreeActivation:
      return "FREE";
    case InstructionKind::kWeightUpdate:
      return "UPDATE";
  }
  return "?";
}

std::string MeshInstruction::ToString() const {
  std::string result = alpa::ToString(kind);
  if (microbatch >= 0) {
    result += StrFormat(" mb=%d", microbatch);
  }
  if (peer_stage >= 0) {
    result += StrFormat(" peer=%d", peer_stage);
  }
  if (buffer_id >= 0) {
    result += StrFormat(" buf=%d", buffer_id);
  }
  if (!tensor_ids.empty()) {
    result += StrFormat(" tensors=%zu", tensor_ids.size());
  }
  return result;
}

std::string MeshProgram::ToString() const {
  std::string result = StrFormat("mesh %d:\n", stage);
  for (const MeshInstruction& inst : instructions) {
    result += "  " + inst.ToString() + "\n";
  }
  return result;
}

std::vector<MeshProgram> EmitPipelinePrograms(PipelineScheduleType schedule, int num_stages,
                                              int num_microbatches) {
  const auto order = BuildPipelineSchedule(schedule, num_stages, num_microbatches);
  std::vector<MeshProgram> programs(static_cast<size_t>(num_stages));
  for (int s = 0; s < num_stages; ++s) {
    MeshProgram& program = programs[static_cast<size_t>(s)];
    program.stage = s;
    // Activation buffer slots: smallest free slot is taken when a
    // microbatch's forward group starts and returned at kFreeActivation, so
    // the peak slot index + 1 equals MaxInFlightMicrobatches for the
    // schedule.
    std::set<int> free_slots;
    int next_slot = 0;
    std::map<int, int> slot_of_mb;
    const auto acquire_slot = [&](int mb) {
      int slot;
      if (!free_slots.empty()) {
        slot = *free_slots.begin();
        free_slots.erase(free_slots.begin());
      } else {
        slot = next_slot++;
      }
      slot_of_mb[mb] = slot;
      return slot;
    };
    for (const PipelineInstruction& step : order[static_cast<size_t>(s)]) {
      switch (step.kind) {
        case PipelineInstruction::Kind::kForward: {
          const int slot = acquire_slot(step.microbatch);
          if (s > 0) {
            program.instructions.push_back(
                {InstructionKind::kRecvActivation, step.microbatch, s - 1, slot});
          }
          program.instructions.push_back(
              {InstructionKind::kAllocActivation, step.microbatch, -1, slot});
          program.instructions.push_back({InstructionKind::kForward, step.microbatch, -1, slot});
          if (s + 1 < num_stages) {
            program.instructions.push_back(
                {InstructionKind::kSendActivation, step.microbatch, s + 1, slot});
          }
          break;
        }
        case PipelineInstruction::Kind::kBackward: {
          const auto it = slot_of_mb.find(step.microbatch);
          ALPA_CHECK(it != slot_of_mb.end())
              << "backward of mb " << step.microbatch << " before its forward";
          const int slot = it->second;
          if (s + 1 < num_stages) {
            program.instructions.push_back(
                {InstructionKind::kRecvGradient, step.microbatch, s + 1, slot});
          }
          program.instructions.push_back({InstructionKind::kBackward, step.microbatch, -1, slot});
          program.instructions.push_back(
              {InstructionKind::kFreeActivation, step.microbatch, -1, slot});
          if (s > 0) {
            program.instructions.push_back(
                {InstructionKind::kSendGradient, step.microbatch, s - 1, slot});
          }
          free_slots.insert(slot);
          slot_of_mb.erase(it);
          break;
        }
        case PipelineInstruction::Kind::kUpdate:
          program.instructions.push_back({InstructionKind::kWeightUpdate, -1});
          break;
      }
    }
  }
  return programs;
}

namespace {

bool IsSend(InstructionKind kind) {
  return kind == InstructionKind::kSendActivation || kind == InstructionKind::kSendGradient;
}

bool IsRecv(InstructionKind kind) {
  return kind == InstructionKind::kRecvActivation || kind == InstructionKind::kRecvGradient;
}

// The matching receive kind for a send.
InstructionKind Counterpart(InstructionKind kind) {
  switch (kind) {
    case InstructionKind::kSendActivation:
      return InstructionKind::kRecvActivation;
    case InstructionKind::kSendGradient:
      return InstructionKind::kRecvGradient;
    default:
      return kind;
  }
}

}  // namespace

std::string ValidatePrograms(const std::vector<MeshProgram>& programs, int num_microbatches) {
  // --- Per-program buffer discipline. ---
  for (const MeshProgram& program : programs) {
    std::set<int> live;
    std::set<int> freed;
    // Slot checks apply only to emitter-assigned instructions (buffer_id >=
    // 0); hand-built programs without slots still validate.
    std::set<int> live_slots;
    std::map<int, int> mb_slot;
    for (const MeshInstruction& inst : program.instructions) {
      if (inst.buffer_id >= 0 && inst.microbatch >= 0) {
        const auto [it, inserted] = mb_slot.emplace(inst.microbatch, inst.buffer_id);
        if (!inserted && it->second != inst.buffer_id) {
          return StrFormat("stage %d: mb %d uses slots %d and %d", program.stage,
                           inst.microbatch, it->second, inst.buffer_id);
        }
      }
      switch (inst.kind) {
        case InstructionKind::kAllocActivation:
          if (live.count(inst.microbatch) != 0) {
            return StrFormat("stage %d: double alloc of mb %d", program.stage, inst.microbatch);
          }
          live.insert(inst.microbatch);
          if (inst.buffer_id >= 0) {
            if (live_slots.count(inst.buffer_id) != 0) {
              return StrFormat("stage %d: slot %d reused while live (mb %d)", program.stage,
                               inst.buffer_id, inst.microbatch);
            }
            live_slots.insert(inst.buffer_id);
            // The slot is free for the next microbatch after this one's
            // backward group; drop the stale mapping so consistency checks
            // compare within one use of the slot.
            for (auto it = mb_slot.begin(); it != mb_slot.end();) {
              if (it->first != inst.microbatch && it->second == inst.buffer_id) {
                it = mb_slot.erase(it);
              } else {
                ++it;
              }
            }
          }
          break;
        case InstructionKind::kForward:
        case InstructionKind::kBackward:
          if (live.count(inst.microbatch) == 0) {
            return StrFormat("stage %d: compute on unallocated mb %d", program.stage,
                             inst.microbatch);
          }
          break;
        case InstructionKind::kFreeActivation:
          if (live.count(inst.microbatch) == 0) {
            return StrFormat("stage %d: free of unallocated mb %d", program.stage,
                             inst.microbatch);
          }
          live.erase(inst.microbatch);
          freed.insert(inst.microbatch);
          if (inst.buffer_id >= 0) {
            live_slots.erase(inst.buffer_id);
          }
          break;
        default:
          break;
      }
    }
    if (!live.empty()) {
      return StrFormat("stage %d: %zu activation buffers leaked", program.stage, live.size());
    }
    if (static_cast<int>(freed.size()) != num_microbatches) {
      return StrFormat("stage %d: freed %zu of %d microbatches", program.stage, freed.size(),
                       num_microbatches);
    }
  }

  // --- Send/recv matching: multiset of (src, dst, kind, mb) must pair up. ---
  std::map<std::tuple<int, int, InstructionKind, int>, int> balance;
  for (const MeshProgram& program : programs) {
    for (const MeshInstruction& inst : program.instructions) {
      if (IsSend(inst.kind)) {
        balance[{program.stage, inst.peer_stage, Counterpart(inst.kind), inst.microbatch}] += 1;
      } else if (IsRecv(inst.kind)) {
        balance[{inst.peer_stage, program.stage, inst.kind, inst.microbatch}] -= 1;
      }
    }
  }
  for (const auto& [key, count] : balance) {
    if (count != 0) {
      return StrFormat("unmatched transfer src=%d dst=%d mb=%d (balance %d)",
                       std::get<0>(key), std::get<1>(key), std::get<3>(key), count);
    }
  }

  // --- Deadlock freedom under rendezvous semantics: run all programs with
  // program counters; an instruction blocks only on its matching peer
  // transfer having completed (asynchronous sends with in-order delivery:
  // a recv can complete once the peer has *issued* the matching send). ---
  std::vector<size_t> pc(programs.size(), 0);
  std::map<std::tuple<int, int, InstructionKind, int>, int> delivered;
  // First pass conservative loop: repeat until no progress.
  bool progress = true;
  while (progress) {
    progress = false;
    for (const MeshProgram& program : programs) {
      auto& counter = pc[static_cast<size_t>(program.stage)];
      while (counter < program.instructions.size()) {
        const MeshInstruction& inst = program.instructions[counter];
        if (IsRecv(inst.kind)) {
          auto key = std::make_tuple(inst.peer_stage, program.stage, inst.kind, inst.microbatch);
          if (delivered[key] <= 0) {
            break;  // Blocked on the peer's send.
          }
          delivered[key] -= 1;
        } else if (IsSend(inst.kind)) {
          delivered[{program.stage, inst.peer_stage, Counterpart(inst.kind),
                     inst.microbatch}] += 1;
        }
        ++counter;
        progress = true;
      }
    }
  }
  for (size_t s = 0; s < programs.size(); ++s) {
    if (pc[s] != programs[s].instructions.size()) {
      return StrFormat("deadlock: stage %zu blocked at '%s'", s,
                       programs[s].instructions[pc[s]].ToString().c_str());
    }
  }
  return "";
}

}  // namespace alpa
