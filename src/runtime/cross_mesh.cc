#include "src/runtime/cross_mesh.h"

#include <algorithm>
#include <map>

#include "src/support/logging.h"
#include "src/support/trace.h"

namespace alpa {

namespace {

using Tile = std::vector<std::pair<int64_t, int64_t>>;

double OverlapElements(const Tile& a, const Tile& b) {
  double volume = 1.0;
  for (size_t d = 0; d < a.size(); ++d) {
    const int64_t lo = std::max(a[d].first, b[d].first);
    const int64_t hi = std::min(a[d].second, b[d].second);
    if (hi <= lo) {
      return 0.0;
    }
    volume *= static_cast<double>(hi - lo);
  }
  return volume;
}

}  // namespace

CrossMeshPlan PlanCrossMeshResharding(const DeviceMesh& src_mesh, const ShardingSpec& src_spec,
                                      const DeviceMesh& dst_mesh, const ShardingSpec& dst_spec,
                                      const TensorShape& shape, int64_t dtype_bytes,
                                      ReshardStrategy strategy) {
  CrossMeshPlan plan;
  if (strategy == ReshardStrategy::kSignalOnly) {
    plan.sends.push_back(CrossMeshTask{src_mesh.DeviceAt(0, 0), dst_mesh.DeviceAt(0, 0), 1.0});
    plan.total_p2p_bytes = 1.0;
    return plan;
  }

  // Distinct source tiles, with the replica devices holding each.
  std::map<Tile, std::vector<int>> src_tiles;
  for (int i = 0; i < src_mesh.dim(0); ++i) {
    for (int j = 0; j < src_mesh.dim(1); ++j) {
      src_tiles[src_spec.TileSlice(shape, src_mesh, i, j)].push_back(src_mesh.DeviceAt(i, j));
    }
  }

  // Destination devices grouped by the tile they need (replication groups).
  std::map<Tile, std::vector<int>> dst_groups;
  for (int i = 0; i < dst_mesh.dim(0); ++i) {
    for (int j = 0; j < dst_mesh.dim(1); ++j) {
      dst_groups[dst_spec.TileSlice(shape, dst_mesh, i, j)].push_back(dst_mesh.DeviceAt(i, j));
    }
  }

  double max_group_allgather = 0.0;
  int dst_counter = 0;
  for (const auto& [dst_tile, group] : dst_groups) {
    const int group_size = static_cast<int>(group.size());
    const bool use_allgather =
        strategy == ReshardStrategy::kLocalAllGather && group_size > 1;
    // Receivers over the slow path: all members (each fetching 1/|group| of
    // the tile) when the local all-gather is on; every member fetching the
    // full tile otherwise.
    double tile_bytes = 0.0;
    for (const auto& [src_tile, replicas] : src_tiles) {
      const double overlap = OverlapElements(src_tile, dst_tile) * static_cast<double>(dtype_bytes);
      if (overlap <= 0.0) {
        continue;
      }
      tile_bytes += overlap;
      for (int member = 0; member < group_size; ++member) {
        const double bytes = use_allgather ? overlap / group_size : overlap;
        // Round-robin over the source replicas to balance senders.
        const int sender =
            replicas[static_cast<size_t>((dst_counter + member) % static_cast<int>(replicas.size()))];
        plan.sends.push_back(
            CrossMeshTask{sender, group[static_cast<size_t>(member)], bytes});
        plan.total_p2p_bytes += bytes;
      }
    }
    if (use_allgather && tile_bytes > 0.0) {
      // The group exchanges the tile over the destination mesh's fast
      // links. Groups are uniform; they all-gather concurrently.
      int axis = -1;
      if (dst_spec.DimForAxis(0) < 0 && dst_spec.DimForAxis(1) < 0) {
        max_group_allgather =
            std::max(max_group_allgather, dst_mesh.AllGatherBothTime(tile_bytes));
      } else {
        axis = dst_spec.DimForAxis(0) < 0 ? 0 : 1;
        max_group_allgather =
            std::max(max_group_allgather, dst_mesh.AllGatherTime(tile_bytes, axis));
      }
    }
    ++dst_counter;
  }
  plan.local_allgather_time = max_group_allgather;
  return plan;
}

double CrossMeshPlan::EstimateTime(const ClusterSpec& cluster, bool cross_host) const {
  const double bw = cross_host ? cluster.inter_host_bandwidth : cluster.intra_host_bandwidth;
  const double alpha = cross_host ? cluster.inter_host_alpha : cluster.intra_host_alpha;
  // Bytes through each host's NIC (out and in) and messages per device.
  std::map<int, double> host_out;
  std::map<int, double> host_in;
  std::map<int, int> device_msgs;
  for (const CrossMeshTask& task : sends) {
    host_out[task.src_device / cluster.devices_per_host] += task.bytes;
    host_in[task.dst_device / cluster.devices_per_host] += task.bytes;
    device_msgs[task.src_device] += 1;
    device_msgs[task.dst_device] += 1;
  }
  double bottleneck_bytes = 0.0;
  for (const auto& [host, bytes] : host_out) {
    bottleneck_bytes = std::max(bottleneck_bytes, bytes);
  }
  for (const auto& [host, bytes] : host_in) {
    bottleneck_bytes = std::max(bottleneck_bytes, bytes);
  }
  int max_msgs = 0;
  for (const auto& [device, count] : device_msgs) {
    max_msgs = std::max(max_msgs, count);
  }
  return bottleneck_bytes / bw + max_msgs * alpha + local_allgather_time;
}

double CrossMeshReshardTime(const DeviceMesh& src_mesh, const ShardingSpec& src_spec,
                            const DeviceMesh& dst_mesh, const ShardingSpec& dst_spec,
                            const TensorShape& shape, int64_t dtype_bytes,
                            ReshardStrategy strategy) {
  const CrossMeshPlan plan = PlanCrossMeshResharding(src_mesh, src_spec, dst_mesh, dst_spec,
                                                     shape, dtype_bytes, strategy);
  static Metric* bytes_metric = Metrics::Get("resharding/p2p_bytes");
  bytes_metric->Add(static_cast<int64_t>(plan.total_p2p_bytes));
  static Metric* transfers_metric = Metrics::Get("resharding/transfers");
  transfers_metric->Add(1);
  const auto& a = src_mesh.placement();
  const auto& b = dst_mesh.placement();
  const bool cross_host = a.host_begin != b.host_begin || a.shape.num_hosts != b.shape.num_hosts;
  return plan.EstimateTime(src_mesh.cluster(), cross_host);
}

}  // namespace alpa
