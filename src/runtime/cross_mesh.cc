#include "src/runtime/cross_mesh.h"

#include <algorithm>
#include <map>

#include "src/support/logging.h"
#include "src/support/trace.h"

namespace alpa {

namespace {

using Tile = std::vector<std::pair<int64_t, int64_t>>;

double OverlapElements(const Tile& a, const Tile& b) {
  double volume = 1.0;
  for (size_t d = 0; d < a.size(); ++d) {
    const int64_t lo = std::max(a[d].first, b[d].first);
    const int64_t hi = std::min(a[d].second, b[d].second);
    if (hi <= lo) {
      return 0.0;
    }
    volume *= static_cast<double>(hi - lo);
  }
  return volume;
}

}  // namespace

CrossMeshPlan PlanCrossMeshResharding(const DeviceMesh& src_mesh, const ShardingSpec& src_spec,
                                      const DeviceMesh& dst_mesh, const ShardingSpec& dst_spec,
                                      const TensorShape& shape, int64_t dtype_bytes,
                                      ReshardStrategy strategy) {
  CrossMeshPlan plan;
  if (strategy == ReshardStrategy::kSignalOnly) {
    plan.sends.push_back(CrossMeshTask{src_mesh.DeviceAt(0, 0), dst_mesh.DeviceAt(0, 0), 1.0});
    plan.total_p2p_bytes = 1.0;
    return plan;
  }

  // Distinct source tiles, with the replica devices holding each.
  std::map<Tile, std::vector<int>> src_tiles;
  for (int i = 0; i < src_mesh.dim(0); ++i) {
    for (int j = 0; j < src_mesh.dim(1); ++j) {
      src_tiles[src_spec.TileSlice(shape, src_mesh, i, j)].push_back(src_mesh.DeviceAt(i, j));
    }
  }

  // Destination devices grouped by the tile they need (replication groups).
  std::map<Tile, std::vector<int>> dst_groups;
  for (int i = 0; i < dst_mesh.dim(0); ++i) {
    for (int j = 0; j < dst_mesh.dim(1); ++j) {
      dst_groups[dst_spec.TileSlice(shape, dst_mesh, i, j)].push_back(dst_mesh.DeviceAt(i, j));
    }
  }

  double max_group_allgather = 0.0;
  int dst_counter = 0;
  for (const auto& [dst_tile, group] : dst_groups) {
    const int group_size = static_cast<int>(group.size());
    const bool use_allgather =
        strategy == ReshardStrategy::kLocalAllGather && group_size > 1;
    // Receivers over the slow path: all members (each fetching 1/|group| of
    // the tile) when the local all-gather is on; every member fetching the
    // full tile otherwise.
    double tile_bytes = 0.0;
    for (const auto& [src_tile, replicas] : src_tiles) {
      const double overlap = OverlapElements(src_tile, dst_tile) * static_cast<double>(dtype_bytes);
      if (overlap <= 0.0) {
        continue;
      }
      tile_bytes += overlap;
      for (int member = 0; member < group_size; ++member) {
        const double bytes = use_allgather ? overlap / group_size : overlap;
        // Round-robin over the source replicas to balance senders.
        const int sender =
            replicas[static_cast<size_t>((dst_counter + member) % static_cast<int>(replicas.size()))];
        plan.sends.push_back(
            CrossMeshTask{sender, group[static_cast<size_t>(member)], bytes});
        plan.total_p2p_bytes += bytes;
      }
    }
    if (use_allgather && tile_bytes > 0.0) {
      // The group exchanges the tile over the destination mesh's fast
      // links. Groups are uniform; they all-gather concurrently.
      int axis = -1;
      if (dst_spec.DimForAxis(0) < 0 && dst_spec.DimForAxis(1) < 0) {
        max_group_allgather =
            std::max(max_group_allgather, dst_mesh.AllGatherBothTime(tile_bytes));
      } else {
        axis = dst_spec.DimForAxis(0) < 0 ? 0 : 1;
        max_group_allgather =
            std::max(max_group_allgather, dst_mesh.AllGatherTime(tile_bytes, axis));
      }
    }
    ++dst_counter;
  }
  plan.local_allgather_time = max_group_allgather;
  return plan;
}

double CrossMeshPlan::EstimateTime(const ClusterSpec& cluster) const {
  // Classify every task by its actual endpoints rather than one plan-wide
  // flag: meshes spanning the same host range exchange a mix of same-host
  // (fast local fabric) and cross-host (NIC) traffic, and lumping the mix
  // under one bandwidth misprices both halves.
  std::map<int, double> host_nic_out;    // Cross-host bytes leaving a host.
  std::map<int, double> host_nic_in;     // Cross-host bytes entering a host.
  std::map<int, double> host_local;      // Same-host bytes inside a host.
  std::map<int, int> device_inter_msgs;  // Per-device message counts by class.
  std::map<int, int> device_intra_msgs;
  for (const CrossMeshTask& task : sends) {
    const int src_host = task.src_device / cluster.devices_per_host;
    const int dst_host = task.dst_device / cluster.devices_per_host;
    if (src_host != dst_host) {
      host_nic_out[src_host] += task.bytes;
      host_nic_in[dst_host] += task.bytes;
      device_inter_msgs[task.src_device] += 1;
      device_inter_msgs[task.dst_device] += 1;
    } else {
      host_local[src_host] += task.bytes;
      device_intra_msgs[task.src_device] += 1;
      device_intra_msgs[task.dst_device] += 1;
    }
  }
  double inter_bottleneck_bytes = 0.0;
  for (const auto& [host, bytes] : host_nic_out) {
    inter_bottleneck_bytes = std::max(inter_bottleneck_bytes, bytes);
  }
  for (const auto& [host, bytes] : host_nic_in) {
    inter_bottleneck_bytes = std::max(inter_bottleneck_bytes, bytes);
  }
  double intra_bottleneck_bytes = 0.0;
  for (const auto& [host, bytes] : host_local) {
    intra_bottleneck_bytes = std::max(intra_bottleneck_bytes, bytes);
  }
  // Busiest device's per-message latency, pricing each message by its class.
  double max_alpha = 0.0;
  for (const auto& [device, count] : device_inter_msgs) {
    double alpha = count * cluster.inter_host_alpha;
    const auto it = device_intra_msgs.find(device);
    if (it != device_intra_msgs.end()) {
      alpha += it->second * cluster.intra_host_alpha;
    }
    max_alpha = std::max(max_alpha, alpha);
  }
  for (const auto& [device, count] : device_intra_msgs) {
    if (device_inter_msgs.count(device)) {
      continue;  // Already priced above.
    }
    max_alpha = std::max(max_alpha, count * cluster.intra_host_alpha);
  }
  return inter_bottleneck_bytes / cluster.inter_host_bandwidth +
         intra_bottleneck_bytes / cluster.intra_host_bandwidth + max_alpha +
         local_allgather_time;
}

double CrossMeshReshardTime(const DeviceMesh& src_mesh, const ShardingSpec& src_spec,
                            const DeviceMesh& dst_mesh, const ShardingSpec& dst_spec,
                            const TensorShape& shape, int64_t dtype_bytes,
                            ReshardStrategy strategy) {
  const CrossMeshPlan plan = PlanCrossMeshResharding(src_mesh, src_spec, dst_mesh, dst_spec,
                                                     shape, dtype_bytes, strategy);
  static Metric* bytes_metric = Metrics::Get("resharding/p2p_bytes");
  bytes_metric->Add(static_cast<int64_t>(plan.total_p2p_bytes));
  static Metric* transfers_metric = Metrics::Get("resharding/transfers");
  transfers_metric->Add(1);
  return plan.EstimateTime(src_mesh.cluster());
}

}  // namespace alpa
