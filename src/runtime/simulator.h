// Discrete-event execution of the static pipeline instruction lists.
//
// The paper's runtime dispatches precomputed per-mesh instruction lists and
// lets meshes run asynchronously, synchronizing only on cross-mesh
// send/recv. The simulator reproduces that: each stage executes its program
// in order; a Forward(i) waits for the upstream Forward(i) plus the
// cross-mesh transfer, a Backward(i) for the downstream Backward(i). It
// tracks per-stage memory (weights + in-flight activations) against the
// device capacity and reports latency, per-stage utilization, and the
// pipeline bubble fraction.
#ifndef SRC_RUNTIME_SIMULATOR_H_
#define SRC_RUNTIME_SIMULATOR_H_

#include <string>
#include <vector>

#include "src/runtime/pipeline_schedule.h"

namespace alpa {

// Execution profile of one stage, as produced by the inter-op pass.
struct StageExecProfile {
  double t_forward = 0.0;   // Per microbatch.
  double t_backward = 0.0;  // Per microbatch.
  double t_update = 0.0;    // Once per iteration (grad sync + optimizer).
  // Transfer time of one microbatch's activations to the NEXT stage
  // (gradients flow back over the same boundary at the same cost).
  double t_send_next = 0.0;
  // Per-device memory.
  double weight_bytes = 0.0;
  double act_bytes_per_microbatch = 0.0;
  double work_bytes = 0.0;
};

struct PipelineSimInput {
  std::vector<StageExecProfile> stages;
  int num_microbatches = 1;
  PipelineScheduleType schedule = PipelineScheduleType::k1F1B;
  double device_memory_bytes = 16e9;
  // Record per-instruction (start, end) events for timeline rendering.
  bool record_timeline = false;
};

// One executed instruction, for timeline visualization.
struct StageEvent {
  int stage = 0;
  PipelineInstruction::Kind kind = PipelineInstruction::Kind::kForward;
  int microbatch = -1;
  double start = 0.0;
  double end = 0.0;
};

struct PipelineSimResult {
  double latency = 0.0;  // Iteration makespan.
  bool oom = false;
  int first_oom_stage = -1;
  std::vector<double> stage_busy_seconds;
  std::vector<double> stage_peak_bytes;
  // 1 - busy(bottleneck stage)/latency.
  double bubble_fraction = 0.0;
  std::vector<StageEvent> timeline;  // Only when input.record_timeline.
  std::string ToString() const;
};

PipelineSimResult SimulatePipeline(const PipelineSimInput& input);

// Converts a recorded timeline into virtual-time trace events (the Fig. 13
// view): one "mesh NN" lane per stage with forward/backward/apply_grad
// spans and explicit bubble (idle-gap) events, plus "mesh NN->MM transfer"
// lanes carrying the cross-mesh activation/gradient sends. Events land in a
// fresh virtual-time window, so successive simulations lay out
// sequentially in one trace. No-op when tracing is disabled or the
// timeline was not recorded.
void ExportTimelineToTrace(const PipelineSimInput& input, const PipelineSimResult& result,
                           const char* label = "train_iteration");

}  // namespace alpa

#endif  // SRC_RUNTIME_SIMULATOR_H_
