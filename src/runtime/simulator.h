// Discrete-event execution of the static pipeline instruction lists.
//
// The paper's runtime dispatches precomputed per-mesh instruction lists and
// lets meshes run asynchronously, synchronizing only on cross-mesh
// send/recv. The simulator reproduces that: each stage executes its program
// in order; a Forward(i) waits for the upstream Forward(i) plus the
// cross-mesh transfer, a Backward(i) for the downstream Backward(i). It
// tracks per-stage memory (weights + in-flight activations) against the
// device capacity and reports latency, per-stage utilization, and the
// pipeline bubble fraction.
//
// The event loop is failure-aware (FaultSpec): straggler devices stretch
// their stage's compute, degraded links stretch boundary transfers, lost
// sends are retried under a timeout/exponential-backoff policy (each retry
// charged on the boundary link), and a permanent device loss halts its
// stage — the result then reports the failure point, the time until the
// heartbeat detects it, and the work wasted in the aborted iteration. An
// empty FaultSpec is a hard no-op: results are bit-identical to the
// fault-free simulator.
#ifndef SRC_RUNTIME_SIMULATOR_H_
#define SRC_RUNTIME_SIMULATOR_H_

#include <string>
#include <vector>

#include "src/mesh/fault_spec.h"
#include "src/runtime/pipeline_schedule.h"

namespace alpa {

// Execution profile of one stage, as produced by the inter-op pass.
struct StageExecProfile {
  double t_forward = 0.0;   // Per microbatch.
  double t_backward = 0.0;  // Per microbatch.
  double t_update = 0.0;    // Once per iteration (grad sync + optimizer).
  // Transfer time of one microbatch's activations to the NEXT stage
  // (gradients flow back over the same boundary at the same cost).
  double t_send_next = 0.0;
  // Per-device memory.
  double weight_bytes = 0.0;
  double act_bytes_per_microbatch = 0.0;
  double work_bytes = 0.0;
};

struct PipelineSimInput {
  std::vector<StageExecProfile> stages;
  int num_microbatches = 1;
  PipelineScheduleType schedule = PipelineScheduleType::k1F1B;
  double device_memory_bytes = 16e9;
  // Per-stage device memory capacity for heterogeneous clusters (the
  // minimum over the hosts each stage's placement spans). Empty = every
  // stage gets `device_memory_bytes`; otherwise one entry per stage.
  std::vector<double> stage_memory_bytes;
  // Record per-instruction (start, end) events for timeline rendering.
  bool record_timeline = false;
  // Fault scenario to replay (default: none). Parallelize() copies it from
  // ClusterSpec::faults.
  FaultSpec faults;
  // Global device ids backing each stage, for resolving per-device faults
  // to stages. Empty (unit-test inputs): stage s is treated as the single
  // device s on a one-device-per-host cluster.
  std::vector<std::vector<int>> stage_devices;
  // devices_per_host of the source cluster (maps device ids to hosts for
  // link degradation).
  int devices_per_host = 1;
};

// One executed instruction, for timeline visualization.
struct StageEvent {
  int stage = 0;
  PipelineInstruction::Kind kind = PipelineInstruction::Kind::kForward;
  int microbatch = -1;
  double start = 0.0;
  double end = 0.0;
};

// One fault-model incident, for the trace's fault lanes.
struct FaultEvent {
  enum class Kind {
    kRetry,          // A lost send attempt occupying the boundary link.
    kBackoff,        // The wait before the next attempt.
    kDeviceFailure,  // Permanent device loss halting a stage.
    kTransferAbort,  // A send whose retry budget was exhausted.
    kDetection,      // Heartbeat window from failure to cluster-wide detection.
  };
  Kind kind = Kind::kRetry;
  int stage = 0;       // The stage the incident halts / delivers to.
  int boundary = -1;   // Upstream stage of the boundary link (s -> s+1), or -1.
  int microbatch = -1;
  int device = -1;     // Failing device for kDeviceFailure.
  double start = 0.0;
  double end = 0.0;
};

struct PipelineSimResult {
  double latency = 0.0;  // Iteration makespan (of the executed prefix on failure).
  bool oom = false;
  int first_oom_stage = -1;
  std::vector<double> stage_busy_seconds;
  std::vector<double> stage_peak_bytes;
  // 1 - busy(bottleneck stage)/latency.
  double bubble_fraction = 0.0;
  std::vector<StageEvent> timeline;  // Only when input.record_timeline.

  // --- Fault outcomes. ---
  // True when the iteration could not complete: a permanent device loss, or
  // a transfer whose retry budget was exhausted.
  bool failed = false;
  int failed_stage = -1;
  int failed_device = -1;  // -1 for transfer aborts.
  double failure_time = 0.0;
  // failure_time + FaultSpec::detection_timeout: when the heartbeat notices.
  double detection_time = 0.0;
  // Busy seconds spent across all stages on the aborted iteration (all of
  // it is lost: synchronous training cannot commit a partial iteration).
  double wasted_work_seconds = 0.0;
  // Transient-send accounting (also populated on successful runs).
  int64_t send_retries = 0;
  double retry_seconds = 0.0;  // Total timeout + backoff time charged.
  std::vector<FaultEvent> fault_timeline;  // Only when input.record_timeline.

  std::string ToString() const;
};

PipelineSimResult SimulatePipeline(const PipelineSimInput& input);

// Converts a recorded timeline into virtual-time trace events (the Fig. 13
// view): one "mesh NN" lane per stage with forward/backward/apply_grad
// spans and explicit bubble (idle-gap) events, plus "mesh NN->MM transfer"
// lanes carrying the cross-mesh activation/gradient sends. Fault incidents
// get their own events: retries/backoffs land on the boundary-transfer
// lanes and device failures/aborts/detection on a dedicated "faults" lane,
// all in category "fault". Events land in a fresh virtual-time window, so
// successive simulations lay out sequentially in one trace. No-op when
// tracing is disabled or the timeline was not recorded.
void ExportTimelineToTrace(const PipelineSimInput& input, const PipelineSimResult& result,
                           const char* label = "train_iteration");

}  // namespace alpa

#endif  // SRC_RUNTIME_SIMULATOR_H_
