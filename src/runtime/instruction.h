// Static per-mesh execution instructions (6, "Generating Pipeline Execution
// Instructions").
//
// Alpa's runtime is MPMD: a driver generates a distinct static instruction
// list per device mesh ahead of time — memory allocation, computation,
// cross-mesh communication, synchronization — and dispatches whole lists to
// the workers, avoiding driver-worker coordination during the iteration.
// This module emits those lists from a pipeline schedule and validates the
// properties the runtime relies on: every send has a matching receive in
// the peer's program order, buffers are allocated before use and freed
// exactly once, and in-order execution of all programs cannot deadlock.
#ifndef SRC_RUNTIME_INSTRUCTION_H_
#define SRC_RUNTIME_INSTRUCTION_H_

#include <string>
#include <vector>

#include "src/runtime/pipeline_schedule.h"

namespace alpa {

enum class InstructionKind {
  kAllocActivation,  // Reserve the activation buffer of one microbatch.
  kRecvActivation,   // Cross-mesh receive from the previous stage.
  kForward,          // Run the stage's forward executable.
  kSendActivation,   // Cross-mesh send to the next stage.
  kRecvGradient,     // Cross-mesh receive from the next stage.
  kBackward,         // Run the stage's backward executable.
  kSendGradient,     // Cross-mesh send to the previous stage.
  kFreeActivation,   // Release the microbatch's activation buffer.
  kWeightUpdate,     // Apply accumulated gradients (once per iteration).
};

std::string ToString(InstructionKind kind);

struct MeshInstruction {
  InstructionKind kind = InstructionKind::kForward;
  int microbatch = -1;   // -1 for kWeightUpdate.
  int peer_stage = -1;   // For send/recv: the other side.
  // Activation buffer slot this instruction touches. Slots are dense and
  // reused: the emitter assigns the smallest free slot when a microbatch's
  // forward group starts and releases it at kFreeActivation, so the peak
  // slot count equals MaxInFlightMicrobatches. -1: not buffer-scoped
  // (kWeightUpdate) or emitted by hand without slot assignment.
  int buffer_id = -1;
  // For send/recv: ids of the ops whose tensors this transfer carries
  // (full-graph producer ids, as in CrossStageTensor::producer_op). Filled
  // by the executor when binding programs to a compiled pipeline; empty in
  // plain schedule emission.
  std::vector<int> tensor_ids;
  std::string ToString() const;
};

struct MeshProgram {
  int stage = 0;
  std::vector<MeshInstruction> instructions;
  std::string ToString() const;
};

// Emits one static program per stage for the given schedule.
std::vector<MeshProgram> EmitPipelinePrograms(PipelineScheduleType schedule, int num_stages,
                                              int num_microbatches);

// Structural validation. Returns an empty string when the programs are
// well-formed, otherwise a description of the first violation found:
//   * every send has a matching recv on the peer (same microbatch, same
//     tensor direction), and vice versa;
//   * activations are allocated before compute/send and freed exactly once;
//   * executing all programs in order with rendezvous send/recv semantics
//     terminates (no deadlock).
std::string ValidatePrograms(const std::vector<MeshProgram>& programs, int num_microbatches);

}  // namespace alpa

#endif  // SRC_RUNTIME_INSTRUCTION_H_
