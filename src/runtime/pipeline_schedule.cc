#include "src/runtime/pipeline_schedule.h"

#include <algorithm>

#include "src/support/logging.h"

namespace alpa {

std::vector<std::vector<PipelineInstruction>> BuildPipelineSchedule(PipelineScheduleType type,
                                                                    int num_stages,
                                                                    int num_microbatches) {
  ALPA_CHECK_GT(num_stages, 0);
  ALPA_CHECK_GT(num_microbatches, 0);
  std::vector<std::vector<PipelineInstruction>> schedule(static_cast<size_t>(num_stages));
  using Kind = PipelineInstruction::Kind;
  for (int s = 0; s < num_stages; ++s) {
    auto& program = schedule[static_cast<size_t>(s)];
    if (type == PipelineScheduleType::kGpipe) {
      for (int i = 0; i < num_microbatches; ++i) {
        program.push_back({Kind::kForward, i});
      }
      for (int i = 0; i < num_microbatches; ++i) {
        program.push_back({Kind::kBackward, i});
      }
    } else {
      // 1F1B: warm up with (S - 1 - s) forwards, then alternate.
      const int warmup = std::min(num_stages - 1 - s, num_microbatches);
      int fwd = 0;
      int bwd = 0;
      for (int k = 0; k < warmup; ++k) {
        program.push_back({Kind::kForward, fwd++});
      }
      while (fwd < num_microbatches) {
        program.push_back({Kind::kForward, fwd++});
        program.push_back({Kind::kBackward, bwd++});
      }
      while (bwd < num_microbatches) {
        program.push_back({Kind::kBackward, bwd++});
      }
    }
    program.push_back({Kind::kUpdate, -1});
  }
  return schedule;
}

int MaxInFlightMicrobatches(PipelineScheduleType type, int num_stages, int stage,
                            int num_microbatches) {
  if (type == PipelineScheduleType::kGpipe) {
    return num_microbatches;
  }
  return std::min(num_stages - stage, num_microbatches);
}

std::string ToString(PipelineScheduleType type) {
  return type == PipelineScheduleType::kGpipe ? "gpipe" : "1f1b";
}

}  // namespace alpa
