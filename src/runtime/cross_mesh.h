// Cross-mesh resharding (6, Fig. 7).
//
// Tensors crossing a stage boundary live on meshes with possibly different
// shapes and sharding specs: a many-to-many multicast. The planner computes
// tile correspondences between source and destination devices and emits P2P
// send/recv tasks; the *local all-gather* optimization then lets each
// replication group on the destination mesh receive only a 1/|group| slice
// over the slow connection and exchange the rest over fast local links
// (Fig. 7c), generalizing Megatron's scatter-gather trick to unequal mesh
// shapes.
#ifndef SRC_RUNTIME_CROSS_MESH_H_
#define SRC_RUNTIME_CROSS_MESH_H_

#include <cstdint>
#include <vector>

#include "src/graph/tensor.h"
#include "src/mesh/device_mesh.h"
#include "src/spec/sharding_spec.h"

namespace alpa {

enum class ReshardStrategy {
  kSignalOnly,      // Synthetic upper bound: 1 byte per boundary (7.5).
  kNaiveSendRecv,   // Fig. 7b: every destination device receives its tile.
  kLocalAllGather,  // Fig. 7c: slice across replicas + local all-gather.
};

struct CrossMeshTask {
  int src_device = 0;  // Global device ids.
  int dst_device = 0;
  double bytes = 0.0;
};

struct CrossMeshPlan {
  std::vector<CrossMeshTask> sends;
  // Local all-gather time on the destination mesh (kLocalAllGather only).
  double local_allgather_time = 0.0;
  double total_p2p_bytes = 0.0;

  // End-to-end time. Each task is classified by its actual endpoints:
  // cross-host tasks contend on the sender/receiver NICs (bottleneck = the
  // busiest host NIC, out or in), same-host tasks on that host's local
  // fabric (bottleneck = the busiest host's local byte sum). The two
  // bottlenecks are charged in sequence, plus the busiest device's
  // per-message latencies and the local all-gather.
  double EstimateTime(const ClusterSpec& cluster) const;
};

CrossMeshPlan PlanCrossMeshResharding(const DeviceMesh& src_mesh, const ShardingSpec& src_spec,
                                      const DeviceMesh& dst_mesh, const ShardingSpec& dst_spec,
                                      const TensorShape& shape, int64_t dtype_bytes,
                                      ReshardStrategy strategy);

// Convenience: plan + estimate.
double CrossMeshReshardTime(const DeviceMesh& src_mesh, const ShardingSpec& src_spec,
                            const DeviceMesh& dst_mesh, const ShardingSpec& dst_spec,
                            const TensorShape& shape, int64_t dtype_bytes,
                            ReshardStrategy strategy);

}  // namespace alpa

#endif  // SRC_RUNTIME_CROSS_MESH_H_
