// Static pipeline execution instruction generation (6).
//
// Alpa's runtime is MPMD: each mesh receives its own static instruction
// list ahead of time (no driver-worker coordination during the iteration).
// We generate the 1F1B schedule (the paper's default: synchronous, same
// latency as GPipe, lower peak memory) and GPipe for comparison.
#ifndef SRC_RUNTIME_PIPELINE_SCHEDULE_H_
#define SRC_RUNTIME_PIPELINE_SCHEDULE_H_

#include <string>
#include <vector>

namespace alpa {

enum class PipelineScheduleType {
  kGpipe,
  k1F1B,
};

struct PipelineInstruction {
  enum class Kind {
    kForward,   // Run forward for one microbatch (recv activation implied).
    kBackward,  // Run backward for one microbatch (recv gradient implied).
    kUpdate,    // Apply gradients (once, after all microbatches).
  };
  Kind kind = Kind::kForward;
  int microbatch = -1;
};

// instructions[s] is the static in-order program of stage s.
std::vector<std::vector<PipelineInstruction>> BuildPipelineSchedule(
    PipelineScheduleType type, int num_stages, int num_microbatches);

// Maximum number of microbatches whose activations stage s holds at once
// under the schedule (S - s for 1F1B, B for GPipe).
int MaxInFlightMicrobatches(PipelineScheduleType type, int num_stages, int stage,
                            int num_microbatches);

std::string ToString(PipelineScheduleType type);

}  // namespace alpa

#endif  // SRC_RUNTIME_PIPELINE_SCHEDULE_H_
