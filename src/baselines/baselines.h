// Baseline systems of 7, expressed as restrictions of the plan space and
// evaluated on the same cost model and simulator as Alpa:
//
//  * Megatron-LM v2 (7.1, GPT): equal-layer pipeline stages x data
//    parallelism x tensor model parallelism (TMP); no weight-update
//    sharding. The (pp, dp, tmp) grid search of the paper is subsumed by
//    the equal-layer DP plus the logical-mesh-shape search.
//  * DeepSpeed (7.1, MoE): hand-tuned expert parallelism + ZeRO data
//    parallelism, intra-op only (its implementation is incompatible with
//    pipeline parallelism, as the paper notes).
//  * PP-DP (7.1, Wide-ResNet): pipeline + pure data parallelism, the plan
//    space of PipeDream/Dapple.
//  * Intra-op only / Inter-op only (7.1): Alpa with one level disabled.
//  * Data / ZeRO-2 / ZeRO-3 / Heuristic / Auto-sharding (7.2): single-mesh
//    intra-op strategies without pipeline or gradient accumulation.
#ifndef SRC_BASELINES_BASELINES_H_
#define SRC_BASELINES_BASELINES_H_

#include <string>

#include "src/core/api.h"

namespace alpa {

// --- Plan-space filters. ---

// Batch-dim-only activations, fully replicated parameters and optimizer
// (vanilla data parallelism).
AlgorithmFilter DataParallelFilter();
// Data parallelism with the optimizer state sharded (ZeRO-2).
AlgorithmFilter Zero2Filter();
// ZeRO-2 plus sharded parameters (ZeRO-3).
AlgorithmFilter Zero3Filter();
// Megatron-LM: batch along mesh axis 0, tensor-model parallelism along
// axis 1, no weight-update sharding, no S01 layouts.
AlgorithmFilter MegatronFilter();
// GSPMD-style heuristic: every parameter is partitioned along its largest
// dimension; the rest follows by propagation (here: by the ILP).
AlgorithmFilter HeuristicLargestDimFilter();
// DeepSpeed MoE: expert weights partitioned along the expert axis, ZeRO
// data parallelism elsewhere.
AlgorithmFilter ExpertParallelFilter();

// --- End-to-end baseline runners (Fig. 8). All take the same model graph
// builder output and cluster as Alpa. ---

struct BaselineResult {
  std::string name;
  // Structured outcome: OK stats, or why the baseline cannot run this model
  // (kInfeasible: no plan in its restricted space; kResourceExhausted: the
  // plan OOMs — the "x" marks of Figs. 8-9).
  StatusOr<ExecutionStats> stats;
};

// Mutable template every Run* helper starts from; benchmarks tweak shared
// knobs (ILP search budget, schedule) here once instead of per call.
ParallelizeOptions& BaselineOptionTemplate();

// Alpa with both parallelism levels (the headline system).
BaselineResult RunAlpa(Graph graph, const ClusterSpec& cluster, int num_microbatches,
                       int target_layers);
// Alpa restricted to a single device mesh (intra-op only).
BaselineResult RunIntraOnly(Graph graph, const ClusterSpec& cluster, int num_microbatches);
// Alpa restricted to unpartitioned single-device stages (inter-op only).
BaselineResult RunInterOnly(Graph graph, const ClusterSpec& cluster, int num_microbatches,
                            int target_layers);
// Megatron-LM style grid-searched manual plan.
BaselineResult RunMegatron(Graph graph, const ClusterSpec& cluster, int num_microbatches,
                           int target_layers);
// DeepSpeed-style MoE training (expert parallelism + ZeRO, no pipeline).
BaselineResult RunDeepSpeedMoe(Graph graph, const ClusterSpec& cluster, int num_microbatches);
// Pipeline + pure data parallelism (PipeDream/Dapple plan space).
BaselineResult RunPpDp(Graph graph, const ClusterSpec& cluster, int num_microbatches,
                       int target_layers);

// --- Single-mesh intra-op strategies for the Fig. 9 ablation: no pipeline,
// no gradient accumulation. ---
BaselineResult RunSingleMesh(Graph graph, const ClusterSpec& cluster, const std::string& name,
                             AlgorithmFilter filter);

}  // namespace alpa

#endif  // SRC_BASELINES_BASELINES_H_
