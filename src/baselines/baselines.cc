#include "src/baselines/baselines.h"

#include <algorithm>

#include "src/support/logging.h"

namespace alpa {

namespace {

constexpr int64_t kSmallTensorElements = 1024;

bool ShardsOnlyBatchDim(const ShardingSpec& spec) {
  for (int d = 0; d < spec.rank(); ++d) {
    const DimSharding s = spec.dim(d);
    if (s == DimSharding::kS01) {
      return false;  // Two-axis layouts are beyond plain data parallelism.
    }
    if (d > 0 && s != DimSharding::kR) {
      return false;
    }
  }
  return true;
}

bool IsActivationLike(const Operator& op) {
  switch (op.type) {
    case OpType::kParameter:
    case OpType::kInput:
    case OpType::kUpdate:
      return false;
    default:
      return true;
  }
}

}  // namespace

AlgorithmFilter DataParallelFilter() {
  return [](const Graph& graph, const DeviceMesh& mesh, const Operator& op,
            const ParallelAlgorithm& a) {
    if (op.weight_grad) {
      // Plain DP all-reduces gradients into replicated buffers.
      return a.output_spec.IsFullyReplicated();
    }
    switch (op.type) {
      case OpType::kParameter:
      case OpType::kUpdate:
        return a.output_spec.IsFullyReplicated();
      case OpType::kInput:
      default:
        return ShardsOnlyBatchDim(a.output_spec);
    }
  };
}

AlgorithmFilter Zero2Filter() {
  return [](const Graph& graph, const DeviceMesh& mesh, const Operator& op,
            const ParallelAlgorithm& a) {
    switch (op.type) {
      case OpType::kParameter:
        return a.output_spec.IsFullyReplicated();
      case OpType::kUpdate:
        if (op.shape.elements() > kSmallTensorElements) {
          // ZeRO shards the optimizer state across ALL data-parallel ranks.
          return a.output_spec.TotalShards(mesh) == mesh.num_devices();
        }
        return true;
      case OpType::kInput:
      default:
        return ShardsOnlyBatchDim(a.output_spec);
    }
  };
}

AlgorithmFilter Zero3Filter() {
  return [](const Graph& graph, const DeviceMesh& mesh, const Operator& op,
            const ParallelAlgorithm& a) {
    switch (op.type) {
      case OpType::kParameter:
      case OpType::kUpdate:
        if (op.shape.elements() > kSmallTensorElements) {
          // Parameters and optimizer state fully sharded across the mesh.
          return a.output_spec.TotalShards(mesh) == mesh.num_devices();
        }
        return true;
      case OpType::kInput:
      default:
        return ShardsOnlyBatchDim(a.output_spec);
    }
  };
}

AlgorithmFilter MegatronFilter() {
  return [](const Graph& graph, const DeviceMesh& mesh, const Operator& op,
            const ParallelAlgorithm& a) {
    // No two-axis layouts anywhere; no weight-update sharding.
    auto megatron_spec = [](const ShardingSpec& spec, bool batch_leading) {
      for (int d = 0; d < spec.rank(); ++d) {
        const DimSharding s = spec.dim(d);
        if (s == DimSharding::kS01) {
          return false;
        }
        if (batch_leading && d == 0 && s == DimSharding::kS1) {
          return false;  // Batch rides on mesh axis 0 (data parallelism).
        }
        if ((!batch_leading || d > 0) && s == DimSharding::kS0) {
          return false;  // Non-batch dims ride on mesh axis 1 (TMP).
        }
      }
      return true;
    };
    switch (op.type) {
      case OpType::kUpdate:
        // No weight-update sharding across data parallelism, but optimizer
        // state follows the tensor-model-parallel weight layout.
        return megatron_spec(a.output_spec, /*batch_leading=*/false) &&
               a.output_spec.DimForAxis(0) < 0;
      case OpType::kParameter:
        return megatron_spec(a.output_spec, /*batch_leading=*/false) &&
               a.output_spec.DimForAxis(0) < 0;
      default:
        // Weight gradients lay out like the weights (TMP axis only); the
        // batch contraction all-reduces over the data-parallel axis.
        return megatron_spec(a.output_spec, !op.weight_grad && IsActivationLike(op));
    }
  };
}

AlgorithmFilter HeuristicLargestDimFilter() {
  return [](const Graph& graph, const DeviceMesh& mesh, const Operator& op,
            const ParallelAlgorithm& a) {
    if ((op.type == OpType::kParameter || op.type == OpType::kInput) &&
        op.shape.elements() > kSmallTensorElements) {
      int largest = 0;
      for (int d = 1; d < op.shape.rank(); ++d) {
        if (op.shape.dim(d) > op.shape.dim(largest)) {
          largest = d;
        }
      }
      return a.output_spec.dim(largest) != DimSharding::kR;
    }
    return true;
  };
}

AlgorithmFilter ExpertParallelFilter() {
  return [](const Graph& graph, const DeviceMesh& mesh, const Operator& op,
            const ParallelAlgorithm& a) {
    switch (op.type) {
      case OpType::kParameter:
        if (op.shape.rank() == 3 && op.shape.elements() > kSmallTensorElements) {
          // Expert weights [e, m, f]: partition the expert axis.
          return a.output_spec.dim(0) != DimSharding::kR &&
                 a.output_spec.dim(1) == DimSharding::kR &&
                 a.output_spec.dim(2) == DimSharding::kR;
        }
        return a.output_spec.IsFullyReplicated();
      case OpType::kUpdate:
        return true;  // ZeRO data parallelism.
      case OpType::kMoeDispatch:
      case OpType::kMoeCombine:
        return true;  // Expert parallelism's all-to-alls.
      case OpType::kEinsum:
        if (op.shape.rank() == 3 && !op.einsum.output.empty() &&
            op.einsum.output[0] == 'e') {
          return true;  // Expert FFN follows the expert partitioning.
        }
        return ShardsOnlyBatchDim(a.output_spec);
      case OpType::kInput:
      default:
        return ShardsOnlyBatchDim(a.output_spec);
    }
  };
}

ParallelizeOptions& BaselineOptionTemplate() {
  static ParallelizeOptions options;
  return options;
}

BaselineResult RunAlpa(Graph graph, const ClusterSpec& cluster, int num_microbatches,
                       int target_layers) {
  ParallelizeOptions options = BaselineOptionTemplate();
  options.num_microbatches = num_microbatches;
  options.inter.target_layers = target_layers;
  return BaselineResult{"alpa", CompileAndSimulate(graph, cluster, options)};
}

BaselineResult RunIntraOnly(Graph graph, const ClusterSpec& cluster, int num_microbatches) {
  ParallelizeOptions options = BaselineOptionTemplate();
  options.num_microbatches = num_microbatches;
  options.enable_interop = false;
  options.inter.target_layers = 2;  // Trivial clustering; one stage anyway.
  return BaselineResult{"intra-op only", CompileAndSimulate(graph, cluster, options)};
}

BaselineResult RunInterOnly(Graph graph, const ClusterSpec& cluster, int num_microbatches,
                            int target_layers) {
  ParallelizeOptions options = BaselineOptionTemplate();
  options.num_microbatches = num_microbatches;
  options.enable_intraop = false;
  // Slice at least as finely as there are devices, or most of the cluster
  // idles.
  options.inter.target_layers = std::max(target_layers, cluster.num_devices());
  return BaselineResult{"inter-op only", CompileAndSimulate(graph, cluster, options)};
}

BaselineResult RunMegatron(Graph graph, const ClusterSpec& cluster, int num_microbatches,
                           int target_layers) {
  ParallelizeOptions options = BaselineOptionTemplate();
  options.num_microbatches = num_microbatches;
  options.inter.target_layers = target_layers;
  options.inter.equal_layer_stages = true;
  options.inter.profiler.intra.filter = MegatronFilter();
  // Memory-mode variants compose with the filter: sharding is confined to
  // the tensor-model-parallel axis (parallel vocabulary embeddings,
  // TMP-sharded optimizer state) — still no weight-update sharding across
  // data parallelism, which remains Alpa's edge (7.1).
  return BaselineResult{"megatron-lm", CompileAndSimulate(graph, cluster, options)};
}

BaselineResult RunDeepSpeedMoe(Graph graph, const ClusterSpec& cluster, int num_microbatches) {
  ParallelizeOptions options = BaselineOptionTemplate();
  options.num_microbatches = num_microbatches;
  options.enable_interop = false;  // DeepSpeed MoE has no pipeline support.
  options.inter.target_layers = 2;
  options.inter.profiler.intra.filter = ExpertParallelFilter();
  return BaselineResult{"deepspeed", CompileAndSimulate(graph, cluster, options)};
}

BaselineResult RunPpDp(Graph graph, const ClusterSpec& cluster, int num_microbatches,
                       int target_layers) {
  ParallelizeOptions options = BaselineOptionTemplate();
  options.num_microbatches = num_microbatches;
  options.inter.target_layers = target_layers;
  options.inter.profiler.intra.filter = DataParallelFilter();
  options.inter.profiler.memory_modes = false;
  return BaselineResult{"pp-dp", CompileAndSimulate(graph, cluster, options)};
}

BaselineResult RunSingleMesh(Graph graph, const ClusterSpec& cluster, const std::string& name,
                             AlgorithmFilter filter) {
  ParallelizeOptions options = BaselineOptionTemplate();
  options.num_microbatches = 1;  // 7.2: pipeline and GA disabled.
  options.enable_interop = false;
  options.inter.target_layers = 2;
  // Let infeasible-by-memory plans compile; the simulator reports the OOM
  // (the "x" marks of Fig. 9).
  options.inter.dp.device_memory_override = 1e15;
  // Rule-based strategies carry their own memory behaviour; the ILP-based
  // "auto-sharding" keeps the memory-mode variants so it can trade time for
  // memory like the full system.
  options.inter.profiler.memory_modes = (filter == nullptr);
  options.inter.profiler.intra.filter = std::move(filter);
  return BaselineResult{name, CompileAndSimulate(graph, cluster, options)};
}

}  // namespace alpa
