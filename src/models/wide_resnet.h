// Wide-ResNet image classifier (Table 7 of the paper).
//
// Bottleneck ResNet (50 = [3,4,6,3] blocks, 101 = [3,4,23,3]) where the
// 3x3 convolution of each bottleneck is widened by `width_factor`:
// conv1x1 (in -> mid), conv3x3 (mid -> mid*wf), conv1x1 (mid*wf -> 4*mid),
// with mid = base_channels * 2^stage. This reproduces Table 7's parameter
// counts (linear in width factor, quadratic in base channels, linear in
// depth). Convolutions are modeled as einsums over an implicit im2col
// patch ("nsc,kcf->nsf" with k = kernel area), which preserves their FLOPs,
// parameter shapes, and batch/channel sharding structure. fp32 training,
// input 224x224x3, 1024 classes.
#ifndef SRC_MODELS_WIDE_RESNET_H_
#define SRC_MODELS_WIDE_RESNET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/graph/graph.h"

namespace alpa {

struct WideResNetConfig {
  int64_t microbatch = 32;
  int64_t num_layers = 50;  // 50 or 101.
  int64_t base_channels = 160;
  int64_t width_factor = 2;
  int64_t num_classes = 1024;
  DType dtype = DType::kF32;
  bool build_backward = true;

  std::vector<int> BlocksPerStage() const;
  int64_t NumParams() const;
};

struct WideResNetBenchmarkCase {
  std::string name;
  WideResNetConfig config;
  int num_gpus = 1;
  int64_t global_batch = 1536;
};
std::vector<WideResNetBenchmarkCase> WideResNetPaperCases();

Graph BuildWideResNet(const WideResNetConfig& config);

}  // namespace alpa

#endif  // SRC_MODELS_WIDE_RESNET_H_
