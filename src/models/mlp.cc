#include "src/models/mlp.h"

#include "src/graph/backward.h"
#include "src/support/strings.h"

namespace alpa {

Graph BuildMlp(const MlpConfig& config) {
  Graph graph;
  int x = graph.AddInput("x", TensorShape({config.batch, config.input_dim}), config.dtype, 0);
  const int y = graph.AddInput("y", TensorShape({config.batch, config.output_dim}), config.dtype,
                               static_cast<int>(config.hidden_dims.size()));

  int64_t in_dim = config.input_dim;
  std::vector<int64_t> dims = config.hidden_dims;
  dims.push_back(config.output_dim);
  for (size_t l = 0; l < dims.size(); ++l) {
    const int64_t out_dim = dims[l];
    const int layer = static_cast<int>(l);
    const int w = graph.AddParameter(StrFormat("w%zu", l), TensorShape({in_dim, out_dim}),
                                     config.dtype, layer);
    EinsumSpec spec;
    spec.output = "bf";
    spec.operands = {"bm", "mf"};
    spec.extents = {{'b', config.batch}, {'m', in_dim}, {'f', out_dim}};
    x = graph.AddEinsum(StrFormat("dense%zu", l), spec, {x, w}, config.dtype, layer);
    const int b = graph.AddParameter(StrFormat("b%zu", l), TensorShape({out_dim}), config.dtype,
                                     layer);
    x = graph.AddElementwise(StrFormat("bias%zu", l), {x, b}, layer);
    if (l + 1 < dims.size()) {
      x = graph.AddElementwise(StrFormat("relu%zu", l), {x}, layer);
    }
    in_dim = out_dim;
  }
  graph.AddLoss("mse", {x, y}, static_cast<int>(dims.size()) - 1);
  if (config.build_backward) {
    BuildTrainingGraph(graph);
  }
  graph.Validate();
  return graph;
}

}  // namespace alpa
