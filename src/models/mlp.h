// Simple multi-layer perceptron, the running example of the paper (Fig. 2)
// and of the quickstart.
#ifndef SRC_MODELS_MLP_H_
#define SRC_MODELS_MLP_H_

#include <cstdint>
#include <vector>

#include "src/graph/graph.h"

namespace alpa {

struct MlpConfig {
  int64_t batch = 32;
  int64_t input_dim = 1024;
  std::vector<int64_t> hidden_dims = {4096, 4096};
  int64_t output_dim = 1024;
  DType dtype = DType::kF32;
  bool build_backward = true;
};

// Builds the training graph (forward, backward, weight update) of an MLP
// with MSE loss. Each linear layer gets its own layer tag.
Graph BuildMlp(const MlpConfig& config);

}  // namespace alpa

#endif  // SRC_MODELS_MLP_H_
