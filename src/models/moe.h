// GShard-style Mixture-of-Experts transformer (Table 6 of the paper).
//
// Every second transformer block replaces its dense MLP with an MoE layer:
// gate -> dispatch (all-to-all when expert-parallel) -> per-expert FFN ->
// combine. Sequence length 1024, vocabulary 32000, fp16, FFN width 8x
// hidden (which reproduces Table 6's parameter counts).
#ifndef SRC_MODELS_MOE_H_
#define SRC_MODELS_MOE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/graph/graph.h"

namespace alpa {

struct MoeConfig {
  int64_t microbatch = 8;
  int64_t seq_len = 1024;
  int64_t vocab = 32000;
  int64_t hidden = 768;
  int64_t num_layers = 8;  // Transformer blocks; every 2nd is MoE.
  int64_t num_heads = 16;
  int64_t num_experts = 8;
  int64_t ffn_mult = 8;
  double capacity_factor = 1.0;
  DType dtype = DType::kF16;
  bool build_backward = true;

  int64_t head_dim() const { return hidden / num_heads; }
  int64_t ffn_dim() const { return ffn_mult * hidden; }
  // Tokens routed to each expert per microbatch.
  int64_t expert_capacity() const;
  int64_t NumParams() const;
};

struct MoeBenchmarkCase {
  std::string name;
  MoeConfig config;
  int num_gpus = 1;
  int64_t global_batch = 1024;
};
std::vector<MoeBenchmarkCase> MoePaperCases();

Graph BuildMoe(const MoeConfig& config);

}  // namespace alpa

#endif  // SRC_MODELS_MOE_H_
