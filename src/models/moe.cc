#include "src/models/moe.h"

#include <map>

#include "src/graph/backward.h"
#include "src/support/logging.h"
#include "src/support/strings.h"

namespace alpa {

int64_t MoeConfig::expert_capacity() const {
  const int64_t tokens = microbatch * seq_len;
  int64_t capacity =
      static_cast<int64_t>(static_cast<double>(tokens) / num_experts * capacity_factor);
  // Keep capacities divisible by typical mesh dims.
  capacity = std::max<int64_t>(capacity - capacity % 8, 8);
  return capacity;
}

int64_t MoeConfig::NumParams() const {
  const int64_t h = hidden;
  const int64_t attn = 4 * h * h;
  const int64_t dense_mlp = 2 * h * ffn_dim();
  const int64_t moe_mlp = num_experts * 2 * h * ffn_dim() + h * num_experts /*gate*/;
  const int64_t moe_layers = num_layers / 2;
  const int64_t dense_layers = num_layers - moe_layers;
  return num_layers * attn + dense_layers * dense_mlp + moe_layers * moe_mlp + vocab * h +
         seq_len * h + vocab * h;
}

namespace {

int AddAttention(Graph& graph, const MoeConfig& config, int x, int layer) {
  const int64_t b = config.microbatch;
  const int64_t s = config.seq_len;
  const int64_t m = config.hidden;
  const int64_t h = config.num_heads;
  const int64_t d = config.head_dim();
  const DType dt = config.dtype;
  const std::string prefix = StrFormat("l%d.", layer);
  const std::map<char, int64_t> ext = {{'b', b}, {'s', s}, {'t', s}, {'m', m}, {'h', h}, {'d', d}};

  auto einsum = [&](const std::string& name, const std::string& out,
                    std::vector<std::string> operands, std::vector<int> args) {
    EinsumSpec spec;
    spec.output = out;
    spec.operands = std::move(operands);
    spec.extents = ext;
    return graph.AddEinsum(prefix + name, spec, std::move(args), dt, layer);
  };

  const int ln = graph.AddLayerNorm(prefix + "ln1", x, layer);
  const int wq = graph.AddParameter(prefix + "wq", TensorShape({m, h, d}), dt, layer);
  const int wk = graph.AddParameter(prefix + "wk", TensorShape({m, h, d}), dt, layer);
  const int wv = graph.AddParameter(prefix + "wv", TensorShape({m, h, d}), dt, layer);
  const int q = einsum("q", "bshd", {"bsm", "mhd"}, {ln, wq});
  const int k = einsum("k", "bshd", {"bsm", "mhd"}, {ln, wk});
  const int v = einsum("v", "bshd", {"bsm", "mhd"}, {ln, wv});
  const int scores = einsum("scores", "bhst", {"bshd", "bthd"}, {q, k});
  const int probs = graph.AddSoftmax(prefix + "softmax", scores, layer);
  const int ctx = einsum("ctx", "bshd", {"bhst", "bthd"}, {probs, v});
  const int wo = graph.AddParameter(prefix + "wo", TensorShape({h, d, m}), dt, layer);
  const int attn = einsum("attn_out", "bsm", {"bshd", "hdm"}, {ctx, wo});
  return graph.AddElementwise(prefix + "residual1", {attn, x}, layer);
}

int AddDenseMlp(Graph& graph, const MoeConfig& config, int x, int layer) {
  const int64_t b = config.microbatch;
  const int64_t s = config.seq_len;
  const int64_t m = config.hidden;
  const int64_t f = config.ffn_dim();
  const DType dt = config.dtype;
  const std::string prefix = StrFormat("l%d.", layer);
  const std::map<char, int64_t> ext = {{'b', b}, {'s', s}, {'m', m}, {'f', f}};

  const int ln = graph.AddLayerNorm(prefix + "ln2", x, layer);
  const int w1 = graph.AddParameter(prefix + "w_in", TensorShape({m, f}), dt, layer);
  EinsumSpec in_spec{"bsf", {"bsm", "mf"}, ext};
  const int h1 = graph.AddEinsum(prefix + "mlp_in", in_spec, {ln, w1}, dt, layer);
  const int gelu = graph.AddElementwise(prefix + "gelu", {h1}, layer);
  const int w2 = graph.AddParameter(prefix + "w_out", TensorShape({f, m}), dt, layer);
  EinsumSpec out_spec{"bsm", {"bsf", "fm"}, ext};
  const int h2 = graph.AddEinsum(prefix + "mlp_out", out_spec, {gelu, w2}, dt, layer);
  return graph.AddElementwise(prefix + "residual2", {h2, x}, layer);
}

int AddMoeMlp(Graph& graph, const MoeConfig& config, int x, int layer) {
  const int64_t b = config.microbatch;
  const int64_t s = config.seq_len;
  const int64_t m = config.hidden;
  const int64_t f = config.ffn_dim();
  const int64_t e = config.num_experts;
  const int64_t c = config.expert_capacity();
  const DType dt = config.dtype;
  const std::string prefix = StrFormat("l%d.", layer);

  const int ln = graph.AddLayerNorm(prefix + "ln2", x, layer);
  // Gate: [b,s,m] x [m,e] -> [b,s,e] (small; drives routing decisions).
  const int wg = graph.AddParameter(prefix + "w_gate", TensorShape({m, e}), dt, layer);
  EinsumSpec gate_spec{"bse", {"bsm", "me"}, {{'b', b}, {'s', s}, {'m', m}, {'e', e}}};
  const int gate = graph.AddEinsum(prefix + "gate", gate_spec, {ln, wg}, dt, layer);
  const int gate_probs = graph.AddSoftmax(prefix + "gate_softmax", gate, layer);
  (void)gate_probs;  // Routing probabilities; the cost model needs only shapes.

  const int dispatched = graph.AddMoeDispatch(prefix + "dispatch", ln, e, c, layer);
  // Expert FFN: batched over experts.
  const std::map<char, int64_t> ext = {{'e', e}, {'c', c}, {'m', m}, {'f', f}};
  const int w1 = graph.AddParameter(prefix + "w_expert_in", TensorShape({e, m, f}), dt, layer);
  EinsumSpec in_spec{"ecf", {"ecm", "emf"}, ext};
  const int h1 = graph.AddEinsum(prefix + "expert_in", in_spec, {dispatched, w1}, dt, layer);
  const int gelu = graph.AddElementwise(prefix + "expert_gelu", {h1}, layer);
  const int w2 = graph.AddParameter(prefix + "w_expert_out", TensorShape({e, f, m}), dt, layer);
  EinsumSpec out_spec{"ecm", {"ecf", "efm"}, ext};
  const int h2 = graph.AddEinsum(prefix + "expert_out", out_spec, {gelu, w2}, dt, layer);
  const int combined =
      graph.AddMoeCombine(prefix + "combine", h2, TensorShape({b, s, m}), layer);
  return graph.AddElementwise(prefix + "residual2", {combined, x}, layer);
}

}  // namespace

Graph BuildMoe(const MoeConfig& config) {
  ALPA_CHECK_EQ(config.hidden % config.num_heads, 0);
  Graph graph;
  const int64_t b = config.microbatch;
  const int64_t s = config.seq_len;
  const int64_t m = config.hidden;
  const int64_t v = config.vocab;
  const DType dt = config.dtype;
  const int last_layer = static_cast<int>(config.num_layers) - 1;

  const int ids = graph.AddInput("ids", TensorShape({b, s}), DType::kI32, 0);
  const int labels = graph.AddInput("labels", TensorShape({b, s}), DType::kI32, last_layer);
  const int table = graph.AddParameter("embed_table", TensorShape({v, m}), dt, 0);
  int x = graph.AddEmbedding("embed", ids, table, 0);
  const int pos = graph.AddParameter("pos_embed", TensorShape({s, m}), dt, 0);
  x = graph.AddElementwise("add_pos", {x, pos}, 0);

  for (int layer = 0; layer < static_cast<int>(config.num_layers); ++layer) {
    x = AddAttention(graph, config, x, layer);
    // GShard: MoE replaces the MLP of every second block.
    if (layer % 2 == 1) {
      x = AddMoeMlp(graph, config, x, layer);
    } else {
      x = AddDenseMlp(graph, config, x, layer);
    }
  }

  const int ln_f = graph.AddLayerNorm("ln_f", x, last_layer);
  const int head = graph.AddParameter("lm_head", TensorShape({m, v}), dt, last_layer);
  EinsumSpec logits_spec{"bsv", {"bsm", "mv"}, {{'b', b}, {'s', s}, {'m', m}, {'v', v}}};
  const int logits = graph.AddEinsum("logits", logits_spec, {ln_f, head}, dt, last_layer);
  graph.AddLoss("xent", {logits, labels}, last_layer);

  if (config.build_backward) {
    BuildTrainingGraph(graph);
  }
  graph.Validate();
  return graph;
}

std::vector<MoeBenchmarkCase> MoePaperCases() {
  // Table 6: hidden, layers, heads, experts, #gpus.
  struct Row {
    const char* name;
    int64_t hidden;
    int64_t layers;
    int64_t heads;
    int64_t experts;
    int gpus;
  };
  const Row rows[] = {
      {"MoE-380M", 768, 8, 16, 8, 1},    {"MoE-1.3B", 768, 16, 16, 16, 4},
      {"MoE-2.4B", 1024, 16, 16, 16, 8}, {"MoE-10B", 1536, 16, 16, 32, 16},
      {"MoE-27B", 2048, 16, 32, 48, 32}, {"MoE-70B", 2048, 32, 32, 64, 64},
  };
  std::vector<MoeBenchmarkCase> cases;
  for (const Row& row : rows) {
    MoeBenchmarkCase c;
    c.name = row.name;
    c.config.hidden = row.hidden;
    c.config.num_layers = row.layers;
    c.config.num_heads = row.heads;
    c.config.num_experts = row.experts;
    c.num_gpus = row.gpus;
    cases.push_back(std::move(c));
  }
  return cases;
}

}  // namespace alpa
