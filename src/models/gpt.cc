#include "src/models/gpt.h"

#include "src/graph/backward.h"
#include "src/support/logging.h"
#include "src/support/strings.h"

namespace alpa {

int64_t GptConfig::NumParams() const {
  const int64_t h = hidden;
  const int64_t per_layer = 4 * h * h        // q, k, v, out projections.
                            + 2 * h * ffn_dim()  // MLP.
                            + 2 * h + ffn_dim();  // Biases (attn out + mlp in/out).
  return num_layers * per_layer + vocab * h  // Token embedding.
         + seq_len * h                        // Position embedding.
         + vocab * h;                         // Untied LM head.
}

namespace {

// One transformer block; returns the output activation id.
int AddTransformerBlock(Graph& graph, const GptConfig& config, int x, int layer) {
  const int64_t b = config.microbatch;
  const int64_t s = config.seq_len;
  const int64_t m = config.hidden;
  const int64_t h = config.num_heads;
  const int64_t d = config.head_dim();
  const int64_t f = config.ffn_dim();
  const DType dt = config.dtype;
  const std::string prefix = StrFormat("l%d.", layer);

  auto einsum = [&](const std::string& name, const std::string& out,
                    std::vector<std::string> operands, std::vector<int> args,
                    std::map<char, int64_t> extents) {
    EinsumSpec spec;
    spec.output = out;
    spec.operands = std::move(operands);
    spec.extents = std::move(extents);
    return graph.AddEinsum(prefix + name, spec, std::move(args), dt, layer);
  };
  const std::map<char, int64_t> ext = {{'b', b}, {'s', s}, {'t', s}, {'m', m},
                                       {'h', h}, {'d', d}, {'f', f}, {'n', m}};

  // --- Attention ---
  const int ln1 = graph.AddLayerNorm(prefix + "ln1", x, layer);
  const int wq = graph.AddParameter(prefix + "wq", TensorShape({m, h, d}), dt, layer);
  const int wk = graph.AddParameter(prefix + "wk", TensorShape({m, h, d}), dt, layer);
  const int wv = graph.AddParameter(prefix + "wv", TensorShape({m, h, d}), dt, layer);
  const int q = einsum("q", "bshd", {"bsm", "mhd"}, {ln1, wq}, ext);
  const int k = einsum("k", "bshd", {"bsm", "mhd"}, {ln1, wk}, ext);
  const int v = einsum("v", "bshd", {"bsm", "mhd"}, {ln1, wv}, ext);
  // scores[b,h,s,t] = q[b,s,h,d] . k[b,t,h,d]
  const int scores = einsum("scores", "bhst", {"bshd", "bthd"}, {q, k}, ext);
  const int probs = graph.AddSoftmax(prefix + "softmax", scores, layer);
  // ctx[b,s,h,d] = probs[b,h,s,t] . v[b,t,h,d]
  const int ctx = einsum("ctx", "bshd", {"bhst", "bthd"}, {probs, v}, ext);
  const int wo = graph.AddParameter(prefix + "wo", TensorShape({h, d, m}), dt, layer);
  const int attn = einsum("attn_out", "bsm", {"bshd", "hdm"}, {ctx, wo}, ext);
  const int bo = graph.AddParameter(prefix + "bo", TensorShape({m}), dt, layer);
  const int attn_bias = graph.AddElementwise(prefix + "attn_bias", {attn, bo}, layer);
  const int res1 = graph.AddElementwise(prefix + "residual1", {attn_bias, x}, layer);

  // --- MLP ---
  const int ln2 = graph.AddLayerNorm(prefix + "ln2", res1, layer);
  const int w1 = graph.AddParameter(prefix + "w_in", TensorShape({m, f}), dt, layer);
  const int h1 = einsum("mlp_in", "bsf", {"bsm", "mf"}, {ln2, w1}, ext);
  const int b1 = graph.AddParameter(prefix + "b_in", TensorShape({f}), dt, layer);
  const int h1b = graph.AddElementwise(prefix + "mlp_bias1", {h1, b1}, layer);
  const int gelu = graph.AddElementwise(prefix + "gelu", {h1b}, layer);
  const int w2 = graph.AddParameter(prefix + "w_out", TensorShape({f, m}), dt, layer);
  const int h2 = einsum("mlp_out", "bsm", {"bsf", "fm"}, {gelu, w2}, ext);
  const int b2 = graph.AddParameter(prefix + "b_out", TensorShape({m}), dt, layer);
  const int h2b = graph.AddElementwise(prefix + "mlp_bias2", {h2, b2}, layer);
  return graph.AddElementwise(prefix + "residual2", {h2b, res1}, layer);
}

}  // namespace

Graph BuildGpt(const GptConfig& config) {
  ALPA_CHECK_EQ(config.hidden % config.num_heads, 0);
  Graph graph;
  const int64_t b = config.microbatch;
  const int64_t s = config.seq_len;
  const int64_t m = config.hidden;
  const int64_t v = config.vocab;
  const DType dt = config.dtype;
  const int last_layer = static_cast<int>(config.num_layers) - 1;

  const int ids = graph.AddInput("ids", TensorShape({b, s}), DType::kI32, 0);
  const int labels = graph.AddInput("labels", TensorShape({b, s}), DType::kI32, last_layer);
  const int table = graph.AddParameter("embed_table", TensorShape({v, m}), dt, 0);
  int x = graph.AddEmbedding("embed", ids, table, 0);
  const int pos = graph.AddParameter("pos_embed", TensorShape({s, m}), dt, 0);
  x = graph.AddElementwise("add_pos", {x, pos}, 0);

  for (int layer = 0; layer < static_cast<int>(config.num_layers); ++layer) {
    x = AddTransformerBlock(graph, config, x, layer);
  }

  const int ln_f = graph.AddLayerNorm("ln_f", x, last_layer);
  const int head = graph.AddParameter("lm_head", TensorShape({m, v}), dt, last_layer);
  EinsumSpec logits_spec;
  logits_spec.output = "bsv";
  logits_spec.operands = {"bsm", "mv"};
  logits_spec.extents = {{'b', b}, {'s', s}, {'m', m}, {'v', v}};
  const int logits = graph.AddEinsum("logits", logits_spec, {ln_f, head}, dt, last_layer);
  graph.AddLoss("xent", {logits, labels}, last_layer);

  if (config.build_backward) {
    BuildTrainingGraph(graph);
  }
  graph.Validate();
  return graph;
}

std::vector<GptBenchmarkCase> GptPaperCases() {
  // Table 5: #params, hidden, layers, heads, #gpus.
  struct Row {
    const char* name;
    int64_t hidden;
    int64_t layers;
    int64_t heads;
    int gpus;
  };
  const Row rows[] = {
      {"GPT-350M", 1024, 24, 16, 1}, {"GPT-1.3B", 2048, 24, 32, 4},
      {"GPT-2.6B", 2560, 32, 32, 8}, {"GPT-6.7B", 4096, 32, 32, 16},
      {"GPT-15B", 5120, 48, 32, 32}, {"GPT-39B", 8192, 48, 64, 64},
  };
  std::vector<GptBenchmarkCase> cases;
  for (const Row& row : rows) {
    GptBenchmarkCase c;
    c.name = row.name;
    c.config.hidden = row.hidden;
    c.config.num_layers = row.layers;
    c.config.num_heads = row.heads;
    c.num_gpus = row.gpus;
    cases.push_back(std::move(c));
  }
  return cases;
}

}  // namespace alpa
