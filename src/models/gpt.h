// GPT-3 style decoder-only transformer (Table 5 of the paper).
//
// Shapes follow the paper's evaluation: sequence length 1024, vocabulary
// 51200, fp16 training. The builder produces the full training graph at
// microbatch granularity; layer tags are one per transformer block (the
// embedding shares the first block's tag, the LM head the last block's).
#ifndef SRC_MODELS_GPT_H_
#define SRC_MODELS_GPT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/graph/graph.h"

namespace alpa {

struct GptConfig {
  int64_t microbatch = 8;
  int64_t seq_len = 1024;
  int64_t vocab = 51200;
  int64_t hidden = 1024;
  int64_t num_layers = 24;
  int64_t num_heads = 16;
  int64_t ffn_mult = 4;
  DType dtype = DType::kF16;
  bool build_backward = true;

  int64_t head_dim() const { return hidden / num_heads; }
  int64_t ffn_dim() const { return ffn_mult * hidden; }
  // Analytic parameter count (matches Graph::ParameterBytes / dtype size).
  int64_t NumParams() const;
};

// The six GPT-3 configurations of Table 5 (350M .. 39B), with the #GPUs the
// paper trains each on.
struct GptBenchmarkCase {
  std::string name;
  GptConfig config;
  int num_gpus = 1;
  int64_t global_batch = 1024;
};
std::vector<GptBenchmarkCase> GptPaperCases();

Graph BuildGpt(const GptConfig& config);

}  // namespace alpa

#endif  // SRC_MODELS_GPT_H_
