#include "src/models/wide_resnet.h"

#include <cmath>
#include <map>

#include "src/graph/backward.h"
#include "src/support/logging.h"
#include "src/support/strings.h"

namespace alpa {

std::vector<int> WideResNetConfig::BlocksPerStage() const {
  if (num_layers == 50) {
    return {3, 4, 6, 3};
  }
  if (num_layers == 101) {
    return {3, 4, 23, 3};
  }
  ALPA_LOG(FATAL) << "Unsupported Wide-ResNet depth " << num_layers;
  return {};
}

namespace {

constexpr int64_t kStemChannels = 64;
constexpr int64_t kStemSpatial = 112 * 112;

// Conv as einsum over the implicit im2col patch: out[n,s,f] =
// x[n,s,c] * w[k,c,f], k = kernel area. The operand's spatial extent is the
// *output* spatial extent; strides are realized by a Resize adapter.
int AddConv(Graph& graph, const std::string& name, int x, int64_t kernel_area, int64_t in_c,
            int64_t out_c, DType dt, int layer) {
  const Operator& x_op = graph.op(x);
  ALPA_CHECK_EQ(x_op.shape.rank(), 3);
  ALPA_CHECK_EQ(x_op.shape.dim(2), in_c);
  const int64_t n = x_op.shape.dim(0);
  const int64_t s = x_op.shape.dim(1);
  const int w = graph.AddParameter(name + ".w", TensorShape({kernel_area, in_c, out_c}), dt,
                                   layer);
  EinsumSpec spec{"nsf",
                  {"nsc", "kcf"},
                  {{'n', n}, {'s', s}, {'c', in_c}, {'f', out_c}, {'k', kernel_area}}};
  if (kernel_area > 1) {
    // Partitioning the spatial axis requires halo exchange with neighbours.
    spec.halo['s'] = static_cast<int64_t>(std::lround(std::sqrt(
        static_cast<double>(kernel_area))));
  }
  return graph.AddEinsum(name, spec, {x, w}, dt, layer);
}

// One bottleneck block; `x` has spatial s_in; output has spatial s_out and
// 4*mid channels.
int AddBottleneck(Graph& graph, const WideResNetConfig& config, const std::string& prefix, int x,
                  int64_t mid, int64_t s_out, int layer) {
  const DType dt = config.dtype;
  const Operator& x_op = graph.op(x);
  const int64_t n = x_op.shape.dim(0);
  const int64_t in_c = x_op.shape.dim(2);
  const int64_t wide = mid * config.width_factor;
  const int64_t out_c = 4 * mid;

  int trunk = x;
  if (x_op.shape.dim(1) != s_out) {
    trunk = graph.AddResize(prefix + ".downsample", x, TensorShape({n, s_out, in_c}), layer);
  }
  int h = AddConv(graph, prefix + ".conv1", trunk, 1, in_c, mid, dt, layer);
  h = graph.AddElementwise(prefix + ".bn_relu1", {h}, layer);
  h = AddConv(graph, prefix + ".conv2", h, 9, mid, wide, dt, layer);
  h = graph.AddElementwise(prefix + ".bn_relu2", {h}, layer);
  h = AddConv(graph, prefix + ".conv3", h, 1, wide, out_c, dt, layer);
  h = graph.AddElementwise(prefix + ".bn3", {h}, layer);

  int skip = trunk;
  if (in_c != out_c) {
    skip = AddConv(graph, prefix + ".proj", trunk, 1, in_c, out_c, dt, layer);
  }
  const int sum = graph.AddElementwise(prefix + ".residual", {h, skip}, layer);
  return graph.AddElementwise(prefix + ".relu_out", {sum}, layer);
}

}  // namespace

int64_t WideResNetConfig::NumParams() const {
  int64_t params = 49 * 3 * kStemChannels;  // Stem 7x7 conv.
  int64_t in_c = kStemChannels;
  const std::vector<int> blocks = BlocksPerStage();
  for (size_t stage = 0; stage < blocks.size(); ++stage) {
    const int64_t mid = base_channels << stage;
    const int64_t wide = mid * width_factor;
    const int64_t out_c = 4 * mid;
    for (int b = 0; b < blocks[stage]; ++b) {
      params += in_c * mid + 9 * mid * wide + wide * out_c;
      if (in_c != out_c) {
        params += in_c * out_c;
      }
      in_c = out_c;
    }
  }
  params += in_c * num_classes;
  return params;
}

Graph BuildWideResNet(const WideResNetConfig& config) {
  Graph graph;
  const int64_t n = config.microbatch;
  const DType dt = config.dtype;

  // The image input is declared at the stem conv's output spatial extent
  // (the 7x7/stride-2 stem is folded into the first einsum).
  const int image = graph.AddInput("image", TensorShape({n, kStemSpatial, 3}), dt, 0);
  const int labels = graph.AddInput("labels", TensorShape({n, 1}), DType::kI32, 0);
  int x = AddConv(graph, "stem", image, 49, 3, kStemChannels, dt, 0);
  x = graph.AddElementwise("stem.bn_relu", {x}, 0);
  // Max-pool stride 2.
  x = graph.AddResize("stem.pool", x, TensorShape({n, 56 * 56, kStemChannels}), 0);

  const std::vector<int> blocks = config.BlocksPerStage();
  int layer = 1;
  int64_t spatial = 56 * 56;
  for (size_t stage = 0; stage < blocks.size(); ++stage) {
    const int64_t mid = config.base_channels << stage;
    if (stage > 0) {
      spatial /= 4;  // Stride-2 at the first block of stages 2-4.
    }
    for (int b = 0; b < blocks[stage]; ++b) {
      const std::string prefix = StrFormat("s%zu.b%d", stage, b);
      x = AddBottleneck(graph, config, prefix, x, mid, spatial, layer);
      ++layer;
    }
  }

  // Global average pool folded into the classifier einsum:
  // logits[n,o] = x[n,s,c] * w[c,o] (contraction over s and c).
  const Operator& feat = graph.op(x);
  const int64_t c_last = feat.shape.dim(2);
  const int fc =
      graph.AddParameter("fc.w", TensorShape({c_last, config.num_classes}), dt, layer - 1);
  EinsumSpec spec{"no",
                  {"nsc", "co"},
                  {{'n', n}, {'s', feat.shape.dim(1)}, {'c', c_last}, {'o', config.num_classes}}};
  const int logits = graph.AddEinsum("logits", spec, {x, fc}, dt, layer - 1);
  graph.AddLoss("xent", {logits, labels}, layer - 1);

  if (config.build_backward) {
    BuildTrainingGraph(graph);
  }
  graph.Validate();
  return graph;
}

std::vector<WideResNetBenchmarkCase> WideResNetPaperCases() {
  // Table 7: #layers, base channels, width factor, #gpus.
  struct Row {
    const char* name;
    int64_t layers;
    int64_t base;
    int64_t wf;
    int gpus;
  };
  const Row rows[] = {
      {"WResNet-250M", 50, 160, 2, 1}, {"WResNet-1B", 50, 320, 2, 4},
      {"WResNet-2B", 50, 448, 2, 8},   {"WResNet-4B", 50, 640, 2, 16},
      {"WResNet-6.8B", 50, 320, 16, 32}, {"WResNet-13B", 101, 320, 16, 64},
  };
  std::vector<WideResNetBenchmarkCase> cases;
  for (const Row& row : rows) {
    WideResNetBenchmarkCase c;
    c.name = row.name;
    c.config.num_layers = row.layers;
    c.config.base_channels = row.base;
    c.config.width_factor = row.wf;
    c.num_gpus = row.gpus;
    cases.push_back(std::move(c));
  }
  return cases;
}

}  // namespace alpa
