// Speculative background re-planner.
//
// Failover latency is dominated by the recompile: a cold Parallelize() on
// the shrunk cluster takes seconds while the job sits idle. The speculator
// removes that from the critical path by enumerating the k most-likely
// NEXT cluster configurations (each alive host failing, plus announced
// joins/drains inside a lookahead window), pre-solving them on idle
// thread-pool workers, and caching the plans by ClusterSpec fingerprint —
// so when churn actually strikes, the failover plan is a cache hit by
// construction.
//
// Determinism contract: the candidate set is a pure function of (current
// cluster, announced events, now), and Fetch() after Drain() sees every
// finished presolve — so hit/miss outcomes are bit-identical across thread
// counts and reruns. Only wall-clock timings differ.
//
// Counters (process-wide, see src/support/trace.h):
//   ilp.elastic.speculations        presolves launched
//   ilp.elastic.speculative_hits    Fetch() served from the presolve cache
//   ilp.elastic.speculative_misses  Fetch() found nothing usable
//   ilp.elastic.wasted_presolves    presolved configs never fetched (gauge)
#ifndef SRC_ELASTIC_SPECULATOR_H_
#define SRC_ELASTIC_SPECULATOR_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "src/core/api.h"
#include "src/elastic/churn.h"
#include "src/support/thread_pool.h"

namespace alpa {
namespace elastic {

struct SpeculationOptions {
  // Max configurations presolved per Speculate() call.
  int k = 4;
  // Announced events further out than this are not worth presolving yet
  // (their plan would be recomputed closer to the event anyway).
  double lookahead_seconds = 86400.0;
};

struct CandidateConfig {
  ClusterSpec cluster;
  std::string reason;        // "host 2 down", "announced join", ...
  double likelihood = 0.0;   // P(this is the next config); announced events get 1.
};

// The k most-likely next configurations reachable from `current`: every
// announced event inside the lookahead window (likelihood 1), then each
// alive host failing (likelihood 1 - exp(-lookahead/MTBF)). Candidates are
// deduplicated by cluster fingerprint — on a homogeneous cluster every
// single-host failure shrinks to the SAME spec, so one presolve covers
// them all, which is exactly why speculation is cheap in the common case.
std::vector<CandidateConfig> EnumerateLikelyConfigs(const ClusterSpec& current,
                                                    const std::vector<ChurnEvent>& announced,
                                                    double now, double host_mtbf_seconds,
                                                    const SpeculationOptions& options);

class SpeculativePlanner {
 public:
  // Compiles a plan for one configuration. Invoked concurrently from pool
  // workers; must be self-contained (copy the graph internally).
  using SolveFn = std::function<StatusOr<ParallelPlan>(const ClusterSpec&)>;
  // Observes every successful presolve (e.g. the serve daemon inserts it
  // into the client-visible plan cache). Called under no internal lock.
  using PresolvedHook = std::function<void(const ClusterSpec&, const ParallelPlan&)>;

  // `pool` may be null: presolves then run inline inside Speculate() —
  // same results, no background concurrency. Not owned; must outlive the
  // planner.
  SpeculativePlanner(SolveFn solve, SpeculationOptions options, ThreadPool* pool);
  ~SpeculativePlanner();  // Drains in-flight presolves.

  SpeculativePlanner(const SpeculativePlanner&) = delete;
  SpeculativePlanner& operator=(const SpeculativePlanner&) = delete;

  void set_presolved_hook(PresolvedHook hook);

  // Launches presolves for the likely next configs (skipping any
  // fingerprint already attempted).
  void Speculate(const ClusterSpec& current, const std::vector<ChurnEvent>& announced,
                 double now, double host_mtbf_seconds);

  // Blocks until every launched presolve has finished.
  void Drain();

  // Presolve-cache lookup for the configuration the cluster actually
  // reached. Returns the plan on a hit; nullopt on a miss (never
  // speculated, still in flight, or the presolve failed). Counts the
  // hit/miss metrics. Call Drain() first for deterministic outcomes.
  std::optional<ParallelPlan> Fetch(const ClusterSpec& target);

  int64_t speculations() const;
  int64_t hits() const;
  int64_t misses() const;
  // Presolved-and-usable configs never fetched so far; also publishes the
  // ilp.elastic.wasted_presolves gauge.
  int64_t WastedPresolves() const;

 private:
  struct Entry {
    bool done = false;
    bool fetched = false;
    bool usable = false;  // done && the solve succeeded.
    ParallelPlan plan;
  };

  void Presolve(uint64_t fingerprint, ClusterSpec cluster);

  const SolveFn solve_;
  const SpeculationOptions options_;
  ThreadPool* const pool_;

  mutable std::mutex mu_;
  std::condition_variable idle_;
  int in_flight_ = 0;
  std::map<uint64_t, Entry> cache_;
  PresolvedHook hook_;
  int64_t speculations_ = 0;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
};

}  // namespace elastic
}  // namespace alpa

#endif  // SRC_ELASTIC_SPECULATOR_H_
