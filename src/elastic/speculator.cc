#include "src/elastic/speculator.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <utility>

#include "src/support/strings.h"
#include "src/support/trace.h"

namespace alpa {
namespace elastic {

namespace {

Metric* SpeculationsMetric() {
  static Metric* m = Metrics::Get("ilp.elastic.speculations");
  return m;
}
Metric* HitsMetric() {
  static Metric* m = Metrics::Get("ilp.elastic.speculative_hits");
  return m;
}
Metric* MissesMetric() {
  static Metric* m = Metrics::Get("ilp.elastic.speculative_misses");
  return m;
}
Metric* WastedMetric() {
  static Metric* m = Metrics::Get("ilp.elastic.wasted_presolves");
  return m;
}

}  // namespace

std::vector<CandidateConfig> EnumerateLikelyConfigs(const ClusterSpec& current,
                                                    const std::vector<ChurnEvent>& announced,
                                                    double now, double host_mtbf_seconds,
                                                    const SpeculationOptions& options) {
  std::vector<CandidateConfig> candidates;
  std::set<uint64_t> seen;
  seen.insert(current.Fingerprint());  // The status quo needs no presolve.
  const auto add = [&](ClusterSpec cluster, std::string reason, double likelihood) {
    const uint64_t fingerprint = cluster.Fingerprint();
    if (!seen.insert(fingerprint).second) {
      return;
    }
    candidates.push_back(CandidateConfig{std::move(cluster), std::move(reason), likelihood});
  };

  // Announced events first: they WILL happen, so they outrank any failure
  // guess. Apply each to the current spec in isolation (if several land
  // before the next replan, the later ones re-speculate from there).
  for (const ChurnEvent& event : announced) {
    if (!event.announced() || event.time < now ||
        event.time > now + options.lookahead_seconds) {
      continue;
    }
    LiveCluster live(current);
    if (live.Apply(event).ok()) {
      add(live.spec(), StrFormat("announced %s", ToString(event.kind)), 1.0);
    }
  }

  // Each alive host failing within the lookahead window. On a homogeneous
  // cluster all of these collapse to one fingerprint; mixed generations
  // yield one candidate per distinct surviving mix.
  const double p_fail =
      host_mtbf_seconds > 0.0
          ? 1.0 - std::exp(-options.lookahead_seconds / host_mtbf_seconds)
          : 0.0;
  for (int host = 0; host < current.num_hosts; ++host) {
    ChurnEvent failure;
    failure.kind = ChurnEventKind::kHostFailure;
    failure.host = host;
    LiveCluster live(current);
    if (live.Apply(failure).ok()) {
      add(live.spec(), StrFormat("host %d down", host), p_fail);
    }
  }

  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const CandidateConfig& a, const CandidateConfig& b) {
                     return a.likelihood > b.likelihood;
                   });
  if (options.k >= 0 && candidates.size() > static_cast<size_t>(options.k)) {
    candidates.resize(static_cast<size_t>(options.k));
  }
  return candidates;
}

SpeculativePlanner::SpeculativePlanner(SolveFn solve, SpeculationOptions options,
                                       ThreadPool* pool)
    : solve_(std::move(solve)), options_(options), pool_(pool) {}

SpeculativePlanner::~SpeculativePlanner() { Drain(); }

void SpeculativePlanner::set_presolved_hook(PresolvedHook hook) {
  std::lock_guard<std::mutex> lock(mu_);
  hook_ = std::move(hook);
}

void SpeculativePlanner::Speculate(const ClusterSpec& current,
                                   const std::vector<ChurnEvent>& announced, double now,
                                   double host_mtbf_seconds) {
  const std::vector<CandidateConfig> candidates =
      EnumerateLikelyConfigs(current, announced, now, host_mtbf_seconds, options_);
  for (const CandidateConfig& candidate : candidates) {
    const uint64_t fingerprint = candidate.cluster.Fingerprint();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (cache_.count(fingerprint) > 0) {
        continue;  // Already presolved (or in flight).
      }
      cache_.emplace(fingerprint, Entry{});
      ++in_flight_;
      ++speculations_;
    }
    SpeculationsMetric()->Add(1);
    if (pool_ != nullptr) {
      ClusterSpec cluster = candidate.cluster;
      pool_->Submit([this, fingerprint, cluster = std::move(cluster)]() mutable {
        Presolve(fingerprint, std::move(cluster));
      });
    } else {
      Presolve(fingerprint, candidate.cluster);
    }
  }
}

void SpeculativePlanner::Presolve(uint64_t fingerprint, ClusterSpec cluster) {
  StatusOr<ParallelPlan> plan = solve_(cluster);
  PresolvedHook hook;
  {
    std::lock_guard<std::mutex> lock(mu_);
    Entry& entry = cache_[fingerprint];
    entry.done = true;
    if (plan.ok()) {
      entry.usable = true;
      entry.plan = *plan;
      hook = hook_;
    }
    --in_flight_;
    // Notify while still holding mu_: once the lock drops with
    // in_flight_ == 0, Drain() may return and the planner be destroyed,
    // so an unlocked notify would touch a dead condvar.
    idle_.notify_all();
  }
  if (hook) {
    hook(cluster, *plan);
  }
}

void SpeculativePlanner::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock, [this] { return in_flight_ == 0; });
}

std::optional<ParallelPlan> SpeculativePlanner::Fetch(const ClusterSpec& target) {
  const uint64_t fingerprint = target.Fingerprint();
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cache_.find(fingerprint);
  if (it != cache_.end() && it->second.done && it->second.usable) {
    it->second.fetched = true;
    ++hits_;
    HitsMetric()->Add(1);
    return it->second.plan;
  }
  ++misses_;
  MissesMetric()->Add(1);
  return std::nullopt;
}

int64_t SpeculativePlanner::speculations() const {
  std::lock_guard<std::mutex> lock(mu_);
  return speculations_;
}

int64_t SpeculativePlanner::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

int64_t SpeculativePlanner::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

int64_t SpeculativePlanner::WastedPresolves() const {
  int64_t wasted = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [fingerprint, entry] : cache_) {
      if (entry.done && entry.usable && !entry.fetched) {
        ++wasted;
      }
    }
  }
  WastedMetric()->Set(wasted);
  return wasted;
}

}  // namespace elastic
}  // namespace alpa
