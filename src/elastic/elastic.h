// The elastic runtime: a continuous replan/execute loop under churn.
//
// One-shot compilation (Parallelize) and one-shot repair (RepairPlan)
// answer "what plan fits THIS cluster". The elastic loop answers the
// production question: over a horizon of failures, joins, and drains, how
// much useful work does the job complete? It replays a deterministic churn
// stream (churn.h) against a live cluster, replans at every mutation —
// optionally through the speculative presolve cache (speculator.h) — and
// accounts downtime and goodput per epoch.
//
// Downtime is MODELED with deterministic constants chosen by the (equally
// deterministic) warm/cold policy, so goodput totals are bit-identical
// across thread counts and reruns under a fixed seed; measured wall-clock
// compile/failover times are reported alongside but excluded from the
// determinism fingerprint.
#ifndef SRC_ELASTIC_ELASTIC_H_
#define SRC_ELASTIC_ELASTIC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/api.h"
#include "src/elastic/churn.h"
#include "src/elastic/speculator.h"

namespace alpa {
namespace elastic {

struct ElasticOptions {
  ChurnOptions churn;
  SpeculationOptions speculation;
  // true: presolve likely next configs in the background and fail over
  // from the cache. false: the reactive baseline — recompile on demand
  // (previously-visited configs still count as warm, matching a reactive
  // runtime that keeps its old plans).
  bool speculative = true;
  // Background presolve workers. 0/1 = inline presolves (still the same
  // results; the thread count must never change any number).
  int threads = 0;

  // --- Modeled downtime components (seconds), all deterministic. ---
  // Failures only: heartbeat detection + checkpoint restore.
  double detection_seconds = 1.0;
  double checkpoint_restore_seconds = 30.0;
  // Plan switch when the new config's plan is already solved (speculative
  // hit, or a config this run solved before).
  double warm_replan_seconds = 0.5;
  // Full recompile sitting in the failover critical path.
  double cold_replan_seconds = 30.0;
};

// One planning epoch: the interval between two cluster mutations.
struct ElasticEpoch {
  double start_seconds = 0.0;
  double end_seconds = 0.0;
  std::string trigger;  // "start", "failure host 2", "announced join", ...
  int num_hosts = 0;
  bool feasible = true;
  bool warm = false;      // Plan served without a critical-path recompile.
  bool announced = false; // Planned event: no detection/restore charge.
  double downtime_seconds = 0.0;  // Modeled, charged at epoch start.
  double pflops = 0.0;            // Simulated throughput of the epoch's plan.
  double goodput_pflops_seconds = 0.0;  // max(0, duration - downtime) * pflops.
  uint64_t cluster_fingerprint = 0;
  // Measured wall times — reporting only, excluded from the fingerprint.
  double failover_wall_seconds = 0.0;
};

struct ElasticRunResult {
  std::vector<ElasticEpoch> epochs;
  double horizon_seconds = 0.0;
  double total_downtime_seconds = 0.0;
  double total_goodput_pflops_seconds = 0.0;
  double uptime_fraction = 1.0;
  int64_t events_applied = 0;
  int64_t events_skipped = 0;  // Inapplicable events (e.g. drain below min).
  // Speculation accounting (all zero for the reactive baseline).
  int64_t speculations = 0;
  int64_t speculative_hits = 0;
  int64_t speculative_misses = 0;
  int64_t wasted_presolves = 0;

  // FNV-1a digest of every deterministic field (epoch times, triggers,
  // warm/cold decisions, downtime, pflops, goodput, fingerprints, and the
  // speculation counters). Bit-identical across thread counts and reruns
  // for a fixed seed; wall-clock fields are excluded.
  uint64_t DeterminismFingerprint() const;

  std::string ToString() const;
};

// Runs the full loop: sample the churn stream, compile the initial plan,
// then for every applicable event mutate the cluster, replan (through the
// speculator when enabled), simulate, and account goodput. Errors only on
// a broken INITIAL configuration; mid-run infeasible configs become
// zero-goodput epochs (the cluster is down until the next event).
StatusOr<ElasticRunResult> RunElasticLoop(const Graph& graph, const ClusterSpec& initial,
                                          const ParallelizeOptions& options,
                                          const ElasticOptions& elastic);

}  // namespace elastic
}  // namespace alpa

#endif  // SRC_ELASTIC_ELASTIC_H_
