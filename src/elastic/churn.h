// Deterministic churn event stream for the elastic runtime.
//
// The paper assumes a static, healthy cluster for the lifetime of a job;
// a production service sees hosts fail (Poisson, at a per-host MTBF),
// new hosts join (announced capacity), and hosts drain (announced
// maintenance). The churn engine turns those into a single deterministic,
// time-sorted event stream: the same (initial cluster, options) pair
// always yields the same stream, bit for bit, which is what makes the
// elastic loop's goodput accounting reproducible across reruns and thread
// counts.
#ifndef SRC_ELASTIC_CHURN_H_
#define SRC_ELASTIC_CHURN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/mesh/cluster_spec.h"
#include "src/support/status.h"

namespace alpa {
namespace elastic {

enum class ChurnEventKind {
  kHostFailure = 0,  // Unannounced permanent loss of one host.
  kHostJoin = 1,     // Announced capacity add (one host of `device`).
  kHostDrain = 2,    // Announced removal (maintenance) of one host.
};

const char* ToString(ChurnEventKind kind);

struct ChurnEvent {
  double time = 0.0;  // Simulated seconds from run start.
  ChurnEventKind kind = ChurnEventKind::kHostFailure;
  // Failure/drain target: the host index AT EVENT TIME (indices shift as
  // earlier events remove hosts).
  int host = -1;
  // kHostJoin only: the generation of the joining host.
  DeviceSpec device;

  // Joins and drains are announced in advance (the speculative re-planner
  // may presolve them); failures never are.
  bool announced() const { return kind != ChurnEventKind::kHostFailure; }

  std::string ToString() const;
};

struct ChurnOptions {
  // Length of the simulated run. The default is the benchmark's "one week
  // of production churn".
  double horizon_seconds = 7 * 86400.0;
  // Per-host mean time between permanent failures; the cluster-wide
  // failure process is Poisson with rate (alive hosts / MTBF). <= 0
  // disables sampled failures (only `scheduled` events fire).
  double host_mtbf_seconds = 2.5 * 86400.0;
  // Failures that would leave fewer than this many hosts are dropped from
  // the stream (a dead cluster has nothing left to plan for).
  int min_hosts = 1;
  uint64_t seed = 0x5eedULL;
  // Announced joins/drains, merged into the sampled failures by time.
  std::vector<ChurnEvent> scheduled;
};

// Samples the merged event stream over `options.horizon_seconds`:
// exponential inter-arrival failures at the current alive-host count's
// aggregate rate (the failing host uniform over the alive hosts), merged
// in time order with the scheduled events. Purely a function of
// (initial, options) — no wall clock, no global state.
std::vector<ChurnEvent> SampleChurnEvents(const ClusterSpec& initial,
                                          const ChurnOptions& options);

// A ClusterSpec under mutation by churn events.
class LiveCluster {
 public:
  explicit LiveCluster(ClusterSpec spec);

  const ClusterSpec& spec() const { return spec_; }

  // Applies one event, mutating the spec ONLY on success. Failures/drains
  // drop host `event.host` (per-host generation overrides shift down);
  // joins append one host of `event.device`. Errors: kInvalidArgument
  // (host out of range), kInfeasible (removal would leave zero hosts).
  Status Apply(const ChurnEvent& event);

 private:
  ClusterSpec spec_;
};

}  // namespace elastic
}  // namespace alpa

#endif  // SRC_ELASTIC_CHURN_H_
