#include "src/elastic/churn.h"

#include <algorithm>
#include <cmath>

#include "src/support/logging.h"
#include "src/support/rng.h"
#include "src/support/strings.h"

namespace alpa {
namespace elastic {

const char* ToString(ChurnEventKind kind) {
  switch (kind) {
    case ChurnEventKind::kHostFailure:
      return "failure";
    case ChurnEventKind::kHostJoin:
      return "join";
    case ChurnEventKind::kHostDrain:
      return "drain";
  }
  return "unknown";
}

std::string ChurnEvent::ToString() const {
  if (kind == ChurnEventKind::kHostJoin) {
    return StrFormat("%s@%s", elastic::ToString(kind), HumanSeconds(time).c_str());
  }
  return StrFormat("%s host %d @%s", elastic::ToString(kind), host,
                   HumanSeconds(time).c_str());
}

std::vector<ChurnEvent> SampleChurnEvents(const ClusterSpec& initial,
                                          const ChurnOptions& options) {
  std::vector<ChurnEvent> scheduled = options.scheduled;
  std::stable_sort(scheduled.begin(), scheduled.end(),
                   [](const ChurnEvent& a, const ChurnEvent& b) { return a.time < b.time; });

  std::vector<ChurnEvent> events;
  Rng rng(options.seed);
  int alive = initial.num_hosts;
  double now = 0.0;
  size_t next_scheduled = 0;
  // Walk simulated time: at each step the next event is either the next
  // scheduled join/drain or the next sampled failure, whichever is
  // earlier. The failure process is re-sampled from the CURRENT alive
  // count (rate alive/MTBF), so scale-downs slow the failure clock and
  // joins speed it up, as they would in production.
  while (now < options.horizon_seconds) {
    double next_failure = options.horizon_seconds + 1.0;
    if (options.host_mtbf_seconds > 0.0 && alive > options.min_hosts) {
      const double rate = static_cast<double>(alive) / options.host_mtbf_seconds;
      next_failure = now - std::log(1.0 - rng.NextDouble()) / rate;
    }
    const bool have_scheduled = next_scheduled < scheduled.size() &&
                                scheduled[next_scheduled].time < options.horizon_seconds;
    if (have_scheduled && scheduled[next_scheduled].time <= next_failure) {
      ChurnEvent event = scheduled[next_scheduled++];
      event.time = std::max(event.time, now);
      now = event.time;
      if (event.kind == ChurnEventKind::kHostJoin) {
        ++alive;
      } else if (alive > options.min_hosts && event.host >= 0 && event.host < alive) {
        --alive;
      } else {
        continue;  // A drain below min_hosts (or of a gone host) never fires.
      }
      events.push_back(event);
      continue;
    }
    if (next_failure >= options.horizon_seconds) {
      break;
    }
    now = next_failure;
    ChurnEvent event;
    event.time = now;
    event.kind = ChurnEventKind::kHostFailure;
    event.host = static_cast<int>(rng.NextBounded(static_cast<uint64_t>(alive)));
    --alive;
    events.push_back(event);
  }
  return events;
}

LiveCluster::LiveCluster(ClusterSpec spec) : spec_(std::move(spec)) {
  ALPA_CHECK_GE(spec_.num_hosts, 1);
}

Status LiveCluster::Apply(const ChurnEvent& event) {
  switch (event.kind) {
    case ChurnEventKind::kHostFailure:
    case ChurnEventKind::kHostDrain: {
      if (event.host < 0 || event.host >= spec_.num_hosts) {
        return Status::InvalidArgument(
            StrFormat("churn event targets host %d of a %d-host cluster", event.host,
                      spec_.num_hosts));
      }
      if (spec_.num_hosts == 1) {
        return Status::Infeasible("removing the last host leaves nothing to plan for");
      }
      spec_.num_hosts -= 1;
      if (!spec_.host_devices.empty()) {
        spec_.host_devices.erase(spec_.host_devices.begin() + event.host);
      }
      return Status::Ok();
    }
    case ChurnEventKind::kHostJoin: {
      // A join of the reference generation keeps a homogeneous cluster
      // homogeneous; any other generation forces the per-host overlay.
      if (spec_.host_devices.empty() && !(event.device == spec_.device)) {
        spec_.host_devices.assign(static_cast<size_t>(spec_.num_hosts), spec_.device);
      }
      spec_.num_hosts += 1;
      if (!spec_.host_devices.empty()) {
        spec_.host_devices.push_back(event.device);
      }
      return Status::Ok();
    }
  }
  return Status::InvalidArgument("unknown churn event kind");
}

}  // namespace elastic
}  // namespace alpa
