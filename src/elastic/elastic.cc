#include "src/elastic/elastic.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <memory>
#include <set>
#include <utility>

#include "src/support/logging.h"
#include "src/support/strings.h"
#include "src/support/thread_pool.h"
#include "src/support/trace.h"

namespace alpa {
namespace elastic {

namespace {

double WallSeconds() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Simulated pflops of a plan; 0 when the plan cannot run (OOM etc.) —
// a down cluster produces no goodput but the loop keeps going.
double SimulatedPflops(const ParallelPlan& plan, const Graph& graph,
                       const ClusterSpec& cluster) {
  const StatusOr<ExecutionStats> stats = Simulate(plan, graph, cluster);
  return stats.ok() ? stats->pflops : 0.0;
}

}  // namespace

StatusOr<ElasticRunResult> RunElasticLoop(const Graph& graph, const ClusterSpec& initial,
                                          const ParallelizeOptions& options,
                                          const ElasticOptions& elastic) {
  TraceSpan span("elastic_loop");
  ElasticRunResult result;
  result.horizon_seconds = elastic.churn.horizon_seconds;
  if (result.horizon_seconds <= 0.0) {
    return Status::InvalidArgument("churn horizon must be positive");
  }

  // Each solve copies the graph (Parallelize mutates layer tags), so
  // concurrent presolves never share mutable state.
  const SpeculativePlanner::SolveFn solve = [&graph,
                                             options](const ClusterSpec& cluster)
      -> StatusOr<ParallelPlan> {
    Graph copy = graph;
    return Parallelize(copy, cluster, options);
  };

  const std::vector<ChurnEvent> events = SampleChurnEvents(initial, elastic.churn);

  // Pool before planner: the planner's destructor drains its presolves
  // while the pool is still alive.
  std::unique_ptr<ThreadPool> pool;
  if (elastic.speculative && elastic.threads > 1) {
    pool = std::make_unique<ThreadPool>(elastic.threads);
  }
  std::unique_ptr<SpeculativePlanner> planner;
  if (elastic.speculative) {
    planner = std::make_unique<SpeculativePlanner>(solve, elastic.speculation, pool.get());
  }

  // Configs compiled at least once this run; revisits are warm in BOTH
  // modes (a reactive runtime also keeps the plans it already paid for).
  std::set<uint64_t> solved;

  LiveCluster live(initial);
  const double startup_wall = WallSeconds();
  StatusOr<ParallelPlan> plan = solve(live.spec());
  if (!plan.ok()) {
    return plan.status();  // A broken initial config is a caller error.
  }

  ElasticEpoch epoch;
  epoch.start_seconds = 0.0;
  epoch.trigger = "start";
  epoch.num_hosts = live.spec().num_hosts;
  epoch.warm = false;
  epoch.downtime_seconds = 0.0;  // Startup compile is not downtime.
  // The truly-cold compile reference (reported, never fingerprinted):
  // later "cold" replans ride the warm process-wide ILP memo, so this is
  // what a from-scratch failover compile would actually cost.
  epoch.failover_wall_seconds = WallSeconds() - startup_wall;
  epoch.cluster_fingerprint = live.spec().Fingerprint();
  epoch.pflops = SimulatedPflops(*plan, graph, live.spec());
  solved.insert(epoch.cluster_fingerprint);
  if (planner != nullptr) {
    planner->Speculate(live.spec(), elastic.churn.scheduled, 0.0,
                       elastic.churn.host_mtbf_seconds);
  }

  const auto close_epoch = [&](double end) {
    epoch.end_seconds = end;
    const double duration = std::max(0.0, end - epoch.start_seconds);
    const double productive = std::max(0.0, duration - epoch.downtime_seconds);
    epoch.goodput_pflops_seconds = productive * epoch.pflops;
    result.total_downtime_seconds += std::min(epoch.downtime_seconds, duration);
    result.total_goodput_pflops_seconds += epoch.goodput_pflops_seconds;
    result.epochs.push_back(epoch);
  };

  for (const ChurnEvent& event : events) {
    if (event.time >= result.horizon_seconds) {
      break;
    }
    {
      const Status applied = live.Apply(event);  // Mutates only on success.
      if (!applied.ok()) {
        ++result.events_skipped;
        continue;
      }
    }
    close_epoch(event.time);
    ++result.events_applied;

    // --- Failover: fetch the new config's plan, warm or cold. ---
    const uint64_t fingerprint = live.spec().Fingerprint();
    bool warm = solved.count(fingerprint) > 0;
    const double wall_start = WallSeconds();
    StatusOr<ParallelPlan> next = Status::Infeasible("no plan yet");
    if (planner != nullptr) {
      planner->Drain();  // Deterministic hit/miss: every presolve finished.
      if (auto hit = planner->Fetch(live.spec())) {
        warm = true;
        next = std::move(*hit);
      }
    }
    if (!next.ok()) {
      next = solve(live.spec());
    }
    const double failover_wall = WallSeconds() - wall_start;

    epoch = ElasticEpoch{};
    epoch.start_seconds = event.time;
    epoch.trigger = event.kind == ChurnEventKind::kHostJoin
                        ? StrFormat("announced %s", ToString(event.kind))
                        : StrFormat("%s host %d", ToString(event.kind), event.host);
    epoch.num_hosts = live.spec().num_hosts;
    epoch.warm = warm;
    epoch.announced = event.announced();
    epoch.cluster_fingerprint = fingerprint;
    epoch.failover_wall_seconds = failover_wall;
    // Planned events skip detection and restore: the job checkpoints at
    // the drain boundary and the old plan runs until the switch.
    epoch.downtime_seconds =
        (event.announced() ? 0.0
                           : elastic.detection_seconds + elastic.checkpoint_restore_seconds) +
        (warm ? elastic.warm_replan_seconds : elastic.cold_replan_seconds);
    if (next.ok()) {
      solved.insert(fingerprint);
      epoch.pflops = SimulatedPflops(*next, graph, live.spec());
      plan = std::move(next);
    } else {
      // No feasible plan for this config: the cluster idles until the next
      // event (goodput 0), then replans from whatever comes.
      epoch.feasible = false;
      epoch.pflops = 0.0;
    }
    if (planner != nullptr) {
      planner->Speculate(live.spec(), elastic.churn.scheduled, event.time,
                         elastic.churn.host_mtbf_seconds);
    }
  }
  close_epoch(result.horizon_seconds);

  if (planner != nullptr) {
    planner->Drain();
    result.speculations = planner->speculations();
    result.speculative_hits = planner->hits();
    result.speculative_misses = planner->misses();
    result.wasted_presolves = planner->WastedPresolves();
  }
  result.uptime_fraction =
      result.horizon_seconds > 0.0
          ? 1.0 - result.total_downtime_seconds / result.horizon_seconds
          : 1.0;
  return result;
}

uint64_t ElasticRunResult::DeterminismFingerprint() const {
  uint64_t h = 1469598103934665603ULL;  // FNV-1a offset basis.
  const auto mix = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xffULL;
      h *= 1099511628211ULL;
    }
  };
  const auto mix_f64 = [&mix](double v) {
    uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    mix(bits);
  };
  mix_f64(horizon_seconds);
  mix_f64(total_downtime_seconds);
  mix_f64(total_goodput_pflops_seconds);
  mix(static_cast<uint64_t>(events_applied));
  mix(static_cast<uint64_t>(events_skipped));
  mix(static_cast<uint64_t>(speculations));
  mix(static_cast<uint64_t>(speculative_hits));
  mix(static_cast<uint64_t>(speculative_misses));
  mix(static_cast<uint64_t>(wasted_presolves));
  mix(static_cast<uint64_t>(epochs.size()));
  for (const ElasticEpoch& epoch : epochs) {
    mix_f64(epoch.start_seconds);
    mix_f64(epoch.end_seconds);
    for (char c : epoch.trigger) {
      mix(static_cast<uint64_t>(static_cast<unsigned char>(c)));
    }
    mix(static_cast<uint64_t>(epoch.num_hosts));
    mix(static_cast<uint64_t>((epoch.feasible ? 1 : 0) | (epoch.warm ? 2 : 0) |
                              (epoch.announced ? 4 : 0)));
    mix_f64(epoch.downtime_seconds);
    mix_f64(epoch.pflops);
    mix_f64(epoch.goodput_pflops_seconds);
    mix(epoch.cluster_fingerprint);
  }
  return h;
}

std::string ElasticRunResult::ToString() const {
  return StrFormat(
      "ElasticRun: %zu epochs over %s, goodput=%.3f pflops-days, downtime=%s "
      "(uptime %.3f%%), speculation %lld launched / %lld hit / %lld miss / %lld wasted",
      epochs.size(), HumanSeconds(horizon_seconds).c_str(),
      total_goodput_pflops_seconds / 86400.0, HumanSeconds(total_downtime_seconds).c_str(),
      uptime_fraction * 100.0, static_cast<long long>(speculations),
      static_cast<long long>(speculative_hits), static_cast<long long>(speculative_misses),
      static_cast<long long>(wasted_presolves));
}

}  // namespace elastic
}  // namespace alpa
