// Presolve for the intra-op ILP (stage 1 of the staged solver pipeline).
//
// Alpa keeps its ILP tractable by shrinking the problem before handing it
// to a solver (operator merging, cost-matrix reductions, 4.2). This module
// is that shrink step for our node/edge formulation. Three reductions run
// to a fixpoint:
//   1. Parallel-edge merging: edges sharing an endpoint pair are summed
//      into one matrix (endpoint-pair hash map, O(E)).
//   2. Dominated-choice elimination: a choice whose best case (node cost
//      plus the sum of per-edge column minima) cannot beat another choice's
//      worst case (node cost plus per-edge column maxima) can never appear
//      in an optimal assignment and is dropped. Ties keep the lower index,
//      matching the first-wins argmin convention used everywhere else.
//   3. Degree-0/1/2 folding: an isolated node is decided by argmin; a leaf
//      is folded into its neighbor by adding, per neighbor choice, the best
//      (edge + leaf) cost into the neighbor's cost vector; a degree-2 node
//      is folded into a synthesized edge between its two neighbors (series
//      reduction: entry (i, j) is the best response over the node's choices
//      given the neighbors pick i and j), summed into an existing parallel
//      edge when one exists so the graph stays simple. Each fold records
//      the argmin for reconstruction. Repeated folding solves every
//      path/tree component exactly (the Viterbi forest DP is a special
//      case) and collapses all series-parallel structure — cycles, stage
//      chains with residual skips, ladders — so only a residual core of
//      treewidth >= 3 reaches branch & bound.
//
// All reductions are exact: the core's optimal objective equals the
// original's (up to floating-point reassociation; callers re-evaluate the
// reconstructed assignment on the original problem). Everything is
// deterministic: same input, same core, same reconstruction.
#ifndef SRC_SOLVER_ILP_PRESOLVE_H_
#define SRC_SOLVER_ILP_PRESOLVE_H_

#include <cstdint>
#include <vector>

#include "src/solver/ilp_solver.h"

namespace alpa {

struct PresolveStats {
  int64_t parallel_edges_merged = 0;  // Raw edges summed into an earlier one.
  int64_t choices_eliminated = 0;     // Dominated or infeasible choices dropped.
  int64_t nodes_folded = 0;           // Degree-0/1/2 nodes decided by presolve.
  int64_t edges_folded = 0;           // Net edges removed by folding.
};

// How one folded node is decided during reconstruction.
struct FoldRecord {
  int v = -1;      // Original node id.
  int into = -1;   // Original id of the neighbor it folded into; -1 = isolated.
  int into2 = -1;  // Second neighbor for a degree-2 (series) fold; -1 otherwise.
  // Leaf fold: pick[j] is v's choice when `into` ends up with original
  // choice j (-1 for j's that were already eliminated). Isolated node:
  // pick[0] is the decision.
  std::vector<int> pick;
  // Series fold: pick2[i][j] is v's choice when `into` picks original
  // choice i and `into2` picks original choice j.
  std::vector<std::vector<int>> pick2;
};

struct PresolvedProblem {
  // Residual core in compact node/choice numbering; empty when the whole
  // problem folded away. Simple graph (no parallel edges), every node has
  // degree >= 3 and >= 1 surviving choice.
  IlpProblem core;
  std::vector<int> core_nodes;         // Compact node -> original node id.
  std::vector<std::vector<int>> kept;  // Per original node: compact -> original choice.
  std::vector<FoldRecord> folds;       // In fold order.
  bool infeasible = false;             // Some node lost every choice.
  PresolveStats stats;

  // Expands a core assignment (compact choice indices, size
  // core.num_nodes()) into a full original-space assignment.
  std::vector<int> Reconstruct(const std::vector<int>& core_choice) const;
};

// Runs the reductions to a fixpoint. The input must pass Validate().
PresolvedProblem Presolve(const IlpProblem& problem);

// Order-sensitive structural fingerprint of a problem (node costs by bit
// pattern, edge endpoints and matrices). Identical problems hash equal, so
// the solver memoizes core solves on it across calls.
uint64_t IlpProblemFingerprint(const IlpProblem& problem);

}  // namespace alpa

#endif  // SRC_SOLVER_ILP_PRESOLVE_H_
