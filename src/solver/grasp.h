// GRASP (greedy randomized adaptive search procedure) over a flat ILP core
// — the constructive metaheuristic of the solver portfolio.
//
// Each restart builds a full assignment greedily with randomized choices:
// nodes are visited in a fixed order (descending degree, ties by id); each
// node's choices are conditioned on the already-assigned neighbors, a
// restricted candidate list keeps every choice within `rcl_alpha` of the
// conditioned minimum, and one entry is sampled cost-weighted from the
// list. The construction is then polished by the shared dirty-worklist ICM
// local search (flat_core.h). Restart r draws from its own SplitMix64
// stream seeded by (seed + r), so the set of constructions is a pure
// function of (core, options) — independent of the thread pool the
// restarts fan out on, of execution order, and of every other engine in
// the portfolio. The reduce keeps the best (value, restart index) pair,
// first-wins on ties, matching the deterministic-reduce discipline of the
// flat branch & bound.
#ifndef SRC_SOLVER_GRASP_H_
#define SRC_SOLVER_GRASP_H_

#include <cstdint>
#include <vector>

#include "src/solver/flat_core.h"

namespace alpa {

class ThreadPool;

struct GraspOptions {
  // Number of randomized constructions. Each runs independently (fanned
  // out over `pool` when provided) and is deterministic in its index.
  int restarts = 16;
  // Base of the per-restart SplitMix64 streams.
  uint64_t seed = 0x4752415350ULL;  // "GRASP"
  // Restricted-candidate-list width: a choice joins the list when its
  // conditioned cost is within alpha * (max - min) of the minimum.
  // 0 = pure greedy (ties still sampled), 1 = uniform over all feasible.
  double rcl_alpha = 0.3;
  // Optional pool for the restart fan-out. Results are identical with or
  // without it.
  ThreadPool* pool = nullptr;
};

struct GraspResult {
  std::vector<int> choice;  // Best polished construction (core-compact).
  double objective = kFlatLarge;  // Clamped-space value of `choice`.
  bool feasible = false;          // objective < kFlatInfeasible.
  int restarts_run = 0;
  // Arena lookups spent across all restarts (construction + ICM polish);
  // the portfolio charges these against its shared budget.
  int64_t evaluations = 0;
};

// Runs `options.restarts` randomized constructions over `f` (>= 1 node)
// and returns the best polished assignment. Deterministic.
GraspResult RunGrasp(const FlatCore& f, const GraspOptions& options);

}  // namespace alpa

#endif  // SRC_SOLVER_GRASP_H_
