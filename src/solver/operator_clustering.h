// Operator clustering DP (5.2, Eq. 5, performance optimization #2).
//
// Clusters the forward operators of a graph into L layers, minimizing the
// maximum bytes any layer receives from earlier layers, subject to each
// layer's FLOP count staying within (1 + delta) of the per-layer average.
// Ties are broken towards uniform per-layer FLOPs. Backward ops inherit the
// layer of their forward op (colocation constraint, 5.1); parameters,
// inputs and updates inherit the layer of their consumer/parameter.
#ifndef SRC_SOLVER_OPERATOR_CLUSTERING_H_
#define SRC_SOLVER_OPERATOR_CLUSTERING_H_

#include <vector>

#include "src/graph/graph.h"

namespace alpa {

enum class ClusteringMethod {
  kDpCommBalanced,  // The paper's DP (Eq. 5).
  kEqualOperator,   // Baseline: equal number of operators per layer (7.3).
};

struct ClusteringOptions {
  int num_layers = 8;
  double delta = 0.5;  // FLOP imbalance tolerance.
  ClusteringMethod method = ClusteringMethod::kDpCommBalanced;
};

struct ClusteringResult {
  bool feasible = false;
  int num_layers = 0;
  // Max bytes received by any single layer from earlier layers.
  double bottleneck_comm_bytes = 0.0;
  // For each forward compute op (in the order returned by
  // ForwardComputeOps), the assigned layer.
  std::vector<int> layer_of_forward_op;
};

// The forward compute ops of `graph` in topological (id) order, excluding
// parameters and inputs.
std::vector<int> ForwardComputeOps(const Graph& graph);

ClusteringResult ClusterOperators(const Graph& graph, const ClusteringOptions& options);

// Writes layer tags into `graph` for ALL ops based on a clustering of the
// forward compute ops: backward ops get their forward op's layer, updates
// their parameter's layer, parameters/inputs the earliest consumer's layer.
void AssignLayers(Graph& graph, const ClusteringResult& clustering);

}  // namespace alpa

#endif  // SRC_SOLVER_OPERATOR_CLUSTERING_H_
