// Flat contiguous storage for a presolved ILP core, shared by every engine
// in the solver portfolio (flat branch & bound, GRASP, simulated annealing).
//
// The core (output of Presolve) is loaded into contiguous arenas: one flat
// cost vector for all node choices and one arena holding every edge matrix
// twice (row-major from each endpoint, transpose materialized), so the hot
// loops of all three engines are linear scans with no pointer chasing or
// branchy orientation checks. Node v's choice k lives at off[v] + k in
// every per-choice array; each Arc lookup is a single
// base + self * K(peer) + peer index.
//
// Infinities are clamped to kFlatLarge on load so bound and delta
// arithmetic never mixes inf into running sums; any objective >=
// kFlatInfeasible means "no feasible assignment found". Callers re-evaluate
// returned assignments on the original (unclamped) problem.
#ifndef SRC_SOLVER_FLAT_CORE_H_
#define SRC_SOLVER_FLAT_CORE_H_

#include <cstdint>
#include <vector>

#include "src/solver/ilp_solver.h"

namespace alpa {

// Stand-in for kInfCost inside the flat arenas, and the threshold above
// which a total is reported infeasible. Real costs are simulated seconds
// (<< 1e9), so the gap is comfortable.
inline constexpr double kFlatLarge = 1e30;
inline constexpr double kFlatInfeasible = 1e29;

struct FlatCore {
  int n = 0;
  std::vector<int> off;       // n + 1.
  std::vector<double> unary;  // Clamped node costs.

  struct Arc {
    int peer = 0;
    int edge = 0;      // Index into edge_min.
    int64_t base = 0;  // Arena offset of the row-major [self][peer] block.
  };
  std::vector<int> arc_off;  // n + 1, into arcs (grouped by node).
  std::vector<Arc> arcs;
  std::vector<double> arena;
  std::vector<double> edge_min;  // Clamped global minimum per edge.

  std::vector<std::vector<int>> comps;  // Connected components, ids ascending.

  int K(int v) const { return off[static_cast<size_t>(v) + 1] - off[static_cast<size_t>(v)]; }
  int degree(int v) const {
    return arc_off[static_cast<size_t>(v) + 1] - arc_off[static_cast<size_t>(v)];
  }
  int64_t total_choices() const { return static_cast<int64_t>(unary.size()); }

  // Pairwise cost between v (choosing i) and the peer of arc a (at its
  // current choice) — the hot lookup of every engine.
  double ArcCost(const Arc& a, int i, int peer_choice) const {
    return arena[static_cast<size_t>(a.base + static_cast<int64_t>(i) * K(a.peer) + peer_choice)];
  }
};

// Loads `p` (a simple graph; parallel edges must already be merged) into
// flat storage. Deterministic.
FlatCore BuildFlatCore(const IlpProblem& p);

// Per-node argmin start (first-wins on ties, like the legacy solver).
std::vector<int> ArgminStart(const FlatCore& f);

// Iterated conditional modes on the flat arrays: sweep until no single-node
// move improves (first-wins argmin per node, bounded sweeps). A node whose
// neighbors have not moved since its last evaluation is already at its
// conditional argmin, so a dirty worklist skips it while reproducing the
// full-sweep trajectory exactly. This is the shared local-search polish:
// branch & bound applies it to every incumbent candidate and GRASP applies
// it to every randomized construction.
std::vector<int> FlatIcm(const FlatCore& f, std::vector<int> choice);

// Objective of a full assignment restricted to one component (clamped
// space; each edge counted once).
double ComponentValue(const FlatCore& f, const std::vector<int>& nodes,
                      const std::vector<int>& full);

// Objective of a full assignment over the whole core (clamped space).
double FlatValue(const FlatCore& f, const std::vector<int>& choice);

}  // namespace alpa

#endif  // SRC_SOLVER_FLAT_CORE_H_
