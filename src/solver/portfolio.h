// Anytime solver portfolio: GRASP + simulated annealing racing the flat
// branch & bound over one presolved ILP core, with a shared incumbent.
//
// The staged pipeline's exact engines (presolve folding, variable
// elimination) dispose of most cores; the ones that reach branch & bound
// are exactly the ones that sometimes exhaust the search budget with an
// unproven gap. The portfolio reserves a small, deterministic slice of
// that budget for cheap metaheuristics, but lets the exact search race
// first — on the (now common) cores it proves outright, the reserve is
// never spent and the portfolio costs exactly one extra ICM polish:
//
//   round 1  FLAT B&B  the exact search under (budget - reserve). It
//                      self-seeds with the ICM-polished argmin start and
//                      the polished caller seeds; if it proves optimality,
//                      the race is over and the remaining rounds never run.
//   round 0  SEED      (probe aborted; lazy) the same ICM-polished argmin
//                      start + polished caller seeds reduce into the
//                      shared incumbent as the metaheuristic baseline,
//                      followed by the aborted search's own best;
//   round 2  GRASP     randomized greedy constructions + ICM polish,
//                      restarts fanned out over the pool;
//   round 3  ANNEAL    simulated annealing chains seeded from the shared
//                      incumbent — which includes the aborted search's
//                      best, so the exact side hands the metaheuristics
//                      its incumbent, and the best of all rounds is
//                      returned with the search's proven lower bound.
//
// The race is synchronous: each round is a barrier whose results reduce in
// deterministic index order, the shared incumbent only advances at round
// boundaries, and each round's work is a pure function of (core, options,
// round-start incumbent). That is the same discipline the flat branch &
// bound's root-branch rounds already follow, and it makes the portfolio
// bit-identical for any thread count — an asynchronous bound handoff
// would make pruning (and therefore budget consumption, and therefore the
// returned plan) depend on scheduling. Budget charging is equally
// deterministic: the metaheuristic reserve is computed from the problem
// shape alone, never from elapsed work, and the probe's abort flag that
// gates rounds 2-3 is itself a pure function of (core, budget).
#ifndef SRC_SOLVER_PORTFOLIO_H_
#define SRC_SOLVER_PORTFOLIO_H_

#include <cstdint>
#include <vector>

#include "src/solver/flat_bnb.h"
#include "src/solver/flat_core.h"
#include "src/solver/ilp_solver.h"

namespace alpa {

class ThreadPool;

struct PortfolioOptions {
  // Total search budget in branch & bound node units, shared by all three
  // engines. The metaheuristics are charged a bounded fraction (see
  // portfolio.cc); the remainder funds the exact search.
  int64_t budget = 300'000;
  // Optional pool; every round fans out over it. Results are identical
  // with or without it.
  ThreadPool* pool = nullptr;
  // Caller-provided assignments (core-compact, full length). They join the
  // shared incumbent reduce after an ICM polish and are also handed to the
  // branch & bound, so the portfolio can never lose to a provided plan.
  std::vector<std::vector<int>> incumbents;
  // Metaheuristic sizing knobs (upper caps; the actual allocation shrinks
  // with the budget so tiny solves stay metaheuristic-free).
  int max_grasp_restarts = 24;
  int sa_chains = 4;
  int64_t max_sa_steps_per_chain = 30'000;
};

// Which engine produced the final incumbent value (the winner of the
// race). kBnb also covers the case where the search merely confirmed the
// metaheuristic incumbent was optimal but found nothing better — the
// winner is whoever's value stands at the end.
enum class PortfolioWinner { kSeed, kGrasp, kAnneal, kBnb };

struct PortfolioResult {
  std::vector<int> choice;  // Core-compact choice per node.
  double objective = kFlatLarge;
  bool feasible = false;
  bool aborted = false;  // The exact search exhausted its budget share.
  // Proven lower bound (anytime contract; see FlatSearchResult).
  double lower_bound = 0.0;
  // Expansions spent by the exact search (comparable to
  // FlatSearchResult::explored under the same budget).
  int64_t explored = 0;
  // Budget the exact search was given after metaheuristic charges.
  int64_t bnb_budget = 0;
  PortfolioWinner winner = PortfolioWinner::kSeed;
  // Round-boundary improvements of the shared incumbent.
  int incumbent_handoffs = 0;
  // Root branches the exact search pruned against the shared incumbent
  // before exploring them.
  int64_t bound_prune_events = 0;
  int grasp_restarts = 0;
  int64_t sa_steps = 0;
};

// Solves `core` (a simple graph, >= 1 node, parallel edges merged) with the
// racing portfolio. Deterministic: same core and options give the same
// result, for any thread count including none.
PortfolioResult SolvePortfolio(const IlpProblem& core, const PortfolioOptions& options);

}  // namespace alpa

#endif  // SRC_SOLVER_PORTFOLIO_H_
