#include "src/solver/stage_dp.h"

#include <algorithm>
#include <cmath>

#include "src/support/logging.h"
#include "src/support/thread_pool.h"
#include "src/support/trace.h"

namespace alpa {

namespace {

struct DpTables {
  // f[s][k][d]: min sum of stage latencies slicing layers [k, L) into s
  // stages on exactly d devices, each stage latency <= t_max and memory
  // feasible. choice packs (end_layer, shape_index).
  std::vector<double> f;
  std::vector<int> choice_end;
  std::vector<int> choice_shape;
  int num_layers = 0;
  int num_devices = 0;
  int max_stages = 0;

  size_t Index(int s, int k, int d) const {
    return (static_cast<size_t>(s) * static_cast<size_t>(num_layers + 1) +
            static_cast<size_t>(k)) *
               static_cast<size_t>(num_devices + 1) +
           static_cast<size_t>(d);
  }
};

}  // namespace

StageDpResult SolveStageDp(int num_layers, int num_microbatches, const ClusterSpec& cluster,
                           const std::vector<SubmeshShape>& shapes, const StageProfileFn& profile,
                           const StageDpOptions& options) {
  ALPA_CHECK_GT(num_layers, 0);
  ALPA_CHECK_GT(num_microbatches, 0);
  ALPA_CHECK(!shapes.empty());

  const int total_devices = cluster.num_devices();
  const double device_memory = options.device_memory_override > 0.0
                                   ? options.device_memory_override
                                   : cluster.device.memory_bytes;
  int max_stages = std::min(num_layers, total_devices);
  if (options.max_stages > 0) {
    max_stages = std::min(max_stages, options.max_stages);
  }

  StageDpResult result;

  // Cache all profiles once: they are reused across every t_max pass.
  const int num_shapes = static_cast<int>(shapes.size());
  std::vector<StageProfile> profiles(static_cast<size_t>(num_layers) *
                                     static_cast<size_t>(num_layers) *
                                     static_cast<size_t>(num_shapes));
  auto profile_index = [&](int begin, int end, int shape) {
    return (static_cast<size_t>(begin) * static_cast<size_t>(num_layers) +
            static_cast<size_t>(end)) *
               static_cast<size_t>(num_shapes) +
           static_cast<size_t>(shape);
  };
  // Effective stage cost: per-microbatch latency, the amortized share of the
  // once-per-iteration gradient sync, and a vanishing memory tiebreak that
  // prefers the memory-lean variant among equal-time ones. Candidates and
  // transitions MUST use the same formula.
  const auto effective = [num_microbatches](const StageProfile& p) {
    return p.t_intra + p.t_per_iteration / static_cast<double>(num_microbatches) +
           1e-18 * (p.weight_bytes + p.act_bytes_per_microbatch);
  };
  // Fill the profile table, optionally fanning rows out across the pool.
  // Each task writes a disjoint slice of `profiles`, so no synchronization
  // is needed beyond the ParallelFor join.
  {
    TraceSpan precompute_span("dp_profile_precompute");
    ParallelFor(options.pool, num_layers, [&](int64_t begin) {
      for (int end = static_cast<int>(begin); end < num_layers; ++end) {
        for (int shape = 0; shape < num_shapes; ++shape) {
          profiles[profile_index(static_cast<int>(begin), end, shape)] =
              profile(static_cast<int>(begin), end, shape);
        }
      }
    });
  }
  // Candidates are collected serially in index order so the t_max
  // enumeration is byte-identical to a serial build.
  std::vector<double> tmax_candidates;
  for (int begin = 0; begin < num_layers; ++begin) {
    for (int end = begin; end < num_layers; ++end) {
      for (int shape = 0; shape < num_shapes; ++shape) {
        const StageProfile& p = profiles[profile_index(begin, end, shape)];
        if (std::isfinite(p.t_intra)) {
          tmax_candidates.push_back(effective(p));
        }
      }
    }
  }
  if (tmax_candidates.empty()) {
    return result;  // No feasible stage at all.
  }
  std::sort(tmax_candidates.begin(), tmax_candidates.end());
  if (options.max_tmax_candidates > 0 &&
      static_cast<int>(tmax_candidates.size()) > options.max_tmax_candidates) {
    if (options.max_tmax_candidates == 1) {
      // Single slot: keep only the largest candidate. Any smaller threshold
      // could rule out every slicing and report a solvable problem
      // infeasible; the largest keeps exactly the unconstrained-t_max DP.
      tmax_candidates = {tmax_candidates.back()};
    } else {
      std::vector<double> sampled;
      sampled.reserve(static_cast<size_t>(options.max_tmax_candidates));
      const double step = static_cast<double>(tmax_candidates.size() - 1) /
                          (options.max_tmax_candidates - 1);
      for (int i = 0; i < options.max_tmax_candidates; ++i) {
        sampled.push_back(
            tmax_candidates[static_cast<size_t>(static_cast<double>(i) * step + 0.5)]);
      }
      tmax_candidates = std::move(sampled);
    }
  }

  DpTables dp;
  dp.num_layers = num_layers;
  dp.num_devices = total_devices;
  dp.max_stages = max_stages;
  const size_t table_size = static_cast<size_t>(max_stages + 1) *
                            static_cast<size_t>(num_layers + 1) *
                            static_cast<size_t>(total_devices + 1);
  dp.f.resize(table_size);
  dp.choice_end.resize(table_size);
  dp.choice_shape.resize(table_size);

  double last_tmax = -kInfCost;
  for (double tmax : tmax_candidates) {
    if (tmax - last_tmax < options.epsilon) {
      continue;  // Optimization #1b: skip near-duplicate thresholds.
    }
    last_tmax = tmax;
    ++result.num_tmax_tried;
    // Optimization #1a: larger t_max cannot beat the incumbent once
    // (B-1) * t_max alone exceeds it.
    if (result.feasible && (num_microbatches - 1) * tmax >= result.total_latency) {
      break;
    }

    std::fill(dp.f.begin(), dp.f.end(), kInfCost);
    // Base case: zero layers left, zero stages, zero devices.
    dp.f[dp.Index(0, num_layers, 0)] = 0.0;

    for (int k = num_layers - 1; k >= 0; --k) {
      for (int s = 1; s <= max_stages; ++s) {
        for (int end = k; end < num_layers; ++end) {
          for (int shape = 0; shape < num_shapes; ++shape) {
            const StageProfile& p = profiles[profile_index(k, end, shape)];
            const double t_eff = effective(p);
            // Epsilon tolerance pairs with the candidate skip above and
            // keeps the B*epsilon optimality bound of 5.2.
            if (!(t_eff <= tmax + options.epsilon)) {
              continue;
            }
            // The stage being placed is the s-th from the pipeline end, so
            // it keeps s in-flight microbatch activations (1F1B).
            if (p.weight_bytes + static_cast<double>(s) * p.act_bytes_per_microbatch +
                    p.work_bytes >
                device_memory) {
              continue;
            }
            const int stage_devices = shapes[static_cast<size_t>(shape)].num_devices();
            for (int d = stage_devices; d <= total_devices; ++d) {
              ++result.dp_transitions;
              const double rest = dp.f[dp.Index(s - 1, end + 1, d - stage_devices)];
              if (!std::isfinite(rest)) {
                continue;
              }
              const size_t idx = dp.Index(s, k, d);
              if (t_eff + rest < dp.f[idx]) {
                dp.f[idx] = t_eff + rest;
                dp.choice_end[idx] = end;
                dp.choice_shape[idx] = shape;
              }
            }
          }
        }
      }
    }

    // Eq. 4: min over stage counts, requiring all devices be used.
    for (int s = 1; s <= max_stages; ++s) {
      const double sum_latency = dp.f[dp.Index(s, 0, total_devices)];
      if (!std::isfinite(sum_latency)) {
        continue;
      }
      // Reconstruct to obtain the realized max stage latency (<= tmax).
      std::vector<StageAssignment> stages;
      double realized_max = 0.0;
      int k = 0;
      int d = total_devices;
      int remaining = s;
      bool ok = true;
      while (k < num_layers) {
        const size_t idx = dp.Index(remaining, k, d);
        if (!std::isfinite(dp.f[idx])) {
          ok = false;
          break;
        }
        const int end = dp.choice_end[idx];
        const int shape = dp.choice_shape[idx];
        const StageProfile& p = profiles[profile_index(k, end, shape)];
        stages.push_back(StageAssignment{k, end, shape, p.t_intra});
        realized_max = std::max(
            realized_max,
            p.t_intra + p.t_per_iteration / static_cast<double>(num_microbatches));
        d -= shapes[static_cast<size_t>(shape)].num_devices();
        k = end + 1;
        --remaining;
      }
      if (!ok || remaining != 0 || d != 0) {
        continue;
      }
      const double total =
          sum_latency + static_cast<double>(num_microbatches - 1) * realized_max;
      if (total < result.total_latency) {
        result.feasible = true;
        result.total_latency = total;
        result.stage_latency_sum = sum_latency;
        result.max_stage_latency = realized_max;
        result.stages = std::move(stages);
      }
    }
  }
  static Metric* transitions_metric = Metrics::Get("stage_dp/transitions");
  transitions_metric->Add(result.dp_transitions);
  static Metric* tmax_metric = Metrics::Get("stage_dp/tmax_candidates");
  tmax_metric->Add(result.num_tmax_tried);
  return result;
}

}  // namespace alpa
