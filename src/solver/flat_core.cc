#include "src/solver/flat_core.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace alpa {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

double Clamp(double c) { return std::isfinite(c) ? c : kFlatLarge; }

}  // namespace

FlatCore BuildFlatCore(const IlpProblem& p) {
  FlatCore f;
  f.n = p.num_nodes();
  f.off.assign(static_cast<size_t>(f.n) + 1, 0);
  for (int v = 0; v < f.n; ++v) {
    f.off[static_cast<size_t>(v) + 1] = f.off[static_cast<size_t>(v)] + p.num_choices(v);
  }
  f.unary.resize(static_cast<size_t>(f.off[static_cast<size_t>(f.n)]));
  for (int v = 0; v < f.n; ++v) {
    for (int i = 0; i < p.num_choices(v); ++i) {
      f.unary[static_cast<size_t>(f.off[static_cast<size_t>(v)] + i)] =
          Clamp(p.node_costs[static_cast<size_t>(v)][static_cast<size_t>(i)]);
    }
  }

  int64_t arena_size = 0;
  for (const IlpProblem::Edge& e : p.edges) {
    arena_size += 2LL * p.num_choices(e.u) * p.num_choices(e.v);
  }
  f.arena.resize(static_cast<size_t>(arena_size));
  f.edge_min.resize(p.edges.size());

  std::vector<std::vector<FlatCore::Arc>> by_node(static_cast<size_t>(f.n));
  int64_t pos = 0;
  for (size_t k = 0; k < p.edges.size(); ++k) {
    const IlpProblem::Edge& e = p.edges[k];
    const int ku = p.num_choices(e.u);
    const int kv = p.num_choices(e.v);
    const int64_t base_uv = pos;
    const int64_t base_vu = pos + static_cast<int64_t>(ku) * kv;
    double mn = kInf;
    for (int i = 0; i < ku; ++i) {
      for (int j = 0; j < kv; ++j) {
        const double c = Clamp(e.cost[static_cast<size_t>(i)][static_cast<size_t>(j)]);
        f.arena[static_cast<size_t>(base_uv + static_cast<int64_t>(i) * kv + j)] = c;
        f.arena[static_cast<size_t>(base_vu + static_cast<int64_t>(j) * ku + i)] = c;
        mn = std::min(mn, c);
      }
    }
    f.edge_min[k] = mn;
    by_node[static_cast<size_t>(e.u)].push_back(FlatCore::Arc{e.v, static_cast<int>(k), base_uv});
    by_node[static_cast<size_t>(e.v)].push_back(FlatCore::Arc{e.u, static_cast<int>(k), base_vu});
    pos = base_vu + static_cast<int64_t>(ku) * kv;
  }
  f.arc_off.assign(static_cast<size_t>(f.n) + 1, 0);
  for (int v = 0; v < f.n; ++v) {
    f.arc_off[static_cast<size_t>(v) + 1] =
        f.arc_off[static_cast<size_t>(v)] + static_cast<int>(by_node[static_cast<size_t>(v)].size());
    for (const FlatCore::Arc& a : by_node[static_cast<size_t>(v)]) {
      f.arcs.push_back(a);
    }
  }

  // Soft arc consistency: project each edge row's minimum into the unary
  // cost of the incident endpoint (u-side rows first, then v-side rows of
  // the residual). Every full assignment keeps its exact total — the shift
  // moves cost between tables, it never creates or destroys any — but the
  // per-node unary minima that every engine prunes with absorb cost that
  // was invisible while it lived on the edge matrices. Rows whose minimum
  // is at or above kFlatInfeasible mark the choice itself infeasible: the
  // whole row folds into the unary entry, and ScoreVar drops the choice.
  // One pass per direction reaches the fixpoint of this projection (edge
  // blocks never receive cost back from unaries).
  for (size_t k = 0; k < p.edges.size(); ++k) {
    const IlpProblem::Edge& e = p.edges[k];
    const int ku = p.num_choices(e.u);
    const int kv = p.num_choices(e.v);
    // Recover the two block bases from the arcs we just laid out.
    int64_t base_uv = -1;
    for (const FlatCore::Arc& a : by_node[static_cast<size_t>(e.u)]) {
      if (a.edge == static_cast<int>(k)) base_uv = a.base;
    }
    int64_t base_vu = -1;
    for (const FlatCore::Arc& a : by_node[static_cast<size_t>(e.v)]) {
      if (a.edge == static_cast<int>(k)) base_vu = a.base;
    }
    double* uv = f.arena.data() + base_uv;
    double* vu = f.arena.data() + base_vu;
    for (int i = 0; i < ku; ++i) {
      double mn = kInf;
      for (int j = 0; j < kv; ++j) mn = std::min(mn, uv[static_cast<int64_t>(i) * kv + j]);
      if (mn != 0.0) {
        f.unary[static_cast<size_t>(f.off[static_cast<size_t>(e.u)] + i)] += mn;
        for (int j = 0; j < kv; ++j) {
          uv[static_cast<int64_t>(i) * kv + j] -= mn;
          vu[static_cast<int64_t>(j) * ku + i] -= mn;
        }
      }
    }
    for (int j = 0; j < kv; ++j) {
      double mn = kInf;
      for (int i = 0; i < ku; ++i) mn = std::min(mn, vu[static_cast<int64_t>(j) * ku + i]);
      if (mn != 0.0) {
        f.unary[static_cast<size_t>(f.off[static_cast<size_t>(e.v)] + j)] += mn;
        for (int i = 0; i < ku; ++i) {
          vu[static_cast<int64_t>(j) * ku + i] -= mn;
          uv[static_cast<int64_t>(i) * kv + j] -= mn;
        }
      }
    }
    double mn = kInf;
    for (int64_t c = 0; c < static_cast<int64_t>(ku) * kv; ++c) mn = std::min(mn, uv[c]);
    f.edge_min[k] = mn;
  }

  // Min-sum diffusion: equalize, per node and choice, the unary cost with
  // the row minima of every incident edge block, so each local minimum
  // carries an equal share of the choice's unavoidable cost. Like the row
  // projection above this only moves cost between tables — every full
  // assignment keeps its exact total — but iterating it propagates cost
  // ACROSS edges, driving the per-node and per-edge minima toward the
  // Schlesinger LP dual value. On the frustrated communication cores that
  // defeat the plain projection (every single edge can be zero-cost, the
  // positive cost only emerges globally), this turns a bound that proves
  // nothing into one that is usually tight: budget-bound searches that
  // could not close in tens of millions of nodes close in hundreds.
  // Deterministic: fixed sweep order, early stop on the dual bound alone.
  {
    std::vector<int64_t> rev(f.arcs.size());  // Transposed block of each arc.
    for (int u = 0; u < f.n; ++u) {
      for (int a = f.arc_off[static_cast<size_t>(u)]; a < f.arc_off[static_cast<size_t>(u) + 1];
           ++a) {
        const FlatCore::Arc& arc = f.arcs[static_cast<size_t>(a)];
        for (int b = f.arc_off[static_cast<size_t>(arc.peer)];
             b < f.arc_off[static_cast<size_t>(arc.peer) + 1]; ++b) {
          if (f.arcs[static_cast<size_t>(b)].edge == arc.edge) {
            rev[static_cast<size_t>(a)] = f.arcs[static_cast<size_t>(b)].base;
          }
        }
      }
    }
    constexpr int kMaxSweeps = 64;
    std::vector<double> t, m, share, dv, applied;
    double prev_lb = -kInf;
    // Dirty worklist: a node re-equalizes only while it or a neighbor still
    // moved cost last sweep, so converged regions stop paying. Same
    // trajectory as full sweeps (an untouched node's update is a no-op).
    std::vector<char> dirty(static_cast<size_t>(f.n), 1);
    std::vector<char> next_dirty(static_cast<size_t>(f.n), 0);
    // Per-node unary minima, maintained incrementally alongside the sweeps
    // (f.edge_min is maintained the same way below), so the dual-bound
    // stall check costs O(n + E) instead of a full arena scan.
    std::vector<double> node_min(static_cast<size_t>(f.n), kInf);
    for (int u = 0; u < f.n; ++u) {
      double mn = kInf;
      for (int i = 0; i < f.K(u); ++i) {
        mn = std::min(mn, f.unary[static_cast<size_t>(f.off[static_cast<size_t>(u)] + i)]);
      }
      node_min[static_cast<size_t>(u)] = mn;
    }
    for (int sweep = 0; sweep < kMaxSweeps; ++sweep) {
      std::fill(next_dirty.begin(), next_dirty.end(), 0);
      for (int u = 0; u < f.n; ++u) {
        if (!dirty[static_cast<size_t>(u)]) continue;
        const int K = f.K(u);
        const int deg = f.degree(u);
        if (deg == 0) continue;
        const int ou = f.off[static_cast<size_t>(u)];
        t.assign(static_cast<size_t>(K), 0.0);
        m.assign(static_cast<size_t>(deg) * K, 0.0);
        for (int i = 0; i < K; ++i) t[static_cast<size_t>(i)] = f.unary[static_cast<size_t>(ou + i)];
        for (int ai = 0; ai < deg; ++ai) {
          const FlatCore::Arc& arc = f.arcs[static_cast<size_t>(f.arc_off[static_cast<size_t>(u)] + ai)];
          const int kp = f.K(arc.peer);
          for (int i = 0; i < K; ++i) {
            const double* row = f.arena.data() + arc.base + static_cast<int64_t>(i) * kp;
            double mn = kInf;
            for (int j = 0; j < kp; ++j) mn = std::min(mn, row[j]);
            m[static_cast<size_t>(ai) * K + i] = mn;
            t[static_cast<size_t>(i)] += mn;
          }
        }
        bool moved = false;
        share.assign(static_cast<size_t>(K), kInf);
        applied.assign(static_cast<size_t>(K), 0.0);
        for (int i = 0; i < K; ++i) {
          // A choice whose total already marks it infeasible is left alone:
          // spreading a kFlatLarge share would poison finite peer entries.
          if (t[static_cast<size_t>(i)] >= kFlatInfeasible) continue;
          share[static_cast<size_t>(i)] = t[static_cast<size_t>(i)] / (deg + 1);
        }
        // Arc-major update: build the per-choice delta vector for one arc,
        // then apply it to both block orientations. The primary block takes
        // it row by row; the transposed block takes the WHOLE vector along
        // each of its rows, which walks that block sequentially instead of
        // striding a column per choice — the same additions land on the
        // same cells in the same order, only the cache behavior changes.
        for (int ai = 0; ai < deg; ++ai) {
          dv.assign(static_cast<size_t>(K), 0.0);
          bool any = false;
          for (int i = 0; i < K; ++i) {
            if (share[static_cast<size_t>(i)] == kInf) continue;
            const double d = share[static_cast<size_t>(i)] - m[static_cast<size_t>(ai) * K + i];
            // Sub-relative-epsilon shifts keep ping-ponging rounding noise
            // between tables forever; leave them where they lie.
            if (std::abs(d) <= 1e-12 * (std::abs(share[static_cast<size_t>(i)]) + 1e-300)) continue;
            dv[static_cast<size_t>(i)] = d;
            applied[static_cast<size_t>(i)] += d;
            any = true;
          }
          if (!any) continue;
          moved = true;
          const FlatCore::Arc& arc =
              f.arcs[static_cast<size_t>(f.arc_off[static_cast<size_t>(u)] + ai)];
          const int kp = f.K(arc.peer);
          double* blk = f.arena.data() + arc.base;
          for (int i = 0; i < K; ++i) {
            const double d = dv[static_cast<size_t>(i)];
            if (d == 0.0) continue;
            double* row = blk + static_cast<int64_t>(i) * kp;
            for (int j = 0; j < kp; ++j) row[j] += d;
          }
          double* rblk =
              f.arena.data() + rev[static_cast<size_t>(f.arc_off[static_cast<size_t>(u)] + ai)];
          for (int j = 0; j < kp; ++j) {
            double* row = rblk + static_cast<int64_t>(j) * K;
            for (int i = 0; i < K; ++i) row[i] += dv[static_cast<size_t>(i)];
          }
          // Shifting a whole row by d moves its minimum by exactly d (the
          // stored m was copied out of the row, so m + d is bitwise the
          // same double the scan would find), which keeps edge_min exact
          // without rescanning the block.
          double em = kInf;
          for (int i = 0; i < K; ++i) {
            em = std::min(em, m[static_cast<size_t>(ai) * K + i] + dv[static_cast<size_t>(i)]);
          }
          f.edge_min[static_cast<size_t>(arc.edge)] = em;
        }
        // The unary keeps exactly what the edges did not take, so every
        // assignment's total is preserved even when tiny shifts stay put.
        for (int i = 0; i < K; ++i) {
          f.unary[static_cast<size_t>(ou + i)] -= applied[static_cast<size_t>(i)];
        }
        if (moved) {
          double nm = kInf;
          for (int i = 0; i < K; ++i) {
            nm = std::min(nm, f.unary[static_cast<size_t>(ou + i)]);
          }
          node_min[static_cast<size_t>(u)] = nm;
          next_dirty[static_cast<size_t>(u)] = 1;
          for (int a = f.arc_off[static_cast<size_t>(u)];
               a < f.arc_off[static_cast<size_t>(u) + 1]; ++a) {
            next_dirty[static_cast<size_t>(f.arcs[static_cast<size_t>(a)].peer)] = 1;
          }
        }
      }
      dirty.swap(next_dirty);
      bool any_dirty = false;
      for (int u = 0; u < f.n && !any_dirty; ++u) any_dirty = dirty[static_cast<size_t>(u)] != 0;
      if (!any_dirty) break;
      // Stall check every few sweeps, against the incrementally maintained
      // minima — O(n + E), no arena scan. A loose stop would forfeit real
      // proving power: the budget-bound search often needs the last
      // fraction of a percent of this bound to close.
      if ((sweep & 3) == 3) {
        double lb = 0.0;
        for (int u = 0; u < f.n; ++u) {
          lb += std::min(node_min[static_cast<size_t>(u)], kFlatLarge);
        }
        for (size_t k = 0; k < p.edges.size(); ++k) {
          lb += std::min(f.edge_min[k], kFlatLarge);
        }
        if (lb <= prev_lb + 1e-6 * std::abs(lb) + 1e-300) break;
        prev_lb = lb;
      }
    }
    // No refresh needed after the loop: every block update above lands its
    // new row minima on f.edge_min as it happens, so the per-edge minima
    // are exact whenever the loop exits.
  }

  // Connected components (union-find), node ids ascending within each.
  std::vector<int> parent(static_cast<size_t>(f.n));
  for (int v = 0; v < f.n; ++v) parent[static_cast<size_t>(v)] = v;
  auto find = [&](int x) {
    while (parent[static_cast<size_t>(x)] != x) {
      parent[static_cast<size_t>(x)] = parent[static_cast<size_t>(parent[static_cast<size_t>(x)])];
      x = parent[static_cast<size_t>(x)];
    }
    return x;
  };
  for (const IlpProblem::Edge& e : p.edges) {
    const int a = find(e.u);
    const int b = find(e.v);
    if (a != b) parent[static_cast<size_t>(a)] = b;
  }
  std::vector<int> comp_of(static_cast<size_t>(f.n), -1);
  for (int v = 0; v < f.n; ++v) {
    const int r = find(v);
    if (comp_of[static_cast<size_t>(r)] < 0) {
      comp_of[static_cast<size_t>(r)] = static_cast<int>(f.comps.size());
      f.comps.emplace_back();
    }
    comp_of[static_cast<size_t>(v)] = comp_of[static_cast<size_t>(r)];
    f.comps[static_cast<size_t>(comp_of[static_cast<size_t>(v)])].push_back(v);
  }
  return f;
}

std::vector<int> ArgminStart(const FlatCore& f) {
  std::vector<int> choice(static_cast<size_t>(f.n), 0);
  for (int v = 0; v < f.n; ++v) {
    const double* row = f.unary.data() + f.off[static_cast<size_t>(v)];
    int best_i = 0;
    for (int i = 1; i < f.K(v); ++i) {
      if (row[i] < row[best_i]) best_i = i;
    }
    choice[static_cast<size_t>(v)] = best_i;
  }
  return choice;
}

std::vector<int> FlatIcm(const FlatCore& f, std::vector<int> choice) {
  std::vector<char> dirty(static_cast<size_t>(f.n), 1);
  bool improved = true;
  int sweeps = 0;
  while (improved && sweeps < 50) {
    improved = false;
    ++sweeps;
    for (int v = 0; v < f.n; ++v) {
      if (!dirty[static_cast<size_t>(v)]) continue;
      dirty[static_cast<size_t>(v)] = 0;
      const double* row = f.unary.data() + f.off[static_cast<size_t>(v)];
      double best = kInf;
      int best_i = choice[static_cast<size_t>(v)];
      for (int i = 0; i < f.K(v); ++i) {
        double c = row[i];
        for (int a = f.arc_off[static_cast<size_t>(v)]; a < f.arc_off[static_cast<size_t>(v) + 1]; ++a) {
          const FlatCore::Arc& arc = f.arcs[static_cast<size_t>(a)];
          c += f.ArcCost(arc, i, choice[static_cast<size_t>(arc.peer)]);
        }
        if (c < best) {
          best = c;
          best_i = i;
        }
      }
      if (best_i != choice[static_cast<size_t>(v)]) {
        choice[static_cast<size_t>(v)] = best_i;
        improved = true;
        for (int a = f.arc_off[static_cast<size_t>(v)]; a < f.arc_off[static_cast<size_t>(v) + 1]; ++a) {
          dirty[static_cast<size_t>(f.arcs[static_cast<size_t>(a)].peer)] = 1;
        }
      }
    }
  }
  return choice;
}

double ComponentValue(const FlatCore& f, const std::vector<int>& nodes,
                      const std::vector<int>& full) {
  double total = 0.0;
  for (int v : nodes) {
    total += f.unary[static_cast<size_t>(f.off[static_cast<size_t>(v)] + full[static_cast<size_t>(v)])];
    for (int a = f.arc_off[static_cast<size_t>(v)]; a < f.arc_off[static_cast<size_t>(v) + 1]; ++a) {
      const FlatCore::Arc& arc = f.arcs[static_cast<size_t>(a)];
      if (arc.peer > v) {
        total += f.ArcCost(arc, full[static_cast<size_t>(v)], full[static_cast<size_t>(arc.peer)]);
      }
    }
  }
  return total;
}

double FlatValue(const FlatCore& f, const std::vector<int>& choice) {
  double total = 0.0;
  for (int v = 0; v < f.n; ++v) {
    total += f.unary[static_cast<size_t>(f.off[static_cast<size_t>(v)] + choice[static_cast<size_t>(v)])];
    for (int a = f.arc_off[static_cast<size_t>(v)]; a < f.arc_off[static_cast<size_t>(v) + 1]; ++a) {
      const FlatCore::Arc& arc = f.arcs[static_cast<size_t>(a)];
      if (arc.peer > v) {
        total += f.ArcCost(arc, choice[static_cast<size_t>(v)], choice[static_cast<size_t>(arc.peer)]);
      }
    }
  }
  return total;
}

}  // namespace alpa
