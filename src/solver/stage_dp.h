// Inter-operator stage-slicing dynamic program (5.2, Eqs. 2-4).
//
// Given L (clustered) forward layers, B pipeline microbatches, and the set
// of candidate submesh shapes, finds the slicing of layers into stages and
// the submesh shape per stage minimizing
//     T = sum_i t_i + (B - 1) * max_j t_j                            (Eq. 2)
// subject to submeshes exactly covering the cluster and per-stage memory
// fitting the device. The DP enumerates t_max candidates ascending with
// epsilon pruning and early termination (performance optimization #1) and
// evaluates F(s, k, d; t_max) per Eq. 3.
#ifndef SRC_SOLVER_STAGE_DP_H_
#define SRC_SOLVER_STAGE_DP_H_

#include <functional>
#include <vector>

#include "src/mesh/cluster_spec.h"
#include "src/mesh/device_mesh.h"
#include "src/solver/ilp_solver.h"  // for kInfCost

namespace alpa {

class ThreadPool;

// Cost and memory profile of executing layers [begin, end] on a submesh
// shape (already minimized over logical mesh shapes and intra-op plans by
// the caller). All byte quantities are per device.
struct StageProfile {
  double t_intra = kInfCost;            // Forward+backward latency per microbatch.
  double t_per_iteration = 0.0;         // Gradient sync + optimizer, once per iteration.
  double weight_bytes = 0.0;            // Parameters + optimizer state.
  double act_bytes_per_microbatch = 0.0;  // Stored activations for one in-flight microbatch.
  double work_bytes = 0.0;              // Transient working memory.
};

// profile(begin, end, shape_index): begin/end are inclusive layer indices;
// shape_index indexes the `shapes` vector passed to SolveStageDp.
using StageProfileFn = std::function<StageProfile(int begin, int end, int shape_index)>;

struct StageAssignment {
  int layer_begin = 0;  // Inclusive.
  int layer_end = 0;    // Inclusive.
  int shape_index = 0;
  double t_intra = 0.0;
};

struct StageDpOptions {
  double epsilon = 1e-6;  // Minimum spacing of enumerated t_max values.
  int max_stages = 0;     // 0 = no cap beyond #layers / #devices.
  // Override the per-device memory capacity used for feasibility (0 = the
  // cluster's). Benchmarks set this to infinity to let plans compile and
  // report OOM from the simulator instead (the "x" marks of Fig. 8/9).
  double device_memory_override = 0.0;
  // Subsample the sorted t_max candidates to at most this many (0 = all).
  // With subsampling the B*epsilon optimality bound of 5.2 widens to the
  // candidate spacing; 64 candidates keep the gap under 2% in practice.
  int max_tmax_candidates = 64;
  // When non-null, the (begin, end, shape) profile precompute fans out
  // across this pool, one task per `begin` row. `profile` must then be
  // thread-safe. The DP itself stays serial; candidate collection happens
  // after the parallel fill in deterministic index order, so results are
  // identical to a serial run.
  ThreadPool* pool = nullptr;
};

struct StageDpResult {
  bool feasible = false;
  double total_latency = kInfCost;  // Eq. 2 for the returned slicing.
  double stage_latency_sum = 0.0;
  double max_stage_latency = 0.0;
  std::vector<StageAssignment> stages;
  int num_tmax_tried = 0;
  int64_t dp_transitions = 0;
};

StageDpResult SolveStageDp(int num_layers, int num_microbatches, const ClusterSpec& cluster,
                           const std::vector<SubmeshShape>& shapes, const StageProfileFn& profile,
                           const StageDpOptions& options = {});

}  // namespace alpa

#endif  // SRC_SOLVER_STAGE_DP_H_
