#include "src/solver/operator_clustering.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/support/logging.h"

namespace alpa {

std::vector<int> ForwardComputeOps(const Graph& graph) {
  std::vector<int> ops;
  for (const Operator& op : graph.ops()) {
    if (op.role == OpRole::kForward && op.type != OpType::kParameter &&
        op.type != OpType::kInput) {
      ops.push_back(op.id);
    }
  }
  return ops;
}

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// C(i, k): bytes of distinct activation tensors consumed by fwd ops
// [i, k] (positions in `fwd`) but produced by fwd ops before position i.
// Parameters and raw inputs are not transferred between layers.
std::vector<std::vector<double>> ComputeBoundaryBytes(const Graph& graph,
                                                      const std::vector<int>& fwd) {
  const int k_ops = static_cast<int>(fwd.size());
  // Map op id -> position in fwd (or -1).
  std::vector<int> position(static_cast<size_t>(graph.size()), -1);
  for (int p = 0; p < k_ops; ++p) {
    position[static_cast<size_t>(fwd[static_cast<size_t>(p)])] = p;
  }
  std::vector<std::vector<double>> c(static_cast<size_t>(k_ops),
                                     std::vector<double>(static_cast<size_t>(k_ops), 0.0));
  std::vector<int> counted(static_cast<size_t>(graph.size()), -1);
  for (int i = 0; i < k_ops; ++i) {
    double bytes = 0.0;
    for (int k = i; k < k_ops; ++k) {
      const Operator& op = graph.op(fwd[static_cast<size_t>(k)]);
      for (int operand : op.operands) {
        const Operator& producer = graph.op(operand);
        if (producer.type == OpType::kParameter || producer.type == OpType::kInput) {
          continue;
        }
        const int producer_pos = position[static_cast<size_t>(operand)];
        if (producer_pos >= 0 && producer_pos < i && counted[static_cast<size_t>(operand)] != i) {
          counted[static_cast<size_t>(operand)] = i;
          bytes += static_cast<double>(producer.OutputBytes());
        }
      }
      c[static_cast<size_t>(i)][static_cast<size_t>(k)] = bytes;
    }
  }
  return c;
}

ClusteringResult ClusterEqualOperator(const Graph& graph, const std::vector<int>& fwd,
                                      int num_layers) {
  ClusteringResult result;
  const int k_ops = static_cast<int>(fwd.size());
  result.feasible = true;
  result.num_layers = std::min(num_layers, k_ops);
  result.layer_of_forward_op.resize(static_cast<size_t>(k_ops));
  for (int p = 0; p < k_ops; ++p) {
    result.layer_of_forward_op[static_cast<size_t>(p)] =
        std::min(result.num_layers - 1,
                 p * result.num_layers / std::max(1, k_ops));
  }
  return result;
}

}  // namespace

// Eq. 5 DP under a hard FLOP cap; infeasible when no partition satisfies it.
ClusteringResult ClusterStrict(const Graph& graph, const ClusteringOptions& options,
                               const std::vector<int>& fwd, int num_layers);

ClusteringResult ClusterOperators(const Graph& graph, const ClusteringOptions& options) {
  const std::vector<int> fwd = ForwardComputeOps(graph);
  const int k_ops = static_cast<int>(fwd.size());
  ALPA_CHECK_GT(k_ops, 0);
  const int num_layers = std::min(options.num_layers, k_ops);

  if (options.method == ClusteringMethod::kEqualOperator) {
    return ClusterEqualOperator(graph, fwd, num_layers);
  }
  // The FLOP cap can be infeasible when one op dominates (small MLPs);
  // relax delta progressively, then fall back to equal-operator splitting.
  if (options.delta < 16.0) {
    ClusteringResult result = ClusterOperators(
        graph, ClusteringOptions{options.num_layers, 1e9, ClusteringMethod::kDpCommBalanced});
    if (result.feasible) {
      ClusteringOptions strict = options;
      ClusteringResult strict_result;
      for (double delta = options.delta; delta < 16.0; delta *= 2.0) {
        strict.delta = delta;
        strict_result = ClusterStrict(graph, strict, fwd, num_layers);
        if (strict_result.feasible) {
          return strict_result;
        }
      }
      return result;  // Unbounded-delta DP still beats equal-operator.
    }
    return ClusterEqualOperator(graph, fwd, num_layers);
  }

  return ClusterStrict(graph, options, fwd, num_layers);
}

ClusteringResult ClusterStrict(const Graph& graph, const ClusteringOptions& options,
                               const std::vector<int>& fwd, int num_layers) {
  const int k_ops = static_cast<int>(fwd.size());
  if (num_layers == k_ops) {
    // One op per layer is the only partition; skip the O(k^2) boundary
    // table and DP, computing just the diagonal C(i, i) for the bottleneck.
    std::vector<int> position(static_cast<size_t>(graph.size()), -1);
    for (int p = 0; p < k_ops; ++p) {
      position[static_cast<size_t>(fwd[static_cast<size_t>(p)])] = p;
    }
    ClusteringResult result;
    result.feasible = true;
    result.num_layers = num_layers;
    result.layer_of_forward_op.resize(static_cast<size_t>(k_ops));
    std::vector<int> counted(static_cast<size_t>(graph.size()), -1);
    for (int i = 0; i < k_ops; ++i) {
      result.layer_of_forward_op[static_cast<size_t>(i)] = i;
      double bytes = 0.0;
      for (int operand : graph.op(fwd[static_cast<size_t>(i)]).operands) {
        const Operator& producer = graph.op(operand);
        if (producer.type == OpType::kParameter || producer.type == OpType::kInput) {
          continue;
        }
        const int producer_pos = position[static_cast<size_t>(operand)];
        if (producer_pos >= 0 && producer_pos < i && counted[static_cast<size_t>(operand)] != i) {
          counted[static_cast<size_t>(operand)] = i;
          bytes += static_cast<double>(producer.OutputBytes());
        }
      }
      result.bottleneck_comm_bytes = std::max(result.bottleneck_comm_bytes, bytes);
    }
    return result;
  }
  // --- Eq. 5 DP. ---
  std::vector<double> flops(static_cast<size_t>(k_ops));
  double total_flops = 0.0;
  double max_single = 0.0;
  for (int p = 0; p < k_ops; ++p) {
    flops[static_cast<size_t>(p)] = graph.op(fwd[static_cast<size_t>(p)]).flops;
    total_flops += flops[static_cast<size_t>(p)];
    max_single = std::max(max_single, flops[static_cast<size_t>(p)]);
  }
  const double avg = total_flops / num_layers;
  // Cap must admit at least single-op layers.
  const double flop_cap = std::max((1.0 + options.delta) * avg, max_single);

  const std::vector<std::vector<double>> boundary = ComputeBoundaryBytes(graph, fwd);
  std::vector<double> prefix_flops(static_cast<size_t>(k_ops) + 1, 0.0);
  for (int p = 0; p < k_ops; ++p) {
    prefix_flops[static_cast<size_t>(p) + 1] = prefix_flops[static_cast<size_t>(p)] + flops[static_cast<size_t>(p)];
  }

  // g[r][k]: clustering ops [0, k] into r layers. Primary objective: the
  // bottleneck communication (Eq. 5); secondary: sum of squared per-layer
  // FLOP deviations from the average (uniformity tie-break).
  struct Cell {
    double comm = kInf;
    double var = kInf;
    int split = -1;  // First op of the last layer.
  };
  std::vector<std::vector<Cell>> g(static_cast<size_t>(num_layers) + 1,
                                   std::vector<Cell>(static_cast<size_t>(k_ops)));

  auto layer_flops = [&](int i, int k) {
    return prefix_flops[static_cast<size_t>(k) + 1] - prefix_flops[static_cast<size_t>(i)];
  };
  auto deviation = [&](int i, int k) {
    const double d = layer_flops(i, k) - avg;
    return d * d;
  };

  for (int k = 0; k < k_ops; ++k) {
    if (layer_flops(0, k) <= flop_cap) {
      g[1][static_cast<size_t>(k)] = Cell{boundary[0][static_cast<size_t>(k)], deviation(0, k), 0};
    }
  }
  for (int r = 2; r <= num_layers; ++r) {
    for (int k = r - 1; k < k_ops; ++k) {
      Cell best;
      for (int i = k; i >= r - 1; --i) {
        if (layer_flops(i, k) > flop_cap) {
          break;  // Larger layers only grow; flops are nonnegative.
        }
        const Cell& prev = g[static_cast<size_t>(r) - 1][static_cast<size_t>(i) - 1];
        if (!std::isfinite(prev.comm)) {
          continue;
        }
        const double comm = std::max(prev.comm, boundary[static_cast<size_t>(i)][static_cast<size_t>(k)]);
        const double var = prev.var + deviation(i, k);
        if (comm < best.comm - 1e-9 || (std::abs(comm - best.comm) <= 1e-9 && var < best.var)) {
          best = Cell{comm, var, i};
        }
      }
      g[static_cast<size_t>(r)][static_cast<size_t>(k)] = best;
    }
  }

  ClusteringResult result;
  const Cell& final_cell = g[static_cast<size_t>(num_layers)][static_cast<size_t>(k_ops) - 1];
  if (!std::isfinite(final_cell.comm)) {
    return result;  // Infeasible under the FLOP cap.
  }
  result.feasible = true;
  result.num_layers = num_layers;
  result.bottleneck_comm_bytes = final_cell.comm;
  result.layer_of_forward_op.assign(static_cast<size_t>(k_ops), 0);
  int k = k_ops - 1;
  for (int r = num_layers; r >= 1; --r) {
    const Cell& cell = g[static_cast<size_t>(r)][static_cast<size_t>(k)];
    ALPA_CHECK_GE(cell.split, 0);
    for (int p = cell.split; p <= k; ++p) {
      result.layer_of_forward_op[static_cast<size_t>(p)] = r - 1;
    }
    k = cell.split - 1;
  }
  ALPA_CHECK_EQ(k, -1);
  return result;
}

void AssignLayers(Graph& graph, const ClusteringResult& clustering) {
  ALPA_CHECK(clustering.feasible);
  const std::vector<int> fwd = ForwardComputeOps(graph);
  ALPA_CHECK_EQ(fwd.size(), clustering.layer_of_forward_op.size());

  for (int id = 0; id < graph.size(); ++id) {
    graph.mutable_op(id).layer = -1;
  }
  for (size_t p = 0; p < fwd.size(); ++p) {
    graph.mutable_op(fwd[p]).layer = clustering.layer_of_forward_op[p];
  }
  // Backward ops follow their forward op; updates follow their parameter's
  // consumers. Two passes: first propagate to backward, then leaves.
  for (int id = 0; id < graph.size(); ++id) {
    Operator& op = graph.mutable_op(id);
    if (op.layer >= 0) {
      continue;
    }
    if (op.forward_id >= 0) {
      op.layer = graph.op(op.forward_id).layer;
    }
  }
  // Parameters and inputs: earliest consumer's layer.
  const auto consumers = graph.Consumers();
  for (int id = 0; id < graph.size(); ++id) {
    Operator& op = graph.mutable_op(id);
    if (op.layer >= 0 || (op.type != OpType::kParameter && op.type != OpType::kInput)) {
      continue;
    }
    int layer = std::numeric_limits<int>::max();
    for (int consumer : consumers[static_cast<size_t>(id)]) {
      if (graph.op(consumer).layer >= 0) {
        layer = std::min(layer, graph.op(consumer).layer);
      }
    }
    op.layer = (layer == std::numeric_limits<int>::max()) ? 0 : layer;
  }
  // Updates: the parameter's layer.
  for (int id = 0; id < graph.size(); ++id) {
    Operator& op = graph.mutable_op(id);
    if (op.layer < 0 && op.param_id >= 0) {
      op.layer = graph.op(op.param_id).layer;
    }
    if (op.layer < 0) {
      // Residual grad-accumulation or loss-side ops without forward link.
      op.layer = graph.NumLayers() > 0 ? graph.NumLayers() - 1 : 0;
    }
  }
}

}  // namespace alpa
