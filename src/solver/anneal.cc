#include "src/solver/anneal.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/support/logging.h"
#include "src/support/rng.h"
#include "src/support/thread_pool.h"

namespace alpa {
namespace {

// Exact objective change of re-assigning v from its current choice to j,
// given the rest of the assignment.
double MoveDelta(const FlatCore& f, const std::vector<int>& choice, int v, int j) {
  const int cur = choice[static_cast<size_t>(v)];
  const double* row = f.unary.data() + f.off[static_cast<size_t>(v)];
  double delta = row[j] - row[cur];
  for (int a = f.arc_off[static_cast<size_t>(v)]; a < f.arc_off[static_cast<size_t>(v) + 1]; ++a) {
    const FlatCore::Arc& arc = f.arcs[static_cast<size_t>(a)];
    const int pc = choice[static_cast<size_t>(arc.peer)];
    delta += f.ArcCost(arc, j, pc) - f.ArcCost(arc, cur, pc);
  }
  return delta;
}

struct ChainResult {
  std::vector<int> choice;
  double objective = kFlatLarge;
  int64_t accepted = 0;
};

ChainResult RunChain(const FlatCore& f, const std::vector<int>& start, double start_value,
                     uint64_t seed, int64_t steps, double final_ratio,
                     const std::vector<int>& movable) {
  Rng rng(seed);
  ChainResult r;
  std::vector<int> current = start;
  double cur_val = start_value;
  r.choice = start;
  r.objective = start_value;

  // Calibrate T0 from the mean |delta| of a deterministic pre-sample:
  // high enough that typical uphill moves start near 50% acceptance.
  // Clamped-infeasible deltas (~1e30) would wreck the mean, so they are
  // skipped; if every sampled move is clamped the start is deep in an
  // infeasible region and a tiny T (pure descent) is the right schedule.
  double abs_sum = 0.0;
  int sampled = 0;
  const int kCalibration = 32;
  for (int s = 0; s < kCalibration; ++s) {
    const int v = movable[static_cast<size_t>(rng.NextBounded(movable.size()))];
    const int k = f.K(v);
    int j = static_cast<int>(rng.NextBounded(static_cast<uint64_t>(k - 1)));
    if (j >= current[static_cast<size_t>(v)]) ++j;
    const double d = std::abs(MoveDelta(f, current, v, j));
    if (d < kFlatInfeasible) {
      abs_sum += d;
      ++sampled;
    }
  }
  const double t0 = sampled > 0 ? std::max(abs_sum / sampled, 1e-12) : 1e-12;
  const double rate =
      steps > 1 ? std::pow(final_ratio, 1.0 / static_cast<double>(steps - 1)) : 1.0;

  double temperature = t0;
  for (int64_t s = 0; s < steps; ++s, temperature *= rate) {
    const int v = movable[static_cast<size_t>(rng.NextBounded(movable.size()))];
    const int k = f.K(v);
    int j = static_cast<int>(rng.NextBounded(static_cast<uint64_t>(k - 1)));
    if (j >= current[static_cast<size_t>(v)]) ++j;
    const double delta = MoveDelta(f, current, v, j);
    bool accept = delta <= 0.0;
    if (!accept) {
      // exp underflows well before 700; skip the draw when acceptance is
      // numerically zero (the rng stream stays deterministic either way:
      // consumption is a pure function of the trajectory).
      const double exponent = delta / temperature;
      accept = exponent < 40.0 && rng.NextDouble() < std::exp(-exponent);
    }
    if (!accept) continue;
    current[static_cast<size_t>(v)] = j;
    cur_val += delta;
    ++r.accepted;
    if (cur_val < r.objective) {
      // Re-evaluate from scratch on record improvements: incremental
      // deltas drift in floating point over thousands of accepted moves,
      // and the recorded objective must match the recorded assignment so
      // cross-chain and cross-engine reduces stay exact.
      const double exact = FlatValue(f, current);
      cur_val = exact;
      if (exact < r.objective) {
        r.objective = exact;
        r.choice = current;
      }
    }
  }
  return r;
}

}  // namespace

AnnealResult RunAnneal(const FlatCore& f, const std::vector<int>& start,
                       const AnnealOptions& options) {
  ALPA_CHECK_GT(f.n, 0);
  ALPA_CHECK_EQ(static_cast<int>(start.size()), f.n);
  AnnealResult best;
  best.choice = start;
  best.objective = FlatValue(f, start);

  // Nodes with at least two choices; single-choice nodes cannot move.
  std::vector<int> movable;
  for (int v = 0; v < f.n; ++v) {
    if (f.K(v) > 1) movable.push_back(v);
  }
  if (movable.empty() || options.steps_per_chain <= 0 || options.chains <= 0) {
    best.feasible = best.objective < kFlatInfeasible;
    return best;
  }

  const int chains = options.chains;
  std::vector<ChainResult> results(static_cast<size_t>(chains));
  ParallelFor(options.pool, chains, [&](int64_t c) {
    results[static_cast<size_t>(c)] =
        RunChain(f, start, best.objective, options.seed + static_cast<uint64_t>(c),
                 options.steps_per_chain, options.final_temperature_ratio, movable);
  });

  // Deterministic reduce in chain order, first-wins on value ties.
  for (const ChainResult& r : results) {
    best.steps += options.steps_per_chain;
    best.accepted += r.accepted;
    if (r.objective < best.objective) {
      best.objective = r.objective;
      best.choice = r.choice;
    }
  }
  best.feasible = best.objective < kFlatInfeasible;
  return best;
}

}  // namespace alpa
