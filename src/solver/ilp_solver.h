// Exact solver for the intra-op ILP (4.2, Eq. 1).
//
// After linearization, the ILP has one one-hot decision vector s_v per node
// and an edge decision e_vu per graph edge; its objective is
//     sum_v s_v . (c_v + d_v)  +  sum_(v,u) s_v^T R_vu s_u,
// i.e. a pairwise discrete energy over the computational graph. The paper
// feeds this to the off-the-shelf CBC solver [14]; we implement an exact
// solver directly on this structure, as a staged pipeline:
//   1. presolve (src/solver/ilp_presolve): parallel-edge merging,
//      dominated-choice elimination, and degree-0/1 folding run to a
//      fixpoint — chains and trees (most merged DL graphs) fold away
//      entirely, which subsumes the old forest Viterbi DP;
//   2. the residual core is first attempted by exact width-bounded
//      variable elimination (src/solver/elimination) — real stage graphs
//      leave cores of small induced width, solved in k^(width+1) time;
//   3. cores whose elimination tables would blow past the cap go to a
//      flat-memory branch & bound (src/solver/flat_bnb) with a
//      frontier-conditioned incremental bound, regret variable ordering,
//      and optional root-level parallel branching on a thread pool; under
//      the default IlpEngine::kPortfolio, GRASP and simulated annealing
//      (src/solver/portfolio) first spend a deterministic slice of the
//      search budget and hand the branch & bound their best incumbent as
//      its initial bound;
//   4. the core assignment is reconstructed to the original space and
//      re-evaluated on the original problem, and caller seeds are applied
//      as a floor so a budget abort can never lose to a provided plan.
// Results are deterministic and independent of the thread pool. The
// pre-overhaul single-stage solver is kept behind IlpEngine::kLegacy for
// randomized cross-checks (tests/solver_crosscheck_test.cc); both engines
// are exact, so objectives agree wherever neither aborts.
#ifndef SRC_SOLVER_ILP_SOLVER_H_
#define SRC_SOLVER_ILP_SOLVER_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace alpa {

class ThreadPool;

inline constexpr double kInfCost = std::numeric_limits<double>::infinity();

// A pairwise graph cost-minimization problem. Infeasible choices are
// encoded with kInfCost.
struct IlpProblem {
  // node_costs[v][i]: cost of picking algorithm i for node v.
  std::vector<std::vector<double>> node_costs;

  struct Edge {
    int u = 0;
    int v = 0;
    // cost[i][j]: resharding cost when u picks i and v picks j.
    std::vector<std::vector<double>> cost;
  };
  std::vector<Edge> edges;

  int num_nodes() const { return static_cast<int>(node_costs.size()); }
  int num_choices(int v) const { return static_cast<int>(node_costs[static_cast<size_t>(v)].size()); }
  // Total objective of a full assignment.
  double Evaluate(const std::vector<int>& choice) const;
  // Structural validation; CHECK-fails on malformed input.
  void Validate() const;
};

struct IlpSolution {
  std::vector<int> choice;
  double objective = kInfCost;
  bool optimal = false;     // True if proven optimal.
  bool feasible = false;    // True if objective < inf.
  int64_t nodes_explored = 0;
  std::string method;       // "dp-forest", "elimination", "branch-and-bound",
                            // "portfolio", "beam"; "(budget)" suffix on aborts.
  // Proven lower bound on the optimal objective (anytime contract):
  // equals `objective` when optimal; on a budget abort it comes from the
  // branch & bound's unexplored-subtree bounds (or a static matrix-minima
  // bound for the legacy engine). Always <= objective when feasible.
  double lower_bound = 0.0;
  // Relative optimality gap, (objective - lower_bound) / objective.
  // 0 when proven optimal or when the solution is infeasible.
  double optimality_gap() const;
};

enum class IlpEngine {
  kStaged,     // Presolve + component DP folding + flat branch & bound.
  kLegacy,     // Pre-overhaul single-stage solver, kept for cross-checks.
  kPortfolio,  // Staged pipeline, but residual cores that reach the branch
               // & bound first run GRASP + simulated annealing on a
               // deterministic budget slice and hand the search their best
               // incumbent as a shared bound (src/solver/portfolio). Exact
               // results are identical to kStaged; budget aborts return
               // the portfolio's best incumbent plus a proven gap.
};

struct IlpSolverOptions {
  // Candidate assignments used as branch & bound incumbents (after an ICM
  // polish). The intra-op pass seeds these with the optima of restricted
  // plan families (data parallel, ZeRO, tensor parallel), guaranteeing the
  // unrestricted solution never loses to them even when the search budget
  // runs out.
  std::vector<std::vector<int>> seeds;
  // Branch & bound search-node budget before falling back to the incumbent.
  // Large flat-cost plateaus (many zero-communication ties) can exhaust
  // this on big stage graphs; the incumbent floor then applies and the
  // solution is marked non-optimal.
  int64_t max_search_nodes = 300'000;
  // Beam width for the legacy engine's fallback polish.
  int beam_width = 64;
  // Which solver core to run. kPortfolio is the default (it only differs
  // from kStaged on budget-constrained cores, where the metaheuristic
  // incumbent bound prunes the search); kLegacy exists for the randomized
  // cross-check suite and A/B benchmarking.
  IlpEngine engine = IlpEngine::kPortfolio;
  // Optional pool for root-level parallel branching in the staged engine.
  // Plans are bit-identical with or without it (per-branch budget slices
  // and a deterministic reduce); null means serial.
  ThreadPool* pool = nullptr;
  // Staged engine: residual cores are solved by exact variable elimination
  // when every elimination table fits under this many cells (the cap bounds
  // both time and memory at ~k^(width+1)); larger-width cores fall back to
  // branch & bound. 0 disables elimination entirely (tests use this to
  // force the branch & bound path).
  int64_t max_elimination_table = int64_t{1} << 16;
  // Staged engine: memoize core solves process-wide on the presolved
  // problem's fingerprint (plus budget and projected seeds). Cleared by
  // IlpMemoCache::Clear() alongside the full-solve cache.
  bool use_core_memo = true;
};

class IlpSolver {
 public:
  explicit IlpSolver(IlpSolverOptions options = {}) : options_(options) {}

  IlpSolution Solve(const IlpProblem& problem) const;

 private:
  IlpSolverOptions options_;
};

// The pre-overhaul solver (forest DP / suffix-bound B&B / beam fallback).
// Exposed for the cross-check tests and bench/compile_speed A/B runs; use
// IlpSolver with IlpEngine::kLegacy from production code paths.
IlpSolution SolveIlpLegacy(const IlpProblem& problem, const IlpSolverOptions& options);

// Drops every memoized core solution (see IlpSolverOptions::use_core_memo).
void ClearIlpCoreMemo();

}  // namespace alpa

#endif  // SRC_SOLVER_ILP_SOLVER_H_
