// Exact solver for the intra-op ILP (4.2, Eq. 1).
//
// After linearization, the ILP has one one-hot decision vector s_v per node
// and an edge decision e_vu per graph edge; its objective is
//     sum_v s_v . (c_v + d_v)  +  sum_(v,u) s_v^T R_vu s_u,
// i.e. a pairwise discrete energy over the computational graph. The paper
// feeds this to the off-the-shelf CBC solver [14]; we implement an exact
// solver directly on this structure:
//   * a Viterbi dynamic program when the edge structure is a forest
//     (covers linear graphs a la Tofu, and most merged DL graphs);
//   * otherwise depth-first branch & bound with an admissible lower bound,
//     seeded by an iterated-conditional-modes incumbent;
//   * a guaranteed-feasible beam fallback when the node budget is hit
//     (the solution is then marked non-optimal).
// Exactness is property-tested against brute force in
// tests/solver/ilp_solver_test.cc.
#ifndef SRC_SOLVER_ILP_SOLVER_H_
#define SRC_SOLVER_ILP_SOLVER_H_

#include <cstdint>
#include <vector>
#include <limits>
#include <string>
#include <vector>

namespace alpa {

inline constexpr double kInfCost = std::numeric_limits<double>::infinity();

// A pairwise graph cost-minimization problem. Infeasible choices are
// encoded with kInfCost.
struct IlpProblem {
  // node_costs[v][i]: cost of picking algorithm i for node v.
  std::vector<std::vector<double>> node_costs;

  struct Edge {
    int u = 0;
    int v = 0;
    // cost[i][j]: resharding cost when u picks i and v picks j.
    std::vector<std::vector<double>> cost;
  };
  std::vector<Edge> edges;

  int num_nodes() const { return static_cast<int>(node_costs.size()); }
  int num_choices(int v) const { return static_cast<int>(node_costs[static_cast<size_t>(v)].size()); }
  // Total objective of a full assignment.
  double Evaluate(const std::vector<int>& choice) const;
  // Structural validation; CHECK-fails on malformed input.
  void Validate() const;
};

struct IlpSolution {
  std::vector<int> choice;
  double objective = kInfCost;
  bool optimal = false;     // True if proven optimal.
  bool feasible = false;    // True if objective < inf.
  int64_t nodes_explored = 0;
  std::string method;       // "dp-forest", "branch-and-bound", "beam".
};

struct IlpSolverOptions {
  // Candidate assignments used as branch & bound incumbents (after an ICM
  // polish). The intra-op pass seeds these with the optima of restricted
  // plan families (data parallel, ZeRO, tensor parallel), guaranteeing the
  // unrestricted solution never loses to them even when the search budget
  // runs out.
  std::vector<std::vector<int>> seeds;
  // Branch & bound search-node budget before falling back to the incumbent.
  // Large flat-cost plateaus (many zero-communication ties) can exhaust
  // this on big stage graphs; the beam fallback then polishes the ICM
  // incumbent, which is within a fraction of a percent on our workloads.
  int64_t max_search_nodes = 300'000;
  // Beam width for the fallback polish.
  int beam_width = 64;
};

class IlpSolver {
 public:
  explicit IlpSolver(IlpSolverOptions options = {}) : options_(options) {}

  IlpSolution Solve(const IlpProblem& problem) const;

 private:
  IlpSolverOptions options_;
};

}  // namespace alpa

#endif  // SRC_SOLVER_ILP_SOLVER_H_
