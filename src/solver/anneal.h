// Simulated annealing over per-node choice swaps — the refinement
// metaheuristic of the solver portfolio.
//
// Chains start from a caller-provided incumbent (the portfolio hands over
// the best GRASP construction) and walk single-node moves: pick a node,
// pick an alternative choice, compute the exact objective delta from the
// flat arenas (O(degree)), and accept downhill moves always and uphill
// moves with probability exp(-delta / T) under a geometric cooling
// schedule T_{k+1} = rate * T_k. The initial temperature is calibrated
// from the mean absolute delta of a deterministic pre-sample so the
// schedule adapts to the problem's cost scale. Chain c draws from its own
// SplitMix64 stream seeded by (seed + c): every chain is a pure function
// of (core, start, options), the fan-out over the pool reduces in chain
// order (first-wins on value ties), and the result is bit-identical for
// any thread count.
#ifndef SRC_SOLVER_ANNEAL_H_
#define SRC_SOLVER_ANNEAL_H_

#include <cstdint>
#include <vector>

#include "src/solver/flat_core.h"

namespace alpa {

class ThreadPool;

struct AnnealOptions {
  // Independent chains, all seeded from the same start assignment but
  // with distinct random streams.
  int chains = 4;
  // Proposed moves per chain (accepted or not; each costs O(degree)).
  int64_t steps_per_chain = 20'000;
  // Base of the per-chain SplitMix64 streams.
  uint64_t seed = 0x414e4e45414cULL;  // "ANNEAL"
  // The schedule cools geometrically from T0 (calibrated) down to
  // T0 * final_temperature_ratio across the chain's steps.
  double final_temperature_ratio = 1e-4;
  // Optional pool for the chain fan-out. Results are identical with or
  // without it.
  ThreadPool* pool = nullptr;
};

struct AnnealResult {
  std::vector<int> choice;        // Best assignment seen by any chain.
  double objective = kFlatLarge;  // Clamped-space value of `choice`.
  bool feasible = false;          // objective < kFlatInfeasible.
  int64_t steps = 0;              // Total proposed moves across chains.
  int64_t accepted = 0;           // Total accepted moves across chains.
};

// Anneals from `start` (full-length core-compact assignment; every entry
// must be a valid choice index). Returns the best of (start, every chain's
// best). Deterministic.
AnnealResult RunAnneal(const FlatCore& f, const std::vector<int>& start,
                       const AnnealOptions& options);

}  // namespace alpa

#endif  // SRC_SOLVER_ANNEAL_H_
