// Exact min-sum variable elimination (bucket elimination) for residual
// ILP cores (stage 2.5 of the staged solver pipeline).
//
// Presolve's degree-0/1/2 folding dissolves all series-parallel structure,
// but real stage graphs keep a residual core of treewidth >= 3 (attention
// fan-outs, weight-sharing skips). Those cores are still far from
// worst-case: min-degree elimination typically induces widths of 3-6,
// so an exact junction-tree-style DP runs in k^(width+1) time — orders of
// magnitude below branch & bound on the same graph.
//
// SolveByElimination eliminates nodes greedily (smallest elimination table
// first, ties to the lower node id), building a min-marginal message over
// each eliminated node's neighborhood and recording the per-assignment
// argmin for the backward pass. If at any step the next table would exceed
// `max_table_entries`, the induced width is too large and the function
// bails out with std::nullopt — the caller falls back to branch & bound.
// The procedure is exact and fully deterministic; infeasible (kInfCost)
// entries propagate through the min-sum recursions and resurface when the
// caller re-evaluates the reconstructed assignment.
#ifndef SRC_SOLVER_ELIMINATION_H_
#define SRC_SOLVER_ELIMINATION_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/solver/ilp_solver.h"

namespace alpa {

// Returns the exact optimal assignment of `core` (compact choice indices),
// or std::nullopt when some elimination step would need more than
// `max_table_entries` table cells. `core` must be a simple graph (no
// parallel edges); presolve guarantees this.
std::optional<std::vector<int>> SolveByElimination(const IlpProblem& core,
                                                   int64_t max_table_entries);

}  // namespace alpa

#endif  // SRC_SOLVER_ELIMINATION_H_
