// Flat-memory branch & bound over a presolved ILP core (stage 3 of the
// staged solver pipeline).
//
// The core (output of Presolve) is loaded into contiguous arenas: one flat
// cost vector for all node choices and one arena holding every edge matrix
// twice (row-major from each endpoint, transpose materialized), so the hot
// loops are linear scans with no pointer chasing or branchy orientation
// checks. The search maintains, per unassigned node, a "conditioned" cost
// vector — unary cost plus the matrix rows of every already-assigned
// neighbor — which serves double duty:
//   * the exact incremental cost of assigning that node next, and
//   * a frontier-aware lower bound (sum of conditioned minima over
//     unassigned nodes, plus global matrix minima of the edges not yet
//     touching the frontier), much tighter than a static suffix bound.
// Variables are ordered dynamically by regret (gap between the best and
// second-best conditioned cost); values are tried in ascending conditioned
// cost. Root-level branching fans out over a work-stealing pool when one is
// provided: every root branch is an independent search with a fixed budget
// slice and the shared incumbent as its initial bound, and results reduce
// in deterministic (score, index) order — so the solution is bit-identical
// for any thread count, including zero.
//
// Infinities are clamped to kFlatLarge on load so bound arithmetic never
// mixes inf into running sums; any objective >= kFlatInfeasible means "no
// feasible assignment found". Callers re-evaluate the returned assignment
// on the original (unclamped) problem.
#ifndef SRC_SOLVER_FLAT_BNB_H_
#define SRC_SOLVER_FLAT_BNB_H_

#include <cstdint>
#include <vector>

#include "src/solver/ilp_solver.h"

namespace alpa {

class ThreadPool;

// Stand-in for kInfCost inside the search arenas, and the threshold above
// which a total is reported infeasible. Real costs are simulated seconds
// (<< 1e9), so the gap is comfortable.
inline constexpr double kFlatLarge = 1e30;
inline constexpr double kFlatInfeasible = 1e29;

struct FlatSearchOptions {
  // Total expansion budget, split evenly across connected components. Within
  // a component the per-root-branch slices start even, and slices left
  // unused by early-finishing branches are redistributed to still-aborted
  // branches in bounded follow-up rounds (each round is a barrier with a
  // deterministic reduce), so behaviour still does not depend on the pool.
  int64_t budget = 300'000;
  // Optional pool for root-level parallel branching. Results are identical
  // with or without it.
  ThreadPool* pool = nullptr;
  // Candidate assignments (core-compact choice indices, full length) used
  // as incumbents after an ICM polish; the per-node argmin start is always
  // added internally.
  std::vector<std::vector<int>> incumbents;
};

struct FlatSearchResult {
  std::vector<int> choice;  // Core-compact choice per node.
  double objective = kFlatLarge;
  bool feasible = false;  // objective < kFlatInfeasible.
  bool aborted = false;   // Some branch exhausted its budget slice.
  int64_t explored = 0;
  // Proven lower bound on the optimal objective (anytime contract): equals
  // `objective` when the search completed; on an abort it is the sum, over
  // components, of min(component objective, weakest unexplored root-branch
  // bound). (objective - lower_bound) is the absolute optimality gap.
  double lower_bound = 0.0;
};

// Exact search over `core` (a simple graph; parallel edges must already be
// merged). Deterministic: same core and options give the same result.
FlatSearchResult SolveCore(const IlpProblem& core, const FlatSearchOptions& options);

}  // namespace alpa

#endif  // SRC_SOLVER_FLAT_BNB_H_
