// Flat-memory branch & bound over a presolved ILP core (the exact engine of
// the solver portfolio, stage 3 of the staged pipeline).
//
// The core lives in the shared FlatCore arenas (src/solver/flat_core). The
// search maintains, per unassigned node, a "conditioned" cost vector —
// unary cost plus the matrix rows of every already-assigned neighbor —
// which serves double duty:
//   * the exact incremental cost of assigning that node next, and
//   * a frontier-aware lower bound (sum of conditioned minima over
//     unassigned nodes, plus global matrix minima of the edges not yet
//     touching the frontier), much tighter than a static suffix bound.
// Variables are ordered dynamically by regret (gap between the best and
// second-best conditioned cost); values are tried in ascending conditioned
// cost. Root-level branching fans out over a work-stealing pool when one is
// provided: every root branch is an independent search with a fixed budget
// slice and the shared incumbent as its initial bound, and results reduce
// in deterministic (score, index) order — so the solution is bit-identical
// for any thread count, including zero.
//
// Callers re-evaluate the returned assignment on the original (unclamped)
// problem; see flat_core.h for the kFlatLarge / kFlatInfeasible clamping
// contract.
#ifndef SRC_SOLVER_FLAT_BNB_H_
#define SRC_SOLVER_FLAT_BNB_H_

#include <cstdint>
#include <vector>

#include "src/solver/flat_core.h"
#include "src/solver/ilp_solver.h"

namespace alpa {

class ThreadPool;

struct FlatSearchOptions {
  // Total expansion budget, split evenly across connected components. Within
  // a component the per-root-branch slices start even, and slices left
  // unused by early-finishing branches are redistributed to still-aborted
  // branches in bounded follow-up rounds (each round is a barrier with a
  // deterministic reduce), so behaviour still does not depend on the pool.
  int64_t budget = 300'000;
  // Optional pool for root-level parallel branching. Results are identical
  // with or without it.
  ThreadPool* pool = nullptr;
  // Candidate assignments (core-compact choice indices, full length) used
  // as incumbents after an ICM polish; the per-node argmin start is always
  // added internally. The solver portfolio routes the best metaheuristic
  // incumbent in through here, so the search starts with a tight bound.
  std::vector<std::vector<int>> incumbents;
};

struct FlatSearchResult {
  std::vector<int> choice;  // Core-compact choice per node.
  double objective = kFlatLarge;
  bool feasible = false;  // objective < kFlatInfeasible.
  bool aborted = false;   // Some branch exhausted its budget slice.
  int64_t explored = 0;
  // Proven lower bound on the optimal objective (anytime contract): equals
  // `objective` when the search completed; on an abort it is the sum, over
  // components, of min(component objective, weakest unexplored root-branch
  // bound). (objective - lower_bound) is the absolute optimality gap.
  double lower_bound = 0.0;
  // Root choices whose pre-push bound already exceeded the incumbent value,
  // so their whole subtree was pruned before any search. A tight incumbent
  // (e.g. from the portfolio's metaheuristics) shows up here first.
  int64_t root_branches_pruned = 0;
};

// Exact search over `core` (a simple graph; parallel edges must already be
// merged). Deterministic: same core and options give the same result.
FlatSearchResult SolveCore(const IlpProblem& core, const FlatSearchOptions& options);

// Same search on an already-built FlatCore (the portfolio builds the arenas
// once and shares them across engines). `f` must have >= 1 node.
FlatSearchResult SolveCoreOnFlat(const FlatCore& f, const FlatSearchOptions& options);

}  // namespace alpa

#endif  // SRC_SOLVER_FLAT_BNB_H_
