// The pre-overhaul single-stage ILP solver, kept verbatim behind
// IlpEngine::kLegacy: the staged pipeline (presolve + flat B&B) is
// cross-checked against it on randomized problems
// (tests/solver_crosscheck_test.cc) and A/B-benchmarked by
// bench/compile_speed. Not used by production code paths.
#include <algorithm>
#include <cmath>
#include <numeric>
#include <utility>
#include <vector>

#include "src/solver/ilp_solver.h"
#include "src/support/logging.h"

namespace alpa {
namespace {

// Edges viewed from one endpoint. `transposed` means this node indexes the
// columns of the cost matrix.
struct IncidentEdge {
  int peer = 0;
  const std::vector<std::vector<double>>* cost = nullptr;
  bool transposed = false;

  double At(int self_choice, int peer_choice) const {
    return transposed ? (*cost)[static_cast<size_t>(peer_choice)][static_cast<size_t>(self_choice)]
                      : (*cost)[static_cast<size_t>(self_choice)][static_cast<size_t>(peer_choice)];
  }
};

// Merges parallel edges (same endpoint pair) by summing their matrices so
// the solvers can assume a simple graph.
IlpProblem MergeParallelEdges(const IlpProblem& problem) {
  IlpProblem merged;
  merged.node_costs = problem.node_costs;
  for (const IlpProblem::Edge& e : problem.edges) {
    int u = std::min(e.u, e.v);
    int v = std::max(e.u, e.v);
    const bool flipped = (u != e.u);
    int found = -1;
    for (size_t k = 0; k < merged.edges.size(); ++k) {
      if (merged.edges[k].u == u && merged.edges[k].v == v) {
        found = static_cast<int>(k);
        break;
      }
    }
    if (found < 0) {
      IlpProblem::Edge canonical;
      canonical.u = u;
      canonical.v = v;
      canonical.cost.assign(problem.node_costs[static_cast<size_t>(u)].size(),
                            std::vector<double>(problem.node_costs[static_cast<size_t>(v)].size(), 0.0));
      merged.edges.push_back(std::move(canonical));
      found = static_cast<int>(merged.edges.size()) - 1;
    }
    auto& acc = merged.edges[static_cast<size_t>(found)].cost;
    for (size_t i = 0; i < acc.size(); ++i) {
      for (size_t j = 0; j < acc[i].size(); ++j) {
        acc[i][j] += flipped ? e.cost[j][i] : e.cost[i][j];
      }
    }
  }
  return merged;
}

std::vector<std::vector<IncidentEdge>> BuildAdjacency(const IlpProblem& problem) {
  std::vector<std::vector<IncidentEdge>> adj(problem.node_costs.size());
  for (const IlpProblem::Edge& e : problem.edges) {
    adj[static_cast<size_t>(e.u)].push_back(IncidentEdge{e.v, &e.cost, false});
    adj[static_cast<size_t>(e.v)].push_back(IncidentEdge{e.u, &e.cost, true});
  }
  return adj;
}

bool IsForest(const IlpProblem& problem) {
  const int n = problem.num_nodes();
  std::vector<int> parent(static_cast<size_t>(n));
  std::iota(parent.begin(), parent.end(), 0);
  auto find = [&](int x) {
    while (parent[static_cast<size_t>(x)] != x) {
      parent[static_cast<size_t>(x)] = parent[static_cast<size_t>(parent[static_cast<size_t>(x)])];
      x = parent[static_cast<size_t>(x)];
    }
    return x;
  };
  for (const IlpProblem::Edge& e : problem.edges) {
    int a = find(e.u);
    int b = find(e.v);
    if (a == b) {
      return false;
    }
    parent[static_cast<size_t>(a)] = b;
  }
  return true;
}

// Exact min-sum DP on a forest-structured problem.
IlpSolution SolveForest(const IlpProblem& problem) {
  const int n = problem.num_nodes();
  auto adj = BuildAdjacency(problem);

  // messages[v][i]: min cost of v's subtree when v picks i.
  std::vector<std::vector<double>> messages(static_cast<size_t>(n));
  std::vector<int> order;        // DFS post-order.
  std::vector<int> parent_of(static_cast<size_t>(n), -1);
  std::vector<char> visited(static_cast<size_t>(n), 0);

  for (int root = 0; root < n; ++root) {
    if (visited[static_cast<size_t>(root)]) {
      continue;
    }
    // Iterative DFS.
    std::vector<int> stack = {root};
    visited[static_cast<size_t>(root)] = 1;
    std::vector<int> local;
    while (!stack.empty()) {
      int v = stack.back();
      stack.pop_back();
      local.push_back(v);
      for (const IncidentEdge& e : adj[static_cast<size_t>(v)]) {
        if (!visited[static_cast<size_t>(e.peer)]) {
          visited[static_cast<size_t>(e.peer)] = 1;
          parent_of[static_cast<size_t>(e.peer)] = v;
          stack.push_back(e.peer);
        }
      }
    }
    // Reverse pre-order is a valid post-order for message passing.
    for (auto it = local.rbegin(); it != local.rend(); ++it) {
      order.push_back(*it);
    }
  }

  for (int v : order) {
    messages[static_cast<size_t>(v)] = problem.node_costs[static_cast<size_t>(v)];
    auto& msg = messages[static_cast<size_t>(v)];
    for (const IncidentEdge& e : adj[static_cast<size_t>(v)]) {
      if (parent_of[static_cast<size_t>(e.peer)] != v) {
        continue;  // Only aggregate children.
      }
      const auto& child_msg = messages[static_cast<size_t>(e.peer)];
      for (size_t i = 0; i < msg.size(); ++i) {
        double best = kInfCost;
        for (size_t j = 0; j < child_msg.size(); ++j) {
          // e is incident to v, so peer_choice is the child's.
          best = std::min(best, e.At(static_cast<int>(i), static_cast<int>(j)) + child_msg[j]);
        }
        msg[i] += best;
      }
    }
  }

  // Backtrack from roots.
  IlpSolution solution;
  solution.choice.assign(static_cast<size_t>(n), 0);
  solution.objective = 0.0;
  // Roots appear last in `order` per tree; walk in reverse (pre-order).
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    int v = *it;
    const auto& msg = messages[static_cast<size_t>(v)];
    int p = parent_of[static_cast<size_t>(v)];
    double best = kInfCost;
    int best_i = 0;
    if (p < 0) {
      for (size_t i = 0; i < msg.size(); ++i) {
        if (msg[i] < best) {
          best = msg[i];
          best_i = static_cast<int>(i);
        }
      }
      solution.objective += best;
    } else {
      const int pc = solution.choice[static_cast<size_t>(p)];
      for (const IncidentEdge& e : adj[static_cast<size_t>(v)]) {
        if (e.peer != p) {
          continue;
        }
        for (size_t i = 0; i < msg.size(); ++i) {
          const double c = msg[i] + e.At(static_cast<int>(i), pc);
          if (c < best) {
            best = c;
            best_i = static_cast<int>(i);
          }
        }
        break;
      }
    }
    solution.choice[static_cast<size_t>(v)] = best_i;
  }
  solution.objective = problem.Evaluate(solution.choice);
  solution.optimal = std::isfinite(solution.objective);
  solution.feasible = std::isfinite(solution.objective);
  solution.method = "dp-forest";
  return solution;
}

// Iterated conditional modes from a given start: sweep until no
// single-node move improves.
std::vector<int> IcmPolish(const IlpProblem& problem,
                           const std::vector<std::vector<IncidentEdge>>& adj,
                           std::vector<int> choice) {
  const int n = problem.num_nodes();
  bool improved = true;
  int sweeps = 0;
  while (improved && sweeps < 50) {
    improved = false;
    ++sweeps;
    for (int v = 0; v < n; ++v) {
      const auto& costs = problem.node_costs[static_cast<size_t>(v)];
      double best = kInfCost;
      int best_i = choice[static_cast<size_t>(v)];
      for (int i = 0; i < static_cast<int>(costs.size()); ++i) {
        double c = costs[static_cast<size_t>(i)];
        for (const IncidentEdge& e : adj[static_cast<size_t>(v)]) {
          c += e.At(i, choice[static_cast<size_t>(e.peer)]);
        }
        if (c < best) {
          best = c;
          best_i = i;
        }
      }
      if (best_i != choice[static_cast<size_t>(v)]) {
        choice[static_cast<size_t>(v)] = best_i;
        improved = true;
      }
    }
  }
  return choice;
}

// ICM from the per-node argmin start.
std::vector<int> IcmIncumbent(const IlpProblem& problem,
                              const std::vector<std::vector<IncidentEdge>>& adj) {
  const int n = problem.num_nodes();
  std::vector<int> choice(static_cast<size_t>(n), 0);
  for (int v = 0; v < n; ++v) {
    const auto& costs = problem.node_costs[static_cast<size_t>(v)];
    choice[static_cast<size_t>(v)] = static_cast<int>(
        std::min_element(costs.begin(), costs.end()) - costs.begin());
  }
  return IcmPolish(problem, adj, std::move(choice));
}

// Orders nodes for the search. Node ids follow the graph's topological
// order, so plain id order keeps the assigned frontier connected on
// near-chain DL graphs and behaves like a left-to-right Viterbi sweep.
std::vector<int> SearchOrder(const IlpProblem& problem,
                             const std::vector<std::vector<IncidentEdge>>& adj) {
  std::vector<int> order(static_cast<size_t>(problem.num_nodes()));
  std::iota(order.begin(), order.end(), 0);
  return order;
}

struct SearchContext {
  const IlpProblem* problem = nullptr;
  std::vector<int> order;                  // position -> node.
  std::vector<int> position;               // node -> position.
  // For the node at each position: incident edges to earlier positions.
  std::vector<std::vector<IncidentEdge>> back_edges;
  // Lower bound of the cost contributed by positions >= t, independent of
  // earlier assignments.
  std::vector<double> suffix_bound;
  std::vector<int> assignment;             // by node.
  std::vector<int> best_choice;
  double best_objective = kInfCost;
  int64_t explored = 0;
  int64_t budget = 0;
  bool aborted = false;
};

void Dfs(SearchContext& ctx, int t, double cost_so_far) {
  if (ctx.aborted) {
    return;
  }
  if (++ctx.explored > ctx.budget) {
    ctx.aborted = true;
    return;
  }
  const int n = static_cast<int>(ctx.order.size());
  if (t == n) {
    if (cost_so_far < ctx.best_objective) {
      ctx.best_objective = cost_so_far;
      ctx.best_choice = ctx.assignment;
    }
    return;
  }
  if (cost_so_far + ctx.suffix_bound[static_cast<size_t>(t)] >= ctx.best_objective) {
    return;
  }
  const int v = ctx.order[static_cast<size_t>(t)];
  const auto& unary = ctx.problem->node_costs[static_cast<size_t>(v)];
  const auto& back = ctx.back_edges[static_cast<size_t>(t)];

  // Evaluate the exact incremental cost of each choice, then expand in
  // ascending order.
  std::vector<std::pair<double, int>> scored;
  scored.reserve(unary.size());
  for (int i = 0; i < static_cast<int>(unary.size()); ++i) {
    double inc = unary[static_cast<size_t>(i)];
    for (const IncidentEdge& e : back) {
      inc += e.At(i, ctx.assignment[static_cast<size_t>(e.peer)]);
    }
    if (std::isfinite(inc)) {
      scored.emplace_back(inc, i);
    }
  }
  std::sort(scored.begin(), scored.end());
  for (const auto& [inc, i] : scored) {
    if (cost_so_far + inc + ctx.suffix_bound[static_cast<size_t>(t) + 1] >= ctx.best_objective) {
      break;  // Later choices are only more expensive.
    }
    ctx.assignment[static_cast<size_t>(v)] = i;
    Dfs(ctx, t + 1, cost_so_far + inc);
    if (ctx.aborted) {
      return;
    }
  }
}

// Beam search along the same order; returns the best full assignment found.
IlpSolution BeamSearch(const IlpProblem& problem, const SearchContext& ctx, int width) {
  struct State {
    double cost;
    std::vector<int> assignment;
  };
  std::vector<State> beam = {{0.0, std::vector<int>(static_cast<size_t>(problem.num_nodes()), -1)}};
  for (size_t t = 0; t < ctx.order.size(); ++t) {
    const int v = ctx.order[t];
    const auto& unary = problem.node_costs[static_cast<size_t>(v)];
    std::vector<State> next;
    for (const State& s : beam) {
      for (int i = 0; i < static_cast<int>(unary.size()); ++i) {
        double inc = unary[static_cast<size_t>(i)];
        for (const IncidentEdge& e : ctx.back_edges[t]) {
          inc += e.At(i, s.assignment[static_cast<size_t>(e.peer)]);
        }
        if (!std::isfinite(inc)) {
          continue;
        }
        State ns = s;
        ns.cost += inc;
        ns.assignment[static_cast<size_t>(v)] = i;
        next.push_back(std::move(ns));
      }
    }
    if (next.empty()) {
      break;
    }
    std::sort(next.begin(), next.end(),
              [](const State& a, const State& b) { return a.cost < b.cost; });
    if (static_cast<int>(next.size()) > width) {
      next.resize(static_cast<size_t>(width));
    }
    beam = std::move(next);
  }
  IlpSolution solution;
  solution.method = "beam";
  if (!beam.empty() && std::all_of(beam[0].assignment.begin(), beam[0].assignment.end(),
                                   [](int c) { return c >= 0; })) {
    solution.choice = beam[0].assignment;
    solution.objective = problem.Evaluate(solution.choice);
    solution.feasible = std::isfinite(solution.objective);
  }
  return solution;
}

}  // namespace

IlpSolution SolveIlpLegacy(const IlpProblem& raw, const IlpSolverOptions& options) {
  raw.Validate();
  const IlpProblem problem = MergeParallelEdges(raw);
  if (problem.num_nodes() == 0) {
    IlpSolution empty;
    empty.objective = 0.0;
    empty.optimal = true;
    empty.feasible = true;
    empty.method = "empty";
    return empty;
  }
  if (IsForest(problem)) {
    return SolveForest(problem);
  }

  auto adj = BuildAdjacency(problem);

  SearchContext ctx;
  ctx.problem = &problem;
  ctx.order = SearchOrder(problem, adj);
  ctx.position.assign(static_cast<size_t>(problem.num_nodes()), -1);
  for (size_t t = 0; t < ctx.order.size(); ++t) {
    ctx.position[static_cast<size_t>(ctx.order[t])] = static_cast<int>(t);
  }
  ctx.back_edges.resize(ctx.order.size());
  for (size_t t = 0; t < ctx.order.size(); ++t) {
    const int v = ctx.order[t];
    for (const IncidentEdge& e : adj[static_cast<size_t>(v)]) {
      if (ctx.position[static_cast<size_t>(e.peer)] < static_cast<int>(t)) {
        ctx.back_edges[t].push_back(e);
      }
    }
  }
  // suffix_bound[t] = sum over positions >= t of a per-node lower bound:
  // min over choices of unary + column minima of back edges.
  ctx.suffix_bound.assign(ctx.order.size() + 1, 0.0);
  for (int t = static_cast<int>(ctx.order.size()) - 1; t >= 0; --t) {
    const int v = ctx.order[static_cast<size_t>(t)];
    const auto& unary = problem.node_costs[static_cast<size_t>(v)];
    double node_lb = kInfCost;
    for (int i = 0; i < static_cast<int>(unary.size()); ++i) {
      double c = unary[static_cast<size_t>(i)];
      for (const IncidentEdge& e : ctx.back_edges[static_cast<size_t>(t)]) {
        double edge_min = kInfCost;
        for (size_t j = 0; j < problem.node_costs[static_cast<size_t>(e.peer)].size(); ++j) {
          edge_min = std::min(edge_min, e.At(i, static_cast<int>(j)));
        }
        c += edge_min;
      }
      node_lb = std::min(node_lb, c);
    }
    if (!std::isfinite(node_lb)) {
      IlpSolution infeasible;
      infeasible.method = "branch-and-bound";
      return infeasible;  // Some node has no feasible choice.
    }
    ctx.suffix_bound[static_cast<size_t>(t)] =
        ctx.suffix_bound[static_cast<size_t>(t) + 1] + node_lb;
  }

  // Incumbent: the best of ICM, a beam pass, and any caller-provided seed
  // assignments (each polished by ICM). A strong incumbent makes the
  // depth-first bound prune the flat zero-communication plateaus that
  // otherwise exhaust the node budget.
  ctx.assignment = IcmIncumbent(problem, adj);
  ctx.best_choice = ctx.assignment;
  ctx.best_objective = problem.Evaluate(ctx.best_choice);
  {
    const IlpSolution beam = BeamSearch(problem, ctx, options.beam_width);
    if (beam.feasible && beam.objective < ctx.best_objective) {
      ctx.best_objective = beam.objective;
      ctx.best_choice = beam.choice;
    }
  }
  for (const std::vector<int>& seed : options.seeds) {
    if (static_cast<int>(seed.size()) != problem.num_nodes()) {
      continue;
    }
    std::vector<int> polished = IcmPolish(problem, adj, seed);
    const double value = problem.Evaluate(polished);
    if (value < ctx.best_objective) {
      ctx.best_objective = value;
      ctx.best_choice = std::move(polished);
    }
  }
  ctx.assignment = ctx.best_choice;
  ctx.budget = options.max_search_nodes;

  Dfs(ctx, 0, 0.0);

  IlpSolution solution;
  solution.nodes_explored = ctx.explored;
  if (ctx.aborted) {
    // Budget exhausted: polish with beam search and keep the better result.
    IlpSolution beam = BeamSearch(problem, ctx, options.beam_width);
    if (beam.feasible && beam.objective < ctx.best_objective) {
      beam.nodes_explored = ctx.explored;
      return beam;
    }
    solution.method = "branch-and-bound(budget)";
    solution.optimal = false;
  } else {
    solution.method = "branch-and-bound";
    solution.optimal = std::isfinite(ctx.best_objective);
  }
  solution.choice = ctx.best_choice;
  solution.objective = ctx.best_objective;
  solution.feasible = std::isfinite(ctx.best_objective);
  return solution;
}

}  // namespace alpa
