#include "src/solver/ilp_presolve.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <utility>

#include "src/support/hashing.h"
#include "src/support/logging.h"

namespace alpa {

namespace {

// Working state: matrices stay in the original choice coordinates and
// eliminated choices are masked, so no reindexing happens until the core is
// emitted at the end.
struct Work {
  const IlpProblem* original = nullptr;
  std::vector<std::vector<double>> unary;       // Mutated by folding.
  std::vector<std::vector<char>> choice_alive;  // Per node, per original choice.
  std::vector<IlpProblem::Edge> edges;          // Merged; canonical u < v.
  std::vector<char> edge_alive;
  std::vector<char> node_alive;
  std::vector<std::vector<int>> adj;  // Node -> incident edge ids.
  std::vector<int> degree;            // Count of alive incident edges.
  std::vector<char> dirty;  // Nodes whose dominance inputs changed since last pass.
  PresolvedProblem* out = nullptr;

  // Dominance at a node depends on the peers' alive choice sets and the
  // incident edge matrices, so any mutation there re-queues the neighbors.
  void MarkPeersDirty(int v) {
    for (int e : adj[static_cast<size_t>(v)]) {
      if (edge_alive[static_cast<size_t>(e)]) {
        dirty[static_cast<size_t>(Peer(edges[static_cast<size_t>(e)], v))] = 1;
      }
    }
  }

  double Cost(const IlpProblem::Edge& e, int node, int self_choice, int peer_choice) const {
    return node == e.u ? e.cost[static_cast<size_t>(self_choice)][static_cast<size_t>(peer_choice)]
                       : e.cost[static_cast<size_t>(peer_choice)][static_cast<size_t>(self_choice)];
  }
  int Peer(const IlpProblem::Edge& e, int node) const { return node == e.u ? e.v : e.u; }
};

// Sums parallel edges into canonical (min, max) oriented matrices via an
// endpoint-pair hash map; O(E) instead of the old O(E^2) linear scan.
void MergeEdges(const IlpProblem& problem, Work& w) {
  std::unordered_map<uint64_t, int> index;
  index.reserve(problem.edges.size() * 2);
  for (const IlpProblem::Edge& e : problem.edges) {
    const int u = std::min(e.u, e.v);
    const int v = std::max(e.u, e.v);
    const bool flipped = (u != e.u);
    const uint64_t key = (static_cast<uint64_t>(u) << 32) | static_cast<uint64_t>(v);
    auto [it, inserted] = index.emplace(key, static_cast<int>(w.edges.size()));
    if (inserted) {
      IlpProblem::Edge canonical;
      canonical.u = u;
      canonical.v = v;
      canonical.cost.assign(
          problem.node_costs[static_cast<size_t>(u)].size(),
          std::vector<double>(problem.node_costs[static_cast<size_t>(v)].size(), 0.0));
      w.edges.push_back(std::move(canonical));
    } else {
      ++w.out->stats.parallel_edges_merged;
    }
    auto& acc = w.edges[static_cast<size_t>(it->second)].cost;
    for (size_t i = 0; i < acc.size(); ++i) {
      for (size_t j = 0; j < acc[i].size(); ++j) {
        acc[i][j] += flipped ? e.cost[j][i] : e.cost[i][j];
      }
    }
  }
}

// Folds the degree-2 node v into a synthesized edge between its two
// neighbors (series reduction): entry (i, j) of the new matrix is v's best
// response given the neighbors pick i and j. The matrix is summed into an
// existing (a, b) edge when one exists so the graph stays simple; otherwise
// a fresh edge is appended. Exact for any costs, including infinities.
void FoldSeriesNode(Work& w, int v) {
  int e1 = -1;
  int e2 = -1;
  for (int e : w.adj[static_cast<size_t>(v)]) {
    if (!w.edge_alive[static_cast<size_t>(e)]) {
      continue;
    }
    (e1 < 0 ? e1 : e2) = e;
  }
  ALPA_CHECK_GE(e2, 0);
  const int a = w.Peer(w.edges[static_cast<size_t>(e1)], v);
  const int b = w.Peer(w.edges[static_cast<size_t>(e2)], v);
  const auto& alive = w.choice_alive[static_cast<size_t>(v)];
  const auto& costs = w.unary[static_cast<size_t>(v)];
  int fallback = -1;  // First alive choice; used when a pair is infeasible.
  for (size_t i = 0; i < costs.size() && fallback < 0; ++i) {
    if (alive[i]) {
      fallback = static_cast<int>(i);
    }
  }
  ALPA_CHECK_GE(fallback, 0);

  const size_t ka = w.unary[static_cast<size_t>(a)].size();
  const size_t kb = w.unary[static_cast<size_t>(b)].size();
  FoldRecord record;
  record.v = v;
  record.into = a;
  record.into2 = b;
  record.pick2.assign(ka, std::vector<int>(kb, fallback));
  std::vector<std::vector<double>> folded(ka, std::vector<double>(kb, kInfCost));
  const auto& a_alive = w.choice_alive[static_cast<size_t>(a)];
  const auto& b_alive = w.choice_alive[static_cast<size_t>(b)];
  for (size_t ja = 0; ja < ka; ++ja) {
    if (!a_alive[ja]) {
      continue;
    }
    for (size_t jb = 0; jb < kb; ++jb) {
      if (!b_alive[jb]) {
        continue;
      }
      double best = kInfCost;
      int best_i = -1;
      for (size_t i = 0; i < costs.size(); ++i) {
        if (!alive[i]) {
          continue;
        }
        const double c = costs[i] +
                         w.Cost(w.edges[static_cast<size_t>(e1)], v, static_cast<int>(i),
                                static_cast<int>(ja)) +
                         w.Cost(w.edges[static_cast<size_t>(e2)], v, static_cast<int>(i),
                                static_cast<int>(jb));
        if (best_i < 0 || c < best) {
          best = c;
          best_i = static_cast<int>(i);
        }
      }
      // best_i < 0 cannot happen (fallback exists); an all-infinite column
      // leaves the entry at kInfCost, correctly marking the pair infeasible.
      if (best_i >= 0 && std::isfinite(best)) {
        folded[ja][jb] = best;
        record.pick2[ja][jb] = best_i;
      }
    }
  }
  w.out->folds.push_back(std::move(record));

  // Retire v and its edges, then fold the matrix into the (a, b) edge. The
  // (a, b) matrix changed, so both endpoints need a fresh dominance look.
  w.dirty[static_cast<size_t>(a)] = 1;
  w.dirty[static_cast<size_t>(b)] = 1;
  w.edge_alive[static_cast<size_t>(e1)] = 0;
  w.edge_alive[static_cast<size_t>(e2)] = 0;
  --w.degree[static_cast<size_t>(a)];
  --w.degree[static_cast<size_t>(b)];
  int ab = -1;
  for (int e : w.adj[static_cast<size_t>(a)]) {
    if (w.edge_alive[static_cast<size_t>(e)] &&
        w.Peer(w.edges[static_cast<size_t>(e)], a) == b) {
      ab = e;
      break;
    }
  }
  if (ab >= 0) {
    IlpProblem::Edge& edge = w.edges[static_cast<size_t>(ab)];
    const bool a_is_u = (edge.u == a);
    for (size_t ja = 0; ja < ka; ++ja) {
      for (size_t jb = 0; jb < kb; ++jb) {
        double& cell = a_is_u ? edge.cost[ja][jb] : edge.cost[jb][ja];
        cell += folded[ja][jb];
      }
    }
    w.out->stats.edges_folded += 2;
  } else {
    IlpProblem::Edge edge;
    edge.u = std::min(a, b);
    edge.v = std::max(a, b);
    if (edge.u == a) {
      edge.cost = std::move(folded);
    } else {
      edge.cost.assign(kb, std::vector<double>(ka, 0.0));
      for (size_t ja = 0; ja < ka; ++ja) {
        for (size_t jb = 0; jb < kb; ++jb) {
          edge.cost[jb][ja] = folded[ja][jb];
        }
      }
    }
    const int id = static_cast<int>(w.edges.size());
    w.edges.push_back(std::move(edge));
    w.edge_alive.push_back(1);
    w.adj[static_cast<size_t>(a)].push_back(id);
    w.adj[static_cast<size_t>(b)].push_back(id);
    ++w.degree[static_cast<size_t>(a)];
    ++w.degree[static_cast<size_t>(b)];
    w.out->stats.edges_folded += 1;  // Two consumed, one created.
  }
}

// Decides degree-0/1/2 nodes. A leaf's best response per neighbor choice is
// folded into the neighbor's cost vector; a degree-2 node folds into a
// synthesized neighbor-neighbor edge (series reduction). Each fold records
// the argmin for reconstruction. Returns true when anything folded; sets
// out->infeasible when a node ran out of choices.
bool PeelPass(Work& w) {
  const int n = static_cast<int>(w.unary.size());
  bool any = false;
  bool progress = true;
  while (progress && !w.out->infeasible) {
    progress = false;
    for (int v = 0; v < n && !w.out->infeasible; ++v) {
      if (!w.node_alive[static_cast<size_t>(v)] || w.degree[static_cast<size_t>(v)] > 2) {
        continue;
      }
      if (w.degree[static_cast<size_t>(v)] == 2) {
        FoldSeriesNode(w, v);
        w.node_alive[static_cast<size_t>(v)] = 0;
        w.degree[static_cast<size_t>(v)] = 0;
        ++w.out->stats.nodes_folded;
        any = true;
        progress = true;
        continue;
      }
      const auto& alive = w.choice_alive[static_cast<size_t>(v)];
      const auto& costs = w.unary[static_cast<size_t>(v)];
      if (w.degree[static_cast<size_t>(v)] == 0) {
        // Isolated: decide by argmin (first-wins). Infinite minima are kept
        // here — the final Evaluate on the original problem reports them as
        // infeasible, matching the legacy forest DP.
        double best = kInfCost;
        int best_i = -1;
        for (size_t i = 0; i < costs.size(); ++i) {
          if (alive[i] && (best_i < 0 || costs[i] < best)) {
            best = costs[i];
            best_i = static_cast<int>(i);
          }
        }
        if (best_i < 0) {
          w.out->infeasible = true;
          break;
        }
        FoldRecord isolated;
        isolated.v = v;
        isolated.pick = {best_i};
        w.out->folds.push_back(std::move(isolated));
      } else {
        int edge_id = -1;
        for (int e : w.adj[static_cast<size_t>(v)]) {
          if (w.edge_alive[static_cast<size_t>(e)]) {
            edge_id = e;
            break;
          }
        }
        ALPA_CHECK_GE(edge_id, 0);
        const IlpProblem::Edge& edge = w.edges[static_cast<size_t>(edge_id)];
        const int u = w.Peer(edge, v);
        auto& u_alive = w.choice_alive[static_cast<size_t>(u)];
        auto& u_unary = w.unary[static_cast<size_t>(u)];
        FoldRecord record;
        record.v = v;
        record.into = u;
        record.pick.assign(u_unary.size(), -1);
        for (size_t j = 0; j < u_unary.size(); ++j) {
          if (!u_alive[j]) {
            continue;
          }
          double best = kInfCost;
          int best_i = -1;
          for (size_t i = 0; i < costs.size(); ++i) {
            if (!alive[i]) {
              continue;
            }
            const double c = costs[i] + w.Cost(edge, v, static_cast<int>(i), static_cast<int>(j));
            if (best_i < 0 || c < best) {
              best = c;
              best_i = static_cast<int>(i);
            }
          }
          if (best_i < 0 || std::isinf(best)) {
            // No feasible response: u cannot pick j.
            u_alive[j] = 0;
            ++w.out->stats.choices_eliminated;
            continue;
          }
          record.pick[j] = best_i;
          u_unary[j] += best;
        }
        if (std::none_of(u_alive.begin(), u_alive.end(), [](char a) { return a != 0; })) {
          w.out->infeasible = true;
          break;
        }
        w.out->folds.push_back(std::move(record));
        w.edge_alive[static_cast<size_t>(edge_id)] = 0;
        --w.degree[static_cast<size_t>(u)];
        ++w.out->stats.edges_folded;
        // u's unary vector (and possibly alive set) changed: u and the nodes
        // that read u's alive set need re-examination.
        w.dirty[static_cast<size_t>(u)] = 1;
        w.MarkPeersDirty(u);
      }
      w.node_alive[static_cast<size_t>(v)] = 0;
      w.degree[static_cast<size_t>(v)] = 0;
      ++w.out->stats.nodes_folded;
      any = true;
      progress = true;
    }
  }
  return any;
}

// Per-node dominated-choice elimination. Choice j is dropped when some
// choice i satisfies worst(i) <= best(j) (pointwise dominance certificate):
// on ties the lower index survives, matching first-wins argmin everywhere
// else in the solver. Infeasible choices (best == inf) are dropped when a
// feasible sibling exists.
bool DominancePass(Work& w) {
  const int n = static_cast<int>(w.unary.size());
  bool any = false;
  std::vector<double> best, worst;
  std::vector<int> peer_js;
  for (int v = 0; v < n && !w.out->infeasible; ++v) {
    if (!w.node_alive[static_cast<size_t>(v)] || w.degree[static_cast<size_t>(v)] == 0 ||
        !w.dirty[static_cast<size_t>(v)]) {
      continue;
    }
    // Re-examining a node whose inputs (its unary vector, incident edge
    // matrices, and peers' alive sets) are unchanged is a no-op, so the
    // dirty-skip reproduces the full-sweep fixpoint exactly.
    w.dirty[static_cast<size_t>(v)] = 0;
    auto& alive = w.choice_alive[static_cast<size_t>(v)];
    const auto& costs = w.unary[static_cast<size_t>(v)];
    const size_t k = costs.size();
    best.assign(k, kInfCost);
    worst.assign(k, kInfCost);
    for (size_t i = 0; i < k; ++i) {
      if (!alive[i]) {
        continue;
      }
      best[i] = costs[i];
      worst[i] = costs[i];
    }
    for (int e : w.adj[static_cast<size_t>(v)]) {
      if (!w.edge_alive[static_cast<size_t>(e)]) {
        continue;
      }
      const IlpProblem::Edge& edge = w.edges[static_cast<size_t>(e)];
      const int peer = w.Peer(edge, v);
      const auto& peer_alive = w.choice_alive[static_cast<size_t>(peer)];
      peer_js.clear();
      for (size_t j = 0; j < peer_alive.size(); ++j) {
        if (peer_alive[j]) {
          peer_js.push_back(static_cast<int>(j));
        }
      }
      const bool v_is_u = (edge.u == v);
      for (size_t i = 0; i < k; ++i) {
        if (!alive[i]) {
          continue;
        }
        double lo = kInfCost;
        double hi = -kInfCost;
        if (v_is_u) {
          const double* row = edge.cost[i].data();
          for (int j : peer_js) {
            const double c = row[j];
            lo = std::min(lo, c);
            hi = std::max(hi, c);
          }
        } else {
          for (int j : peer_js) {
            const double c = edge.cost[static_cast<size_t>(j)][i];
            lo = std::min(lo, c);
            hi = std::max(hi, c);
          }
        }
        best[i] += lo;
        worst[i] += hi;
      }
    }
    // Drop infeasible choices first (keep them only if nothing is feasible;
    // the search then reports infeasibility with the right structure).
    const bool any_feasible =
        std::any_of(best.begin(), best.end(), [](double b) { return std::isfinite(b); });
    bool dropped_here = false;
    for (size_t j = 0; j < k; ++j) {
      if (!alive[j]) {
        continue;
      }
      bool drop = any_feasible && std::isinf(best[j]);
      for (size_t i = 0; i < k && !drop; ++i) {
        if (i == j || !alive[i]) {
          continue;
        }
        drop = i < j ? worst[i] <= best[j] : worst[i] < best[j];
      }
      if (drop) {
        alive[j] = 0;
        ++w.out->stats.choices_eliminated;
        dropped_here = true;
        any = true;
      }
    }
    if (dropped_here) {
      // v's alive set shrank, so every peer's lo/hi envelope may tighten.
      // v itself stays clean: a dominated choice is never a dominator the
      // survivors depended on, so no new drop at v can be enabled.
      w.MarkPeersDirty(v);
    }
    ALPA_CHECK(std::any_of(alive.begin(), alive.end(), [](char a) { return a != 0; }))
        << "presolve dropped every choice of node " << v;
  }
  return any;
}

}  // namespace

PresolvedProblem Presolve(const IlpProblem& problem) {
  PresolvedProblem out;
  const int n = problem.num_nodes();
  Work w;
  w.original = &problem;
  w.out = &out;
  w.unary = problem.node_costs;
  w.choice_alive.resize(static_cast<size_t>(n));
  for (int v = 0; v < n; ++v) {
    w.choice_alive[static_cast<size_t>(v)].assign(
        problem.node_costs[static_cast<size_t>(v)].size(), 1);
  }
  w.node_alive.assign(static_cast<size_t>(n), 1);
  w.dirty.assign(static_cast<size_t>(n), 1);
  MergeEdges(problem, w);
  w.edge_alive.assign(w.edges.size(), 1);
  w.adj.resize(static_cast<size_t>(n));
  w.degree.assign(static_cast<size_t>(n), 0);
  for (size_t e = 0; e < w.edges.size(); ++e) {
    w.adj[static_cast<size_t>(w.edges[e].u)].push_back(static_cast<int>(e));
    w.adj[static_cast<size_t>(w.edges[e].v)].push_back(static_cast<int>(e));
    ++w.degree[static_cast<size_t>(w.edges[e].u)];
    ++w.degree[static_cast<size_t>(w.edges[e].v)];
  }

  // Reductions enable each other (folding reshapes cost vectors, dominance
  // lowers degrees indirectly by shrinking matrices to single columns), so
  // iterate to a fixpoint. The guard is paranoia: every productive pass
  // removes at least one node or choice, so |iterations| <= nodes + choices.
  bool changed = true;
  for (int guard = 0; changed && !out.infeasible && guard < 4 * (n + 1); ++guard) {
    changed = PeelPass(w);
    if (!out.infeasible) {
      changed |= DominancePass(w);
    }
  }
  if (out.infeasible) {
    return out;
  }

  // Emit the compacted core.
  out.kept.resize(static_cast<size_t>(n));
  std::vector<int> core_index(static_cast<size_t>(n), -1);
  for (int v = 0; v < n; ++v) {
    if (!w.node_alive[static_cast<size_t>(v)]) {
      continue;
    }
    core_index[static_cast<size_t>(v)] = static_cast<int>(out.core_nodes.size());
    out.core_nodes.push_back(v);
    auto& kept = out.kept[static_cast<size_t>(v)];
    std::vector<double> costs;
    for (size_t i = 0; i < w.unary[static_cast<size_t>(v)].size(); ++i) {
      if (w.choice_alive[static_cast<size_t>(v)][i]) {
        kept.push_back(static_cast<int>(i));
        costs.push_back(w.unary[static_cast<size_t>(v)][i]);
      }
    }
    out.core.node_costs.push_back(std::move(costs));
  }
  for (size_t e = 0; e < w.edges.size(); ++e) {
    if (!w.edge_alive[e]) {
      continue;
    }
    const IlpProblem::Edge& edge = w.edges[e];
    IlpProblem::Edge compact;
    compact.u = core_index[static_cast<size_t>(edge.u)];
    compact.v = core_index[static_cast<size_t>(edge.v)];
    const auto& ku = out.kept[static_cast<size_t>(edge.u)];
    const auto& kv = out.kept[static_cast<size_t>(edge.v)];
    compact.cost.resize(ku.size());
    for (size_t i = 0; i < ku.size(); ++i) {
      compact.cost[i].resize(kv.size());
      for (size_t j = 0; j < kv.size(); ++j) {
        compact.cost[i][j] = edge.cost[static_cast<size_t>(ku[i])][static_cast<size_t>(kv[j])];
      }
    }
    out.core.edges.push_back(std::move(compact));
  }
  return out;
}

std::vector<int> PresolvedProblem::Reconstruct(const std::vector<int>& core_choice) const {
  ALPA_CHECK_EQ(static_cast<int>(core_choice.size()), core.num_nodes());
  std::vector<int> full(kept.size(), -1);
  for (size_t c = 0; c < core_nodes.size(); ++c) {
    const int v = core_nodes[c];
    full[static_cast<size_t>(v)] =
        kept[static_cast<size_t>(v)][static_cast<size_t>(core_choice[c])];
  }
  // Folds recorded earliest-first; later folds only depend on nodes that
  // survived longer, so reverse order resolves every dependency.
  for (auto it = folds.rbegin(); it != folds.rend(); ++it) {
    if (it->into < 0) {
      full[static_cast<size_t>(it->v)] = it->pick[0];
    } else if (it->into2 >= 0) {
      const int ca = full[static_cast<size_t>(it->into)];
      const int cb = full[static_cast<size_t>(it->into2)];
      ALPA_CHECK_GE(ca, 0);
      ALPA_CHECK_GE(cb, 0);
      full[static_cast<size_t>(it->v)] =
          it->pick2[static_cast<size_t>(ca)][static_cast<size_t>(cb)];
    } else {
      const int into_choice = full[static_cast<size_t>(it->into)];
      ALPA_CHECK_GE(into_choice, 0);
      full[static_cast<size_t>(it->v)] = it->pick[static_cast<size_t>(into_choice)];
      ALPA_CHECK_GE(full[static_cast<size_t>(it->v)], 0);
    }
  }
  return full;
}

uint64_t IlpProblemFingerprint(const IlpProblem& problem) {
  Fnv1a64 hasher;
  hasher.I32(problem.num_nodes());
  for (const auto& costs : problem.node_costs) {
    hasher.I32(static_cast<int32_t>(costs.size()));
    for (double c : costs) {
      hasher.Double(c);
    }
  }
  hasher.I32(static_cast<int32_t>(problem.edges.size()));
  for (const IlpProblem::Edge& e : problem.edges) {
    hasher.I32(e.u).I32(e.v);
    for (const auto& row : e.cost) {
      for (double c : row) {
        hasher.Double(c);
      }
    }
  }
  return hasher.hash();
}

}  // namespace alpa
