#include "src/solver/grasp.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "src/support/logging.h"
#include "src/support/rng.h"
#include "src/support/thread_pool.h"

namespace alpa {
namespace {

// Fixed construction order: descending degree (high-degree nodes decided
// first, while the candidate lists are still cheap to condition), ties by
// ascending id. One order for every restart keeps restarts comparable;
// diversification comes from the randomized choice sampling.
std::vector<int> ConstructionOrder(const FlatCore& f) {
  std::vector<int> order(static_cast<size_t>(f.n));
  for (int v = 0; v < f.n; ++v) order[static_cast<size_t>(v)] = v;
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const int da = f.degree(a);
    const int db = f.degree(b);
    if (da != db) return da > db;
    return a < b;
  });
  return order;
}

struct RestartResult {
  std::vector<int> choice;
  double objective = kFlatLarge;
  int64_t evaluations = 0;
};

// One randomized greedy construction + ICM polish, fully determined by
// (f, order, seed, alpha).
RestartResult RunRestart(const FlatCore& f, const std::vector<int>& order, uint64_t seed,
                         double alpha) {
  Rng rng(seed);
  RestartResult r;
  std::vector<int> choice(static_cast<size_t>(f.n), 0);
  std::vector<char> assigned(static_cast<size_t>(f.n), 0);
  std::vector<double> cond;   // Conditioned costs of the current node.
  std::vector<int> rcl;       // Indices in the restricted candidate list.
  std::vector<double> weight; // Sampling weights, parallel to rcl.
  for (int v : order) {
    const int k = f.K(v);
    cond.assign(static_cast<size_t>(k), 0.0);
    const double* row = f.unary.data() + f.off[static_cast<size_t>(v)];
    for (int i = 0; i < k; ++i) cond[static_cast<size_t>(i)] = row[i];
    for (int a = f.arc_off[static_cast<size_t>(v)]; a < f.arc_off[static_cast<size_t>(v) + 1]; ++a) {
      const FlatCore::Arc& arc = f.arcs[static_cast<size_t>(a)];
      if (!assigned[static_cast<size_t>(arc.peer)]) continue;
      const int pc = choice[static_cast<size_t>(arc.peer)];
      for (int i = 0; i < k; ++i) {
        cond[static_cast<size_t>(i)] += f.ArcCost(arc, i, pc);
      }
      r.evaluations += k;
    }
    // Feasible range of the conditioned row.
    double mn = std::numeric_limits<double>::infinity();
    double mx = -std::numeric_limits<double>::infinity();
    int argmin = 0;
    for (int i = 0; i < k; ++i) {
      const double c = cond[static_cast<size_t>(i)];
      if (c < cond[static_cast<size_t>(argmin)]) argmin = i;
      if (c >= kFlatInfeasible) continue;
      mn = std::min(mn, c);
      mx = std::max(mx, c);
    }
    if (!std::isfinite(mn)) {
      // No feasible choice under the current partial assignment; take the
      // least-bad one and let the ICM polish try to repair the neighbors.
      choice[static_cast<size_t>(v)] = argmin;
      assigned[static_cast<size_t>(v)] = 1;
      continue;
    }
    // Restricted candidate list, sampled cost-weighted: weights fall
    // linearly from 2 (at the conditioned minimum) to 1 (at the list's
    // threshold), so cheap choices are favored but the tail stays alive.
    const double width = mx - mn;
    const double threshold = mn + alpha * width;
    rcl.clear();
    weight.clear();
    double total = 0.0;
    for (int i = 0; i < k; ++i) {
      const double c = cond[static_cast<size_t>(i)];
      if (c >= kFlatInfeasible || c > threshold) continue;
      const double span = threshold - mn;
      const double w = span > 0.0 ? 1.0 + (threshold - c) / span : 1.0;
      rcl.push_back(i);
      weight.push_back(w);
      total += w;
    }
    int picked = rcl.front();
    if (rcl.size() > 1) {
      double ticket = rng.NextDouble() * total;
      for (size_t j = 0; j < rcl.size(); ++j) {
        ticket -= weight[j];
        if (ticket <= 0.0) {
          picked = rcl[j];
          break;
        }
      }
    }
    choice[static_cast<size_t>(v)] = picked;
    assigned[static_cast<size_t>(v)] = 1;
  }
  // Dirty-worklist local search, shared with the branch & bound's
  // incumbent polish.
  r.choice = FlatIcm(f, std::move(choice));
  r.objective = FlatValue(f, r.choice);
  // The polish cost is not instrumented; charge a flat estimate of two
  // full conditioning sweeps so the portfolio's budget accounting stays a
  // deterministic function of the problem shape.
  for (int v = 0; v < f.n; ++v) {
    r.evaluations += 2LL * f.K(v) * f.degree(v);
  }
  return r;
}

}  // namespace

GraspResult RunGrasp(const FlatCore& f, const GraspOptions& options) {
  ALPA_CHECK_GT(f.n, 0);
  const int restarts = std::max(1, options.restarts);
  const std::vector<int> order = ConstructionOrder(f);

  std::vector<RestartResult> results(static_cast<size_t>(restarts));
  ParallelFor(options.pool, restarts, [&](int64_t r) {
    results[static_cast<size_t>(r)] = RunRestart(
        f, order, options.seed + static_cast<uint64_t>(r), options.rcl_alpha);
  });

  // Deterministic reduce in restart order, first-wins on value ties.
  GraspResult best;
  best.restarts_run = restarts;
  for (const RestartResult& r : results) {
    best.evaluations += r.evaluations;
    if (r.objective < best.objective) {
      best.objective = r.objective;
      best.choice = r.choice;
    }
  }
  if (best.choice.empty() && !results.empty()) {
    best.choice = results.front().choice;
    best.objective = results.front().objective;
  }
  best.feasible = best.objective < kFlatInfeasible;
  return best;
}

}  // namespace alpa
