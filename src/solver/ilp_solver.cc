#include "src/solver/ilp_solver.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/solver/elimination.h"
#include "src/solver/flat_bnb.h"
#include "src/solver/ilp_presolve.h"
#include "src/solver/portfolio.h"
#include "src/support/hashing.h"
#include "src/support/logging.h"
#include "src/support/trace.h"

namespace alpa {

double IlpProblem::Evaluate(const std::vector<int>& choice) const {
  ALPA_CHECK_EQ(static_cast<int>(choice.size()), num_nodes());
  double total = 0.0;
  for (int v = 0; v < num_nodes(); ++v) {
    total += node_costs[static_cast<size_t>(v)][static_cast<size_t>(choice[static_cast<size_t>(v)])];
  }
  for (const Edge& e : edges) {
    total += e.cost[static_cast<size_t>(choice[static_cast<size_t>(e.u)])]
                   [static_cast<size_t>(choice[static_cast<size_t>(e.v)])];
  }
  return total;
}

double IlpSolution::optimality_gap() const {
  if (optimal || !feasible || !std::isfinite(objective)) {
    return 0.0;
  }
  // A relative gap is meaningless at zero or negative objectives (all-zero
  // cost plateaus, reward-shifted test instances): dividing would produce
  // garbage ratios or sign flips, so report 0 rather than divide.
  if (objective <= 0.0) {
    return 0.0;
  }
  const double gap = objective - lower_bound;
  if (gap <= 0.0) {
    return 0.0;
  }
  return gap / objective;
}

void IlpProblem::Validate() const {
  for (int v = 0; v < num_nodes(); ++v) {
    ALPA_CHECK_GT(num_choices(v), 0) << "node " << v << " has no choices";
  }
  for (const Edge& e : edges) {
    ALPA_CHECK_GE(e.u, 0);
    ALPA_CHECK_LT(e.u, num_nodes());
    ALPA_CHECK_GE(e.v, 0);
    ALPA_CHECK_LT(e.v, num_nodes());
    ALPA_CHECK_NE(e.u, e.v);
    ALPA_CHECK_EQ(static_cast<int>(e.cost.size()), num_choices(e.u));
    for (const auto& row : e.cost) {
      ALPA_CHECK_EQ(static_cast<int>(row.size()), num_choices(e.v));
    }
  }
}

namespace {

// Process-wide memo of core solves. The stage profiler solves the same
// presolved core many times across mesh variants whose differences folded
// away in presolve; the key covers everything the core search depends on
// (core fingerprint, budget, projected seeds), so a hit is exact. Cleared
// by IlpMemoCache::Clear() via ClearIlpCoreMemo().
struct CoreEntry {
  std::vector<int> choice;  // Core-compact.
  bool aborted = false;
  bool by_elimination = false;
  bool by_portfolio = false;
  int64_t explored = 0;
  // Core-space (clamped) lower bound from the branch & bound; only
  // meaningful when `aborted` (exact paths prove optimality instead).
  double lower_bound = 0.0;
};

struct CoreMemo {
  std::mutex mu;
  std::unordered_map<uint64_t, CoreEntry> entries;
};

CoreMemo& GlobalCoreMemo() {
  static CoreMemo* memo = new CoreMemo();
  return *memo;
}

constexpr size_t kCoreMemoCap = 65536;

// Projects a full-space seed assignment into the presolved core's compact
// choice space. Returns false when any seeded choice was eliminated by
// presolve (the seed then cannot be represented and is skipped as an
// incumbent; the seed-floor on the final objective still applies).
bool ProjectSeed(const PresolvedProblem& pre, const std::vector<int>& seed,
                 std::vector<int>* out) {
  out->assign(pre.core_nodes.size(), 0);
  for (size_t c = 0; c < pre.core_nodes.size(); ++c) {
    const int v = pre.core_nodes[c];
    const std::vector<int>& kept = pre.kept[static_cast<size_t>(v)];
    const int s = seed[static_cast<size_t>(v)];
    const auto it = std::lower_bound(kept.begin(), kept.end(), s);
    if (it == kept.end() || *it != s) {
      return false;
    }
    (*out)[c] = static_cast<int>(it - kept.begin());
  }
  return true;
}

void RecordPresolveMetrics(const IlpProblem& raw, const PresolvedProblem& pre) {
  static Metric* nodes_in = Metrics::Get("ilp/presolve/nodes_in");
  static Metric* nodes_out = Metrics::Get("ilp/presolve/nodes_out");
  static Metric* choices_in = Metrics::Get("ilp/presolve/choices_in");
  static Metric* choices_out = Metrics::Get("ilp/presolve/choices_out");
  static Metric* edges_in = Metrics::Get("ilp/presolve/edges_in");
  static Metric* edges_out = Metrics::Get("ilp/presolve/edges_out");
  static Metric* merged = Metrics::Get("ilp/presolve/parallel_edges_merged");
  static Metric* eliminated = Metrics::Get("ilp/presolve/choices_eliminated");
  static Metric* folded = Metrics::Get("ilp/presolve/nodes_folded");
  static Metric* edges_folded = Metrics::Get("ilp/presolve/edges_folded");
  int64_t raw_choices = 0;
  for (const auto& costs : raw.node_costs) raw_choices += static_cast<int64_t>(costs.size());
  int64_t core_choices = 0;
  for (const auto& costs : pre.core.node_costs) core_choices += static_cast<int64_t>(costs.size());
  nodes_in->Add(raw.num_nodes());
  nodes_out->Add(pre.core.num_nodes());
  choices_in->Add(raw_choices);
  choices_out->Add(core_choices);
  edges_in->Add(static_cast<int64_t>(raw.edges.size()));
  edges_out->Add(static_cast<int64_t>(pre.core.edges.size()));
  merged->Add(pre.stats.parallel_edges_merged);
  eliminated->Add(pre.stats.choices_eliminated);
  folded->Add(pre.stats.nodes_folded);
  edges_folded->Add(pre.stats.edges_folded);
}

// Weakest admissible bound — the sum of per-node and per-edge matrix
// minima. Used for the legacy engine, which reports no bound of its own.
double StaticLowerBound(const IlpProblem& p) {
  double total = 0.0;
  for (const auto& costs : p.node_costs) {
    double mn = kInfCost;
    for (double c : costs) mn = std::min(mn, c);
    total += mn;
  }
  for (const IlpProblem::Edge& e : p.edges) {
    double mn = kInfCost;
    for (const auto& row : e.cost) {
      for (double c : row) mn = std::min(mn, c);
    }
    total += mn;
  }
  return total;
}

void RecordOutcomeMetrics(const IlpSolution& solution) {
  static Metric* optimal = Metrics::Get("ilp/outcome/optimal");
  static Metric* aborted = Metrics::Get("ilp/outcome/aborted");
  static Metric* explored = Metrics::Get("ilp/outcome/explored");
  static Metric* gap_sum = Metrics::Get("ilp/outcome/gap_ppm_sum");
  static Metric* gap_max = Metrics::Get("ilp/outcome/gap_ppm_max");
  (solution.optimal ? optimal : aborted)->Add(1);
  explored->Add(solution.nodes_explored);
  if (!solution.optimal && solution.feasible) {
    // Gaps in parts-per-million: integral metrics, with the per-solve max
    // surviving as the metric's high-water mark (Metrics::MaxValue).
    const int64_t ppm = static_cast<int64_t>(std::llround(solution.optimality_gap() * 1e6));
    gap_sum->Add(ppm);
    gap_max->Set(ppm);
  }
}

}  // namespace

void ClearIlpCoreMemo() {
  CoreMemo& memo = GlobalCoreMemo();
  std::lock_guard<std::mutex> lock(memo.mu);
  memo.entries.clear();
}

IlpSolution IlpSolver::Solve(const IlpProblem& raw) const {
  if (options_.engine == IlpEngine::kLegacy) {
    static Metric* legacy_micros = Metrics::Get("ilp/legacy/micros");
    const auto legacy_t0 = std::chrono::steady_clock::now();
    IlpSolution legacy = SolveIlpLegacy(raw, options_);
    legacy_micros->Add(std::chrono::duration_cast<std::chrono::microseconds>(
                           std::chrono::steady_clock::now() - legacy_t0)
                           .count());
    legacy.lower_bound = legacy.optimal ? legacy.objective
                                        : std::min(StaticLowerBound(raw), legacy.objective);
    RecordOutcomeMetrics(legacy);
    return legacy;
  }
  raw.Validate();
  if (raw.num_nodes() == 0) {
    IlpSolution empty;
    empty.objective = 0.0;
    empty.optimal = true;
    empty.feasible = true;
    empty.method = "empty";
    return empty;
  }

  static Metric* presolve_micros = Metrics::Get("ilp/presolve/micros");
  static Metric* bnb_micros = Metrics::Get("ilp/bnb/micros");
  const auto pre_t0 = std::chrono::steady_clock::now();
  const PresolvedProblem pre = Presolve(raw);
  presolve_micros->Add(std::chrono::duration_cast<std::chrono::microseconds>(
                           std::chrono::steady_clock::now() - pre_t0)
                           .count());
  RecordPresolveMetrics(raw, pre);
  if (pre.infeasible) {
    IlpSolution infeasible;
    infeasible.method = "branch-and-bound";
    return infeasible;  // Some node has no feasible choice.
  }

  static Metric* dp_path = Metrics::Get("ilp/path/dp");
  static Metric* elim_path = Metrics::Get("ilp/path/elim");
  static Metric* bnb_path = Metrics::Get("ilp/path/bnb");
  static Metric* portfolio_path = Metrics::Get("ilp/path/portfolio");
  static Metric* memo_hits = Metrics::Get("ilp/core_memo/hits");
  static Metric* memo_misses = Metrics::Get("ilp/core_memo/misses");

  IlpSolution solution;
  if (pre.core.num_nodes() == 0) {
    // The whole problem folded away: chains, trees, and dominance-decided
    // graphs are solved exactly by presolve alone.
    dp_path->Add(1);
    solution.choice = pre.Reconstruct({});
    solution.objective = raw.Evaluate(solution.choice);
    solution.feasible = std::isfinite(solution.objective);
    solution.optimal = solution.feasible;
    solution.lower_bound = solution.objective;
    solution.method = "dp-forest";
    return solution;
  }

  std::vector<std::vector<int>> core_seeds;
  for (const std::vector<int>& seed : options_.seeds) {
    if (static_cast<int>(seed.size()) != raw.num_nodes()) continue;
    std::vector<int> projected;
    if (ProjectSeed(pre, seed, &projected)) {
      core_seeds.push_back(std::move(projected));
    }
  }

  CoreEntry entry;
  uint64_t exact_key = 0;
  uint64_t full_key = 0;
  bool have_entry = false;
  if (options_.use_core_memo) {
    // Two keys into one table. Elimination ignores seed incumbents and the
    // search budget, so its (exact, deterministic) results are stored under
    // a seedless key and hit across mesh variants whose cores agree but
    // whose projected seeds differ. B&B results can depend on the seeds
    // (incumbent pruning and ties on budget aborts), so they key on the
    // budget and seeds too. The elimination cap participates in both keys:
    // both engines are exact but tie-break differently.
    Fnv1a64 exact_hasher;
    exact_hasher.U64(0x45'4c'49'4dULL);  // Salt disjoint from the full key.
    exact_hasher.U64(IlpProblemFingerprint(pre.core));
    exact_hasher.I64(options_.max_elimination_table);
    exact_key = exact_hasher.hash();
    Fnv1a64 hasher;
    hasher.U64(IlpProblemFingerprint(pre.core));
    hasher.I64(options_.max_search_nodes);
    hasher.I64(options_.max_elimination_table);
    // Engine salt: portfolio and plain-staged searches can return different
    // (equally valid) plans on budget aborts, so their entries must not
    // alias. The exact key stays engine-free — elimination results are
    // engine-independent and shared.
    hasher.I32(static_cast<int32_t>(options_.engine));
    hasher.I32(static_cast<int32_t>(core_seeds.size()));
    for (const std::vector<int>& s : core_seeds) {
      for (int c : s) hasher.I32(c);
    }
    full_key = hasher.hash();
    CoreMemo& memo = GlobalCoreMemo();
    std::lock_guard<std::mutex> lock(memo.mu);
    auto it = memo.entries.find(exact_key);
    if (it == memo.entries.end()) {
      it = memo.entries.find(full_key);
    }
    if (it != memo.entries.end()) {
      entry = it->second;
      have_entry = true;
      memo_hits->Add(1);
    } else {
      memo_misses->Add(1);
    }
  }

  if (!have_entry) {
    std::optional<std::vector<int>> eliminated =
        SolveByElimination(pre.core, options_.max_elimination_table);
    if (eliminated.has_value()) {
      entry.choice = std::move(*eliminated);
      entry.by_elimination = true;
    } else if (options_.engine == IlpEngine::kPortfolio) {
      PortfolioOptions popt;
      popt.budget = std::max<int64_t>(1, options_.max_search_nodes);
      popt.pool = options_.pool;
      popt.incumbents = core_seeds;
      const auto bnb_t0 = std::chrono::steady_clock::now();
      PortfolioResult res = SolvePortfolio(pre.core, popt);
      bnb_micros->Add(std::chrono::duration_cast<std::chrono::microseconds>(
                          std::chrono::steady_clock::now() - bnb_t0)
                          .count());
      entry.choice = std::move(res.choice);
      entry.aborted = res.aborted;
      entry.explored = res.explored;
      entry.lower_bound = res.lower_bound;
      entry.by_portfolio = true;
    } else {
      FlatSearchOptions fopt;
      fopt.budget = std::max<int64_t>(1, options_.max_search_nodes);
      fopt.pool = options_.pool;
      fopt.incumbents = core_seeds;
      const auto bnb_t0 = std::chrono::steady_clock::now();
      FlatSearchResult res = SolveCore(pre.core, fopt);
      bnb_micros->Add(std::chrono::duration_cast<std::chrono::microseconds>(
                          std::chrono::steady_clock::now() - bnb_t0)
                          .count());
      entry.choice = std::move(res.choice);
      entry.aborted = res.aborted;
      entry.explored = res.explored;
      entry.lower_bound = res.lower_bound;
    }
    if (options_.use_core_memo) {
      CoreMemo& memo = GlobalCoreMemo();
      std::lock_guard<std::mutex> lock(memo.mu);
      if (memo.entries.size() < kCoreMemoCap) {
        memo.entries.emplace(entry.by_elimination ? exact_key : full_key, entry);
      }
    }
  }

  (entry.by_elimination ? elim_path : (entry.by_portfolio ? portfolio_path : bnb_path))->Add(1);
  solution.choice = pre.Reconstruct(entry.choice);
  solution.objective = raw.Evaluate(solution.choice);
  solution.nodes_explored = entry.explored;
  // Anytime bound, lifted from core space to raw space. Presolve folds
  // carry a constant offset between the core objective and the raw
  // objective of the reconstructed assignment, so the same offset lifts
  // the core lower bound. Computed before the seed floor: seeds are
  // feasible solutions, so the true optimum (and hence the bound) is
  // below them by definition.
  double raw_lb = solution.objective;
  if (entry.aborted && std::isfinite(solution.objective)) {
    const double core_val = pre.core.Evaluate(entry.choice);
    if (std::isfinite(core_val)) {
      raw_lb = entry.lower_bound + (solution.objective - core_val);
    }
  }
  // Seed floor: a caller-provided plan can never lose to the search result,
  // even on a budget abort.
  for (const std::vector<int>& seed : options_.seeds) {
    if (static_cast<int>(seed.size()) != raw.num_nodes()) continue;
    const double value = raw.Evaluate(seed);
    if (std::isfinite(value) && value < solution.objective) {
      solution.objective = value;
      solution.choice = seed;
    }
  }
  solution.feasible = std::isfinite(solution.objective);
  solution.lower_bound = std::min(raw_lb, solution.objective);
  if (entry.by_elimination) {
    solution.method = "elimination";
  } else {
    const char* base = entry.by_portfolio ? "portfolio" : "branch-and-bound";
    solution.method = entry.aborted ? std::string(base) + "(budget)" : base;
  }
  solution.optimal = !entry.aborted && solution.feasible;
  RecordOutcomeMetrics(solution);
  return solution;
}

}  // namespace alpa
