#include "src/solver/elimination.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "src/support/logging.h"
#include "src/support/trace.h"

namespace alpa {
namespace {

// A min-sum factor over a sorted list of core nodes. The table is row-major
// in var order (last var fastest).
struct Factor {
  std::vector<int> vars;
  std::vector<double> table;
};

// One planned elimination: node `v` and its neighborhood at that point,
// which is exactly the scope of the message the real pass will build.
struct PlannedStep {
  int v = 0;
  std::vector<int> nbrs;  // Sorted.
};

// Graph-only simulation of the elimination, maintaining the induced graph
// (neighbors of an eliminated node become a clique — the adjacency its
// message will create). Costs nothing but adjacency updates, so an
// over-width core is rejected before any table is touched.
//
// Order heuristic: among nodes whose message table fits the cap, pick the
// one whose elimination adds the fewest fill edges (min-fill), breaking
// ties toward the smaller table and then the lower id. Min-fill tracks
// treewidth far better than min-degree on the near-chordal graphs real
// stage cores produce, and a one-smaller induced width shrinks every
// downstream table by a domain factor. Returns false when no node fits
// the cap.
bool PlanOrder(int n, const std::vector<int>& domain,
               std::vector<std::vector<int>> adj, int64_t cap,
               std::vector<PlannedStep>* steps) {
  std::vector<char> alive(static_cast<size_t>(n), 1);
  steps->reserve(static_cast<size_t>(n));
  std::vector<int> merged;
  for (int round = 0; round < n; ++round) {
    int best_v = -1;
    int64_t best_size = 0;
    int64_t best_fill = 0;
    for (int v = 0; v < n; ++v) {
      if (!alive[static_cast<size_t>(v)]) {
        continue;
      }
      const std::vector<int>& nb = adj[static_cast<size_t>(v)];
      int64_t size = 1;
      for (int u : nb) {
        size *= domain[static_cast<size_t>(u)];
        if (size > cap) {
          break;
        }
      }
      if (size > cap) {
        continue;
      }
      int64_t fill = 0;
      for (size_t a = 0; a < nb.size(); ++a) {
        const std::vector<int>& aa = adj[static_cast<size_t>(nb[a])];
        for (size_t b = a + 1; b < nb.size(); ++b) {
          if (!std::binary_search(aa.begin(), aa.end(), nb[b])) {
            ++fill;
          }
        }
      }
      if (best_v < 0 || fill < best_fill ||
          (fill == best_fill && size < best_size)) {
        best_v = v;
        best_size = size;
        best_fill = fill;
      }
    }
    if (best_v < 0) {
      return false;
    }
    const int v = best_v;
    std::vector<int>& nbrs = adj[static_cast<size_t>(v)];
    for (int u : nbrs) {
      // adj[u] := (adj[u] ∪ nbrs) \ {u, v}, keeping it sorted.
      std::vector<int>& au = adj[static_cast<size_t>(u)];
      merged.clear();
      std::set_union(au.begin(), au.end(), nbrs.begin(), nbrs.end(),
                     std::back_inserter(merged));
      merged.erase(std::remove_if(merged.begin(), merged.end(),
                                  [&](int w) { return w == u || w == v; }),
                   merged.end());
      au = merged;
    }
    steps->push_back(PlannedStep{v, std::move(nbrs)});
    adj[static_cast<size_t>(v)].clear();
    alive[static_cast<size_t>(v)] = 0;
  }
  return true;
}

}  // namespace

std::optional<std::vector<int>> SolveByElimination(const IlpProblem& core,
                                                   int64_t max_table_entries) {
  const int n = core.num_nodes();
  if (n == 0) {
    return std::vector<int>{};
  }
  if (max_table_entries <= 0) {
    return std::nullopt;
  }
  std::vector<int> domain(static_cast<size_t>(n));
  for (int v = 0; v < n; ++v) {
    domain[static_cast<size_t>(v)] = core.num_choices(v);
  }
  std::vector<std::vector<int>> adj(static_cast<size_t>(n));
  for (const IlpProblem::Edge& e : core.edges) {
    adj[static_cast<size_t>(e.u)].push_back(e.v);
    adj[static_cast<size_t>(e.v)].push_back(e.u);
  }
  for (std::vector<int>& a : adj) {
    std::sort(a.begin(), a.end());
  }
  static Metric* bailed = Metrics::Get("ilp/elim/bailed");
  static Metric* solved = Metrics::Get("ilp/elim/solved");
  static Metric* cells_metric = Metrics::Get("ilp/elim/cells");
  static Metric* micros_metric = Metrics::Get("ilp/elim/micros");
  static Metric* plan_micros_metric = Metrics::Get("ilp/elim/plan_micros");
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<PlannedStep> steps;
  const bool planned = PlanOrder(n, domain, std::move(adj), max_table_entries, &steps);
  const auto t1 = std::chrono::steady_clock::now();
  plan_micros_metric->Add(
      std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0).count());
  if (!planned) {
    bailed->Add(1);
    return std::nullopt;
  }
  solved->Add(1);
  {
    int64_t cells = 0;
    for (const PlannedStep& step : steps) {
      int64_t size = 1;
      for (int u : step.nbrs) {
        size *= domain[static_cast<size_t>(u)];
      }
      cells += size;
    }
    cells_metric->Add(cells);
  }

  // Initial factors: one unary per node, one pairwise per edge, bucketed by
  // the nodes they mention so each elimination gathers in O(degree).
  std::vector<Factor> factors;
  factors.reserve(static_cast<size_t>(n) + core.edges.size() +
                  static_cast<size_t>(n));
  std::vector<std::vector<int>> node_factors(static_cast<size_t>(n));
  for (int v = 0; v < n; ++v) {
    node_factors[static_cast<size_t>(v)].push_back(static_cast<int>(factors.size()));
    factors.push_back(Factor{{v}, core.node_costs[static_cast<size_t>(v)]});
  }
  for (const IlpProblem::Edge& e : core.edges) {
    Factor f;
    const int u = std::min(e.u, e.v);
    const int v = std::max(e.u, e.v);
    f.vars = {u, v};
    f.table.reserve(static_cast<size_t>(domain[static_cast<size_t>(u)]) *
                    static_cast<size_t>(domain[static_cast<size_t>(v)]));
    if (u == e.u) {
      for (const auto& row : e.cost) {
        f.table.insert(f.table.end(), row.begin(), row.end());
      }
    } else {
      for (size_t j = 0; j < e.cost[0].size(); ++j) {
        for (size_t i = 0; i < e.cost.size(); ++i) {
          f.table.push_back(e.cost[i][j]);
        }
      }
    }
    node_factors[static_cast<size_t>(u)].push_back(static_cast<int>(factors.size()));
    node_factors[static_cast<size_t>(v)].push_back(static_cast<int>(factors.size()));
    factors.push_back(std::move(f));
  }

  std::vector<char> factor_alive(factors.size(), 1);
  std::vector<std::vector<int>> argmins;
  argmins.reserve(steps.size());
  // Position of each node in the current step's odometer; -1 elsewhere.
  std::vector<int> pos_of(static_cast<size_t>(n), -1);
  std::vector<int> digits;

  for (PlannedStep& step : steps) {
    const int v = step.v;
    std::vector<int>& nbrs = step.nbrs;
    const size_t width = nbrs.size();

    // Layout choice: place neighbors that only appear in narrow factors at
    // slow odometer positions. The level-partial accumulation below then
    // re-adds those factors once per slow-digit change instead of once per
    // cell (a node's unary factor, constant over the whole table, is added
    // exactly once). Wide messages keep the fast positions they need
    // anyway. The message is just a permuted layout — values, argmins, and
    // the reconstructed choice are unchanged.
    {
      std::vector<int> scope_weight(width, 0);
      for (int fid : node_factors[static_cast<size_t>(v)]) {
        if (!factor_alive[static_cast<size_t>(fid)]) {
          continue;
        }
        const Factor& f = factors[static_cast<size_t>(fid)];
        const int scope = static_cast<int>(f.vars.size()) - 1;  // Minus v.
        for (int u : f.vars) {
          if (u == v) continue;
          for (size_t p = 0; p < width; ++p) {
            if (nbrs[p] == u) {
              scope_weight[p] = std::max(scope_weight[p], scope);
              break;
            }
          }
        }
      }
      std::vector<int> order(width);
      for (size_t p = 0; p < width; ++p) order[p] = static_cast<int>(p);
      std::sort(order.begin(), order.end(), [&](int a, int b) {
        if (scope_weight[static_cast<size_t>(a)] != scope_weight[static_cast<size_t>(b)]) {
          return scope_weight[static_cast<size_t>(a)] < scope_weight[static_cast<size_t>(b)];
        }
        return nbrs[static_cast<size_t>(a)] < nbrs[static_cast<size_t>(b)];
      });
      std::vector<int> reordered(width);
      for (size_t p = 0; p < width; ++p) {
        reordered[p] = nbrs[static_cast<size_t>(order[p])];
      }
      nbrs = std::move(reordered);
    }

    int64_t table_size = 1;
    for (size_t p = 0; p < width; ++p) {
      pos_of[static_cast<size_t>(nbrs[p])] = static_cast<int>(p);
      table_size *= domain[static_cast<size_t>(nbrs[p])];
    }

    // Gather the alive factors mentioning v and re-lay each one out with v
    // as the fastest dimension: the hot loop below then reads kv contiguous
    // doubles per (cell, factor) instead of a strided scatter, which the
    // compiler turns into vector adds. The transpose is one linear pass per
    // factor — negligible next to the table_size * kv cell work.
    const int kv = domain[static_cast<size_t>(v)];
    struct Gathered {
      std::vector<double> table;  // Layout: [other vars (sorted), v].
      std::vector<std::pair<int, int64_t>> terms;  // (odometer pos, stride).
      int deepest = -1;  // Fastest odometer position in scope; -1 = constant.
    };
    std::vector<Gathered> gathered;
    std::vector<int> odo;
    for (int fid : node_factors[static_cast<size_t>(v)]) {
      if (!factor_alive[static_cast<size_t>(fid)]) {
        continue;
      }
      factor_alive[static_cast<size_t>(fid)] = 0;
      const Factor& f = factors[static_cast<size_t>(fid)];
      Gathered g;
      // Source strides, and the destination term list over the other vars.
      int64_t v_stride = 0;
      std::vector<int64_t> src_strides;  // Per other var, in var order.
      std::vector<int> others;
      {
        int64_t stride = 1;
        std::vector<int64_t> strides(f.vars.size());
        for (size_t p = f.vars.size(); p-- > 0;) {
          strides[p] = stride;
          stride *= domain[static_cast<size_t>(f.vars[p])];
        }
        for (size_t p = 0; p < f.vars.size(); ++p) {
          if (f.vars[p] == v) {
            v_stride = strides[p];
          } else {
            others.push_back(f.vars[p]);
            src_strides.push_back(strides[p]);
          }
        }
      }
      int64_t dst_stride = static_cast<int64_t>(kv);
      for (size_t p = others.size(); p-- > 0;) {
        ALPA_CHECK_GE(pos_of[static_cast<size_t>(others[p])], 0);
        g.terms.emplace_back(pos_of[static_cast<size_t>(others[p])], dst_stride);
        g.deepest = std::max(g.deepest, pos_of[static_cast<size_t>(others[p])]);
        dst_stride *= domain[static_cast<size_t>(others[p])];
      }
      // Transposing walk: odometer over the other vars (last fastest),
      // copying each v-row contiguously.
      g.table.resize(f.table.size());
      odo.assign(others.size(), 0);
      int64_t src_base = 0;
      for (int64_t dst = 0; dst < static_cast<int64_t>(g.table.size()); dst += kv) {
        for (int c = 0; c < kv; ++c) {
          g.table[static_cast<size_t>(dst + c)] =
              f.table[static_cast<size_t>(src_base + c * v_stride)];
        }
        for (size_t p = others.size(); p-- > 0;) {
          src_base += src_strides[p];
          if (++odo[p] < domain[static_cast<size_t>(others[p])]) {
            break;
          }
          odo[p] = 0;
          src_base -= src_strides[p] * domain[static_cast<size_t>(others[p])];
        }
      }
      gathered.push_back(std::move(g));
    }

    // Level-partial accumulation: layer p+1 = layer p plus every factor
    // whose deepest scope position is p, so a factor is re-added only when
    // a digit it can see changes. Constants (v's unary, fully-projected
    // messages) land in layer 0 exactly once; only factors touching the
    // fastest digit run per cell.
    std::vector<std::vector<int>> by_level(width);
    std::vector<double> partial((width + 1) * static_cast<size_t>(kv), 0.0);
    for (size_t gi = 0; gi < gathered.size(); ++gi) {
      const Gathered& g = gathered[gi];
      if (g.deepest < 0) {
        for (int c = 0; c < kv; ++c) {
          partial[static_cast<size_t>(c)] += g.table[static_cast<size_t>(c)];
        }
      } else {
        by_level[static_cast<size_t>(g.deepest)].push_back(static_cast<int>(gi));
      }
    }

    Factor message;
    message.vars = nbrs;
    message.table.assign(static_cast<size_t>(table_size), 0.0);
    std::vector<int> argmin(static_cast<size_t>(table_size), 0);
    digits.assign(width, 0);
    size_t changed_from = 0;
    std::vector<const double*> deep_rows;  // Per-cell rows of the deepest level.
    for (int64_t cell = 0; cell < table_size; ++cell) {
      // Rebuild the ticked slow layers; the deepest layer (whose digit
      // ticks every cell) is never materialized — its sums feed the argmin
      // directly below, same summation order and first-wins ties as a
      // materialized totals row.
      for (size_t p = changed_from; p + 1 < width; ++p) {
        const double* src = partial.data() + p * static_cast<size_t>(kv);
        double* dst = partial.data() + (p + 1) * static_cast<size_t>(kv);
        for (int c = 0; c < kv; ++c) {
          dst[c] = src[c];
        }
        for (int gi : by_level[p]) {
          const Gathered& g = gathered[static_cast<size_t>(gi)];
          int64_t base = 0;
          for (const auto& term : g.terms) {
            base += term.second * digits[static_cast<size_t>(term.first)];
          }
          const double* t = g.table.data() + base;
          for (int c = 0; c < kv; ++c) {
            dst[c] += t[c];
          }
        }
      }
      double best;
      int best_c = 0;
      if (width == 0) {
        const double* totals = partial.data();
        best = totals[0];
        for (int c = 1; c < kv; ++c) {
          if (totals[c] < best) {
            best = totals[c];
            best_c = c;
          }
        }
      } else {
        const double* src = partial.data() + (width - 1) * static_cast<size_t>(kv);
        deep_rows.clear();
        for (int gi : by_level[width - 1]) {
          const Gathered& g = gathered[static_cast<size_t>(gi)];
          int64_t base = 0;
          for (const auto& term : g.terms) {
            base += term.second * digits[static_cast<size_t>(term.first)];
          }
          deep_rows.push_back(g.table.data() + base);
        }
        best = kInfCost;
        best_c = 0;
        for (int c = 0; c < kv; ++c) {
          double total = src[c];
          for (const double* row : deep_rows) {
            total += row[c];
          }
          if (total < best) {
            best = total;
            best_c = c;
          }
        }
        // All-infinite columns leave best == kInfCost with best_c == 0,
        // exactly what a materialized totals row would report.
      }
      message.table[static_cast<size_t>(cell)] = best;
      argmin[static_cast<size_t>(cell)] = best_c;
      // Odometer increment, last neighborhood var fastest; the lowest
      // position that ticks bounds which partial layers need rebuilding.
      changed_from = 0;
      for (size_t p = width; p-- > 0;) {
        if (++digits[p] < domain[static_cast<size_t>(nbrs[p])]) {
          changed_from = p;
          break;
        }
        digits[p] = 0;
      }
    }
    argmins.push_back(std::move(argmin));

    for (int u : nbrs) {
      pos_of[static_cast<size_t>(u)] = -1;
      node_factors[static_cast<size_t>(u)].push_back(static_cast<int>(factors.size()));
    }
    factor_alive.push_back(width > 0);
    factors.push_back(std::move(message));
  }

  // Backward pass: each message ranges over nodes eliminated later, so the
  // reverse order resolves every dependency.
  std::vector<int> choice(static_cast<size_t>(n), -1);
  for (size_t s = steps.size(); s-- > 0;) {
    int64_t cell = 0;
    for (int u : steps[s].nbrs) {
      ALPA_CHECK_GE(choice[static_cast<size_t>(u)], 0);
      cell = cell * domain[static_cast<size_t>(u)] + choice[static_cast<size_t>(u)];
    }
    choice[static_cast<size_t>(steps[s].v)] = argmins[s][static_cast<size_t>(cell)];
  }
  micros_metric->Add(std::chrono::duration_cast<std::chrono::microseconds>(
                         std::chrono::steady_clock::now() - t1)
                         .count());
  return choice;
}

}  // namespace alpa
