#include "src/solver/portfolio.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/solver/anneal.h"
#include "src/solver/grasp.h"
#include "src/support/logging.h"
#include "src/support/trace.h"

namespace alpa {
namespace {

// The shared incumbent: advanced only at round boundaries by deterministic
// reduces, read by the next round as its starting bound/seed.
struct SharedIncumbent {
  std::vector<int> choice;
  double value = kFlatLarge * 2.0;  // Above any clamped assignment value.

  // Returns true when `candidate` strictly improves the incumbent.
  bool Offer(const std::vector<int>& candidate, double candidate_value) {
    if (candidate_value < value) {
      value = candidate_value;
      choice = candidate;
      return true;
    }
    return false;
  }
};

// Cores below these sizes solve in microseconds; skipping the
// metaheuristics keeps the portfolio's overhead at exactly zero there.
// Both gates are functions of (core, budget) only, so engine selection is
// deterministic.
constexpr int kMinNodesForMeta = 6;
constexpr int64_t kMinBudgetForMeta = 4096;

// The metaheuristics are denominated in arena lookups; the branch & bound
// budget is denominated in node expansions. One expansion conditions every
// unassigned neighbor's row, i.e. ~sum_w K(w) over neighbors lookups, so
// S / n (S = sum_v K(v) * degree(v)) converts between the two currencies.
struct BudgetPlan {
  int grasp_restarts = 0;
  int64_t sa_steps_per_chain = 0;
  int64_t meta_node_charge = 0;  // Node-units deducted from the search.
};

BudgetPlan PlanBudget(const FlatCore& f, const PortfolioOptions& options) {
  BudgetPlan plan;
  if (f.n < kMinNodesForMeta || options.budget < kMinBudgetForMeta) {
    return plan;
  }
  int64_t weighted_choices = 0;  // S: arena lookups of one full conditioning sweep.
  int64_t arcs2 = 0;             // 2 * |E|: per-SA-step lookup cost is ~2 * degree.
  for (int v = 0; v < f.n; ++v) {
    weighted_choices += static_cast<int64_t>(f.K(v)) * f.degree(v);
    arcs2 += f.degree(v);
  }
  const int64_t lookups_per_node = std::max<int64_t>(1, weighted_choices / f.n);
  const int64_t avg_step_lookups = std::max<int64_t>(2, 2 * arcs2 / f.n + 2);

  // One restart = construction (~S lookups) + ICM polish (~2S, the flat
  // estimate grasp.cc charges), so ~3S lookups = ~3n node-units.
  const int64_t restart_nodes = std::max<int64_t>(1, 3 * weighted_choices / lookups_per_node);
  const int64_t grasp_alloc = options.budget / 16;
  plan.grasp_restarts = static_cast<int>(std::clamp<int64_t>(
      grasp_alloc / restart_nodes, 0, options.max_grasp_restarts));
  if (plan.grasp_restarts < 2) plan.grasp_restarts = 0;  // Not worth a round.
  plan.meta_node_charge += plan.grasp_restarts * restart_nodes;

  const int chains = std::max(1, options.sa_chains);
  const int64_t sa_alloc_lookups = (options.budget / 16) * lookups_per_node;
  plan.sa_steps_per_chain = std::clamp<int64_t>(
      sa_alloc_lookups / (chains * avg_step_lookups), 0, options.max_sa_steps_per_chain);
  if (plan.sa_steps_per_chain < 512) plan.sa_steps_per_chain = 0;
  plan.meta_node_charge +=
      plan.sa_steps_per_chain * chains * avg_step_lookups / lookups_per_node;
  return plan;
}

void RecordMetrics(const PortfolioResult& r) {
  static Metric* races = Metrics::Get("ilp/portfolio/races");
  static Metric* won_grasp = Metrics::Get("ilp/portfolio/won_grasp");
  static Metric* won_sa = Metrics::Get("ilp/portfolio/won_sa");
  static Metric* won_bnb = Metrics::Get("ilp/portfolio/won_bnb");
  static Metric* won_seed = Metrics::Get("ilp/portfolio/won_seed");
  static Metric* handoffs = Metrics::Get("ilp/portfolio/incumbent_handoffs");
  static Metric* prunes = Metrics::Get("ilp/portfolio/bound_prunes");
  static Metric* restarts = Metrics::Get("ilp/portfolio/grasp_restarts");
  static Metric* sa_steps = Metrics::Get("ilp/portfolio/sa_steps");
  races->Add(1);
  switch (r.winner) {
    case PortfolioWinner::kGrasp: won_grasp->Add(1); break;
    case PortfolioWinner::kAnneal: won_sa->Add(1); break;
    case PortfolioWinner::kBnb: won_bnb->Add(1); break;
    case PortfolioWinner::kSeed: won_seed->Add(1); break;
  }
  handoffs->Add(r.incumbent_handoffs);
  prunes->Add(r.bound_prune_events);
  restarts->Add(r.grasp_restarts);
  sa_steps->Add(r.sa_steps);
}

}  // namespace

PortfolioResult SolvePortfolio(const IlpProblem& core, const PortfolioOptions& options) {
  ALPA_CHECK_GT(core.num_nodes(), 0);
  const FlatCore f = BuildFlatCore(core);
  const BudgetPlan plan = PlanBudget(f, options);

  PortfolioResult result;

  if (plan.grasp_restarts == 0 && plan.sa_steps_per_chain == 0) {
    // Trivial or starved core: no metaheuristic round is worth its charge,
    // so the portfolio degenerates to the plain exact search with zero
    // overhead (bit-identical to the staged engine here).
    FlatSearchOptions fopt;
    fopt.budget = std::max<int64_t>(1, options.budget);
    fopt.pool = options.pool;
    fopt.incumbents = options.incumbents;
    const FlatSearchResult search = SolveCoreOnFlat(f, fopt);
    result.choice = search.choice;
    result.objective = search.objective;
    result.feasible = search.feasible;
    result.aborted = search.aborted;
    result.lower_bound = search.lower_bound;
    result.explored = search.explored;
    result.bnb_budget = fopt.budget;
    result.bound_prune_events = search.root_branches_pruned;
    result.winner = PortfolioWinner::kBnb;
    RecordMetrics(result);
    return result;
  }

  // Round 1 — the exact probe: branch & bound under the full budget minus
  // the metaheuristic reserve. Caller seeds ride along unpolished: the
  // search polishes them and floors on them itself, so the portfolio can
  // never lose to a provided plan. No round-0 seeding happens before the
  // probe — the search already builds the same ICM-polished argmin start
  // internally, and recomputing it here would double-pay on every race.
  FlatSearchOptions fopt;
  fopt.budget = std::max<int64_t>(1, options.budget - plan.meta_node_charge);
  fopt.pool = options.pool;
  fopt.incumbents = options.incumbents;
  const FlatSearchResult search = SolveCoreOnFlat(f, fopt);

  result.explored = search.explored;
  result.bnb_budget = fopt.budget;
  result.bound_prune_events = search.root_branches_pruned;
  result.lower_bound = search.lower_bound;
  result.aborted = search.aborted;

  if (!search.aborted) {
    // The probe proved optimality — the reserve is never spent, and the
    // portfolio costs nothing over the plain exact search here. kBnb also
    // covers the case where the search merely confirmed a seed was optimal.
    result.choice = search.choice;
    result.objective = search.objective;
    result.feasible = search.feasible;
    result.winner = PortfolioWinner::kBnb;
    RecordMetrics(result);
    return result;
  }

  // The probe exhausted its share with an open gap: spend the reserve on
  // the metaheuristics. Round 0 happens lazily here — the ICM-polished
  // argmin start and every valid caller seed reduce into the shared
  // incumbent as the metaheuristic baseline, then the aborted search's own
  // best joins them: the exact side hands the metaheuristics its incumbent,
  // just as they hand theirs back through the final reduce.
  SharedIncumbent incumbent;
  {
    std::vector<int> base = FlatIcm(f, ArgminStart(f));
    incumbent.Offer(base, FlatValue(f, base));
    for (const std::vector<int>& seed : options.incumbents) {
      if (static_cast<int>(seed.size()) != f.n) continue;
      bool ok = true;
      for (int v = 0; v < f.n && ok; ++v) {
        ok = seed[static_cast<size_t>(v)] >= 0 && seed[static_cast<size_t>(v)] < f.K(v);
      }
      if (!ok) continue;
      std::vector<int> polished = FlatIcm(f, seed);
      incumbent.Offer(polished, FlatValue(f, polished));
    }
  }
  const double seed_value = incumbent.value;

  if (search.feasible && incumbent.Offer(search.choice, search.objective)) {
    ++result.incumbent_handoffs;
  }
  const double bnb_value = incumbent.value;

  // Round 2 — GRASP.
  if (plan.grasp_restarts > 0) {
    GraspOptions gopt;
    gopt.restarts = plan.grasp_restarts;
    gopt.pool = options.pool;
    const GraspResult grasp = RunGrasp(f, gopt);
    result.grasp_restarts = grasp.restarts_run;
    if (!grasp.choice.empty() && incumbent.Offer(grasp.choice, grasp.objective)) {
      ++result.incumbent_handoffs;
    }
  }
  const double grasp_value = incumbent.value;

  // Round 3 — simulated annealing, seeded from the shared incumbent.
  if (plan.sa_steps_per_chain > 0) {
    AnnealOptions aopt;
    aopt.chains = std::max(1, options.sa_chains);
    aopt.steps_per_chain = plan.sa_steps_per_chain;
    aopt.pool = options.pool;
    const AnnealResult sa = RunAnneal(f, incumbent.choice, aopt);
    result.sa_steps = sa.steps;
    if (!sa.choice.empty() && incumbent.Offer(sa.choice, sa.objective)) {
      ++result.incumbent_handoffs;
    }
  }
  const double sa_value = incumbent.value;

  // Final reduce: the best assignment any round produced, paired with the
  // probe's proven lower bound (anytime contract).
  result.choice = incumbent.choice;
  result.objective = incumbent.value;
  result.feasible = incumbent.value < kFlatInfeasible;
  if (result.feasible && result.objective <= result.lower_bound) {
    // A metaheuristic round reached the probe's proven bound: the gap is
    // closed even though the search itself ran out of budget.
    result.aborted = false;
  }
  result.lower_bound = std::min(result.lower_bound, result.objective);

  if (sa_value < grasp_value) {
    result.winner = PortfolioWinner::kAnneal;
  } else if (grasp_value < bnb_value) {
    result.winner = PortfolioWinner::kGrasp;
  } else if (bnb_value < seed_value) {
    result.winner = PortfolioWinner::kBnb;
  } else {
    result.winner = PortfolioWinner::kSeed;
  }
  RecordMetrics(result);
  return result;
}

}  // namespace alpa
