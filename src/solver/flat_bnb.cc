#include "src/solver/flat_bnb.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "src/solver/flat_core.h"
#include "src/support/logging.h"
#include "src/support/thread_pool.h"

namespace alpa {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Depth-first search state over one component. Copyable: root-level
// parallel branching clones the initialized state per root choice.
struct Searcher {
  const FlatCore* f = nullptr;
  const std::vector<int>* nodes = nullptr;  // Current component, ids ascending.

  // cond[off[v] + i]: unary[v][i] plus the matrix rows of every assigned
  // neighbor of v — the exact incremental cost of assigning v := i now.
  std::vector<double> cond;
  std::vector<char> assigned;
  std::vector<int> choice;
  std::vector<double> node_lb;  // min of cond row (valid while unassigned).
  // Gap between the best and second-best cond entries (valid while
  // unassigned); maintained incrementally in Push/Pop like node_lb so
  // SelectVar is O(nodes) instead of O(nodes * choices).
  std::vector<double> regret;
  double sum_node_lb = 0.0;     // Over unassigned nodes of the component.
  double sum_edge_min = 0.0;    // Over edges with both endpoints unassigned.
  int unassigned = 0;

  double best_obj = kInf;
  std::vector<int> best_choice;
  int64_t explored = 0;
  int64_t budget = 0;
  bool aborted = false;

  // Undo stacks: Pop restores neighbor cond rows by copy and the scalar
  // sums from frame-saved values (running-sum arithmetic undo would drift
  // in floating point).
  struct UndoRec {
    int node = 0;
    double old_lb = 0.0;
    double old_regret = 0.0;
  };
  std::vector<UndoRec> undo;
  std::vector<double> undo_cond;

  struct Frame {
    size_t undo_mark = 0;
    size_t cond_mark = 0;
    double saved_sum_node_lb = 0.0;
    double saved_sum_edge_min = 0.0;
  };

  // Best and second-best of a cond row; regret as used by SelectVar.
  static double RowRegret(const double* row, int k) {
    if (k == 1) {
      return std::numeric_limits<double>::max();
    }
    double m1 = kInf, m2 = kInf;
    for (int i = 0; i < k; ++i) {
      if (row[i] < m1) {
        m2 = m1;
        m1 = row[i];
      } else if (row[i] < m2) {
        m2 = row[i];
      }
    }
    return m2 - m1;
  }

  void Init(const FlatCore& flat) {
    f = &flat;
    cond.assign(flat.unary.begin(), flat.unary.end());
    assigned.assign(static_cast<size_t>(flat.n), 0);
    choice.assign(static_cast<size_t>(flat.n), 0);
    node_lb.assign(static_cast<size_t>(flat.n), 0.0);
    regret.assign(static_cast<size_t>(flat.n), 0.0);
  }

  void InitComponent(const std::vector<int>& comp) {
    nodes = &comp;
    unassigned = static_cast<int>(comp.size());
    sum_node_lb = 0.0;
    sum_edge_min = 0.0;
    for (int v : comp) {
      const int ov = f->off[static_cast<size_t>(v)];
      double mn = kInf;
      for (int i = 0; i < f->K(v); ++i) {
        // Reset in case a previous component's search left residue.
        cond[static_cast<size_t>(ov + i)] = f->unary[static_cast<size_t>(ov + i)];
        mn = std::min(mn, cond[static_cast<size_t>(ov + i)]);
      }
      node_lb[static_cast<size_t>(v)] = mn;
      regret[static_cast<size_t>(v)] = RowRegret(cond.data() + ov, f->K(v));
      sum_node_lb += mn;
      for (int a = f->arc_off[static_cast<size_t>(v)]; a < f->arc_off[static_cast<size_t>(v) + 1]; ++a) {
        const FlatCore::Arc& arc = f->arcs[static_cast<size_t>(a)];
        if (arc.peer > v) sum_edge_min += f->edge_min[static_cast<size_t>(arc.edge)];
      }
    }
    best_obj = kInf;
    best_choice.clear();
    explored = 0;
    aborted = false;
    undo.clear();
    undo_cond.clear();
  }

  // Max-regret variable selection: the unassigned node whose best and
  // second-best conditioned costs are farthest apart is decided first
  // (single-choice nodes immediately). Ties keep the lowest node id.
  int SelectVar() const {
    int v = -1;
    double best_regret = -1.0;
    for (int w : *nodes) {
      if (assigned[static_cast<size_t>(w)]) continue;
      if (regret[static_cast<size_t>(w)] > best_regret) {
        best_regret = regret[static_cast<size_t>(w)];
        v = w;
      }
    }
    return v;
  }

  // Choices of v in ascending conditioned cost (stable on ties via the
  // index in the pair). Values at or above the infeasibility threshold are
  // dropped: they can never be part of a feasible assignment.
  void ScoreVarInto(int v, std::vector<std::pair<double, int>>* scored) const {
    const double* row = cond.data() + f->off[static_cast<size_t>(v)];
    scored->clear();
    for (int i = 0; i < f->K(v); ++i) {
      if (row[i] < kFlatInfeasible) scored->emplace_back(row[i], i);
    }
    std::sort(scored->begin(), scored->end());
  }

  std::vector<std::pair<double, int>> ScoreVar(int v) const {
    std::vector<std::pair<double, int>> scored;
    ScoreVarInto(v, &scored);
    return scored;
  }

  Frame Push(int v, int c) {
    Frame fr{undo.size(), undo_cond.size(), sum_node_lb, sum_edge_min};
    for (int a = f->arc_off[static_cast<size_t>(v)]; a < f->arc_off[static_cast<size_t>(v) + 1]; ++a) {
      const FlatCore::Arc& arc = f->arcs[static_cast<size_t>(a)];
      const int w = arc.peer;
      if (assigned[static_cast<size_t>(w)]) continue;
      const int ow = f->off[static_cast<size_t>(w)];
      const int kw = f->K(w);
      undo.push_back(
          UndoRec{w, node_lb[static_cast<size_t>(w)], regret[static_cast<size_t>(w)]});
      undo_cond.insert(undo_cond.end(), cond.begin() + ow, cond.begin() + ow + kw);
      const double* row = f->arena.data() + arc.base + static_cast<int64_t>(c) * kw;
      double* cw = cond.data() + ow;
      double m1 = kInf, m2 = kInf;
      for (int i = 0; i < kw; ++i) {
        cw[i] += row[i];
        if (cw[i] < m1) {
          m2 = m1;
          m1 = cw[i];
        } else if (cw[i] < m2) {
          m2 = cw[i];
        }
      }
      sum_node_lb += m1 - node_lb[static_cast<size_t>(w)];
      node_lb[static_cast<size_t>(w)] = m1;
      regret[static_cast<size_t>(w)] =
          kw == 1 ? std::numeric_limits<double>::max() : m2 - m1;
      sum_edge_min -= f->edge_min[static_cast<size_t>(arc.edge)];
    }
    assigned[static_cast<size_t>(v)] = 1;
    choice[static_cast<size_t>(v)] = c;
    sum_node_lb -= node_lb[static_cast<size_t>(v)];
    --unassigned;
    return fr;
  }

  void Pop(const Frame& fr, int v) {
    ++unassigned;
    assigned[static_cast<size_t>(v)] = 0;
    size_t cpos = undo_cond.size();
    for (size_t r = undo.size(); r > fr.undo_mark; --r) {
      const UndoRec& u = undo[r - 1];
      const int ow = f->off[static_cast<size_t>(u.node)];
      const int kw = f->K(u.node);
      cpos -= static_cast<size_t>(kw);
      std::copy(undo_cond.begin() + static_cast<int64_t>(cpos),
                undo_cond.begin() + static_cast<int64_t>(cpos) + kw, cond.begin() + ow);
      node_lb[static_cast<size_t>(u.node)] = u.old_lb;
      regret[static_cast<size_t>(u.node)] = u.old_regret;
    }
    undo.resize(fr.undo_mark);
    undo_cond.resize(fr.cond_mark);
    sum_node_lb = fr.saved_sum_node_lb;
    sum_edge_min = fr.saved_sum_edge_min;
  }

  // Per-depth scoring scratch so the hot Dfs path never allocates after
  // the first descent; Searcher copies (root-parallel branching) copy the
  // buffers along, keeping each clone self-contained.
  std::vector<std::vector<std::pair<double, int>>> scored_stack;
  int depth = 0;

  void Dfs(double cost) {
    if (aborted) return;
    if (unassigned == 0) {
      if (cost < best_obj) {
        best_obj = cost;
        best_choice = choice;
      }
      return;
    }
    const int v = SelectVar();
    if (depth >= static_cast<int>(scored_stack.size())) {
      scored_stack.resize(static_cast<size_t>(depth) + 1);
    }
    std::vector<std::pair<double, int>>& scored = scored_stack[static_cast<size_t>(depth)];
    ScoreVarInto(v, &scored);
    const double without_v = sum_node_lb - node_lb[static_cast<size_t>(v)];
    for (const auto& [val, i] : scored) {
      // Admissible pre-push bound; later choices only cost more.
      if (cost + val + without_v + sum_edge_min >= best_obj) break;
      if (++explored > budget) {
        aborted = true;
        return;
      }
      const Frame fr = Push(v, i);
      // Tighter post-push bound: neighbor minima now conditioned on i.
      if (cost + val + sum_node_lb + sum_edge_min < best_obj) {
        ++depth;
        Dfs(cost + val);
        --depth;
      }
      Pop(fr, v);
      if (aborted) return;
    }
  }
};

}  // namespace

FlatSearchResult SolveCoreOnFlat(const FlatCore& f, const FlatSearchOptions& options) {
  FlatSearchResult result;
  result.choice.assign(static_cast<size_t>(f.n), 0);
  result.objective = 0.0;

  // Incumbent candidates: the ICM-polished argmin start, plus every valid
  // caller-provided assignment after the same polish.
  std::vector<std::vector<int>> candidates;
  candidates.push_back(FlatIcm(f, ArgminStart(f)));
  for (const std::vector<int>& seed : options.incumbents) {
    if (static_cast<int>(seed.size()) != f.n) continue;
    bool ok = true;
    for (int v = 0; v < f.n && ok; ++v) {
      ok = seed[static_cast<size_t>(v)] >= 0 && seed[static_cast<size_t>(v)] < f.K(v);
    }
    if (ok) candidates.push_back(FlatIcm(f, seed));
  }

  const int64_t budget_per_comp =
      std::max<int64_t>(1, options.budget / static_cast<int64_t>(f.comps.size()));

  Searcher base;
  base.Init(f);
  for (const std::vector<int>& comp : f.comps) {
    base.InitComponent(comp);

    // Component-local incumbent: best candidate restricted to this
    // component (first-wins on ties).
    double inc_val = kInf;
    const std::vector<int>* inc = nullptr;
    for (const std::vector<int>& cand : candidates) {
      const double val = ComponentValue(f, comp, cand);
      if (val < inc_val) {
        inc_val = val;
        inc = &cand;
      }
    }

    // Root-level branching: every surviving root choice becomes an
    // independent search with a fixed budget slice and the incumbent as its
    // only initial bound, so results do not depend on the pool (or on
    // having one at all); the deterministic in-order reduce below keeps
    // first-wins tie behaviour identical to a serial loop.
    const int root = base.SelectVar();
    const std::vector<std::pair<double, int>> scored = base.ScoreVar(root);
    const double without_root = base.sum_node_lb - base.node_lb[static_cast<size_t>(root)];
    std::vector<std::pair<double, int>> tasks;
    for (const auto& t : scored) {
      if (t.first + without_root + base.sum_edge_min >= inc_val) break;
      tasks.push_back(t);
    }
    result.root_branches_pruned +=
        static_cast<int64_t>(scored.size()) - static_cast<int64_t>(tasks.size());

    double comp_obj = inc_val;
    const std::vector<int>* comp_choice_src = inc;
    std::vector<int> comp_choice_owned;
    bool comp_aborted = false;
    double comp_lb = inc_val;

    if (!tasks.empty()) {
      struct TaskResult {
        double obj = kInf;
        std::vector<int> choice;
        bool aborted = false;
        int64_t spent = 0;  // Cumulative expansions across reruns.
      };
      std::vector<TaskResult> task_results(tasks.size());
      std::vector<int64_t> task_budget(
          tasks.size(),
          std::max<int64_t>(1, budget_per_comp / static_cast<int64_t>(tasks.size())));
      std::vector<size_t> pending(tasks.size());
      for (size_t t = 0; t < tasks.size(); ++t) pending[t] = t;
      double round_inc = inc_val;

      // Budget redistribution: after the even first-round split, branches
      // left aborted rerun with their old slice plus an equal share of the
      // budget the finished branches left unused (and with the tightest
      // incumbent found so far). Every round is a barrier reduced in index
      // order and each branch is a deterministic function of its (budget,
      // incumbent), so results stay bit-identical for any thread count.
      constexpr int kMaxRounds = 4;
      for (int round = 0; round < kMaxRounds && !pending.empty(); ++round) {
        ParallelFor(options.pool, static_cast<int64_t>(pending.size()), [&](int64_t pi) {
          const size_t t = pending[static_cast<size_t>(pi)];
          Searcher s = base;
          s.budget = task_budget[t];
          s.explored = 1;  // The root push below.
          s.best_obj = round_inc;
          const auto [val, i] = tasks[t];
          s.Push(root, i);
          if (val + s.sum_node_lb + s.sum_edge_min < s.best_obj) {
            s.Dfs(val);
          }
          TaskResult& r = task_results[t];
          // A rerun under a tighter incumbent may find nothing below it;
          // keep the earlier round's (obj, choice) pair in that case.
          // Updating obj alone would stamp the cross-branch incumbent
          // onto this branch's stale choice, and the first-wins reduce
          // below could then report an objective the stored choice does
          // not actually achieve.
          if (!s.best_choice.empty()) {
            r.obj = s.best_obj;
            r.choice = std::move(s.best_choice);
          }
          r.spent += s.explored;
          r.aborted = s.aborted;
        });
        std::vector<size_t> still_aborted;
        int64_t total_spent = 0;
        for (size_t t = 0; t < tasks.size(); ++t) {
          round_inc = std::min(round_inc, task_results[t].obj);
          total_spent += task_results[t].spent;
          if (task_results[t].aborted) still_aborted.push_back(t);
        }
        pending = std::move(still_aborted);
        const int64_t leftover = budget_per_comp - total_spent;
        if (pending.empty() || leftover < static_cast<int64_t>(pending.size())) {
          break;
        }
        const int64_t share = leftover / static_cast<int64_t>(pending.size());
        for (size_t t : pending) {
          task_budget[t] += share;
        }
      }

      for (size_t t = 0; t < task_results.size(); ++t) {
        result.explored += task_results[t].spent;
        comp_aborted = comp_aborted || task_results[t].aborted;
        if (task_results[t].obj < comp_obj && !task_results[t].choice.empty()) {
          comp_obj = task_results[t].obj;
          comp_choice_owned = task_results[t].choice;
          comp_choice_src = &comp_choice_owned;
        }
      }
      // Anytime bound: a finished branch proved its subtree holds nothing
      // better than comp_obj; an aborted branch is only bounded below by
      // its root pre-push bound. Root choices pruned from `tasks` had
      // bounds >= inc_val >= comp_obj, so they never lower it.
      comp_lb = comp_obj;
      for (size_t t = 0; t < task_results.size(); ++t) {
        if (task_results[t].aborted) {
          comp_lb = std::min(
              comp_lb, tasks[t].first + without_root + base.sum_edge_min);
        }
      }
    }

    ALPA_CHECK(comp_choice_src != nullptr);
    for (int v : comp) {
      result.choice[static_cast<size_t>(v)] = (*comp_choice_src)[static_cast<size_t>(v)];
    }
    result.objective += comp_obj;
    result.aborted = result.aborted || comp_aborted;
    result.lower_bound += std::min(comp_lb, comp_obj);
  }
  result.feasible = result.objective < kFlatInfeasible;
  if (result.aborted && result.feasible && result.lower_bound >= result.objective) {
    // The budget ran out, but the proven bound already meets the incumbent:
    // the incumbent is optimal, no further search could improve it. Common
    // once the diffusion bound is tight — the search finds the optimum
    // early and burns the rest of its budget failing to beat it.
    result.aborted = false;
  }
  if (!result.aborted || !result.feasible) {
    result.lower_bound = result.objective;
  }
  return result;
}

FlatSearchResult SolveCore(const IlpProblem& core, const FlatSearchOptions& options) {
  if (core.num_nodes() == 0) {
    FlatSearchResult result;
    result.objective = 0.0;
    result.feasible = true;
    return result;
  }
  const FlatCore f = BuildFlatCore(core);
  return SolveCoreOnFlat(f, options);
}

}  // namespace alpa
