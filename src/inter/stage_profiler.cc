#include "src/inter/stage_profiler.h"

#include <algorithm>
#include <chrono>
#include <unordered_map>
#include <utility>

#include "src/intra/ilp_cache.h"
#include "src/support/logging.h"
#include "src/support/strings.h"
#include "src/support/thread_pool.h"
#include "src/support/trace.h"

namespace alpa {

namespace {

double NowSeconds() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

#ifndef NDEBUG
// Full structural signature of a layer subgraph; only used to cross-check
// the 64-bit StructuralHash for collisions in debug builds.
std::string LayerSignature(const Graph& graph) {
  std::string sig;
  for (const Operator& op : graph.ops()) {
    sig += OpTypeName(op.type);
    sig += static_cast<char>('0' + static_cast<int>(op.role));
    sig += op.shape.ToString();
    sig += DTypeName(op.dtype);
    if (op.einsum.valid()) {
      sig += op.einsum.ToString();
    }
    for (int operand : op.operands) {
      sig += ",";
      sig += std::to_string(operand);
    }
    sig += ";";
  }
  return sig;
}
#endif

// Plan-space restriction realizing a memory mode, composed with any
// caller-provided filter.
AlgorithmFilter ModeFilter(MemoryMode mode, AlgorithmFilter base) {
  if (mode == MemoryMode::kTimeOptimal) {
    return base;
  }
  return [mode, base](const Graph& graph, const DeviceMesh& mesh, const Operator& op,
                      const ParallelAlgorithm& a) {
    if (base && !base(graph, mesh, op, a)) {
      return false;
    }
    if (op.type == OpType::kUpdate && op.shape.elements() > 1024) {
      return !a.output_spec.IsFullyReplicated();
    }
    if (mode == MemoryMode::kShardWeights && op.type == OpType::kParameter &&
        op.shape.elements() > 1024) {
      return !a.output_spec.IsFullyReplicated();
    }
    return true;
  };
}

}  // namespace

std::string StageVariant::ToString() const {
  const char* mode_name = mode == MemoryMode::kTimeOptimal
                              ? "time"
                              : (mode == MemoryMode::kShardOptimizer ? "zero2" : "zero3");
  return StrFormat("%s log(%d,%d) %s", physical.ToString().c_str(), logical[0], logical[1],
                   mode_name);
}

StageProfiler::StageProfiler(const Graph& graph, const ClusterSpec& cluster,
                             const std::vector<SubmeshShape>& shapes,
                             StageProfilerOptions options, ThreadPool* pool)
    : graph_(graph), cluster_(cluster), options_(options), pool_(pool) {
  num_layers_ = graph.NumLayers();
  ALPA_CHECK_GT(num_layers_, 0) << "Graph must be layer-tagged before profiling";
  layer_subgraphs_.reserve(static_cast<size_t>(num_layers_));
  for (int l = 0; l < num_layers_; ++l) {
    layer_subgraphs_.push_back(ExtractStage(graph, l, l));
  }

  // Structural dedup of identical layers, keyed on the 64-bit hash. The
  // hashes double as memo-cache keys, so they are computed even when dedup
  // is disabled.
  dedup_layer_.resize(static_cast<size_t>(num_layers_));
  layer_hashes_.resize(static_cast<size_t>(num_layers_));
  std::unordered_map<uint64_t, int> first_seen;
  for (int l = 0; l < num_layers_; ++l) {
    const uint64_t hash = StructuralHash(layer_subgraphs_[static_cast<size_t>(l)].graph);
    layer_hashes_[static_cast<size_t>(l)] = hash;
    if (!options_.dedup_identical_layers) {
      dedup_layer_[static_cast<size_t>(l)] = l;
      continue;
    }
    auto [it, inserted] = first_seen.emplace(hash, l);
    dedup_layer_[static_cast<size_t>(l)] = it->second;
#ifndef NDEBUG
    if (!inserted) {
      ALPA_CHECK(LayerSignature(layer_subgraphs_[static_cast<size_t>(l)].graph) ==
                 LayerSignature(layer_subgraphs_[static_cast<size_t>(it->second)].graph))
          << "StructuralHash collision between layers " << it->second << " and " << l;
    }
#endif
  }

  // Expand (physical shape x logical shape x memory mode).
  const std::vector<MemoryMode> modes =
      options_.memory_modes
          ? std::vector<MemoryMode>{MemoryMode::kTimeOptimal, MemoryMode::kShardOptimizer,
                                    MemoryMode::kShardWeights}
          : std::vector<MemoryMode>{MemoryMode::kTimeOptimal};
  for (const SubmeshShape& shape : shapes) {
    for (const std::array<int, 2>& logical : DeviceMesh::LogicalShapeOptions(shape)) {
      for (MemoryMode mode : modes) {
        variants_.push_back(StageVariant{shape, logical, mode});
        dp_shapes_.push_back(shape);
      }
    }
  }

  // once_flag is immovable, so rows are emplaced at their final size and
  // never copied or resized.
  layer_cache_.reserve(static_cast<size_t>(num_layers_));
  for (int l = 0; l < num_layers_; ++l) {
    layer_cache_.emplace_back(variants_.size());
  }

  // Eager sweep: pre-solve every dedup-canonical cell across the pool. The
  // interval DP touches exactly this set, so the sweep does no extra work;
  // it only reorders it onto concurrent workers. Cell results are
  // independent of solve order, so the sweep leaves the profiler in the
  // same state lazy solving would.
  if (pool_ != nullptr && pool_->num_threads() > 1 && !options_.exact_intervals) {
    // Category "pool": this span only exists when a pool drives the sweep,
    // so the "compile"-category span set stays identical across thread
    // counts (the determinism tests compare exactly that set).
    TraceSpan sweep_span("profiling_sweep", "pool");
    const double sweep_start = NowSeconds();
    std::vector<std::pair<int, int>> cells;
    cells.reserve(static_cast<size_t>(num_layers_) * variants_.size());
    for (int l = 0; l < num_layers_; ++l) {
      if (dedup_layer_[static_cast<size_t>(l)] != l) {
        continue;
      }
      for (int v = 0; v < static_cast<int>(variants_.size()); ++v) {
        cells.emplace_back(l, v);
      }
    }
    ParallelFor(pool_, static_cast<int64_t>(cells.size()), [&](int64_t i) {
      const auto& [layer, variant] = cells[static_cast<size_t>(i)];
      EnsureLayer(layer, variant);
    });
    sweep_wall_seconds_ = NowSeconds() - sweep_start;
    profiling_seconds_at_sweep_end_ = profiling_seconds();
  }
}

double StageProfiler::profiling_wall_seconds() const {
  if (sweep_wall_seconds_ == 0.0) {
    return profiling_seconds();
  }
  return sweep_wall_seconds_ + (profiling_seconds() - profiling_seconds_at_sweep_end_);
}

void StageProfiler::AddProfilingSeconds(double seconds) {
  double current = profiling_seconds_.load(std::memory_order_relaxed);
  while (!profiling_seconds_.compare_exchange_weak(current, current + seconds,
                                                   std::memory_order_relaxed)) {
  }
}

void StageProfiler::EnsureLayer(int layer, int variant_index) {
  const int canonical = dedup_layer_[static_cast<size_t>(layer)];
  LayerCell& cell =
      layer_cache_[static_cast<size_t>(canonical)][static_cast<size_t>(variant_index)];
  std::call_once(cell.once, [&] { SolveCell(canonical, variant_index, &cell); });
}

const IntraOpResult& StageProfiler::CellResult(int layer, int variant_index) const {
  const int canonical = dedup_layer_[static_cast<size_t>(layer)];
  return layer_cache_[static_cast<size_t>(canonical)][static_cast<size_t>(variant_index)]
      .result;
}

void StageProfiler::SolveCell(int canonical, int variant_index, LayerCell* cell) {
  const double start = NowSeconds();
  const StageVariant& variant = variants_[static_cast<size_t>(variant_index)];
  const StageSubgraph& subgraph = layer_subgraphs_[static_cast<size_t>(canonical)];
  TraceSpan span("ilp_solve");
  const auto annotate = [&](bool cache_hit) {
    if (span.active()) {
      span.set_args(StrFormat("\"layer\":%d,\"variant\":\"%s\",\"cache_hit\":%s", canonical,
                              JsonEscape(variant.ToString()).c_str(),
                              cache_hit ? "true" : "false"));
    }
  };

  // The key is built from the BASE options: the memory mode enters as a key
  // field, not through the composed ModeFilter (which would be an
  // unhashable closure).
  IlpCacheKey key;
  const bool cacheable =
      options_.use_ilp_cache &&
      ComputeIlpCacheKey(cluster_, variant.physical, variant.logical,
                         static_cast<int>(variant.mode), options_.intra,
                         layer_hashes_[static_cast<size_t>(canonical)], &key);
  if (cacheable && IlpMemoCache::Global().Lookup(key, &cell->result)) {
    cache_hits_.fetch_add(1, std::memory_order_relaxed);
    annotate(/*cache_hit=*/true);
    AddProfilingSeconds(NowSeconds() - start);
    return;
  }
  if (cacheable) {
    cache_misses_.fetch_add(1, std::memory_order_relaxed);
  }
  annotate(/*cache_hit=*/false);

  MeshPlacement placement;
  placement.shape = variant.physical;
  IntraOpOptions intra = options_.intra;
  intra.filter = ModeFilter(variant.mode, options_.intra.filter);
  // Root-level parallel branching inside the solver; results are identical
  // with or without the pool, so this does not perturb the cache key.
  intra.solver.pool = pool_;
  const DeviceMesh mesh = DeviceMesh::Create(cluster_, placement, variant.logical);
  cell->result = SolveIntraOp(subgraph.graph, mesh, intra);
  num_ilp_solves_.fetch_add(1, std::memory_order_relaxed);
  static Metric* solves_metric = Metrics::Get("ilp/solves");
  solves_metric->Add(1);
  if (cacheable) {
    IlpMemoCache::Global().Insert(key, cell->result);
  }
  AddProfilingSeconds(NowSeconds() - start);
}

StageProfile StageProfiler::Profile(int begin, int end, int variant_index) {
  ALPA_CHECK_GE(begin, 0);
  ALPA_CHECK_LE(end, num_layers_ - 1);
  ALPA_CHECK_LE(begin, end);

  if (options_.exact_intervals) {
    const auto key = std::make_tuple(begin, end, variant_index);
    {
      std::lock_guard<std::mutex> lock(exact_mu_);
      auto it = exact_cache_.find(key);
      if (it != exact_cache_.end()) {
        return it->second;
      }
    }
    // Solve outside the lock so distinct intervals profile concurrently.
    // Two threads may race to solve the same interval; the solver is
    // deterministic, so both compute the same profile and either insert
    // wins.
    const double start = NowSeconds();
    TraceSpan span("ilp_solve_exact");
    if (span.active()) {
      span.set_args(StrFormat("\"begin\":%d,\"end\":%d,\"variant\":%d", begin, end,
                              variant_index));
    }
    const StageSubgraph subgraph = ExtractStage(graph_, begin, end);
    const StageVariant& variant = variants_[static_cast<size_t>(variant_index)];
    MeshPlacement placement;
    placement.shape = variant.physical;
    IntraOpOptions intra = options_.intra;
    intra.filter = ModeFilter(variant.mode, options_.intra.filter);
    intra.solver.pool = pool_;
    const DeviceMesh mesh = DeviceMesh::Create(cluster_, placement, variant.logical);
    const IntraOpResult result = SolveIntraOp(subgraph.graph, mesh, intra);
    num_ilp_solves_.fetch_add(1, std::memory_order_relaxed);
    static Metric* solves_metric = Metrics::Get("ilp/solves");
    solves_metric->Add(1);
    StageProfile profile;
    if (result.feasible) {
      profile.t_intra = result.t_intra;
      profile.t_per_iteration = result.t_per_iteration;
      profile.weight_bytes = result.weight_bytes;
      profile.act_bytes_per_microbatch = result.act_bytes_per_microbatch;
      profile.work_bytes = result.work_bytes;
    }
    AddProfilingSeconds(NowSeconds() - start);
    {
      std::lock_guard<std::mutex> lock(exact_mu_);
      exact_cache_.emplace(key, profile);
    }
    return profile;
  }

  StageProfile profile;
  profile.t_intra = 0.0;
  for (int l = begin; l <= end; ++l) {
    EnsureLayer(l, variant_index);
    const IntraOpResult& result = CellResult(l, variant_index);
    if (!result.feasible) {
      return StageProfile{};
    }
    profile.t_intra += result.t_intra;
    profile.t_per_iteration += result.t_per_iteration;
    profile.weight_bytes += result.weight_bytes;
    profile.act_bytes_per_microbatch += result.act_bytes_per_microbatch;
    profile.work_bytes = std::max(profile.work_bytes, result.work_bytes);
  }
  return profile;
}

const IntraOpResult& StageProfiler::LayerResult(int layer, int variant_index) {
  EnsureLayer(layer, variant_index);
  return CellResult(layer, variant_index);
}

const StageSubgraph& StageProfiler::LayerSubgraph(int layer) const {
  return layer_subgraphs_[static_cast<size_t>(layer)];
}

}  // namespace alpa
