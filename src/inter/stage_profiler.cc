#include "src/inter/stage_profiler.h"

#include <chrono>

#include "src/support/logging.h"
#include "src/support/strings.h"

namespace alpa {

namespace {

double NowSeconds() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Structural signature of a layer subgraph; layers with equal signatures
// have identical ILP problems on any mesh.
std::string LayerSignature(const Graph& graph) {
  std::string sig;
  for (const Operator& op : graph.ops()) {
    sig += OpTypeName(op.type);
    sig += static_cast<char>('0' + static_cast<int>(op.role));
    sig += op.shape.ToString();
    sig += DTypeName(op.dtype);
    if (op.einsum.valid()) {
      sig += op.einsum.ToString();
    }
    for (int operand : op.operands) {
      sig += ",";
      sig += std::to_string(operand);
    }
    sig += ";";
  }
  return sig;
}

// Plan-space restriction realizing a memory mode, composed with any
// caller-provided filter.
AlgorithmFilter ModeFilter(MemoryMode mode, AlgorithmFilter base) {
  if (mode == MemoryMode::kTimeOptimal) {
    return base;
  }
  return [mode, base](const Graph& graph, const DeviceMesh& mesh, const Operator& op,
                      const ParallelAlgorithm& a) {
    if (base && !base(graph, mesh, op, a)) {
      return false;
    }
    if (op.type == OpType::kUpdate && op.shape.elements() > 1024) {
      return !a.output_spec.IsFullyReplicated();
    }
    if (mode == MemoryMode::kShardWeights && op.type == OpType::kParameter &&
        op.shape.elements() > 1024) {
      return !a.output_spec.IsFullyReplicated();
    }
    return true;
  };
}

}  // namespace

std::string StageVariant::ToString() const {
  const char* mode_name = mode == MemoryMode::kTimeOptimal
                              ? "time"
                              : (mode == MemoryMode::kShardOptimizer ? "zero2" : "zero3");
  return StrFormat("%s log(%d,%d) %s", physical.ToString().c_str(), logical[0], logical[1],
                   mode_name);
}

StageProfiler::StageProfiler(const Graph& graph, const ClusterSpec& cluster,
                             const std::vector<SubmeshShape>& shapes,
                             StageProfilerOptions options)
    : graph_(graph), cluster_(cluster), options_(options) {
  num_layers_ = graph.NumLayers();
  ALPA_CHECK_GT(num_layers_, 0) << "Graph must be layer-tagged before profiling";
  layer_subgraphs_.reserve(static_cast<size_t>(num_layers_));
  for (int l = 0; l < num_layers_; ++l) {
    layer_subgraphs_.push_back(ExtractStage(graph, l, l));
  }

  // Structural dedup of identical layers.
  dedup_layer_.resize(static_cast<size_t>(num_layers_));
  std::map<std::string, int> first_seen;
  for (int l = 0; l < num_layers_; ++l) {
    if (!options_.dedup_identical_layers) {
      dedup_layer_[static_cast<size_t>(l)] = l;
      continue;
    }
    const std::string sig = LayerSignature(layer_subgraphs_[static_cast<size_t>(l)].graph);
    auto [it, inserted] = first_seen.emplace(sig, l);
    dedup_layer_[static_cast<size_t>(l)] = it->second;
  }

  // Expand (physical shape x logical shape x memory mode).
  const std::vector<MemoryMode> modes =
      options_.memory_modes
          ? std::vector<MemoryMode>{MemoryMode::kTimeOptimal, MemoryMode::kShardOptimizer,
                                    MemoryMode::kShardWeights}
          : std::vector<MemoryMode>{MemoryMode::kTimeOptimal};
  for (const SubmeshShape& shape : shapes) {
    for (const std::array<int, 2>& logical : DeviceMesh::LogicalShapeOptions(shape)) {
      for (MemoryMode mode : modes) {
        variants_.push_back(StageVariant{shape, logical, mode});
        dp_shapes_.push_back(shape);
      }
    }
  }
  layer_cache_.assign(static_cast<size_t>(num_layers_),
                      std::vector<LayerEntry>(variants_.size()));
}

void StageProfiler::EnsureLayer(int layer, int variant_index) {
  const int canonical = dedup_layer_[static_cast<size_t>(layer)];
  LayerEntry& entry =
      layer_cache_[static_cast<size_t>(layer)][static_cast<size_t>(variant_index)];
  if (entry.ready) {
    return;
  }
  if (canonical != layer) {
    EnsureLayer(canonical, variant_index);
    entry = layer_cache_[static_cast<size_t>(canonical)][static_cast<size_t>(variant_index)];
    return;
  }
  const double start = NowSeconds();
  const StageVariant& variant = variants_[static_cast<size_t>(variant_index)];
  const StageSubgraph& subgraph = layer_subgraphs_[static_cast<size_t>(layer)];
  MeshPlacement placement;
  placement.shape = variant.physical;
  IntraOpOptions intra = options_.intra;
  intra.filter = ModeFilter(variant.mode, options_.intra.filter);
  const DeviceMesh mesh = DeviceMesh::Create(cluster_, placement, variant.logical);
  entry.result = SolveIntraOp(subgraph.graph, mesh, intra);
  ++num_ilp_solves_;
  entry.ready = true;
  profiling_seconds_ += NowSeconds() - start;
}

StageProfile StageProfiler::Profile(int begin, int end, int variant_index) {
  ALPA_CHECK_GE(begin, 0);
  ALPA_CHECK_LE(end, num_layers_ - 1);
  ALPA_CHECK_LE(begin, end);

  if (options_.exact_intervals) {
    const auto key = std::make_tuple(begin, end, variant_index);
    auto it = exact_cache_.find(key);
    if (it != exact_cache_.end()) {
      return it->second;
    }
    const double start = NowSeconds();
    const StageSubgraph subgraph = ExtractStage(graph_, begin, end);
    const StageVariant& variant = variants_[static_cast<size_t>(variant_index)];
    MeshPlacement placement;
    placement.shape = variant.physical;
    IntraOpOptions intra = options_.intra;
    intra.filter = ModeFilter(variant.mode, options_.intra.filter);
    const DeviceMesh mesh = DeviceMesh::Create(cluster_, placement, variant.logical);
    const IntraOpResult result = SolveIntraOp(subgraph.graph, mesh, intra);
    ++num_ilp_solves_;
    StageProfile profile;
    if (result.feasible) {
      profile.t_intra = result.t_intra;
      profile.t_per_iteration = result.t_per_iteration;
      profile.weight_bytes = result.weight_bytes;
      profile.act_bytes_per_microbatch = result.act_bytes_per_microbatch;
      profile.work_bytes = result.work_bytes;
    }
    profiling_seconds_ += NowSeconds() - start;
    exact_cache_[key] = profile;
    return profile;
  }

  StageProfile profile;
  profile.t_intra = 0.0;
  for (int l = begin; l <= end; ++l) {
    EnsureLayer(l, variant_index);
    const IntraOpResult& result =
        layer_cache_[static_cast<size_t>(l)][static_cast<size_t>(variant_index)].result;
    if (!result.feasible) {
      return StageProfile{};
    }
    profile.t_intra += result.t_intra;
    profile.t_per_iteration += result.t_per_iteration;
    profile.weight_bytes += result.weight_bytes;
    profile.act_bytes_per_microbatch += result.act_bytes_per_microbatch;
    profile.work_bytes = std::max(profile.work_bytes, result.work_bytes);
  }
  return profile;
}

const IntraOpResult& StageProfiler::LayerResult(int layer, int variant_index) {
  EnsureLayer(layer, variant_index);
  return layer_cache_[static_cast<size_t>(layer)][static_cast<size_t>(variant_index)].result;
}

const StageSubgraph& StageProfiler::LayerSubgraph(int layer) const {
  return layer_subgraphs_[static_cast<size_t>(layer)];
}

}  // namespace alpa
