#include "src/inter/stage_extraction.h"

#include "src/support/logging.h"

namespace alpa {

StageSubgraph ExtractStage(const Graph& graph, int layer_begin, int layer_end) {
  ALPA_CHECK_LE(layer_begin, layer_end);
  StageSubgraph stage;
  stage.layer_begin = layer_begin;
  stage.layer_end = layer_end;
  stage.op_map.assign(static_cast<size_t>(graph.size()), -1);

  auto in_range = [&](const Operator& op) {
    return op.layer >= layer_begin && op.layer <= layer_end;
  };

  for (int id = 0; id < graph.size(); ++id) {
    const Operator& op = graph.op(id);
    if (!in_range(op)) {
      continue;
    }
    Operator copy = op;
    copy.operands.clear();
    for (int operand : op.operands) {
      int mapped = stage.op_map[static_cast<size_t>(operand)];
      if (mapped < 0) {
        // Producer lives outside the stage: materialize a placeholder input.
        const Operator& producer = graph.op(operand);
        if (in_range(producer)) {
          // Operand is inside the range but its id maps to -1 only if the
          // graph is not topologically ordered; Validate() precludes this.
          ALPA_LOG(FATAL) << "Stage extraction found unmapped in-range operand";
        }
        Operator placeholder;
        placeholder.type = OpType::kInput;
        placeholder.role = producer.role;
        placeholder.name = producer.name + ".boundary";
        placeholder.shape = producer.shape;
        placeholder.dtype = producer.dtype;
        placeholder.layer = layer_begin;
        mapped = stage.graph.Append(std::move(placeholder));
        stage.reverse_map.push_back(-1);
        stage.op_map[static_cast<size_t>(operand)] = mapped;
        stage.inputs.push_back(BoundaryTensor{operand, producer.OutputBytes(),
                                              producer.role == OpRole::kForward});
      }
      copy.operands.push_back(mapped);
    }
    // Remap auxiliary links.
    if (copy.forward_id >= 0) {
      copy.forward_id = stage.op_map[static_cast<size_t>(copy.forward_id)];
    }
    if (copy.param_id >= 0) {
      copy.param_id = stage.op_map[static_cast<size_t>(copy.param_id)];
    }
    const int new_id = stage.graph.Append(std::move(copy));
    stage.reverse_map.push_back(id);
    stage.op_map[static_cast<size_t>(id)] = new_id;
  }

  // Boundary outputs: in-range producers consumed by out-of-range ops.
  std::vector<char> reported(static_cast<size_t>(graph.size()), 0);
  for (int id = 0; id < graph.size(); ++id) {
    const Operator& op = graph.op(id);
    if (in_range(op)) {
      continue;
    }
    for (int operand : op.operands) {
      const Operator& producer = graph.op(operand);
      if (in_range(producer) && !reported[static_cast<size_t>(operand)]) {
        reported[static_cast<size_t>(operand)] = 1;
        stage.outputs.push_back(BoundaryTensor{operand, producer.OutputBytes(),
                                               producer.role == OpRole::kForward});
      }
    }
  }

  stage.graph.Validate();
  return stage;
}

}  // namespace alpa
