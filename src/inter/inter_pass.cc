#include "src/inter/inter_pass.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <functional>
#include <map>
#include <memory>
#include <utility>

#include "src/mesh/device_mesh.h"
#include "src/support/logging.h"
#include "src/support/strings.h"
#include "src/support/thread_pool.h"
#include "src/support/trace.h"

namespace alpa {

namespace {

double NowSeconds() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// One candidate stage count of the equal-layer search: DP over
// stages x remaining devices with fixed stage boundaries.
StageDpResult SolveEqualLayerForCount(int num_stages, int num_layers, int num_microbatches,
                                      const std::vector<SubmeshShape>& shapes,
                                      const StageProfileFn& profile, int total_devices,
                                      double memory) {
  StageDpResult result;
  const int span = num_layers / num_stages;
  const size_t num_shapes = shapes.size();
  // Profiles are fetched once per (stage, shape) and reused by both the DP
  // and the reconstruction below. Re-invoking profile() while
  // reconstructing — as an earlier version did — repeats profiler work and
  // lets the reconstructed plan silently diverge from the DP's costs if
  // the profile function is not a pure cache.
  std::vector<StageProfile> stage_profiles(static_cast<size_t>(num_stages) * num_shapes);
  const auto profile_at = [&](int s, size_t shape_index) -> const StageProfile& {
    return stage_profiles[static_cast<size_t>(s) * num_shapes + shape_index];
  };
  for (int s = 0; s < num_stages; ++s) {
    const int begin = s * span;
    for (size_t shape_index = 0; shape_index < num_shapes; ++shape_index) {
      stage_profiles[static_cast<size_t>(s) * num_shapes + shape_index] =
          profile(begin, begin + span - 1, static_cast<int>(shape_index));
    }
  }
  const auto effective = [num_microbatches](const StageProfile& p) {
    return p.t_intra + p.t_per_iteration / static_cast<double>(num_microbatches) +
           1e-18 * (p.weight_bytes + p.act_bytes_per_microbatch);
  };
  // dp[s][d]: min sum of stage latencies covering stages [s, num_stages)
  // with d devices. Track sum and reconstruct; the max is derived from the
  // reconstruction.
  const size_t width = static_cast<size_t>(total_devices) + 1;
  std::vector<double> dp(static_cast<size_t>(num_stages + 1) * width, kInfCost);
  std::vector<int> choice(static_cast<size_t>(num_stages + 1) * width, -1);
  dp[static_cast<size_t>(num_stages) * width + 0] = 0.0;
  for (int s = num_stages - 1; s >= 0; --s) {
    const int in_flight = num_stages - s;
    for (size_t shape_index = 0; shape_index < num_shapes; ++shape_index) {
      const StageProfile& p = profile_at(s, shape_index);
      if (!std::isfinite(p.t_intra)) {
        continue;
      }
      if (p.weight_bytes + in_flight * p.act_bytes_per_microbatch + p.work_bytes > memory) {
        continue;
      }
      const double t_eff = effective(p);
      const int used = shapes[shape_index].num_devices();
      for (int d = used; d <= total_devices; ++d) {
        const double rest = dp[static_cast<size_t>(s + 1) * width + static_cast<size_t>(d - used)];
        if (!std::isfinite(rest)) {
          continue;
        }
        const size_t idx = static_cast<size_t>(s) * width + static_cast<size_t>(d);
        if (t_eff + rest < dp[idx]) {
          dp[idx] = t_eff + rest;
          choice[idx] = static_cast<int>(shape_index);
        }
      }
    }
  }
  const double sum = dp[static_cast<size_t>(total_devices)];
  if (!std::isfinite(sum)) {
    return result;
  }
  // Reconstruct from the cached profiles the DP scored.
  std::vector<StageAssignment> stages;
  double max_latency = 0.0;
  double reconstructed_sum = 0.0;
  int d = total_devices;
  for (int s = 0; s < num_stages; ++s) {
    const int shape_index = choice[static_cast<size_t>(s) * width + static_cast<size_t>(d)];
    if (shape_index < 0) {
      return result;
    }
    const int begin = s * span;
    const StageProfile& p = profile_at(s, static_cast<size_t>(shape_index));
    stages.push_back(StageAssignment{begin, begin + span - 1, shape_index, p.t_intra});
    max_latency = std::max(
        max_latency, p.t_intra + p.t_per_iteration / static_cast<double>(num_microbatches));
    reconstructed_sum += effective(p);
    d -= shapes[static_cast<size_t>(shape_index)].num_devices();
  }
  if (d != 0) {
    return result;
  }
  ALPA_CHECK(std::abs(reconstructed_sum - sum) <=
             1e-9 * std::max(1.0, std::abs(sum)))
      << "Equal-layer reconstruction latency " << reconstructed_sum
      << " diverged from DP value " << sum;
  result.feasible = true;
  result.total_latency = sum + (num_microbatches - 1) * max_latency;
  result.stage_latency_sum = sum;
  result.max_stage_latency = max_latency;
  result.stages = std::move(stages);
  return result;
}

// Restricted stage search for the "Equal layer" ablation (7.3): stage
// boundaries are fixed to equal layer counts; only the device assignment is
// optimized. Candidate stage counts are independent, so they fan out across
// the pool; the merge walks candidates in ascending order with strict
// improvement, giving the same winner as the serial loop.
StageDpResult SolveEqualLayer(int num_layers, int num_microbatches, const ClusterSpec& cluster,
                              const std::vector<SubmeshShape>& shapes,
                              const StageProfileFn& profile, const StageDpOptions& options) {
  const int total_devices = cluster.num_devices();
  const double memory = options.device_memory_override > 0.0
                            ? options.device_memory_override
                            : cluster.device.memory_bytes;
  std::vector<int> candidates;
  for (int num_stages = 1; num_stages <= std::min(num_layers, total_devices); ++num_stages) {
    if (num_layers % num_stages == 0) {
      candidates.push_back(num_stages);
    }
  }
  std::vector<StageDpResult> results(candidates.size());
  ParallelFor(options.pool, static_cast<int64_t>(candidates.size()), [&](int64_t i) {
    results[static_cast<size_t>(i)] =
        SolveEqualLayerForCount(candidates[static_cast<size_t>(i)], num_layers,
                                num_microbatches, shapes, profile, total_devices, memory);
  });
  StageDpResult best;
  for (StageDpResult& candidate : results) {
    if (candidate.feasible && candidate.total_latency < best.total_latency) {
      best = std::move(candidate);
    }
  }
  return best;
}

// The Eq. 2 effective cost of a stage: per-microbatch latency plus the
// amortized once-per-iteration work.
double EffectiveLatency(const StageProfile& p, int num_microbatches) {
  return p.t_intra + p.t_per_iteration / static_cast<double>(num_microbatches);
}

// Per-device bytes stage `s` (0-based, of `num_stages`) holds at the 1F1B
// peak: weights + (num_stages - s) in-flight activations + workspace.
double StagePeakBytes(const StageProfile& p, int s, int num_stages) {
  return p.weight_bytes + (num_stages - s) * p.act_bytes_per_microbatch + p.work_bytes;
}

// True when every stage fits its placement's ACTUAL device memory (the DP
// checked against the reference generation only).
bool PlacementsMemoryFeasible(const ClusterSpec& cluster,
                              const std::vector<StageProfile>& profiles,
                              const std::vector<MeshPlacement>& placements) {
  const int num_stages = static_cast<int>(placements.size());
  for (int s = 0; s < num_stages; ++s) {
    const StageProfile& p = profiles[static_cast<size_t>(s)];
    if (StagePeakBytes(p, s, num_stages) >
        PlacementMemoryBytes(cluster, placements[static_cast<size_t>(s)])) {
      return false;
    }
  }
  return true;
}

// Reassigns placements among the stages that share a submesh shape (such
// placements are interchangeable under Theorem 1's covering): the stage
// with the largest `stage_key` gets the placement with the smallest
// `placement_key` within each shape group. Fully deterministic: stable
// sorts keyed on values derived from the (deterministic) DP output, with
// placement ties broken by cluster position.
void MatchPlacements(const std::vector<SubmeshShape>& chosen_shapes,
                     const std::function<double(size_t)>& stage_key,
                     const std::function<double(const MeshPlacement&)>& placement_key,
                     std::vector<MeshPlacement>* placements) {
  std::map<std::pair<int, int>, std::vector<size_t>> groups;
  for (size_t s = 0; s < chosen_shapes.size(); ++s) {
    const SubmeshShape& shape = chosen_shapes[s];
    groups[{shape.num_hosts, shape.devices_per_host}].push_back(s);
  }
  for (auto& [shape, members] : groups) {
    if (members.size() < 2) {
      continue;
    }
    std::vector<size_t> order = members;
    std::stable_sort(order.begin(), order.end(),
                     [&](size_t a, size_t b) { return stage_key(a) > stage_key(b); });
    std::vector<MeshPlacement> slots;
    slots.reserve(members.size());
    for (size_t s : members) {
      slots.push_back((*placements)[s]);
    }
    std::stable_sort(slots.begin(), slots.end(),
                     [&](const MeshPlacement& a, const MeshPlacement& b) {
                       const double ka = placement_key(a);
                       const double kb = placement_key(b);
                       if (ka != kb) {
                         return ka < kb;
                       }
                       if (a.host_begin != b.host_begin) {
                         return a.host_begin < b.host_begin;
                       }
                       return a.device_begin < b.device_begin;
                     });
    for (size_t i = 0; i < order.size(); ++i) {
      (*placements)[order[i]] = slots[i];
    }
  }
}

}  // namespace

CompiledPipeline RunInterOpPass(Graph& graph, const ClusterSpec& cluster,
                                const InterOpOptions& options) {
  CompiledPipeline pipeline;
  pipeline.num_microbatches = options.num_microbatches;
  TraceSpan pass_span("inter_op_pass");
  const double t_start = NowSeconds();

  // --- 1. Operator clustering (Eq. 5). ---
  double t0 = NowSeconds();
  if (options.target_layers > 0) {
    TraceSpan clustering_span("operator_clustering");
    ClusteringOptions copts;
    copts.num_layers = options.target_layers;
    copts.delta = options.clustering_delta;
    copts.method = options.clustering;
    const ClusteringResult clustering = ClusterOperators(graph, copts);
    if (clustering_span.active()) {
      clustering_span.set_args(StrFormat("\"target_layers\":%d,\"feasible\":%s",
                                         options.target_layers,
                                         clustering.feasible ? "true" : "false"));
    }
    if (!clustering.feasible) {
      pipeline.infeasible_reason = StrFormat(
          "operator clustering found no split of the graph into %d layers",
          options.target_layers);
      return pipeline;
    }
    AssignLayers(graph, clustering);
  }
  const int num_layers = graph.NumLayers();
  ALPA_CHECK_GT(num_layers, 0);
  pipeline.stats.clustering_seconds = NowSeconds() - t0;

  // --- 2. Profile stage-mesh pairs. ---
  // One pool drives every parallel phase: the profiler's eager ILP sweep,
  // the stage DP's profile precompute, and the equal-layer enumeration.
  const int threads =
      options.compile_threads == 0 ? ThreadPool::DefaultThreads() : options.compile_threads;
  std::unique_ptr<ThreadPool> pool;
  if (threads > 1) {
    pool = std::make_unique<ThreadPool>(threads);
  }
  pipeline.stats.threads_used = std::max(threads, 1);
  const std::vector<SubmeshShape> physical_shapes =
      options.submesh_shapes.empty() ? EnumerateSubmeshShapes(cluster) : options.submesh_shapes;
  StageProfilerOptions profiler_options = options.profiler;
  profiler_options.intra.num_microbatches = options.num_microbatches;
  StageProfiler profiler(graph, cluster, physical_shapes, profiler_options, pool.get());
  // The DP iterates the profiler's expanded variant space (physical shape x
  // logical shape x memory mode); it only needs the physical device counts.
  const std::vector<SubmeshShape>& shapes = profiler.dp_shapes();
  const StageProfileFn profile_fn = [&](int begin, int end, int shape_index) {
    StageProfile profile = profiler.Profile(begin, end, shape_index);
    if (options.profile_source != nullptr) {
      options.profile_source->Apply(begin, end, shapes[static_cast<size_t>(shape_index)],
                                    &profile);
    }
    return profile;
  };

  // --- 3. Stage-slicing DP (Eqs. 2-4). ---
  t0 = NowSeconds();
  StageDpOptions dp_options = options.dp;
  dp_options.pool = pool.get();
  const double profiling_before_dp = profiler.profiling_seconds();
  StageDpResult dp;
  {
    TraceSpan dp_span("stage_dp");
    dp = options.equal_layer_stages
             ? SolveEqualLayer(num_layers, options.num_microbatches, cluster, shapes,
                               profile_fn, dp_options)
             : SolveStageDp(num_layers, options.num_microbatches, cluster, shapes, profile_fn,
                            dp_options);
    if (dp_span.active()) {
      dp_span.set_args(StrFormat("\"num_layers\":%d,\"num_shapes\":%zu,\"feasible\":%s",
                                 num_layers, shapes.size(), dp.feasible ? "true" : "false"));
    }
  }
  // Lazy (serial) profiling happens inside the DP's profile calls; carve
  // its cumulative share out of the DP's wall time. Under a pool the sweep
  // has already run, so the delta is ~0 and dp_seconds is the wall time.
  pipeline.stats.dp_seconds =
      std::max(0.0, NowSeconds() - t0 - (profiler.profiling_seconds() - profiling_before_dp));
  pipeline.stats.num_tmax_tried = dp.num_tmax_tried;
  const auto fill_profiler_stats = [&]() {
    pipeline.stats.profiling_seconds = profiler.profiling_seconds();
    pipeline.stats.profiling_wall_seconds = profiler.profiling_wall_seconds();
    pipeline.stats.ilp_solves = profiler.num_ilp_solves();
    pipeline.stats.ilp_cache_hits = profiler.cache_hits();
    pipeline.stats.ilp_cache_misses = profiler.cache_misses();
  };
  if (!dp.feasible) {
    fill_profiler_stats();
    pipeline.stats.total_seconds = NowSeconds() - t_start;
    pipeline.infeasible_reason = StrFormat(
        "stage DP found no feasible stage assignment (%d layers, %zu submesh "
        "variants, %d microbatches) under the device memory budget",
        num_layers, shapes.size(), options.num_microbatches);
    return pipeline;
  }

  // --- 4. Materialize stages: placements (Theorem 1) + logical shapes. ---
  t0 = NowSeconds();
  TraceSpan materialize_span("materialize_stages");
  std::vector<SubmeshShape> chosen_shapes;
  chosen_shapes.reserve(dp.stages.size());
  for (const StageAssignment& stage : dp.stages) {
    chosen_shapes.push_back(shapes[static_cast<size_t>(stage.shape_index)]);
  }
  auto placements = CoverCluster(cluster, chosen_shapes);
  ALPA_CHECK(placements.has_value()) << "Theorem 1 violated by DP output";

  // Fetch the chosen stages' profiles once; the heterogeneity permutation
  // and the materialization below must read identical numbers.
  std::vector<StageProfile> stage_profiles;
  stage_profiles.reserve(dp.stages.size());
  for (const StageAssignment& assignment : dp.stages) {
    stage_profiles.push_back(
        profile_fn(assignment.layer_begin, assignment.layer_end, assignment.shape_index));
  }

  // --- Heterogeneity-aware placement assignment. The DP priced every stage
  // on the REFERENCE generation; on a mixed-generation cluster the covering
  // placements differ in actual speed, so reassign same-shape placements
  // to put the slowest stages on the fastest meshes (rearrangement
  // inequality: minimizes both the Eq. 2 sum and its max term). ---
  const bool hetero = cluster.heterogeneous();
  const Precision precision = profiler_options.intra.precision;
  const int num_stages = static_cast<int>(dp.stages.size());
  if (hetero && options.hetero_aware) {
    MatchPlacements(
        chosen_shapes,
        [&](size_t s) { return EffectiveLatency(stage_profiles[s], options.num_microbatches); },
        [&](const MeshPlacement& p) { return PlacementTimeScale(cluster, p, precision); },
        &*placements);
    if (!PlacementsMemoryFeasible(cluster, stage_profiles, *placements)) {
      // Feasibility beats speed: biggest stages onto the roomiest meshes.
      MatchPlacements(
          chosen_shapes,
          [&](size_t s) {
            return StagePeakBytes(stage_profiles[s], static_cast<int>(s), num_stages);
          },
          [&](const MeshPlacement& p) { return -PlacementMemoryBytes(cluster, p); },
          &*placements);
    }
  }
  if (hetero && !PlacementsMemoryFeasible(cluster, stage_profiles, *placements)) {
    fill_profiler_stats();
    pipeline.stats.total_seconds = NowSeconds() - t_start;
    pipeline.infeasible_reason = StrFormat(
        "no placement assignment fits the mixed-generation cluster's per-host "
        "device memory (%d stages; the DP sized stages for the reference "
        "generation's %s)",
        num_stages, HumanBytes(cluster.device.memory_bytes).c_str());
    return pipeline;
  }

  // Per-stage: logical shape, latency split, memory, boundary tensors.
  std::vector<int> stage_of_layer(static_cast<size_t>(num_layers), -1);
  for (size_t s = 0; s < dp.stages.size(); ++s) {
    const StageAssignment& assignment = dp.stages[s];
    CompiledStage stage;
    stage.layer_begin = assignment.layer_begin;
    stage.layer_end = assignment.layer_end;
    stage.placement = (*placements)[s];
    for (int h = 0; h < stage.placement.shape.num_hosts; ++h) {
      for (int d = 0; d < stage.placement.shape.devices_per_host; ++d) {
        stage.device_ids.push_back((stage.placement.host_begin + h) * cluster.devices_per_host +
                                   stage.placement.device_begin + d);
      }
    }
    stage.logical_shape = profiler.variants()[static_cast<size_t>(assignment.shape_index)].logical;
    // Prefetched through profile_fn — not profiler.Profile directly — so a
    // ProfileSource override shapes the materialized stage exactly as it
    // shaped the DP's costs.
    const StageProfile& profile = stage_profiles[s];
    // Profiles price the reference generation; stretch (or shrink) compute
    // by the placement's actual generation. Gradient sync rides the
    // interconnect, which heterogeneity leaves untouched.
    const double time_scale =
        hetero ? PlacementTimeScale(cluster, stage.placement, precision) : 1.0;
    stage.t_intra = profile.t_intra * time_scale;
    stage.t_per_iteration = profile.t_per_iteration;
    stage.weight_bytes = profile.weight_bytes;
    stage.act_bytes_per_microbatch = profile.act_bytes_per_microbatch;
    stage.work_bytes = profile.work_bytes;
    // Forward/backward split by role FLOPs of the stage's layers.
    double fwd_flops = 0.0;
    double bwd_flops = 0.0;
    for (const Operator& op : graph.ops()) {
      if (op.layer >= stage.layer_begin && op.layer <= stage.layer_end) {
        if (op.role == OpRole::kForward) {
          fwd_flops += op.flops;
        } else if (op.role == OpRole::kBackward) {
          bwd_flops += op.flops;
        }
      }
    }
    const double denom = std::max(fwd_flops + bwd_flops, 1.0);
    stage.t_forward = stage.t_intra * fwd_flops / denom;
    stage.t_backward = stage.t_intra - stage.t_forward;
    for (int l = stage.layer_begin; l <= stage.layer_end; ++l) {
      stage_of_layer[static_cast<size_t>(l)] = static_cast<int>(s);
    }
    // Plan summary for visualization: specs of heavy forward ops and params.
    for (int l = stage.layer_begin; l <= stage.layer_end; ++l) {
      const IntraOpResult& result = profiler.LayerResult(l, assignment.shape_index);
      if (!result.feasible) {
        continue;
      }
      // Anytime accounting over the chosen stages' solves.
      if (!result.optimal) {
        ++pipeline.stats.ilp_aborts;
        pipeline.stats.max_optimality_gap =
            std::max(pipeline.stats.max_optimality_gap, result.optimality_gap);
        pipeline.stats.sum_optimality_gap += result.optimality_gap;
      }
      const StageSubgraph& subgraph = profiler.LayerSubgraph(l);
      for (const Operator& op : subgraph.graph.ops()) {
        const bool interesting =
            op.role == OpRole::kForward &&
            (op.type == OpType::kEinsum || op.type == OpType::kEmbedding ||
             op.type == OpType::kMoeDispatch || op.type == OpType::kParameter);
        if (interesting) {
          stage.op_spec_summary.emplace_back(
              op.name, result.op_specs[static_cast<size_t>(op.id)].ToString());
        }
      }
    }
    pipeline.stages.push_back(std::move(stage));
  }

  // Boundary tensors: forward activations produced in stage s and consumed
  // in a later stage. Skip connections crossing several stages are relayed
  // hop by hop (attached to every stage boundary they cross).
  const auto consumers = graph.Consumers();
  for (int producer = 0; producer < graph.size(); ++producer) {
    const Operator& op = graph.op(producer);
    if (op.role != OpRole::kForward || op.type == OpType::kParameter ||
        op.type == OpType::kInput) {
      continue;
    }
    const int src_stage = stage_of_layer[static_cast<size_t>(op.layer)];
    int max_dst_stage = src_stage;
    int first_dst_layer = -1;
    for (int consumer : consumers[static_cast<size_t>(producer)]) {
      const Operator& c = graph.op(consumer);
      if (c.role != OpRole::kForward) {
        continue;
      }
      const int dst_stage = stage_of_layer[static_cast<size_t>(c.layer)];
      if (dst_stage > src_stage) {
        if (dst_stage > max_dst_stage) {
          max_dst_stage = dst_stage;
        }
        if (first_dst_layer < 0 || c.layer < first_dst_layer) {
          first_dst_layer = c.layer;
        }
      }
    }
    if (max_dst_stage == src_stage) {
      continue;
    }
    // Source spec: from the producer layer's solution on its stage.
    const StageAssignment& src_assignment = dp.stages[static_cast<size_t>(src_stage)];
    const IntraOpResult& src_result =
        profiler.LayerResult(op.layer, src_assignment.shape_index);
    const StageSubgraph& src_subgraph = profiler.LayerSubgraph(op.layer);
    ShardingSpec src_spec = ShardingSpec::Replicated(op.shape.rank());
    if (src_result.feasible) {
      const int mapped = src_subgraph.op_map[static_cast<size_t>(producer)];
      if (mapped >= 0) {
        src_spec = src_result.op_specs[static_cast<size_t>(mapped)];
      }
    }
    // Destination spec: the placeholder's spec in the first consuming layer.
    ShardingSpec dst_spec = ShardingSpec::Replicated(op.shape.rank());
    if (first_dst_layer >= 0) {
      const int dst_stage = stage_of_layer[static_cast<size_t>(first_dst_layer)];
      const StageAssignment& dst_assignment = dp.stages[static_cast<size_t>(dst_stage)];
      const IntraOpResult& dst_result =
          profiler.LayerResult(first_dst_layer, dst_assignment.shape_index);
      const StageSubgraph& dst_subgraph = profiler.LayerSubgraph(first_dst_layer);
      if (dst_result.feasible) {
        const int mapped = dst_subgraph.op_map[static_cast<size_t>(producer)];
        if (mapped >= 0) {
          dst_spec = dst_result.op_specs[static_cast<size_t>(mapped)];
        }
      }
    }
    CrossStageTensor tensor;
    tensor.shape = op.shape;
    tensor.dtype_bytes = DTypeBytes(op.dtype);
    tensor.src_spec = src_spec;
    tensor.dst_spec = dst_spec;
    tensor.producer_op = producer;
    // Relay across every boundary this tensor crosses.
    for (int s = src_stage; s < max_dst_stage; ++s) {
      pipeline.stages[static_cast<size_t>(s)].sends_to_next.push_back(tensor);
    }
  }

  pipeline.feasible = true;
  if (hetero) {
    // Re-derive Eq. 2 from the scaled stage latencies: the DP's value
    // priced every stage on the reference generation.
    double latency_sum = 0.0;
    double max_latency = 0.0;
    for (const CompiledStage& stage : pipeline.stages) {
      const double t_eff =
          stage.t_intra + stage.t_per_iteration / static_cast<double>(options.num_microbatches);
      latency_sum += t_eff;
      max_latency = std::max(max_latency, t_eff);
    }
    dp.total_latency = latency_sum + (options.num_microbatches - 1) * max_latency;
    dp.max_stage_latency = max_latency;
  }
  pipeline.dp_latency = dp.total_latency;
  pipeline.max_stage_latency = dp.max_stage_latency;
  fill_profiler_stats();
  pipeline.stats.other_seconds = NowSeconds() - t0;
  pipeline.stats.total_seconds = NowSeconds() - t_start;
  return pipeline;
}

bool PlanEquals(const CompiledPipeline& a, const CompiledPipeline& b) {
  if (a.feasible != b.feasible || a.num_microbatches != b.num_microbatches ||
      a.dp_latency != b.dp_latency || a.max_stage_latency != b.max_stage_latency ||
      a.stages.size() != b.stages.size()) {
    return false;
  }
  for (size_t s = 0; s < a.stages.size(); ++s) {
    const CompiledStage& x = a.stages[s];
    const CompiledStage& y = b.stages[s];
    if (x.layer_begin != y.layer_begin || x.layer_end != y.layer_end ||
        !(x.placement == y.placement) || x.logical_shape != y.logical_shape ||
        x.t_intra != y.t_intra || x.t_forward != y.t_forward || x.t_backward != y.t_backward ||
        x.t_per_iteration != y.t_per_iteration || x.weight_bytes != y.weight_bytes ||
        x.act_bytes_per_microbatch != y.act_bytes_per_microbatch ||
        x.work_bytes != y.work_bytes || x.op_spec_summary != y.op_spec_summary ||
        x.sends_to_next.size() != y.sends_to_next.size()) {
      return false;
    }
    for (size_t t = 0; t < x.sends_to_next.size(); ++t) {
      const CrossStageTensor& u = x.sends_to_next[t];
      const CrossStageTensor& v = y.sends_to_next[t];
      if (u.shape.dims() != v.shape.dims() || u.dtype_bytes != v.dtype_bytes ||
          !(u.src_spec == v.src_spec) || !(u.dst_spec == v.dst_spec) ||
          u.forward != v.forward || u.producer_op != v.producer_op) {
        return false;
      }
    }
  }
  return true;
}

std::string CompiledPipeline::ToString() const {
  if (!feasible) {
    return "CompiledPipeline(infeasible)";
  }
  std::string out = StrFormat("CompiledPipeline: %zu stages, B=%d, T=%s\n", stages.size(),
                              num_microbatches, HumanSeconds(dp_latency).c_str());
  for (size_t s = 0; s < stages.size(); ++s) {
    const CompiledStage& stage = stages[s];
    out += StrFormat(
        "  stage %zu: layers [%d,%d] submesh %s logical (%d,%d) t=%s mem=%s+%s/mb\n", s,
        stage.layer_begin, stage.layer_end, stage.placement.shape.ToString().c_str(),
        stage.logical_shape[0], stage.logical_shape[1], HumanSeconds(stage.t_intra).c_str(),
        HumanBytes(stage.weight_bytes).c_str(),
        HumanBytes(stage.act_bytes_per_microbatch).c_str());
  }
  return out;
}

}  // namespace alpa
