#include "src/inter/profile_feedback.h"

#include <algorithm>

#include "src/support/hashing.h"

namespace alpa {

void MeasuredProfileSource::AddMeasurement(int begin, int end, const SubmeshShape& shape,
                                           double measured_t_intra,
                                           double analytical_t_intra) {
  if (measured_t_intra <= 0.0) {
    return;
  }
  measured_[{begin, end, shape.num_hosts, shape.devices_per_host}] = measured_t_intra;
  if (analytical_t_intra > 0.0 && analytical_t_intra < kInfCost) {
    ratio_samples_.push_back(measured_t_intra / analytical_t_intra);
  }
}

void MeasuredProfileSource::Finalize() {
  if (ratio_samples_.empty()) {
    calibration_ratio_ = 1.0;
    return;
  }
  std::vector<double> samples = ratio_samples_;
  std::sort(samples.begin(), samples.end());
  // Median, robust to one stage timing out or being noise-dominated.
  calibration_ratio_ = samples[samples.size() / 2];
}

void MeasuredProfileSource::Apply(int begin, int end, const SubmeshShape& shape,
                                  StageProfile* profile) const {
  const auto it = measured_.find({begin, end, shape.num_hosts, shape.devices_per_host});
  if (it != measured_.end()) {
    profile->t_intra = it->second;
    return;
  }
  if (profile->t_intra < kInfCost) {
    profile->t_intra *= calibration_ratio_;
  }
}

uint64_t MeasuredProfileSource::Fingerprint() const {
  Fnv1a64 hasher;
  hasher.Str("measured_profile_source");
  for (const auto& [key, t_intra] : measured_) {
    hasher.I32(std::get<0>(key)).I32(std::get<1>(key)).I32(std::get<2>(key)).I32(std::get<3>(key));
    hasher.Double(t_intra);
  }
  hasher.Double(calibration_ratio_);
  // A fingerprint of 0 means "uncacheable"; remap the (astronomically
  // unlikely) collision so an empty-but-finalized source still has a
  // distinct, stable identity.
  return hasher.hash() == 0 ? 1 : hasher.hash();
}

}  // namespace alpa
