#include "src/inter/profile_feedback.h"

#include <algorithm>

namespace alpa {

void MeasuredProfileSource::AddMeasurement(int begin, int end, const SubmeshShape& shape,
                                           double measured_t_intra,
                                           double analytical_t_intra) {
  if (measured_t_intra <= 0.0) {
    return;
  }
  measured_[{begin, end, shape.num_hosts, shape.devices_per_host}] = measured_t_intra;
  if (analytical_t_intra > 0.0 && analytical_t_intra < kInfCost) {
    ratio_samples_.push_back(measured_t_intra / analytical_t_intra);
  }
}

void MeasuredProfileSource::Finalize() {
  if (ratio_samples_.empty()) {
    calibration_ratio_ = 1.0;
    return;
  }
  std::vector<double> samples = ratio_samples_;
  std::sort(samples.begin(), samples.end());
  // Median, robust to one stage timing out or being noise-dominated.
  calibration_ratio_ = samples[samples.size() / 2];
}

void MeasuredProfileSource::Apply(int begin, int end, const SubmeshShape& shape,
                                  StageProfile* profile) const {
  const auto it = measured_.find({begin, end, shape.num_hosts, shape.devices_per_host});
  if (it != measured_.end()) {
    profile->t_intra = it->second;
    return;
  }
  if (profile->t_intra < kInfCost) {
    profile->t_intra *= calibration_ratio_;
  }
}

}  // namespace alpa
