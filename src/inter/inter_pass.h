// The inter-operator compilation pass (5).
//
// Clusters the graph's forward operators into layers (Eq. 5), profiles
// layer intervals on every candidate submesh shape via the intra-op pass,
// runs the stage-slicing DP (Eqs. 2-4), and materializes the chosen stages:
// concrete placements covering the cluster (Theorem 1), logical mesh
// shapes, per-stage latencies/memory, and cross-stage boundary tensors.
#ifndef SRC_INTER_INTER_PASS_H_
#define SRC_INTER_INTER_PASS_H_

#include <optional>
#include <string>
#include <vector>

#include "src/inter/profile_feedback.h"
#include "src/inter/stage_profiler.h"
#include "src/mesh/submesh.h"
#include "src/solver/operator_clustering.h"
#include "src/solver/stage_dp.h"
#include "src/spec/sharding_spec.h"

namespace alpa {

struct InterOpOptions {
  int num_microbatches = 16;
  // Operator clustering (Eq. 5). 0 keeps the builder-assigned layer tags.
  int target_layers = 8;
  double clustering_delta = 0.5;
  ClusteringMethod clustering = ClusteringMethod::kDpCommBalanced;
  // "Equal layer" ablation (7.3): all stages get the same number of layers.
  bool equal_layer_stages = false;
  StageDpOptions dp;
  StageProfilerOptions profiler;
  // Restrict the submesh shapes (e.g. only (1,1) for the inter-op-only
  // baseline); empty = the full 5.2 space.
  std::vector<SubmeshShape> submesh_shapes;
  // Worker threads for the compilation pipeline: the profiler's eager
  // (layer x variant) ILP sweep, the stage DP's profile precompute, and the
  // equal-layer stage-count enumeration all fan out across one pool.
  // 1 = fully serial (no pool is created); 0 = hardware concurrency.
  // Results are bit-identical for any thread count: parallel work writes
  // disjoint slots and merges in index order, never completion order.
  int compile_threads = 1;
  // When non-null, every profile the stage DP and the stage
  // materialization fetch passes through this hook — measured execution
  // times override the analytical costs (see profile_feedback.h). Not
  // owned; must outlive the pass. Must be thread-safe when
  // compile_threads != 1.
  const ProfileSource* profile_source = nullptr;
  // Heterogeneity-aware stage assignment. On mixed-generation clusters
  // (ClusterSpec::host_devices), same-shape placements are interchangeable;
  // when true, materialization matches the slowest stages to the fastest
  // meshes (rearrangement inequality: it minimizes both the sum and the max
  // of the scaled stage latencies in Eq. 2). When false, placements keep
  // the DP's naive in-order assignment. Either way stage latencies are
  // scaled by the placement's actual generation (PlacementTimeScale) and
  // memory feasibility is re-checked against the placement's real capacity,
  // so the false setting prices the uniform-assumption plan honestly.
  // No effect on homogeneous clusters.
  bool hetero_aware = true;
};

// A tensor crossing a stage boundary, with the layouts on both sides.
struct CrossStageTensor {
  TensorShape shape;
  int64_t dtype_bytes = 2;
  ShardingSpec src_spec;
  ShardingSpec dst_spec;
  bool forward = true;  // Activation (fwd) or gradient (bwd).
  // Full-graph id of the op producing this tensor — the key the executor
  // uses to bind instruction-list sends/recvs to concrete buffers.
  int producer_op = -1;
};

struct CompiledStage {
  int layer_begin = 0;
  int layer_end = 0;
  MeshPlacement placement;
  std::array<int, 2> logical_shape = {1, 1};
  // Global ids of the devices backing this stage (derived from `placement`;
  // the simulator's fault model resolves per-device faults through these).
  std::vector<int> device_ids;
  // Per-microbatch forward+backward latency and its split.
  double t_intra = 0.0;
  double t_forward = 0.0;
  double t_backward = 0.0;
  // Once-per-iteration gradient sync + optimizer latency.
  double t_per_iteration = 0.0;
  // Per-device memory profile.
  double weight_bytes = 0.0;
  double act_bytes_per_microbatch = 0.0;
  double work_bytes = 0.0;
  // Tensors sent to the next stage (per microbatch, forward direction).
  // Backward gradients flow along the same tensors in reverse.
  std::vector<CrossStageTensor> sends_to_next;
  // (op name, chosen sharding spec) of the stage's forward contraction ops
  // and parameters — the Fig. 13 visualization data.
  std::vector<std::pair<std::string, std::string>> op_spec_summary;
};

struct CompileStats {
  double clustering_seconds = 0.0;
  // Intra-op ILP solve time (compilation + profiling analogue), summed
  // across worker threads; exceeds wall time under a pool.
  double profiling_seconds = 0.0;
  // Elapsed wall time spent profiling (= profiling_seconds when serial).
  double profiling_wall_seconds = 0.0;
  double dp_seconds = 0.0;
  double other_seconds = 0.0;
  double total_seconds = 0.0;
  int64_t ilp_solves = 0;
  int64_t ilp_cache_hits = 0;    // Process-wide memo cache hits.
  int64_t ilp_cache_misses = 0;  // Cacheable solves that missed.
  int num_tmax_tried = 0;
  int threads_used = 1;
  // Anytime accounting over the layers of the CHOSEN stages only: how many
  // of their intra-op solves hit the search budget, and the worst relative
  // optimality gap among them. 0/0.0 means every chosen solve is proven
  // optimal; a positive gap is the anytime contract's quality report (the
  // plan is feasible and at most this far from the intra-op optimum).
  int64_t ilp_aborts = 0;
  double max_optimality_gap = 0.0;
  // Sum of the aborted solves' gaps (mean = sum / ilp_aborts); lets
  // reporting distinguish one bad stage from uniformly loose stages.
  double sum_optimality_gap = 0.0;
};

struct CompiledPipeline {
  bool feasible = false;
  // Human-readable cause when !feasible (which pass failed and why); the
  // public API surfaces it as Status::Infeasible.
  std::string infeasible_reason;
  std::vector<CompiledStage> stages;
  int num_microbatches = 1;
  // Eq. 2 estimate from the DP (the simulator refines this).
  double dp_latency = kInfCost;
  double max_stage_latency = 0.0;
  CompileStats stats;
  std::string ToString() const;
};

CompiledPipeline RunInterOpPass(Graph& graph, const ClusterSpec& cluster,
                                const InterOpOptions& options);

// Exact (bit-level) equality of two compiled pipelines: stage slicing,
// placements, logical shapes, every latency/memory double, boundary
// tensors, and op spec summaries. Timing stats are deliberately excluded.
// The parallel compiler's determinism guarantee is stated in terms of this
// predicate: compiling with 1 and N threads must satisfy PlanEquals.
bool PlanEquals(const CompiledPipeline& a, const CompiledPipeline& b);

}  // namespace alpa

#endif  // SRC_INTER_INTER_PASS_H_
