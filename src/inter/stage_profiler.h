// Memoized stage-mesh profiling for the inter-op DP (5.2, 7.4).
//
// The paper profiles every (layer interval, submesh shape) pair, accelerated
// by a cost model at the XLA instruction level (Table 4 discussion). We do
// the analogue: the intra-op ILP is solved once per layer and *variant* —
// a (physical submesh shape, logical mesh shape, memory mode) triple — and
// an interval's profile composes the per-layer results of one variant
// additively (adjacent layers of one interval agree on boundary specs in
// the optimum for the models we study, so the composition error is
// negligible and the profiling cost drops from O(L^2) to O(L) ILP solves).
// The stage DP iterates over the expanded variant space, which lets it
// trade execution time for memory (ZeRO-style sharding variants) per stage.
// An exact mode that solves the full-interval ILP is available for
// validation.
#ifndef SRC_INTER_STAGE_PROFILER_H_
#define SRC_INTER_STAGE_PROFILER_H_

#include <array>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "src/graph/graph.h"
#include "src/inter/stage_extraction.h"
#include "src/intra/intra_pass.h"
#include "src/mesh/cluster_spec.h"
#include "src/mesh/submesh.h"
#include "src/solver/stage_dp.h"

namespace alpa {

// Plan-space restriction of one profiled variant. The time-optimal ILP
// replicates weights when gradient accumulation amortizes their
// synchronization; the sharded variants trade time for memory (weight-update
// sharding / ZeRO), and the stage DP picks per stage.
enum class MemoryMode {
  kTimeOptimal,
  kShardOptimizer,  // ZeRO-2-like.
  kShardWeights,    // ZeRO-3-like.
};

struct StageProfilerOptions {
  IntraOpOptions intra;
  // Solve the full-interval ILP instead of composing per-layer solutions.
  bool exact_intervals = false;
  // Include the memory-saving variants.
  bool memory_modes = true;
  // Reuse ILP solutions across structurally identical layers (all
  // transformer blocks of a homogeneous model share one solve).
  bool dedup_identical_layers = true;
};

// One point of the expanded profiling space.
struct StageVariant {
  SubmeshShape physical;
  std::array<int, 2> logical = {1, 1};
  MemoryMode mode = MemoryMode::kTimeOptimal;
  std::string ToString() const;
};

class StageProfiler {
 public:
  StageProfiler(const Graph& graph, const ClusterSpec& cluster,
                const std::vector<SubmeshShape>& shapes, StageProfilerOptions options);

  // Profile of layers [begin, end] (inclusive) under variant
  // `variant_index`.
  StageProfile Profile(int begin, int end, int variant_index);

  // Per-layer intra-op solution of a variant (plan reporting / final stage
  // compilation). Infeasible result if the variant cannot run the layer.
  const IntraOpResult& LayerResult(int layer, int variant_index);
  const StageSubgraph& LayerSubgraph(int layer) const;

  const std::vector<StageVariant>& variants() const { return variants_; }
  // The DP's "shapes" view: the physical submesh of each variant.
  const std::vector<SubmeshShape>& dp_shapes() const { return dp_shapes_; }
  int num_layers() const { return num_layers_; }
  int64_t num_ilp_solves() const { return num_ilp_solves_; }
  double profiling_seconds() const { return profiling_seconds_; }

 private:
  struct LayerEntry {
    bool ready = false;
    IntraOpResult result;
  };

  void EnsureLayer(int layer, int variant_index);

  const Graph& graph_;
  const ClusterSpec& cluster_;
  std::vector<StageVariant> variants_;
  std::vector<SubmeshShape> dp_shapes_;
  std::vector<int> dedup_layer_;  // layer -> first structurally equal layer.
  StageProfilerOptions options_;
  int num_layers_ = 0;
  std::vector<StageSubgraph> layer_subgraphs_;
  std::vector<std::vector<LayerEntry>> layer_cache_;  // [layer][variant]
  std::map<std::tuple<int, int, int>, StageProfile> exact_cache_;
  int64_t num_ilp_solves_ = 0;
  double profiling_seconds_ = 0.0;
};

}  // namespace alpa

#endif  // SRC_INTER_STAGE_PROFILER_H_
