// Memoized stage-mesh profiling for the inter-op DP (5.2, 7.4).
//
// The paper profiles every (layer interval, submesh shape) pair, accelerated
// by a cost model at the XLA instruction level (Table 4 discussion). We do
// the analogue: the intra-op ILP is solved once per layer and *variant* —
// a (physical submesh shape, logical mesh shape, memory mode) triple — and
// an interval's profile composes the per-layer results of one variant
// additively (adjacent layers of one interval agree on boundary specs in
// the optimum for the models we study, so the composition error is
// negligible and the profiling cost drops from O(L^2) to O(L) ILP solves).
// The stage DP iterates over the expanded variant space, which lets it
// trade execution time for memory (ZeRO-style sharding variants) per stage.
// An exact mode that solves the full-interval ILP is available for
// validation.
//
// Concurrency: the profiler is safe to call from multiple threads. Each
// dedup-canonical (layer, variant) cell is guarded by a std::once_flag, so
// an eager parallel sweep (run in the constructor when a ThreadPool is
// supplied) and on-demand Profile()/LayerResult() calls never race and
// never solve a cell twice. Solve results are independent of thread count
// and arrival order — the ILP solver is deterministic — so parallel and
// serial compilation produce bit-identical profiles. Solves are further
// memoized process-wide in IlpMemoCache so structurally identical layers
// across profiler instances (benchmark sweeps, repeated compilations)
// reuse each other's work.
#ifndef SRC_INTER_STAGE_PROFILER_H_
#define SRC_INTER_STAGE_PROFILER_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <tuple>
#include <vector>

#include "src/graph/graph.h"
#include "src/inter/stage_extraction.h"
#include "src/intra/intra_pass.h"
#include "src/mesh/cluster_spec.h"
#include "src/mesh/submesh.h"
#include "src/solver/stage_dp.h"

namespace alpa {

class ThreadPool;

// Plan-space restriction of one profiled variant. The time-optimal ILP
// replicates weights when gradient accumulation amortizes their
// synchronization; the sharded variants trade time for memory (weight-update
// sharding / ZeRO), and the stage DP picks per stage.
enum class MemoryMode {
  kTimeOptimal,
  kShardOptimizer,  // ZeRO-2-like.
  kShardWeights,    // ZeRO-3-like.
};

struct StageProfilerOptions {
  IntraOpOptions intra;
  // Solve the full-interval ILP instead of composing per-layer solutions.
  bool exact_intervals = false;
  // Include the memory-saving variants.
  bool memory_modes = true;
  // Reuse ILP solutions across structurally identical layers (all
  // transformer blocks of a homogeneous model share one solve).
  bool dedup_identical_layers = true;
  // Consult/populate the process-wide IlpMemoCache. Solves with a custom
  // filter, forced choices, or solver seeds are never cached regardless.
  bool use_ilp_cache = true;
};

// One point of the expanded profiling space.
struct StageVariant {
  SubmeshShape physical;
  std::array<int, 2> logical = {1, 1};
  MemoryMode mode = MemoryMode::kTimeOptimal;
  std::string ToString() const;
};

class StageProfiler {
 public:
  // When `pool` is non-null (and has >1 thread), the constructor eagerly
  // pre-solves the full dedup-canonical (layer x variant) grid across the
  // pool's workers; later Profile() calls then only compose cached
  // per-layer results. With a null pool, cells solve lazily on demand,
  // exactly as before.
  StageProfiler(const Graph& graph, const ClusterSpec& cluster,
                const std::vector<SubmeshShape>& shapes, StageProfilerOptions options,
                ThreadPool* pool = nullptr);

  // Profile of layers [begin, end] (inclusive) under variant
  // `variant_index`. Thread-safe.
  StageProfile Profile(int begin, int end, int variant_index);

  // Per-layer intra-op solution of a variant (plan reporting / final stage
  // compilation). Infeasible result if the variant cannot run the layer.
  // Thread-safe; the reference stays valid for the profiler's lifetime.
  const IntraOpResult& LayerResult(int layer, int variant_index);
  const StageSubgraph& LayerSubgraph(int layer) const;

  const std::vector<StageVariant>& variants() const { return variants_; }
  // The DP's "shapes" view: the physical submesh of each variant.
  const std::vector<SubmeshShape>& dp_shapes() const { return dp_shapes_; }
  int num_layers() const { return num_layers_; }
  // ILP solves actually run by this instance (memo-cache hits excluded).
  int64_t num_ilp_solves() const { return num_ilp_solves_.load(std::memory_order_relaxed); }
  // Cumulative solve time summed across all threads. Under a pool this
  // exceeds the elapsed wall time; see profiling_wall_seconds().
  double profiling_seconds() const { return profiling_seconds_.load(std::memory_order_relaxed); }
  // Elapsed wall time attributable to profiling: the eager sweep's wall
  // time plus any serial post-sweep solves (equals profiling_seconds()
  // when no sweep ran).
  double profiling_wall_seconds() const;
  // Wall time of the constructor's eager sweep (0 without a pool).
  double sweep_wall_seconds() const { return sweep_wall_seconds_; }
  // Process-wide memo cache traffic from this instance.
  int64_t cache_hits() const { return cache_hits_.load(std::memory_order_relaxed); }
  int64_t cache_misses() const { return cache_misses_.load(std::memory_order_relaxed); }

 private:
  // One dedup-canonical solve slot. call_once makes concurrent eager and
  // on-demand access race-free; once_flag is immovable, so rows are built
  // in place and never resized after construction.
  struct LayerCell {
    std::once_flag once;
    IntraOpResult result;
  };

  // Runs the cell's solve exactly once (redirecting `layer` through the
  // structural dedup first).
  void EnsureLayer(int layer, int variant_index);
  void SolveCell(int canonical, int variant_index, LayerCell* cell);
  const IntraOpResult& CellResult(int layer, int variant_index) const;
  void AddProfilingSeconds(double seconds);

  const Graph& graph_;
  const ClusterSpec& cluster_;
  std::vector<StageVariant> variants_;
  std::vector<SubmeshShape> dp_shapes_;
  std::vector<int> dedup_layer_;  // layer -> first structurally equal layer.
  std::vector<uint64_t> layer_hashes_;  // StructuralHash per layer subgraph.
  StageProfilerOptions options_;
  ThreadPool* pool_ = nullptr;
  int num_layers_ = 0;
  std::vector<StageSubgraph> layer_subgraphs_;
  std::vector<std::vector<LayerCell>> layer_cache_;  // [canonical layer][variant]
  std::mutex exact_mu_;
  std::map<std::tuple<int, int, int>, StageProfile> exact_cache_;
  std::atomic<int64_t> num_ilp_solves_{0};
  std::atomic<int64_t> cache_hits_{0};
  std::atomic<int64_t> cache_misses_{0};
  std::atomic<double> profiling_seconds_{0.0};
  double sweep_wall_seconds_ = 0.0;
  double profiling_seconds_at_sweep_end_ = 0.0;
};

}  // namespace alpa

#endif  // SRC_INTER_STAGE_PROFILER_H_
