// Extraction of per-stage subgraphs from a layer-tagged training graph.
//
// A stage owns every op (forward, backward, update) whose layer tag falls in
// [layer_begin, layer_end] — realizing the forward/backward colocation
// constraint (5.1). Tensors produced outside the stage become kInput
// placeholders; the tensors a stage exchanges with its neighbours are
// reported as boundary descriptors, which the runtime turns into cross-mesh
// resharding (6).
#ifndef SRC_INTER_STAGE_EXTRACTION_H_
#define SRC_INTER_STAGE_EXTRACTION_H_

#include <vector>

#include "src/graph/graph.h"

namespace alpa {

struct BoundaryTensor {
  int producer_op = -1;  // Op id in the FULL graph.
  int64_t bytes = 0;
  bool forward = true;  // Forward activation vs backward gradient.
};

struct StageSubgraph {
  Graph graph;
  int layer_begin = 0;
  int layer_end = 0;
  // full graph op id -> stage graph op id (-1 if absent).
  std::vector<int> op_map;
  // stage graph op id -> full graph op id (-1 for placeholders).
  std::vector<int> reverse_map;
  // Tensors received from earlier stages (forward) / later stages (grads).
  std::vector<BoundaryTensor> inputs;
  // Tensors sent to later stages (forward) / earlier stages (grads).
  std::vector<BoundaryTensor> outputs;
};

// Extracts the subgraph of layers [begin, end] (inclusive).
StageSubgraph ExtractStage(const Graph& graph, int layer_begin, int layer_end);

}  // namespace alpa

#endif  // SRC_INTER_STAGE_EXTRACTION_H_
