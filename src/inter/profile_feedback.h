// Measured-profile feedback into the stage-slicing DP.
//
// The inter-op pass normally costs each (layer interval, submesh shape)
// candidate with the analytical intra-op model. A ProfileSource lets a
// caller override those costs with numbers measured by actually executing a
// compiled pipeline (src/exec's ExecutionProfiler): exact matches replace
// the analytical t_intra outright, and a median measured/analytical
// calibration ratio rescales every unmeasured candidate so the DP compares
// all stages in one consistent unit — keeping the search feasible
// everywhere while anchoring it to reality where reality was observed.
#ifndef SRC_INTER_PROFILE_FEEDBACK_H_
#define SRC_INTER_PROFILE_FEEDBACK_H_

#include <map>
#include <tuple>
#include <vector>

#include "src/mesh/device_mesh.h"
#include "src/solver/stage_dp.h"

namespace alpa {

// Hook consulted by the inter-op pass for every profile the DP (and stage
// materialization) fetches. Implementations mutate `profile` in place.
class ProfileSource {
 public:
  virtual ~ProfileSource() = default;
  // `begin`/`end` are inclusive layer indices; `shape` is the candidate's
  // physical submesh shape.
  virtual void Apply(int begin, int end, const SubmeshShape& shape,
                     StageProfile* profile) const = 0;
  // Stable content fingerprint for plan-cache keys: two sources with the
  // same fingerprint must transform profiles identically. Return 0 (the
  // default) when no stable fingerprint exists — a compile driven by such
  // a source is not cacheable, which is always safe.
  virtual uint64_t Fingerprint() const { return 0; }
};

// Profile override built from measured per-stage times of an executed
// pipeline. Thread-safe after Finalize() (Apply only reads).
class MeasuredProfileSource : public ProfileSource {
 public:
  // Records that layers [begin, end] ran on a (num_hosts, devices_per_host)
  // submesh with measured per-microbatch forward+backward time
  // `measured_t_intra`, where the analytical model had predicted
  // `analytical_t_intra` (used for the calibration ratio; pass <= 0 when
  // unknown to skip the ratio sample).
  void AddMeasurement(int begin, int end, const SubmeshShape& shape, double measured_t_intra,
                      double analytical_t_intra);

  // Computes the median measured/analytical ratio across the recorded
  // measurements. Call once after the last AddMeasurement.
  void Finalize();

  // Exact (begin, end, shape) matches get the measured t_intra; everything
  // else is scaled by the calibration ratio (1 when no ratio samples
  // exist). Memory fields are never touched — they come from the model.
  void Apply(int begin, int end, const SubmeshShape& shape,
             StageProfile* profile) const override;

  // Hashes every measurement and the calibration ratio, so recompiles fed
  // by different measured timings (or none at all) can never alias each
  // other in the plan cache. Never returns 0.
  uint64_t Fingerprint() const override;

  double calibration_ratio() const { return calibration_ratio_; }
  int num_measurements() const { return static_cast<int>(measured_.size()); }

 private:
  using Key = std::tuple<int, int, int, int>;  // (begin, end, hosts, dph).
  std::map<Key, double> measured_;
  std::vector<double> ratio_samples_;
  double calibration_ratio_ = 1.0;
};

}  // namespace alpa

#endif  // SRC_INTER_PROFILE_FEEDBACK_H_
