// The results database: an on-disk index of every plan the service
// compiled, one record per plan-cache key.
//
// The plan cache answers "have I compiled this before?"; the results
// database answers "what have I compiled, for whom, and how good was it?"
// Each record summarizes one compile instance — the cache key (graph and
// config fingerprints), the requesting tenant, the active profile-source
// fingerprint, problem extent (ops, cluster shape, chosen stages), compile
// wall time, the plan's objective (pipeline latency), and the anytime
// quality report (aborted ILP solves + worst relative optimality gap) —
// without storing the plan itself; the plan lives in the cache, keyed
// identically.
//
// Persistence mirrors the plan cache: one `<graph>-<config>.rec` file per
// record (a kPlanRecord wire envelope) under the configured directory,
// written atomically via uniquely named temp files, swept of other wire
// versions on SetDir. Records are intentionally tiny (a few hundred
// bytes), so the store is unbounded; the alpa_serve kDbDelete endpoint is
// the retention knob.
//
// Thread safety: all methods are safe to call concurrently.
#ifndef SRC_SERVE_PLAN_DB_H_
#define SRC_SERVE_PLAN_DB_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/serve/plan_cache.h"
#include "src/serve/wire.h"
#include "src/support/status.h"

#include <mutex>

namespace alpa {
namespace serve {

// One compile instance. Everything needed to audit a serving fleet's
// compiles — who asked, what it cost, how good the answer is — in a
// record small enough to list wholesale.
struct PlanRecord {
  PlanCacheKey key;                 // Joins against the plan cache.
  std::string tenant;               // Admission identity of the requester.
  uint64_t profile_fingerprint = 0; // 0 = analytical model.
  int32_t num_ops = 0;              // Operator-graph size.
  int32_t num_hosts = 0;            // Cluster extent.
  int32_t devices_per_host = 0;
  int32_t num_stages = 0;           // Chosen pipeline depth.
  double compile_seconds = 0.0;     // Wall time of the compile.
  double objective = 0.0;           // Pipeline latency (DP objective).
  double optimality_gap = 0.0;      // Worst relative ILP gap (0 = optimal).
  int64_t ilp_aborts = 0;           // Budget-capped solves among chosen stages.
  int64_t plan_bytes = 0;           // Serialized plan size.
};

// Filter for List(). Empty/zero fields match everything.
struct PlanDbQuery {
  std::string tenant;  // Exact tenant match; "" = all tenants.
  int32_t limit = 0;   // Max records returned; 0 = unlimited.
};

class PlanDb {
 public:
  // The process-wide instance (populated by InProcessPlanService on every
  // real compile). Memory-only until SetDir points it at a directory.
  static PlanDb& Global();

  // Enables (non-empty) or disables (empty) persistence. Creates the
  // directory if needed, then loads every valid `.rec` file — corrupt or
  // version-skewed files are unlinked. kInternal when creation fails.
  Status SetDir(const std::string& dir);
  std::string dir() const;

  // Inserts or overwrites the record for `record.key`, persisting it when
  // a directory is configured (write failures are silent: the database is
  // observability, never correctness).
  void Put(const PlanRecord& record);

  // Records matching `query`, in deterministic (key) order.
  std::vector<PlanRecord> List(const PlanDbQuery& query) const;
  // kInvalidArgument when no record exists for `key`.
  StatusOr<PlanRecord> Get(const PlanCacheKey& key) const;
  // Removes the record (and its file). False when absent.
  bool Delete(const PlanCacheKey& key);

  size_t size() const;
  // Drops in-memory records; `also_disk` removes the persisted files too.
  void Clear(bool also_disk = false);

 private:
  struct KeyLess {
    bool operator()(const PlanCacheKey& a, const PlanCacheKey& b) const {
      return a.graph_hash != b.graph_hash ? a.graph_hash < b.graph_hash
                                          : a.config_hash < b.config_hash;
    }
  };

  std::string RecordPath(const PlanCacheKey& key) const;

  mutable std::mutex mu_;
  std::string dir_;
  std::map<PlanCacheKey, PlanRecord, KeyLess> records_;
};

// Field-level codec (payload only, no envelope) — the serve protocol
// embeds records in responses with these.
void EncodePlanRecord(const PlanRecord& record, WireWriter* w);
Status DecodePlanRecord(WireReader* r, PlanRecord* out);

}  // namespace serve
}  // namespace alpa

#endif  // SRC_SERVE_PLAN_DB_H_
