// RemotePlanService: the PlanService implementation that talks to an
// alpa_serve daemon over its unix socket, speaking the wire protocol
// (src/serve/protocol.h).
//
// Each call opens a connection (unix-socket connects are microseconds;
// one-connection-per-request keeps the client trivially thread-safe and
// immune to half-dead pooled sockets). Local-only request options —
// profile_source, trace_path, compile_threads — never cross the wire; the
// server applies its own policies for those.
#ifndef SRC_SERVE_CLIENT_H_
#define SRC_SERVE_CLIENT_H_

#include <string>
#include <vector>

#include "src/serve/protocol.h"
#include "src/serve/service.h"

namespace alpa {
namespace serve {

class RemotePlanService : public PlanService {
 public:
  explicit RemotePlanService(std::string socket_path) : socket_path_(std::move(socket_path)) {}

  StatusOr<ParallelPlan> Parallelize(const PlanRequest& request) override;
  StatusOr<ExecutionStats> Simulate(const PlanRequest& request,
                                    const ParallelPlan& plan) override;
  StatusOr<RepairResult> Repair(const PlanRequest& request, const RepairOptions& repair) override;
  std::string name() const override { return "remote(" + socket_path_ + ")"; }

  // Liveness probe: kUnavailable when the daemon is not reachable.
  Status Ping();

  // Speculative re-planner counters of an --elastic daemon (response
  // fields elastic_*). A server running without --elastic answers with
  // elastic_enabled == false and zeroed counters.
  StatusOr<ServeResponse> ElasticStats();

  // Results-database endpoints (src/serve/plan_db.h): enumerate, fetch,
  // and retire the server's compile records. `tenant` is the caller's
  // identity; the server scopes all three to it (a record owned by
  // another tenant reads as absent) unless it matches the server's
  // configured admin tenant.
  StatusOr<std::vector<PlanRecord>> DbList(const PlanDbQuery& query,
                                           const std::string& tenant = "");
  StatusOr<PlanRecord> DbGet(const PlanCacheKey& key, const std::string& tenant = "");
  // kInvalidArgument when no record exists for `key` (or it is not ours).
  Status DbDelete(const PlanCacheKey& key, const std::string& tenant = "");

  // Raw round-trip (benchmarks read the response's observability fields:
  // queue_seconds, compile_seconds, plan_cache_hit). Transport failures
  // surface as kUnavailable; the response's own status is NOT folded in —
  // inspect response.ToStatus().
  StatusOr<ServeResponse> Call(const ServeRequest& request);

  const std::string& socket_path() const { return socket_path_; }

 private:
  std::string socket_path_;
};

}  // namespace serve
}  // namespace alpa

#endif  // SRC_SERVE_CLIENT_H_
