// The transport-agnostic plan service interface.
//
// PlanService is the primary client API of alpa-cpp: a request/response
// surface over the compiler (Parallelize), the analytical simulator
// (Simulate), and plan repair (Repair). Two implementations exist:
//
//   InProcessPlanService — runs the passes in this process, layered over
//     the process-wide plan cache (src/serve/plan_cache) and ILP memo.
//     This is what the free functions in src/core/api.h now delegate their
//     service-shaped siblings to; the free functions remain as thin shims
//     for callers that want a one-shot compile without request plumbing.
//
//   RemotePlanService (src/serve/client.h) — speaks the wire format
//     (src/serve/wire.h) to an alpa_serve daemon over a unix socket.
//     Requests carry only the serializable subset of options; local-only
//     fields (profile_source, trace_path, compile_threads) are ignored.
//
// Code written against PlanService runs unchanged in both modes — the
// bench/example `--server <socket>` flag swaps the implementation, nothing
// else (bench_util::MakePlanService).
#ifndef SRC_SERVE_SERVICE_H_
#define SRC_SERVE_SERVICE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "src/core/api.h"
#include "src/support/status.h"

namespace alpa {
namespace serve {

// The options a plan request carries. The serialized fields are exactly
// what crosses the wire to a remote server; the local-only fields apply
// only in-process and silently do nothing remotely (a remote server picks
// its own thread budget and cannot dereference a caller's closure).
struct PlanRequestOptions {
  // --- Serialized ---
  int num_microbatches = 0;  // 0 = library default.
  int target_layers = 0;     // 0 = library default.
  PipelineScheduleType schedule = PipelineScheduleType::k1F1B;
  bool enable_interop = true;
  bool enable_intraop = true;
  bool equal_layer_stages = false;
  ReshardStrategy reshard = ReshardStrategy::kLocalAllGather;
  int64_t max_search_nodes = 0;  // Per-ILP node budget; 0 = library default.
  // Per-ILP elimination-table cap: -1 = library default, 0 = disable the
  // elimination stage (every solve goes to branch-and-bound — the lever
  // the anytime tests use to force budget-capped searches), >0 = cap.
  int64_t max_elimination_table = -1;
  // Soft compute deadline. 0 = none. In-process (and on the server) the
  // remaining deadline scales the ILP search budget down so the compile
  // lands inside it; a request that is already past its deadline when a
  // worker picks it up fails with kDeadlineExceeded without compiling.
  double deadline_seconds = 0.0;
  // Admission-control identity. The server schedules tenants round-robin
  // and bounds each tenant's queue, so one chatty tenant cannot starve the
  // rest. Purely informational in-process.
  std::string tenant = "default";
  // Consult/populate the process-wide (and, if configured, disk-backed)
  // plan cache.
  bool use_plan_cache = true;

  // --- Local-only (never serialized) ---
  int compile_threads = ParallelizeOptions::kInheritThreads;
  // Measured-profile override (see src/inter/profile_feedback.h). Not
  // owned; must outlive the call. A source without a stable Fingerprint()
  // makes the request uncacheable.
  const ProfileSource* profile_source = nullptr;
  // Chrome-trace JSON output path ("" = off).
  std::string trace_path;

  // Lowers to the legacy options struct (resolving 0-means-default
  // fields). kInvalidArgument on out-of-range values.
  StatusOr<ParallelizeOptions> ToParallelizeOptions() const;
};

struct PlanRequest {
  Graph graph;
  ClusterSpec cluster;
  PlanRequestOptions options;
};

class PlanService {
 public:
  virtual ~PlanService() = default;

  // Compiles a parallel plan for the request's graph/cluster.
  virtual StatusOr<ParallelPlan> Parallelize(const PlanRequest& request) = 0;
  // Prices `plan` on the request's cluster with the analytical simulator.
  virtual StatusOr<ExecutionStats> Simulate(const PlanRequest& request,
                                            const ParallelPlan& plan) = 0;
  // Drops `repair.failed_host`, recompiles for the shrunk cluster, prices
  // the recovery.
  virtual StatusOr<RepairResult> Repair(const PlanRequest& request,
                                        const RepairOptions& repair) = 0;

  // Parallelize + Simulate. On kResourceExhausted the compiled plan is
  // still stored to `plan_out` (mirrors core CompileAndSimulate).
  StatusOr<ExecutionStats> CompileAndSimulate(const PlanRequest& request,
                                              ParallelPlan* plan_out = nullptr);

  // Implementation name for logs/benchmark tables ("in-process",
  // "remote(<socket>)").
  virtual std::string name() const = 0;
};

// Outcome annotations of the last Parallelize on an InProcessPlanService
// (observability for benches and the server's metrics lanes).
struct CompileOutcome {
  bool plan_cache_hit = false;
  bool plan_cache_eligible = false;
  // This call ran the compiler (single-flight leader or uncacheable
  // request) rather than riding a cache hit or another caller's compile.
  bool compiled = false;
  // This call blocked on a concurrent compile of the same key and
  // received the leader's result (or its error).
  bool flight_follower = false;
  double seconds = 0.0;
};

class InProcessPlanService : public PlanService {
 public:
  InProcessPlanService() = default;

  StatusOr<ParallelPlan> Parallelize(const PlanRequest& request) override;
  StatusOr<ExecutionStats> Simulate(const PlanRequest& request,
                                    const ParallelPlan& plan) override;
  StatusOr<RepairResult> Repair(const PlanRequest& request, const RepairOptions& repair) override;
  std::string name() const override { return "in-process"; }

  // Stats of the most recent Parallelize (not thread-safe; the server
  // keeps one service per worker).
  const CompileOutcome& last_outcome() const { return last_outcome_; }

 private:
  CompileOutcome last_outcome_;
};

// Nodes-per-second heuristic converting a remaining deadline into an ILP
// search-node budget (measured on the staged engine; deliberately
// conservative so deadline-capped compiles finish early, not late).
inline constexpr double kSearchNodesPerSecond = 2e5;

}  // namespace serve
}  // namespace alpa

#endif  // SRC_SERVE_SERVICE_H_
