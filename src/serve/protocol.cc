#include "src/serve/protocol.h"

#include <cerrno>
#include <cstring>
#include <unistd.h>

#include "src/support/strings.h"

namespace alpa {
namespace serve {

namespace {

void EncodeOptions(const PlanRequestOptions& options, WireWriter* w) {
  w->I32(options.num_microbatches);
  w->I32(options.target_layers);
  w->U8(static_cast<uint8_t>(options.schedule));
  w->Bool(options.enable_interop);
  w->Bool(options.enable_intraop);
  w->Bool(options.equal_layer_stages);
  w->U8(static_cast<uint8_t>(options.reshard));
  w->I64(options.max_search_nodes);
  w->I64(options.max_elimination_table);
  w->F64(options.deadline_seconds);
  w->Str(options.tenant);
  w->Bool(options.use_plan_cache);
}

Status DecodeOptions(WireReader* r, PlanRequestOptions* out) {
  out->num_microbatches = r->I32();
  out->target_layers = r->I32();
  const uint8_t schedule = r->U8();
  if (schedule > static_cast<uint8_t>(PipelineScheduleType::k1F1B)) {
    return Status::InvalidArgument(StrFormat("wire: schedule out of range (got %u)", schedule));
  }
  out->schedule = static_cast<PipelineScheduleType>(schedule);
  out->enable_interop = r->Bool();
  out->enable_intraop = r->Bool();
  out->equal_layer_stages = r->Bool();
  const uint8_t reshard = r->U8();
  if (reshard > static_cast<uint8_t>(ReshardStrategy::kLocalAllGather)) {
    return Status::InvalidArgument(StrFormat("wire: reshard out of range (got %u)", reshard));
  }
  out->reshard = static_cast<ReshardStrategy>(reshard);
  out->max_search_nodes = r->I64();
  out->max_elimination_table = r->I64();
  out->deadline_seconds = r->F64();
  out->tenant = r->Str();
  out->use_plan_cache = r->Bool();
  return r->status();
}

void EncodeRepairOptions(const RepairOptions& repair, WireWriter* w) {
  w->I32(repair.failed_host);
  w->F64(repair.mtbf.mtbf_seconds);
  w->F64(repair.mtbf.checkpoint_interval_seconds);
  w->F64(repair.mtbf.checkpoint_restore_seconds);
}

Status DecodeRepairOptions(WireReader* r, RepairOptions* out) {
  out->failed_host = r->I32();
  out->mtbf.mtbf_seconds = r->F64();
  out->mtbf.checkpoint_interval_seconds = r->F64();
  out->mtbf.checkpoint_restore_seconds = r->F64();
  return r->status();
}

}  // namespace

Status ServeResponse::ToStatus() const {
  if (code == static_cast<int32_t>(StatusCode::kOk)) {
    return Status::Ok();
  }
  return Status(static_cast<StatusCode>(code), message);
}

ServeResponse ServeResponse::FromStatus(const Status& status) {
  ServeResponse response;
  response.code = static_cast<int32_t>(status.code());
  response.message = status.message();
  return response;
}

std::string SerializeRequest(const ServeRequest& request) {
  WireWriter w;
  w.U8(static_cast<uint8_t>(request.method));
  EncodeOptions(request.options, &w);
  EncodeGraph(request.graph, &w);
  EncodeClusterSpec(request.cluster, &w);
  w.Bool(request.has_plan);
  if (request.has_plan) {
    EncodePlan(request.plan, &w);
  }
  EncodeRepairOptions(request.repair, &w);
  w.Str(request.db_query.tenant);
  w.I32(request.db_query.limit);
  w.U64(request.db_key.graph_hash);
  w.U64(request.db_key.config_hash);
  return WirePack(WireKind::kRequest, w.Take());
}

StatusOr<ServeRequest> DeserializeRequest(std::string_view blob) {
  std::string_view payload;
  ALPA_RETURN_IF_ERROR(WireUnpack(blob, WireKind::kRequest, &payload));
  WireReader r(payload);
  ServeRequest request;
  const uint8_t method = r.U8();
  if (method < static_cast<uint8_t>(Method::kPing) ||
      method > static_cast<uint8_t>(Method::kElasticStats)) {
    return Status::InvalidArgument(StrFormat("wire: unknown method %u", method));
  }
  request.method = static_cast<Method>(method);
  ALPA_RETURN_IF_ERROR(DecodeOptions(&r, &request.options));
  ALPA_RETURN_IF_ERROR(DecodeGraph(&r, &request.graph));
  ALPA_RETURN_IF_ERROR(DecodeClusterSpec(&r, &request.cluster));
  request.has_plan = r.Bool();
  if (!r.ok()) {
    return r.status();
  }
  if (request.has_plan) {
    ALPA_RETURN_IF_ERROR(DecodePlan(&r, &request.plan));
  }
  ALPA_RETURN_IF_ERROR(DecodeRepairOptions(&r, &request.repair));
  request.db_query.tenant = r.Str();
  request.db_query.limit = r.I32();
  request.db_key.graph_hash = r.U64();
  request.db_key.config_hash = r.U64();
  if (!r.ok()) {
    return r.status();
  }
  if (request.db_query.limit < 0) {
    return Status::InvalidArgument("wire: negative db query limit");
  }
  if (r.remaining() != 0) {
    return Status::InvalidArgument(
        StrFormat("wire: %zu trailing bytes after request", r.remaining()));
  }
  return request;
}

std::string SerializeResponse(const ServeResponse& response) {
  WireWriter w;
  w.I32(response.code);
  w.Str(response.message);
  w.Bool(response.has_plan);
  if (response.has_plan) {
    EncodePlan(response.plan, &w);
  }
  w.Bool(response.has_stats);
  if (response.has_stats) {
    EncodeExecutionStats(response.stats, &w);
  }
  w.Bool(response.has_repair);
  if (response.has_repair) {
    EncodeRepairResult(response.repair, &w);
  }
  w.U32(static_cast<uint32_t>(response.records.size()));
  for (const PlanRecord& record : response.records) {
    EncodePlanRecord(record, &w);
  }
  w.F64(response.queue_seconds);
  w.F64(response.compile_seconds);
  w.Bool(response.plan_cache_hit);
  w.F64(response.optimality_gap);
  w.Bool(response.elastic_enabled);
  w.I64(response.elastic_speculations);
  w.I64(response.elastic_hits);
  w.I64(response.elastic_misses);
  w.I64(response.elastic_wasted);
  return WirePack(WireKind::kResponse, w.Take());
}

StatusOr<ServeResponse> DeserializeResponse(std::string_view blob) {
  std::string_view payload;
  ALPA_RETURN_IF_ERROR(WireUnpack(blob, WireKind::kResponse, &payload));
  WireReader r(payload);
  ServeResponse response;
  response.code = r.I32();
  if (response.code < 0 || response.code > static_cast<int32_t>(StatusCode::kUnavailable)) {
    return Status::InvalidArgument(
        StrFormat("wire: status code %d out of range", response.code));
  }
  response.message = r.Str();
  response.has_plan = r.Bool();
  if (!r.ok()) {
    return r.status();
  }
  if (response.has_plan) {
    ALPA_RETURN_IF_ERROR(DecodePlan(&r, &response.plan));
  }
  response.has_stats = r.Bool();
  if (!r.ok()) {
    return r.status();
  }
  if (response.has_stats) {
    ALPA_RETURN_IF_ERROR(DecodeExecutionStats(&r, &response.stats));
  }
  response.has_repair = r.Bool();
  if (!r.ok()) {
    return r.status();
  }
  if (response.has_repair) {
    ALPA_RETURN_IF_ERROR(DecodeRepairResult(&r, &response.repair));
  }
  // 84 bytes minimum per record: 12 fixed fields + a string prefix.
  const uint32_t num_records = r.Count(84);
  response.records.resize(num_records);
  for (uint32_t i = 0; i < num_records; ++i) {
    ALPA_RETURN_IF_ERROR(DecodePlanRecord(&r, &response.records[i]));
  }
  response.queue_seconds = r.F64();
  response.compile_seconds = r.F64();
  response.plan_cache_hit = r.Bool();
  response.optimality_gap = r.F64();
  response.elastic_enabled = r.Bool();
  response.elastic_speculations = r.I64();
  response.elastic_hits = r.I64();
  response.elastic_misses = r.I64();
  response.elastic_wasted = r.I64();
  if (!r.ok()) {
    return r.status();
  }
  if (r.remaining() != 0) {
    return Status::InvalidArgument(
        StrFormat("wire: %zu trailing bytes after response", r.remaining()));
  }
  return response;
}

Status ReadFrame(int fd, std::string* blob) {
  auto read_exact = [fd](char* buf, size_t n, bool* clean_eof) -> Status {
    size_t got = 0;
    while (got < n) {
      const ssize_t k = ::read(fd, buf + got, n - got);
      if (k == 0) {
        if (clean_eof != nullptr && got == 0) {
          *clean_eof = true;
          return Status::Unavailable("connection closed");
        }
        return Status::Internal("connection closed mid-frame");
      }
      if (k < 0) {
        if (errno == EINTR) {
          continue;
        }
        return Status::Internal(StrFormat("read: %s", std::strerror(errno)));
      }
      got += static_cast<size_t>(k);
    }
    return Status::Ok();
  };

  char header[4];
  bool clean_eof = false;
  ALPA_RETURN_IF_ERROR(read_exact(header, 4, &clean_eof));
  uint32_t length = 0;
  for (int i = 3; i >= 0; --i) {
    length = (length << 8) | static_cast<uint8_t>(header[i]);
  }
  if (length > kMaxFrameBytes) {
    return Status::InvalidArgument(StrFormat("frame of %u bytes exceeds cap", length));
  }
  blob->resize(length);
  return read_exact(blob->data(), length, nullptr);
}

Status WriteFrame(int fd, std::string_view blob) {
  if (blob.size() > kMaxFrameBytes) {
    return Status::InvalidArgument("frame exceeds cap");
  }
  char header[4];
  const uint32_t length = static_cast<uint32_t>(blob.size());
  for (int i = 0; i < 4; ++i) {
    header[i] = static_cast<char>((length >> (8 * i)) & 0xff);
  }
  auto write_all = [fd](const char* buf, size_t n) -> Status {
    size_t sent = 0;
    while (sent < n) {
      const ssize_t k = ::write(fd, buf + sent, n - sent);
      if (k < 0) {
        if (errno == EINTR) {
          continue;
        }
        return Status::Internal(StrFormat("write: %s", std::strerror(errno)));
      }
      sent += static_cast<size_t>(k);
    }
    return Status::Ok();
  };
  ALPA_RETURN_IF_ERROR(write_all(header, 4));
  return write_all(blob.data(), blob.size());
}

}  // namespace serve
}  // namespace alpa
