// Versioned binary serialization for plans and their inputs (the wire
// format of the plan service).
//
// Today a CompiledPipeline dies with the process that compiled it. The
// serve subsystem needs plans that outlive processes (disk-backed plan
// cache) and cross process boundaries (the alpa_serve daemon), so every
// core artifact — the operator graph, ClusterSpec, ParallelPlan (compiled
// pipeline + simulator input + compile stats), ExecutionStats, and the
// executor's measured StageTimings — gets an explicit binary encoding here.
//
// Format. Every serialized blob is an *envelope*:
//
//   offset  size  field
//   0       4     magic 0x414C5057 ("ALPW", read as LE u32)
//   4       2     format version (kWireVersion)
//   6       2     payload kind (WireKind) — what the payload decodes as
//   8       8     payload length N (LE u64)
//   16      N     payload (the type's field-by-field encoding)
//   16+N    8     FNV-1a 64 checksum of the payload bytes
//
// All integers are fixed-width little-endian; doubles travel as the LE bit
// pattern of their IEEE-754 representation, so round-trips are bit-exact
// (PlanEquals-identity is asserted by tests, including every latency
// double). Strings and vectors are u32-length-prefixed.
//
// Robustness contract: Deserialize* NEVER crashes or reads out of bounds on
// hostile input. Truncation (at any byte), bit flips (caught by the
// checksum), wrong magic, version skew, or out-of-range enum/count fields
// all return a structured Status (kInvalidArgument) naming the problem and
// the byte offset. This is the property the adversarial decode tests (and
// their ASan-instrumented twin) lock in.
//
// Versioning policy: kWireVersion bumps on ANY change to an existing
// payload encoding. Decoders accept exactly their own version — a version
// mismatch is an error, never a silent misparse — and new payload kinds may
// be added without a bump (unknown kinds are rejected by the expected-kind
// check). Cache files carry the version in the envelope, so a format bump
// simply invalidates old disk entries (decode fails, the cache treats the
// file as a miss).
#ifndef SRC_SERVE_WIRE_H_
#define SRC_SERVE_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/api.h"
#include "src/exec/profiler.h"
#include "src/graph/graph.h"
#include "src/inter/inter_pass.h"
#include "src/mesh/cluster_spec.h"
#include "src/support/status.h"

namespace alpa {
namespace serve {

inline constexpr uint32_t kWireMagic = 0x414C5057u;  // "ALPW".
// v2: CompileStats gained ilp_aborts + max_optimality_gap (anytime
// contract); requests carry max_elimination_table; responses carry the
// plan's optimality gap and results-database record lists.
// v3: ClusterSpec carries per-host DeviceSpec overrides (mixed-generation
// clusters); responses carry elastic speculation stats; new kElasticStats
// request method.
inline constexpr uint16_t kWireVersion = 3;

// What an envelope's payload decodes as.
enum class WireKind : uint16_t {
  kGraph = 1,
  kClusterSpec = 2,
  kPlan = 3,            // ParallelPlan: pipeline + sim input + compile stats.
  kExecutionStats = 4,
  kStageTimings = 5,    // ExecResult::stage_timings.
  kRequest = 6,         // Serve protocol request (src/serve/protocol.h).
  kResponse = 7,        // Serve protocol response.
  kCacheEntry = 8,      // Plan-cache disk entry: key + plan.
  kRepairResult = 9,
  kPlanRecord = 10,     // Results-database record (src/serve/plan_db.h).
};

// --- Primitive append-only writer. Infallible; everything fits in RAM. ---
class WireWriter {
 public:
  void U8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void U16(uint16_t v) {
    U8(static_cast<uint8_t>(v));
    U8(static_cast<uint8_t>(v >> 8));
  }
  void U32(uint32_t v) {
    U16(static_cast<uint16_t>(v));
    U16(static_cast<uint16_t>(v >> 16));
  }
  void U64(uint64_t v) {
    U32(static_cast<uint32_t>(v));
    U32(static_cast<uint32_t>(v >> 32));
  }
  void I32(int32_t v) { U32(static_cast<uint32_t>(v)); }
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  void F64(double v);  // IEEE-754 bit pattern, LE.
  void Bool(bool v) { U8(v ? 1 : 0); }
  void Str(std::string_view s);
  // Raw bytes, no length prefix (composing pre-encoded payloads).
  void Raw(std::string_view bytes) { buf_.append(bytes); }

  const std::string& data() const { return buf_; }
  std::string Take() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  std::string buf_;
};

// --- Bounds-checked reader. The first out-of-bounds read latches an error
// (with the offending byte offset); subsequent reads return zeros, so
// decoders can read a whole struct and check ok() once. Decoders still
// validate VALUES (enum ranges, counts, cross-field invariants) and fail
// with their own Status. ---
class WireReader {
 public:
  explicit WireReader(std::string_view data) : data_(data) {}

  uint8_t U8();
  uint16_t U16();
  uint32_t U32();
  uint64_t U64();
  int32_t I32() { return static_cast<int32_t>(U32()); }
  int64_t I64() { return static_cast<int64_t>(U64()); }
  double F64();
  bool Bool() { return U8() != 0; }
  std::string Str();

  // Count prefix for a vector whose elements occupy >= `min_element_bytes`
  // each; fails (returning 0) when the remaining bytes cannot possibly hold
  // that many elements — the guard that keeps corrupt counts from turning
  // into multi-gigabyte allocations.
  uint32_t Count(size_t min_element_bytes);

  bool ok() const { return error_.empty(); }
  // kInvalidArgument naming the first failure and its byte offset.
  Status status() const;
  void Fail(const std::string& why);

  size_t offset() const { return pos_; }
  size_t remaining() const { return data_.size() - pos_; }

 private:
  bool Need(size_t n, const char* what);

  std::string_view data_;
  size_t pos_ = 0;
  std::string error_;
};

// --- Envelope ---

// Wraps an encoded payload in the versioned, checksummed envelope.
std::string WirePack(WireKind kind, std::string payload);
// Verifies magic, version, kind, length, and checksum; on success points
// `payload` into `blob` (no copy). Any violation: kInvalidArgument.
Status WireUnpack(std::string_view blob, WireKind expected_kind, std::string_view* payload);

// --- Field-level codecs (payload encodings, no envelope). Encode* never
// fails; Decode* validates and returns kInvalidArgument on malformed
// input, leaving `out` in an unspecified but destructible state. ---
void EncodeGraph(const Graph& graph, WireWriter* w);
Status DecodeGraph(WireReader* r, Graph* out);
void EncodeClusterSpec(const ClusterSpec& cluster, WireWriter* w);
Status DecodeClusterSpec(WireReader* r, ClusterSpec* out);
void EncodePipeline(const CompiledPipeline& pipeline, WireWriter* w);
Status DecodePipeline(WireReader* r, CompiledPipeline* out);
void EncodeSimInput(const PipelineSimInput& input, WireWriter* w);
Status DecodeSimInput(WireReader* r, PipelineSimInput* out);
void EncodePlan(const ParallelPlan& plan, WireWriter* w);
Status DecodePlan(WireReader* r, ParallelPlan* out);
void EncodeExecutionStats(const ExecutionStats& stats, WireWriter* w);
Status DecodeExecutionStats(WireReader* r, ExecutionStats* out);
void EncodeStageTimings(const std::vector<exec::StageTiming>& timings, WireWriter* w);
Status DecodeStageTimings(WireReader* r, std::vector<exec::StageTiming>* out);
void EncodeRepairResult(const RepairResult& result, WireWriter* w);
Status DecodeRepairResult(WireReader* r, RepairResult* out);

// --- One-call envelope serializers for the persistable artifacts. ---
std::string SerializeGraph(const Graph& graph);
StatusOr<Graph> DeserializeGraph(std::string_view blob);
std::string SerializeClusterSpec(const ClusterSpec& cluster);
StatusOr<ClusterSpec> DeserializeClusterSpec(std::string_view blob);
std::string SerializePlan(const ParallelPlan& plan);
StatusOr<ParallelPlan> DeserializePlan(std::string_view blob);
std::string SerializeExecutionStats(const ExecutionStats& stats);
StatusOr<ExecutionStats> DeserializeExecutionStats(std::string_view blob);
std::string SerializeStageTimings(const std::vector<exec::StageTiming>& timings);
StatusOr<std::vector<exec::StageTiming>> DeserializeStageTimings(std::string_view blob);

}  // namespace serve
}  // namespace alpa

#endif  // SRC_SERVE_WIRE_H_
