#include "src/serve/wire.h"

#include <bit>
#include <cstring>
#include <limits>

#include "src/support/hashing.h"
#include "src/support/strings.h"

namespace alpa {
namespace serve {

namespace {

// Absolute sanity caps on decoded sizes. Real artifacts sit far below
// these; corrupt length fields above them fail fast instead of allocating.
constexpr uint32_t kMaxString = 1u << 22;     // 4 MiB.
constexpr uint32_t kMaxCount = 1u << 22;      // Elements per vector.
constexpr int kMaxRank = 64;                  // Tensor rank.
constexpr int64_t kMaxDim = int64_t{1} << 48; // Single tensor extent.

uint64_t Checksum(std::string_view payload) {
  Fnv1a64 hasher;
  hasher.Bytes(payload.data(), payload.size());
  return hasher.hash();
}

Status BadEnum(const char* what, int64_t value) {
  return Status::InvalidArgument(
      StrFormat("wire: %s out of range (got %lld)", what, static_cast<long long>(value)));
}

}  // namespace

// --- WireWriter ---

void WireWriter::F64(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  U64(bits);
}

void WireWriter::Str(std::string_view s) {
  U32(static_cast<uint32_t>(s.size()));
  buf_.append(s);
}

// --- WireReader ---

bool WireReader::Need(size_t n, const char* what) {
  if (!ok()) {
    return false;
  }
  if (data_.size() - pos_ < n) {
    Fail(StrFormat("truncated %s (need %zu bytes, %zu remain)", what, n, data_.size() - pos_));
    return false;
  }
  return true;
}

void WireReader::Fail(const std::string& why) {
  if (error_.empty()) {
    error_ = StrFormat("%s at byte %zu", why.c_str(), pos_);
  }
}

uint8_t WireReader::U8() {
  if (!Need(1, "u8")) {
    return 0;
  }
  return static_cast<uint8_t>(data_[pos_++]);
}

uint16_t WireReader::U16() {
  if (!Need(2, "u16")) {
    return 0;
  }
  const uint16_t lo = static_cast<uint8_t>(data_[pos_]);
  const uint16_t hi = static_cast<uint8_t>(data_[pos_ + 1]);
  pos_ += 2;
  return static_cast<uint16_t>(lo | (hi << 8));
}

uint32_t WireReader::U32() {
  if (!Need(4, "u32")) {
    return 0;
  }
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | static_cast<uint8_t>(data_[pos_ + static_cast<size_t>(i)]);
  }
  pos_ += 4;
  return v;
}

uint64_t WireReader::U64() {
  if (!Need(8, "u64")) {
    return 0;
  }
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | static_cast<uint8_t>(data_[pos_ + static_cast<size_t>(i)]);
  }
  pos_ += 8;
  return v;
}

double WireReader::F64() {
  const uint64_t bits = U64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string WireReader::Str() {
  const uint32_t len = U32();
  if (!ok()) {
    return std::string();
  }
  if (len > kMaxString) {
    Fail(StrFormat("string length %u exceeds cap", len));
    return std::string();
  }
  if (!Need(len, "string body")) {
    return std::string();
  }
  std::string out(data_.substr(pos_, len));
  pos_ += len;
  return out;
}

uint32_t WireReader::Count(size_t min_element_bytes) {
  const uint32_t n = U32();
  if (!ok()) {
    return 0;
  }
  if (n > kMaxCount) {
    Fail(StrFormat("element count %u exceeds cap", n));
    return 0;
  }
  if (min_element_bytes > 0 &&
      static_cast<uint64_t>(n) * min_element_bytes > remaining()) {
    Fail(StrFormat("element count %u cannot fit in %zu remaining bytes", n, remaining()));
    return 0;
  }
  return n;
}

Status WireReader::status() const {
  if (ok()) {
    return Status::Ok();
  }
  return Status::InvalidArgument("wire: " + error_);
}

// --- Envelope ---

std::string WirePack(WireKind kind, std::string payload) {
  WireWriter w;
  w.U32(kWireMagic);
  w.U16(kWireVersion);
  w.U16(static_cast<uint16_t>(kind));
  w.U64(payload.size());
  const uint64_t checksum = Checksum(payload);
  w.Raw(payload);
  w.U64(checksum);
  return w.Take();
}

Status WireUnpack(std::string_view blob, WireKind expected_kind, std::string_view* payload) {
  WireReader r(blob);
  const uint32_t magic = r.U32();
  if (!r.ok()) {
    return r.status();
  }
  if (magic != kWireMagic) {
    return Status::InvalidArgument(
        StrFormat("wire: bad magic 0x%08x (expected 0x%08x) — not an alpa wire blob", magic,
                  kWireMagic));
  }
  const uint16_t version = r.U16();
  if (version != kWireVersion) {
    return Status::InvalidArgument(
        StrFormat("wire: format version %u is not supported (this build speaks version %u); "
                  "re-serialize with a matching build",
                  version, kWireVersion));
  }
  const uint16_t kind = r.U16();
  if (kind != static_cast<uint16_t>(expected_kind)) {
    return Status::InvalidArgument(StrFormat("wire: payload kind %u, expected %u", kind,
                                             static_cast<uint16_t>(expected_kind)));
  }
  const uint64_t length = r.U64();
  if (!r.ok()) {
    return r.status();
  }
  // Exactly payload + trailing checksum must remain.
  if (r.remaining() != length + 8) {
    return Status::InvalidArgument(
        StrFormat("wire: envelope declares %llu payload bytes but %zu (+8 checksum) are present",
                  static_cast<unsigned long long>(length), r.remaining()));
  }
  const std::string_view body = blob.substr(r.offset(), length);
  WireReader tail(blob.substr(r.offset() + length));
  const uint64_t stored = tail.U64();
  if (stored != Checksum(body)) {
    return Status::InvalidArgument("wire: payload checksum mismatch (corrupted blob)");
  }
  *payload = body;
  return Status::Ok();
}

// --- Small shared codecs ---

namespace {

void EncodeShape(const TensorShape& shape, WireWriter* w) {
  w->U32(static_cast<uint32_t>(shape.rank()));
  for (int64_t d : shape.dims()) {
    w->I64(d);
  }
}

Status DecodeShape(WireReader* r, TensorShape* out) {
  const uint32_t rank = r->Count(8);
  if (!r->ok()) {
    return r->status();
  }
  if (rank > kMaxRank) {
    return BadEnum("tensor rank", rank);
  }
  std::vector<int64_t> dims(rank);
  for (uint32_t i = 0; i < rank; ++i) {
    dims[i] = r->I64();
    if (dims[i] < 0 || dims[i] > kMaxDim) {
      return BadEnum("tensor dim", dims[i]);
    }
  }
  if (!r->ok()) {
    return r->status();
  }
  *out = TensorShape(std::move(dims));
  return Status::Ok();
}

void EncodeSpec(const ShardingSpec& spec, WireWriter* w) {
  w->U32(static_cast<uint32_t>(spec.rank()));
  for (DimSharding d : spec.dims()) {
    w->U8(static_cast<uint8_t>(d));
  }
}

Status DecodeSpec(WireReader* r, ShardingSpec* out) {
  const uint32_t rank = r->Count(1);
  if (!r->ok()) {
    return r->status();
  }
  if (rank > kMaxRank) {
    return BadEnum("sharding spec rank", rank);
  }
  std::vector<DimSharding> dims(rank);
  int axis0 = 0;
  int axis1 = 0;
  for (uint32_t i = 0; i < rank; ++i) {
    const uint8_t v = r->U8();
    if (v > static_cast<uint8_t>(DimSharding::kS01)) {
      return BadEnum("dim sharding", v);
    }
    dims[i] = static_cast<DimSharding>(v);
    axis0 += dims[i] == DimSharding::kS0 || dims[i] == DimSharding::kS01;
    axis1 += dims[i] == DimSharding::kS1 || dims[i] == DimSharding::kS01;
  }
  if (!r->ok()) {
    return r->status();
  }
  // ShardingSpec::Make CHECK-fails on this; reject first so hostile input
  // yields a Status, never a crash.
  if (axis0 > 1 || axis1 > 1) {
    return Status::InvalidArgument("wire: sharding spec assigns a mesh axis to multiple dims");
  }
  *out = ShardingSpec::Make(std::move(dims));
  return Status::Ok();
}

void EncodeFaultSpec(const FaultSpec& faults, WireWriter* w) {
  w->U32(static_cast<uint32_t>(faults.device_failures.size()));
  for (const DeviceFailure& f : faults.device_failures) {
    w->I32(f.device);
    w->F64(f.time);
  }
  w->U32(static_cast<uint32_t>(faults.stragglers.size()));
  for (const Straggler& s : faults.stragglers) {
    w->I32(s.device);
    w->F64(s.slowdown);
  }
  w->U32(static_cast<uint32_t>(faults.link_degradations.size()));
  for (const LinkDegradation& l : faults.link_degradations) {
    w->I32(l.src_host);
    w->I32(l.dst_host);
    w->F64(l.bandwidth_factor);
  }
  w->F64(faults.transient_send_failure_rate);
  w->I32(faults.retry.max_attempts);
  w->F64(faults.retry.timeout);
  w->F64(faults.retry.backoff);
  w->F64(faults.retry.backoff_multiplier);
  w->F64(faults.detection_timeout);
  w->U64(faults.seed);
}

Status DecodeFaultSpec(WireReader* r, FaultSpec* out) {
  uint32_t n = r->Count(12);
  out->device_failures.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    out->device_failures[i].device = r->I32();
    out->device_failures[i].time = r->F64();
  }
  n = r->Count(12);
  out->stragglers.resize(r->ok() ? n : 0);
  for (uint32_t i = 0; i < n && r->ok(); ++i) {
    out->stragglers[i].device = r->I32();
    out->stragglers[i].slowdown = r->F64();
  }
  n = r->Count(16);
  out->link_degradations.resize(r->ok() ? n : 0);
  for (uint32_t i = 0; i < n && r->ok(); ++i) {
    out->link_degradations[i].src_host = r->I32();
    out->link_degradations[i].dst_host = r->I32();
    out->link_degradations[i].bandwidth_factor = r->F64();
  }
  out->transient_send_failure_rate = r->F64();
  out->retry.max_attempts = r->I32();
  out->retry.timeout = r->F64();
  out->retry.backoff = r->F64();
  out->retry.backoff_multiplier = r->F64();
  out->detection_timeout = r->F64();
  out->seed = r->U64();
  return r->status();
}

void EncodeEinsum(const EinsumSpec& einsum, WireWriter* w) {
  w->Str(einsum.output);
  w->U32(static_cast<uint32_t>(einsum.operands.size()));
  for (const std::string& operand : einsum.operands) {
    w->Str(operand);
  }
  w->U32(static_cast<uint32_t>(einsum.extents.size()));
  for (const auto& [label, extent] : einsum.extents) {
    w->U8(static_cast<uint8_t>(label));
    w->I64(extent);
  }
  w->U32(static_cast<uint32_t>(einsum.halo.size()));
  for (const auto& [label, kernel] : einsum.halo) {
    w->U8(static_cast<uint8_t>(label));
    w->I64(kernel);
  }
}

Status DecodeEinsum(WireReader* r, EinsumSpec* out) {
  out->output = r->Str();
  const uint32_t num_operands = r->Count(4);
  out->operands.resize(r->ok() ? num_operands : 0);
  for (uint32_t i = 0; i < num_operands && r->ok(); ++i) {
    out->operands[i] = r->Str();
  }
  uint32_t n = r->Count(9);
  for (uint32_t i = 0; i < n && r->ok(); ++i) {
    const char label = static_cast<char>(r->U8());
    out->extents[label] = r->I64();
  }
  n = r->Count(9);
  for (uint32_t i = 0; i < n && r->ok(); ++i) {
    const char label = static_cast<char>(r->U8());
    out->halo[label] = r->I64();
  }
  return r->status();
}

void EncodePlacement(const MeshPlacement& placement, WireWriter* w) {
  w->I32(placement.host_begin);
  w->I32(placement.device_begin);
  w->I32(placement.shape.num_hosts);
  w->I32(placement.shape.devices_per_host);
}

Status DecodePlacement(WireReader* r, MeshPlacement* out) {
  out->host_begin = r->I32();
  out->device_begin = r->I32();
  out->shape.num_hosts = r->I32();
  out->shape.devices_per_host = r->I32();
  if (!r->ok()) {
    return r->status();
  }
  if (out->host_begin < 0 || out->device_begin < 0 || out->shape.num_hosts < 0 ||
      out->shape.devices_per_host < 0) {
    return Status::InvalidArgument("wire: negative mesh placement field");
  }
  return Status::Ok();
}

void EncodeCompileStats(const CompileStats& stats, WireWriter* w) {
  w->F64(stats.clustering_seconds);
  w->F64(stats.profiling_seconds);
  w->F64(stats.profiling_wall_seconds);
  w->F64(stats.dp_seconds);
  w->F64(stats.other_seconds);
  w->F64(stats.total_seconds);
  w->I64(stats.ilp_solves);
  w->I64(stats.ilp_cache_hits);
  w->I64(stats.ilp_cache_misses);
  w->I32(stats.num_tmax_tried);
  w->I32(stats.threads_used);
  w->I64(stats.ilp_aborts);
  w->F64(stats.max_optimality_gap);
}

Status DecodeCompileStats(WireReader* r, CompileStats* out) {
  out->clustering_seconds = r->F64();
  out->profiling_seconds = r->F64();
  out->profiling_wall_seconds = r->F64();
  out->dp_seconds = r->F64();
  out->other_seconds = r->F64();
  out->total_seconds = r->F64();
  out->ilp_solves = r->I64();
  out->ilp_cache_hits = r->I64();
  out->ilp_cache_misses = r->I64();
  out->num_tmax_tried = r->I32();
  out->threads_used = r->I32();
  out->ilp_aborts = r->I64();
  out->max_optimality_gap = r->F64();
  return r->status();
}

void EncodeCrossStageTensor(const CrossStageTensor& tensor, WireWriter* w) {
  EncodeShape(tensor.shape, w);
  w->I64(tensor.dtype_bytes);
  EncodeSpec(tensor.src_spec, w);
  EncodeSpec(tensor.dst_spec, w);
  w->Bool(tensor.forward);
  w->I32(tensor.producer_op);
}

Status DecodeCrossStageTensor(WireReader* r, CrossStageTensor* out) {
  ALPA_RETURN_IF_ERROR(DecodeShape(r, &out->shape));
  out->dtype_bytes = r->I64();
  ALPA_RETURN_IF_ERROR(DecodeSpec(r, &out->src_spec));
  ALPA_RETURN_IF_ERROR(DecodeSpec(r, &out->dst_spec));
  out->forward = r->Bool();
  out->producer_op = r->I32();
  return r->status();
}

void EncodeStage(const CompiledStage& stage, WireWriter* w) {
  w->I32(stage.layer_begin);
  w->I32(stage.layer_end);
  EncodePlacement(stage.placement, w);
  w->I32(stage.logical_shape[0]);
  w->I32(stage.logical_shape[1]);
  w->U32(static_cast<uint32_t>(stage.device_ids.size()));
  for (int id : stage.device_ids) {
    w->I32(id);
  }
  w->F64(stage.t_intra);
  w->F64(stage.t_forward);
  w->F64(stage.t_backward);
  w->F64(stage.t_per_iteration);
  w->F64(stage.weight_bytes);
  w->F64(stage.act_bytes_per_microbatch);
  w->F64(stage.work_bytes);
  w->U32(static_cast<uint32_t>(stage.sends_to_next.size()));
  for (const CrossStageTensor& tensor : stage.sends_to_next) {
    EncodeCrossStageTensor(tensor, w);
  }
  w->U32(static_cast<uint32_t>(stage.op_spec_summary.size()));
  for (const auto& [name, spec] : stage.op_spec_summary) {
    w->Str(name);
    w->Str(spec);
  }
}

Status DecodeStage(WireReader* r, CompiledStage* out) {
  out->layer_begin = r->I32();
  out->layer_end = r->I32();
  ALPA_RETURN_IF_ERROR(DecodePlacement(r, &out->placement));
  out->logical_shape[0] = r->I32();
  out->logical_shape[1] = r->I32();
  const uint32_t num_devices = r->Count(4);
  out->device_ids.resize(r->ok() ? num_devices : 0);
  for (uint32_t i = 0; i < num_devices && r->ok(); ++i) {
    out->device_ids[i] = r->I32();
  }
  out->t_intra = r->F64();
  out->t_forward = r->F64();
  out->t_backward = r->F64();
  out->t_per_iteration = r->F64();
  out->weight_bytes = r->F64();
  out->act_bytes_per_microbatch = r->F64();
  out->work_bytes = r->F64();
  const uint32_t num_sends = r->Count(8);
  if (!r->ok()) {
    return r->status();
  }
  out->sends_to_next.resize(num_sends);
  for (uint32_t i = 0; i < num_sends; ++i) {
    ALPA_RETURN_IF_ERROR(DecodeCrossStageTensor(r, &out->sends_to_next[i]));
  }
  const uint32_t num_specs = r->Count(8);
  if (!r->ok()) {
    return r->status();
  }
  out->op_spec_summary.resize(num_specs);
  for (uint32_t i = 0; i < num_specs; ++i) {
    out->op_spec_summary[i].first = r->Str();
    out->op_spec_summary[i].second = r->Str();
  }
  return r->status();
}

}  // namespace

// --- Graph ---

void EncodeGraph(const Graph& graph, WireWriter* w) {
  w->U32(static_cast<uint32_t>(graph.size()));
  for (const Operator& op : graph.ops()) {
    w->U8(static_cast<uint8_t>(op.type));
    w->U8(static_cast<uint8_t>(op.role));
    w->Str(op.name);
    w->U32(static_cast<uint32_t>(op.operands.size()));
    for (int operand : op.operands) {
      w->I32(operand);
    }
    EncodeShape(op.shape, w);
    w->U8(static_cast<uint8_t>(op.dtype));
    EncodeEinsum(op.einsum, w);
    w->F64(op.flops);
    w->I32(op.layer);
    w->I32(op.forward_id);
    w->I32(op.param_id);
    w->Bool(op.weight_grad);
  }
}

Status DecodeGraph(WireReader* r, Graph* out) {
  const uint32_t num_ops = r->Count(16);
  if (!r->ok()) {
    return r->status();
  }
  *out = Graph();
  for (uint32_t i = 0; i < num_ops; ++i) {
    Operator op;
    const uint8_t type = r->U8();
    if (type > static_cast<uint8_t>(OpType::kUpdate)) {
      return BadEnum("op type", type);
    }
    op.type = static_cast<OpType>(type);
    const uint8_t role = r->U8();
    if (role > static_cast<uint8_t>(OpRole::kUpdate)) {
      return BadEnum("op role", role);
    }
    op.role = static_cast<OpRole>(role);
    op.name = r->Str();
    const uint32_t num_operands = r->Count(4);
    if (!r->ok()) {
      return r->status();
    }
    op.operands.resize(num_operands);
    for (uint32_t j = 0; j < num_operands; ++j) {
      op.operands[j] = r->I32();
      // Graph::Append CHECK-fails on non-topological operands; reject here
      // so a corrupt graph is a Status, not a crash.
      if (op.operands[j] < 0 || op.operands[j] >= static_cast<int>(i)) {
        return Status::InvalidArgument(
            StrFormat("wire: op %u operand %d violates topological order", i, op.operands[j]));
      }
    }
    ALPA_RETURN_IF_ERROR(DecodeShape(r, &op.shape));
    const uint8_t dtype = r->U8();
    if (dtype > static_cast<uint8_t>(DType::kI32)) {
      return BadEnum("dtype", dtype);
    }
    op.dtype = static_cast<DType>(dtype);
    ALPA_RETURN_IF_ERROR(DecodeEinsum(r, &op.einsum));
    op.flops = r->F64();
    op.layer = r->I32();
    op.forward_id = r->I32();
    op.param_id = r->I32();
    op.weight_grad = r->Bool();
    if (!r->ok()) {
      return r->status();
    }
    if (op.layer < -1 || op.forward_id < -1 || op.param_id < -1 ||
        op.forward_id >= static_cast<int>(num_ops) || op.param_id >= static_cast<int>(num_ops)) {
      return Status::InvalidArgument(StrFormat("wire: op %u references out-of-range op ids", i));
    }
    out->Append(std::move(op));
  }
  return r->status();
}

// --- ClusterSpec ---

void EncodeClusterSpec(const ClusterSpec& cluster, WireWriter* w) {
  w->I32(cluster.num_hosts);
  w->I32(cluster.devices_per_host);
  w->F64(cluster.device.peak_flops_fp16);
  w->F64(cluster.device.peak_flops_fp32);
  w->F64(cluster.device.memory_bytes);
  w->F64(cluster.device.memory_bandwidth);
  w->F64(cluster.device.compute_efficiency);
  w->F64(cluster.intra_host_bandwidth);
  w->F64(cluster.intra_host_alpha);
  w->F64(cluster.inter_host_bandwidth);
  w->F64(cluster.inter_host_alpha);
  w->U32(static_cast<uint32_t>(cluster.host_devices.size()));
  for (const DeviceSpec& d : cluster.host_devices) {
    w->F64(d.peak_flops_fp16);
    w->F64(d.peak_flops_fp32);
    w->F64(d.memory_bytes);
    w->F64(d.memory_bandwidth);
    w->F64(d.compute_efficiency);
  }
  EncodeFaultSpec(cluster.faults, w);
}

Status DecodeClusterSpec(WireReader* r, ClusterSpec* out) {
  out->num_hosts = r->I32();
  out->devices_per_host = r->I32();
  out->device.peak_flops_fp16 = r->F64();
  out->device.peak_flops_fp32 = r->F64();
  out->device.memory_bytes = r->F64();
  out->device.memory_bandwidth = r->F64();
  out->device.compute_efficiency = r->F64();
  out->intra_host_bandwidth = r->F64();
  out->intra_host_alpha = r->F64();
  out->inter_host_bandwidth = r->F64();
  out->inter_host_alpha = r->F64();
  const uint32_t num_host_devices = r->Count(40);
  if (!r->ok()) {
    return r->status();
  }
  out->host_devices.resize(num_host_devices);
  for (uint32_t i = 0; i < num_host_devices; ++i) {
    DeviceSpec& d = out->host_devices[i];
    d.peak_flops_fp16 = r->F64();
    d.peak_flops_fp32 = r->F64();
    d.memory_bytes = r->F64();
    d.memory_bandwidth = r->F64();
    d.compute_efficiency = r->F64();
  }
  ALPA_RETURN_IF_ERROR(DecodeFaultSpec(r, &out->faults));
  if (out->num_hosts < 0 || out->devices_per_host < 0 ||
      out->num_hosts > (1 << 20) || out->devices_per_host > (1 << 20)) {
    return Status::InvalidArgument("wire: cluster extent out of range");
  }
  if (!out->host_devices.empty() &&
      static_cast<int>(out->host_devices.size()) != out->num_hosts) {
    return Status::InvalidArgument("wire: host_devices count must be 0 or num_hosts");
  }
  return Status::Ok();
}

// --- CompiledPipeline / PipelineSimInput / ParallelPlan ---

void EncodePipeline(const CompiledPipeline& pipeline, WireWriter* w) {
  w->Bool(pipeline.feasible);
  w->Str(pipeline.infeasible_reason);
  w->U32(static_cast<uint32_t>(pipeline.stages.size()));
  for (const CompiledStage& stage : pipeline.stages) {
    EncodeStage(stage, w);
  }
  w->I32(pipeline.num_microbatches);
  w->F64(pipeline.dp_latency);
  w->F64(pipeline.max_stage_latency);
  EncodeCompileStats(pipeline.stats, w);
}

Status DecodePipeline(WireReader* r, CompiledPipeline* out) {
  out->feasible = r->Bool();
  out->infeasible_reason = r->Str();
  const uint32_t num_stages = r->Count(32);
  if (!r->ok()) {
    return r->status();
  }
  out->stages.resize(num_stages);
  for (uint32_t i = 0; i < num_stages; ++i) {
    ALPA_RETURN_IF_ERROR(DecodeStage(r, &out->stages[i]));
  }
  out->num_microbatches = r->I32();
  out->dp_latency = r->F64();
  out->max_stage_latency = r->F64();
  return DecodeCompileStats(r, &out->stats);
}

void EncodeSimInput(const PipelineSimInput& input, WireWriter* w) {
  w->U32(static_cast<uint32_t>(input.stages.size()));
  for (const StageExecProfile& stage : input.stages) {
    w->F64(stage.t_forward);
    w->F64(stage.t_backward);
    w->F64(stage.t_update);
    w->F64(stage.t_send_next);
    w->F64(stage.weight_bytes);
    w->F64(stage.act_bytes_per_microbatch);
    w->F64(stage.work_bytes);
  }
  w->I32(input.num_microbatches);
  w->U8(static_cast<uint8_t>(input.schedule));
  w->F64(input.device_memory_bytes);
  w->U32(static_cast<uint32_t>(input.stage_memory_bytes.size()));
  for (double bytes : input.stage_memory_bytes) {
    w->F64(bytes);
  }
  w->Bool(input.record_timeline);
  EncodeFaultSpec(input.faults, w);
  w->U32(static_cast<uint32_t>(input.stage_devices.size()));
  for (const std::vector<int>& devices : input.stage_devices) {
    w->U32(static_cast<uint32_t>(devices.size()));
    for (int d : devices) {
      w->I32(d);
    }
  }
  w->I32(input.devices_per_host);
}

Status DecodeSimInput(WireReader* r, PipelineSimInput* out) {
  const uint32_t num_stages = r->Count(56);
  if (!r->ok()) {
    return r->status();
  }
  out->stages.resize(num_stages);
  for (uint32_t i = 0; i < num_stages; ++i) {
    StageExecProfile& stage = out->stages[i];
    stage.t_forward = r->F64();
    stage.t_backward = r->F64();
    stage.t_update = r->F64();
    stage.t_send_next = r->F64();
    stage.weight_bytes = r->F64();
    stage.act_bytes_per_microbatch = r->F64();
    stage.work_bytes = r->F64();
  }
  out->num_microbatches = r->I32();
  const uint8_t schedule = r->U8();
  if (schedule > static_cast<uint8_t>(PipelineScheduleType::k1F1B)) {
    return BadEnum("schedule", schedule);
  }
  out->schedule = static_cast<PipelineScheduleType>(schedule);
  out->device_memory_bytes = r->F64();
  const uint32_t num_stage_memory = r->Count(8);
  if (!r->ok()) {
    return r->status();
  }
  out->stage_memory_bytes.resize(num_stage_memory);
  for (uint32_t i = 0; i < num_stage_memory; ++i) {
    out->stage_memory_bytes[i] = r->F64();
  }
  out->record_timeline = r->Bool();
  ALPA_RETURN_IF_ERROR(DecodeFaultSpec(r, &out->faults));
  const uint32_t num_stage_devices = r->Count(4);
  if (!r->ok()) {
    return r->status();
  }
  out->stage_devices.resize(num_stage_devices);
  for (uint32_t i = 0; i < num_stage_devices; ++i) {
    const uint32_t n = r->Count(4);
    if (!r->ok()) {
      return r->status();
    }
    out->stage_devices[i].resize(n);
    for (uint32_t j = 0; j < n; ++j) {
      out->stage_devices[i][j] = r->I32();
    }
  }
  out->devices_per_host = r->I32();
  return r->status();
}

void EncodePlan(const ParallelPlan& plan, WireWriter* w) {
  EncodePipeline(plan.pipeline, w);
  EncodeSimInput(plan.sim_input, w);
  EncodeCompileStats(plan.compile_stats, w);
}

Status DecodePlan(WireReader* r, ParallelPlan* out) {
  ALPA_RETURN_IF_ERROR(DecodePipeline(r, &out->pipeline));
  ALPA_RETURN_IF_ERROR(DecodeSimInput(r, &out->sim_input));
  return DecodeCompileStats(r, &out->compile_stats);
}

// --- ExecutionStats / StageTimings / RepairResult ---

void EncodeExecutionStats(const ExecutionStats& stats, WireWriter* w) {
  w->F64(stats.latency);
  w->F64(stats.total_flops);
  w->F64(stats.pflops);
  w->F64(stats.bubble_fraction);
  w->F64(stats.peak_memory_bytes);
}

Status DecodeExecutionStats(WireReader* r, ExecutionStats* out) {
  out->latency = r->F64();
  out->total_flops = r->F64();
  out->pflops = r->F64();
  out->bubble_fraction = r->F64();
  out->peak_memory_bytes = r->F64();
  return r->status();
}

void EncodeStageTimings(const std::vector<exec::StageTiming>& timings, WireWriter* w) {
  w->U32(static_cast<uint32_t>(timings.size()));
  for (const exec::StageTiming& timing : timings) {
    w->I32(timing.stage);
    for (int p = 0; p < exec::kNumExecPhases; ++p) {
      w->F64(timing.phase_seconds[p]);
    }
    w->I32(timing.num_devices);
  }
}

Status DecodeStageTimings(WireReader* r, std::vector<exec::StageTiming>* out) {
  const uint32_t n = r->Count(8 + 8 * exec::kNumExecPhases);
  if (!r->ok()) {
    return r->status();
  }
  out->resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    exec::StageTiming& timing = (*out)[i];
    timing.stage = r->I32();
    for (int p = 0; p < exec::kNumExecPhases; ++p) {
      timing.phase_seconds[p] = r->F64();
    }
    timing.num_devices = r->I32();
  }
  return r->status();
}

void EncodeRepairResult(const RepairResult& result, WireWriter* w) {
  EncodeClusterSpec(result.shrunk_cluster, w);
  EncodePlan(result.plan, w);
  EncodeExecutionStats(result.stats, w);
  w->F64(result.recompile_seconds);
  w->I64(result.ilp_cache_hits);
  w->I64(result.ilp_cache_misses);
  w->F64(result.expected_downtime_seconds);
  w->F64(result.goodput_fraction);
  w->F64(result.goodput_pflops);
}

Status DecodeRepairResult(WireReader* r, RepairResult* out) {
  ALPA_RETURN_IF_ERROR(DecodeClusterSpec(r, &out->shrunk_cluster));
  ALPA_RETURN_IF_ERROR(DecodePlan(r, &out->plan));
  ALPA_RETURN_IF_ERROR(DecodeExecutionStats(r, &out->stats));
  out->recompile_seconds = r->F64();
  out->ilp_cache_hits = r->I64();
  out->ilp_cache_misses = r->I64();
  out->expected_downtime_seconds = r->F64();
  out->goodput_fraction = r->F64();
  out->goodput_pflops = r->F64();
  return r->status();
}

// --- Envelope serializers ---

namespace {

template <typename T, typename EncodeFn>
std::string SerializeWith(WireKind kind, const T& value, EncodeFn encode) {
  WireWriter w;
  encode(value, &w);
  return WirePack(kind, w.Take());
}

template <typename T, typename DecodeFn>
StatusOr<T> DeserializeWith(WireKind kind, std::string_view blob, DecodeFn decode) {
  std::string_view payload;
  ALPA_RETURN_IF_ERROR(WireUnpack(blob, kind, &payload));
  WireReader r(payload);
  T out;
  ALPA_RETURN_IF_ERROR(decode(&r, &out));
  if (r.remaining() != 0) {
    return Status::InvalidArgument(
        StrFormat("wire: %zu trailing bytes after payload", r.remaining()));
  }
  return out;
}

}  // namespace

std::string SerializeGraph(const Graph& graph) {
  return SerializeWith(WireKind::kGraph, graph, EncodeGraph);
}
StatusOr<Graph> DeserializeGraph(std::string_view blob) {
  return DeserializeWith<Graph>(WireKind::kGraph, blob, DecodeGraph);
}

std::string SerializeClusterSpec(const ClusterSpec& cluster) {
  return SerializeWith(WireKind::kClusterSpec, cluster, EncodeClusterSpec);
}
StatusOr<ClusterSpec> DeserializeClusterSpec(std::string_view blob) {
  return DeserializeWith<ClusterSpec>(WireKind::kClusterSpec, blob, DecodeClusterSpec);
}

std::string SerializePlan(const ParallelPlan& plan) {
  return SerializeWith(WireKind::kPlan, plan, EncodePlan);
}
StatusOr<ParallelPlan> DeserializePlan(std::string_view blob) {
  return DeserializeWith<ParallelPlan>(WireKind::kPlan, blob, DecodePlan);
}

std::string SerializeExecutionStats(const ExecutionStats& stats) {
  return SerializeWith(WireKind::kExecutionStats, stats, EncodeExecutionStats);
}
StatusOr<ExecutionStats> DeserializeExecutionStats(std::string_view blob) {
  return DeserializeWith<ExecutionStats>(WireKind::kExecutionStats, blob, DecodeExecutionStats);
}

std::string SerializeStageTimings(const std::vector<exec::StageTiming>& timings) {
  return SerializeWith(WireKind::kStageTimings, timings, EncodeStageTimings);
}
StatusOr<std::vector<exec::StageTiming>> DeserializeStageTimings(std::string_view blob) {
  return DeserializeWith<std::vector<exec::StageTiming>>(WireKind::kStageTimings, blob,
                                                         DecodeStageTimings);
}

}  // namespace serve
}  // namespace alpa
