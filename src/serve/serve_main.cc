// alpa_serve — the plan-compilation daemon.
//
//   alpa_serve --socket /tmp/alpa.sock [--workers N] [--cache-dir DIR]
//              [--cache-max-entries N] [--cache-max-bytes N]
//              [--max-queue N] [--max-per-tenant N] [--deadline SECONDS]
//              [--admin-tenant NAME] [--elastic] [--speculate-k N]
//
// Serves Parallelize/Simulate/Repair requests over a unix socket using
// the versioned wire format; see src/serve/server.h for the architecture
// and README.md for a client quick-start. SIGINT/SIGTERM drain and exit.
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "src/serve/server.h"

namespace {

std::atomic<bool> g_stop{false};

void HandleSignal(int) { g_stop.store(true); }

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --socket PATH [--workers N] [--cache-dir DIR] [--max-queue N]\n"
               "          [--cache-max-entries N] [--cache-max-bytes N]\n"
               "          [--max-per-tenant N] [--deadline SECONDS] [--admin-tenant NAME]\n"
               "          [--elastic] [--speculate-k N]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  alpa::serve::ServerOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--socket") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.socket_path = v;
    } else if (arg == "--workers") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.num_workers = std::atoi(v);
    } else if (arg == "--cache-dir") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.plan_cache_dir = v;
    } else if (arg == "--cache-max-entries") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.cache_max_entries = std::atoll(v);
    } else if (arg == "--cache-max-bytes") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.cache_max_bytes = std::atoll(v);
    } else if (arg == "--max-queue") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.max_queue = std::atoi(v);
    } else if (arg == "--max-per-tenant") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.max_per_tenant = std::atoi(v);
    } else if (arg == "--deadline") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.default_deadline_seconds = std::atof(v);
    } else if (arg == "--admin-tenant") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.admin_tenant = v;
    } else if (arg == "--elastic") {
      options.elastic = true;
    } else if (arg == "--speculate-k") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.speculate_k = std::atoi(v);
    } else {
      return Usage(argv[0]);
    }
  }
  if (options.socket_path.empty()) {
    return Usage(argv[0]);
  }

  alpa::serve::PlanServer server(options);
  const alpa::Status status = server.Start();
  if (!status.ok()) {
    std::fprintf(stderr, "alpa_serve: %s\n", status.ToString().c_str());
    return 1;
  }
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  std::printf("alpa_serve: listening on %s (%d workers, cache %s%s)\n",
              options.socket_path.c_str(), options.num_workers,
              options.plan_cache_dir.empty() ? "<memory-only>" : options.plan_cache_dir.c_str(),
              options.elastic ? ", elastic speculation on" : "");
  std::fflush(stdout);

  while (!g_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  server.Stop();
  const alpa::serve::ServerStats stats = server.stats();
  std::printf("alpa_serve: served=%lld rejected=%lld expired=%lld cache_hits=%lld\n",
              static_cast<long long>(stats.served), static_cast<long long>(stats.rejected_queue),
              static_cast<long long>(stats.expired),
              static_cast<long long>(stats.plan_cache_hits));
  return 0;
}
