// The multi-tenant plan server behind the alpa_serve daemon.
//
// Architecture (one process):
//
//   acceptor thread ── accept() on a unix socket, one connection thread
//     per client (cheap: clients are few, requests are the unit of work).
//   connection threads ── frame in a request, run ADMISSION, park on a
//     completion latch, frame out the response. One request outstanding
//     per connection (pipelining adds nothing against a compute-bound
//     backend).
//   admission ── global bound (max_queue) and per-tenant bound
//     (max_per_tenant). A full queue rejects IMMEDIATELY with
//     kUnavailable — bounded latency beats unbounded buffering.
//   scheduler ── per-tenant FIFO queues drained round-robin, so a tenant
//     issuing 100 requests cannot starve one issuing 1 (fairness is
//     per-tenant, not per-connection).
//   workers ── num_workers threads, each owning an InProcessPlanService.
//     A request whose deadline already passed at pickup fails with
//     kDeadlineExceeded without compiling; otherwise the REMAINING
//     deadline (minus queue time) is what scales the ILP budget.
//
// All workers share the process-wide plan cache (disk-backed when
// plan_cache_dir is set) and ILP memo, so one tenant's cold compile warms
// every tenant's future requests — the multi-tenant payoff the storm
// bench measures.
#ifndef SRC_SERVE_SERVER_H_
#define SRC_SERVE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/serve/protocol.h"
#include "src/serve/service.h"
#include "src/support/status.h"

namespace alpa {
namespace serve {

struct ServerOptions {
  std::string socket_path;  // Unix-domain socket path (required).
  int num_workers = 2;
  int max_queue = 64;       // Total queued requests across tenants.
  int max_per_tenant = 16;  // Queued requests per tenant.
  // Deadline applied to requests that do not carry their own (0 = none).
  double default_deadline_seconds = 0.0;
  // Non-empty: persist the plan cache (and the results database) here;
  // both survive restarts.
  std::string plan_cache_dir;
  // Results-database authorization: requests carrying this tenant identity
  // may list, fetch, and delete ANY tenant's records. Every other caller
  // is scoped to its own tenant. "" = no admin identity exists.
  std::string admin_tenant;
  // Disk-cache caps (LRU eviction); 0 = unbounded.
  int64_t cache_max_entries = 0;
  int64_t cache_max_bytes = 0;
  // Speculative re-planner (--elastic). After answering a compiled
  // Parallelize, the worker enumerates the speculate_k most-likely next
  // cluster configurations (each host failing, deduplicated by cluster
  // fingerprint) and presolves them into the shared plan cache before
  // taking its next job — so a failover request for the shrunk cluster is
  // a plan-cache hit by construction. Presolves ride the single-flight
  // machinery, so they never duplicate a client compile in progress.
  bool elastic = false;
  int speculate_k = 4;
  // Hazard rate used to rank candidate configurations (any positive value
  // only orders them; it does not gate speculation).
  double speculate_mtbf_seconds = 2.5 * 86400.0;
};

struct ServerStats {
  int64_t accepted = 0;          // Admitted requests.
  int64_t rejected_queue = 0;    // kUnavailable at admission.
  int64_t expired = 0;           // kDeadlineExceeded at pickup.
  int64_t served = 0;            // Responses written (any status).
  int64_t plan_cache_hits = 0;   // Of served Parallelize requests.
};

// A compile cannot do useful work in less than this; a request whose
// remaining deadline at pickup is below the floor fails fast with
// kDeadlineExceeded instead of scaling the ILP budget toward zero and
// burning the tail of the deadline on a doomed search.
inline constexpr double kMinDeadlineSeconds = 0.05;

class PlanServer {
 public:
  explicit PlanServer(ServerOptions options);
  ~PlanServer();

  PlanServer(const PlanServer&) = delete;
  PlanServer& operator=(const PlanServer&) = delete;

  // Binds the socket (removing a stale file), spawns acceptor + workers.
  // kInternal when the socket cannot be created/bound.
  Status Start();
  // Stops accepting, fails queued requests with kUnavailable, joins all
  // threads. Idempotent; the destructor calls it.
  void Stop();

  ServerStats stats() const;
  const ServerOptions& options() const { return options_; }

 private:
  struct Job {
    ServeRequest request;
    double enqueue_time = 0.0;
    double deadline_seconds = 0.0;  // Effective (request or default); 0 = none.
    // Completion latch: the connection thread waits, a worker publishes.
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    ServeResponse response;
  };

  void AcceptLoop();
  void ConnectionLoop(int fd);
  void WorkerLoop(int worker_index);
  // nullptr when the queue is full (caller responds kUnavailable).
  std::shared_ptr<Job> Admit(ServeRequest request);
  std::shared_ptr<Job> NextJob();  // Blocks; nullptr on shutdown.
  // `speculate` (non-null only under --elastic) receives the finished
  // compile request when a successful Parallelize should seed speculative
  // presolves — the worker runs those AFTER publishing the response.
  ServeResponse Execute(InProcessPlanService& service, Job& job,
                        std::optional<PlanRequest>* speculate);
  // Presolves the likely next cluster configurations of `base` into the
  // shared plan cache (through `service`, so single-flight and the results
  // db apply). Runs on the worker thread between jobs.
  void SpeculateAfter(InProcessPlanService& service, const PlanRequest& base);
  // Attributes a finished Parallelize to the speculation counters: a
  // plan-cache hit on a presolved key is a speculative hit; a cold compile
  // is a miss speculation did not cover.
  void RecordElasticParallelize(const CompileOutcome& outcome, const PlanRequest& request);
  // Stamps the elastic_* observability fields (no-op without --elastic).
  void StampElastic(ServeResponse* response);
  // True when `request` carries the configured admin identity (and one is
  // configured at all): such callers see every tenant's db records.
  bool DbAdmin(const ServeRequest& request) const {
    return !options_.admin_tenant.empty() &&
           request.options.tenant == options_.admin_tenant;
  }

  const ServerOptions options_;

  std::atomic<bool> running_{false};
  int listen_fd_ = -1;

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::map<std::string, std::deque<std::shared_ptr<Job>>> tenant_queues_;
  // Round-robin cursor: tenants are drained in rotating key order.
  std::string next_tenant_;
  int total_queued_ = 0;

  std::thread acceptor_;
  std::vector<std::thread> workers_;
  std::mutex connections_mu_;
  std::vector<std::thread> connections_;

  mutable std::mutex stats_mu_;
  ServerStats stats_;

  // --elastic bookkeeping: plan-cache keys presolved by SpeculateAfter,
  // flipped to true once a client request consumed one (still-false
  // entries are the "wasted presolves" gauge).
  mutable std::mutex elastic_mu_;
  std::map<std::pair<uint64_t, uint64_t>, bool> speculative_;
  int64_t elastic_speculations_ = 0;
  int64_t elastic_hits_ = 0;
  int64_t elastic_misses_ = 0;
};

}  // namespace serve
}  // namespace alpa

#endif  // SRC_SERVE_SERVER_H_
