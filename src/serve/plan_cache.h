// Process-wide, disk-backed cache of full compiled plans.
//
// The ILP memo (src/intra/ilp_cache) amortizes per-layer solves within a
// process; this cache sits one level up and amortizes whole Parallelize()
// calls — and, through its disk layer, lets warm hits survive process
// restarts. A server restart replays its cached plans from disk instead of
// recompiling, which is the property the serve storm bench locks in.
//
// Key. `graph_hash` covers the full wire encoding of the operator graph —
// names and layer tags included, unlike Graph::StructuralHash, so two
// models whose contractions agree but whose layer assignments differ can
// never alias. `config_hash` covers the full cluster (extent, device
// roofline, interconnect, fault scenario) plus every plain field of the
// finalized ParallelizeOptions that steers compilation, plus the active
// profile_source fingerprint. Thread counts and trace paths are excluded:
// both are guaranteed not to change the plan (PlanEquals determinism).
//
// Uncacheable compiles: options carrying closures (AlgorithmFilter,
// forced_choice, solver seeds) or a ProfileSource without a stable
// Fingerprint() cannot be hashed; ComputePlanCacheKey returns false and
// the compile simply runs.
//
// Disk layer. Each entry is one file `<graph>-<config>.plan` under the
// cache dir, holding a kCacheEntry wire envelope (key + plan). Writes go
// through a temp file + rename, so readers never observe a torn entry. A
// corrupt, truncated, or version-skewed file is treated as a miss (and
// removed); the envelope's version field makes format bumps self-cleaning.
//
// Thread safety: all methods are safe to call concurrently.
#ifndef SRC_SERVE_PLAN_CACHE_H_
#define SRC_SERVE_PLAN_CACHE_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "src/core/api.h"
#include "src/support/status.h"

namespace alpa {
namespace serve {

struct PlanCacheKey {
  uint64_t graph_hash = 0;
  uint64_t config_hash = 0;
  bool operator==(const PlanCacheKey&) const = default;
};

struct PlanCacheStats {
  int64_t memory_hits = 0;
  int64_t disk_hits = 0;
  int64_t misses = 0;
};

class PlanCache {
 public:
  // The process-wide instance (used by InProcessPlanService and the serve
  // daemon). Starts memory-only; point it at a directory to persist.
  static PlanCache& Global();

  // Enables (non-empty) or disables (empty) the disk layer. Creates the
  // directory if needed; returns kInternal when creation fails.
  Status SetDiskDir(const std::string& dir);
  std::string disk_dir() const;

  // Memory first, then disk (a disk hit is promoted to memory). False =
  // miss.
  bool Lookup(const PlanCacheKey& key, ParallelPlan* plan);
  // Inserts into memory and, when a disk dir is set, persists the entry.
  // Disk write failures are silent (the cache is an optimization).
  void Insert(const PlanCacheKey& key, const ParallelPlan& plan);

  PlanCacheStats stats() const;
  size_t size() const;  // In-memory entries.
  // Drops in-memory entries and zeroes counters; `also_disk` removes the
  // persisted files too.
  void Clear(bool also_disk = false);

 private:
  struct KeyHash {
    size_t operator()(const PlanCacheKey& key) const {
      return static_cast<size_t>(key.graph_hash ^ (key.config_hash * 0x9e3779b97f4a7c15ull));
    }
  };

  std::string EntryPath(const PlanCacheKey& key) const;

  mutable std::mutex mu_;
  std::string disk_dir_;
  std::unordered_map<PlanCacheKey, ParallelPlan, KeyHash> entries_;
  PlanCacheStats stats_;
};

// Builds the cache key for compiling `graph` on `cluster` under `options`
// (which must already be Finalize()d so the mirror fields are resolved).
// Returns false when the compile is ineligible for caching: closures
// (filter, forced choices, solver seeds) or a profile_source with no
// stable fingerprint cannot be hashed.
bool ComputePlanCacheKey(const Graph& graph, const ClusterSpec& cluster,
                         const ParallelizeOptions& options, PlanCacheKey* key);

}  // namespace serve
}  // namespace alpa

#endif  // SRC_SERVE_PLAN_CACHE_H_
