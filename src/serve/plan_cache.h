// Process-wide, disk-backed cache of full compiled plans.
//
// The ILP memo (src/intra/ilp_cache) amortizes per-layer solves within a
// process; this cache sits one level up and amortizes whole Parallelize()
// calls — and, through its disk layer, lets warm hits survive process
// restarts. A server restart replays its cached plans from disk instead of
// recompiling, which is the property the serve storm bench locks in.
//
// Key. `graph_hash` covers the full wire encoding of the operator graph —
// names and layer tags included, unlike Graph::StructuralHash, so two
// models whose contractions agree but whose layer assignments differ can
// never alias. `config_hash` covers the full cluster (extent, device
// roofline, interconnect, fault scenario) plus every plain field of the
// finalized ParallelizeOptions that steers compilation, plus the active
// profile_source fingerprint. Thread counts and trace paths are excluded:
// both are guaranteed not to change the plan (PlanEquals determinism).
//
// Uncacheable compiles: options carrying closures (AlgorithmFilter,
// forced_choice, solver seeds) or a ProfileSource without a stable
// Fingerprint() cannot be hashed; ComputePlanCacheKey returns false and
// the compile simply runs.
//
// Single-flight. N concurrent cold requests for one key must compile once:
// JoinFlight() atomically either hits the cache, joins an in-flight
// compile (blocking until the leader publishes), or elects the caller
// leader. The leader compiles and calls FinishFlight(), which inserts on
// success and wakes every follower with the shared result (the leader's
// error propagates to followers on failure). This also serializes the
// disk write for a key, eliminating concurrent tmp+rename races.
//
// Disk layer. Each entry is one file `<graph>-<config>.plan` under the
// cache dir, holding a kCacheEntry wire envelope (key + plan). Writes go
// through a uniquely named temp file + rename, so readers never observe a
// torn entry even across processes. A corrupt, truncated, or
// version-skewed file is treated as a miss (and removed); the envelope's
// version field makes format bumps self-cleaning, and SetDiskDir sweeps
// entries of other wire versions eagerly on open.
//
// Eviction. SetLimits() bounds the disk store by entry count and/or total
// bytes; when an insert overflows a cap, the least-recently-used entries
// (by a logical access sequence — bumped on disk hit and insert, so it is
// deterministic, unlike wall-clock atimes) are unlinked oldest-first, and
// their memory promotions dropped with them. 0 = unbounded.
//
// Thread safety: all methods are safe to call concurrently.
#ifndef SRC_SERVE_PLAN_CACHE_H_
#define SRC_SERVE_PLAN_CACHE_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "src/core/api.h"
#include "src/support/status.h"

namespace alpa {
namespace serve {

struct PlanCacheKey {
  uint64_t graph_hash = 0;
  uint64_t config_hash = 0;
  bool operator==(const PlanCacheKey&) const = default;
};

struct PlanCacheStats {
  int64_t memory_hits = 0;
  int64_t disk_hits = 0;
  int64_t misses = 0;
  // Disk entries evicted by the size/entry caps.
  int64_t evictions = 0;
  // Disk entries of another wire version unlinked by the SetDiskDir sweep.
  int64_t version_swept = 0;
  // Single-flight traffic: compiles elected (leaders) vs requests that
  // blocked on an in-flight compile instead of duplicating it (followers).
  int64_t flight_leaders = 0;
  int64_t flight_followers = 0;
};

// Caps on the persisted store; 0 = unbounded. Enforced on insert with
// LRU (logical access order) eviction, and on SetDiskDir after the sweep.
struct PlanCacheLimits {
  int64_t max_disk_entries = 0;
  int64_t max_disk_bytes = 0;
};

// How JoinFlight resolved a request.
enum class FlightOutcome {
  kHit,     // *plan holds the result (cache hit, or a leader's publish).
  kLeader,  // Caller must compile and call FinishFlight with the result.
  kFailed,  // The in-flight leader failed; *status holds its error.
};

class PlanCache {
 public:
  // The process-wide instance (used by InProcessPlanService and the serve
  // daemon). Starts memory-only; point it at a directory to persist.
  static PlanCache& Global();

  // Enables (non-empty) or disables (empty) the disk layer. Creates the
  // directory if needed; returns kInternal when creation fails. Sweeps
  // version-skewed entries and rebuilds the disk index (then enforces the
  // configured limits).
  Status SetDiskDir(const std::string& dir);
  std::string disk_dir() const;

  // Replaces the disk-store caps and enforces them immediately.
  void SetLimits(const PlanCacheLimits& limits);
  PlanCacheLimits limits() const;

  // Memory first, then disk (a disk hit is promoted to memory and bumps
  // the entry's logical access time). False = miss. A corrupt disk entry
  // is unlinked and drops out of the size accounting right away.
  bool Lookup(const PlanCacheKey& key, ParallelPlan* plan);
  // Inserts into memory and, when a disk dir is set, persists the entry,
  // then enforces the limits. Disk write failures are silent (the cache
  // is an optimization).
  void Insert(const PlanCacheKey& key, const ParallelPlan& plan);

  // Single-flight entry point: Lookup, then atomically join or lead the
  // in-flight compile for `key`. kHit fills *plan; kFailed fills *status;
  // kLeader obliges the caller to call FinishFlight(key, ...) exactly once
  // (on every path, or followers block forever). A follower waits at most
  // `deadline_seconds` (0 = forever) for the leader: on expiry it returns
  // kFailed with kDeadlineExceeded, leaving the flight intact for the
  // followers that can still afford to wait.
  FlightOutcome JoinFlight(const PlanCacheKey& key, ParallelPlan* plan, Status* status,
                           double deadline_seconds = 0.0);
  // Publishes the leader's result: Insert + wake followers on success,
  // propagate the error to followers on failure.
  void FinishFlight(const PlanCacheKey& key, const StatusOr<ParallelPlan>& result);

  PlanCacheStats stats() const;
  size_t size() const;       // In-memory entries.
  size_t disk_size() const;  // Indexed disk entries.
  int64_t disk_bytes() const;
  // Drops in-memory entries and zeroes counters; `also_disk` removes the
  // persisted files too.
  void Clear(bool also_disk = false);

 private:
  struct KeyHash {
    size_t operator()(const PlanCacheKey& key) const {
      return static_cast<size_t>(key.graph_hash ^ (key.config_hash * 0x9e3779b97f4a7c15ull));
    }
  };

  // One persisted entry's accounting.
  struct DiskEntry {
    int64_t bytes = 0;
    uint64_t access_seq = 0;  // Logical LRU clock, not wall time.
  };

  // One in-flight compile; followers block on cv until the leader
  // publishes. Heap-allocated and shared so it outlives its map slot.
  struct Flight {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    bool ok = false;
    ParallelPlan plan;
    Status status = Status::Ok();
  };

  std::string EntryPath(const PlanCacheKey& key) const;
  // Unlinks LRU disk entries until the limits hold. Requires mu_.
  void EnforceLimitsLocked();
  // Removes `key`'s disk entry (file + index) and its memory promotion.
  // Requires mu_.
  void EvictLocked(const PlanCacheKey& key);
  void UpdateMetricsLocked();

  mutable std::mutex mu_;
  std::string disk_dir_;
  PlanCacheLimits limits_;
  std::unordered_map<PlanCacheKey, ParallelPlan, KeyHash> entries_;
  std::unordered_map<PlanCacheKey, DiskEntry, KeyHash> disk_index_;
  std::unordered_map<PlanCacheKey, std::shared_ptr<Flight>, KeyHash> flights_;
  int64_t disk_bytes_ = 0;
  uint64_t access_counter_ = 0;
  PlanCacheStats stats_;
};

// Builds the cache key for compiling `graph` on `cluster` under `options`
// (which must already be Finalize()d so the mirror fields are resolved).
// Returns false when the compile is ineligible for caching: closures
// (filter, forced choices, solver seeds) or a profile_source with no
// stable fingerprint cannot be hashed.
bool ComputePlanCacheKey(const Graph& graph, const ClusterSpec& cluster,
                         const ParallelizeOptions& options, PlanCacheKey* key);

}  // namespace serve
}  // namespace alpa

#endif  // SRC_SERVE_PLAN_CACHE_H_
