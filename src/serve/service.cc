#include "src/serve/service.h"

#include <algorithm>
#include <chrono>

#include "src/serve/plan_cache.h"
#include "src/serve/plan_db.h"
#include "src/serve/wire.h"
#include "src/support/strings.h"
#include "src/support/trace.h"

namespace alpa {
namespace serve {

namespace {

double NowSeconds() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

StatusOr<ParallelizeOptions> PlanRequestOptions::ToParallelizeOptions() const {
  if (num_microbatches < 0 || target_layers < 0 || max_search_nodes < 0 ||
      deadline_seconds < 0 || max_elimination_table < -1) {
    return Status::InvalidArgument("plan request: negative option field");
  }
  ParallelizeOptions options;
  options.schedule = schedule;
  options.enable_interop = enable_interop;
  options.enable_intraop = enable_intraop;
  options.reshard = reshard;
  options.compile_threads = compile_threads;
  options.trace_path = trace_path;
  if (num_microbatches > 0) {
    options.inter.num_microbatches = num_microbatches;
  }
  if (target_layers > 0) {
    options.inter.target_layers = target_layers;
  }
  options.inter.equal_layer_stages = equal_layer_stages;
  options.inter.profile_source = profile_source;
  int64_t budget = max_search_nodes > 0
                       ? max_search_nodes
                       : options.inter.profiler.intra.solver.max_search_nodes;
  if (deadline_seconds > 0) {
    // Cap the per-solve budget so the whole compile has a chance of
    // landing inside the deadline. Never below a floor that still lets
    // the incumbent-seeding path return a feasible plan.
    const int64_t deadline_budget =
        std::max<int64_t>(1000, static_cast<int64_t>(deadline_seconds * kSearchNodesPerSecond));
    budget = std::min(budget, deadline_budget);
    // Deadline-capped budgets are exactly where searches abort; the
    // portfolio engine spends part of the budget on metaheuristics so an
    // abort returns their best incumbent plus a proven gap instead of a
    // budget-truncated search result.
    options.inter.profiler.intra.solver.engine = IlpEngine::kPortfolio;
  }
  options.inter.profiler.intra.solver.max_search_nodes = budget;
  if (max_elimination_table >= 0) {
    options.inter.profiler.intra.solver.max_elimination_table = max_elimination_table;
  }
  ALPA_RETURN_IF_ERROR(options.Finalize());
  return options;
}

StatusOr<ExecutionStats> PlanService::CompileAndSimulate(const PlanRequest& request,
                                                         ParallelPlan* plan_out) {
  auto plan = Parallelize(request);
  if (!plan.ok()) {
    return plan.status();
  }
  if (plan_out != nullptr) {
    *plan_out = plan.value();
  }
  return Simulate(request, plan.value());
}

StatusOr<ParallelPlan> InProcessPlanService::Parallelize(const PlanRequest& request) {
  const double start = NowSeconds();
  last_outcome_ = CompileOutcome();

  auto options = request.options.ToParallelizeOptions();
  if (!options.ok()) {
    return options.status();
  }

  static Metric* compiles_metric = Metrics::Get("serve/compiles");

  PlanCacheKey key;
  const bool cacheable =
      request.options.use_plan_cache &&
      ComputePlanCacheKey(request.graph, request.cluster, options.value(), &key);
  last_outcome_.plan_cache_eligible = cacheable;
  if (cacheable) {
    // Single-flight: hit the cache, ride a concurrent compile of the same
    // key, or get elected leader. Only the leader runs the compiler. A
    // follower waits at most its own deadline: riding a leader whose
    // compile outlives it would return far past the deadline instead of
    // failing fast.
    ParallelPlan cached;
    Status flight_status = Status::Ok();
    const FlightOutcome outcome = PlanCache::Global().JoinFlight(
        key, &cached, &flight_status, request.options.deadline_seconds);
    if (outcome == FlightOutcome::kHit) {
      last_outcome_.plan_cache_hit = true;
      last_outcome_.seconds = NowSeconds() - start;
      return cached;
    }
    if (outcome == FlightOutcome::kFailed) {
      last_outcome_.flight_follower = true;
      last_outcome_.seconds = NowSeconds() - start;
      return flight_status;
    }
  }

  // Parallelize re-tags layers in place; the service keeps the caller's
  // request immutable, so compile a private copy.
  last_outcome_.compiled = true;
  compiles_metric->Add(1);
  Graph graph = request.graph;
  auto plan = alpa::Parallelize(graph, request.cluster, options.value());
  last_outcome_.seconds = NowSeconds() - start;
  if (cacheable) {
    // Publish (insert + wake followers) on success, propagate the error
    // to followers on failure.
    PlanCache::Global().FinishFlight(key, plan);
  }
  if (plan.ok() && cacheable) {
    // Results-database record: one per real compile, keyed like the cache.
    const CompileStats& stats = plan.value().compile_stats;
    PlanRecord record;
    record.key = key;
    record.tenant = request.options.tenant;
    record.profile_fingerprint = request.options.profile_source != nullptr
                                     ? request.options.profile_source->Fingerprint()
                                     : 0;
    record.num_ops = static_cast<int32_t>(request.graph.ops().size());
    record.num_hosts = request.cluster.num_hosts;
    record.devices_per_host = request.cluster.devices_per_host;
    record.num_stages = static_cast<int32_t>(plan.value().pipeline.stages.size());
    record.compile_seconds = last_outcome_.seconds;
    record.objective = plan.value().pipeline.dp_latency;
    record.optimality_gap = stats.max_optimality_gap;
    record.ilp_aborts = stats.ilp_aborts;
    record.plan_bytes = static_cast<int64_t>(SerializePlan(plan.value()).size());
    PlanDb::Global().Put(record);
  }
  return plan;
}

StatusOr<ExecutionStats> InProcessPlanService::Simulate(const PlanRequest& request,
                                                        const ParallelPlan& plan) {
  return alpa::Simulate(plan, request.graph, request.cluster);
}

StatusOr<RepairResult> InProcessPlanService::Repair(const PlanRequest& request,
                                                    const RepairOptions& repair) {
  auto options = request.options.ToParallelizeOptions();
  if (!options.ok()) {
    return options.status();
  }
  Graph graph = request.graph;
  return alpa::RepairPlan(graph, request.cluster, options.value(), repair);
}

}  // namespace serve
}  // namespace alpa
