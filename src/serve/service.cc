#include "src/serve/service.h"

#include <algorithm>
#include <chrono>

#include "src/serve/plan_cache.h"
#include "src/support/strings.h"
#include "src/support/trace.h"

namespace alpa {
namespace serve {

namespace {

double NowSeconds() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

StatusOr<ParallelizeOptions> PlanRequestOptions::ToParallelizeOptions() const {
  if (num_microbatches < 0 || target_layers < 0 || max_search_nodes < 0 ||
      deadline_seconds < 0) {
    return Status::InvalidArgument("plan request: negative option field");
  }
  ParallelizeOptions options;
  options.schedule = schedule;
  options.enable_interop = enable_interop;
  options.enable_intraop = enable_intraop;
  options.reshard = reshard;
  options.compile_threads = compile_threads;
  options.trace_path = trace_path;
  if (num_microbatches > 0) {
    options.inter.num_microbatches = num_microbatches;
  }
  if (target_layers > 0) {
    options.inter.target_layers = target_layers;
  }
  options.inter.equal_layer_stages = equal_layer_stages;
  options.inter.profile_source = profile_source;
  int64_t budget = max_search_nodes > 0
                       ? max_search_nodes
                       : options.inter.profiler.intra.solver.max_search_nodes;
  if (deadline_seconds > 0) {
    // Cap the per-solve budget so the whole compile has a chance of
    // landing inside the deadline. Never below a floor that still lets
    // the incumbent-seeding path return a feasible plan.
    const int64_t deadline_budget =
        std::max<int64_t>(1000, static_cast<int64_t>(deadline_seconds * kSearchNodesPerSecond));
    budget = std::min(budget, deadline_budget);
  }
  options.inter.profiler.intra.solver.max_search_nodes = budget;
  ALPA_RETURN_IF_ERROR(options.Finalize());
  return options;
}

StatusOr<ExecutionStats> PlanService::CompileAndSimulate(const PlanRequest& request,
                                                         ParallelPlan* plan_out) {
  auto plan = Parallelize(request);
  if (!plan.ok()) {
    return plan.status();
  }
  if (plan_out != nullptr) {
    *plan_out = plan.value();
  }
  return Simulate(request, plan.value());
}

StatusOr<ParallelPlan> InProcessPlanService::Parallelize(const PlanRequest& request) {
  const double start = NowSeconds();
  last_outcome_ = CompileOutcome();

  auto options = request.options.ToParallelizeOptions();
  if (!options.ok()) {
    return options.status();
  }

  PlanCacheKey key;
  const bool cacheable =
      request.options.use_plan_cache &&
      ComputePlanCacheKey(request.graph, request.cluster, options.value(), &key);
  last_outcome_.plan_cache_eligible = cacheable;
  if (cacheable) {
    ParallelPlan cached;
    if (PlanCache::Global().Lookup(key, &cached)) {
      last_outcome_.plan_cache_hit = true;
      last_outcome_.seconds = NowSeconds() - start;
      return cached;
    }
  }

  // Parallelize re-tags layers in place; the service keeps the caller's
  // request immutable, so compile a private copy.
  Graph graph = request.graph;
  auto plan = alpa::Parallelize(graph, request.cluster, options.value());
  if (plan.ok() && cacheable) {
    PlanCache::Global().Insert(key, plan.value());
  }
  last_outcome_.seconds = NowSeconds() - start;
  return plan;
}

StatusOr<ExecutionStats> InProcessPlanService::Simulate(const PlanRequest& request,
                                                        const ParallelPlan& plan) {
  return alpa::Simulate(plan, request.graph, request.cluster);
}

StatusOr<RepairResult> InProcessPlanService::Repair(const PlanRequest& request,
                                                    const RepairOptions& repair) {
  auto options = request.options.ToParallelizeOptions();
  if (!options.ok()) {
    return options.status();
  }
  Graph graph = request.graph;
  return alpa::RepairPlan(graph, request.cluster, options.value(), repair);
}

}  // namespace serve
}  // namespace alpa
