// Request/response protocol of the plan server.
//
// One request = one kRequest wire envelope; one response = one kResponse
// envelope. On the socket each envelope travels as a frame:
//
//   u32 LE frame length N, then the N-byte envelope.
//
// The envelope already carries magic/version/kind/checksum, so the frame
// header is pure length delimitation. Frames are capped (kMaxFrameBytes);
// an oversized or malformed frame kills only that connection, never the
// server.
//
// The request payload carries the serializable subset of
// PlanRequestOptions plus the method's inputs (graph + cluster always;
// a plan for kSimulate; RepairOptions for kRepair). The response carries
// the structured Status (code + message) and the method's result, plus
// server-side observability fields (queue/compile seconds, cache hit) the
// storm bench reports.
#ifndef SRC_SERVE_PROTOCOL_H_
#define SRC_SERVE_PROTOCOL_H_

#include <cstdint>
#include <string>

#include <vector>

#include "src/serve/plan_db.h"
#include "src/serve/service.h"
#include "src/serve/wire.h"
#include "src/support/status.h"

namespace alpa {
namespace serve {

inline constexpr uint32_t kMaxFrameBytes = 64u << 20;  // 64 MiB.

enum class Method : uint8_t {
  kPing = 1,         // Liveness probe; empty result.
  kParallelize = 2,  // -> plan.
  kSimulate = 3,     // plan required -> stats.
  kRepair = 4,       // repair options required -> repair result.
  kDbList = 5,       // db_query -> records.
  kDbGet = 6,        // db_key -> records (one entry).
  kDbDelete = 7,     // db_key -> empty (kInvalidArgument when absent).
  kElasticStats = 8, // -> speculative re-planner counters (--elastic only).
};

struct ServeRequest {
  Method method = Method::kPing;
  PlanRequestOptions options;  // Serializable fields only.
  Graph graph;
  ClusterSpec cluster;
  bool has_plan = false;  // kSimulate.
  ParallelPlan plan;
  RepairOptions repair;   // kRepair.
  PlanDbQuery db_query;   // kDbList.
  PlanCacheKey db_key;    // kDbGet / kDbDelete.
};

struct ServeResponse {
  // Structured status (StatusCode as i32 + message).
  int32_t code = 0;
  std::string message;
  bool has_plan = false;
  ParallelPlan plan;
  bool has_stats = false;
  ExecutionStats stats;
  bool has_repair = false;
  RepairResult repair;
  // Results-database records (kDbList / kDbGet).
  std::vector<PlanRecord> records;
  // Server-side observability.
  double queue_seconds = 0.0;    // Admission -> worker pickup.
  double compile_seconds = 0.0;  // Worker compute time.
  bool plan_cache_hit = false;
  // Anytime quality of a returned plan: worst relative ILP gap among the
  // chosen stages' solves (0 = every solve proven optimal). Mirrors
  // plan.compile_stats.max_optimality_gap so dashboards need not decode
  // the plan.
  double optimality_gap = 0.0;
  // Speculative re-planner counters (kElasticStats, and stamped on every
  // response when the server runs --elastic so clients can watch the
  // hit-rate evolve without extra round trips).
  bool elastic_enabled = false;
  int64_t elastic_speculations = 0;
  int64_t elastic_hits = 0;
  int64_t elastic_misses = 0;
  int64_t elastic_wasted = 0;

  Status ToStatus() const;
  static ServeResponse FromStatus(const Status& status);
};

// Envelope-level (WirePack/WireUnpack included).
std::string SerializeRequest(const ServeRequest& request);
StatusOr<ServeRequest> DeserializeRequest(std::string_view blob);
std::string SerializeResponse(const ServeResponse& response);
StatusOr<ServeResponse> DeserializeResponse(std::string_view blob);

// Blocking frame IO on a connected socket/pipe fd. ReadFrame returns
// kUnavailable on clean EOF before any byte, kInternal on IO errors or
// timeouts, kInvalidArgument on an oversized frame. WriteFrame retries
// short writes.
Status ReadFrame(int fd, std::string* blob);
Status WriteFrame(int fd, std::string_view blob);

}  // namespace serve
}  // namespace alpa

#endif  // SRC_SERVE_PROTOCOL_H_
