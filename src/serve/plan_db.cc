#include "src/serve/plan_db.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "src/support/strings.h"

namespace alpa {
namespace serve {

namespace {

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return static_cast<bool>(in);
}

// Unique temp + rename, same contract as the plan cache's writer: safe
// against concurrent writers sharing one directory.
bool WriteFileAtomic(const std::string& path, const std::string& data) {
  static std::atomic<uint64_t> counter{0};
  const std::string tmp =
      StrFormat("%s.tmp.%d.%llu", path.c_str(), static_cast<int>(::getpid()),
                static_cast<unsigned long long>(counter.fetch_add(1)));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return false;
    }
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
    if (!out) {
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace

void EncodePlanRecord(const PlanRecord& record, WireWriter* w) {
  w->U64(record.key.graph_hash);
  w->U64(record.key.config_hash);
  w->Str(record.tenant);
  w->U64(record.profile_fingerprint);
  w->I32(record.num_ops);
  w->I32(record.num_hosts);
  w->I32(record.devices_per_host);
  w->I32(record.num_stages);
  w->F64(record.compile_seconds);
  w->F64(record.objective);
  w->F64(record.optimality_gap);
  w->I64(record.ilp_aborts);
  w->I64(record.plan_bytes);
}

Status DecodePlanRecord(WireReader* r, PlanRecord* out) {
  out->key.graph_hash = r->U64();
  out->key.config_hash = r->U64();
  out->tenant = r->Str();
  out->profile_fingerprint = r->U64();
  out->num_ops = r->I32();
  out->num_hosts = r->I32();
  out->devices_per_host = r->I32();
  out->num_stages = r->I32();
  out->compile_seconds = r->F64();
  out->objective = r->F64();
  out->optimality_gap = r->F64();
  out->ilp_aborts = r->I64();
  out->plan_bytes = r->I64();
  if (!r->ok()) {
    return r->status();
  }
  if (out->num_ops < 0 || out->num_hosts < 0 || out->devices_per_host < 0 ||
      out->num_stages < 0 || out->plan_bytes < 0) {
    return Status::InvalidArgument("wire: negative extent in plan record");
  }
  return Status::Ok();
}

PlanDb& PlanDb::Global() {
  static PlanDb* db = new PlanDb();
  return *db;
}

Status PlanDb::SetDir(const std::string& dir) {
  if (!dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
      return Status::Internal(
          StrFormat("plan db: cannot create %s: %s", dir.c_str(), ec.message().c_str()));
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  dir_ = dir;
  records_.clear();
  if (dir.empty()) {
    return Status::Ok();
  }
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (entry.path().extension() != ".rec") {
      continue;
    }
    const std::string path = entry.path().string();
    std::string blob;
    std::string_view payload;
    PlanRecord record;
    bool valid = false;
    if (ReadFile(path, &blob) &&
        WireUnpack(blob, WireKind::kPlanRecord, &payload).ok()) {
      WireReader r(payload);
      valid = DecodePlanRecord(&r, &record).ok() && r.remaining() == 0;
    }
    if (valid) {
      records_[record.key] = std::move(record);
    } else {
      // Corrupt or version-skewed: self-clean, same policy as the cache.
      std::remove(path.c_str());
    }
  }
  return Status::Ok();
}

std::string PlanDb::dir() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dir_;
}

std::string PlanDb::RecordPath(const PlanCacheKey& key) const {
  return StrFormat("%s/%016llx-%016llx.rec", dir_.c_str(),
                   static_cast<unsigned long long>(key.graph_hash),
                   static_cast<unsigned long long>(key.config_hash));
}

void PlanDb::Put(const PlanRecord& record) {
  std::string path;
  {
    std::lock_guard<std::mutex> lock(mu_);
    records_[record.key] = record;
    if (dir_.empty()) {
      return;
    }
    path = RecordPath(record.key);
  }
  WireWriter w;
  EncodePlanRecord(record, &w);
  WriteFileAtomic(path, WirePack(WireKind::kPlanRecord, w.Take()));
}

std::vector<PlanRecord> PlanDb::List(const PlanDbQuery& query) const {
  std::vector<PlanRecord> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [key, record] : records_) {
    if (!query.tenant.empty() && record.tenant != query.tenant) {
      continue;
    }
    out.push_back(record);
    if (query.limit > 0 && static_cast<int32_t>(out.size()) >= query.limit) {
      break;
    }
  }
  return out;
}

StatusOr<PlanRecord> PlanDb::Get(const PlanCacheKey& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = records_.find(key);
  if (it == records_.end()) {
    return Status::InvalidArgument(
        StrFormat("plan db: no record for %016llx-%016llx",
                  static_cast<unsigned long long>(key.graph_hash),
                  static_cast<unsigned long long>(key.config_hash)));
  }
  return it->second;
}

bool PlanDb::Delete(const PlanCacheKey& key) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = records_.find(key);
  if (it == records_.end()) {
    return false;
  }
  if (!dir_.empty()) {
    std::remove(RecordPath(key).c_str());
  }
  records_.erase(it);
  return true;
}

size_t PlanDb::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_.size();
}

void PlanDb::Clear(bool also_disk) {
  std::lock_guard<std::mutex> lock(mu_);
  if (also_disk && !dir_.empty()) {
    for (const auto& [key, record] : records_) {
      std::remove(RecordPath(key).c_str());
    }
  }
  records_.clear();
}

}  // namespace serve
}  // namespace alpa
