#include "src/serve/plan_cache.h"

#include <cerrno>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "src/serve/wire.h"
#include "src/support/hashing.h"
#include "src/support/strings.h"
#include "src/support/trace.h"

namespace alpa {
namespace serve {

namespace {

// Reads a whole file; false on any error.
bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return static_cast<bool>(in);
}

// Writes a whole file atomically (temp + rename); false on any error.
bool WriteFileAtomic(const std::string& path, const std::string& data) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return false;
    }
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
    if (!out) {
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace

PlanCache& PlanCache::Global() {
  static PlanCache* cache = new PlanCache();
  return *cache;
}

Status PlanCache::SetDiskDir(const std::string& dir) {
  if (!dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
      return Status::Internal(
          StrFormat("plan cache: cannot create %s: %s", dir.c_str(), ec.message().c_str()));
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  disk_dir_ = dir;
  return Status::Ok();
}

std::string PlanCache::disk_dir() const {
  std::lock_guard<std::mutex> lock(mu_);
  return disk_dir_;
}

std::string PlanCache::EntryPath(const PlanCacheKey& key) const {
  return StrFormat("%s/%016llx-%016llx.plan", disk_dir_.c_str(),
                   static_cast<unsigned long long>(key.graph_hash),
                   static_cast<unsigned long long>(key.config_hash));
}

bool PlanCache::Lookup(const PlanCacheKey& key, ParallelPlan* plan) {
  static Metric* memory_hits = Metrics::Get("plan_cache/memory_hits");
  static Metric* disk_hits = Metrics::Get("plan_cache/disk_hits");
  static Metric* misses = Metrics::Get("plan_cache/misses");

  std::string path;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      *plan = it->second;
      ++stats_.memory_hits;
      memory_hits->Add(1);
      return true;
    }
    if (disk_dir_.empty()) {
      ++stats_.misses;
      misses->Add(1);
      return false;
    }
    path = EntryPath(key);
  }

  // Disk probe outside the lock: file IO and decoding are slow.
  std::string blob;
  bool hit = false;
  if (ReadFile(path, &blob)) {
    std::string_view payload;
    if (WireUnpack(blob, WireKind::kCacheEntry, &payload).ok()) {
      WireReader r(payload);
      PlanCacheKey stored;
      stored.graph_hash = r.U64();
      stored.config_hash = r.U64();
      ParallelPlan decoded;
      if (r.ok() && stored == key && DecodePlan(&r, &decoded).ok() && r.remaining() == 0) {
        *plan = std::move(decoded);
        hit = true;
      }
    }
    if (!hit) {
      // Corrupt or stale-format entry: self-clean so it is not re-probed.
      std::remove(path.c_str());
    }
  }

  std::lock_guard<std::mutex> lock(mu_);
  if (hit) {
    entries_.emplace(key, *plan);  // Promote; first writer wins.
    ++stats_.disk_hits;
    disk_hits->Add(1);
  } else {
    ++stats_.misses;
    misses->Add(1);
  }
  return hit;
}

void PlanCache::Insert(const PlanCacheKey& key, const ParallelPlan& plan) {
  std::string path;
  {
    std::lock_guard<std::mutex> lock(mu_);
    entries_.emplace(key, plan);
    static Metric* size_metric = Metrics::Get("plan_cache/entries");
    size_metric->Set(static_cast<int64_t>(entries_.size()));
    if (disk_dir_.empty()) {
      return;
    }
    path = EntryPath(key);
  }
  WireWriter w;
  w.U64(key.graph_hash);
  w.U64(key.config_hash);
  EncodePlan(plan, &w);
  WriteFileAtomic(path, WirePack(WireKind::kCacheEntry, w.Take()));
}

PlanCacheStats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

void PlanCache::Clear(bool also_disk) {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  stats_ = PlanCacheStats();
  if (also_disk && !disk_dir_.empty()) {
    std::error_code ec;
    for (const auto& entry : std::filesystem::directory_iterator(disk_dir_, ec)) {
      if (entry.path().extension() == ".plan") {
        std::filesystem::remove(entry.path(), ec);
      }
    }
  }
}

bool ComputePlanCacheKey(const Graph& graph, const ClusterSpec& cluster,
                         const ParallelizeOptions& options, PlanCacheKey* key) {
  const IntraOpOptions& intra = options.inter.profiler.intra;
  // Closures and explicit overrides cannot be folded into a hash.
  if (intra.filter != nullptr || !intra.forced_choice.empty() || !intra.solver.seeds.empty()) {
    return false;
  }
  // A profile source without a stable fingerprint makes the compile
  // irreproducible from hashable inputs — the bug this key exists to
  // prevent is a measured-profile recompile silently aliasing the
  // analytical entry.
  const uint64_t profile_fingerprint =
      options.inter.profile_source != nullptr ? options.inter.profile_source->Fingerprint() : 0;
  if (options.inter.profile_source != nullptr && profile_fingerprint == 0) {
    return false;
  }

  // Graph: hash the wire encoding — full field coverage (names and layer
  // tags included) by construction, unlike StructuralHash.
  {
    WireWriter w;
    EncodeGraph(graph, &w);
    Fnv1a64 hasher;
    hasher.Bytes(w.data().data(), w.size());
    key->graph_hash = hasher.hash();
  }

  // Config: full cluster (extent + faults, via the wire encoding) and
  // every plain option field that steers compilation. compile_threads and
  // trace_path are deliberately excluded: both are guaranteed
  // plan-invariant (PlanEquals determinism, PR 1).
  Fnv1a64 hasher;
  {
    WireWriter w;
    EncodeClusterSpec(cluster, &w);
    hasher.Bytes(w.data().data(), w.size());
  }
  hasher.I32(static_cast<int32_t>(options.schedule));
  hasher.Bool(options.enable_interop);
  hasher.Bool(options.enable_intraop);
  hasher.I32(static_cast<int32_t>(options.reshard));
  const InterOpOptions& inter = options.inter;
  hasher.I32(inter.num_microbatches);
  hasher.I32(inter.target_layers);
  hasher.Double(inter.clustering_delta);
  hasher.I32(static_cast<int32_t>(inter.clustering));
  hasher.Bool(inter.equal_layer_stages);
  hasher.Double(inter.dp.epsilon);
  hasher.I32(inter.dp.max_stages);
  hasher.Double(inter.dp.device_memory_override);
  hasher.I32(inter.dp.max_tmax_candidates);
  hasher.I32(static_cast<int32_t>(inter.submesh_shapes.size()));
  for (const SubmeshShape& shape : inter.submesh_shapes) {
    hasher.I32(shape.num_hosts).I32(shape.devices_per_host);
  }
  hasher.Bool(inter.profiler.exact_intervals);
  hasher.Bool(inter.profiler.memory_modes);
  hasher.Bool(inter.profiler.dedup_identical_layers);
  hasher.Bool(inter.profiler.use_ilp_cache);
  hasher.I32(static_cast<int32_t>(intra.precision));
  hasher.Bool(intra.rematerialize);
  hasher.Double(intra.activation_fraction);
  hasher.I32(intra.num_microbatches);
  hasher.Bool(intra.seed_with_plan_families);
  hasher.I64(intra.solver.max_search_nodes);
  hasher.I64(intra.solver.max_elimination_table);
  hasher.I32(intra.solver.beam_width);
  hasher.I32(static_cast<int32_t>(intra.solver.engine));
  hasher.Bool(intra.solver.use_core_memo);
  hasher.U64(profile_fingerprint);
  key->config_hash = hasher.hash();
  return true;
}

}  // namespace serve
}  // namespace alpa
