#include "src/serve/plan_cache.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "src/serve/wire.h"
#include "src/support/hashing.h"
#include "src/support/strings.h"
#include "src/support/trace.h"

namespace alpa {
namespace serve {

namespace {

// Reads a whole file; false on any error.
bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return static_cast<bool>(in);
}

// Writes a whole file atomically. The temp name carries the pid and a
// process-local counter so concurrent writers — even across daemon
// processes sharing one cache dir — never collide on the staging file;
// rename() then makes the last completed write win atomically.
bool WriteFileAtomic(const std::string& path, const std::string& data) {
  static std::atomic<uint64_t> counter{0};
  const std::string tmp =
      StrFormat("%s.tmp.%d.%llu", path.c_str(), static_cast<int>(::getpid()),
                static_cast<unsigned long long>(counter.fetch_add(1)));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return false;
    }
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
    if (!out) {
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

// Checks only the envelope header (magic + version) — enough to decide
// whether a persisted entry belongs to this wire format without decoding
// the payload.
bool HeaderVersionMatches(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  unsigned char header[6] = {0};
  if (!in.read(reinterpret_cast<char*>(header), sizeof(header))) {
    return false;
  }
  const uint32_t magic = static_cast<uint32_t>(header[0]) |
                         (static_cast<uint32_t>(header[1]) << 8) |
                         (static_cast<uint32_t>(header[2]) << 16) |
                         (static_cast<uint32_t>(header[3]) << 24);
  const uint16_t version =
      static_cast<uint16_t>(header[4]) | (static_cast<uint16_t>(header[5]) << 8);
  return magic == kWireMagic && version == kWireVersion;
}

// Recovers the cache key from an entry's file name; false when the name
// is not `<16 hex>-<16 hex>.plan`.
bool ParseEntryName(const std::string& name, PlanCacheKey* key) {
  unsigned long long graph = 0;
  unsigned long long config = 0;
  int consumed = 0;
  if (std::sscanf(name.c_str(), "%16llx-%16llx.plan%n", &graph, &config, &consumed) != 2 ||
      consumed != static_cast<int>(name.size())) {
    return false;
  }
  key->graph_hash = graph;
  key->config_hash = config;
  return true;
}

}  // namespace

PlanCache& PlanCache::Global() {
  static PlanCache* cache = new PlanCache();
  return *cache;
}

Status PlanCache::SetDiskDir(const std::string& dir) {
  if (!dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
      return Status::Internal(
          StrFormat("plan cache: cannot create %s: %s", dir.c_str(), ec.message().c_str()));
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  disk_dir_ = dir;
  disk_index_.clear();
  disk_bytes_ = 0;
  access_counter_ = 0;
  if (!dir.empty()) {
    // Version sweep + index rebuild. Unrecognized or stale-format files
    // are unlinked eagerly (a later Lookup would only treat them as a
    // miss anyway); survivors are indexed in sorted-name order so the
    // initial LRU order is deterministic.
    std::vector<std::pair<std::string, int64_t>> files;
    std::error_code ec;
    for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
      if (entry.path().extension() != ".plan") {
        continue;
      }
      files.emplace_back(entry.path().filename().string(),
                         static_cast<int64_t>(entry.file_size(ec)));
    }
    std::sort(files.begin(), files.end());
    for (const auto& [name, bytes] : files) {
      const std::string path = dir + "/" + name;
      PlanCacheKey key;
      if (!ParseEntryName(name, &key) || !HeaderVersionMatches(path)) {
        std::remove(path.c_str());
        ++stats_.version_swept;
        static Metric* swept = Metrics::Get("plan_cache/version_swept");
        swept->Add(1);
        continue;
      }
      disk_index_[key] = DiskEntry{bytes, ++access_counter_};
      disk_bytes_ += bytes;
    }
    EnforceLimitsLocked();
  }
  UpdateMetricsLocked();
  return Status::Ok();
}

std::string PlanCache::disk_dir() const {
  std::lock_guard<std::mutex> lock(mu_);
  return disk_dir_;
}

void PlanCache::SetLimits(const PlanCacheLimits& limits) {
  std::lock_guard<std::mutex> lock(mu_);
  limits_ = limits;
  EnforceLimitsLocked();
  UpdateMetricsLocked();
}

PlanCacheLimits PlanCache::limits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return limits_;
}

std::string PlanCache::EntryPath(const PlanCacheKey& key) const {
  return StrFormat("%s/%016llx-%016llx.plan", disk_dir_.c_str(),
                   static_cast<unsigned long long>(key.graph_hash),
                   static_cast<unsigned long long>(key.config_hash));
}

void PlanCache::EvictLocked(const PlanCacheKey& key) {
  const auto it = disk_index_.find(key);
  if (it == disk_index_.end()) {
    return;
  }
  std::remove(EntryPath(key).c_str());
  disk_bytes_ -= it->second.bytes;
  disk_index_.erase(it);
  // Drop the memory promotion with the disk entry so the caps genuinely
  // bound the store (otherwise an evicted plan would linger in memory and
  // resurface as a hit the caps pretend not to have).
  entries_.erase(key);
  ++stats_.evictions;
  static Metric* evictions = Metrics::Get("plan_cache/evictions");
  evictions->Add(1);
}

void PlanCache::EnforceLimitsLocked() {
  const auto over = [&] {
    return (limits_.max_disk_entries > 0 &&
            static_cast<int64_t>(disk_index_.size()) > limits_.max_disk_entries) ||
           (limits_.max_disk_bytes > 0 && disk_bytes_ > limits_.max_disk_bytes);
  };
  while (over()) {
    // Oldest logical access first. Copy the key out: EvictLocked erases
    // the index node that owns it.
    PlanCacheKey victim;
    bool found = false;
    uint64_t oldest = 0;
    for (const auto& [key, entry] : disk_index_) {
      if (!found || entry.access_seq < oldest) {
        victim = key;
        found = true;
        oldest = entry.access_seq;
      }
    }
    if (!found) {
      break;
    }
    EvictLocked(victim);
  }
}

void PlanCache::UpdateMetricsLocked() {
  static Metric* size_metric = Metrics::Get("plan_cache/entries");
  static Metric* disk_entries = Metrics::Get("plan_cache/disk_entries");
  static Metric* disk_bytes = Metrics::Get("plan_cache/disk_bytes");
  size_metric->Set(static_cast<int64_t>(entries_.size()));
  disk_entries->Set(static_cast<int64_t>(disk_index_.size()));
  disk_bytes->Set(disk_bytes_);
}

bool PlanCache::Lookup(const PlanCacheKey& key, ParallelPlan* plan) {
  static Metric* memory_hits = Metrics::Get("plan_cache/memory_hits");
  static Metric* disk_hits = Metrics::Get("plan_cache/disk_hits");
  static Metric* misses = Metrics::Get("plan_cache/misses");

  std::string path;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      *plan = it->second;
      // A memory hit is a use: touch the persisted twin so a hot entry
      // never looks cold to the LRU evictor.
      auto disk_it = disk_index_.find(key);
      if (disk_it != disk_index_.end()) {
        disk_it->second.access_seq = ++access_counter_;
      }
      ++stats_.memory_hits;
      memory_hits->Add(1);
      return true;
    }
    if (disk_dir_.empty()) {
      ++stats_.misses;
      misses->Add(1);
      return false;
    }
    path = EntryPath(key);
  }

  // Disk probe outside the lock: file IO and decoding are slow.
  std::string blob;
  bool hit = false;
  bool probed = false;
  if (ReadFile(path, &blob)) {
    probed = true;
    std::string_view payload;
    if (WireUnpack(blob, WireKind::kCacheEntry, &payload).ok()) {
      WireReader r(payload);
      PlanCacheKey stored;
      stored.graph_hash = r.U64();
      stored.config_hash = r.U64();
      ParallelPlan decoded;
      if (r.ok() && stored == key && DecodePlan(&r, &decoded).ok() && r.remaining() == 0) {
        *plan = std::move(decoded);
        hit = true;
      }
    }
    if (!hit) {
      // Corrupt or stale-format entry: self-clean so it is not re-probed.
      std::remove(path.c_str());
    }
  }

  std::lock_guard<std::mutex> lock(mu_);
  if (hit) {
    auto it = disk_index_.find(key);
    bool on_disk = it != disk_index_.end();
    if (on_disk) {
      it->second.access_seq = ++access_counter_;  // LRU touch.
    } else {
      // Not indexed: either written by another process since the sweep,
      // or evicted between our unlocked read and re-locking. Re-stat so
      // an entry the evictor just unlinked is not re-indexed (that would
      // leave disk_bytes_ counting a phantom file).
      std::error_code ec;
      if (std::filesystem::exists(path, ec)) {
        disk_index_[key] = DiskEntry{static_cast<int64_t>(blob.size()), ++access_counter_};
        disk_bytes_ += static_cast<int64_t>(blob.size());
        on_disk = true;
      }
    }
    if (on_disk) {
      // Promote; first writer wins. An entry evicted mid-probe stays out
      // of memory too, so the caps keep genuinely bounding the store.
      entries_.emplace(key, *plan);
    }
    ++stats_.disk_hits;
    disk_hits->Add(1);
  } else {
    if (probed) {
      // The unlink above removed a corrupt entry; keep the size
      // accounting (and the exported metrics) consistent with the store.
      auto it = disk_index_.find(key);
      if (it != disk_index_.end()) {
        disk_bytes_ -= it->second.bytes;
        disk_index_.erase(it);
      }
    }
    ++stats_.misses;
    misses->Add(1);
  }
  UpdateMetricsLocked();
  return hit;
}

void PlanCache::Insert(const PlanCacheKey& key, const ParallelPlan& plan) {
  std::string path;
  {
    std::lock_guard<std::mutex> lock(mu_);
    entries_.emplace(key, plan);
    if (disk_dir_.empty()) {
      UpdateMetricsLocked();
      return;
    }
    path = EntryPath(key);
  }
  WireWriter w;
  w.U64(key.graph_hash);
  w.U64(key.config_hash);
  EncodePlan(plan, &w);
  const std::string blob = WirePack(WireKind::kCacheEntry, w.Take());
  const bool written = WriteFileAtomic(path, blob);

  std::lock_guard<std::mutex> lock(mu_);
  if (written) {
    auto it = disk_index_.find(key);
    if (it != disk_index_.end()) {
      disk_bytes_ -= it->second.bytes;  // Overwrite: replace the old size.
    }
    disk_index_[key] = DiskEntry{static_cast<int64_t>(blob.size()), ++access_counter_};
    disk_bytes_ += static_cast<int64_t>(blob.size());
    EnforceLimitsLocked();
  }
  UpdateMetricsLocked();
}

FlightOutcome PlanCache::JoinFlight(const PlanCacheKey& key, ParallelPlan* plan,
                                    Status* status, double deadline_seconds) {
  if (Lookup(key, plan)) {
    return FlightOutcome::kHit;
  }
  static Metric* leaders = Metrics::Get("plan_cache/flight_leaders");
  static Metric* followers = Metrics::Get("plan_cache/flight_followers");
  std::shared_ptr<Flight> flight;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Re-check memory under the lock: a leader may have published between
    // the Lookup above and here.
    const auto hit = entries_.find(key);
    if (hit != entries_.end()) {
      *plan = hit->second;
      ++stats_.memory_hits;
      return FlightOutcome::kHit;
    }
    auto it = flights_.find(key);
    if (it == flights_.end()) {
      flights_.emplace(key, std::make_shared<Flight>());
      ++stats_.flight_leaders;
      leaders->Add(1);
      return FlightOutcome::kLeader;
    }
    flight = it->second;
    ++stats_.flight_followers;
    followers->Add(1);
  }
  std::unique_lock<std::mutex> lock(flight->mu);
  if (deadline_seconds > 0) {
    // A follower with a short deadline must not inherit the leader's
    // compile time: fail fast on expiry. The flight stays registered —
    // the leader and any patient followers are unaffected.
    if (!flight->cv.wait_for(lock, std::chrono::duration<double>(deadline_seconds),
                             [&] { return flight->done; })) {
      *status = Status::DeadlineExceeded(StrFormat(
          "deadline of %.3fs expired waiting on an in-flight compile", deadline_seconds));
      return FlightOutcome::kFailed;
    }
  } else {
    flight->cv.wait(lock, [&] { return flight->done; });
  }
  if (flight->ok) {
    *plan = flight->plan;
    return FlightOutcome::kHit;
  }
  *status = flight->status;
  return FlightOutcome::kFailed;
}

void PlanCache::FinishFlight(const PlanCacheKey& key, const StatusOr<ParallelPlan>& result) {
  if (result.ok()) {
    // Publish through the cache first so a follower that re-enters
    // JoinFlight after waking (or a brand-new request) hits memory.
    Insert(key, result.value());
  }
  std::shared_ptr<Flight> flight;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = flights_.find(key);
    if (it == flights_.end()) {
      return;  // FinishFlight without JoinFlight: nothing to publish.
    }
    flight = std::move(it->second);
    flights_.erase(it);
  }
  {
    std::lock_guard<std::mutex> lock(flight->mu);
    flight->done = true;
    flight->ok = result.ok();
    if (result.ok()) {
      flight->plan = result.value();
    } else {
      flight->status = result.status();
    }
  }
  flight->cv.notify_all();
}

PlanCacheStats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

size_t PlanCache::disk_size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return disk_index_.size();
}

int64_t PlanCache::disk_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return disk_bytes_;
}

void PlanCache::Clear(bool also_disk) {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  stats_ = PlanCacheStats();
  if (also_disk && !disk_dir_.empty()) {
    std::error_code ec;
    for (const auto& entry : std::filesystem::directory_iterator(disk_dir_, ec)) {
      if (entry.path().extension() == ".plan") {
        std::filesystem::remove(entry.path(), ec);
      }
    }
    disk_index_.clear();
    disk_bytes_ = 0;
    access_counter_ = 0;
  }
  UpdateMetricsLocked();
}

bool ComputePlanCacheKey(const Graph& graph, const ClusterSpec& cluster,
                         const ParallelizeOptions& options, PlanCacheKey* key) {
  const IntraOpOptions& intra = options.inter.profiler.intra;
  // Closures and explicit overrides cannot be folded into a hash.
  if (intra.filter != nullptr || !intra.forced_choice.empty() || !intra.solver.seeds.empty()) {
    return false;
  }
  // A profile source without a stable fingerprint makes the compile
  // irreproducible from hashable inputs — the bug this key exists to
  // prevent is a measured-profile recompile silently aliasing the
  // analytical entry.
  const uint64_t profile_fingerprint =
      options.inter.profile_source != nullptr ? options.inter.profile_source->Fingerprint() : 0;
  if (options.inter.profile_source != nullptr && profile_fingerprint == 0) {
    return false;
  }

  // Graph: hash the wire encoding — full field coverage (names and layer
  // tags included) by construction, unlike StructuralHash.
  {
    WireWriter w;
    EncodeGraph(graph, &w);
    Fnv1a64 hasher;
    hasher.Bytes(w.data().data(), w.size());
    key->graph_hash = hasher.hash();
  }

  // Config: full cluster (extent + faults, via the wire encoding) and
  // every plain option field that steers compilation. compile_threads and
  // trace_path are deliberately excluded: both are guaranteed
  // plan-invariant (PlanEquals determinism, PR 1).
  Fnv1a64 hasher;
  {
    WireWriter w;
    EncodeClusterSpec(cluster, &w);
    hasher.Bytes(w.data().data(), w.size());
  }
  hasher.I32(static_cast<int32_t>(options.schedule));
  hasher.Bool(options.enable_interop);
  hasher.Bool(options.enable_intraop);
  hasher.I32(static_cast<int32_t>(options.reshard));
  const InterOpOptions& inter = options.inter;
  hasher.I32(inter.num_microbatches);
  hasher.I32(inter.target_layers);
  hasher.Double(inter.clustering_delta);
  hasher.I32(static_cast<int32_t>(inter.clustering));
  hasher.Bool(inter.equal_layer_stages);
  hasher.Double(inter.dp.epsilon);
  hasher.I32(inter.dp.max_stages);
  hasher.Double(inter.dp.device_memory_override);
  hasher.I32(inter.dp.max_tmax_candidates);
  hasher.I32(static_cast<int32_t>(inter.submesh_shapes.size()));
  for (const SubmeshShape& shape : inter.submesh_shapes) {
    hasher.I32(shape.num_hosts).I32(shape.devices_per_host);
  }
  hasher.Bool(inter.profiler.exact_intervals);
  hasher.Bool(inter.profiler.memory_modes);
  hasher.Bool(inter.profiler.dedup_identical_layers);
  hasher.Bool(inter.profiler.use_ilp_cache);
  hasher.I32(static_cast<int32_t>(intra.precision));
  hasher.Bool(intra.rematerialize);
  hasher.Double(intra.activation_fraction);
  hasher.I32(intra.num_microbatches);
  hasher.Bool(intra.seed_with_plan_families);
  hasher.I64(intra.solver.max_search_nodes);
  hasher.I64(intra.solver.max_elimination_table);
  hasher.I32(intra.solver.beam_width);
  hasher.I32(static_cast<int32_t>(intra.solver.engine));
  hasher.Bool(intra.solver.use_core_memo);
  hasher.U64(profile_fingerprint);
  key->config_hash = hasher.hash();
  return true;
}

}  // namespace serve
}  // namespace alpa
