#include "src/serve/server.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "src/elastic/speculator.h"
#include "src/serve/plan_cache.h"
#include "src/serve/plan_db.h"
#include "src/support/logging.h"
#include "src/support/strings.h"
#include "src/support/trace.h"

namespace alpa {
namespace serve {

namespace {

double NowSeconds() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Waits until `fd` is readable; false on shutdown/hangup. Poll in slices
// so connection threads notice Stop() within ~200ms even on idle clients.
bool WaitReadable(int fd, const std::atomic<bool>& running) {
  while (running.load(std::memory_order_relaxed)) {
    struct pollfd pfd = {fd, POLLIN, 0};
    const int k = ::poll(&pfd, 1, 200);
    if (k < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    if (k > 0) {
      return (pfd.revents & (POLLIN | POLLHUP)) != 0;
    }
  }
  return false;
}

}  // namespace

PlanServer::PlanServer(ServerOptions options) : options_(std::move(options)) {}

PlanServer::~PlanServer() { Stop(); }

Status PlanServer::Start() {
  if (options_.socket_path.empty()) {
    return Status::InvalidArgument("server: socket_path is required");
  }
  if (options_.socket_path.size() >= sizeof(sockaddr_un::sun_path)) {
    return Status::InvalidArgument("server: socket_path too long for AF_UNIX");
  }
  PlanCache::Global().SetLimits(
      PlanCacheLimits{options_.cache_max_entries, options_.cache_max_bytes});
  if (!options_.plan_cache_dir.empty()) {
    ALPA_RETURN_IF_ERROR(PlanCache::Global().SetDiskDir(options_.plan_cache_dir));
    // Results-database records live next to the plan files.
    ALPA_RETURN_IF_ERROR(PlanDb::Global().SetDir(options_.plan_cache_dir));
  }

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(StrFormat("socket: %s", std::strerror(errno)));
  }
  ::unlink(options_.socket_path.c_str());  // Stale socket from a crash.
  sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, options_.socket_path.c_str(), sizeof(addr.sun_path) - 1);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal(
        StrFormat("bind %s: %s", options_.socket_path.c_str(), std::strerror(errno)));
  }
  if (::listen(listen_fd_, 64) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal(StrFormat("listen: %s", std::strerror(errno)));
  }

  running_.store(true);
  acceptor_ = std::thread([this] { AcceptLoop(); });
  const int num_workers = options_.num_workers > 0 ? options_.num_workers : 1;
  workers_.reserve(num_workers);
  for (int i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
  return Status::Ok();
}

void PlanServer::Stop() {
  if (!running_.exchange(false)) {
    return;
  }
  // Fail everything still queued; waiting connections get kUnavailable.
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    for (auto& [tenant, queue] : tenant_queues_) {
      for (const std::shared_ptr<Job>& job : queue) {
        std::lock_guard<std::mutex> job_lock(job->mu);
        job->response = ServeResponse::FromStatus(Status::Unavailable("server shutting down"));
        job->done = true;
        job->cv.notify_all();
      }
    }
    tenant_queues_.clear();
    total_queued_ = 0;
  }
  queue_cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
  workers_.clear();
  if (acceptor_.joinable()) {
    acceptor_.join();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(options_.socket_path.c_str());
  }
  std::vector<std::thread> connections;
  {
    std::lock_guard<std::mutex> lock(connections_mu_);
    connections.swap(connections_);
  }
  for (std::thread& connection : connections) {
    connection.join();
  }
}

ServerStats PlanServer::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

void PlanServer::AcceptLoop() {
  while (running_.load(std::memory_order_relaxed)) {
    if (!WaitReadable(listen_fd_, running_)) {
      break;
    }
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
        continue;
      }
      break;
    }
    std::lock_guard<std::mutex> lock(connections_mu_);
    connections_.emplace_back([this, fd] { ConnectionLoop(fd); });
  }
}

void PlanServer::ConnectionLoop(int fd) {
  while (running_.load(std::memory_order_relaxed)) {
    if (!WaitReadable(fd, running_)) {
      break;
    }
    std::string blob;
    const Status read_status = ReadFrame(fd, &blob);
    if (!read_status.ok()) {
      break;  // EOF or a broken/oversized frame: drop the connection.
    }
    ServeResponse response;
    auto request = DeserializeRequest(blob);
    if (!request.ok()) {
      // Malformed request: structured error back, connection stays up.
      response = ServeResponse::FromStatus(request.status());
    } else {
      std::shared_ptr<Job> job = Admit(std::move(request).value());
      if (job == nullptr) {
        response = ServeResponse::FromStatus(
            Status::Unavailable("admission queue full, retry later"));
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.rejected_queue;
      } else {
        std::unique_lock<std::mutex> job_lock(job->mu);
        job->cv.wait(job_lock, [&job] { return job->done; });
        response = job->response;
      }
    }
    if (!WriteFrame(fd, SerializeResponse(response)).ok()) {
      break;
    }
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.served;
  }
  ::close(fd);
}

std::shared_ptr<PlanServer::Job> PlanServer::Admit(ServeRequest request) {
  auto job = std::make_shared<Job>();
  job->deadline_seconds = request.options.deadline_seconds > 0
                              ? request.options.deadline_seconds
                              : options_.default_deadline_seconds;
  job->request = std::move(request);
  job->enqueue_time = NowSeconds();
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (total_queued_ >= options_.max_queue) {
      return nullptr;
    }
    std::deque<std::shared_ptr<Job>>& queue = tenant_queues_[job->request.options.tenant];
    if (static_cast<int>(queue.size()) >= options_.max_per_tenant) {
      return nullptr;
    }
    queue.push_back(job);
    ++total_queued_;
  }
  queue_cv_.notify_one();
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.accepted;
  }
  return job;
}

std::shared_ptr<PlanServer::Job> PlanServer::NextJob() {
  std::unique_lock<std::mutex> lock(queue_mu_);
  queue_cv_.wait(lock, [this] {
    return total_queued_ > 0 || !running_.load(std::memory_order_relaxed);
  });
  if (total_queued_ == 0) {
    return nullptr;
  }
  // Round-robin over tenants: take the first non-empty queue at or after
  // the cursor, wrapping; advance the cursor past the chosen tenant.
  auto it = tenant_queues_.lower_bound(next_tenant_);
  for (size_t probes = 0; probes <= tenant_queues_.size(); ++probes) {
    if (it == tenant_queues_.end()) {
      it = tenant_queues_.begin();
    }
    if (!it->second.empty()) {
      break;
    }
    ++it;
  }
  std::shared_ptr<Job> job = it->second.front();
  it->second.pop_front();
  --total_queued_;
  auto next = std::next(it);
  next_tenant_ = next == tenant_queues_.end() ? std::string() : next->first;
  if (it->second.empty()) {
    tenant_queues_.erase(it);
  }
  return job;
}

void PlanServer::WorkerLoop(int worker_index) {
  (void)worker_index;
  InProcessPlanService service;
  while (true) {
    std::shared_ptr<Job> job = NextJob();
    if (job == nullptr) {
      return;  // Shutdown.
    }
    std::optional<PlanRequest> speculate;
    ServeResponse response = Execute(service, *job, options_.elastic ? &speculate : nullptr);
    {
      std::lock_guard<std::mutex> job_lock(job->mu);
      job->response = std::move(response);
      job->done = true;
      job->cv.notify_all();
    }
    // The client already has its answer; presolving the likely failover
    // configurations now costs it nothing.
    if (speculate.has_value() && running_.load(std::memory_order_relaxed)) {
      SpeculateAfter(service, *speculate);
    }
  }
}

ServeResponse PlanServer::Execute(InProcessPlanService& service, Job& job,
                                  std::optional<PlanRequest>* speculate) {
  TraceSpan span("serve.request", "serve");
  static Metric* requests_metric = Metrics::Get("serve/requests");
  requests_metric->Add(1);

  const double queue_seconds = NowSeconds() - job.enqueue_time;
  ServeResponse response;
  response.queue_seconds = queue_seconds;

  // A compile-bearing request whose remaining deadline is below the floor
  // cannot finish a useful search: scaling the ILP budget by the few
  // remaining milliseconds just burns them on a doomed, near-zero-budget
  // solve. Fail fast instead (the request is as good as expired).
  const bool compiles = job.request.method == Method::kParallelize ||
                        job.request.method == Method::kRepair;
  const double remaining =
      job.deadline_seconds > 0 ? job.deadline_seconds - queue_seconds : 0.0;
  if (job.deadline_seconds > 0 &&
      (queue_seconds >= job.deadline_seconds || (compiles && remaining < kMinDeadlineSeconds))) {
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.expired;
    }
    response = ServeResponse::FromStatus(Status::DeadlineExceeded(
        StrFormat("deadline of %.3fs leaves %.3fs after %.3fs in queue (floor %.3fs)",
                  job.deadline_seconds, remaining, queue_seconds, kMinDeadlineSeconds)));
    response.queue_seconds = queue_seconds;
    return response;
  }

  PlanRequest request;
  request.graph = std::move(job.request.graph);
  request.cluster = job.request.cluster;
  request.options = job.request.options;
  if (job.deadline_seconds > 0) {
    // Whatever queueing consumed is gone; the compile gets the remainder
    // (never less than the floor the check above guarantees).
    request.options.deadline_seconds = std::max(remaining, kMinDeadlineSeconds);
  }
  // The server picks its own parallelism; clients cannot size our pools.
  request.options.compile_threads = 1;

  const double start = NowSeconds();
  switch (job.request.method) {
    case Method::kPing:
      break;
    case Method::kParallelize: {
      auto plan = service.Parallelize(request);
      if (plan.ok()) {
        response.has_plan = true;
        response.plan = std::move(plan).value();
        response.plan_cache_hit = service.last_outcome().plan_cache_hit;
        response.optimality_gap = response.plan.compile_stats.max_optimality_gap;
        if (response.plan_cache_hit) {
          std::lock_guard<std::mutex> lock(stats_mu_);
          ++stats_.plan_cache_hits;
        }
        if (options_.elastic) {
          RecordElasticParallelize(service.last_outcome(), request);
          if (speculate != nullptr && request.options.use_plan_cache) {
            *speculate = std::move(request);
          }
        }
      } else {
        response = ServeResponse::FromStatus(plan.status());
      }
      break;
    }
    case Method::kSimulate: {
      if (!job.request.has_plan) {
        response = ServeResponse::FromStatus(
            Status::InvalidArgument("simulate request carries no plan"));
        break;
      }
      auto stats = service.Simulate(request, job.request.plan);
      if (stats.ok()) {
        response.has_stats = true;
        response.stats = stats.value();
      } else {
        response = ServeResponse::FromStatus(stats.status());
      }
      break;
    }
    case Method::kRepair: {
      auto repaired = service.Repair(request, job.request.repair);
      if (repaired.ok()) {
        response.has_repair = true;
        response.repair = std::move(repaired).value();
      } else {
        response = ServeResponse::FromStatus(repaired.status());
      }
      break;
    }
    case Method::kDbList: {
      // Tenant scoping: the admission identity is also the authorization
      // boundary. A non-admin caller may only list its own records; an
      // explicit filter for another tenant is rejected rather than
      // silently rewritten.
      PlanDbQuery query = job.request.db_query;
      if (!DbAdmin(job.request)) {
        const std::string& caller = job.request.options.tenant;
        if (!query.tenant.empty() && query.tenant != caller) {
          response = ServeResponse::FromStatus(Status::InvalidArgument(
              "plan db: tenant filter does not match caller identity"));
          break;
        }
        if (caller.empty()) {
          // PlanDb treats "" as a wildcard, but the anonymous tenant is
          // still just one tenant: list everything, keep only its rows,
          // and re-apply the limit.
          std::vector<PlanRecord> records = PlanDb::Global().List(PlanDbQuery{"", 0});
          std::erase_if(records, [](const PlanRecord& r) { return !r.tenant.empty(); });
          if (query.limit > 0 && static_cast<int32_t>(records.size()) > query.limit) {
            records.resize(static_cast<size_t>(query.limit));
          }
          response.records = std::move(records);
          break;
        }
        query.tenant = caller;
      }
      response.records = PlanDb::Global().List(query);
      break;
    }
    case Method::kDbGet: {
      auto record = PlanDb::Global().Get(job.request.db_key);
      if (!record.ok()) {
        response = ServeResponse::FromStatus(record.status());
      } else if (!DbAdmin(job.request) &&
                 record.value().tenant != job.request.options.tenant) {
        // Deny as absent: record existence must not leak across tenants.
        response = ServeResponse::FromStatus(
            Status::InvalidArgument("plan db: no record for key"));
      } else {
        response.records.push_back(std::move(record).value());
      }
      break;
    }
    case Method::kDbDelete: {
      auto record = PlanDb::Global().Get(job.request.db_key);
      const bool owned = record.ok() && (DbAdmin(job.request) ||
                                         record.value().tenant == job.request.options.tenant);
      if (!owned || !PlanDb::Global().Delete(job.request.db_key)) {
        response = ServeResponse::FromStatus(
            Status::InvalidArgument("plan db: no record for key"));
      }
      break;
    }
    case Method::kElasticStats:
      // Counters are stamped on every response below; this method exists
      // so clients can read them without paying for a compile.
      break;
  }
  StampElastic(&response);
  response.queue_seconds = queue_seconds;
  response.compile_seconds = NowSeconds() - start;
  return response;
}

void PlanServer::SpeculateAfter(InProcessPlanService& service, const PlanRequest& base) {
  TraceSpan span("serve.speculate", "serve");
  static Metric* speculations_metric = Metrics::Get("ilp.elastic.speculations");
  auto options = base.options.ToParallelizeOptions();
  if (!options.ok()) {
    return;
  }
  elastic::SpeculationOptions spec;
  spec.k = options_.speculate_k > 0 ? options_.speculate_k : 1;
  const std::vector<elastic::CandidateConfig> candidates = elastic::EnumerateLikelyConfigs(
      base.cluster, /*announced=*/{}, /*now=*/0.0, options_.speculate_mtbf_seconds, spec);
  for (const elastic::CandidateConfig& candidate : candidates) {
    if (!running_.load(std::memory_order_relaxed)) {
      return;  // Shutdown: stop burning the worker on background work.
    }
    PlanCacheKey key;
    if (!ComputePlanCacheKey(base.graph, candidate.cluster, options.value(), &key)) {
      continue;
    }
    const std::pair<uint64_t, uint64_t> id{key.graph_hash, key.config_hash};
    {
      std::lock_guard<std::mutex> lock(elastic_mu_);
      if (speculative_.count(id) > 0) {
        continue;  // Already presolved (possibly by another worker).
      }
    }
    ParallelPlan cached;
    if (PlanCache::Global().Lookup(key, &cached)) {
      continue;  // Already warm without our help; not a speculation.
    }
    // Ride the per-worker service so the presolve shares the single-flight
    // machinery (never duplicating a client compile of the same key) and
    // lands in the cache + results db exactly like a client compile.
    PlanRequest presolve;
    presolve.graph = base.graph;
    presolve.cluster = candidate.cluster;
    presolve.options = base.options;
    presolve.options.deadline_seconds = 0.0;  // Background work: no deadline.
    {
      std::lock_guard<std::mutex> lock(elastic_mu_);
      ++elastic_speculations_;
    }
    speculations_metric->Add(1);
    auto plan = service.Parallelize(presolve);
    if (plan.ok()) {
      std::lock_guard<std::mutex> lock(elastic_mu_);
      speculative_.emplace(id, false);
    }
  }
}

void PlanServer::RecordElasticParallelize(const CompileOutcome& outcome,
                                          const PlanRequest& request) {
  static Metric* hits_metric = Metrics::Get("ilp.elastic.speculative_hits");
  static Metric* misses_metric = Metrics::Get("ilp.elastic.speculative_misses");
  if (!outcome.plan_cache_eligible) {
    return;
  }
  auto options = request.options.ToParallelizeOptions();
  if (!options.ok()) {
    return;
  }
  PlanCacheKey key;
  if (!ComputePlanCacheKey(request.graph, request.cluster, options.value(), &key)) {
    return;
  }
  std::lock_guard<std::mutex> lock(elastic_mu_);
  if (outcome.plan_cache_hit) {
    auto it = speculative_.find({key.graph_hash, key.config_hash});
    if (it != speculative_.end() && !it->second) {
      it->second = true;
      ++elastic_hits_;
      hits_metric->Add(1);
    }
  } else if (outcome.compiled) {
    // A cold compile speculation did not cover (the very first request for
    // any workload lands here too — nothing could have presolved it).
    ++elastic_misses_;
    misses_metric->Add(1);
  }
}

void PlanServer::StampElastic(ServeResponse* response) {
  if (!options_.elastic) {
    return;
  }
  static Metric* wasted_metric = Metrics::Get("ilp.elastic.wasted_presolves");
  std::lock_guard<std::mutex> lock(elastic_mu_);
  response->elastic_enabled = true;
  response->elastic_speculations = elastic_speculations_;
  response->elastic_hits = elastic_hits_;
  response->elastic_misses = elastic_misses_;
  int64_t wasted = 0;
  for (const auto& [id, consumed] : speculative_) {
    if (!consumed) {
      ++wasted;
    }
  }
  response->elastic_wasted = wasted;
  wasted_metric->Set(wasted);
}

}  // namespace serve
}  // namespace alpa
