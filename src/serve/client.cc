#include "src/serve/client.h"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "src/support/strings.h"

namespace alpa {
namespace serve {

namespace {

// RAII connected socket.
class Connection {
 public:
  static StatusOr<Connection> Open(const std::string& socket_path) {
    if (socket_path.size() >= sizeof(sockaddr_un::sun_path)) {
      return Status::InvalidArgument("client: socket path too long for AF_UNIX");
    }
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      return Status::Unavailable(StrFormat("socket: %s", std::strerror(errno)));
    }
    sockaddr_un addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
      const int err = errno;
      ::close(fd);
      return Status::Unavailable(
          StrFormat("connect %s: %s", socket_path.c_str(), std::strerror(err)));
    }
    return Connection(fd);
  }

  Connection(Connection&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Connection(const Connection&) = delete;
  ~Connection() {
    if (fd_ >= 0) {
      ::close(fd_);
    }
  }

  int fd() const { return fd_; }

 private:
  explicit Connection(int fd) : fd_(fd) {}
  int fd_;
};

// Copies the serializable request fields; local-only options stay behind.
ServeRequest BuildRequest(Method method, const PlanRequest& request) {
  ServeRequest wire_request;
  wire_request.method = method;
  wire_request.options = request.options;
  wire_request.options.profile_source = nullptr;
  wire_request.options.trace_path.clear();
  wire_request.options.compile_threads = ParallelizeOptions::kInheritThreads;
  wire_request.graph = request.graph;
  wire_request.cluster = request.cluster;
  return wire_request;
}

}  // namespace

StatusOr<ServeResponse> RemotePlanService::Call(const ServeRequest& request) {
  auto connection = Connection::Open(socket_path_);
  if (!connection.ok()) {
    return connection.status();
  }
  Status io = WriteFrame(connection.value().fd(), SerializeRequest(request));
  if (!io.ok()) {
    return Status::Unavailable("send failed: " + io.message());
  }
  std::string blob;
  io = ReadFrame(connection.value().fd(), &blob);
  if (!io.ok()) {
    return Status::Unavailable("receive failed: " + io.message());
  }
  return DeserializeResponse(blob);
}

StatusOr<ParallelPlan> RemotePlanService::Parallelize(const PlanRequest& request) {
  auto response = Call(BuildRequest(Method::kParallelize, request));
  if (!response.ok()) {
    return response.status();
  }
  ALPA_RETURN_IF_ERROR(response.value().ToStatus());
  if (!response.value().has_plan) {
    return Status::Internal("server returned OK without a plan");
  }
  return std::move(response).value().plan;
}

StatusOr<ExecutionStats> RemotePlanService::Simulate(const PlanRequest& request,
                                                     const ParallelPlan& plan) {
  ServeRequest wire_request = BuildRequest(Method::kSimulate, request);
  wire_request.has_plan = true;
  wire_request.plan = plan;
  auto response = Call(wire_request);
  if (!response.ok()) {
    return response.status();
  }
  ALPA_RETURN_IF_ERROR(response.value().ToStatus());
  if (!response.value().has_stats) {
    return Status::Internal("server returned OK without stats");
  }
  return response.value().stats;
}

StatusOr<RepairResult> RemotePlanService::Repair(const PlanRequest& request,
                                                 const RepairOptions& repair) {
  ServeRequest wire_request = BuildRequest(Method::kRepair, request);
  wire_request.repair = repair;
  auto response = Call(wire_request);
  if (!response.ok()) {
    return response.status();
  }
  ALPA_RETURN_IF_ERROR(response.value().ToStatus());
  if (!response.value().has_repair) {
    return Status::Internal("server returned OK without a repair result");
  }
  return std::move(response).value().repair;
}

StatusOr<std::vector<PlanRecord>> RemotePlanService::DbList(const PlanDbQuery& query,
                                                            const std::string& tenant) {
  ServeRequest request;
  request.method = Method::kDbList;
  request.options.tenant = tenant;
  request.db_query = query;
  auto response = Call(request);
  if (!response.ok()) {
    return response.status();
  }
  ALPA_RETURN_IF_ERROR(response.value().ToStatus());
  return std::move(response).value().records;
}

StatusOr<PlanRecord> RemotePlanService::DbGet(const PlanCacheKey& key,
                                              const std::string& tenant) {
  ServeRequest request;
  request.method = Method::kDbGet;
  request.options.tenant = tenant;
  request.db_key = key;
  auto response = Call(request);
  if (!response.ok()) {
    return response.status();
  }
  ALPA_RETURN_IF_ERROR(response.value().ToStatus());
  if (response.value().records.size() != 1) {
    return Status::Internal("server returned OK without a record");
  }
  return std::move(response).value().records.front();
}

Status RemotePlanService::DbDelete(const PlanCacheKey& key, const std::string& tenant) {
  ServeRequest request;
  request.method = Method::kDbDelete;
  request.options.tenant = tenant;
  request.db_key = key;
  auto response = Call(request);
  if (!response.ok()) {
    return response.status();
  }
  return response.value().ToStatus();
}

StatusOr<ServeResponse> RemotePlanService::ElasticStats() {
  ServeRequest request;
  request.method = Method::kElasticStats;
  auto response = Call(request);
  if (!response.ok()) {
    return response.status();
  }
  ALPA_RETURN_IF_ERROR(response.value().ToStatus());
  return std::move(response).value();
}

Status RemotePlanService::Ping() {
  ServeRequest request;
  request.method = Method::kPing;
  auto response = Call(request);
  if (!response.ok()) {
    return response.status();
  }
  return response.value().ToStatus();
}

}  // namespace serve
}  // namespace alpa
