#include "src/exec/gemm.h"

#include <algorithm>
#include <cstring>

#include "src/support/logging.h"

namespace alpa {
namespace exec {

namespace {

// Column-panel width. 64 f32 = one or two cache lines per k row; the f64
// accumulator tile (4 x 64 doubles = 2 KiB) stays L1-resident.
constexpr int64_t kNC = 64;
// Row-tile height: amortizes each packed B row over 4 A rows.
constexpr int64_t kMR = 4;

}  // namespace

void GemmF64Acc(int64_t m, int64_t n, int64_t k, const float* a, const float* b, double* c,
                GemmScratch* scratch) {
  ALPA_CHECK_GE(m, 0);
  ALPA_CHECK_GE(n, 0);
  ALPA_CHECK_GE(k, 0);
  if (m == 0 || n == 0 || k == 0) {
    return;
  }
  GemmScratch local;
  GemmScratch* s = scratch != nullptr ? scratch : &local;
  for (int64_t n0 = 0; n0 < n; n0 += kNC) {
    const int64_t nb = std::min(kNC, n - n0);
    // Pack the B column panel k x nb contiguously so the inner loop streams it.
    s->pack.resize(static_cast<size_t>(k * nb));
    float* bp = s->pack.data();
    for (int64_t l = 0; l < k; ++l) {
      std::memcpy(bp + l * nb, b + l * n + n0, sizeof(float) * static_cast<size_t>(nb));
    }
    for (int64_t m0 = 0; m0 < m; m0 += kMR) {
      const int64_t mb = std::min(kMR, m - m0);
      // One f64 accumulator per output cell, live across the whole k loop:
      // ascending-k per-cell sums, never reassociated.
      double acc[kMR][kNC] = {};
      if (mb == kMR && nb == kNC) {
        for (int64_t l = 0; l < k; ++l) {
          const float* brow = bp + l * kNC;
          for (int i = 0; i < kMR; ++i) {
            const double av = a[(m0 + i) * k + l];
#pragma omp simd
            for (int j = 0; j < kNC; ++j) {
              acc[i][j] += av * static_cast<double>(brow[j]);
            }
          }
        }
      } else {
        for (int64_t l = 0; l < k; ++l) {
          const float* brow = bp + l * nb;
          for (int64_t i = 0; i < mb; ++i) {
            const double av = a[(m0 + i) * k + l];
#pragma omp simd
            for (int64_t j = 0; j < nb; ++j) {
              acc[i][j] += av * static_cast<double>(brow[j]);
            }
          }
        }
      }
      for (int64_t i = 0; i < mb; ++i) {
        double* crow = c + (m0 + i) * n + n0;
        for (int64_t j = 0; j < nb; ++j) {
          crow[j] += acc[i][j];
        }
      }
    }
  }
}

void SgemmF32(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k, const float* a,
              int64_t lda, const float* b, int64_t ldb, float* c, int64_t ldc,
              GemmScratch* scratch) {
  ALPA_CHECK_GE(m, 0);
  ALPA_CHECK_GE(n, 0);
  ALPA_CHECK_GE(k, 0);
  for (int64_t i = 0; i < m; ++i) {
    std::memset(c + i * ldc, 0, sizeof(float) * static_cast<size_t>(n));
  }
  if (m == 0 || n == 0 || k == 0) {
    return;
  }
  GemmScratch local;
  GemmScratch* s = scratch != nullptr ? scratch : &local;
  // Pack both operands once into plain row-major m x k / k x n panels; the
  // blocked kernel then never touches a strided or transposed layout.
  s->pack.resize(static_cast<size_t>(m * k + k * n));
  float* ap = s->pack.data();
  float* bp = s->pack.data() + m * k;
  if (trans_a) {
    for (int64_t l = 0; l < k; ++l) {
      for (int64_t i = 0; i < m; ++i) {
        ap[i * k + l] = a[l * lda + i];
      }
    }
  } else {
    for (int64_t i = 0; i < m; ++i) {
      std::memcpy(ap + i * k, a + i * lda, sizeof(float) * static_cast<size_t>(k));
    }
  }
  if (trans_b) {
    for (int64_t j = 0; j < n; ++j) {
      for (int64_t l = 0; l < k; ++l) {
        bp[l * n + j] = b[j * ldb + l];
      }
    }
  } else {
    for (int64_t l = 0; l < k; ++l) {
      std::memcpy(bp + l * n, b + l * ldb, sizeof(float) * static_cast<size_t>(n));
    }
  }
  for (int64_t n0 = 0; n0 < n; n0 += kNC) {
    const int64_t nb = std::min(kNC, n - n0);
    for (int64_t m0 = 0; m0 < m; m0 += kMR) {
      const int64_t mb = std::min(kMR, m - m0);
      float acc[kMR][kNC] = {};
      if (mb == kMR && nb == kNC) {
        for (int64_t l = 0; l < k; ++l) {
          const float* brow = bp + l * n + n0;
          for (int i = 0; i < kMR; ++i) {
            const float av = ap[(m0 + i) * k + l];
#pragma omp simd
            for (int j = 0; j < kNC; ++j) {
              acc[i][j] += av * brow[j];
            }
          }
        }
      } else {
        for (int64_t l = 0; l < k; ++l) {
          const float* brow = bp + l * n + n0;
          for (int64_t i = 0; i < mb; ++i) {
            const float av = ap[(m0 + i) * k + l];
#pragma omp simd
            for (int64_t j = 0; j < nb; ++j) {
              acc[i][j] += av * brow[j];
            }
          }
        }
      }
      for (int64_t i = 0; i < mb; ++i) {
        float* crow = c + (m0 + i) * ldc + n0;
        for (int64_t j = 0; j < nb; ++j) {
          crow[j] = acc[i][j];
        }
      }
    }
  }
}

}  // namespace exec
}  // namespace alpa
