// Collective operations over the shared-memory transport.
//
// All calls are SPMD: every device in `group` (global device ids) invokes
// the same function with its own `rank` (index into the group) in the same
// program order, so matching tag sequences line up without barriers. The
// all-reduce is a true ring (reduce-scatter then all-gather over chunk
// rotations, deterministic addition order given the group); gather /
// reduce-scatter / all-to-all use direct pairwise exchange, whose per-device
// byte counts equal the Table-1 ring formulas: all-gather and
// reduce-scatter move (k-1)/k * N per device, all-to-all (k-1)/k * N,
// all-reduce 2(k-1)/k * N.
//
// `tag_base` must be unique per collective instance (a MakeTag with zero
// aux); ranks/rounds are encoded into the aux field internally, consuming
// aux values below 1<<20. `dtype_bytes` sets the wire width charged per
// element (payloads are always f32 in memory).
#ifndef SRC_EXEC_COLLECTIVES_H_
#define SRC_EXEC_COLLECTIVES_H_

#include <cstdint>
#include <vector>

#include "src/exec/transport.h"

namespace alpa {
namespace exec {

// Chunk boundary i of a length-`n` buffer split into `k` chunks: i * n / k.
int64_t ChunkBound(int64_t n, int k, int i);

// In-place ring all-reduce (sum) of `data` across the group.
void RingAllReduce(Transport& transport, const std::vector<int>& group, int rank,
                   std::vector<float>& data, uint64_t tag_base, int64_t dtype_bytes = 4);

// Same ring, but over the executor's double-precision einsum partials:
// chunks travel bit-cast into float payloads (two slots per element) and
// the final f32 rounding happens at the caller, after the reduction. Wire
// accounting is unchanged — the modeled collective moves the logical
// tensor, so each element still charges `dtype_bytes` per hop.
void RingAllReduceAccum(Transport& transport, const std::vector<int>& group, int rank,
                        std::vector<double>& data, uint64_t tag_base, int64_t dtype_bytes = 4);

// Every rank contributes `mine`; returns all ranks' contributions in rank
// order (chunks may have different sizes).
std::vector<std::vector<float>> AllGatherChunks(Transport& transport,
                                                const std::vector<int>& group, int rank,
                                                const std::vector<float>& mine,
                                                uint64_t tag_base, int64_t dtype_bytes = 4);

// Sums `data` (same length everywhere) across the group and returns this
// rank's chunk [ChunkBound(n,k,rank), ChunkBound(n,k,rank+1)). Peers'
// contributions are added in rank order.
std::vector<float> ReduceScatter(Transport& transport, const std::vector<int>& group, int rank,
                                 const std::vector<float>& data, uint64_t tag_base,
                                 int64_t dtype_bytes = 4);

// Sends to_peer[p] to rank p; returns what each rank sent here, in rank
// order (own slot moved through untouched).
std::vector<std::vector<float>> AllToAll(Transport& transport, const std::vector<int>& group,
                                         int rank, std::vector<std::vector<float>> to_peer,
                                         uint64_t tag_base, int64_t dtype_bytes = 4);

}  // namespace exec
}  // namespace alpa

#endif  // SRC_EXEC_COLLECTIVES_H_
