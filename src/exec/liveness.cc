#include "src/exec/liveness.h"

#include <algorithm>
#include <map>

#include "src/support/logging.h"

namespace alpa {
namespace exec {

std::vector<LiveInterval> ComputeLiveness(const std::vector<InstructionAccess>& accesses) {
  std::map<TensorRef, LiveInterval> open;
  for (size_t i = 0; i < accesses.size(); ++i) {
    const int idx = static_cast<int>(i);
    for (const TensorDef& def : accesses[i].defs) {
      auto [it, inserted] = open.try_emplace(def.ref);
      if (inserted) {
        it->second.ref = def.ref;
        it->second.def = idx;
        it->second.bytes = def.bytes;
      } else {
        // Redefinition extends the interval; keep the larger footprint.
        it->second.bytes = std::max(it->second.bytes, def.bytes);
      }
      it->second.last_use = idx;
    }
    for (const TensorRef& use : accesses[i].uses) {
      auto [it, inserted] = open.try_emplace(use);
      if (inserted) {
        it->second.ref = use;
        it->second.def = idx;
      }
      it->second.last_use = idx;
    }
  }
  std::vector<LiveInterval> intervals;
  intervals.reserve(open.size());
  for (auto& [ref, interval] : open) {
    intervals.push_back(interval);
  }
  std::sort(intervals.begin(), intervals.end(), [](const LiveInterval& a, const LiveInterval& b) {
    if (a.def != b.def) {
      return a.def < b.def;
    }
    return a.ref < b.ref;
  });
  return intervals;
}

int64_t PeakLiveBytes(const std::vector<LiveInterval>& intervals) {
  // Sweep: +bytes at def, -bytes after last_use.
  std::map<int, int64_t> delta;
  for (const LiveInterval& interval : intervals) {
    delta[interval.def] += interval.bytes;
    delta[interval.last_use + 1] -= interval.bytes;
  }
  int64_t live = 0;
  int64_t peak = 0;
  for (const auto& [idx, d] : delta) {
    live += d;
    peak = std::max(peak, live);
  }
  return peak;
}

std::vector<std::vector<TensorRef>> ReleaseLists(const std::vector<LiveInterval>& intervals,
                                                 int num_instructions) {
  std::vector<std::vector<TensorRef>> release(static_cast<size_t>(num_instructions));
  for (const LiveInterval& interval : intervals) {
    ALPA_CHECK_LT(interval.last_use, num_instructions);
    release[static_cast<size_t>(interval.last_use)].push_back(interval.ref);
  }
  return release;
}

}  // namespace exec
}  // namespace alpa
