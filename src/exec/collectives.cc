#include "src/exec/collectives.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "src/support/logging.h"

namespace alpa {
namespace exec {

namespace {

// Aux-field layout inside one collective instance: round * 64 + source
// rank. Groups are logical meshes of at most 64 devices here; CHECKed.
constexpr int kMaxGroup = 64;

uint64_t StepTag(uint64_t tag_base, int round, int src_rank) {
  return tag_base + static_cast<uint64_t>(round * kMaxGroup + src_rank);
}

int64_t WireBytes(size_t elements, int64_t dtype_bytes) {
  return static_cast<int64_t>(elements) * dtype_bytes;
}

}  // namespace

int64_t ChunkBound(int64_t n, int k, int i) { return n * i / k; }

void RingAllReduce(Transport& transport, const std::vector<int>& group, int rank,
                   std::vector<float>& data, uint64_t tag_base, int64_t dtype_bytes) {
  const int k = static_cast<int>(group.size());
  ALPA_CHECK_LE(k, kMaxGroup);
  ALPA_CHECK_GE(rank, 0);
  ALPA_CHECK_LT(rank, k);
  if (k <= 1) {
    return;
  }
  const int64_t n = static_cast<int64_t>(data.size());
  const int next = (rank + 1) % k;
  const int prev = (rank + k - 1) % k;
  const auto chunk_of = [&](int c) {
    const int cc = ((c % k) + k) % k;
    return std::pair<int64_t, int64_t>{ChunkBound(n, k, cc), ChunkBound(n, k, cc + 1)};
  };
  // Phase 1: reduce-scatter. Step t sends chunk (rank - t), receives and
  // accumulates chunk (rank - t - 1); the received partial comes first in
  // the addition so every chunk sums contributions in ring order.
  for (int t = 0; t < k - 1; ++t) {
    const auto [send_lo, send_hi] = chunk_of(rank - t);
    std::vector<float> payload(data.begin() + send_lo, data.begin() + send_hi);
    transport.Send(group[static_cast<size_t>(rank)], group[static_cast<size_t>(next)],
                   StepTag(tag_base, t, rank), std::move(payload),
                   WireBytes(static_cast<size_t>(send_hi - send_lo), dtype_bytes));
    const std::vector<float> received =
        transport.Recv(group[static_cast<size_t>(rank)], StepTag(tag_base, t, prev));
    const auto [recv_lo, recv_hi] = chunk_of(rank - t - 1);
    ALPA_CHECK_EQ(static_cast<int64_t>(received.size()), recv_hi - recv_lo);
    for (int64_t i = recv_lo; i < recv_hi; ++i) {
      data[static_cast<size_t>(i)] =
          received[static_cast<size_t>(i - recv_lo)] + data[static_cast<size_t>(i)];
    }
  }
  // Phase 2: all-gather of the reduced chunks.
  for (int t = 0; t < k - 1; ++t) {
    const auto [send_lo, send_hi] = chunk_of(rank + 1 - t);
    std::vector<float> payload(data.begin() + send_lo, data.begin() + send_hi);
    transport.Send(group[static_cast<size_t>(rank)], group[static_cast<size_t>(next)],
                   StepTag(tag_base, k + t, rank), std::move(payload),
                   WireBytes(static_cast<size_t>(send_hi - send_lo), dtype_bytes));
    const std::vector<float> received =
        transport.Recv(group[static_cast<size_t>(rank)], StepTag(tag_base, k + t, prev));
    const auto [recv_lo, recv_hi] = chunk_of(rank - t);
    ALPA_CHECK_EQ(static_cast<int64_t>(received.size()), recv_hi - recv_lo);
    std::copy(received.begin(), received.end(), data.begin() + recv_lo);
  }
}

void RingAllReduceAccum(Transport& transport, const std::vector<int>& group, int rank,
                        std::vector<double>& data, uint64_t tag_base, int64_t dtype_bytes) {
  const int k = static_cast<int>(group.size());
  ALPA_CHECK_LE(k, kMaxGroup);
  ALPA_CHECK_GE(rank, 0);
  ALPA_CHECK_LT(rank, k);
  if (k <= 1) {
    return;
  }
  const int64_t n = static_cast<int64_t>(data.size());
  const int next = (rank + 1) % k;
  const int prev = (rank + k - 1) % k;
  const auto chunk_of = [&](int c) {
    const int cc = ((c % k) + k) % k;
    return std::pair<int64_t, int64_t>{ChunkBound(n, k, cc), ChunkBound(n, k, cc + 1)};
  };
  const auto pack = [&](int64_t lo, int64_t hi) {
    std::vector<float> payload(static_cast<size_t>(hi - lo) * 2);
    std::memcpy(payload.data(), data.data() + lo, static_cast<size_t>(hi - lo) * sizeof(double));
    return payload;
  };
  const auto unpack = [](const std::vector<float>& payload, int64_t elements) {
    ALPA_CHECK_EQ(payload.size(), static_cast<size_t>(elements) * 2);
    std::vector<double> chunk(static_cast<size_t>(elements));
    std::memcpy(chunk.data(), payload.data(), static_cast<size_t>(elements) * sizeof(double));
    return chunk;
  };
  for (int t = 0; t < k - 1; ++t) {
    const auto [send_lo, send_hi] = chunk_of(rank - t);
    transport.Send(group[static_cast<size_t>(rank)], group[static_cast<size_t>(next)],
                   StepTag(tag_base, t, rank), pack(send_lo, send_hi),
                   WireBytes(static_cast<size_t>(send_hi - send_lo), dtype_bytes));
    const auto [recv_lo, recv_hi] = chunk_of(rank - t - 1);
    const std::vector<double> received =
        unpack(transport.Recv(group[static_cast<size_t>(rank)], StepTag(tag_base, t, prev)),
               recv_hi - recv_lo);
    for (int64_t i = recv_lo; i < recv_hi; ++i) {
      data[static_cast<size_t>(i)] =
          received[static_cast<size_t>(i - recv_lo)] + data[static_cast<size_t>(i)];
    }
  }
  for (int t = 0; t < k - 1; ++t) {
    const auto [send_lo, send_hi] = chunk_of(rank + 1 - t);
    transport.Send(group[static_cast<size_t>(rank)], group[static_cast<size_t>(next)],
                   StepTag(tag_base, k + t, rank), pack(send_lo, send_hi),
                   WireBytes(static_cast<size_t>(send_hi - send_lo), dtype_bytes));
    const auto [recv_lo, recv_hi] = chunk_of(rank - t);
    const std::vector<double> received =
        unpack(transport.Recv(group[static_cast<size_t>(rank)], StepTag(tag_base, k + t, prev)),
               recv_hi - recv_lo);
    std::copy(received.begin(), received.end(), data.begin() + recv_lo);
  }
}

std::vector<std::vector<float>> AllGatherChunks(Transport& transport,
                                                const std::vector<int>& group, int rank,
                                                const std::vector<float>& mine,
                                                uint64_t tag_base, int64_t dtype_bytes) {
  const int k = static_cast<int>(group.size());
  ALPA_CHECK_LE(k, kMaxGroup);
  std::vector<std::vector<float>> chunks(static_cast<size_t>(k));
  for (int p = 0; p < k; ++p) {
    if (p == rank) {
      continue;
    }
    transport.Send(group[static_cast<size_t>(rank)], group[static_cast<size_t>(p)],
                   StepTag(tag_base, 0, rank), mine, WireBytes(mine.size(), dtype_bytes));
  }
  for (int p = 0; p < k; ++p) {
    chunks[static_cast<size_t>(p)] =
        p == rank ? mine
                  : transport.Recv(group[static_cast<size_t>(rank)], StepTag(tag_base, 0, p));
  }
  return chunks;
}

std::vector<float> ReduceScatter(Transport& transport, const std::vector<int>& group, int rank,
                                 const std::vector<float>& data, uint64_t tag_base,
                                 int64_t dtype_bytes) {
  const int k = static_cast<int>(group.size());
  ALPA_CHECK_LE(k, kMaxGroup);
  const int64_t n = static_cast<int64_t>(data.size());
  for (int p = 0; p < k; ++p) {
    if (p == rank) {
      continue;
    }
    const int64_t lo = ChunkBound(n, k, p);
    const int64_t hi = ChunkBound(n, k, p + 1);
    std::vector<float> payload(data.begin() + lo, data.begin() + hi);
    transport.Send(group[static_cast<size_t>(rank)], group[static_cast<size_t>(p)],
                   StepTag(tag_base, 0, rank), std::move(payload),
                   WireBytes(static_cast<size_t>(hi - lo), dtype_bytes));
  }
  const int64_t lo = ChunkBound(n, k, rank);
  const int64_t hi = ChunkBound(n, k, rank + 1);
  std::vector<float> result(data.begin() + lo, data.begin() + hi);
  for (int p = 0; p < k; ++p) {
    if (p == rank) {
      continue;
    }
    const std::vector<float> received =
        transport.Recv(group[static_cast<size_t>(rank)], StepTag(tag_base, 0, p));
    ALPA_CHECK_EQ(received.size(), result.size());
    // Rank-order accumulation: own chunk first, then peers 0..k-1. Rank
    // order is the same on every device, unlike arrival order.
    for (size_t i = 0; i < result.size(); ++i) {
      result[i] += received[i];
    }
  }
  return result;
}

std::vector<std::vector<float>> AllToAll(Transport& transport, const std::vector<int>& group,
                                         int rank, std::vector<std::vector<float>> to_peer,
                                         uint64_t tag_base, int64_t dtype_bytes) {
  const int k = static_cast<int>(group.size());
  ALPA_CHECK_LE(k, kMaxGroup);
  ALPA_CHECK_EQ(static_cast<int>(to_peer.size()), k);
  std::vector<std::vector<float>> received(static_cast<size_t>(k));
  for (int p = 0; p < k; ++p) {
    if (p == rank) {
      continue;
    }
    const int64_t bytes = WireBytes(to_peer[static_cast<size_t>(p)].size(), dtype_bytes);
    transport.Send(group[static_cast<size_t>(rank)], group[static_cast<size_t>(p)],
                   StepTag(tag_base, 0, rank), std::move(to_peer[static_cast<size_t>(p)]), bytes);
  }
  for (int p = 0; p < k; ++p) {
    received[static_cast<size_t>(p)] =
        p == rank ? std::move(to_peer[static_cast<size_t>(rank)])
                  : transport.Recv(group[static_cast<size_t>(rank)], StepTag(tag_base, 0, p));
  }
  return received;
}

}  // namespace exec
}  // namespace alpa
