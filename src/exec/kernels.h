// Concrete numeric semantics for every graph op, shared by the reference
// interpreter and the sharded executor.
//
// The graph IR is a *cost* IR: backward ops carry shapes and FLOP counts,
// not true derivative formulas (PointwiseGrad reads only grad_out, loss
// labels are shape-only). The execution engine therefore assigns each
// OpType a fixed, deterministic per-cell semantic and uses the SAME kernel
// code on both sides of the oracle. What the oracle then validates is
// exactly the machinery this PR introduces — sharding layouts, collectives,
// cross-mesh resharding, instruction interleavings — because any data
// routed to the wrong shard, device, or microbatch changes cell values.
//
// Every kernel is *region-restricted*: it fills an arbitrary index box of
// the output, and each output cell's value depends only on operand contents
// (never on the box), so a sharded evaluation is bit-identical to a full
// one by construction. The only reduction whose grouping can differ is an
// einsum contraction split across devices (ring all-reduce mode), exposed
// explicitly through the [lo, hi) contraction range.
#ifndef SRC_EXEC_KERNELS_H_
#define SRC_EXEC_KERNELS_H_

#include <vector>

#include "src/exec/host_tensor.h"
#include "src/graph/operator.h"

namespace alpa {
namespace exec {

// Learning rate of the fixed SGD rule kUpdate applies.
inline constexpr double kLearningRate = 0.05;

// Fills out->data (resized here) with the values of `op`'s output over
// out->box, reading full operand tensors. Handles every OpType except
// kInput/kParameter (generated, see host_tensor.h). CHECK-fails on operand
// arity/shape violations.
void EvalOpRegion(const Operator& op, const std::vector<const HostTensor*>& operands,
                  TileData* out);

// kEinsum only: like EvalOpRegion, but restricts the FIRST contraction
// label (ContractionLabels()[0] order) to the range [lo, hi) — the partial
// a device computes before a ring all-reduce combines the chunks. The full
// range reproduces EvalOpRegion bit for bit; einsums without contraction
// labels require the degenerate range [0, 1).
void EvalEinsumRegion(const Operator& op, const std::vector<const HostTensor*>& operands,
                      int64_t contraction_lo, int64_t contraction_hi, TileData* out);

// The double-precision accumulators behind EvalEinsumRegion, before the
// per-cell rounding to f32. The ring path combines these across devices
// (RingAllReduceAccum) and rounds once after the reduction, so splitting a
// contraction costs one f32 rounding total — the same budget the reference
// interpreter spends — instead of one per partial.
void EvalEinsumPartials(const Operator& op, const std::vector<const HostTensor*>& operands,
                        int64_t contraction_lo, int64_t contraction_hi, const Box& box,
                        std::vector<double>* out);

// The original per-element odometer loop behind EvalEinsumPartials. Still
// the execution path for einsums the GEMM lowering cannot express (single
// operand, empty contraction, duplicate output labels), and the baseline
// the speed benchmark and the lowering's bit-exactness tests compare
// against. Identical numeric contract to EvalEinsumPartials.
void EvalEinsumPartialsReference(const Operator& op,
                                 const std::vector<const HostTensor*>& operands,
                                 int64_t contraction_lo, int64_t contraction_hi, const Box& box,
                                 std::vector<double>* out);

// The bounded squashing nonlinearity kElementwise applies to its operand
// sum: s / (1 + |s|/4). Keeps every activation in (-4, 4) so arbitrarily
// deep compositions stay in comfortable float range.
float Squash(double s);

}  // namespace exec
}  // namespace alpa

#endif  // SRC_EXEC_KERNELS_H_
