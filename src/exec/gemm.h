// Cache-blocked, register-tiled GEMM microkernels for the execution engine.
//
// Two variants share the same blocking structure (packed column panels of B,
// small row tiles of A, an auto-vectorizable `#pragma omp simd` inner loop,
// no OpenMP runtime dependency):
//
//  - GemmF64Acc: f32 inputs, f64 accumulation, one accumulator per output
//    cell that lives across the ENTIRE k loop in ascending-k order. Because
//    the product of two f32 values is exact in f64 (24+24 mantissa bits fit
//    in 53) and the per-cell addition chain is never reassociated, the
//    result is bit-identical to the naive sequential triple loop — and
//    immune to FMA contraction. This is the kernel the deterministic oracle
//    rides on: einsum contractions lower onto it without changing a single
//    output bit.
//
//  - SgemmF32: f32 accumulation for raw-speed measurement (bench) and for
//    callers that do not need the oracle's accumulation-order contract.
//    Supports transposed operands and leading dimensions.
//
// Neither kernel allocates when the caller passes scratch; both fall back to
// internal buffers otherwise.
#ifndef SRC_EXEC_GEMM_H_
#define SRC_EXEC_GEMM_H_

#include <cstdint>
#include <vector>

namespace alpa {
namespace exec {

// Scratch buffers reusable across calls (packing panels). Optional.
struct GemmScratch {
  std::vector<float> pack;
};

// C (f64, m x n, row-major, contiguous) += A (f32, m x k, row-major,
// contiguous) * B (f32, k x n, row-major, contiguous). Each C cell is
// accumulated in ascending k order with a single f64 accumulator, so the
// result is bit-identical to
//   for (i) for (j) for (l) c[i][j] += (double)a[i][l] * (double)b[l][j];
void GemmF64Acc(int64_t m, int64_t n, int64_t k, const float* a, const float* b, double* c,
                GemmScratch* scratch = nullptr);

// C (f32, m x n, leading dim ldc) = A * B with float accumulators.
// trans_a: A is stored k x m (leading dim lda), otherwise m x k.
// trans_b: B is stored n x k (leading dim ldb), otherwise k x n.
void SgemmF32(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k, const float* a,
              int64_t lda, const float* b, int64_t ldb, float* c, int64_t ldc,
              GemmScratch* scratch = nullptr);

}  // namespace exec
}  // namespace alpa

#endif  // SRC_EXEC_GEMM_H_
