#include "src/exec/profiler.h"

#include <algorithm>

#include "src/support/logging.h"

namespace alpa {
namespace exec {

void ExecutionProfiler::Report(const DeviceTimingReport& report) {
  ALPA_CHECK_GE(report.stage, 0);
  std::lock_guard<std::mutex> lock(mu_);
  if (static_cast<size_t>(report.stage) >= stages_.size()) {
    stages_.resize(static_cast<size_t>(report.stage) + 1);
  }
  StageTiming& stage = stages_[static_cast<size_t>(report.stage)];
  stage.stage = report.stage;
  for (int p = 0; p < kNumExecPhases; ++p) {
    stage.phase_seconds[p] = std::max(stage.phase_seconds[p], report.seconds[p]);
  }
  ++stage.num_devices;
}

std::vector<StageTiming> ExecutionProfiler::stage_timings() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<StageTiming> out;
  out.reserve(stages_.size());
  for (const StageTiming& stage : stages_) {
    if (stage.num_devices > 0) {
      out.push_back(stage);
    }
  }
  return out;
}

}  // namespace exec
}  // namespace alpa
