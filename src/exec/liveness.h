// Static tensor liveness over a device's mesh instruction list.
//
// The executor derives, per device, which buffer each instruction defines
// and uses (activations, received boundary tiles, relayed transits,
// gradient accumulators). ComputeLiveness turns that def/use stream into
// closed live intervals in instruction-index time. The intervals feed two
// consumers: the arena planner (offset assignment + planned peak bytes) and
// the runtime release lists (free every buffer right after its statically
// last use instead of holding gradients and backward intermediates to the
// end of the iteration).
#ifndef SRC_EXEC_LIVENESS_H_
#define SRC_EXEC_LIVENESS_H_

#include <cstdint>
#include <vector>

namespace alpa {
namespace exec {

// Identity of a device-resident buffer. `op` is a stage op id for computed
// values, or a full-graph op id for relayed transit tiles (disambiguated by
// `transit`). microbatch -1 = iteration lifetime (gradient accumulators).
struct TensorRef {
  int op = -1;
  int microbatch = -1;
  bool transit = false;

  friend bool operator==(const TensorRef&, const TensorRef&) = default;
  friend auto operator<=>(const TensorRef&, const TensorRef&) = default;
};

struct TensorDef {
  TensorRef ref;
  int64_t bytes = 0;
};

// Buffers one instruction defines and uses. A buffer both defined and used
// by the same instruction (incremental gradient fold) is live only there.
struct InstructionAccess {
  std::vector<TensorDef> defs;
  std::vector<TensorRef> uses;
};

// Closed interval [def, last_use] in instruction indices.
struct LiveInterval {
  TensorRef ref;
  int def = 0;
  int last_use = 0;
  int64_t bytes = 0;
};

// Scans `accesses` in program order. def = index of the first definition;
// last_use = the latest index that defines OR uses the buffer. A use before
// any def opens the interval at the use (defensive; the executor never
// emits one). Results are ordered by (def, ref).
std::vector<LiveInterval> ComputeLiveness(const std::vector<InstructionAccess>& accesses);

// Max over instruction indices of the bytes of all intervals covering it.
// The lower bound any offset assignment must beat.
int64_t PeakLiveBytes(const std::vector<LiveInterval>& intervals);

// release[i] = refs whose last_use is i: the buffers a worker frees right
// after executing instruction i. `num_instructions` sizes the result.
std::vector<std::vector<TensorRef>> ReleaseLists(const std::vector<LiveInterval>& intervals,
                                                 int num_instructions);

}  // namespace exec
}  // namespace alpa

#endif  // SRC_EXEC_LIVENESS_H_
