// The multi-threaded SPMD pipeline executor (6).
//
// ExecutePipeline runs a compiled pipeline end to end on real float
// tensors: one worker thread per logical device executes its mesh's static
// instruction list (EmitPipelinePrograms order) over per-device shard
// buffers, moving every tensor that crosses a thread boundary through the
// shared-memory Transport — intra-mesh tile gathers and ring all-reduces as
// collectives, stage-boundary activations/gradients as cross-mesh reshard
// programs mirroring PlanCrossMeshResharding.
//
// Under ReductionMode::kDeterministic each device gathers full operands and
// evaluates its output tile with the shared per-cell kernels, so the result
// is bit-identical to the single-device reference interpreter — the numeric
// oracle for the data-movement machinery. kRing additionally splits
// eligible einsum contractions across the mesh and combines partials with a
// real ring all-reduce, matching the reference to ~1e-5 relative.
#ifndef SRC_EXEC_EXECUTOR_H_
#define SRC_EXEC_EXECUTOR_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/exec/host_tensor.h"
#include "src/exec/profiler.h"
#include "src/graph/graph.h"
#include "src/inter/inter_pass.h"
#include "src/mesh/cluster_spec.h"
#include "src/runtime/cross_mesh.h"
#include "src/runtime/instruction.h"
#include "src/runtime/simulator.h"
#include "src/support/status.h"

namespace alpa {
namespace exec {

enum class ReductionMode {
  // Gather full operands, compute own tile: bit-identical to the reference.
  kDeterministic,
  // Split eligible einsum contractions across the mesh and ring-all-reduce
  // the partials: real collective traffic, ~1e-5 relative error.
  kRing,
};

struct ExecOptions {
  ReductionMode reduction = ReductionMode::kDeterministic;
  uint64_t data_seed = 0;
  // kSignalOnly cannot carry tensors and is rejected.
  ReshardStrategy reshard = ReshardStrategy::kLocalAllGather;
};

// Memory accounting of one logical device, in logical dtype bytes
// (BoxElements x DTypeBytes; the host stores every shard as f32).
struct DeviceMemoryStats {
  int stage = -1;
  int rank = -1;   // Rank within the stage mesh.
  int device = -1; // Global device id.
  // Arena-plan high water: the slab size the best-fit offset assignment
  // needs for the statically derived live intervals.
  int64_t planned_bytes = 0;
  // Sum-of-live lower bound of the same intervals (PeakLiveBytes).
  int64_t planned_peak_live_bytes = 0;
  // Runtime high water of the sharded buffers the plan covers: computed
  // values, relayed transits, and gradient accumulators.
  int64_t measured_peak_bytes = 0;
  // Runtime high water of the deterministic oracle's gathered/generated
  // full tensors (full-operand caches) — overhead of the bit-exact
  // execution strategy, outside the sharded memory model.
  int64_t oracle_peak_bytes = 0;
  // Analytical estimate from the compiled stage: weights + max-in-flight
  // activations + working set.
  int64_t modeled_bytes = 0;
};

struct ExecResult {
  std::vector<float> microbatch_loss;
  // Parameter name -> accumulated gradient / post-step value, assembled
  // from the owning mesh's shards. Keys match ReferenceResult.
  std::map<std::string, HostTensor> weight_grads;
  std::map<std::string, HostTensor> updated_params;
  // Wire bytes moved through the transport, by traffic class.
  int64_t total_bytes = 0;
  int64_t cross_mesh_bytes = 0;
  int64_t collective_bytes = 0;
  int64_t total_messages = 0;
  int num_devices = 0;
  double wall_seconds = 0.0;
  // Per-device memory accounting, ordered by (stage, rank).
  std::vector<DeviceMemoryStats> device_memory;
  // Measured per-stage phase times (max across each stage's devices).
  std::vector<StageTiming> stage_timings;
};

// Runs `pipeline` (compiled from `graph` on `cluster`) with the schedule
// and microbatch count in `sim_input` — the same PipelineSimInput the
// simulator consumes, so the two engines cannot drift on schedule or stage
// placement. Errors: kInvalidArgument (infeasible pipeline, stage/schedule
// mismatch, kSignalOnly resharding, missing layer tags).
StatusOr<ExecResult> ExecutePipeline(const Graph& graph, const CompiledPipeline& pipeline,
                                     const ClusterSpec& cluster,
                                     const PipelineSimInput& sim_input,
                                     const ExecOptions& options);

// Fills MeshInstruction::tensor_ids of send/recv instructions with the
// full-graph producer ids crossing each stage boundary (activations on the
// forward edges, gradients on the backward edges), as derived from the
// stages' subgraph boundaries. ExecutePipeline performs the same derivation
// internally; this exposes it for inspection and tests.
void AnnotatePrograms(const Graph& graph, const CompiledPipeline& pipeline,
                      std::vector<MeshProgram>* programs);

}  // namespace exec
}  // namespace alpa

#endif  // SRC_EXEC_EXECUTOR_H_
