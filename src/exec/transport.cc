#include "src/exec/transport.h"

#include <utility>

#include "src/support/logging.h"

namespace alpa {
namespace exec {

uint64_t MakeTag(int kind, int64_t id, int microbatch, int64_t aux) {
  ALPA_CHECK_GE(kind, 0);
  ALPA_CHECK_LT(kind, 1 << 3);
  ALPA_CHECK_GE(id, 0);
  ALPA_CHECK_LT(id, int64_t{1} << 21);
  ALPA_CHECK_GE(microbatch, -1);  // -1: not microbatch-scoped (weight update).
  ALPA_CHECK_LT(microbatch, (1 << 10) - 1);
  ALPA_CHECK_GE(aux, 0);
  ALPA_CHECK_LT(aux, int64_t{1} << 30);
  const uint64_t mb = static_cast<uint64_t>(microbatch + 1);
  return (static_cast<uint64_t>(kind) << 61) | (static_cast<uint64_t>(id) << 40) | (mb << 30) |
         static_cast<uint64_t>(aux);
}

Transport::Transport(int num_devices)
    : mailboxes_(static_cast<size_t>(num_devices)),
      link_bytes_(static_cast<size_t>(num_devices) * static_cast<size_t>(num_devices)) {
  ALPA_CHECK_GT(num_devices, 0);
  for (auto& box : mailboxes_) {
    box = std::make_unique<Mailbox>();
  }
  for (auto& counter : link_bytes_) {
    counter.store(0, std::memory_order_relaxed);
  }
}

void Transport::Send(int src, int dst, uint64_t tag, std::vector<float> payload,
                     int64_t wire_bytes, Channel channel) {
  ALPA_CHECK_GE(src, 0);
  ALPA_CHECK_LT(src, num_devices());
  ALPA_CHECK_GE(dst, 0);
  ALPA_CHECK_LT(dst, num_devices());
  if (wire_bytes < 0) {
    wire_bytes = static_cast<int64_t>(payload.size()) * 4;
  }
  link_bytes_[static_cast<size_t>(src) * static_cast<size_t>(num_devices()) +
              static_cast<size_t>(dst)]
      .fetch_add(wire_bytes, std::memory_order_relaxed);
  channel_bytes_[static_cast<size_t>(channel)].fetch_add(wire_bytes, std::memory_order_relaxed);
  total_messages_.fetch_add(1, std::memory_order_relaxed);
  Mailbox& box = *mailboxes_[static_cast<size_t>(dst)];
  {
    std::lock_guard<std::mutex> lock(box.mu);
    box.messages.emplace(tag, std::move(payload));
  }
  box.cv.notify_all();
}

std::vector<float> Transport::Recv(int dst, uint64_t tag) {
  ALPA_CHECK_GE(dst, 0);
  ALPA_CHECK_LT(dst, num_devices());
  Mailbox& box = *mailboxes_[static_cast<size_t>(dst)];
  std::unique_lock<std::mutex> lock(box.mu);
  box.cv.wait(lock, [&] { return box.messages.count(tag) > 0; });
  auto it = box.messages.find(tag);
  std::vector<float> payload = std::move(it->second);
  box.messages.erase(it);
  return payload;
}

int64_t Transport::LinkBytes(int src, int dst) const {
  return link_bytes_[static_cast<size_t>(src) * static_cast<size_t>(num_devices()) +
                     static_cast<size_t>(dst)]
      .load(std::memory_order_relaxed);
}

int64_t Transport::TotalBytes() const {
  int64_t total = 0;
  for (const auto& counter : link_bytes_) {
    total += counter.load(std::memory_order_relaxed);
  }
  return total;
}

int64_t Transport::ChannelBytes(Channel channel) const {
  return channel_bytes_[static_cast<size_t>(channel)].load(std::memory_order_relaxed);
}

void Transport::ResetCounters() {
  for (auto& counter : link_bytes_) {
    counter.store(0, std::memory_order_relaxed);
  }
  for (auto& counter : channel_bytes_) {
    counter.store(0, std::memory_order_relaxed);
  }
  total_messages_.store(0, std::memory_order_relaxed);
}

}  // namespace exec
}  // namespace alpa
