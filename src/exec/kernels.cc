#include "src/exec/kernels.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>

#include "src/exec/arena.h"
#include "src/exec/gemm.h"
#include "src/support/logging.h"

namespace alpa {
namespace exec {

namespace {

// Right-aligned broadcast/resize map: operand index for output index
// `out_idx` along aligned dims (input dim d_in pairs with output dim
// d_in + rank_delta). Index map in_i = out_i * in_dim / out_dim covers
// identity (equal dims), broadcast/upsample (in < out) and strided
// subsample (in > out) with one integer formula.
int64_t MappedOperandIndex(const TensorShape& in_shape, const TensorShape& out_shape,
                           const std::vector<int64_t>& out_index) {
  const int rank_delta = out_shape.rank() - in_shape.rank();
  ALPA_CHECK_GE(rank_delta, 0);
  int64_t linear = 0;
  for (int d = 0; d < in_shape.rank(); ++d) {
    const int64_t out_dim = out_shape.dim(d + rank_delta);
    const int64_t in_i = out_index[static_cast<size_t>(d + rank_delta)] * in_shape.dim(d) / out_dim;
    linear = linear * in_shape.dim(d) + in_i;
  }
  return linear;
}

// The operand's index step along the output's innermost dim, or -1 when the
// map is irregular there (in_dim neither matching nor 1). Step 1: aligned
// identity; step 0: broadcast (or a scalar operand).
int64_t InnerStep(const TensorShape& in_shape, const TensorShape& out_shape) {
  if (in_shape.rank() == 0) {
    return 0;
  }
  const int64_t in_last = in_shape.dim(in_shape.rank() - 1);
  const int64_t out_last = out_shape.dim(out_shape.rank() - 1);
  if (in_last == out_last) {
    return 1;
  }
  if (in_last == 1) {
    return 0;
  }
  return -1;
}

void EvalElementwise(const Operator& op, const std::vector<const HostTensor*>& operands,
                     TileData* out) {
  // Fast path: every operand regular along the innermost dim — one mapped
  // base index per run, then a flat strided loop over independent cells.
  bool regular = op.shape.rank() > 0;
  for (const HostTensor* operand : operands) {
    regular = regular && InnerStep(operand->shape(), op.shape) >= 0;
  }
  if (regular) {
    const size_t n_ops = operands.size();
    std::vector<const float*> base(n_ops);
    std::vector<int64_t> step(n_ops);
    for (size_t t = 0; t < n_ops; ++t) {
      step[t] = InnerStep(operands[t]->shape(), op.shape);
    }
    std::vector<int64_t> scratch;
    ForEachRun(out->box, &scratch, [&](int64_t k, const std::vector<int64_t>& index, int64_t len) {
      for (size_t t = 0; t < n_ops; ++t) {
        base[t] = operands[t]->data() + MappedOperandIndex(operands[t]->shape(), op.shape, index);
      }
      float* o = out->data.data() + k;
      for (int64_t i = 0; i < len; ++i) {
        double s = 0.0;
        for (size_t t = 0; t < n_ops; ++t) {
          s += base[t][i * step[t]];
        }
        o[i] = Squash(s);
      }
    });
    return;
  }
  size_t k = 0;
  ForEachIndex(out->box, [&](const std::vector<int64_t>& index) {
    double s = 0.0;
    for (const HostTensor* operand : operands) {
      s += operand->data()[MappedOperandIndex(operand->shape(), op.shape, index)];
    }
    out->data[k++] = Squash(s);
  });
}

void EvalReduce(const Operator& op, const HostTensor& in, TileData* out) {
  const int rank_delta = in.shape().rank() - op.shape.rank();
  ALPA_CHECK_GE(rank_delta, 0);
  // Preimage box: unmatched leading input dims range fully; aligned dims
  // cover [i*in/out, (i+1)*in/out). Hoisted out of the cell loop along with
  // the iteration scratch so the inner loops allocate nothing.
  Box pre(static_cast<size_t>(in.shape().rank()));
  for (int d = 0; d < rank_delta; ++d) {
    pre[static_cast<size_t>(d)] = {0, in.shape().dim(d)};
  }
  std::vector<int64_t> pre_scratch;
  size_t k = 0;
  ForEachIndex(out->box, [&](const std::vector<int64_t>& index) {
    for (int d = rank_delta; d < in.shape().rank(); ++d) {
      const int64_t out_dim = op.shape.dim(d - rank_delta);
      const int64_t i = index[static_cast<size_t>(d - rank_delta)];
      pre[static_cast<size_t>(d)] = {i * in.shape().dim(d) / out_dim,
                                     (i + 1) * in.shape().dim(d) / out_dim};
    }
    // Row-major run walk preserves the reference's sequential f64 addition
    // order exactly; the pointer loop just skips per-element index math.
    double sum = 0.0;
    int64_t count = 0;
    ForEachRun(pre, &pre_scratch,
               [&](int64_t, const std::vector<int64_t>& pre_index, int64_t len) {
                 const float* p = in.data() + LinearIndexOf(in.shape(), pre_index);
                 for (int64_t i = 0; i < len; ++i) {
                   sum += p[i];
                 }
                 count += len;
               });
    out->data[k++] = static_cast<float>(count > 0 ? sum / static_cast<double>(count) : 0.0);
  });
}

// Softmax and layer norm share the row decomposition: per-row statistics
// are computed over the FULL last dim regardless of the output box, so a
// device holding a last-dim shard still produces bit-identical cells.
void EvalRowNormalize(const Operator& op, const HostTensor& in, TileData* out) {
  ALPA_CHECK_GE(op.shape.rank(), 1);
  ALPA_CHECK(in.shape() == op.shape);
  const int64_t row = op.shape.dim(op.shape.rank() - 1);
  Box lead(out->box.begin(), out->box.end() - 1);
  const auto [col_lo, col_hi] = out->box.back();
  size_t k = 0;
  std::vector<int64_t> full_index(static_cast<size_t>(op.shape.rank()));
  ForEachIndex(lead, [&](const std::vector<int64_t>& lead_index) {
    std::copy(lead_index.begin(), lead_index.end(), full_index.begin());
    full_index.back() = 0;
    const int64_t base = LinearIndexOf(in.shape(), full_index);
    const float* x = in.data() + base;
    if (op.type == OpType::kSoftmax) {
      double max = x[0];
      for (int64_t c = 1; c < row; ++c) {
        max = std::max<double>(max, x[c]);
      }
      double denom = 0.0;
      for (int64_t c = 0; c < row; ++c) {
        denom += std::exp(static_cast<double>(x[c]) - max);
      }
      for (int64_t c = col_lo; c < col_hi; ++c) {
        out->data[k++] = static_cast<float>(std::exp(static_cast<double>(x[c]) - max) / denom);
      }
    } else {
      double mean = 0.0;
      for (int64_t c = 0; c < row; ++c) {
        mean += x[c];
      }
      mean /= static_cast<double>(row);
      double var = 0.0;
      for (int64_t c = 0; c < row; ++c) {
        const double d = static_cast<double>(x[c]) - mean;
        var += d * d;
      }
      var /= static_cast<double>(row);
      const double inv = 1.0 / std::sqrt(var + 1e-5);
      for (int64_t c = col_lo; c < col_hi; ++c) {
        out->data[k++] = static_cast<float>((static_cast<double>(x[c]) - mean) * inv);
      }
    }
  });
}

void EvalEmbedding(const Operator& op, const HostTensor& ids, const HostTensor& table,
                   TileData* out) {
  ALPA_CHECK_EQ(table.shape().rank(), 2);
  const int64_t vocab = table.shape().dim(0);
  const int64_t model = table.shape().dim(1);
  // Runs along the model dim are row copies out of the table; the id index
  // buffer is hoisted and reused across rows.
  std::vector<int64_t> scratch;
  std::vector<int64_t> id_index;
  const int64_t col_lo = out->box.empty() ? 0 : out->box.back().first;
  ForEachRun(out->box, &scratch, [&](int64_t k, const std::vector<int64_t>& index, int64_t len) {
    id_index.assign(index.begin(), index.end() - (index.empty() ? 0 : 1));
    const int64_t token = LinearIndexOf(ids.shape(), id_index);
    const int64_t id = static_cast<int64_t>(ids.data()[token]) % vocab;
    std::memcpy(out->data.data() + k, table.data() + id * model + col_lo,
                sizeof(float) * static_cast<size_t>(len));
  });
}

void EvalEmbeddingGrad(const Operator& op, const HostTensor& ids, const HostTensor& grad_out,
                       TileData* out) {
  ALPA_CHECK_EQ(op.shape.rank(), 2);
  const int64_t vocab = op.shape.dim(0);
  const int64_t model = op.shape.dim(1);
  const int64_t tokens = ids.shape().elements();
  ALPA_CHECK_EQ(grad_out.shape().elements(), tokens * model);
  // Scatter form of the reference's per-cell gather: one ascending pass
  // over the tokens, accumulating each token's grad row into its vocab
  // row's f64 accumulators. Per output cell the additions happen in the
  // exact same ascending-t order the reference uses, so the result is
  // bit-identical — at O(tokens * model) instead of O(vocab * model *
  // tokens).
  const auto [v_lo, v_hi] = out->box[0];
  const auto [m_lo, m_hi] = out->box[1];
  const int64_t m_w = m_hi - m_lo;
  std::vector<double> acc(static_cast<size_t>(std::max<int64_t>(0, (v_hi - v_lo) * m_w)), 0.0);
  for (int64_t t = 0; t < tokens; ++t) {
    const int64_t v = static_cast<int64_t>(ids.data()[t]) % vocab;
    if (v < v_lo || v >= v_hi) {
      continue;
    }
    double* row = acc.data() + (v - v_lo) * m_w;
    const float* g = grad_out.data() + t * model + m_lo;
#pragma omp simd
    for (int64_t m = 0; m < m_w; ++m) {
      row[m] += static_cast<double>(g[m]);
    }
  }
  for (size_t i = 0; i < acc.size(); ++i) {
    out->data[i] = static_cast<float>(acc[i]);
  }
}

// Token t lands in expert e = t % E, slot c = t / E; slots past the
// capacity drop (and the inverse fills dropped tokens with zero).
void EvalMoeDispatch(const Operator& op, const HostTensor& x, TileData* out) {
  ALPA_CHECK_EQ(op.shape.rank(), 3);
  const int64_t experts = op.shape.dim(0);
  const int64_t model = op.shape.dim(2);
  ALPA_CHECK_EQ(x.shape().elements() % model, 0);
  const int64_t tokens = x.shape().elements() / model;
  const int64_t col_lo = out->box.back().first;
  std::vector<int64_t> scratch;
  ForEachRun(out->box, &scratch, [&](int64_t k, const std::vector<int64_t>& index, int64_t len) {
    const int64_t token = index[1] * experts + index[0];
    if (token < tokens) {
      std::memcpy(out->data.data() + k, x.data() + token * model + col_lo,
                  sizeof(float) * static_cast<size_t>(len));
    } else {
      std::memset(out->data.data() + k, 0, sizeof(float) * static_cast<size_t>(len));
    }
  });
}

void EvalMoeCombine(const Operator& op, const HostTensor& expert_out, TileData* out) {
  ALPA_CHECK_EQ(expert_out.shape().rank(), 3);
  const int64_t experts = expert_out.shape().dim(0);
  const int64_t capacity = expert_out.shape().dim(1);
  const int64_t model = expert_out.shape().dim(2);
  ALPA_CHECK_EQ(op.shape.elements() % model, 0);
  // Within a run the full-tensor linear index just increments, so token/m
  // decompose incrementally without per-element index vectors.
  std::vector<int64_t> scratch;
  ForEachRun(out->box, &scratch, [&](int64_t k, const std::vector<int64_t>& index, int64_t len) {
    int64_t linear = LinearIndexOf(op.shape, index);
    for (int64_t i = 0; i < len; ++i, ++linear) {
      const int64_t token = linear / model;
      const int64_t m = linear % model;
      const int64_t e = token % experts;
      const int64_t c = token / experts;
      out->data[static_cast<size_t>(k + i)] =
          c < capacity ? expert_out.data()[(e * capacity + c) * model + m] : 0.0f;
    }
  });
}

// Mean of squares over operand 0. The labels operand is shape-only in this
// IR (integer class ids with no numeric loss formula attached), and the
// backward builder never emits gradients for kInput operands, so the loss
// reads only the logits. The f64 accumulation is deliberately sequential —
// never vectorized or reassociated.
void EvalLoss(const HostTensor& logits, TileData* out) {
  double sum = 0.0;
  const int64_t n = logits.shape().elements();
  for (int64_t i = 0; i < n; ++i) {
    const double x = logits.data()[i];
    sum += x * x;
  }
  out->data[0] = static_cast<float>(n > 0 ? sum / static_cast<double>(n) : 0.0);
}

void EvalUpdate(const Operator& op, const HostTensor& param, const HostTensor& grad,
                TileData* out) {
  ALPA_CHECK(param.shape() == op.shape);
  ALPA_CHECK(grad.shape() == op.shape);
  std::vector<int64_t> scratch;
  ForEachRun(out->box, &scratch, [&](int64_t k, const std::vector<int64_t>& index, int64_t len) {
    const int64_t base = LinearIndexOf(op.shape, index);
    const float* p = param.data() + base;
    const float* g = grad.data() + base;
    float* o = out->data.data() + k;
    for (int64_t i = 0; i < len; ++i) {
      o[i] = static_cast<float>(static_cast<double>(p[i]) -
                                kLearningRate * static_cast<double>(g[i]));
    }
  });
}

// --- Einsum -> GEMM lowering ---------------------------------------------
//
// Classifies each output label by which operands carry it (both: batch,
// operand 0 only: M, operand 1 only: N), flattens the contraction labels
// into a single K axis in ContractionLabels() odometer order (first label
// restricted to [lo, hi)), packs A/B panels through precomputed offset
// tables, and runs the f64-accumulation GEMM. Because flattened-K ascending
// IS the reference odometer order and GemmF64Acc keeps one f64 accumulator
// per cell across all of K, the lowering is bit-identical to the reference
// loop for every lowerable einsum.
bool TryEinsumGemm(const Operator& op, const std::vector<const HostTensor*>& operands,
                   int64_t contraction_lo, int64_t contraction_hi, const Box& box,
                   std::vector<double>* out) {
  const EinsumSpec& spec = op.einsum;
  if (operands.size() != 2) {
    return false;
  }
  const std::string contraction = spec.ContractionLabels();
  if (contraction.empty()) {
    return false;  // Assignment (not +=) semantics; keep the reference path.
  }
  if (box.size() != spec.output.size()) {
    return false;
  }
  // Duplicate output labels make a cell's operand index depend on the LAST
  // occurrence only (label_value overwrite in the reference); the offset
  // tables below sum over occurrences instead, so bail out.
  bool seen[256] = {false};
  for (char l : spec.output) {
    const unsigned char u = static_cast<unsigned char>(l);
    if (seen[u]) {
      return false;
    }
    seen[u] = true;
  }

  // Per-operand stride per label, summed over repeated occurrences within
  // the operand (matches label_value-based indexing for traces).
  int64_t stride_of[2][256] = {{0}, {0}};
  bool has[2][256] = {{false}, {false}};
  for (int t = 0; t < 2; ++t) {
    const std::string& labels = spec.operands[static_cast<size_t>(t)];
    ALPA_CHECK_EQ(operands[static_cast<size_t>(t)]->shape().rank(),
                  static_cast<int>(labels.size()));
    int64_t stride = 1;
    for (int d = static_cast<int>(labels.size()) - 1; d >= 0; --d) {
      const unsigned char u = static_cast<unsigned char>(labels[static_cast<size_t>(d)]);
      stride_of[t][u] += stride;
      has[t][u] = true;
      stride *= operands[static_cast<size_t>(t)]->shape().dim(d);
    }
  }

  // Output box strides (row-major over the box extents).
  const size_t out_rank = box.size();
  std::vector<int64_t> box_stride(out_rank, 1);
  for (int d = static_cast<int>(out_rank) - 2; d >= 0; --d) {
    box_stride[static_cast<size_t>(d)] =
        box_stride[static_cast<size_t>(d + 1)] * (box[static_cast<size_t>(d + 1)].second -
                                                  box[static_cast<size_t>(d + 1)].first);
  }
  struct OutDim {
    int64_t lo, hi, bstride;
    unsigned char label;
  };
  std::vector<OutDim> m_dims, n_dims, b_dims;
  for (size_t d = 0; d < out_rank; ++d) {
    const unsigned char u = static_cast<unsigned char>(spec.output[d]);
    const OutDim od{box[d].first, box[d].second, box_stride[d], u};
    if (has[0][u] && has[1][u]) {
      b_dims.push_back(od);
    } else if (has[0][u]) {
      m_dims.push_back(od);
    } else if (has[1][u]) {
      n_dims.push_back(od);
    } else {
      return false;  // Output label no operand carries.
    }
  }

  const int64_t cells = std::max<int64_t>(1, BoxElements(box));
  out->assign(static_cast<size_t>(cells), 0.0);
  const int64_t first_extent = spec.Extent(contraction[0]);
  ALPA_CHECK_GE(contraction_lo, 0);
  ALPA_CHECK_LE(contraction_hi, first_extent);
  if (contraction_hi <= contraction_lo || BoxElements(box) == 0) {
    return true;  // Empty contraction range (or box): all sums stay 0.
  }

  // Flattened K: odometer over contraction labels, last label fastest.
  std::vector<std::pair<int64_t, int64_t>> ranges;
  int64_t k_total = 1;
  for (size_t c = 0; c < contraction.size(); ++c) {
    const int64_t lo = c == 0 ? contraction_lo : 0;
    const int64_t hi = c == 0 ? contraction_hi : spec.Extent(contraction[c]);
    ranges.push_back({lo, hi});
    k_total *= hi - lo;
  }
  std::vector<int64_t> ka(static_cast<size_t>(k_total));
  std::vector<int64_t> kb(static_cast<size_t>(k_total));
  {
    std::vector<int64_t> val(contraction.size());
    for (size_t c = 0; c < contraction.size(); ++c) {
      val[c] = ranges[c].first;
    }
    for (int64_t kk = 0; kk < k_total; ++kk) {
      int64_t oa = 0;
      int64_t ob = 0;
      for (size_t c = 0; c < contraction.size(); ++c) {
        const unsigned char u = static_cast<unsigned char>(contraction[c]);
        oa += stride_of[0][u] * val[c];
        ob += stride_of[1][u] * val[c];
      }
      ka[static_cast<size_t>(kk)] = oa;
      kb[static_cast<size_t>(kk)] = ob;
      for (size_t c = contraction.size(); c-- > 0;) {
        if (++val[c] < ranges[c].second) {
          break;
        }
        val[c] = ranges[c].first;
      }
    }
  }

  // Enumerate a dim group over its box ranges: operand offsets + output box
  // offsets per flattened position.
  const auto enumerate = [](const std::vector<OutDim>& dims, const int64_t* strides,
                            std::vector<int64_t>* op_off, std::vector<int64_t>* out_off) {
    int64_t count = 1;
    for (const OutDim& d : dims) {
      count *= d.hi - d.lo;
    }
    op_off->resize(static_cast<size_t>(count));
    out_off->resize(static_cast<size_t>(count));
    std::vector<int64_t> val(dims.size());
    for (size_t d = 0; d < dims.size(); ++d) {
      val[d] = dims[d].lo;
    }
    for (int64_t i = 0; i < count; ++i) {
      int64_t oo = 0;
      int64_t bo = 0;
      for (size_t d = 0; d < dims.size(); ++d) {
        oo += strides[dims[d].label] * val[d];
        bo += dims[d].bstride * (val[d] - dims[d].lo);
      }
      (*op_off)[static_cast<size_t>(i)] = oo;
      (*out_off)[static_cast<size_t>(i)] = bo;
      for (size_t d = dims.size(); d-- > 0;) {
        if (++val[d] < dims[d].hi) {
          break;
        }
        val[d] = dims[d].lo;
      }
    }
    return count;
  };

  std::vector<int64_t> ma, om, nb, on;
  const int64_t m_count = enumerate(m_dims, stride_of[0], &ma, &om);
  const int64_t n_count = enumerate(n_dims, stride_of[1], &nb, &on);

  // Batch offsets need BOTH operands' strides; enumerate twice plus output.
  std::vector<int64_t> b0, b1, bo, unused;
  const int64_t b_count = enumerate(b_dims, stride_of[0], &b0, &bo);
  enumerate(b_dims, stride_of[1], &b1, &unused);

  const float* d0 = operands[0]->data();
  const float* d1 = operands[1]->data();
  // Pack panels and the f64 accumulator live in a per-thread arena: one
  // aligned slab reused across every einsum the worker evaluates, so the
  // steady-state hot loop never touches the system allocator.
  thread_local Arena arena;
  thread_local GemmScratch scratch;
  arena.Reset();
  float* a_pack = arena.AllocFloats(m_count * k_total);
  float* b_pack = arena.AllocFloats(k_total * n_count);
  double* c_buf = arena.AllocDoubles(m_count * n_count);
  for (int64_t b = 0; b < b_count; ++b) {
    const int64_t off0 = b0[static_cast<size_t>(b)];
    const int64_t off1 = b1[static_cast<size_t>(b)];
    for (int64_t m = 0; m < m_count; ++m) {
      const float* src = d0 + off0 + ma[static_cast<size_t>(m)];
      float* dst = a_pack + m * k_total;
      for (int64_t kk = 0; kk < k_total; ++kk) {
        dst[kk] = src[ka[static_cast<size_t>(kk)]];
      }
    }
    for (int64_t kk = 0; kk < k_total; ++kk) {
      const float* src = d1 + off1 + kb[static_cast<size_t>(kk)];
      float* dst = b_pack + kk * n_count;
      for (int64_t n = 0; n < n_count; ++n) {
        dst[n] = src[nb[static_cast<size_t>(n)]];
      }
    }
    std::fill(c_buf, c_buf + m_count * n_count, 0.0);
    GemmF64Acc(m_count, n_count, k_total, a_pack, b_pack, c_buf, &scratch);
    double* o = out->data() + bo[static_cast<size_t>(b)];
    for (int64_t m = 0; m < m_count; ++m) {
      const double* crow = c_buf + m * n_count;
      const int64_t o_m = om[static_cast<size_t>(m)];
      for (int64_t n = 0; n < n_count; ++n) {
        o[o_m + on[static_cast<size_t>(n)]] = crow[n];
      }
    }
  }
  return true;
}

}  // namespace

float Squash(double s) { return static_cast<float>(s / (1.0 + std::fabs(s) * 0.25)); }

void EvalEinsumPartialsReference(const Operator& op,
                                 const std::vector<const HostTensor*>& operands,
                                 int64_t contraction_lo, int64_t contraction_hi, const Box& box,
                                 std::vector<double>* out) {
  ALPA_CHECK(op.type == OpType::kEinsum);
  const EinsumSpec& spec = op.einsum;
  ALPA_CHECK_EQ(operands.size(), spec.operands.size());
  const std::string contraction = spec.ContractionLabels();

  // Slot per distinct label; output labels fill from the cell index, then
  // contraction labels iterate row-major (last label fastest), so the
  // double accumulation order is a pure function of the einsum spec.
  int64_t label_value[256] = {0};
  struct Term {
    const float* data;
    // (stride, label) per operand dim, innermost last.
    std::vector<std::pair<int64_t, unsigned char>> dims;
  };
  std::vector<Term> terms(operands.size());
  for (size_t i = 0; i < operands.size(); ++i) {
    const std::string& labels = spec.operands[i];
    ALPA_CHECK_EQ(operands[i]->shape().rank(), static_cast<int>(labels.size()));
    terms[i].data = operands[i]->data();
    int64_t stride = 1;
    terms[i].dims.resize(labels.size());
    for (int d = static_cast<int>(labels.size()) - 1; d >= 0; --d) {
      terms[i].dims[static_cast<size_t>(d)] = {stride, static_cast<unsigned char>(labels[static_cast<size_t>(d)])};
      stride *= operands[i]->shape().dim(d);
    }
  }
  const auto term_index = [&](const Term& term) {
    int64_t idx = 0;
    for (const auto& [stride, label] : term.dims) {
      idx += stride * label_value[label];
    }
    return idx;
  };

  // Contraction ranges: the first label carries the [lo, hi) restriction.
  std::vector<std::pair<int64_t, int64_t>> ranges;
  for (size_t c = 0; c < contraction.size(); ++c) {
    const int64_t extent = spec.Extent(contraction[c]);
    if (c == 0) {
      ALPA_CHECK_GE(contraction_lo, 0);
      ALPA_CHECK_LE(contraction_hi, extent);
      ranges.push_back({contraction_lo, contraction_hi});
    } else {
      ranges.push_back({0, extent});
    }
  }
  if (contraction.empty()) {
    ALPA_CHECK_EQ(contraction_lo, 0);
    ALPA_CHECK_EQ(contraction_hi, 1);
  }

  out->assign(static_cast<size_t>(std::max<int64_t>(1, BoxElements(box))), 0.0);
  size_t k = 0;
  ForEachIndex(box, [&](const std::vector<int64_t>& index) {
    for (size_t d = 0; d < spec.output.size(); ++d) {
      label_value[static_cast<unsigned char>(spec.output[d])] = index[d];
    }
    double sum = 0.0;
    if (contraction.empty()) {
      double prod = 1.0;
      for (const Term& term : terms) {
        prod *= term.data[term_index(term)];
      }
      sum = prod;
    } else {
      // Odometer over contraction labels.
      bool live = true;
      for (size_t c = 0; c < contraction.size(); ++c) {
        if (ranges[c].second <= ranges[c].first) {
          live = false;
        }
        label_value[static_cast<unsigned char>(contraction[c])] = ranges[c].first;
      }
      while (live) {
        double prod = 1.0;
        for (const Term& term : terms) {
          prod *= term.data[term_index(term)];
        }
        sum += prod;
        size_t c = contraction.size();
        while (c > 0) {
          --c;
          const unsigned char label = static_cast<unsigned char>(contraction[c]);
          if (++label_value[label] < ranges[c].second) {
            break;
          }
          label_value[label] = ranges[c].first;
          if (c == 0) {
            live = false;
          }
        }
      }
    }
    (*out)[k++] = sum;
  });
}

void EvalEinsumPartials(const Operator& op, const std::vector<const HostTensor*>& operands,
                        int64_t contraction_lo, int64_t contraction_hi, const Box& box,
                        std::vector<double>* out) {
  ALPA_CHECK(op.type == OpType::kEinsum);
  if (TryEinsumGemm(op, operands, contraction_lo, contraction_hi, box, out)) {
    return;
  }
  EvalEinsumPartialsReference(op, operands, contraction_lo, contraction_hi, box, out);
}

void EvalEinsumRegion(const Operator& op, const std::vector<const HostTensor*>& operands,
                      int64_t contraction_lo, int64_t contraction_hi, TileData* out) {
  std::vector<double> sums;
  EvalEinsumPartials(op, operands, contraction_lo, contraction_hi, out->box, &sums);
  out->data.resize(sums.size());
  for (size_t i = 0; i < sums.size(); ++i) {
    out->data[i] = static_cast<float>(sums[i]);
  }
}

void EvalOpRegion(const Operator& op, const std::vector<const HostTensor*>& operands,
                  TileData* out) {
  ALPA_CHECK(out->full_shape == op.shape);
  out->data.assign(static_cast<size_t>(std::max<int64_t>(1, BoxElements(out->box))), 0.0f);
  switch (op.type) {
    case OpType::kEinsum: {
      const std::string contraction = op.einsum.ContractionLabels();
      const int64_t hi = contraction.empty() ? 1 : op.einsum.Extent(contraction[0]);
      EvalEinsumRegion(op, operands, 0, hi, out);
      break;
    }
    case OpType::kElementwise:
      EvalElementwise(op, operands, out);
      break;
    case OpType::kReduce:
      ALPA_CHECK_EQ(operands.size(), 1u);
      EvalReduce(op, *operands[0], out);
      break;
    case OpType::kSoftmax:
    case OpType::kLayerNorm:
      ALPA_CHECK_EQ(operands.size(), 1u);
      EvalRowNormalize(op, *operands[0], out);
      break;
    case OpType::kEmbedding:
      ALPA_CHECK_EQ(operands.size(), 2u);
      EvalEmbedding(op, *operands[0], *operands[1], out);
      break;
    case OpType::kEmbeddingGrad:
      ALPA_CHECK_EQ(operands.size(), 2u);
      EvalEmbeddingGrad(op, *operands[0], *operands[1], out);
      break;
    case OpType::kMoeDispatch:
      ALPA_CHECK_EQ(operands.size(), 1u);
      EvalMoeDispatch(op, *operands[0], out);
      break;
    case OpType::kMoeCombine:
      ALPA_CHECK_EQ(operands.size(), 1u);
      EvalMoeCombine(op, *operands[0], out);
      break;
    case OpType::kLoss:
      ALPA_CHECK_GE(operands.size(), 1u);
      EvalLoss(*operands[0], out);
      break;
    case OpType::kUpdate:
      ALPA_CHECK_EQ(operands.size(), 2u);
      EvalUpdate(op, *operands[0], *operands[1], out);
      break;
    case OpType::kInput:
    case OpType::kParameter:
      ALPA_LOG(FATAL) << "Leaf op " << op.name << " has no kernel; generate it instead";
      break;
  }
}

}  // namespace exec
}  // namespace alpa
