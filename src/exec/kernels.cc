#include "src/exec/kernels.h"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "src/support/logging.h"

namespace alpa {
namespace exec {

namespace {

// Right-aligned broadcast/resize map: operand index for output index
// `out_idx` along aligned dims (input dim d_in pairs with output dim
// d_in + rank_delta). Index map in_i = out_i * in_dim / out_dim covers
// identity (equal dims), broadcast/upsample (in < out) and strided
// subsample (in > out) with one integer formula.
int64_t MappedOperandIndex(const TensorShape& in_shape, const TensorShape& out_shape,
                           const std::vector<int64_t>& out_index) {
  const int rank_delta = out_shape.rank() - in_shape.rank();
  ALPA_CHECK_GE(rank_delta, 0);
  int64_t linear = 0;
  for (int d = 0; d < in_shape.rank(); ++d) {
    const int64_t out_dim = out_shape.dim(d + rank_delta);
    const int64_t in_i = out_index[static_cast<size_t>(d + rank_delta)] * in_shape.dim(d) / out_dim;
    linear = linear * in_shape.dim(d) + in_i;
  }
  return linear;
}

void EvalElementwise(const Operator& op, const std::vector<const HostTensor*>& operands,
                     TileData* out) {
  size_t k = 0;
  ForEachIndex(out->box, [&](const std::vector<int64_t>& index) {
    double s = 0.0;
    for (const HostTensor* operand : operands) {
      s += operand->data()[MappedOperandIndex(operand->shape(), op.shape, index)];
    }
    out->data[k++] = Squash(s);
  });
}

void EvalReduce(const Operator& op, const HostTensor& in, TileData* out) {
  const int rank_delta = in.shape().rank() - op.shape.rank();
  ALPA_CHECK_GE(rank_delta, 0);
  size_t k = 0;
  ForEachIndex(out->box, [&](const std::vector<int64_t>& index) {
    // Preimage box: unmatched leading input dims range fully; aligned dims
    // cover [i*in/out, (i+1)*in/out).
    Box pre(static_cast<size_t>(in.shape().rank()));
    for (int d = 0; d < rank_delta; ++d) {
      pre[static_cast<size_t>(d)] = {0, in.shape().dim(d)};
    }
    for (int d = rank_delta; d < in.shape().rank(); ++d) {
      const int64_t out_dim = op.shape.dim(d - rank_delta);
      const int64_t i = index[static_cast<size_t>(d - rank_delta)];
      pre[static_cast<size_t>(d)] = {i * in.shape().dim(d) / out_dim,
                                     (i + 1) * in.shape().dim(d) / out_dim};
    }
    double sum = 0.0;
    int64_t count = 0;
    ForEachIndex(pre, [&](const std::vector<int64_t>& in_index) {
      sum += in.data()[LinearIndexOf(in.shape(), in_index)];
      ++count;
    });
    out->data[k++] = static_cast<float>(count > 0 ? sum / static_cast<double>(count) : 0.0);
  });
}

// Softmax and layer norm share the row decomposition: per-row statistics
// are computed over the FULL last dim regardless of the output box, so a
// device holding a last-dim shard still produces bit-identical cells.
void EvalRowNormalize(const Operator& op, const HostTensor& in, TileData* out) {
  ALPA_CHECK_GE(op.shape.rank(), 1);
  ALPA_CHECK(in.shape() == op.shape);
  const int64_t row = op.shape.dim(op.shape.rank() - 1);
  Box lead(out->box.begin(), out->box.end() - 1);
  const auto [col_lo, col_hi] = out->box.back();
  size_t k = 0;
  std::vector<int64_t> full_index(static_cast<size_t>(op.shape.rank()));
  ForEachIndex(lead, [&](const std::vector<int64_t>& lead_index) {
    std::copy(lead_index.begin(), lead_index.end(), full_index.begin());
    full_index.back() = 0;
    const int64_t base = LinearIndexOf(in.shape(), full_index);
    const float* x = in.data() + base;
    if (op.type == OpType::kSoftmax) {
      double max = x[0];
      for (int64_t c = 1; c < row; ++c) {
        max = std::max<double>(max, x[c]);
      }
      double denom = 0.0;
      for (int64_t c = 0; c < row; ++c) {
        denom += std::exp(static_cast<double>(x[c]) - max);
      }
      for (int64_t c = col_lo; c < col_hi; ++c) {
        out->data[k++] = static_cast<float>(std::exp(static_cast<double>(x[c]) - max) / denom);
      }
    } else {
      double mean = 0.0;
      for (int64_t c = 0; c < row; ++c) {
        mean += x[c];
      }
      mean /= static_cast<double>(row);
      double var = 0.0;
      for (int64_t c = 0; c < row; ++c) {
        const double d = static_cast<double>(x[c]) - mean;
        var += d * d;
      }
      var /= static_cast<double>(row);
      const double inv = 1.0 / std::sqrt(var + 1e-5);
      for (int64_t c = col_lo; c < col_hi; ++c) {
        out->data[k++] = static_cast<float>((static_cast<double>(x[c]) - mean) * inv);
      }
    }
  });
}

void EvalEmbedding(const Operator& op, const HostTensor& ids, const HostTensor& table,
                   TileData* out) {
  ALPA_CHECK_EQ(table.shape().rank(), 2);
  const int64_t vocab = table.shape().dim(0);
  const int64_t model = table.shape().dim(1);
  size_t k = 0;
  ForEachIndex(out->box, [&](const std::vector<int64_t>& index) {
    std::vector<int64_t> id_index(index.begin(), index.end() - 1);
    const int64_t token = LinearIndexOf(ids.shape(), id_index);
    const int64_t id = static_cast<int64_t>(ids.data()[token]) % vocab;
    out->data[k++] = table.data()[id * model + index.back()];
  });
}

void EvalEmbeddingGrad(const Operator& op, const HostTensor& ids, const HostTensor& grad_out,
                       TileData* out) {
  ALPA_CHECK_EQ(op.shape.rank(), 2);
  const int64_t vocab = op.shape.dim(0);
  const int64_t model = op.shape.dim(1);
  const int64_t tokens = ids.shape().elements();
  ALPA_CHECK_EQ(grad_out.shape().elements(), tokens * model);
  size_t k = 0;
  ForEachIndex(out->box, [&](const std::vector<int64_t>& index) {
    const int64_t v = index[0];
    const int64_t m = index[1];
    double sum = 0.0;
    for (int64_t t = 0; t < tokens; ++t) {
      if (static_cast<int64_t>(ids.data()[t]) % vocab == v) {
        sum += grad_out.data()[t * model + m];
      }
    }
    out->data[k++] = static_cast<float>(sum);
  });
}

// Token t lands in expert e = t % E, slot c = t / E; slots past the
// capacity drop (and the inverse fills dropped tokens with zero).
void EvalMoeDispatch(const Operator& op, const HostTensor& x, TileData* out) {
  ALPA_CHECK_EQ(op.shape.rank(), 3);
  const int64_t experts = op.shape.dim(0);
  const int64_t model = op.shape.dim(2);
  ALPA_CHECK_EQ(x.shape().elements() % model, 0);
  const int64_t tokens = x.shape().elements() / model;
  size_t k = 0;
  ForEachIndex(out->box, [&](const std::vector<int64_t>& index) {
    const int64_t token = index[1] * experts + index[0];
    out->data[k++] = token < tokens ? x.data()[token * model + index[2]] : 0.0f;
  });
}

void EvalMoeCombine(const Operator& op, const HostTensor& expert_out, TileData* out) {
  ALPA_CHECK_EQ(expert_out.shape().rank(), 3);
  const int64_t experts = expert_out.shape().dim(0);
  const int64_t capacity = expert_out.shape().dim(1);
  const int64_t model = expert_out.shape().dim(2);
  ALPA_CHECK_EQ(op.shape.elements() % model, 0);
  size_t k = 0;
  ForEachIndex(out->box, [&](const std::vector<int64_t>& index) {
    const int64_t linear = LinearIndexOf(op.shape, index);
    const int64_t token = linear / model;
    const int64_t m = linear % model;
    const int64_t e = token % experts;
    const int64_t c = token / experts;
    out->data[k++] = c < capacity ? expert_out.data()[(e * capacity + c) * model + m] : 0.0f;
  });
}

// Mean of squares over operand 0. The labels operand is shape-only in this
// IR (integer class ids with no numeric loss formula attached), and the
// backward builder never emits gradients for kInput operands, so the loss
// reads only the logits.
void EvalLoss(const HostTensor& logits, TileData* out) {
  double sum = 0.0;
  const int64_t n = logits.shape().elements();
  for (int64_t i = 0; i < n; ++i) {
    const double x = logits.data()[i];
    sum += x * x;
  }
  out->data[0] = static_cast<float>(n > 0 ? sum / static_cast<double>(n) : 0.0);
}

void EvalUpdate(const Operator& op, const HostTensor& param, const HostTensor& grad,
                TileData* out) {
  ALPA_CHECK(param.shape() == op.shape);
  ALPA_CHECK(grad.shape() == op.shape);
  size_t k = 0;
  ForEachIndex(out->box, [&](const std::vector<int64_t>& index) {
    const int64_t i = LinearIndexOf(op.shape, index);
    out->data[k++] = static_cast<float>(static_cast<double>(param.data()[i]) -
                                        kLearningRate * static_cast<double>(grad.data()[i]));
  });
}

}  // namespace

float Squash(double s) { return static_cast<float>(s / (1.0 + std::fabs(s) * 0.25)); }

void EvalEinsumPartials(const Operator& op, const std::vector<const HostTensor*>& operands,
                        int64_t contraction_lo, int64_t contraction_hi, const Box& box,
                        std::vector<double>* out) {
  ALPA_CHECK(op.type == OpType::kEinsum);
  const EinsumSpec& spec = op.einsum;
  ALPA_CHECK_EQ(operands.size(), spec.operands.size());
  const std::string contraction = spec.ContractionLabels();

  // Slot per distinct label; output labels fill from the cell index, then
  // contraction labels iterate row-major (last label fastest), so the
  // double accumulation order is a pure function of the einsum spec.
  int64_t label_value[256] = {0};
  struct Term {
    const float* data;
    // (stride, label) per operand dim, innermost last.
    std::vector<std::pair<int64_t, unsigned char>> dims;
  };
  std::vector<Term> terms(operands.size());
  for (size_t i = 0; i < operands.size(); ++i) {
    const std::string& labels = spec.operands[i];
    ALPA_CHECK_EQ(operands[i]->shape().rank(), static_cast<int>(labels.size()));
    terms[i].data = operands[i]->data();
    int64_t stride = 1;
    terms[i].dims.resize(labels.size());
    for (int d = static_cast<int>(labels.size()) - 1; d >= 0; --d) {
      terms[i].dims[static_cast<size_t>(d)] = {stride, static_cast<unsigned char>(labels[static_cast<size_t>(d)])};
      stride *= operands[i]->shape().dim(d);
    }
  }
  const auto term_index = [&](const Term& term) {
    int64_t idx = 0;
    for (const auto& [stride, label] : term.dims) {
      idx += stride * label_value[label];
    }
    return idx;
  };

  // Contraction ranges: the first label carries the [lo, hi) restriction.
  std::vector<std::pair<int64_t, int64_t>> ranges;
  for (size_t c = 0; c < contraction.size(); ++c) {
    const int64_t extent = spec.Extent(contraction[c]);
    if (c == 0) {
      ALPA_CHECK_GE(contraction_lo, 0);
      ALPA_CHECK_LE(contraction_hi, extent);
      ranges.push_back({contraction_lo, contraction_hi});
    } else {
      ranges.push_back({0, extent});
    }
  }
  if (contraction.empty()) {
    ALPA_CHECK_EQ(contraction_lo, 0);
    ALPA_CHECK_EQ(contraction_hi, 1);
  }

  out->assign(static_cast<size_t>(std::max<int64_t>(1, BoxElements(box))), 0.0);
  size_t k = 0;
  ForEachIndex(box, [&](const std::vector<int64_t>& index) {
    for (size_t d = 0; d < spec.output.size(); ++d) {
      label_value[static_cast<unsigned char>(spec.output[d])] = index[d];
    }
    double sum = 0.0;
    if (contraction.empty()) {
      double prod = 1.0;
      for (const Term& term : terms) {
        prod *= term.data[term_index(term)];
      }
      sum = prod;
    } else {
      // Odometer over contraction labels.
      bool live = true;
      for (size_t c = 0; c < contraction.size(); ++c) {
        if (ranges[c].second <= ranges[c].first) {
          live = false;
        }
        label_value[static_cast<unsigned char>(contraction[c])] = ranges[c].first;
      }
      while (live) {
        double prod = 1.0;
        for (const Term& term : terms) {
          prod *= term.data[term_index(term)];
        }
        sum += prod;
        size_t c = contraction.size();
        while (c > 0) {
          --c;
          const unsigned char label = static_cast<unsigned char>(contraction[c]);
          if (++label_value[label] < ranges[c].second) {
            break;
          }
          label_value[label] = ranges[c].first;
          if (c == 0) {
            live = false;
          }
        }
      }
    }
    (*out)[k++] = sum;
  });
}

void EvalEinsumRegion(const Operator& op, const std::vector<const HostTensor*>& operands,
                      int64_t contraction_lo, int64_t contraction_hi, TileData* out) {
  std::vector<double> sums;
  EvalEinsumPartials(op, operands, contraction_lo, contraction_hi, out->box, &sums);
  out->data.resize(sums.size());
  for (size_t i = 0; i < sums.size(); ++i) {
    out->data[i] = static_cast<float>(sums[i]);
  }
}

void EvalOpRegion(const Operator& op, const std::vector<const HostTensor*>& operands,
                  TileData* out) {
  ALPA_CHECK(out->full_shape == op.shape);
  out->data.assign(static_cast<size_t>(std::max<int64_t>(1, BoxElements(out->box))), 0.0f);
  switch (op.type) {
    case OpType::kEinsum: {
      const std::string contraction = op.einsum.ContractionLabels();
      const int64_t hi = contraction.empty() ? 1 : op.einsum.Extent(contraction[0]);
      EvalEinsumRegion(op, operands, 0, hi, out);
      break;
    }
    case OpType::kElementwise:
      EvalElementwise(op, operands, out);
      break;
    case OpType::kReduce:
      ALPA_CHECK_EQ(operands.size(), 1u);
      EvalReduce(op, *operands[0], out);
      break;
    case OpType::kSoftmax:
    case OpType::kLayerNorm:
      ALPA_CHECK_EQ(operands.size(), 1u);
      EvalRowNormalize(op, *operands[0], out);
      break;
    case OpType::kEmbedding:
      ALPA_CHECK_EQ(operands.size(), 2u);
      EvalEmbedding(op, *operands[0], *operands[1], out);
      break;
    case OpType::kEmbeddingGrad:
      ALPA_CHECK_EQ(operands.size(), 2u);
      EvalEmbeddingGrad(op, *operands[0], *operands[1], out);
      break;
    case OpType::kMoeDispatch:
      ALPA_CHECK_EQ(operands.size(), 1u);
      EvalMoeDispatch(op, *operands[0], out);
      break;
    case OpType::kMoeCombine:
      ALPA_CHECK_EQ(operands.size(), 1u);
      EvalMoeCombine(op, *operands[0], out);
      break;
    case OpType::kLoss:
      ALPA_CHECK_GE(operands.size(), 1u);
      EvalLoss(*operands[0], out);
      break;
    case OpType::kUpdate:
      ALPA_CHECK_EQ(operands.size(), 2u);
      EvalUpdate(op, *operands[0], *operands[1], out);
      break;
    case OpType::kInput:
    case OpType::kParameter:
      ALPA_LOG(FATAL) << "Leaf op " << op.name << " has no kernel; generate it instead";
      break;
  }
}

}  // namespace exec
}  // namespace alpa
