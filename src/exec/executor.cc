#include "src/exec/executor.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <tuple>
#include <utility>

#include "src/exec/arena.h"
#include "src/exec/collectives.h"
#include "src/exec/kernels.h"
#include "src/exec/liveness.h"
#include "src/exec/profiler.h"
#include "src/exec/reshard_exec.h"
#include "src/inter/stage_extraction.h"
#include "src/spec/sharding_spec.h"
#include "src/support/logging.h"
#include "src/support/strings.h"
#include "src/support/trace.h"

namespace alpa {
namespace exec {
namespace {

// A tensor crossing one stage boundary, with the reshard program realizing
// the hop. For forward entries data moves mesh b -> mesh b+1, for backward
// entries mesh b+1 -> mesh b.
struct BoundaryTransfer {
  int producer = -1;  // Full-graph op id; doubles as the transfer tag id.
  TensorShape shape;
  ShardingSpec src_spec;
  ShardingSpec dst_spec;
  ReshardProgram program;
};

struct StageContext {
  explicit StageContext(DeviceMesh m) : mesh(std::move(m)) {}

  int index = 0;
  StageSubgraph sub;
  DeviceMesh mesh;
  std::vector<ShardingSpec> layout;  // Stage op id -> spec on `mesh`.
  // Stage op id -> contraction chunk count for the ring path (1 = compute
  // the own tile from full operands instead).
  std::vector<int> ring_split;
  // Placeholder stage op id -> full-graph producer id.
  std::map<int, int> ph_producer;
  // Layouts of tensors relayed through this stage without a local consumer.
  std::map<int, ShardingSpec> transit_layout;
  MeshProgram program;
  bool has_loss = false;
};

// First layout of dim 0 the mesh can realize: both axes, axis 0, axis 1,
// else fully replicated. Used for every op the compiled plan carries no
// spec for (backward ops, pointwise forward ops), purely a compute/memory
// balance choice — deterministic-mode results are layout-invariant.
ShardingSpec HeuristicLayout(const TensorShape& shape, const DeviceMesh& mesh) {
  if (shape.rank() == 0) {
    return ShardingSpec();
  }
  for (DimSharding s : {DimSharding::kS01, DimSharding::kS0, DimSharding::kS1}) {
    ShardingSpec spec = ShardingSpec::OneDim(shape.rank(), 0, s);
    if (spec.ShardsForDim(0, mesh) > 1 && spec.IsValidFor(shape, mesh)) {
      return spec;
    }
  }
  return ShardingSpec::Replicated(shape.rank());
}

// Producer ids crossing each boundary (ascending), split by direction.
// fwd[b]: forward-role tensors moving stage b -> b+1 (including multi-hop
// relays of skip connections); bwd[b]: gradients moving b+1 -> b.
struct BoundarySets {
  std::vector<std::vector<int>> fwd;
  std::vector<std::vector<int>> bwd;
};

// `owner[id]` is the stage whose layer range contains the op (-1 outside).
std::vector<int> OwnerStages(const Graph& graph, const CompiledPipeline& pipeline) {
  std::vector<int> owner(static_cast<size_t>(graph.size()), -1);
  for (int id = 0; id < graph.size(); ++id) {
    const int layer = graph.op(id).layer;
    for (size_t s = 0; s < pipeline.stages.size(); ++s) {
      if (layer >= pipeline.stages[s].layer_begin && layer <= pipeline.stages[s].layer_end) {
        owner[static_cast<size_t>(id)] = static_cast<int>(s);
        break;
      }
    }
  }
  return owner;
}

BoundarySets BuildBoundarySets(const Graph& graph, const std::vector<StageSubgraph>& subs,
                               const std::vector<int>& owner) {
  const int num_stages = static_cast<int>(subs.size());
  std::vector<std::set<int>> fwd(static_cast<size_t>(std::max(0, num_stages - 1)));
  std::vector<std::set<int>> bwd(fwd.size());
  for (int s = 0; s < num_stages; ++s) {
    for (const BoundaryTensor& bt : subs[static_cast<size_t>(s)].inputs) {
      const Operator& producer = graph.op(bt.producer_op);
      if (producer.type == OpType::kInput || producer.type == OpType::kParameter) {
        continue;  // Leaves are generated wherever consumed, never sent.
      }
      const int o = owner[static_cast<size_t>(bt.producer_op)];
      ALPA_CHECK_GE(o, 0) << "boundary producer " << producer.name << " has no owning stage";
      if (producer.role == OpRole::kBackward) {
        ALPA_CHECK_GT(o, s) << "gradient " << producer.name << " flows forward";
        for (int b = s; b < o; ++b) {
          bwd[static_cast<size_t>(b)].insert(bt.producer_op);
        }
      } else {
        ALPA_CHECK_LT(o, s) << "activation " << producer.name << " flows backward";
        for (int b = o; b < s; ++b) {
          fwd[static_cast<size_t>(b)].insert(bt.producer_op);
        }
      }
    }
  }
  BoundarySets sets;
  for (const auto& set : fwd) {
    sets.fwd.emplace_back(set.begin(), set.end());
  }
  for (const auto& set : bwd) {
    sets.bwd.emplace_back(set.begin(), set.end());
  }
  return sets;
}

// Everything the device workers share. Contexts and transfers are immutable
// once the threads start; `result` is guarded by `result_mu`.
struct ExecShared {
  const Graph* graph = nullptr;
  ExecOptions options;
  int num_microbatches = 1;
  std::vector<StageContext>* ctx = nullptr;
  std::vector<std::vector<BoundaryTransfer>>* fwd_transfers = nullptr;
  std::vector<std::vector<BoundaryTransfer>>* bwd_transfers = nullptr;
  Transport* transport = nullptr;
  ExecutionProfiler* profiler = nullptr;
  // Per-stage analytical memory estimate (weights + max-in-flight
  // activations + working set), for ExecResult::device_memory.
  const std::vector<int64_t>* modeled_bytes = nullptr;
  std::mutex result_mu;
  ExecResult* result = nullptr;
};

class DeviceWorker {
 public:
  DeviceWorker(ExecShared* shared, int stage, int rank)
      : shared_(shared),
        ctx_((*shared->ctx)[static_cast<size_t>(stage)]),
        stage_(stage),
        rank_(rank),
        coord_i_(rank / ctx_.mesh.dim(1)),
        coord_j_(rank % ctx_.mesh.dim(1)),
        device_(ctx_.mesh.DeviceAt(coord_i_, coord_j_)),
        group_(ctx_.mesh.DeviceIds()) {}

  void Run() {
    Trace::SetThreadName(StrFormat("exec s%d r%d", stage_, rank_));
    BuildMemoryPlan();
    for (size_t i = 0; i < ctx_.program.instructions.size(); ++i) {
      cur_inst_ = static_cast<int>(i);
      Execute(ctx_.program.instructions[i]);
      ReleaseAfter(static_cast<int>(i));
    }
    FinishReports();
  }

 private:
  using Key = std::pair<int, int>;  // (stage op id, microbatch; -1 = shared).
  using Clock = std::chrono::steady_clock;

  void Execute(const MeshInstruction& inst) {
    const Clock::time_point start = Clock::now();
    switch (inst.kind) {
      case InstructionKind::kAllocActivation:
        break;  // Buffers materialize lazily; the slot ids are bookkeeping.
      case InstructionKind::kRecvActivation: {
        TraceSpan span("recv_act", "exec");
        RunBoundary((*shared_->fwd_transfers)[static_cast<size_t>(stage_ - 1)], inst.microbatch,
                    /*sender=*/false);
        break;
      }
      case InstructionKind::kSendActivation: {
        TraceSpan span("send_act", "exec");
        RunBoundary((*shared_->fwd_transfers)[static_cast<size_t>(stage_)], inst.microbatch,
                    /*sender=*/true);
        break;
      }
      case InstructionKind::kRecvGradient: {
        TraceSpan span("recv_grad", "exec");
        RunBoundary((*shared_->bwd_transfers)[static_cast<size_t>(stage_)], inst.microbatch,
                    /*sender=*/false);
        break;
      }
      case InstructionKind::kSendGradient: {
        TraceSpan span("send_grad", "exec");
        RunBoundary((*shared_->bwd_transfers)[static_cast<size_t>(stage_ - 1)], inst.microbatch,
                    /*sender=*/true);
        break;
      }
      case InstructionKind::kForward: {
        TraceSpan span("forward", "exec");
        RunCompute(OpRole::kForward, inst.microbatch);
        break;
      }
      case InstructionKind::kBackward: {
        TraceSpan span("backward", "exec");
        RunCompute(OpRole::kBackward, inst.microbatch);
        break;
      }
      case InstructionKind::kFreeActivation:
        Free(inst.microbatch);
        break;
      case InstructionKind::kWeightUpdate: {
        TraceSpan span("weight_update", "exec");
        RunUpdate();
        break;
      }
    }
    const double seconds = std::chrono::duration<double>(Clock::now() - start).count();
    switch (inst.kind) {
      case InstructionKind::kForward:
        timing_.Add(ExecPhase::kForward, seconds);
        break;
      case InstructionKind::kBackward:
        timing_.Add(ExecPhase::kBackward, seconds);
        break;
      case InstructionKind::kWeightUpdate:
        timing_.Add(ExecPhase::kUpdate, seconds);
        break;
      case InstructionKind::kRecvActivation:
      case InstructionKind::kSendActivation:
      case InstructionKind::kRecvGradient:
      case InstructionKind::kSendGradient:
        timing_.Add(ExecPhase::kBoundary, seconds);
        break;
      default:
        break;  // Alloc/free bookkeeping is not a timed phase.
    }
  }

  // --- Static memory plan -------------------------------------------------

  // Mirrors the runtime's buffer traffic instruction by instruction: what
  // each recv/compute defines, what each send/compute/update reads. The
  // resulting live intervals drive the arena offset plan (planned peak
  // bytes) and the release lists that free every sharded buffer right after
  // its statically last use.
  void BuildMemoryPlan() {
    const Graph& sg = ctx_.sub.graph;
    for (int sid = 0; sid < sg.size(); ++sid) {
      const Operator& op = sg.op(sid);
      if (op.type == OpType::kUpdate) {
        grad_sids_.insert(op.operands[1]);
      }
    }
    // Incremental accumulation folds each microbatch's weight gradient into
    // the iteration accumulator at its kBackward instruction instead of
    // keeping every per-microbatch gradient alive until kWeightUpdate. It
    // replays the reference's exact addition sequence — zero-filled
    // accumulator, adds in ascending microbatch order — so it requires the
    // program's backward instructions to be microbatch-ascending (GPipe and
    // 1F1B both are; checked statically, with the hold-all fallback kept).
    int last_bwd = -1;
    incremental_accum_ = !grad_sids_.empty();
    for (int gsid : grad_sids_) {
      // Folding happens where the gradient is computed; a gradient that
      // arrives by wire or outside the backward phase falls back to the
      // hold-all path.
      if (ctx_.sub.reverse_map[static_cast<size_t>(gsid)] < 0 ||
          sg.op(gsid).role != OpRole::kBackward) {
        incremental_accum_ = false;
      }
    }
    for (const MeshInstruction& inst : ctx_.program.instructions) {
      if (inst.kind == InstructionKind::kBackward) {
        if (inst.microbatch <= last_bwd) {
          incremental_accum_ = false;
          break;
        }
        last_bwd = inst.microbatch;
      }
    }

    const auto boundary_ref = [&](const BoundaryTransfer& t, int mb) {
      const int sid = ctx_.sub.op_map[static_cast<size_t>(t.producer)];
      return sid >= 0 ? TensorRef{sid, mb, false} : TensorRef{t.producer, mb, true};
    };
    const auto recv_bytes = [&](const BoundaryTransfer& t) {
      const Box box = t.dst_spec.TileSlice(t.shape, ctx_.mesh, coord_i_, coord_j_);
      return BoxElements(box) * DTypeBytes(shared_->graph->op(t.producer).dtype);
    };
    // Leaves (and placeholders of leaves) are generated from the PRNG into
    // the full-operand cache; they never occupy a sharded buffer.
    const auto generated_leaf = [&](int sid) {
      const Operator& op = sg.op(sid);
      if (ctx_.sub.reverse_map[static_cast<size_t>(sid)] >= 0) {
        return op.type == OpType::kInput || op.type == OpType::kParameter;
      }
      const Operator& producer = shared_->graph->op(ctx_.ph_producer.at(sid));
      return producer.type == OpType::kInput || producer.type == OpType::kParameter;
    };
    // Bytes of this device's stored tile of `sid` — exactly the box
    // ComputeOp materializes (replicated when the ring path applies).
    const auto tile_bytes = [&](int sid) {
      const Operator& op = sg.op(sid);
      const Box box = ctx_.ring_split[static_cast<size_t>(sid)] > 1
                          ? FullBox(op.shape)
                          : ctx_.layout[static_cast<size_t>(sid)].TileSlice(op.shape, ctx_.mesh,
                                                                            coord_i_, coord_j_);
      return BoxElements(box) * DTypeBytes(op.dtype);
    };
    // `last_consumer` additionally records, per used buffer, the position
    // (stage op id) of its last consuming ComputeOp within the instruction
    // — the anchor for eager mid-instruction release below.
    const auto compute_access = [&](OpRole role, int mb, InstructionAccess* acc,
                                    std::map<TensorRef, int>* last_consumer) {
      for (int sid = 0; sid < sg.size(); ++sid) {
        const Operator& op = sg.op(sid);
        if (op.role != role) {
          continue;
        }
        if (ctx_.sub.reverse_map[static_cast<size_t>(sid)] < 0) {
          if (!generated_leaf(sid)) {
            acc->uses.push_back({sid, mb, false});  // Received placeholder.
          }
          continue;
        }
        if (op.type == OpType::kInput || op.type == OpType::kParameter ||
            op.type == OpType::kUpdate) {
          continue;
        }
        for (int operand : op.operands) {
          if (!generated_leaf(operand)) {
            acc->uses.push_back({operand, mb, false});
            (*last_consumer)[{operand, mb, false}] = sid;
          }
        }
        acc->defs.push_back({{sid, mb, false}, tile_bytes(sid)});
        if (incremental_accum_ && role == OpRole::kBackward && grad_sids_.count(sid) != 0) {
          // The fold (re)defines and reads the iteration-lifetime
          // accumulator and consumes this microbatch's gradient in place.
          acc->defs.push_back({{sid, -1, false}, tile_bytes(sid)});
          acc->uses.push_back({sid, -1, false});
          acc->uses.push_back({sid, mb, false});
          (*last_consumer)[{sid, mb, false}] = sid;
        }
      }
    };

    std::vector<InstructionAccess> accesses(ctx_.program.instructions.size());
    std::map<int, std::map<TensorRef, int>> last_consumers;
    for (size_t i = 0; i < ctx_.program.instructions.size(); ++i) {
      const MeshInstruction& inst = ctx_.program.instructions[i];
      InstructionAccess& acc = accesses[i];
      switch (inst.kind) {
        case InstructionKind::kRecvActivation:
          for (const BoundaryTransfer& t : (*shared_->fwd_transfers)[static_cast<size_t>(stage_ - 1)]) {
            acc.defs.push_back({boundary_ref(t, inst.microbatch), recv_bytes(t)});
          }
          break;
        case InstructionKind::kSendActivation:
          for (const BoundaryTransfer& t : (*shared_->fwd_transfers)[static_cast<size_t>(stage_)]) {
            acc.uses.push_back(boundary_ref(t, inst.microbatch));
          }
          break;
        case InstructionKind::kRecvGradient:
          for (const BoundaryTransfer& t : (*shared_->bwd_transfers)[static_cast<size_t>(stage_)]) {
            acc.defs.push_back({boundary_ref(t, inst.microbatch), recv_bytes(t)});
          }
          break;
        case InstructionKind::kSendGradient:
          for (const BoundaryTransfer& t : (*shared_->bwd_transfers)[static_cast<size_t>(stage_ - 1)]) {
            acc.uses.push_back(boundary_ref(t, inst.microbatch));
          }
          break;
        case InstructionKind::kForward:
          compute_access(OpRole::kForward, inst.microbatch, &acc,
                         &last_consumers[static_cast<int>(i)]);
          break;
        case InstructionKind::kBackward:
          compute_access(OpRole::kBackward, inst.microbatch, &acc,
                         &last_consumers[static_cast<int>(i)]);
          break;
        case InstructionKind::kWeightUpdate:
          for (int gsid : grad_sids_) {
            if (incremental_accum_) {
              acc.uses.push_back({gsid, -1, false});
            } else {
              for (int mb = 0; mb < shared_->num_microbatches; ++mb) {
                acc.uses.push_back({gsid, mb, false});
              }
            }
          }
          break;
        default:
          break;  // kAlloc/kFree touch no sharded buffer.
      }
    }
    const std::vector<LiveInterval> intervals = ComputeLiveness(accesses);
    plan_ = PlanArena(intervals);
    release_ = ReleaseLists(intervals, static_cast<int>(accesses.size()));

    // Eager mid-instruction release: a compute instruction evaluates many
    // ops in sequence, and a buffer whose GLOBAL lifetime ends inside the
    // instruction can be dropped right after its last consuming op instead
    // of at the instruction boundary. This is what keeps the backward
    // sweep's footprint to a narrow band — forward activations retire as
    // the sweep passes them, rather than coexisting with every backward
    // intermediate of the microbatch. Safe because peers never read this
    // device's maps: gathers are symmetric send/recv pairs each rank
    // executes from its own copy. The instruction-granular plan above stays
    // a valid (conservative) upper bound.
    for (const auto& [inst, consumers] : last_consumers) {
      for (const TensorRef& ref : release_[static_cast<size_t>(inst)]) {
        if (ref.transit || ref.microbatch < 0) {
          continue;
        }
        const auto it = consumers.find(ref);
        if (it != consumers.end()) {
          eager_release_[inst][it->second].push_back(ref);
        }
      }
    }
  }

  // Frees every sharded buffer whose statically last use was instruction i.
  void ReleaseAfter(int i) {
    for (const TensorRef& ref : release_[static_cast<size_t>(i)]) {
      if (ref.transit) {
        TrackedErase(&transit_, {ref.op, ref.microbatch}, shared_->graph->op(ref.op).dtype);
      } else if (ref.microbatch < 0) {
        const auto it = grad_accum_.find(ref.op);
        if (it != grad_accum_.end()) {
          live_bytes_ -= LogicalBytes(it->second, ctx_.sub.graph.op(ref.op).dtype);
          grad_accum_.erase(it);
        }
      } else {
        TrackedErase(&values_, {ref.op, ref.microbatch}, ctx_.sub.graph.op(ref.op).dtype);
      }
    }
  }

  static int64_t LogicalBytes(const TileData& tile, DType dtype) {
    return static_cast<int64_t>(tile.data.size()) * DTypeBytes(dtype);
  }

  void TrackedStore(std::map<Key, TileData>* map, const Key& key, TileData tile, DType dtype) {
    const int64_t bytes = LogicalBytes(tile, dtype);
    const auto it = map->find(key);
    if (it != map->end()) {
      live_bytes_ -= LogicalBytes(it->second, dtype);
      it->second = std::move(tile);
    } else {
      map->emplace(key, std::move(tile));
    }
    live_bytes_ += bytes;
    peak_live_bytes_ = std::max(peak_live_bytes_, live_bytes_);
  }

  void TrackedErase(std::map<Key, TileData>* map, const Key& key, DType dtype) {
    const auto it = map->find(key);
    if (it == map->end()) {
      return;
    }
    live_bytes_ -= LogicalBytes(it->second, dtype);
    map->erase(it);
  }

  void FinishReports() {
    timing_.stage = stage_;
    shared_->profiler->Report(timing_);
    DeviceMemoryStats stats;
    stats.stage = stage_;
    stats.rank = rank_;
    stats.device = device_;
    stats.planned_bytes = plan_.arena_bytes;
    stats.planned_peak_live_bytes = plan_.peak_live_bytes;
    stats.measured_peak_bytes = peak_live_bytes_;
    stats.oracle_peak_bytes = peak_oracle_bytes_;
    stats.modeled_bytes = (*shared_->modeled_bytes)[static_cast<size_t>(stage_)];
    std::lock_guard<std::mutex> lock(shared_->result_mu);
    shared_->result->device_memory.push_back(stats);
  }

  // --- Boundary resharding ----------------------------------------------

  void RunBoundary(const std::vector<BoundaryTransfer>& transfers, int mb, bool sender) {
    for (const BoundaryTransfer& t : transfers) {
      const uint64_t tag = MakeTag(kTagReshard, t.producer, mb, 0);
      if (sender) {
        // Double-buffered staging: the outgoing tile is copied into one of
        // two parity slots, so the producer buffer retires at this
        // instruction (release lists) while the staged bytes back the
        // in-flight transfer; the slot's storage is recycled every other
        // microbatch instead of reallocating per send.
        const TileData& src = SourceTile(t, mb);
        TileData& slot = send_staging_[{t.producer, mb & 1}];
        slot.full_shape = src.full_shape;
        slot.box = src.box;
        slot.data.assign(src.data.begin(), src.data.end());
        ExecuteReshardForDevice(*shared_->transport, t.program, device_, &slot,
                                /*dst_tile=*/nullptr, tag);
      } else {
        TileData dst;
        dst.full_shape = t.shape;
        dst.box = t.dst_spec.TileSlice(t.shape, ctx_.mesh, coord_i_, coord_j_);
        dst.data.assign(static_cast<size_t>(BoxElements(dst.box)), 0.0f);
        ExecuteReshardForDevice(*shared_->transport, t.program, device_, /*src_tile=*/nullptr,
                                &dst, tag);
        const int sid = ctx_.sub.op_map[static_cast<size_t>(t.producer)];
        const DType dtype = shared_->graph->op(t.producer).dtype;
        if (sid >= 0) {
          TrackedStore(&values_, {sid, mb}, std::move(dst), dtype);
        } else {
          TrackedStore(&transit_, {t.producer, mb}, std::move(dst), dtype);
        }
      }
    }
  }

  const TileData& SourceTile(const BoundaryTransfer& t, int mb) {
    const int sid = ctx_.sub.op_map[static_cast<size_t>(t.producer)];
    if (sid >= 0) {
      const auto it = values_.find({sid, mb});
      ALPA_CHECK(it != values_.end())
          << "stage " << stage_ << " sends " << shared_->graph->op(t.producer).name
          << " mb " << mb << " before computing/receiving it";
      return it->second;
    }
    const auto it = transit_.find({t.producer, mb});
    ALPA_CHECK(it != transit_.end())
        << "stage " << stage_ << " relays " << shared_->graph->op(t.producer).name
        << " mb " << mb << " without having received it";
    return it->second;
  }

  // --- Compute ----------------------------------------------------------

  void RunCompute(OpRole role, int mb) {
    const Graph& sg = ctx_.sub.graph;
    for (int sid = 0; sid < sg.size(); ++sid) {
      const Operator& op = sg.op(sid);
      if (op.role != role) {
        continue;
      }
      if (ctx_.sub.reverse_map[static_cast<size_t>(sid)] < 0) {
        // Placeholder: leaf producers are generated on demand in
        // OperandFull; activation/gradient placeholders must have arrived.
        const int q = ctx_.ph_producer.at(sid);
        const Operator& producer = shared_->graph->op(q);
        if (producer.type != OpType::kInput && producer.type != OpType::kParameter) {
          ALPA_CHECK(values_.count({sid, mb}) != 0)
              << "stage " << stage_ << " computes mb " << mb << " before receiving "
              << producer.name;
        }
        continue;
      }
      if (op.type == OpType::kInput || op.type == OpType::kParameter ||
          op.type == OpType::kUpdate) {
        continue;  // Leaves generate on demand; updates run at kWeightUpdate.
      }
      ComputeOp(sid, mb);
      // Drop buffers whose statically-last consumer just ran (the eager
      // release sets never name anything a later instruction still needs).
      if (const auto ei = eager_release_.find(cur_inst_); ei != eager_release_.end()) {
        if (const auto ep = ei->second.find(sid); ep != ei->second.end()) {
          for (const TensorRef& ref : ep->second) {
            TrackedErase(&values_, {ref.op, ref.microbatch},
                         ctx_.sub.graph.op(ref.op).dtype);
          }
        }
      }
    }
  }

  void ComputeOp(int sid, int mb) {
    const Operator& op = ctx_.sub.graph.op(sid);
    std::vector<const HostTensor*> operands;
    operands.reserve(op.operands.size());
    for (int operand : op.operands) {
      operands.push_back(&OperandFull(operand, mb));
    }
    const int split = ctx_.ring_split[static_cast<size_t>(sid)];
    TileData out;
    out.full_shape = op.shape;
    if (split > 1) {
      // Ring mode: every device computes a contraction partial over the
      // full output, then a real ring all-reduce combines the chunks. The
      // stored value is replicated (layout was overridden to R).
      const int64_t extent = op.einsum.Extent(op.einsum.ContractionLabels()[0]);
      out.box = FullBox(op.shape);
      std::vector<double> partial;
      EvalEinsumPartials(op, operands, ChunkBound(extent, split, rank_),
                         ChunkBound(extent, split, rank_ + 1), out.box, &partial);
      const Clock::time_point ring_start = Clock::now();
      RingAllReduceAccum(*shared_->transport, group_, rank_, partial,
                         MakeTag(kTagRing, sid, mb, 0), DTypeBytes(op.dtype));
      timing_.Add(ExecPhase::kCollective,
                  std::chrono::duration<double>(Clock::now() - ring_start).count());
      out.data.resize(partial.size());
      for (size_t i = 0; i < partial.size(); ++i) {
        out.data[i] = static_cast<float>(partial[i]);
      }
    } else {
      out.box = ctx_.layout[static_cast<size_t>(sid)].TileSlice(op.shape, ctx_.mesh, coord_i_,
                                                                coord_j_);
      out.data.assign(static_cast<size_t>(BoxElements(out.box)), 0.0f);
      EvalOpRegion(op, operands, &out);
    }
    if (op.type == OpType::kLoss && rank_ == 0) {
      std::lock_guard<std::mutex> lock(shared_->result_mu);
      shared_->result->microbatch_loss[static_cast<size_t>(mb)] = out.data[0];
    }
    TrackedStore(&values_, {sid, mb}, std::move(out), op.dtype);
    if (incremental_accum_ && op.role == OpRole::kBackward && grad_sids_.count(sid) != 0) {
      FoldGradient(sid, mb);
    }
  }

  // Adds microbatch `mb`'s weight-gradient tile into the iteration
  // accumulator. Backward instructions are microbatch-ascending (checked in
  // BuildMemoryPlan), so the per-cell addition sequence — zero-filled
  // accumulator, adds for mb 0, 1, ... — is bit-identical to the reference
  // hold-all accumulation at kWeightUpdate.
  void FoldGradient(int sid, int mb) {
    const Operator& op = ctx_.sub.graph.op(sid);
    auto it = grad_accum_.find(sid);
    if (it == grad_accum_.end()) {
      TileData acc;
      acc.full_shape = op.shape;
      acc.box = ctx_.layout[static_cast<size_t>(sid)].TileSlice(op.shape, ctx_.mesh, coord_i_,
                                                                coord_j_);
      if (ctx_.ring_split[static_cast<size_t>(sid)] > 1) {
        acc.box = FullBox(op.shape);  // Ring outputs are replicated.
      }
      acc.data.assign(static_cast<size_t>(BoxElements(acc.box)), 0.0f);
      it = grad_accum_.emplace(sid, std::move(acc)).first;
      live_bytes_ += LogicalBytes(it->second, op.dtype);
      peak_live_bytes_ = std::max(peak_live_bytes_, live_bytes_);
    }
    const TileData& g = values_.at({sid, mb});
    ALPA_CHECK_EQ(g.data.size(), it->second.data.size());
    float* a = it->second.data.data();
    const float* gp = g.data.data();
    for (size_t i = 0; i < it->second.data.size(); ++i) {
      a[i] += gp[i];
    }
  }

  // Returns the full tensor of stage op `sid` for microbatch `mb`,
  // gathering tiles from the mesh when the local shard is partial. Leaves
  // (parameters, inputs, and placeholders of either) are generated directly
  // from the deterministic PRNG — any device can produce any slice, so they
  // never move over links.
  const HostTensor& OperandFull(int sid, int mb) {
    const Operator& op = ctx_.sub.graph.op(sid);
    const int reverse = ctx_.sub.reverse_map[static_cast<size_t>(sid)];
    const Operator* leaf = nullptr;
    if (reverse >= 0 && (op.type == OpType::kInput || op.type == OpType::kParameter)) {
      leaf = &shared_->graph->op(reverse);
    } else if (reverse < 0) {
      const Operator& producer = shared_->graph->op(ctx_.ph_producer.at(sid));
      if (producer.type == OpType::kInput || producer.type == OpType::kParameter) {
        leaf = &producer;
      }
    }
    const bool microbatch_invariant =
        leaf != nullptr && leaf->type == OpType::kParameter;
    const Key key{sid, microbatch_invariant ? -1 : mb};
    if (const auto it = full_cache_.find(key); it != full_cache_.end()) {
      return it->second;
    }
    HostTensor full;
    if (leaf != nullptr) {
      full = GenerateLeaf(*leaf, shared_->options.data_seed,
                          microbatch_invariant ? 0 : mb);
    } else {
      const auto it = values_.find({sid, mb});
      ALPA_CHECK(it != values_.end())
          << "stage " << stage_ << ": operand " << op.name << " mb " << mb << " unavailable";
      full = GatherTile(sid, mb, it->second);
    }
    const HostTensor& stored = full_cache_.emplace(key, std::move(full)).first->second;
    oracle_bytes_ += stored.elements() * DTypeBytes(op.dtype);
    peak_oracle_bytes_ = std::max(peak_oracle_bytes_, oracle_bytes_);
    return stored;
  }

  // Assembles the full tensor from the mesh's tiles: every device sends its
  // shard to every peer and inserts the peers' shards by their layout
  // boxes. Replicated values skip the exchange entirely.
  HostTensor GatherTile(int sid, int mb, const TileData& mine) {
    const Clock::time_point start = Clock::now();
    const Operator& op = ctx_.sub.graph.op(sid);
    struct CollectiveTimer {
      DeviceTimingReport* timing;
      Clock::time_point start;
      ~CollectiveTimer() {
        timing->Add(ExecPhase::kCollective,
                    std::chrono::duration<double>(Clock::now() - start).count());
      }
    } timer{&timing_, start};
    HostTensor full(op.shape);
    if (mine.box == FullBox(op.shape)) {
      InsertTile(mine, &full);
      return full;
    }
    const ShardingSpec& layout = ctx_.layout[static_cast<size_t>(sid)];
    const int k = ctx_.mesh.num_devices();
    for (int r = 0; r < k; ++r) {
      if (r == rank_) {
        continue;
      }
      shared_->transport->Send(device_, group_[static_cast<size_t>(r)],
                               MakeTag(kTagAllGather, sid, mb, rank_), mine.data,
                               static_cast<int64_t>(mine.data.size()) * DTypeBytes(op.dtype));
    }
    InsertTile(mine, &full);
    TileData peer;
    peer.full_shape = op.shape;
    for (int r = 0; r < k; ++r) {
      if (r == rank_) {
        continue;
      }
      peer.box = layout.TileSlice(op.shape, ctx_.mesh, r / ctx_.mesh.dim(1),
                                  r % ctx_.mesh.dim(1));
      peer.data = shared_->transport->Recv(device_, MakeTag(kTagAllGather, sid, mb, r));
      ALPA_CHECK_EQ(static_cast<int64_t>(peer.data.size()), BoxElements(peer.box));
      InsertTile(peer, &full);
    }
    return full;
  }

  // --- Buffer lifetime --------------------------------------------------

  void Free(int mb) {
    // Sharded buffers (values, transits, accumulators) are freed by the
    // static release lists right after their last use; kFreeActivation only
    // evicts the deterministic oracle's gathered/generated full tensors of
    // the finished microbatch. Parameters (cached at mb -1) live on.
    for (auto it = full_cache_.begin(); it != full_cache_.end();) {
      if (it->first.second == mb) {
        oracle_bytes_ -=
            it->second.elements() * DTypeBytes(ctx_.sub.graph.op(it->first.first).dtype);
        it = full_cache_.erase(it);
      } else {
        ++it;
      }
    }
  }

  // --- Optimizer step ----------------------------------------------------

  void RunUpdate() {
    const Graph& sg = ctx_.sub.graph;
    for (int sid = 0; sid < sg.size(); ++sid) {
      const Operator& op = sg.op(sid);
      if (op.type != OpType::kUpdate) {
        continue;
      }
      const int param_sid = op.operands[0];
      const int grad_sid = op.operands[1];
      const int param_full = ctx_.sub.reverse_map[static_cast<size_t>(param_sid)];
      ALPA_CHECK_GE(param_full, 0) << "update of a non-owned parameter";

      // Either take the incrementally folded accumulator (built in
      // ascending microbatch order at the backward instructions) or — when
      // the schedule's backward order isn't ascending — accumulate the
      // held per-microbatch gradient tiles here. Both produce the exact
      // per-cell addition sequence the reference interpreter uses, so
      // accumulation is bit-identical regardless of the path.
      TileData acc;
      if (incremental_accum_) {
        const auto it = grad_accum_.find(grad_sid);
        ALPA_CHECK(it != grad_accum_.end())
            << "missing folded gradient " << sg.op(grad_sid).name;
        live_bytes_ -= LogicalBytes(it->second, sg.op(grad_sid).dtype);
        acc = std::move(it->second);
        grad_accum_.erase(it);
      } else {
        acc.full_shape = sg.op(grad_sid).shape;
        acc.box = ctx_.layout[static_cast<size_t>(grad_sid)].TileSlice(
            acc.full_shape, ctx_.mesh, coord_i_, coord_j_);
        if (ctx_.ring_split[static_cast<size_t>(grad_sid)] > 1) {
          acc.box = FullBox(acc.full_shape);  // Ring outputs are replicated.
        }
        acc.data.assign(static_cast<size_t>(BoxElements(acc.box)), 0.0f);
        for (int mb = 0; mb < shared_->num_microbatches; ++mb) {
          const auto it = values_.find({grad_sid, mb});
          ALPA_CHECK(it != values_.end())
              << "missing gradient " << sg.op(grad_sid).name << " for mb " << mb;
          ALPA_CHECK_EQ(it->second.data.size(), acc.data.size());
          for (size_t i = 0; i < acc.data.size(); ++i) {
            acc.data[i] += it->second.data[i];
          }
        }
      }
      const HostTensor grad = GatherTile(grad_sid, -1, acc);
      if (rank_ != 0) {
        continue;
      }
      const HostTensor param =
          GenerateLeaf(shared_->graph->op(param_full), shared_->options.data_seed, 0);
      TileData out = FullTile(op.shape);
      EvalOpRegion(op, {&param, &grad}, &out);
      HostTensor updated(op.shape);
      InsertTile(out, &updated);
      const std::string& name = shared_->graph->op(param_full).name;
      std::lock_guard<std::mutex> lock(shared_->result_mu);
      shared_->result->weight_grads.emplace(name, grad);
      shared_->result->updated_params.emplace(name, std::move(updated));
    }
  }

  ExecShared* shared_;
  StageContext& ctx_;
  const int stage_;
  const int rank_;
  const int coord_i_;
  const int coord_j_;
  const int device_;
  const std::vector<int> group_;

  std::map<Key, TileData> values_;          // (stage op, mb) -> own shard.
  std::map<Key, TileData> transit_;         // (full-graph op, mb) -> relayed tile.
  std::map<Key, HostTensor> full_cache_;    // Gathered/generated full tensors.
  std::map<Key, TileData> send_staging_;    // (producer, mb parity) -> staged tile.
  std::map<int, TileData> grad_accum_;      // grad sid -> iteration accumulator.

  // Static memory plan (BuildMemoryPlan).
  std::set<int> grad_sids_;
  bool incremental_accum_ = false;
  ArenaPlan plan_;
  std::vector<std::vector<TensorRef>> release_;
  // instruction -> (op position -> buffers to free right after computing
  // it): the mid-instruction refinement of `release_`.
  std::map<int, std::map<int, std::vector<TensorRef>>> eager_release_;
  int cur_inst_ = -1;

  // Runtime accounting, logical dtype bytes.
  int64_t live_bytes_ = 0;
  int64_t peak_live_bytes_ = 0;
  int64_t oracle_bytes_ = 0;
  int64_t peak_oracle_bytes_ = 0;
  DeviceTimingReport timing_;
};

// GatherTile at update time tags microbatch -1; reserve it.
constexpr int kMinMicrobatches = 1;
constexpr int kMaxMicrobatches = 1022;  // Tag field holds mb+1 in 10 bits.

Status ValidateInputs(const Graph& graph, const CompiledPipeline& pipeline,
                      const PipelineSimInput& sim_input, const ExecOptions& options) {
  if (!pipeline.feasible) {
    return Status::InvalidArgument("cannot execute an infeasible pipeline: " +
                                   pipeline.infeasible_reason);
  }
  if (pipeline.stages.empty()) {
    return Status::InvalidArgument("pipeline has no stages");
  }
  if (options.reshard == ReshardStrategy::kSignalOnly) {
    return Status::InvalidArgument(
        "kSignalOnly resharding moves 1 synthetic byte and cannot carry tensors");
  }
  if (sim_input.num_microbatches != pipeline.num_microbatches) {
    return Status::InvalidArgument(StrFormat(
        "sim input has %d microbatches but the pipeline was compiled for %d — "
        "build both from one BuildPipelineSimInput call",
        sim_input.num_microbatches, pipeline.num_microbatches));
  }
  if (sim_input.num_microbatches < kMinMicrobatches ||
      sim_input.num_microbatches > kMaxMicrobatches) {
    return Status::InvalidArgument("num_microbatches out of range");
  }
  if (!sim_input.stages.empty() && sim_input.stages.size() != pipeline.stages.size()) {
    return Status::InvalidArgument(
        StrFormat("sim input has %zu stage profiles but the pipeline has %zu stages",
                  sim_input.stages.size(), pipeline.stages.size()));
  }
  if (!sim_input.stage_devices.empty()) {
    if (sim_input.stage_devices.size() != pipeline.stages.size()) {
      return Status::InvalidArgument("sim input stage_devices count mismatches the pipeline");
    }
    for (size_t s = 0; s < pipeline.stages.size(); ++s) {
      if (sim_input.stage_devices[s] != pipeline.stages[s].device_ids) {
        return Status::InvalidArgument(StrFormat(
            "stage %zu device placement drifted between simulator input and pipeline — "
            "build both from one BuildPipelineSimInput call",
            s));
      }
    }
  }
  if (static_cast<int64_t>(graph.size()) >= (int64_t{1} << 21)) {
    return Status::InvalidArgument("graph too large for transfer tags");
  }
  for (const Operator& op : graph.ops()) {
    if (op.layer < 0) {
      return Status::InvalidArgument("op '" + op.name + "' has no layer tag");
    }
  }
  int loss_ops = 0;
  for (const Operator& op : graph.ops()) {
    loss_ops += op.type == OpType::kLoss ? 1 : 0;
  }
  if (loss_ops > 1) {
    return Status::InvalidArgument("executor supports at most one kLoss op");
  }
  return Status::Ok();
}

}  // namespace

void AnnotatePrograms(const Graph& graph, const CompiledPipeline& pipeline,
                      std::vector<MeshProgram>* programs) {
  std::vector<StageSubgraph> subs;
  subs.reserve(pipeline.stages.size());
  for (const CompiledStage& stage : pipeline.stages) {
    subs.push_back(ExtractStage(graph, stage.layer_begin, stage.layer_end));
  }
  const BoundarySets sets = BuildBoundarySets(graph, subs, OwnerStages(graph, pipeline));
  for (MeshProgram& program : *programs) {
    const int s = program.stage;
    for (MeshInstruction& inst : program.instructions) {
      switch (inst.kind) {
        case InstructionKind::kRecvActivation:
          inst.tensor_ids = sets.fwd[static_cast<size_t>(s - 1)];
          break;
        case InstructionKind::kSendActivation:
          inst.tensor_ids = sets.fwd[static_cast<size_t>(s)];
          break;
        case InstructionKind::kRecvGradient:
          inst.tensor_ids = sets.bwd[static_cast<size_t>(s)];
          break;
        case InstructionKind::kSendGradient:
          inst.tensor_ids = sets.bwd[static_cast<size_t>(s - 1)];
          break;
        default:
          break;
      }
    }
  }
}

StatusOr<ExecResult> ExecutePipeline(const Graph& graph, const CompiledPipeline& pipeline,
                                     const ClusterSpec& cluster,
                                     const PipelineSimInput& sim_input,
                                     const ExecOptions& options) {
  const auto wall_start = std::chrono::steady_clock::now();
  if (Status status = ValidateInputs(graph, pipeline, sim_input, options); !status.ok()) {
    return status;
  }
  const int num_stages = static_cast<int>(pipeline.stages.size());
  const int num_microbatches = sim_input.num_microbatches;

  // --- Stage contexts: subgraph, mesh, per-op layouts, programs. ---
  std::vector<StageContext> ctx;
  ctx.reserve(static_cast<size_t>(num_stages));
  for (int s = 0; s < num_stages; ++s) {
    const CompiledStage& stage = pipeline.stages[static_cast<size_t>(s)];
    ctx.emplace_back(DeviceMesh::Create(cluster, stage.placement, stage.logical_shape));
    StageContext& c = ctx.back();
    c.index = s;
    c.sub = ExtractStage(graph, stage.layer_begin, stage.layer_end);
    for (const BoundaryTensor& bt : c.sub.inputs) {
      c.ph_producer[c.sub.op_map[static_cast<size_t>(bt.producer_op)]] = bt.producer_op;
    }

    std::map<std::string, ShardingSpec> summary;
    for (const auto& [name, text] : stage.op_spec_summary) {
      ShardingSpec spec;
      if (ShardingSpec::FromString(text, &spec)) {
        summary.emplace(name, std::move(spec));
      }
    }
    const Graph& sg = c.sub.graph;
    c.layout.resize(static_cast<size_t>(sg.size()));
    c.ring_split.assign(static_cast<size_t>(sg.size()), 1);
    for (int sid = 0; sid < sg.size(); ++sid) {
      const Operator& op = sg.op(sid);
      ShardingSpec spec;
      const auto it = summary.find(op.name);
      if (it != summary.end() && it->second.rank() == op.shape.rank() &&
          it->second.IsValidFor(op.shape, c.mesh)) {
        spec = it->second;
      } else {
        spec = HeuristicLayout(op.shape, c.mesh);
      }
      if (options.reduction == ReductionMode::kRing && op.type == OpType::kEinsum &&
          c.mesh.num_devices() > 1) {
        const std::string contraction = op.einsum.ContractionLabels();
        if (!contraction.empty() &&
            op.einsum.Extent(contraction[0]) % c.mesh.num_devices() == 0) {
          spec = ShardingSpec::Replicated(op.shape.rank());
          c.ring_split[static_cast<size_t>(sid)] = c.mesh.num_devices();
        }
      }
      c.layout[static_cast<size_t>(sid)] = std::move(spec);
    }
    for (const Operator& op : sg.ops()) {
      c.has_loss = c.has_loss || op.type == OpType::kLoss;
    }
  }

  // --- Boundary transfers: which tensors cross each boundary and how. ---
  std::vector<StageSubgraph> subs_view;
  subs_view.reserve(static_cast<size_t>(num_stages));
  for (StageContext& c : ctx) {
    subs_view.push_back(c.sub);  // Copy for the shared helper; cheap graphs.
  }
  const BoundarySets sets = BuildBoundarySets(graph, subs_view, OwnerStages(graph, pipeline));

  // The layout a tensor uses while resident on stage `t`: its stage op's
  // layout when consumed/produced there, a transit layout otherwise.
  const auto layout_on_stage = [&](int t, int q) -> const ShardingSpec& {
    StageContext& c = ctx[static_cast<size_t>(t)];
    const int sid = c.sub.op_map[static_cast<size_t>(q)];
    if (sid >= 0) {
      return c.layout[static_cast<size_t>(sid)];
    }
    const auto it = c.transit_layout.find(q);
    if (it != c.transit_layout.end()) {
      return it->second;
    }
    return c.transit_layout
        .emplace(q, HeuristicLayout(graph.op(q).shape, c.mesh))
        .first->second;
  };

  std::vector<std::vector<BoundaryTransfer>> fwd_transfers(
      static_cast<size_t>(std::max(0, num_stages - 1)));
  std::vector<std::vector<BoundaryTransfer>> bwd_transfers(fwd_transfers.size());
  for (int b = 0; b + 1 < num_stages; ++b) {
    for (int q : sets.fwd[static_cast<size_t>(b)]) {
      BoundaryTransfer t;
      t.producer = q;
      t.shape = graph.op(q).shape;
      t.src_spec = layout_on_stage(b, q);
      t.dst_spec = layout_on_stage(b + 1, q);
      t.program = BuildReshardProgram(ctx[static_cast<size_t>(b)].mesh, t.src_spec,
                                      ctx[static_cast<size_t>(b + 1)].mesh, t.dst_spec, t.shape,
                                      DTypeBytes(graph.op(q).dtype), options.reshard);
      fwd_transfers[static_cast<size_t>(b)].push_back(std::move(t));
    }
    for (int q : sets.bwd[static_cast<size_t>(b)]) {
      BoundaryTransfer t;
      t.producer = q;
      t.shape = graph.op(q).shape;
      t.src_spec = layout_on_stage(b + 1, q);
      t.dst_spec = layout_on_stage(b, q);
      t.program = BuildReshardProgram(ctx[static_cast<size_t>(b + 1)].mesh, t.src_spec,
                                      ctx[static_cast<size_t>(b)].mesh, t.dst_spec, t.shape,
                                      DTypeBytes(graph.op(q).dtype), options.reshard);
      bwd_transfers[static_cast<size_t>(b)].push_back(std::move(t));
    }
  }

  // --- Static instruction lists, validated then annotated. ---
  std::vector<MeshProgram> programs =
      EmitPipelinePrograms(sim_input.schedule, num_stages, num_microbatches);
  if (const std::string error = ValidatePrograms(programs, num_microbatches); !error.empty()) {
    return Status::Internal("emitted programs failed validation: " + error);
  }
  AnnotatePrograms(graph, pipeline, &programs);
  for (int s = 0; s < num_stages; ++s) {
    ctx[static_cast<size_t>(s)].program = programs[static_cast<size_t>(s)];
  }

  // --- Run: one worker thread per logical device. ---
  Transport transport(cluster.num_devices());
  ExecutionProfiler profiler;
  // Analytical per-device memory estimate for each stage, reported next to
  // the planned and measured numbers.
  std::vector<int64_t> modeled_bytes(static_cast<size_t>(num_stages), 0);
  for (int s = 0; s < num_stages; ++s) {
    const CompiledStage& stage = pipeline.stages[static_cast<size_t>(s)];
    const int in_flight =
        MaxInFlightMicrobatches(sim_input.schedule, num_stages, s, num_microbatches);
    modeled_bytes[static_cast<size_t>(s)] =
        std::llround(stage.weight_bytes + in_flight * stage.act_bytes_per_microbatch +
                     stage.work_bytes);
  }
  ExecResult result;
  if (std::any_of(ctx.begin(), ctx.end(),
                  [](const StageContext& c) { return c.has_loss; })) {
    result.microbatch_loss.assign(static_cast<size_t>(num_microbatches), 0.0f);
  }
  ExecShared shared;
  shared.graph = &graph;
  shared.options = options;
  shared.num_microbatches = num_microbatches;
  shared.ctx = &ctx;
  shared.fwd_transfers = &fwd_transfers;
  shared.bwd_transfers = &bwd_transfers;
  shared.transport = &transport;
  shared.profiler = &profiler;
  shared.modeled_bytes = &modeled_bytes;
  shared.result = &result;

  std::vector<std::unique_ptr<DeviceWorker>> workers;
  for (int s = 0; s < num_stages; ++s) {
    for (int r = 0; r < ctx[static_cast<size_t>(s)].mesh.num_devices(); ++r) {
      workers.push_back(std::make_unique<DeviceWorker>(&shared, s, r));
    }
  }
  {
    TraceSpan span("execute_pipeline", "exec");
    std::vector<std::thread> threads;
    threads.reserve(workers.size());
    for (auto& worker : workers) {
      threads.emplace_back([&worker] { worker->Run(); });
    }
    for (std::thread& thread : threads) {
      thread.join();
    }
  }

  result.stage_timings = profiler.stage_timings();
  std::sort(result.device_memory.begin(), result.device_memory.end(),
            [](const DeviceMemoryStats& a, const DeviceMemoryStats& b) {
              return std::tie(a.stage, a.rank) < std::tie(b.stage, b.rank);
            });
  result.total_bytes = transport.TotalBytes();
  result.cross_mesh_bytes = transport.ChannelBytes(Channel::kCrossMesh);
  result.collective_bytes = transport.ChannelBytes(Channel::kCollective);
  result.total_messages = transport.TotalMessages();
  result.num_devices = static_cast<int>(workers.size());
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();
  return result;
}

}  // namespace exec
}  // namespace alpa
