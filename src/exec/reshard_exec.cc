#include "src/exec/reshard_exec.h"

#include <map>
#include <utility>

#include "src/exec/collectives.h"
#include "src/support/logging.h"

namespace alpa {
namespace exec {

namespace {

using Tile = std::vector<std::pair<int64_t, int64_t>>;

int64_t OverlapBox(const Tile& a, const Tile& b, Box* out) {
  out->resize(a.size());
  int64_t volume = 1;
  for (size_t d = 0; d < a.size(); ++d) {
    const int64_t lo = std::max(a[d].first, b[d].first);
    const int64_t hi = std::min(a[d].second, b[d].second);
    if (hi <= lo) {
      return 0;
    }
    (*out)[d] = {lo, hi};
    volume *= hi - lo;
  }
  return volume;
}

// Multi-index of element `k` of `box` in row-major order.
void BoxCoords(const Box& box, int64_t k, std::vector<int64_t>* coords) {
  coords->resize(box.size());
  for (size_t d = box.size(); d > 0; --d) {
    const int64_t extent = box[d - 1].second - box[d - 1].first;
    (*coords)[d - 1] = box[d - 1].first + k % extent;
    k /= extent;
  }
}

// Row-major linear index of full-tensor coords within `tile`'s box.
int64_t TileIndex(const TileData& tile, const std::vector<int64_t>& coords) {
  int64_t linear = 0;
  for (size_t d = 0; d < tile.box.size(); ++d) {
    const auto& [lo, hi] = tile.box[d];
    ALPA_CHECK_GE(coords[d], lo);
    ALPA_CHECK_LT(coords[d], hi);
    linear = linear * (hi - lo) + (coords[d] - lo);
  }
  return linear;
}

std::vector<float> ReadChunk(const TileData& tile, const ReshardChunk& chunk) {
  std::vector<float> payload;
  payload.reserve(static_cast<size_t>(chunk.elem_end - chunk.elem_begin));
  std::vector<int64_t> coords;
  for (int64_t k = chunk.elem_begin; k < chunk.elem_end; ++k) {
    BoxCoords(chunk.box, k, &coords);
    payload.push_back(tile.data[static_cast<size_t>(TileIndex(tile, coords))]);
  }
  return payload;
}

void WriteChunk(const std::vector<float>& payload, const ReshardChunk& chunk, TileData* tile) {
  ALPA_CHECK_EQ(static_cast<int64_t>(payload.size()), chunk.elem_end - chunk.elem_begin);
  std::vector<int64_t> coords;
  for (int64_t k = chunk.elem_begin; k < chunk.elem_end; ++k) {
    BoxCoords(chunk.box, k, &coords);
    tile->data[static_cast<size_t>(TileIndex(*tile, coords))] =
        payload[static_cast<size_t>(k - chunk.elem_begin)];
  }
}

}  // namespace

ReshardProgram BuildReshardProgram(const DeviceMesh& src_mesh, const ShardingSpec& src_spec,
                                   const DeviceMesh& dst_mesh, const ShardingSpec& dst_spec,
                                   const TensorShape& shape, int64_t dtype_bytes,
                                   ReshardStrategy strategy) {
  ALPA_CHECK(strategy != ReshardStrategy::kSignalOnly)
      << "signal-only resharding moves no tensor data and cannot be executed";
  ReshardProgram program;

  // The loops below mirror PlanCrossMeshResharding step for step (same map
  // ordering, same round-robin), so p2p[i] pairs with plan.sends[i].
  std::map<Tile, std::vector<int>> src_tiles;
  for (int i = 0; i < src_mesh.dim(0); ++i) {
    for (int j = 0; j < src_mesh.dim(1); ++j) {
      src_tiles[src_spec.TileSlice(shape, src_mesh, i, j)].push_back(src_mesh.DeviceAt(i, j));
    }
  }
  std::map<Tile, std::vector<int>> dst_groups;
  for (int i = 0; i < dst_mesh.dim(0); ++i) {
    for (int j = 0; j < dst_mesh.dim(1); ++j) {
      dst_groups[dst_spec.TileSlice(shape, dst_mesh, i, j)].push_back(dst_mesh.DeviceAt(i, j));
    }
  }

  int dst_counter = 0;
  for (const auto& [dst_tile, group] : dst_groups) {
    const int group_size = static_cast<int>(group.size());
    const bool use_allgather = strategy == ReshardStrategy::kLocalAllGather && group_size > 1;
    for (const auto& [src_tile, replicas] : src_tiles) {
      Box overlap;
      const int64_t elems = OverlapBox(src_tile, dst_tile, &overlap);
      if (elems <= 0) {
        continue;
      }
      for (int member = 0; member < group_size; ++member) {
        ReshardChunk chunk;
        chunk.src_device = replicas[static_cast<size_t>((dst_counter + member) %
                                                        static_cast<int>(replicas.size()))];
        chunk.dst_device = group[static_cast<size_t>(member)];
        chunk.box = overlap;
        if (use_allgather) {
          chunk.elem_begin = ChunkBound(elems, group_size, member);
          chunk.elem_end = ChunkBound(elems, group_size, member + 1);
        } else {
          chunk.elem_begin = 0;
          chunk.elem_end = elems;
        }
        chunk.wire_bytes = (chunk.elem_end - chunk.elem_begin) * dtype_bytes;
        program.total_p2p_bytes += chunk.wire_bytes;
        program.p2p.push_back(std::move(chunk));
      }
      if (use_allgather) {
        // Each member forwards its slice to every other member over the
        // destination mesh's local links.
        for (int member = 0; member < group_size; ++member) {
          for (int other = 0; other < group_size; ++other) {
            if (other == member) {
              continue;
            }
            ReshardChunk exchange;
            exchange.src_device = group[static_cast<size_t>(member)];
            exchange.dst_device = group[static_cast<size_t>(other)];
            exchange.box = overlap;
            exchange.elem_begin = ChunkBound(elems, group_size, member);
            exchange.elem_end = ChunkBound(elems, group_size, member + 1);
            exchange.wire_bytes = (exchange.elem_end - exchange.elem_begin) * dtype_bytes;
            program.total_local_bytes += exchange.wire_bytes;
            program.local.push_back(std::move(exchange));
          }
        }
      }
    }
    ++dst_counter;
  }
  ALPA_CHECK_LT(static_cast<int64_t>(program.p2p.size()), int64_t{1} << 20);
  ALPA_CHECK_LT(static_cast<int64_t>(program.local.size()), int64_t{1} << 20);
  return program;
}

void ExecuteReshardForDevice(Transport& transport, const ReshardProgram& program, int device,
                             const TileData* src_tile, TileData* dst_tile, uint64_t tag_base) {
  // P2P sends first (buffered, non-blocking), then receives: program order
  // alone guarantees progress.
  for (size_t i = 0; i < program.p2p.size(); ++i) {
    const ReshardChunk& chunk = program.p2p[i];
    if (chunk.src_device != device) {
      continue;
    }
    ALPA_CHECK(src_tile != nullptr);
    transport.Send(chunk.src_device, chunk.dst_device, tag_base + static_cast<uint64_t>(i),
                   ReadChunk(*src_tile, chunk), chunk.wire_bytes, Channel::kCrossMesh);
  }
  for (size_t i = 0; i < program.p2p.size(); ++i) {
    const ReshardChunk& chunk = program.p2p[i];
    if (chunk.dst_device != device) {
      continue;
    }
    ALPA_CHECK(dst_tile != nullptr);
    WriteChunk(transport.Recv(device, tag_base + static_cast<uint64_t>(i)), chunk, dst_tile);
  }
  // Local all-gather exchange: forwards slices received over the slow path.
  constexpr uint64_t kLocalAux = uint64_t{1} << 20;
  for (size_t i = 0; i < program.local.size(); ++i) {
    const ReshardChunk& chunk = program.local[i];
    if (chunk.src_device != device) {
      continue;
    }
    ALPA_CHECK(dst_tile != nullptr);  // The slice lives in this device's dst tile.
    transport.Send(chunk.src_device, chunk.dst_device,
                   tag_base + kLocalAux + static_cast<uint64_t>(i), ReadChunk(*dst_tile, chunk),
                   chunk.wire_bytes, Channel::kCollective);
  }
  for (size_t i = 0; i < program.local.size(); ++i) {
    const ReshardChunk& chunk = program.local[i];
    if (chunk.dst_device != device) {
      continue;
    }
    ALPA_CHECK(dst_tile != nullptr);
    WriteChunk(transport.Recv(device, tag_base + kLocalAux + static_cast<uint64_t>(i)), chunk,
               dst_tile);
  }
}

}  // namespace exec
}  // namespace alpa
