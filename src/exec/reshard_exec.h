// Execution of CrossMeshPlan resharding as real data movement.
//
// BuildReshardProgram replays PlanCrossMeshResharding's loops exactly —
// same std::map tile iteration order, same round-robin sender choice — so
// program.p2p[i] corresponds 1:1 to plan.sends[i] and the fig12 bench can
// compare each task's measured wire bytes against the planner's byte
// accounting directly. Under kLocalAllGather each destination-group member
// receives only its 1/|group| slice of every overlap box over the slow
// path (elements in box row-major order, boundaries i*E/g) and the group
// then exchanges slices over destination-mesh links (program.local).
//
// kSignalOnly plans move 1 synthetic byte and cannot carry tensors; the
// executor rejects them.
#ifndef SRC_EXEC_RESHARD_EXEC_H_
#define SRC_EXEC_RESHARD_EXEC_H_

#include <cstdint>
#include <vector>

#include "src/exec/host_tensor.h"
#include "src/exec/transport.h"
#include "src/mesh/device_mesh.h"
#include "src/runtime/cross_mesh.h"
#include "src/spec/sharding_spec.h"

namespace alpa {
namespace exec {

// One P2P message: elements [elem_begin, elem_end) of `box` (an index box
// of the full tensor) in box row-major order.
struct ReshardChunk {
  int src_device = 0;  // Global device ids.
  int dst_device = 0;
  Box box;
  int64_t elem_begin = 0;
  int64_t elem_end = 0;
  int64_t wire_bytes = 0;
};

struct ReshardProgram {
  std::vector<ReshardChunk> p2p;  // Aligned 1:1 with CrossMeshPlan::sends.
  // Local all-gather slice exchanges within destination replication groups.
  std::vector<ReshardChunk> local;
  int64_t total_p2p_bytes = 0;
  int64_t total_local_bytes = 0;
};

ReshardProgram BuildReshardProgram(const DeviceMesh& src_mesh, const ShardingSpec& src_spec,
                                   const DeviceMesh& dst_mesh, const ShardingSpec& dst_spec,
                                   const TensorShape& shape, int64_t dtype_bytes,
                                   ReshardStrategy strategy);

// Runs `device`'s role: sends every p2p chunk it sources (reading
// `src_tile`), receives the chunks addressed to it into `dst_tile` (box
// preset per dst_spec, data sized), then performs its local-exchange sends
// and receives. Either tile pointer may be null when the device is only on
// one side. `tag_base`: a MakeTag unique to (tensor, microbatch, hop) with
// zero aux; chunk indices consume aux values (p2p below 1<<20, local
// above).
void ExecuteReshardForDevice(Transport& transport, const ReshardProgram& program, int device,
                             const TileData* src_tile, TileData* dst_tile, uint64_t tag_base);

}  // namespace exec
}  // namespace alpa

#endif  // SRC_EXEC_RESHARD_EXEC_H_
