// Single-device reference interpreter: the numeric oracle.
//
// Evaluates a training graph (forward + backward + update ops, as built by
// BuildTrainingGraph) on one device with full tensors, using the same
// per-cell kernels as the sharded executor (src/exec/kernels.h). Microbatch
// m's leaves are generated deterministically from (seed, op name, m); the
// gradient-accumulation targets (operand 1 of each kUpdate) are summed over
// microbatches in index order; updates apply once at the end. Under the
// executor's deterministic reduction mode the two must agree bit for bit.
#ifndef SRC_EXEC_INTERPRETER_H_
#define SRC_EXEC_INTERPRETER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/exec/host_tensor.h"
#include "src/graph/graph.h"

namespace alpa {
namespace exec {

struct ReferenceResult {
  // Loss value of each microbatch (a float computed by the shared kLoss
  // kernel, stored exactly).
  std::vector<float> microbatch_loss;
  // Parameter name -> gradient accumulated over all microbatches (the
  // kUpdate op's second operand).
  std::map<std::string, HostTensor> weight_grads;
  // Parameter name -> value after the optimizer step.
  std::map<std::string, HostTensor> updated_params;
};

ReferenceResult RunReference(const Graph& graph, int num_microbatches, uint64_t seed);

}  // namespace exec
}  // namespace alpa

#endif  // SRC_EXEC_INTERPRETER_H_
