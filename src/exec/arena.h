// Arena memory planning: best-fit offset assignment over live intervals.
//
// Given the liveness intervals of one device's buffers, PlanArena assigns
// each buffer a byte offset in a single slab such that buffers whose
// intervals overlap in time never overlap in address space. The slab's
// high-water mark is the device's *planned* peak memory — the number
// ExecResult reports next to the runtime-measured peak and the analytical
// model's estimate. The Arena class is the matching runtime slab: one
// 64-byte-aligned allocation serving kernel scratch (GEMM packing panels,
// f64 partial buffers) through a bump pointer, so the hot loop never hits
// the system allocator.
#ifndef SRC_EXEC_ARENA_H_
#define SRC_EXEC_ARENA_H_

#include <cstdint>
#include <vector>

#include "src/exec/host_tensor.h"
#include "src/exec/liveness.h"

namespace alpa {
namespace exec {

struct ArenaAssignment {
  TensorRef ref;
  int64_t offset = 0;
  int64_t bytes = 0;
  int def = 0;
  int last_use = 0;
};

struct ArenaPlan {
  std::vector<ArenaAssignment> assignments;
  // Slab size: max over assignments of offset + bytes.
  int64_t arena_bytes = 0;
  // Sum-of-live lower bound (PeakLiveBytes of the input intervals).
  int64_t peak_live_bytes = 0;
};

// Best-fit placement: intervals are processed in (def, size-descending)
// order; each is placed in the smallest address gap — among the already
// placed, time-overlapping assignments — that fits, or at the current high
// water mark. Offsets are aligned to `alignment` bytes. Zero-byte intervals
// get offset 0.
ArenaPlan PlanArena(const std::vector<LiveInterval>& intervals, int64_t alignment = 64);

// True when no two time-overlapping assignments overlap in [offset,
// offset + bytes). The invariant PlanArena guarantees; exposed for tests.
bool PlanIsValid(const ArenaPlan& plan);

// Runtime scratch slab: bump allocation out of one aligned buffer, with
// geometric growth between (never during) iterations. AllocFloats /
// AllocDoubles return 64-byte-aligned views valid until the next Reset.
class Arena {
 public:
  float* AllocFloats(int64_t n);
  double* AllocDoubles(int64_t n);
  void Reset() { used_ = 0; }
  int64_t capacity_bytes() const { return static_cast<int64_t>(slab_.size()) * 4; }
  int64_t high_water_bytes() const { return high_water_; }

 private:
  void* AllocBytes(int64_t bytes);

  AlignedFloatBuffer slab_;
  int64_t used_ = 0;        // Bytes handed out since the last Reset.
  int64_t high_water_ = 0;  // Max used_ ever observed.
  // Overflow blocks for requests that outgrow the slab mid-iteration; the
  // slab catches up (and these drop) on the next Reset.
  std::vector<AlignedFloatBuffer> overflow_;
};

}  // namespace exec
}  // namespace alpa

#endif  // SRC_EXEC_ARENA_H_
