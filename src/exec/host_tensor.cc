#include "src/exec/host_tensor.h"

#include <algorithm>

#include "src/support/logging.h"

namespace alpa {
namespace exec {

Box FullBox(const TensorShape& shape) {
  Box box(static_cast<size_t>(shape.rank()));
  for (int d = 0; d < shape.rank(); ++d) {
    box[static_cast<size_t>(d)] = {0, shape.dim(d)};
  }
  return box;
}

TensorShape BoxShape(const Box& box) {
  std::vector<int64_t> dims(box.size());
  for (size_t d = 0; d < box.size(); ++d) {
    dims[d] = box[d].second - box[d].first;
  }
  return TensorShape(std::move(dims));
}

int64_t BoxElements(const Box& box) {
  int64_t n = 1;
  for (const auto& [lo, hi] : box) {
    n *= hi - lo;
  }
  return n;
}

bool BoxContains(const Box& outer, const Box& inner) {
  if (outer.size() != inner.size()) {
    return false;
  }
  for (size_t d = 0; d < outer.size(); ++d) {
    if (inner[d].first < outer[d].first || inner[d].second > outer[d].second) {
      return false;
    }
  }
  return true;
}

std::string BoxToString(const Box& box) {
  std::string s = "[";
  for (size_t d = 0; d < box.size(); ++d) {
    if (d > 0) {
      s += ",";
    }
    s += std::to_string(box[d].first) + ":" + std::to_string(box[d].second);
  }
  return s + "]";
}

int64_t LinearIndexOf(const TensorShape& shape, const std::vector<int64_t>& index) {
  ALPA_CHECK_EQ(static_cast<int>(index.size()), shape.rank());
  int64_t linear = 0;
  for (int d = 0; d < shape.rank(); ++d) {
    linear = linear * shape.dim(d) + index[static_cast<size_t>(d)];
  }
  return linear;
}

int64_t HostTensor::LinearIndex(const std::vector<int64_t>& index) const {
  return LinearIndexOf(shape_, index);
}

TileData FullTile(const TensorShape& shape) {
  TileData tile;
  tile.full_shape = shape;
  tile.box = FullBox(shape);
  tile.data.assign(static_cast<size_t>(shape.elements()), 0.0f);
  return tile;
}

TileData ExtractTile(const HostTensor& full, const Box& box) {
  ALPA_CHECK(BoxContains(FullBox(full.shape()), box));
  TileData tile;
  tile.full_shape = full.shape();
  tile.box = box;
  tile.data.resize(static_cast<size_t>(std::max<int64_t>(1, BoxElements(box))));
  // Runs along the innermost dim are contiguous in both buffers.
  ForEachRun(box, [&](int64_t k, const std::vector<int64_t>& index, int64_t len) {
    std::memcpy(tile.data.data() + k, full.data() + full.LinearIndex(index),
                sizeof(float) * static_cast<size_t>(len));
  });
  return tile;
}

void InsertTile(const TileData& tile, HostTensor* full) {
  ALPA_CHECK(tile.full_shape == full->shape());
  ForEachRun(tile.box, [&](int64_t k, const std::vector<int64_t>& index, int64_t len) {
    std::memcpy(full->data() + full->LinearIndex(index), tile.data.data() + k,
                sizeof(float) * static_cast<size_t>(len));
  });
}

namespace {

// SplitMix64 finalizer: the repo's standard bit mixer (src/support/rng.h).
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

uint64_t HashName(const std::string& name) {
  uint64_t h = 1469598103934665603ULL;
  for (char c : name) {
    h ^= static_cast<uint64_t>(static_cast<unsigned char>(c));
    h *= 1099511628211ULL;
  }
  return h;
}

float GenValue(uint64_t key, int64_t index) {
  const uint64_t h = Mix(key ^ Mix(static_cast<uint64_t>(index) + 1));
  // 53 high bits -> [0, 1) -> [-0.25, 0.25).
  const double unit = static_cast<double>(h >> 11) * 0x1.0p-53;
  return static_cast<float>((unit - 0.5) * 0.5);
}

float GenIntValue(uint64_t key, int64_t index, int64_t bound) {
  ALPA_CHECK_GT(bound, 0);
  const uint64_t h = Mix(key ^ Mix(static_cast<uint64_t>(index) + 1));
  return static_cast<float>(static_cast<int64_t>(h % static_cast<uint64_t>(bound)));
}

uint64_t LeafKey(uint64_t seed, const std::string& name, OpType type, int microbatch) {
  uint64_t key = Mix(seed) ^ HashName(name);
  if (type == OpType::kInput) {
    key = Mix(key ^ static_cast<uint64_t>(microbatch + 1));
  }
  return key;
}

namespace {

// Integer leaves (token ids, class labels) stay small so downstream modulo
// lookups hit every table row on tiny test vocabularies.
constexpr int64_t kIntLeafBound = 4096;

}  // namespace

void GenerateLeafTile(const Operator& op, uint64_t seed, int microbatch, TileData* tile) {
  ALPA_CHECK(op.type == OpType::kInput || op.type == OpType::kParameter);
  const uint64_t key = LeafKey(seed, op.name, op.type, microbatch);
  const bool integer = op.dtype == DType::kI32;
  tile->data.resize(static_cast<size_t>(std::max<int64_t>(1, BoxElements(tile->box))));
  // Within a run the full-tensor linear index just increments.
  ForEachRun(tile->box, [&](int64_t k, const std::vector<int64_t>& index, int64_t len) {
    const int64_t linear = LinearIndexOf(op.shape, index);
    float* out = tile->data.data() + k;
    if (integer) {
      for (int64_t i = 0; i < len; ++i) {
        out[i] = GenIntValue(key, linear + i, kIntLeafBound);
      }
    } else {
      for (int64_t i = 0; i < len; ++i) {
        out[i] = GenValue(key, linear + i);
      }
    }
  });
}

HostTensor GenerateLeaf(const Operator& op, uint64_t seed, int microbatch) {
  TileData tile;
  tile.full_shape = op.shape;
  tile.box = FullBox(op.shape);
  GenerateLeafTile(op, seed, microbatch, &tile);
  // The tile covers every element, so the zero fill would be pure waste.
  HostTensor full = HostTensor::Uninitialized(op.shape);
  InsertTile(tile, &full);
  return full;
}

}  // namespace exec
}  // namespace alpa
