// Shared-memory message transport between device worker threads.
//
// One mailbox per global device: tagged messages, buffered non-blocking
// sends, blocking tagged receives. All tensor data crossing threads moves
// through here by value — workers never share tensor buffers — so the
// executor is race-free by construction (and the TSan build checks it).
//
// Every send carries `wire_bytes`, the bytes the message would occupy on a
// real interconnect (shards of an fp16 tensor charge 2 bytes/element even
// though the in-memory payload is float), counted on atomic per-link
// counters. These counters are the "measured" side of the byte oracle: the
// fig12 bench and the collective tests compare them against the Table-1
// cost model's predictions.
#ifndef SRC_EXEC_TRANSPORT_H_
#define SRC_EXEC_TRANSPORT_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace alpa {
namespace exec {

// Traffic classes for byte accounting (ExecResult reports them separately).
enum class Channel {
  kCollective,  // Intra-mesh collectives + local all-gather exchanges.
  kCrossMesh,   // Cross-mesh boundary P2P (resharding).
};

// Structured 64-bit message tags: [kind:3][id:21][mb:10][aux:30]. Field
// widths are generous upper bounds (2M ops, 1k microbatches, 1G aux) and
// CHECKed at pack time; `aux` disambiguates chunks/rounds/source ranks
// within one logical transfer.
constexpr int kTagReshard = 1;     // Cross-mesh P2P chunks.
constexpr int kTagLocalGather = 2; // Local all-gather after a sliced reshard.
constexpr int kTagAllGather = 3;   // Intra-mesh tile all-gather.
constexpr int kTagRing = 4;        // Ring all-reduce steps.
uint64_t MakeTag(int kind, int64_t id, int microbatch, int64_t aux);

class Transport {
 public:
  explicit Transport(int num_devices);

  int num_devices() const { return static_cast<int>(mailboxes_.size()); }

  // Buffered, non-blocking. `wire_bytes` < 0 charges the payload size in
  // f32 (payload.size() * 4).
  void Send(int src, int dst, uint64_t tag, std::vector<float> payload,
            int64_t wire_bytes = -1, Channel channel = Channel::kCollective);
  // Blocks until a message with `tag` arrives at `dst`.
  std::vector<float> Recv(int dst, uint64_t tag);

  int64_t LinkBytes(int src, int dst) const;
  int64_t TotalBytes() const;
  int64_t ChannelBytes(Channel channel) const;
  int64_t TotalMessages() const { return total_messages_.load(std::memory_order_relaxed); }
  void ResetCounters();

 private:
  struct Mailbox {
    std::mutex mu;
    std::condition_variable cv;
    std::unordered_multimap<uint64_t, std::vector<float>> messages;
  };

  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::vector<std::atomic<int64_t>> link_bytes_;  // n*n, row-major [src][dst].
  std::atomic<int64_t> channel_bytes_[2] = {};
  std::atomic<int64_t> total_messages_{0};
};

}  // namespace exec
}  // namespace alpa

#endif  // SRC_EXEC_TRANSPORT_H_
