#include "src/exec/interpreter.h"

#include <memory>
#include <utility>

#include "src/exec/kernels.h"
#include "src/support/logging.h"

namespace alpa {
namespace exec {

ReferenceResult RunReference(const Graph& graph, int num_microbatches, uint64_t seed) {
  ALPA_CHECK_GE(num_microbatches, 1);
  ReferenceResult result;

  // Parameters are microbatch-invariant; generate once.
  std::map<int, HostTensor> params;
  for (int id : graph.ParameterIds()) {
    params.emplace(id, GenerateLeaf(graph.op(id), seed, /*microbatch=*/0));
  }

  // Gradient accumulators: operand 1 of every kUpdate op.
  std::map<int, HostTensor> grad_acc;
  std::vector<int> update_ops;
  for (const Operator& op : graph.ops()) {
    if (op.type == OpType::kUpdate) {
      update_ops.push_back(op.id);
      const int target = op.operands[1];
      grad_acc.emplace(target, HostTensor(graph.op(target).shape));
    }
  }

  for (int mb = 0; mb < num_microbatches; ++mb) {
    std::vector<std::unique_ptr<HostTensor>> values(static_cast<size_t>(graph.size()));
    const auto value_of = [&](int id) -> const HostTensor* {
      if (auto it = params.find(id); it != params.end()) {
        return &it->second;
      }
      ALPA_CHECK(values[static_cast<size_t>(id)] != nullptr);
      return values[static_cast<size_t>(id)].get();
    };
    for (const Operator& op : graph.ops()) {
      if (op.type == OpType::kParameter || op.type == OpType::kUpdate) {
        continue;
      }
      if (op.type == OpType::kInput) {
        values[static_cast<size_t>(op.id)] =
            std::make_unique<HostTensor>(GenerateLeaf(op, seed, mb));
        continue;
      }
      std::vector<const HostTensor*> operands;
      operands.reserve(op.operands.size());
      for (int operand : op.operands) {
        operands.push_back(value_of(operand));
      }
      TileData out = FullTile(op.shape);
      EvalOpRegion(op, operands, &out);
      auto full = std::make_unique<HostTensor>(op.shape);
      InsertTile(out, full.get());
      values[static_cast<size_t>(op.id)] = std::move(full);
      if (op.type == OpType::kLoss) {
        result.microbatch_loss.push_back(values[static_cast<size_t>(op.id)]->data()[0]);
      }
    }
    // Accumulate in microbatch order: plain float adds, the same per-cell
    // order the executor uses, so accumulation is bit-identical.
    for (auto& [target, acc] : grad_acc) {
      const HostTensor& contribution = *value_of(target);
      for (int64_t i = 0; i < acc.elements(); ++i) {
        acc.data()[i] += contribution.data()[i];
      }
    }
  }

  for (int id : update_ops) {
    const Operator& update = graph.op(id);
    const HostTensor& param = params.at(update.operands[0]);
    const HostTensor& grad = grad_acc.at(update.operands[1]);
    TileData out = FullTile(update.shape);
    EvalOpRegion(update, {&param, &grad}, &out);
    HostTensor updated(update.shape);
    InsertTile(out, &updated);
    const std::string& name = graph.op(update.operands[0]).name;
    result.weight_grads.emplace(name, grad);
    result.updated_params.emplace(name, std::move(updated));
  }
  return result;
}

}  // namespace exec
}  // namespace alpa
