#include "src/exec/arena.h"

#include <algorithm>

#include "src/support/logging.h"

namespace alpa {
namespace exec {

namespace {

int64_t AlignUp(int64_t x, int64_t alignment) {
  return (x + alignment - 1) / alignment * alignment;
}

bool TimeOverlap(const ArenaAssignment& a, const ArenaAssignment& b) {
  return a.def <= b.last_use && b.def <= a.last_use;
}

}  // namespace

ArenaPlan PlanArena(const std::vector<LiveInterval>& intervals, int64_t alignment) {
  ALPA_CHECK_GT(alignment, 0);
  ArenaPlan plan;
  plan.peak_live_bytes = PeakLiveBytes(intervals);

  // Placement order: interval start, then size descending — big long-lived
  // buffers anchor low offsets, small short-lived ones fill the gaps.
  std::vector<LiveInterval> order = intervals;
  std::sort(order.begin(), order.end(), [](const LiveInterval& a, const LiveInterval& b) {
    if (a.def != b.def) {
      return a.def < b.def;
    }
    if (a.bytes != b.bytes) {
      return a.bytes > b.bytes;
    }
    return a.ref < b.ref;
  });

  for (const LiveInterval& interval : order) {
    ArenaAssignment assignment;
    assignment.ref = interval.ref;
    assignment.bytes = interval.bytes;
    assignment.def = interval.def;
    assignment.last_use = interval.last_use;
    if (interval.bytes <= 0) {
      plan.assignments.push_back(assignment);
      continue;
    }
    // Address ranges already occupied during this interval's lifetime.
    std::vector<std::pair<int64_t, int64_t>> busy;
    for (const ArenaAssignment& placed : plan.assignments) {
      if (placed.bytes > 0 && TimeOverlap(placed, assignment)) {
        busy.push_back({placed.offset, placed.offset + placed.bytes});
      }
    }
    std::sort(busy.begin(), busy.end());
    // Best fit: the smallest gap between busy ranges that holds the buffer;
    // ties go to the lower offset. Falls back to the end of the last range.
    int64_t best_offset = -1;
    int64_t best_waste = -1;
    int64_t cursor = 0;
    for (const auto& [lo, hi] : busy) {
      if (lo > cursor) {
        const int64_t gap = lo - cursor;
        if (gap >= interval.bytes) {
          const int64_t waste = gap - interval.bytes;
          if (best_waste < 0 || waste < best_waste) {
            best_waste = waste;
            best_offset = cursor;
          }
        }
      }
      cursor = std::max(cursor, AlignUp(hi, alignment));
    }
    assignment.offset = best_offset >= 0 ? best_offset : cursor;
    plan.arena_bytes = std::max(plan.arena_bytes, assignment.offset + assignment.bytes);
    plan.assignments.push_back(assignment);
  }
  return plan;
}

bool PlanIsValid(const ArenaPlan& plan) {
  for (size_t i = 0; i < plan.assignments.size(); ++i) {
    const ArenaAssignment& a = plan.assignments[i];
    for (size_t j = i + 1; j < plan.assignments.size(); ++j) {
      const ArenaAssignment& b = plan.assignments[j];
      if (a.bytes <= 0 || b.bytes <= 0 || !TimeOverlap(a, b)) {
        continue;
      }
      const bool disjoint = a.offset + a.bytes <= b.offset || b.offset + b.bytes <= a.offset;
      if (!disjoint) {
        return false;
      }
    }
  }
  return true;
}

void* Arena::AllocBytes(int64_t bytes) {
  const int64_t aligned = AlignUp(bytes, 64);
  const int64_t capacity = capacity_bytes();
  if (used_ + aligned > capacity) {
    high_water_ = std::max(high_water_, used_ + aligned);
    if (used_ == 0) {
      // Nothing handed out yet: grow the slab in place.
      slab_.ResizeUninitialized(static_cast<size_t>(AlignUp(aligned * 2, 64) / 4));
    } else {
      // Mid-iteration overflow: dedicated block now, bigger slab at Reset.
      overflow_.emplace_back(static_cast<size_t>(aligned / 4));
      return overflow_.back().data();
    }
  }
  char* p = reinterpret_cast<char*>(slab_.data()) + used_;
  used_ += aligned;
  high_water_ = std::max(high_water_, used_);
  return p;
}

float* Arena::AllocFloats(int64_t n) {
  return static_cast<float*>(AllocBytes(n * static_cast<int64_t>(sizeof(float))));
}

double* Arena::AllocDoubles(int64_t n) {
  return static_cast<double*>(AllocBytes(n * static_cast<int64_t>(sizeof(double))));
}

}  // namespace exec
}  // namespace alpa
