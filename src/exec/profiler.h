// Execution profiling: measured per-stage phase times from a pipeline run.
//
// Each device worker accumulates wall-clock time per phase while executing
// its instruction list and reports once at the end of the run. The profiler
// merges reports per stage, taking the max across the stage's devices
// (devices in a stage run the same SPMD program; the slowest one bounds the
// stage). The merged timings land in ExecResult and — through
// MeasuredProfileSource — feed back into the inter-op stage DP, replacing
// analytical costs with measured ones.
#ifndef SRC_EXEC_PROFILER_H_
#define SRC_EXEC_PROFILER_H_

#include <cstdint>
#include <mutex>
#include <vector>

namespace alpa {
namespace exec {

enum class ExecPhase {
  kForward = 0,
  kBackward = 1,
  kUpdate = 2,
  kBoundary = 3,    // Send/recv staging and tile extraction.
  kCollective = 4,  // Ring all-reduce / all-gather time inside compute ops.
};
inline constexpr int kNumExecPhases = 5;

// Measured timings of one pipeline stage, merged across its devices.
struct StageTiming {
  int stage = -1;
  // Seconds per phase, max across the stage's devices.
  double phase_seconds[kNumExecPhases] = {0, 0, 0, 0, 0};
  // Number of device reports merged in.
  int num_devices = 0;

  double forward_seconds() const { return phase_seconds[0]; }
  double backward_seconds() const { return phase_seconds[1]; }
  double compute_seconds() const { return phase_seconds[0] + phase_seconds[1]; }
};

// One worker's accumulated phase times. Purely local: no locks in the hot
// path; the worker adds into `seconds` and hands the struct to the profiler
// once when its instruction list is done.
struct DeviceTimingReport {
  int stage = -1;
  double seconds[kNumExecPhases] = {0, 0, 0, 0, 0};

  void Add(ExecPhase phase, double s) { seconds[static_cast<int>(phase)] += s; }
};

// Thread-safe sink for worker reports.
class ExecutionProfiler {
 public:
  void Report(const DeviceTimingReport& report);

  // Per-stage merged timings, ordered by stage id.
  std::vector<StageTiming> stage_timings() const;

 private:
  mutable std::mutex mu_;
  std::vector<StageTiming> stages_;
};

}  // namespace exec
}  // namespace alpa

#endif  // SRC_EXEC_PROFILER_H_
