// Sharding specs (4.1).
//
// A sharding spec assigns to each tensor dimension either R (replicated) or
// S with a superscript naming the mesh axes the partitions are laid out
// along: S^0, S^1, or S^01 (both axes). Each mesh axis shards at most one
// tensor dimension. The spec of a 2D tensor on a 2x2 mesh therefore ranges
// over RR, S^0R, RS^0, S^1R, RS^1, S^0S^1, S^1S^0, S^01R, RS^01 (Fig. 5).
#ifndef SRC_SPEC_SHARDING_SPEC_H_
#define SRC_SPEC_SHARDING_SPEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/graph/tensor.h"
#include "src/mesh/device_mesh.h"

namespace alpa {

enum class DimSharding : uint8_t {
  kR,    // Replicated.
  kS0,   // Sharded along mesh axis 0.
  kS1,   // Sharded along mesh axis 1.
  kS01,  // Sharded along both mesh axes (axis 0 major).
};

class ShardingSpec {
 public:
  ShardingSpec() = default;
  static ShardingSpec Replicated(int rank);
  // CHECK-fails if a mesh axis shards more than one dimension.
  static ShardingSpec Make(std::vector<DimSharding> dims);
  // Builds a spec of `rank` replicated dims with dims[d] = sharding.
  static ShardingSpec OneDim(int rank, int d, DimSharding sharding);

  int rank() const { return static_cast<int>(dims_.size()); }
  DimSharding dim(int d) const { return dims_[static_cast<size_t>(d)]; }
  const std::vector<DimSharding>& dims() const { return dims_; }

  // Tensor dimension sharded along mesh axis `axis`, or -1 if none.
  int DimForAxis(int axis) const;
  bool IsFullyReplicated() const;
  // Number of shards of tensor dim d on `mesh` (1 if replicated).
  int64_t ShardsForDim(int d, const DeviceMesh& mesh) const;
  // Total number of distinct shards (= product over sharded dims).
  int64_t TotalShards(const DeviceMesh& mesh) const;
  // Per-device bytes of a tensor stored with this spec.
  int64_t ShardedBytes(const TensorShape& shape, int64_t dtype_bytes,
                       const DeviceMesh& mesh) const;
  // True if every sharded dim is divisible by its shard count.
  bool IsValidFor(const TensorShape& shape, const DeviceMesh& mesh) const;

  // Index intervals [begin, end) per tensor dim held by logical device
  // (i, j) of `mesh`.
  std::vector<std::pair<int64_t, int64_t>> TileSlice(const TensorShape& shape,
                                                     const DeviceMesh& mesh, int i, int j) const;

  // All syntactically valid specs for a tensor of `rank` dims (on a 2D
  // mesh): each mesh axis shards at most one dim.
  static std::vector<ShardingSpec> Enumerate(int rank);

  bool operator==(const ShardingSpec&) const = default;
  bool operator<(const ShardingSpec& other) const { return dims_ < other.dims_; }

  // E.g. "S0R", "RS01", "RR".
  std::string ToString() const;

  // Inverse of ToString (including "scalar" for rank 0). Returns false on
  // malformed input or a spec where a mesh axis shards two dims; `out` is
  // untouched then. The executor parses CompiledStage::op_spec_summary
  // through this.
  static bool FromString(const std::string& text, ShardingSpec* out);

 private:
  std::vector<DimSharding> dims_;
};

// Communication time to convert a tensor from `src` to `dst` layout within
// one mesh (Table 1). Zero when src == dst or only local slicing is needed.
double ReshardCost(const ShardingSpec& src, const ShardingSpec& dst, const TensorShape& shape,
                   int64_t dtype_bytes, const DeviceMesh& mesh);

}  // namespace alpa

#endif  // SRC_SPEC_SHARDING_SPEC_H_
