#include "src/spec/sharding_spec.h"

#include <algorithm>

#include "src/support/logging.h"

namespace alpa {

namespace {

bool UsesAxis(DimSharding s, int axis) {
  switch (s) {
    case DimSharding::kR:
      return false;
    case DimSharding::kS0:
      return axis == 0;
    case DimSharding::kS1:
      return axis == 1;
    case DimSharding::kS01:
      return true;
  }
  return false;
}

}  // namespace

ShardingSpec ShardingSpec::Replicated(int rank) {
  ShardingSpec spec;
  spec.dims_.assign(static_cast<size_t>(rank), DimSharding::kR);
  return spec;
}

ShardingSpec ShardingSpec::Make(std::vector<DimSharding> dims) {
  ShardingSpec spec;
  spec.dims_ = std::move(dims);
  for (int axis = 0; axis < 2; ++axis) {
    int uses = 0;
    for (DimSharding s : spec.dims_) {
      uses += UsesAxis(s, axis) ? 1 : 0;
    }
    ALPA_CHECK_LE(uses, 1) << "Mesh axis " << axis << " shards multiple dims in "
                           << spec.ToString();
  }
  return spec;
}

ShardingSpec ShardingSpec::OneDim(int rank, int d, DimSharding sharding) {
  std::vector<DimSharding> dims(static_cast<size_t>(rank), DimSharding::kR);
  ALPA_CHECK_GE(d, 0);
  ALPA_CHECK_LT(d, rank);
  dims[static_cast<size_t>(d)] = sharding;
  return Make(std::move(dims));
}

int ShardingSpec::DimForAxis(int axis) const {
  for (int d = 0; d < rank(); ++d) {
    if (UsesAxis(dims_[static_cast<size_t>(d)], axis)) {
      return d;
    }
  }
  return -1;
}

bool ShardingSpec::IsFullyReplicated() const {
  return std::all_of(dims_.begin(), dims_.end(),
                     [](DimSharding s) { return s == DimSharding::kR; });
}

int64_t ShardingSpec::ShardsForDim(int d, const DeviceMesh& mesh) const {
  switch (dims_[static_cast<size_t>(d)]) {
    case DimSharding::kR:
      return 1;
    case DimSharding::kS0:
      return mesh.dim(0);
    case DimSharding::kS1:
      return mesh.dim(1);
    case DimSharding::kS01:
      return static_cast<int64_t>(mesh.dim(0)) * mesh.dim(1);
  }
  return 1;
}

int64_t ShardingSpec::TotalShards(const DeviceMesh& mesh) const {
  int64_t total = 1;
  for (int d = 0; d < rank(); ++d) {
    total *= ShardsForDim(d, mesh);
  }
  return total;
}

int64_t ShardingSpec::ShardedBytes(const TensorShape& shape, int64_t dtype_bytes,
                                   const DeviceMesh& mesh) const {
  ALPA_CHECK_EQ(shape.rank(), rank());
  return shape.elements() * dtype_bytes / TotalShards(mesh);
}

bool ShardingSpec::IsValidFor(const TensorShape& shape, const DeviceMesh& mesh) const {
  if (shape.rank() != rank()) {
    return false;
  }
  for (int d = 0; d < rank(); ++d) {
    const int64_t shards = ShardsForDim(d, mesh);
    if (shards > 1 && shape.dim(d) % shards != 0) {
      return false;
    }
  }
  return true;
}

std::vector<std::pair<int64_t, int64_t>> ShardingSpec::TileSlice(const TensorShape& shape,
                                                                 const DeviceMesh& mesh, int i,
                                                                 int j) const {
  ALPA_CHECK_EQ(shape.rank(), rank());
  std::vector<std::pair<int64_t, int64_t>> slices;
  slices.reserve(static_cast<size_t>(rank()));
  for (int d = 0; d < rank(); ++d) {
    const int64_t extent = shape.dim(d);
    int64_t shards = 1;
    int64_t index = 0;
    switch (dims_[static_cast<size_t>(d)]) {
      case DimSharding::kR:
        break;
      case DimSharding::kS0:
        shards = mesh.dim(0);
        index = i;
        break;
      case DimSharding::kS1:
        shards = mesh.dim(1);
        index = j;
        break;
      case DimSharding::kS01:
        shards = static_cast<int64_t>(mesh.dim(0)) * mesh.dim(1);
        index = static_cast<int64_t>(i) * mesh.dim(1) + j;
        break;
    }
    const int64_t chunk = extent / shards;
    slices.emplace_back(index * chunk, (index + 1) * chunk);
  }
  return slices;
}

std::vector<ShardingSpec> ShardingSpec::Enumerate(int rank) {
  std::vector<ShardingSpec> specs;
  // Choice per mesh axis: a tensor dim to shard, or none (-1).
  for (int d0 = -1; d0 < rank; ++d0) {
    for (int d1 = -1; d1 < rank; ++d1) {
      std::vector<DimSharding> dims(static_cast<size_t>(rank), DimSharding::kR);
      if (d0 >= 0 && d0 == d1) {
        dims[static_cast<size_t>(d0)] = DimSharding::kS01;
      } else {
        if (d0 >= 0) {
          dims[static_cast<size_t>(d0)] = DimSharding::kS0;
        }
        if (d1 >= 0) {
          dims[static_cast<size_t>(d1)] = DimSharding::kS1;
        }
      }
      ShardingSpec spec = Make(std::move(dims));
      if (std::find(specs.begin(), specs.end(), spec) == specs.end()) {
        specs.push_back(std::move(spec));
      }
    }
  }
  return specs;
}

std::string ShardingSpec::ToString() const {
  std::string result;
  for (DimSharding s : dims_) {
    switch (s) {
      case DimSharding::kR:
        result += "R";
        break;
      case DimSharding::kS0:
        result += "S0";
        break;
      case DimSharding::kS1:
        result += "S1";
        break;
      case DimSharding::kS01:
        result += "S01";
        break;
    }
  }
  if (result.empty()) {
    result = "scalar";
  }
  return result;
}

bool ShardingSpec::FromString(const std::string& text, ShardingSpec* out) {
  if (text == "scalar") {
    *out = ShardingSpec();
    return true;
  }
  std::vector<DimSharding> dims;
  size_t i = 0;
  while (i < text.size()) {
    if (text[i] == 'R') {
      dims.push_back(DimSharding::kR);
      ++i;
    } else if (text[i] == 'S') {
      if (text.compare(i, 3, "S01") == 0) {
        dims.push_back(DimSharding::kS01);
        i += 3;
      } else if (text.compare(i, 2, "S0") == 0) {
        dims.push_back(DimSharding::kS0);
        i += 2;
      } else if (text.compare(i, 2, "S1") == 0) {
        dims.push_back(DimSharding::kS1);
        i += 2;
      } else {
        return false;
      }
    } else {
      return false;
    }
  }
  if (dims.empty()) {
    return false;
  }
  // Reject specs Make() would CHECK-fail on (an axis sharding two dims).
  for (int axis = 0; axis < 2; ++axis) {
    int uses = 0;
    for (DimSharding s : dims) {
      uses += UsesAxis(s, axis) ? 1 : 0;
    }
    if (uses > 1) {
      return false;
    }
  }
  *out = Make(std::move(dims));
  return true;
}

double ReshardCost(const ShardingSpec& src, const ShardingSpec& dst, const TensorShape& shape,
                   int64_t dtype_bytes, const DeviceMesh& mesh) {
  ALPA_CHECK_EQ(src.rank(), shape.rank());
  ALPA_CHECK_EQ(dst.rank(), shape.rank());
  if (src == dst) {
    return 0.0;
  }
  const double total_bytes = static_cast<double>(shape.elements()) * dtype_bytes;

  // Walk mesh axes (fast axis 1 first), transforming the current layout
  // towards dst and accumulating collective costs. Slicing a replicated dim
  // is local and free; un-sharding needs an all-gather; moving a mesh axis
  // between tensor dims needs an all-to-all (Table 1).
  int cur[2] = {src.DimForAxis(0), src.DimForAxis(1)};
  const int want[2] = {dst.DimForAxis(0), dst.DimForAxis(1)};
  double cost = 0.0;
  for (int a : {1, 0}) {
    if (cur[a] == want[a]) {
      continue;
    }
    const int other = 1 - a;
    // Portion of the tensor held by each communication group along axis a:
    // the group shares coordinates along the other axis.
    double group_bytes = total_bytes;
    if (cur[other] >= 0) {
      group_bytes /= mesh.dim(other);
    }
    if (cur[a] >= 0 && want[a] < 0) {
      cost += mesh.AllGatherTime(group_bytes, a);
    } else if (cur[a] < 0 && want[a] >= 0) {
      // Local slice.
    } else {
      cost += mesh.AllToAllTime(group_bytes, a);
    }
    cur[a] = want[a];
  }
  return cost;
}

}  // namespace alpa
