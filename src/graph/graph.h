// The dataflow graph: a topologically ordered list of operators.
//
// Model builders append operators through the Add* methods; ids are dense
// and ascending in topological order (operands always have smaller ids than
// their consumers), mirroring how a traced Jaxpr orders its equations. The
// inter-op pass relies on this order for stage slicing (5.1).
#ifndef SRC_GRAPH_GRAPH_H_
#define SRC_GRAPH_GRAPH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/graph/operator.h"

namespace alpa {

class Graph {
 public:
  Graph() = default;

  // --- Builder methods. `layer` tags the op with a forward layer index used
  // by inter-op stage slicing; pass -1 for untagged graphs. ---
  int AddInput(const std::string& name, TensorShape shape, DType dtype, int layer = -1);
  int AddParameter(const std::string& name, TensorShape shape, DType dtype, int layer = -1);
  // Output shape is derived from the einsum output labels.
  int AddEinsum(const std::string& name, EinsumSpec einsum, std::vector<int> operands,
                DType dtype, int layer = -1);
  // Pointwise op; output shape is operands[0]'s shape. Operands with smaller
  // shapes are treated as broadcast (e.g. bias vectors).
  int AddElementwise(const std::string& name, std::vector<int> operands, int layer = -1);
  int AddReduce(const std::string& name, int operand, TensorShape out_shape, int layer = -1);
  // Same-rank shape adapter (strided convolution / pooling spatial shrink).
  // Cost-wise a pointwise op; never merged because shapes differ.
  int AddResize(const std::string& name, int operand, TensorShape out_shape, int layer = -1);
  int AddSoftmax(const std::string& name, int operand, int layer = -1);
  int AddLayerNorm(const std::string& name, int operand, int layer = -1);
  // Lookup of `ids` (integer tensor) into `table` ([vocab, model]).
  int AddEmbedding(const std::string& name, int ids, int table, int layer = -1);
  // MoE routing. x: [tokens, model] -> [experts, capacity, model].
  int AddMoeDispatch(const std::string& name, int x, int64_t experts, int64_t capacity,
                     int layer = -1);
  // Inverse routing: [experts, capacity, model] -> token_shape.
  int AddMoeCombine(const std::string& name, int expert_out, TensorShape token_shape,
                    int layer = -1);
  int AddLoss(const std::string& name, std::vector<int> operands, int layer = -1);

  // Raw append for passes that synthesize ops (backward builder, stage
  // extraction). Fills in the id; operands must already exist.
  int Append(Operator op);

  // --- Access ---
  int size() const { return static_cast<int>(ops_.size()); }
  const Operator& op(int id) const;
  Operator& mutable_op(int id);
  const std::vector<Operator>& ops() const { return ops_; }

  // consumers()[v] lists the ops that take v as an operand.
  std::vector<std::vector<int>> Consumers() const;

  std::vector<int> ParameterIds() const;
  std::vector<int> InputIds() const;
  // Number of forward layers (max layer tag + 1); 0 if untagged.
  int NumLayers() const;

  double TotalFlops() const;
  double FlopsForRole(OpRole role) const;
  // Sum of parameter bytes.
  int64_t ParameterBytes() const;

  // Checks topological ordering and operand validity; CHECK-fails on error.
  void Validate() const;

  std::string ToString() const;

 private:
  std::vector<Operator> ops_;
};

// 64-bit FNV-1a hash of the graph's structure: op types, roles, shapes,
// dtypes, einsum specs, and operand wiring — everything that determines an
// intra-op ILP, and nothing that does not (names, layer tags). Two graphs
// with equal hashes have identical ILP problems on any mesh; the stage
// profiler's layer dedup and the process-wide ILP memo cache key on it.
uint64_t StructuralHash(const Graph& graph);

}  // namespace alpa

#endif  // SRC_GRAPH_GRAPH_H_
