#include "src/graph/operator.h"

#include <algorithm>

#include "src/support/logging.h"
#include "src/support/strings.h"

namespace alpa {

std::string OpTypeName(OpType type) {
  switch (type) {
    case OpType::kInput:
      return "input";
    case OpType::kParameter:
      return "parameter";
    case OpType::kEinsum:
      return "einsum";
    case OpType::kElementwise:
      return "elementwise";
    case OpType::kReduce:
      return "reduce";
    case OpType::kSoftmax:
      return "softmax";
    case OpType::kLayerNorm:
      return "layernorm";
    case OpType::kEmbedding:
      return "embedding";
    case OpType::kEmbeddingGrad:
      return "embedding_grad";
    case OpType::kMoeDispatch:
      return "moe_dispatch";
    case OpType::kMoeCombine:
      return "moe_combine";
    case OpType::kLoss:
      return "loss";
    case OpType::kUpdate:
      return "update";
  }
  return "?";
}

int64_t EinsumSpec::Extent(char label) const {
  auto it = extents.find(label);
  ALPA_CHECK(it != extents.end()) << "No extent for einsum label '" << label << "'";
  return it->second;
}

std::string EinsumSpec::ContractionLabels() const {
  std::string result;
  for (const std::string& operand : operands) {
    for (char c : operand) {
      if (output.find(c) == std::string::npos && result.find(c) == std::string::npos) {
        result.push_back(c);
      }
    }
  }
  return result;
}

std::string EinsumSpec::AllLabels() const {
  std::string result = output;
  for (char c : ContractionLabels()) {
    result.push_back(c);
  }
  return result;
}

double EinsumSpec::Flops() const {
  double macs = 1.0;
  for (char c : AllLabels()) {
    macs *= static_cast<double>(Extent(c));
  }
  return 2.0 * macs;
}

std::string EinsumSpec::ToString() const {
  return StrJoin(operands, ",") + "->" + output;
}

std::string Operator::ToString() const {
  std::string result = StrFormat("%%%d = %s %s%s", id, OpTypeName(type).c_str(),
                                 shape.ToString().c_str(), DTypeName(dtype).c_str());
  if (einsum.valid()) {
    result += " {" + einsum.ToString() + "}";
  }
  if (!operands.empty()) {
    result += " (";
    for (size_t i = 0; i < operands.size(); ++i) {
      result += (i > 0 ? ", %" : "%") + std::to_string(operands[i]);
    }
    result += ")";
  }
  if (!name.empty()) {
    result += "  # " + name;
  }
  return result;
}

}  // namespace alpa
