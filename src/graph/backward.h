// Backward-pass and weight-update construction.
//
// Given a forward graph ending in exactly one kLoss operator, appends the
// gradient operators (reverse-mode differentiation at the granularity the
// compiler cares about: shapes, einsum structure, FLOPs) and one kUpdate
// operator per trainable parameter. Backward ops inherit the layer tag of
// their forward op, which realizes the paper's constraint that forward and
// backward ops of the same operator are colocated on the same stage (5.1).
#ifndef SRC_GRAPH_BACKWARD_H_
#define SRC_GRAPH_BACKWARD_H_

#include "src/graph/graph.h"

namespace alpa {

struct OptimizerConfig {
  // Adam-like optimizer: two fp32 state tensors per parameter, plus an fp32
  // master copy when training in fp16.
  double flops_per_element = 6.0;
};

// Appends backward and update ops to `graph` in place. Returns the number of
// ops appended. CHECK-fails if the graph has no kLoss op or is malformed.
int BuildTrainingGraph(Graph& graph, const OptimizerConfig& config = OptimizerConfig());

// Bytes of optimizer state per parameter element (Adam m+v in fp32, plus
// fp32 master weights for fp16 params).
int64_t OptimizerStateBytesPerElement(DType param_dtype);

}  // namespace alpa

#endif  // SRC_GRAPH_BACKWARD_H_
