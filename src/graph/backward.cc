#include "src/graph/backward.h"

#include <map>
#include <string>
#include <vector>

#include "src/support/logging.h"

namespace alpa {

namespace {

// Accumulates `grad` into grads[target], inserting an add op if a gradient
// already exists (a tensor consumed by several ops receives summed grads).
void AccumulateGrad(Graph& graph, std::map<int, int>& grads, int target, int grad) {
  auto it = grads.find(target);
  if (it == grads.end()) {
    grads[target] = grad;
    return;
  }
  Operator add;
  add.type = OpType::kElementwise;
  add.role = OpRole::kBackward;
  add.name = graph.op(target).name + ".grad_acc";
  add.operands = {it->second, grad};
  add.shape = graph.op(target).shape;
  add.dtype = graph.op(target).dtype;
  add.flops = static_cast<double>(add.shape.elements());
  add.layer = graph.op(target).layer;
  add.forward_id = target;
  it->second = graph.Append(std::move(add));
}

// Emits the einsum computing d(operand_index) for einsum op `fwd`, given the
// output gradient op id. The gradient of operand i is an einsum whose output
// labels are operand i's labels and whose inputs are the output gradient and
// the other operands.
int EinsumOperandGrad(Graph& graph, const Operator& fwd, int grad_out, size_t operand_index) {
  const EinsumSpec& spec = fwd.einsum;
  EinsumSpec grad_spec;
  grad_spec.output = spec.operands[operand_index];
  grad_spec.extents = spec.extents;
  grad_spec.halo = spec.halo;
  grad_spec.operands.push_back(spec.output);
  std::vector<int> operands = {grad_out};
  for (size_t j = 0; j < spec.operands.size(); ++j) {
    if (j != operand_index) {
      grad_spec.operands.push_back(spec.operands[j]);
      operands.push_back(fwd.operands[j]);
    }
  }
  Operator grad;
  grad.type = OpType::kEinsum;
  grad.role = OpRole::kBackward;
  grad.name = fwd.name + ".grad" + std::to_string(operand_index);
  grad.operands = std::move(operands);
  grad.dtype = fwd.dtype;
  grad.flops = grad_spec.Flops();
  {
    std::vector<int64_t> dims;
    for (char c : grad_spec.output) {
      dims.push_back(grad_spec.Extent(c));
    }
    grad.shape = TensorShape(dims);
  }
  grad.einsum = std::move(grad_spec);
  grad.layer = fwd.layer;
  grad.forward_id = fwd.id;
  grad.weight_grad =
      graph.op(fwd.operands[operand_index]).type == OpType::kParameter;
  return graph.Append(std::move(grad));
}

// Emits a pointwise (or reduce, for broadcast operands) gradient op of
// `shape` for forward op `fwd`.
int PointwiseGrad(Graph& graph, const Operator& fwd, int grad_out, const TensorShape& shape,
                  const std::string& suffix) {
  Operator grad;
  grad.role = OpRole::kBackward;
  grad.name = fwd.name + suffix;
  grad.operands = {grad_out};
  grad.shape = shape;
  grad.dtype = fwd.dtype;
  grad.layer = fwd.layer;
  grad.forward_id = fwd.id;
  if (shape.elements() < graph.op(grad_out).shape.elements()) {
    grad.type = OpType::kReduce;
    grad.flops = static_cast<double>(graph.op(grad_out).shape.elements());
  } else {
    grad.type = OpType::kElementwise;
    grad.flops = static_cast<double>(shape.elements());
  }
  return graph.Append(std::move(grad));
}

}  // namespace

int64_t OptimizerStateBytesPerElement(DType param_dtype) {
  // Adam first and second moments in fp32. For fp16 training the fp32
  // master weight is folded into the first moment's storage (the
  // mixed-precision scheme of the MoE/GShard line of work; a separate
  // master copy would make the 70B MoE of Table 6 exceed even the fully
  // sharded capacity of the paper's 64-GPU cluster).
  (void)param_dtype;
  return 8;
}

int BuildTrainingGraph(Graph& graph, const OptimizerConfig& config) {
  graph.Validate();
  const int forward_size = graph.size();

  int loss_id = -1;
  for (int i = 0; i < forward_size; ++i) {
    if (graph.op(i).type == OpType::kLoss) {
      ALPA_CHECK_EQ(loss_id, -1) << "Graph must contain exactly one loss op";
      loss_id = i;
    }
  }
  ALPA_CHECK_GE(loss_id, 0) << "Graph must contain a loss op";

  // grads[v] = op id producing dL/d(op v).
  std::map<int, int> grads;

  // Seed: gradients of the loss inputs (same shape as the input, produced by
  // the loss backward kernel).
  {
    const Operator& loss = graph.op(loss_id);
    for (int operand : loss.operands) {
      if (graph.op(operand).type == OpType::kInput) {
        continue;  // Labels need no gradient.
      }
      int g = PointwiseGrad(graph, loss, loss_id, graph.op(operand).shape, ".grad");
      AccumulateGrad(graph, grads, operand, g);
    }
  }

  for (int id = loss_id - 1; id >= 0; --id) {
    const Operator fwd = graph.op(id);  // Copy: Append may reallocate.
    auto grad_it = grads.find(id);
    if (grad_it == grads.end()) {
      continue;  // No path to the loss.
    }
    const int grad_out = grad_it->second;
    switch (fwd.type) {
      case OpType::kEinsum: {
        for (size_t i = 0; i < fwd.operands.size(); ++i) {
          const Operator& operand = graph.op(fwd.operands[i]);
          if (operand.type == OpType::kInput) {
            continue;  // Training data needs no gradient.
          }
          int g = EinsumOperandGrad(graph, fwd, grad_out, i);
          AccumulateGrad(graph, grads, fwd.operands[i], g);
        }
        break;
      }
      case OpType::kElementwise:
      case OpType::kSoftmax:
      case OpType::kLayerNorm:
      case OpType::kReduce: {
        for (size_t i = 0; i < fwd.operands.size(); ++i) {
          // Copy: Append below may reallocate the op vector.
          const OpType operand_type = graph.op(fwd.operands[i]).type;
          const TensorShape operand_shape = graph.op(fwd.operands[i]).shape;
          if (operand_type == OpType::kInput) {
            continue;
          }
          int g = PointwiseGrad(graph, fwd, grad_out, operand_shape,
                                ".grad" + std::to_string(i));
          if (operand_type == OpType::kParameter) {
            graph.mutable_op(g).weight_grad = true;  // Bias gradients.
          }
          AccumulateGrad(graph, grads, fwd.operands[i], g);
        }
        break;
      }
      case OpType::kEmbedding: {
        // Gradient w.r.t. the table: scatter-add of the output gradient.
        const int table = fwd.operands[1];
        Operator grad;
        grad.type = OpType::kEmbeddingGrad;
        grad.role = OpRole::kBackward;
        grad.name = fwd.name + ".grad_table";
        grad.operands = {fwd.operands[0], grad_out};
        grad.shape = graph.op(table).shape;
        grad.dtype = graph.op(table).dtype;
        grad.flops = static_cast<double>(graph.op(grad_out).shape.elements());
        grad.layer = fwd.layer;
        grad.forward_id = fwd.id;
        grad.weight_grad = true;
        AccumulateGrad(graph, grads, table, graph.Append(std::move(grad)));
        break;
      }
      case OpType::kMoeDispatch: {
        // d(x) combines the expert-side gradient back to token order.
        const Operator& x = graph.op(fwd.operands[0]);
        Operator grad;
        grad.type = OpType::kMoeCombine;
        grad.role = OpRole::kBackward;
        grad.name = fwd.name + ".grad_x";
        grad.operands = {grad_out};
        grad.shape = x.shape;
        grad.dtype = x.dtype;
        grad.flops = static_cast<double>(graph.op(grad_out).shape.elements());
        grad.layer = fwd.layer;
        grad.forward_id = fwd.id;
        AccumulateGrad(graph, grads, fwd.operands[0], graph.Append(std::move(grad)));
        break;
      }
      case OpType::kMoeCombine: {
        const Operator& expert_out = graph.op(fwd.operands[0]);
        Operator grad;
        grad.type = OpType::kMoeDispatch;
        grad.role = OpRole::kBackward;
        grad.name = fwd.name + ".grad_x";
        grad.operands = {grad_out};
        grad.shape = expert_out.shape;
        grad.dtype = expert_out.dtype;
        grad.flops = static_cast<double>(expert_out.shape.elements());
        grad.layer = fwd.layer;
        grad.forward_id = fwd.id;
        AccumulateGrad(graph, grads, fwd.operands[0], graph.Append(std::move(grad)));
        break;
      }
      case OpType::kInput:
      case OpType::kParameter:
        break;  // Leaves; their accumulated grads are consumed below.
      case OpType::kLoss:
      case OpType::kEmbeddingGrad:
      case OpType::kUpdate:
        ALPA_LOG(FATAL) << "Unexpected op in forward graph: " << fwd.ToString();
    }
  }

  // Weight updates.
  for (int param : graph.ParameterIds()) {
    if (param >= forward_size) {
      continue;
    }
    auto it = grads.find(param);
    if (it == grads.end()) {
      continue;  // Unused parameter.
    }
    const Operator& p = graph.op(param);
    Operator update;
    update.type = OpType::kUpdate;
    update.role = OpRole::kUpdate;
    update.name = p.name + ".update";
    update.operands = {param, it->second};
    update.shape = p.shape;
    update.dtype = p.dtype;
    update.flops = config.flops_per_element * static_cast<double>(p.shape.elements());
    update.layer = p.layer;
    update.param_id = param;
    graph.Append(std::move(update));
  }

  graph.Validate();
  return graph.size() - forward_size;
}

}  // namespace alpa
