// Operators of the dataflow graph.
//
// Heavy operators (matmuls, convolutions, attention contractions) carry an
// einsum specification: a label string per operand and for the output, plus
// per-label extents. The intra-op pass derives all SPMD parallel algorithms
// for an operator directly from its einsum structure, exactly as the paper
// derives Table 2 from the loop structure of a batched matmul. A handful of
// operators with data-dependent semantics (embedding lookups, MoE
// dispatch/combine) get custom algorithm enumerations instead.
#ifndef SRC_GRAPH_OPERATOR_H_
#define SRC_GRAPH_OPERATOR_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/graph/tensor.h"

namespace alpa {

enum class OpType {
  kInput,        // Training data fed per microbatch.
  kParameter,    // Trainable weight.
  kEinsum,       // Contraction with einsum semantics (matmul, conv-as-im2col, attention).
  kElementwise,  // Pointwise unary/binary (add, mul, relu, gelu, bias, residual, batchnorm).
  kReduce,       // Reduction over some dims (mean, sum).
  kSoftmax,      // Row softmax.
  kLayerNorm,    // Layer normalization.
  kEmbedding,    // Lookup: ids [..] x table [V, M] -> [.., M].
  kEmbeddingGrad,  // Scatter-add of output grad into the table.
  kMoeDispatch,  // Route tokens to experts: [T, M] -> [E, C, M].
  kMoeCombine,   // Gather expert outputs back: [E, C, M] -> [T, M].
  kLoss,         // Scalar loss head (softmax cross-entropy / MSE).
  kUpdate,       // Optimizer step for one parameter.
};

enum class OpRole {
  kForward,
  kBackward,
  kUpdate,
};

std::string OpTypeName(OpType type);

// Einsum description: e.g. output "bsf", operands {"bsm", "mf"}, extents for
// each label. Labels appearing in operands but not in the output are
// contraction (reduction) loops.
struct EinsumSpec {
  std::string output;
  std::vector<std::string> operands;
  std::map<char, int64_t> extents;
  // Labels that index a spatial window (convolutions): label -> kernel side
  // length. Partitioning such a label requires halo exchange with the
  // neighbouring shards.
  std::map<char, int64_t> halo;

  bool valid() const { return !operands.empty(); }
  int64_t Extent(char label) const;
  // Labels appearing in any operand but not in the output.
  std::string ContractionLabels() const;
  // All distinct labels.
  std::string AllLabels() const;
  // 2 * product of all label extents (multiply-accumulate count).
  double Flops() const;
  std::string ToString() const;
};

struct Operator {
  int id = -1;
  OpType type = OpType::kInput;
  OpRole role = OpRole::kForward;
  std::string name;
  std::vector<int> operands;  // Producer op ids, in operand order.
  TensorShape shape;          // Output shape.
  DType dtype = DType::kF32;
  EinsumSpec einsum;          // Valid for kEinsum (and informative for MoE ops).
  double flops = 0.0;

  // Forward layer this op belongs to (assigned by model builders; backward
  // ops inherit their forward op's layer). -1 when unassigned.
  int layer = -1;
  // For backward ops: id of the forward op being differentiated.
  int forward_id = -1;
  // For kUpdate ops: id of the kParameter being updated.
  int param_id = -1;
  // True for backward ops producing a parameter gradient (their output
  // flows to the optimizer; communication amortizes over gradient
  // accumulation and is the target of ZeRO-style sharding).
  bool weight_grad = false;

  int64_t OutputBytes() const { return shape.elements() * DTypeBytes(dtype); }
  bool IsHeavy() const {
    return type == OpType::kEinsum || type == OpType::kEmbedding ||
           type == OpType::kEmbeddingGrad || type == OpType::kMoeDispatch ||
           type == OpType::kMoeCombine || type == OpType::kUpdate ||
           type == OpType::kParameter || type == OpType::kInput;
  }
  std::string ToString() const;
};

}  // namespace alpa

#endif  // SRC_GRAPH_OPERATOR_H_
