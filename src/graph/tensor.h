// Tensor metadata: dtypes and shapes. alpa-cpp never materializes tensor
// contents; the compiler passes and the simulator only need shapes, dtypes
// and byte/FLOP accounting.
#ifndef SRC_GRAPH_TENSOR_H_
#define SRC_GRAPH_TENSOR_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "src/support/logging.h"

namespace alpa {

enum class DType {
  kF16,
  kF32,
  kI32,
};

inline int64_t DTypeBytes(DType dtype) {
  switch (dtype) {
    case DType::kF16:
      return 2;
    case DType::kF32:
      return 4;
    case DType::kI32:
      return 4;
  }
  ALPA_LOG(FATAL) << "Unknown dtype";
  return 0;
}

std::string DTypeName(DType dtype);

// A dense tensor shape. Rank 0 denotes a scalar.
class TensorShape {
 public:
  TensorShape() = default;
  TensorShape(std::initializer_list<int64_t> dims) : dims_(dims) {}
  explicit TensorShape(std::vector<int64_t> dims) : dims_(std::move(dims)) {}

  int rank() const { return static_cast<int>(dims_.size()); }
  int64_t dim(int i) const {
    ALPA_CHECK_GE(i, 0);
    ALPA_CHECK_LT(i, rank());
    return dims_[static_cast<size_t>(i)];
  }
  const std::vector<int64_t>& dims() const { return dims_; }

  int64_t elements() const {
    int64_t n = 1;
    for (int64_t d : dims_) {
      n *= d;
    }
    return n;
  }

  bool operator==(const TensorShape&) const = default;

  std::string ToString() const;

 private:
  std::vector<int64_t> dims_;
};

}  // namespace alpa

#endif  // SRC_GRAPH_TENSOR_H_
