#include "src/graph/graph.h"

#include <algorithm>

#include "src/support/hashing.h"
#include "src/support/logging.h"

namespace alpa {

namespace {

TensorShape ShapeFromEinsumOutput(const EinsumSpec& einsum) {
  std::vector<int64_t> dims;
  dims.reserve(einsum.output.size());
  for (char c : einsum.output) {
    dims.push_back(einsum.Extent(c));
  }
  return TensorShape(dims);
}

}  // namespace

int Graph::Append(Operator op) {
  op.id = static_cast<int>(ops_.size());
  for (int operand : op.operands) {
    ALPA_CHECK_GE(operand, 0);
    ALPA_CHECK_LT(operand, op.id) << "Graph must be built in topological order";
  }
  ops_.push_back(std::move(op));
  return ops_.back().id;
}

int Graph::AddInput(const std::string& name, TensorShape shape, DType dtype, int layer) {
  Operator op;
  op.type = OpType::kInput;
  op.name = name;
  op.shape = std::move(shape);
  op.dtype = dtype;
  op.layer = layer;
  return Append(std::move(op));
}

int Graph::AddParameter(const std::string& name, TensorShape shape, DType dtype, int layer) {
  Operator op;
  op.type = OpType::kParameter;
  op.name = name;
  op.shape = std::move(shape);
  op.dtype = dtype;
  op.layer = layer;
  return Append(std::move(op));
}

int Graph::AddEinsum(const std::string& name, EinsumSpec einsum, std::vector<int> operands,
                     DType dtype, int layer) {
  ALPA_CHECK_EQ(operands.size(), einsum.operands.size());
  for (size_t i = 0; i < operands.size(); ++i) {
    const Operator& producer = op(operands[i]);
    ALPA_CHECK_EQ(producer.shape.rank(), static_cast<int>(einsum.operands[i].size()))
        << "einsum " << name << " operand " << i << " rank mismatch";
    for (int d = 0; d < producer.shape.rank(); ++d) {
      ALPA_CHECK_EQ(producer.shape.dim(d), einsum.Extent(einsum.operands[i][static_cast<size_t>(d)]))
          << "einsum " << name << " operand " << i << " dim " << d << " extent mismatch";
    }
  }
  Operator result;
  result.type = OpType::kEinsum;
  result.name = name;
  result.operands = std::move(operands);
  result.shape = ShapeFromEinsumOutput(einsum);
  result.dtype = dtype;
  result.flops = einsum.Flops();
  result.einsum = std::move(einsum);
  result.layer = layer;
  return Append(std::move(result));
}

int Graph::AddElementwise(const std::string& name, std::vector<int> operands, int layer) {
  ALPA_CHECK(!operands.empty());
  Operator result;
  result.type = OpType::kElementwise;
  result.name = name;
  result.shape = op(operands[0]).shape;
  result.dtype = op(operands[0]).dtype;
  result.operands = std::move(operands);
  result.flops = static_cast<double>(result.shape.elements());
  result.layer = layer;
  return Append(std::move(result));
}

int Graph::AddReduce(const std::string& name, int operand, TensorShape out_shape, int layer) {
  Operator result;
  result.type = OpType::kReduce;
  result.name = name;
  result.operands = {operand};
  result.dtype = op(operand).dtype;
  result.flops = static_cast<double>(op(operand).shape.elements());
  result.shape = std::move(out_shape);
  result.layer = layer;
  return Append(std::move(result));
}

int Graph::AddResize(const std::string& name, int operand, TensorShape out_shape, int layer) {
  ALPA_CHECK_EQ(op(operand).shape.rank(), out_shape.rank());
  Operator result;
  result.type = OpType::kElementwise;
  result.name = name;
  result.operands = {operand};
  result.dtype = op(operand).dtype;
  result.flops = static_cast<double>(out_shape.elements());
  result.shape = std::move(out_shape);
  result.layer = layer;
  return Append(std::move(result));
}

int Graph::AddSoftmax(const std::string& name, int operand, int layer) {
  Operator result;
  result.type = OpType::kSoftmax;
  result.name = name;
  result.operands = {operand};
  result.shape = op(operand).shape;
  result.dtype = op(operand).dtype;
  result.flops = 5.0 * static_cast<double>(result.shape.elements());
  result.layer = layer;
  return Append(std::move(result));
}

int Graph::AddLayerNorm(const std::string& name, int operand, int layer) {
  Operator result;
  result.type = OpType::kLayerNorm;
  result.name = name;
  result.operands = {operand};
  result.shape = op(operand).shape;
  result.dtype = op(operand).dtype;
  result.flops = 5.0 * static_cast<double>(result.shape.elements());
  result.layer = layer;
  return Append(std::move(result));
}

int Graph::AddEmbedding(const std::string& name, int ids, int table, int layer) {
  const Operator& table_op = op(table);
  ALPA_CHECK_EQ(table_op.shape.rank(), 2);
  const Operator& ids_op = op(ids);
  std::vector<int64_t> dims = ids_op.shape.dims();
  dims.push_back(table_op.shape.dim(1));
  Operator result;
  result.type = OpType::kEmbedding;
  result.name = name;
  result.operands = {ids, table};
  result.shape = TensorShape(dims);
  result.dtype = table_op.dtype;
  result.flops = static_cast<double>(result.shape.elements());
  result.layer = layer;
  return Append(std::move(result));
}

int Graph::AddMoeDispatch(const std::string& name, int x, int64_t experts, int64_t capacity,
                          int layer) {
  const Operator& x_op = op(x);
  // Token tensor: [tokens, model] or [batch, seq, model].
  ALPA_CHECK(x_op.shape.rank() == 2 || x_op.shape.rank() == 3);
  Operator result;
  result.type = OpType::kMoeDispatch;
  result.name = name;
  result.operands = {x};
  result.shape = TensorShape({experts, capacity, x_op.shape.dim(x_op.shape.rank() - 1)});
  result.dtype = x_op.dtype;
  result.flops = static_cast<double>(result.shape.elements());
  result.layer = layer;
  return Append(std::move(result));
}

int Graph::AddMoeCombine(const std::string& name, int expert_out, TensorShape token_shape,
                         int layer) {
  const Operator& in_op = op(expert_out);
  ALPA_CHECK_EQ(in_op.shape.rank(), 3);  // [experts, capacity, model]
  ALPA_CHECK(token_shape.rank() == 2 || token_shape.rank() == 3);
  ALPA_CHECK_EQ(token_shape.dim(token_shape.rank() - 1), in_op.shape.dim(2));
  Operator result;
  result.type = OpType::kMoeCombine;
  result.name = name;
  result.operands = {expert_out};
  result.shape = std::move(token_shape);
  result.dtype = in_op.dtype;
  result.flops = static_cast<double>(in_op.shape.elements());
  result.layer = layer;
  return Append(std::move(result));
}

int Graph::AddLoss(const std::string& name, std::vector<int> operands, int layer) {
  ALPA_CHECK(!operands.empty());
  Operator result;
  result.type = OpType::kLoss;
  result.name = name;
  result.shape = TensorShape({});
  result.dtype = DType::kF32;
  result.flops = static_cast<double>(op(operands[0]).shape.elements()) * 5.0;
  result.operands = std::move(operands);
  result.layer = layer;
  return Append(std::move(result));
}

const Operator& Graph::op(int id) const {
  ALPA_CHECK_GE(id, 0);
  ALPA_CHECK_LT(id, size());
  return ops_[static_cast<size_t>(id)];
}

Operator& Graph::mutable_op(int id) {
  ALPA_CHECK_GE(id, 0);
  ALPA_CHECK_LT(id, size());
  return ops_[static_cast<size_t>(id)];
}

std::vector<std::vector<int>> Graph::Consumers() const {
  std::vector<std::vector<int>> consumers(ops_.size());
  for (const Operator& o : ops_) {
    for (int operand : o.operands) {
      consumers[static_cast<size_t>(operand)].push_back(o.id);
    }
  }
  return consumers;
}

std::vector<int> Graph::ParameterIds() const {
  std::vector<int> ids;
  for (const Operator& o : ops_) {
    if (o.type == OpType::kParameter) {
      ids.push_back(o.id);
    }
  }
  return ids;
}

std::vector<int> Graph::InputIds() const {
  std::vector<int> ids;
  for (const Operator& o : ops_) {
    if (o.type == OpType::kInput) {
      ids.push_back(o.id);
    }
  }
  return ids;
}

int Graph::NumLayers() const {
  int max_layer = -1;
  for (const Operator& o : ops_) {
    max_layer = std::max(max_layer, o.layer);
  }
  return max_layer + 1;
}

double Graph::TotalFlops() const {
  double total = 0.0;
  for (const Operator& o : ops_) {
    total += o.flops;
  }
  return total;
}

double Graph::FlopsForRole(OpRole role) const {
  double total = 0.0;
  for (const Operator& o : ops_) {
    if (o.role == role) {
      total += o.flops;
    }
  }
  return total;
}

int64_t Graph::ParameterBytes() const {
  int64_t total = 0;
  for (const Operator& o : ops_) {
    if (o.type == OpType::kParameter) {
      total += o.OutputBytes();
    }
  }
  return total;
}

void Graph::Validate() const {
  for (int i = 0; i < size(); ++i) {
    const Operator& o = op(i);
    ALPA_CHECK_EQ(o.id, i);
    for (int operand : o.operands) {
      ALPA_CHECK_GE(operand, 0);
      ALPA_CHECK_LT(operand, i) << "op " << o.name << " breaks topological order";
    }
    if (o.type == OpType::kEinsum) {
      ALPA_CHECK(o.einsum.valid());
    }
  }
}

std::string Graph::ToString() const {
  std::string result;
  for (const Operator& o : ops_) {
    result += o.ToString();
    result += "\n";
  }
  return result;
}

uint64_t StructuralHash(const Graph& graph) {
  Fnv1a64 hasher;
  for (const Operator& o : graph.ops()) {
    hasher.I32(static_cast<int32_t>(o.type));
    hasher.I32(static_cast<int32_t>(o.role));
    hasher.I32(static_cast<int32_t>(o.dtype));
    hasher.I32(o.shape.rank());
    for (int64_t d : o.shape.dims()) {
      hasher.I64(d);
    }
    if (o.einsum.valid()) {
      hasher.Str(o.einsum.output);
      hasher.I32(static_cast<int32_t>(o.einsum.operands.size()));
      for (const std::string& labels : o.einsum.operands) {
        hasher.Str(labels);
      }
      for (const auto& [label, extent] : o.einsum.extents) {
        hasher.I32(label);
        hasher.I64(extent);
      }
      for (const auto& [label, kernel] : o.einsum.halo) {
        hasher.I32(label);
        hasher.I64(kernel);
      }
    }
    hasher.I32(static_cast<int32_t>(o.operands.size()));
    for (int operand : o.operands) {
      hasher.I32(operand);
    }
  }
  hasher.I32(graph.size());
  return hasher.hash();
}

}  // namespace alpa
