#include "src/graph/tensor.h"

#include "src/support/strings.h"

namespace alpa {

std::string DTypeName(DType dtype) {
  switch (dtype) {
    case DType::kF16:
      return "f16";
    case DType::kF32:
      return "f32";
    case DType::kI32:
      return "i32";
  }
  return "?";
}

std::string TensorShape::ToString() const {
  return "[" + StrJoin(dims_, ",") + "]";
}

}  // namespace alpa
