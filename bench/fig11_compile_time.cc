// Figure 11 + Table 4: compilation time (7.4).
//
// Measures Alpa's own compilation wall-clock across the GPT settings of
// 7.1 (model size and #GPUs scaled together). Expected shape: roughly
// linear growth in model/cluster size. Table 4 breaks the largest setting
// into phases: in the paper, compilation + profiling dominate (~2400 s for
// GPT-39B on 64 GPUs with their accelerations); our ILP solves play the
// role of "compilation + profiling" and the stage-construction DP is
// seconds, matching the reported proportions.
// Usage: fig11_compile_time [--threads N]   (default 1 = serial)
#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/api.h"
#include "src/models/gpt.h"

int main(int argc, char** argv) {
  using namespace alpa;
  using namespace alpa::bench;

  const BenchFlags flags = ParseBenchFlags(argc, argv, 1);
  InitBench(flags);
  std::printf("=== Figure 11: compilation time across GPT settings (threads=%d) ===\n",
              flags.threads);
  std::printf("%-10s %6s | %10s %12s %8s %8s | %10s %6s %6s\n", "model", "#gpus", "total(s)",
              "profiling(s)", "dp(s)", "other(s)", "ilp solves", "hits", "miss");

  CompileStats largest;
  std::string largest_name;
  for (const GptBenchmarkCase& bench_case : GptPaperCases()) {
    GptConfig config = bench_case.config;
    config.microbatch = 8;
    Graph graph = BuildGpt(config);
    const ClusterSpec cluster = ClusterFor(bench_case.num_gpus);
    ParallelizeOptions options = BaselineOptionTemplate();
    options.inter.num_microbatches =
        static_cast<int>(bench_case.global_batch / config.microbatch);
    options.inter.target_layers = bench_case.num_gpus >= 8 ? 16 : 8;
    StatusOr<ParallelPlan> plan = Parallelize(graph, cluster, options);
    if (!plan.ok()) {
      std::printf("%-10s %6d | %s\n", bench_case.name.c_str(), bench_case.num_gpus,
                  plan.status().ToString().c_str());
      continue;
    }
    const CompileStats& stats = plan->compile_stats;
    std::printf("%-10s %6d | %10.2f %12.2f %8.2f %8.2f | %10lld %6lld %6lld\n",
                bench_case.name.c_str(), bench_case.num_gpus, stats.total_seconds,
                stats.profiling_wall_seconds, stats.dp_seconds, stats.other_seconds,
                static_cast<long long>(stats.ilp_solves),
                static_cast<long long>(stats.ilp_cache_hits),
                static_cast<long long>(stats.ilp_cache_misses));
    std::fflush(stdout);
    largest = stats;
    largest_name = bench_case.name;
  }

  std::printf("\n=== Table 4: compilation time breakdown (%s, 64 GPUs) ===\n",
              largest_name.c_str());
  std::printf("%-28s %12s   (paper: ours / w-o optimization)\n", "step", "seconds");
  std::printf("%-28s %12.2f   (1582.66 s / >16 hr)\n", "compilation + profiling",
              largest.profiling_wall_seconds);
  std::printf("%-28s %12.2f   (804.48 s profiling share)\n", "  of which ILP solving (cumul)",
              largest.profiling_seconds);
  std::printf("%-28s %12.2f   (1.65 s)\n", "stage construction DP", largest.dp_seconds);
  std::printf("%-28s %12.2f   (4.47 s)\n", "other (clustering, codegen)",
              largest.clustering_seconds + largest.other_seconds);
  std::printf("%-28s %12.2f   (2393.26 s / >40 hr)\n", "total", largest.total_seconds);
  std::printf("\nNote: our per-layer memoization and structural dedup play the role of the\n"
              "paper's distributed compilation + cost-model profiling accelerations.\n");
  return 0;
}
