// Raw-speed measurement of the execution engine.
//
// Part 1 times the fig8 GPT matmul mix (attention projections, attention
// scores, both FFN halves at GPT-350M scale) through the blocked GEMM
// lowering (EvalEinsumPartials) against the scalar odometer reference
// (EvalEinsumPartialsReference); the reference runs on a row slice of the
// output and is scaled by the slice's share of the FLOPs, since the scalar
// loop at full size would dominate the benchmark by minutes. Part 2 really
// executes a compiled GPT pipeline and reports wall-clock plus the arena
// planner's per-device memory numbers next to the measured runtime peak.
//
//   exec_speed [--smoke] [--json PATH] [--threads N] [--trace PATH]
//
// --smoke shrinks every dimension so the whole binary finishes in a couple
// of seconds (the CI tier-1 run); the default sizes are the BENCH_exec.json
// configuration.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/exec/executor.h"
#include "src/exec/host_tensor.h"
#include "src/exec/kernels.h"
#include "src/graph/operator.h"
#include "src/models/gpt.h"

namespace alpa {
namespace bench {
namespace {

using exec::Box;
using exec::BoxElements;
using exec::FullBox;
using exec::GenValue;
using exec::HashName;
using exec::HostTensor;

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct MatmulCase {
  std::string name;
  std::string output;
  std::vector<std::string> operand_specs;
  std::map<char, int64_t> extents;
};

// The einsum mix one GPT layer issues, at the paper's GPT-350M shapes
// (hidden 1024, 16 heads, sequence 1024, microbatch 8). Smoke mode divides
// the big extents by 8.
std::vector<MatmulCase> GptMatmulMix(bool smoke) {
  const int64_t div = smoke ? 8 : 1;
  const int64_t b = 8 / (smoke ? 4 : 1);
  const int64_t s = 1024 / div;
  const int64_t h = 1024 / div;
  const int64_t f = 4096 / div;
  const int64_t heads = 16 / (smoke ? 4 : 1);
  const int64_t hd = h / heads;
  return {
      {"qkv_proj", "bsd", {"bsh", "hd"}, {{'b', b}, {'s', s}, {'h', h}, {'d', h}}},
      {"attn_scores", "nst", {"nsk", "ntk"}, {{'n', b * heads}, {'s', s}, {'t', s}, {'k', hd}}},
      {"ffn_up", "bsf", {"bsh", "hf"}, {{'b', b}, {'s', s}, {'h', h}, {'f', f}}},
      {"ffn_down", "bsh", {"bsf", "fh"}, {{'b', b}, {'s', s}, {'h', h}, {'f', f}}},
  };
}

Operator MakeEinsumOp(const MatmulCase& c) {
  Operator op;
  op.id = 0;
  op.type = OpType::kEinsum;
  op.name = c.name;
  op.einsum.output = c.output;
  op.einsum.operands = c.operand_specs;
  op.einsum.extents = c.extents;
  std::vector<int64_t> dims;
  for (char label : c.output) {
    dims.push_back(c.extents.at(label));
  }
  op.shape = TensorShape(dims);
  for (size_t i = 0; i < c.operand_specs.size(); ++i) {
    op.operands.push_back(static_cast<int>(i));
  }
  return op;
}

HostTensor MakeOperand(const std::string& spec, const std::map<char, int64_t>& extents,
                       const std::string& tag) {
  std::vector<int64_t> dims;
  for (char label : spec) {
    dims.push_back(extents.at(label));
  }
  HostTensor t = HostTensor::Uninitialized(TensorShape(dims));
  const uint64_t key = HashName(tag);
  for (int64_t i = 0; i < t.elements(); ++i) {
    t.data()[i] = GenValue(key, i);
  }
  return t;
}

struct KernelResult {
  double gflops_fast = 0.0;
  double gflops_ref = 0.0;
  double fast_seconds = 0.0;
  double checksum_delta = 0.0;
};

KernelResult TimeMatmul(const MatmulCase& c, bool smoke) {
  const Operator op = MakeEinsumOp(c);
  std::vector<HostTensor> storage;
  std::vector<const HostTensor*> operands;
  for (size_t i = 0; i < c.operand_specs.size(); ++i) {
    storage.push_back(MakeOperand(c.operand_specs[i], c.extents, c.name + std::to_string(i)));
  }
  for (const HostTensor& t : storage) {
    operands.push_back(&t);
  }
  const std::string contraction = op.einsum.ContractionLabels();
  const int64_t extent = contraction.empty() ? 1 : op.einsum.Extent(contraction[0]);
  const Box full = FullBox(op.shape);
  const double full_flops = op.einsum.Flops();

  KernelResult result;
  std::vector<double> out;
  {
    const double start = Now();
    exec::EvalEinsumPartials(op, operands, 0, extent, full, &out);
    result.fast_seconds = Now() - start;
    result.gflops_fast = full_flops / result.fast_seconds * 1e-9;
  }

  // The scalar reference evaluates a leading-dimension slice (everything in
  // smoke mode) and is credited the slice's share of the FLOPs.
  Box ref_box = full;
  if (!smoke && !ref_box.empty()) {
    ref_box[0].second = std::max<int64_t>(1, ref_box[0].second / 32);
  }
  const double fraction =
      static_cast<double>(BoxElements(ref_box)) / static_cast<double>(BoxElements(full));
  std::vector<double> ref;
  {
    const double start = Now();
    exec::EvalEinsumPartialsReference(op, operands, 0, extent, ref_box, &ref);
    const double seconds = Now() - start;
    result.gflops_ref = full_flops * fraction / seconds * 1e-9;
  }

  // Sanity: the lowering must agree with the reference on the slice.
  for (size_t i = 0; i < ref.size(); ++i) {
    result.checksum_delta = std::max(result.checksum_delta, std::abs(out[i] - ref[i]));
  }
  return result;
}

int RunBench(bool smoke, const BenchFlags& flags) {
  JsonReport report("exec_speed");
  std::printf("%-12s %12s %14s %14s %9s\n", "matmul", "shape", "gemm GFLOP/s",
              "scalar GFLOP/s", "speedup");

  double fast_sum = 0.0, ref_sum = 0.0;
  int cases = 0;
  for (const MatmulCase& c : GptMatmulMix(smoke)) {
    const KernelResult r = TimeMatmul(c, smoke);
    std::string shape;
    for (const auto& [label, ext] : c.extents) {
      shape += (shape.empty() ? "" : "x") + std::to_string(ext);
    }
    const double speedup = r.gflops_fast / r.gflops_ref;
    std::printf("%-12s %12s %14.2f %14.3f %8.1fx\n", c.name.c_str(), shape.c_str(),
                r.gflops_fast, r.gflops_ref, speedup);
    report.AddRow()
        .Str("kind", "kernel")
        .Str("name", c.name)
        .Bool("smoke", smoke)
        .Num("gflops_gemm", r.gflops_fast)
        .Num("gflops_scalar", r.gflops_ref)
        .Num("speedup", speedup)
        .Num("gemm_seconds", r.fast_seconds)
        .Num("max_abs_delta", r.checksum_delta);
    if (r.checksum_delta != 0.0) {
      std::fprintf(stderr, "FAIL: %s lowering diverges from reference by %g\n", c.name.c_str(),
                   r.checksum_delta);
      return 1;
    }
    fast_sum += r.gflops_fast;
    ref_sum += r.gflops_ref;
    ++cases;
  }
  const double mean_speedup = (fast_sum / cases) / (ref_sum / cases);
  std::printf("%-12s %12s %14.2f %14.3f %8.1fx\n", "mean", "", fast_sum / cases,
              ref_sum / cases, mean_speedup);
  report.AddRow()
      .Str("kind", "kernel_mean")
      .Bool("smoke", smoke)
      .Num("gflops_gemm", fast_sum / cases)
      .Num("gflops_scalar", ref_sum / cases)
      .Num("speedup", mean_speedup);

  // --- Real pipelined execution -----------------------------------------
  GptConfig config;
  config.hidden = smoke ? 32 : 128;
  config.num_layers = smoke ? 2 : 4;
  config.num_heads = smoke ? 2 : 4;
  config.microbatch = smoke ? 2 : 4;
  config.seq_len = smoke ? 8 : 64;
  config.vocab = smoke ? 64 : 256;
  const int num_microbatches = smoke ? 2 : 4;
  Graph graph = BuildGpt(config);
  const ClusterSpec cluster = ClusterSpec::AwsP3(1, 4);
  ParallelizeOptions options;
  options.num_microbatches = num_microbatches;
  options.inter.submesh_shapes = {SubmeshShape{1, 2}};
  options.inter.compile_threads = flags.threads;
  const StatusOr<ParallelPlan> plan = Parallelize(graph, cluster, options);
  if (!plan.ok()) {
    std::fprintf(stderr, "compile failed: %s\n", plan.status().ToString().c_str());
    return 1;
  }
  const double exec_start = Now();
  const StatusOr<exec::ExecResult> result = ExecutePlan(*plan, graph, cluster, {});
  const double wall = Now() - exec_start;
  if (!result.ok()) {
    std::fprintf(stderr, "execution failed: %s\n", result.status().ToString().c_str());
    return 1;
  }
  int64_t measured = 0, planned = 0, modeled = 0, oracle = 0;
  for (const exec::DeviceMemoryStats& dm : result->device_memory) {
    measured = std::max(measured, dm.measured_peak_bytes);
    planned = std::max(planned, dm.planned_bytes);
    modeled = std::max(modeled, dm.modeled_bytes);
    oracle = std::max(oracle, dm.oracle_peak_bytes);
  }
  double compute_seconds = 0.0;
  for (const exec::StageTiming& t : result->stage_timings) {
    compute_seconds = std::max(compute_seconds, t.compute_seconds());
  }
  std::printf("\nexecutor: %.3fs wall, peak bytes/device measured=%lld planned=%lld "
              "modeled=%lld oracle=%lld\n",
              wall, static_cast<long long>(measured), static_cast<long long>(planned),
              static_cast<long long>(modeled), static_cast<long long>(oracle));
  report.AddRow()
      .Str("kind", "executor")
      .Bool("smoke", smoke)
      .Str("model", "gpt")
      .Int("hidden", config.hidden)
      .Int("num_layers", config.num_layers)
      .Int("num_microbatches", num_microbatches)
      .Num("wall_seconds", wall)
      .Num("max_stage_compute_seconds", compute_seconds)
      .Int("measured_peak_bytes", measured)
      .Int("planned_bytes", planned)
      .Int("modeled_bytes", modeled)
      .Int("oracle_peak_bytes", oracle)
      .Int("num_devices", static_cast<long long>(result->device_memory.size()));

  if (!report.Write(flags.json_path)) {
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace alpa

int main(int argc, char** argv) {
  const alpa::bench::BenchFlags flags = alpa::bench::ParseBenchFlags(argc, argv);
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    }
  }
  alpa::bench::InitBench(flags);
  return alpa::bench::RunBench(smoke, flags);
}
