// Tables 1 and 2: resharding costs and batched-matmul parallel algorithms
// on a 2x2 device mesh, printed in the paper's layout so the cost model
// can be compared row by row.
#include <cstdio>

#include "src/graph/graph.h"
#include "src/intra/algorithms.h"
#include "src/mesh/device_mesh.h"
#include "src/spec/sharding_spec.h"

int main() {
  using namespace alpa;

  const ClusterSpec cluster = ClusterSpec::AwsP3(1, 4);
  MeshPlacement placement;
  placement.shape = SubmeshShape{1, 4};
  const DeviceMesh mesh = DeviceMesh::Create(cluster, placement, {2, 2});
  const TensorShape tensor{4096, 4096};
  const double m_bytes = static_cast<double>(tensor.elements()) * 4;

  auto spec = [](DimSharding a, DimSharding b) { return ShardingSpec::Make({a, b}); };
  constexpr DimSharding R = DimSharding::kR;
  constexpr DimSharding S0 = DimSharding::kS0;
  constexpr DimSharding S1 = DimSharding::kS1;
  constexpr DimSharding S01 = DimSharding::kS01;

  std::printf("=== Table 1: resharding costs (2x2 mesh, M = %.0f MB fp32 tensor) ===\n",
              m_bytes / 1e6);
  std::printf("%-4s %-8s %-8s %12s   %s\n", "#", "src", "dst", "cost (ms)", "paper");
  const struct {
    const char* id;
    ShardingSpec src;
    ShardingSpec dst;
    const char* paper;
  } rows[] = {
      {"1", spec(R, R), spec(S0, S1), "0"},
      {"2", spec(S0, R), spec(R, R), "all-gather(M, 0)"},
      {"3", spec(S0, S1), spec(S0, R), "all-gather(M/n0, 1)"},
      {"4", spec(S0, R), spec(R, S0), "all-to-all(M, 0)"},
      {"5", spec(S0, S1), spec(S01, R), "all-to-all(M/n0, 1)"},
  };
  for (const auto& row : rows) {
    const double cost = ReshardCost(row.src, row.dst, tensor, 4, mesh);
    std::printf("%-4s %-8s %-8s %12.4f   %s\n", row.id, row.src.ToString().c_str(),
                row.dst.ToString().c_str(), cost * 1e3, row.paper);
  }

  std::printf("\n=== Table 2: batched matmul C[b,i,j] = sum_k A[b,i,k] B[b,k,j] ===\n");
  Graph graph;
  const int64_t b = 64;
  const int64_t n = 1024;
  const int a_id = graph.AddInput("a", TensorShape({b, n, n}), DType::kF32);
  const int b_id = graph.AddInput("b", TensorShape({b, n, n}), DType::kF32);
  EinsumSpec einsum{"bij", {"bik", "bkj"}, {{'b', b}, {'i', n}, {'j', n}, {'k', n}}};
  const int c_id = graph.AddEinsum("bmm", einsum, {a_id, b_id}, DType::kF32);
  const auto algorithms = EnumerateAlgorithms(graph.op(c_id), graph, mesh,
                                              cluster.device, Precision::kFloat32);
  std::printf("%-16s %-10s %-22s %12s\n", "mapping", "output", "inputs", "comm (ms)");
  for (const ParallelAlgorithm& algorithm : algorithms) {
    std::printf("%-16s %-10s %-10s %-11s %12.4f\n", algorithm.name.c_str(),
                algorithm.output_spec.ToString().c_str(),
                algorithm.input_specs[0].ToString().c_str(),
                algorithm.input_specs[1].ToString().c_str(), algorithm.comm_cost * 1e3);
  }
  std::printf("(%zu algorithms enumerated; Table 2 lists 7 representative rows)\n",
              algorithms.size());
  return 0;
}
